// Package videorec is an online video recommender for sharing communities,
// reproducing Zhou et al., "Online Video Recommendation in Sharing
// Community" (SIGMOD 2015).
//
// Given a clicked video — no user profile required — the engine returns the
// most relevant videos by fusing two signals (Equation 9 of the paper):
//
//   - content relevance: video cuboid signatures compared with the Earth
//     Mover's Distance, aggregated by the extended Jaccard κJ, which finds
//     matched (near-duplicate / shared-footage) clips even under frame and
//     temporal editing;
//   - social relevance: the Jaccard similarity of the videos' commenter
//     sets, which surfaces relevant clips the content matcher cannot see.
//
// The SAR scheme (sub-community-based approximation relevance) accelerates
// the social side: users are partitioned into k sub-communities over the
// user interest graph, descriptors become k-dimensional histograms, and the
// exact set Jaccard is approximated by a histogram min/max ratio. A chained
// shift-add-xor hash table accelerates the user → sub-community mapping.
// Social updates (new comments) are maintained incrementally.
//
// # Quick start
//
//	eng := videorec.New(videorec.Options{})
//	for _, clip := range clips {
//		eng.Add(clip)
//	}
//	eng.Build()
//	recs, err := eng.Recommend(clickedID, 10)
//
// See examples/ for runnable scenarios and DESIGN.md for the system map.
package videorec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"videorec/internal/core"
	"videorec/internal/social"
	"videorec/internal/store"
	"videorec/internal/video"
)

// Strategy selects how social relevance is computed — the CSF variants of
// the paper's Figure 12(a).
type Strategy int

const (
	// SARWithHashing (CSF-SAR-H) is the paper's full optimization and the
	// default: SAR vectors plus the chained hash dictionary.
	SARWithHashing Strategy = iota
	// SAR (CSF-SAR) uses SAR vectors with a linear dictionary scan.
	SAR
	// ExactSocial (CSF) computes the exact set Jaccard against every video —
	// the unoptimized baseline; expect full-scan latencies.
	ExactSocial
)

// Options configures an Engine. The zero value gives the paper's tuned
// parameters: ω = 0.7, k = 60 sub-communities, CSF-SAR-H strategy.
type Options struct {
	// Omega is the social weight in FJ = (1−ω)·κJ + ω·sJ. 0 means content
	// only behaviour at ranking time; the paper's optimum is 0.7 (used when
	// the field is 0 and ContentOnly is false — set ContentOnly for a true
	// content-only ranker).
	Omega float64
	// SubCommunities is k, the number of sub-communities SAR extracts from
	// the user interest graph (paper optimum: 60).
	SubCommunities int
	// Strategy picks the social-relevance implementation.
	Strategy Strategy
	// ContentOnly ranks by κJ alone (the CR baseline of the paper).
	ContentOnly bool
	// SocialOnly ranks by social relevance alone (the SR baseline).
	SocialOnly bool
	// ExhaustiveSearch refines every stored video instead of using the
	// LSB-tree and inverted-file probes. Slower, exact ranking.
	ExhaustiveSearch bool
	// RefineWorkers bounds the worker pool used for step-3 kNN refinement.
	// 0 uses GOMAXPROCS, 1 forces the serial path. Either way the ranking is
	// bit-identical: parallelism changes latency, never results.
	RefineWorkers int
	// DegradeMargin is the deadline headroom below which the Ctx variants of
	// Recommend skip (or abandon) EMD refinement and answer with the coarse
	// SAR ranking, flagged degraded. 0 uses the default (20ms); negative
	// disables degradation so tight deadlines fail with DeadlineExceeded.
	DegradeMargin time.Duration
	// ShardMargin applies only to sharded deployments (internal/shard): the
	// headroom the scatter-gather router reserves from the request deadline
	// for the merge, so each shard's fan-out call runs under (deadline −
	// margin) and one stuck shard cannot spend the whole request budget.
	// 0 disables per-shard budgets. A single engine ignores it.
	ShardMargin time.Duration
	// MinShardQuorum applies only to sharded deployments: the minimum number
	// of shards that must answer a query. <= 0 requires all of them (any
	// shard failure fails the query); n >= 1 tolerates failures down to n
	// survivors, answering with the merged partial ranking marked Degraded.
	// A single engine ignores it.
	MinShardQuorum int
}

// Frame is one grayscale frame; intensities are clamped to [0, 255].
type Frame struct {
	W, H int
	Pix  []float64 // row-major, length W*H
}

// FrameFromBytes builds a Frame from 8-bit grayscale pixel data (row-major,
// length w*h) — the form decoders and the wire format produce.
func FrameFromBytes(w, h int, pix []byte) (Frame, error) {
	if w <= 0 || h <= 0 || len(pix) != w*h {
		return Frame{}, fmt.Errorf("videorec: %d bytes for a %dx%d frame", len(pix), w, h)
	}
	f := Frame{W: w, H: h, Pix: make([]float64, len(pix))}
	for i, b := range pix {
		f.Pix[i] = float64(b)
	}
	return f, nil
}

// Clip is a video document with its sharing-community context: Q = (q_f,
// q_s) in the paper's notation. Frames carry q_f; Owner and Commenters carry
// q_s.
type Clip struct {
	ID             string
	Title          string
	FPS            float64
	NominalSeconds float64
	Frames         []Frame
	Owner          string
	Commenters     []string
}

// Recommendation is one ranked result with its fused score and the two
// component relevances.
type Recommendation struct {
	VideoID string
	Score   float64
	Content float64
	Social  float64
}

// UpdateSummary reports one incremental maintenance pass (Figure 5).
type UpdateSummary struct {
	NewConnections     int
	Unions             int
	Splits             int
	UsersMoved         int
	VideosRevectorized int

	// MaintenanceDuration is the wall time spent inside sub-community
	// maintenance (graph merge, union/split, dictionary patching) for this
	// batch, excluding edge derivation and re-vectorization.
	MaintenanceDuration time.Duration

	// User-interest graph size after the pass: nodes, undirected edges, and
	// directed overlay entries awaiting CSR compaction.
	GraphUsers   int
	GraphEdges   int
	GraphOverlay int
}

// summaryFromReport lifts a core update report into the public summary.
func summaryFromReport(rep core.UpdateReport) UpdateSummary {
	return UpdateSummary{
		NewConnections:      rep.Maintenance.NewConnections,
		Unions:              rep.Maintenance.Unions,
		Splits:              rep.Maintenance.Splits,
		UsersMoved:          rep.Maintenance.UsersMoved,
		VideosRevectorized:  rep.VideosRevectorized,
		MaintenanceDuration: rep.MaintenanceDuration,
		GraphUsers:          rep.GraphUsers,
		GraphEdges:          rep.GraphEdges,
		GraphOverlay:        rep.GraphOverlay,
	}
}

// Engine is the recommender. All methods are safe for concurrent use.
//
// Reads (Recommend, RecommendClip, RecommendSegment, Len, SubCommunities,
// Version) are lock-free: they load the current immutable view through an
// atomic pointer and never contend with each other or with writers.
// Mutations (Add, AddAll, Build, Remove, ApplyUpdates) serialize behind a
// writer mutex; each builds the next state copy-on-write and publishes it as
// a new view with a monotonically increasing version, so in-flight readers
// keep the view they loaded until they finish.
type Engine struct {
	writeMu sync.Mutex        // serializes mutations, Build, Save and journal management
	rec     *core.Recommender // write-side builder; touch only under writeMu
	journal *store.Journal    // nil unless AttachJournal was called
	jpath   string            // journal file path, "" unless attached

	cur atomic.Pointer[engineView] // the published view; never nil after New/Load

	// applied is the journal sequence number of the last update batch this
	// engine has applied — the replication cursor. Written only under
	// writeMu; read lock-free by serving and replication paths. It is
	// restored from snapshots (Snapshot.JournalSeq), advanced by
	// ApplyUpdates/ApplyReplicated/journal replay, and reset by Reload.
	applied atomic.Uint64
}

// engineView pairs a frozen core view with its publication version.
type engineView struct {
	view    *core.View
	version uint64
}

// Errors returned by Engine methods.
var (
	ErrEmptyID  = errors.New("videorec: clip has an empty ID")
	ErrNoFrames = errors.New("videorec: clip has no frames")
	ErrNotFound = errors.New("videorec: unknown video id")
	ErrNotBuilt = errors.New("videorec: Build must be called first")
)

// New creates an empty engine.
func New(opts Options) *Engine {
	c := core.DefaultOptions()
	if opts.Omega > 0 {
		c.Omega = opts.Omega
	}
	if opts.SubCommunities > 0 {
		c.K = opts.SubCommunities
	}
	switch opts.Strategy {
	case SAR:
		c.Mode = core.ModeSAR
	case ExactSocial:
		c.Mode = core.ModeExact
	default:
		c.Mode = core.ModeSARHash
	}
	c.ContentWeightOnly = opts.ContentOnly
	c.SocialOnly = opts.SocialOnly
	c.FullScan = opts.ExhaustiveSearch
	c.RefineWorkers = opts.RefineWorkers
	c.DegradeMargin = opts.DegradeMargin
	e := &Engine{rec: core.NewRecommender(c)}
	e.cur.Store(&engineView{view: e.rec.Freeze(), version: 0})
	return e
}

// publishLocked freezes the builder's current state and swaps it in as the
// next view. Callers must hold writeMu.
func (e *Engine) publishLocked() {
	prev := e.cur.Load()
	e.cur.Store(&engineView{view: e.rec.Freeze(), version: prev.version + 1})
}

// Version returns the version of the currently published view. It starts at
// 0 for a fresh engine (1 for a loaded one), and every successful mutation
// — Add, AddAll, Build, Remove, ApplyUpdates — increments it by exactly one.
// Serving caches key entries by this version so stale results lapse
// naturally when a new view is published.
func (e *Engine) Version() uint64 {
	return e.cur.Load().version
}

// Len returns the number of ingested clips.
func (e *Engine) Len() int {
	return e.cur.Load().view.Len()
}

// Add ingests a clip: its cuboid signature series is extracted and indexed,
// its social descriptor stored. Frames are not retained. Call Build after
// the last Add (or after a batch of Adds) before recommending. Signature
// extraction runs before the writer lock is taken, so concurrent readers
// and other writers only wait for the index insertion itself.
func (e *Engine) Add(clip Clip) error {
	if clip.ID == "" {
		return ErrEmptyID
	}
	if len(clip.Frames) == 0 {
		return ErrNoFrames
	}
	v, err := toVideo(clip)
	if err != nil {
		return err
	}
	series := e.rec.ExtractSeries(v)
	desc := social.NewDescriptor(clip.Owner, clip.Commenters...)
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.rec.IngestSeries(clip.ID, series, desc)
	e.publishLocked()
	return nil
}

// Build constructs the social machinery (user interest graph, k
// sub-communities, hash dictionary, descriptor vectors, inverted files) over
// everything added so far, and publishes the result as a new view.
func (e *Engine) Build() {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.rec.BuildSocial()
	e.publishLocked()
}

// RecommendMeta describes how a Ctx-variant query was answered: the view
// version that served it (for version-keyed caches) and whether the answer
// is degraded — coarse SAR-ranked results returned because the context
// deadline left no room for full EMD refinement, or (on a sharded
// deployment) a partial merge over the shards that answered. Degraded
// results are usable rankings, but serving layers should not cache them.
type RecommendMeta struct {
	ViewVersion uint64
	Degraded    bool
	// ShardsFailed / ShardsTotal describe a scatter-gather answer: how many
	// shards the query fanned out to and how many of them failed (errored,
	// exhausted their budget, or were skipped by an open breaker). A partial
	// answer (ShardsFailed > 0) is always also Degraded. A single engine
	// leaves both zero.
	ShardsFailed int
	ShardsTotal  int
}

// Recommend returns the topK most relevant stored videos for a stored clip,
// excluding the clip itself. It runs entirely against the current immutable
// view: no lock is taken and concurrent mutations never affect a query in
// flight.
func (e *Engine) Recommend(clipID string, topK int) ([]Recommendation, error) {
	recs, _, err := e.RecommendCtx(context.Background(), clipID, topK)
	return recs, err
}

// RecommendVersioned is Recommend plus the version of the view that answered
// the query, so serving layers can key caches by exactly the state a result
// was computed from.
func (e *Engine) RecommendVersioned(clipID string, topK int) ([]Recommendation, uint64, error) {
	recs, meta, err := e.RecommendCtx(context.Background(), clipID, topK)
	return recs, meta.ViewVersion, err
}

// RecommendCtx is Recommend with deadline-aware serving: cancellation is
// honored cooperatively through the whole kNN pipeline (a canceled request
// stops burning CPU within about one EMD evaluation and returns ctx.Err()),
// and a deadline too tight for full refinement degrades to the coarse SAR
// ranking instead of failing — see Options.DegradeMargin.
func (e *Engine) RecommendCtx(ctx context.Context, clipID string, topK int) ([]Recommendation, RecommendMeta, error) {
	cur := e.cur.Load()
	meta := RecommendMeta{ViewVersion: cur.version}
	if !cur.view.Built() {
		return nil, meta, ErrNotBuilt
	}
	if !cur.view.Has(clipID) {
		return nil, meta, fmt.Errorf("%w: %s", ErrNotFound, clipID)
	}
	res, info, err := cur.view.RecommendIDCtx(ctx, clipID, topK)
	if err != nil {
		return nil, meta, err
	}
	meta.Degraded = info.Degraded
	return convert(res), meta, nil
}

// RecommendClip recommends for an ad-hoc clip that is not in the collection
// — the anonymous-user scenario the paper targets: the query is whatever the
// visitor is currently watching. Extraction and search both run lock-free
// against the current view.
func (e *Engine) RecommendClip(clip Clip, topK int) ([]Recommendation, error) {
	recs, _, err := e.RecommendClipCtx(context.Background(), clip, topK)
	return recs, err
}

// RecommendClipCtx is RecommendClip with the deadline-aware semantics of
// RecommendCtx. Signature extraction runs before the search and is not
// cancellable; the kNN pipeline after it is.
func (e *Engine) RecommendClipCtx(ctx context.Context, clip Clip, topK int) ([]Recommendation, RecommendMeta, error) {
	cur := e.cur.Load()
	meta := RecommendMeta{ViewVersion: cur.version}
	if len(clip.Frames) == 0 {
		return nil, meta, ErrNoFrames
	}
	v, err := toVideo(clip)
	if err != nil {
		return nil, meta, err
	}
	if !cur.view.Built() {
		return nil, meta, ErrNotBuilt
	}
	if err := ctx.Err(); err != nil {
		return nil, meta, err
	}
	q := cur.view.AdHocQuery(v, social.NewDescriptor(clip.Owner, clip.Commenters...))
	res, info, err := cur.view.RecommendCtx(ctx, q, topK, clip.ID)
	if err != nil {
		return nil, meta, err
	}
	meta.Degraded = info.Degraded
	return convert(res), meta, nil
}

// Remove deletes a stored clip and publishes a view without it. Its index
// entries are filtered immediately and fully compacted away on the next
// Build. Returns ErrNotFound for an unknown id.
func (e *Engine) Remove(clipID string) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if !e.rec.RemoveVideo(clipID) {
		return fmt.Errorf("%w: %s", ErrNotFound, clipID)
	}
	e.publishLocked()
	return nil
}

// ApplyUpdates ingests a batch of new comments (video id → commenting
// users), incrementally maintains the sub-communities, hash dictionary,
// descriptor vectors and inverted files (Figure 5 of the paper), and
// publishes the maintained state as a new view.
func (e *Engine) ApplyUpdates(newComments map[string][]string) (UpdateSummary, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if !e.rec.Built() {
		return UpdateSummary{}, ErrNotBuilt
	}
	if e.journal != nil {
		if err := e.journal.Append(newComments); err != nil {
			return UpdateSummary{}, fmt.Errorf("videorec: journal: %w", err)
		}
		e.applied.Store(e.journal.Seq())
	} else {
		e.applied.Add(1)
	}
	rep := e.rec.ApplyUpdates(newComments)
	e.publishLocked()
	return summaryFromReport(rep), nil
}

// GraphStats reports the current user-interest graph size: nodes, undirected
// edges, and directed overlay entries awaiting CSR compaction. It reads the
// write-side graph under the writer lock; all zero before Build.
func (e *Engine) GraphStats() (users, edges, overlay int) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.rec.GraphStats()
}

// Built reports whether the currently published view has its social
// machinery constructed — the gate readiness probes use: an unbuilt engine
// cannot answer Recommend or apply updates.
func (e *Engine) Built() bool {
	return e.cur.Load().view.Built()
}

// AppliedSeq returns the journal sequence number of the last update batch
// this engine has applied — the replication cursor. On a primary it is the
// journal head; on a replica it trails the primary's head by the current
// replication lag. Zero before any journaled update.
func (e *Engine) AppliedSeq() uint64 {
	return e.applied.Load()
}

// SubCommunities returns the current number of extracted sub-communities
// (the SAR vector dimensionality). Zero before Build.
func (e *Engine) SubCommunities() int {
	if p := e.cur.Load().view.Partition(); p != nil {
		return p.Dim
	}
	return 0
}

func toVideo(clip Clip) (*video.Video, error) {
	v := &video.Video{
		ID:             clip.ID,
		Title:          clip.Title,
		FPS:            clip.FPS,
		NominalSeconds: clip.NominalSeconds,
	}
	if v.FPS <= 0 {
		v.FPS = 25
	}
	v.Frames = make([]*video.Frame, 0, len(clip.Frames))
	for i, f := range clip.Frames {
		if f.W <= 0 || f.H <= 0 || len(f.Pix) != f.W*f.H {
			return nil, fmt.Errorf("videorec: frame %d of %q has inconsistent dimensions", i, clip.ID)
		}
		vf := video.NewFrame(f.W, f.H)
		for p, x := range f.Pix {
			vf.Pix[p] = clampPix(x)
		}
		v.Frames = append(v.Frames, vf)
	}
	return v, nil
}

func clampPix(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return x
}

func convert(in []core.Result) []Recommendation {
	out := make([]Recommendation, len(in))
	for i, r := range in {
		out[i] = Recommendation{
			VideoID: r.VideoID,
			Score:   r.Score,
			Content: r.Content,
			Social:  r.Social,
		}
	}
	return out
}

// RecommendSegment recommends for a sub-range [from, to) of an ad-hoc
// clip's frames — "the matched clips in content of a video" scenario: the
// viewer is reacting to one scene, not the whole clip.
func (e *Engine) RecommendSegment(clip Clip, from, to, topK int) ([]Recommendation, error) {
	recs, _, err := e.RecommendSegmentCtx(context.Background(), clip, from, to, topK)
	return recs, err
}

// RecommendSegmentCtx is RecommendSegment with the deadline-aware semantics
// of RecommendCtx.
func (e *Engine) RecommendSegmentCtx(ctx context.Context, clip Clip, from, to, topK int) ([]Recommendation, RecommendMeta, error) {
	if from < 0 || to > len(clip.Frames) || from >= to {
		return nil, RecommendMeta{ViewVersion: e.Version()}, fmt.Errorf("videorec: invalid segment [%d, %d) of %d frames", from, to, len(clip.Frames))
	}
	sub := clip
	sub.Frames = clip.Frames[from:to]
	return e.RecommendClipCtx(ctx, sub, topK)
}
