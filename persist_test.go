package videorec

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"videorec/internal/faults"
)

func TestEngineSaveLoadRoundTrip(t *testing.T) {
	eng, col := buildEngine(t, Options{})
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != eng.Len() {
		t.Fatalf("restored %d clips, want %d", restored.Len(), eng.Len())
	}
	src := col.Queries[0].Sources[0]
	a, err := eng.Recommend(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Recommend(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Updates still work after reload.
	if _, err := restored.ApplyUpdates(map[string][]string{src: {"post-reload-user", col.Users[0]}}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSaveFileLoadFile(t *testing.T) {
	eng, col := buildEngine(t, Options{})
	path := filepath.Join(t.TempDir(), "eng.snap")
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Recommend(col.Queries[1].Sources[0], 5); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Error("garbage accepted")
	}
}

// Concurrent readers during background updates must not race (run with
// -race to verify) and must always see a consistent engine.
func TestEngineConcurrentAccess(t *testing.T) {
	eng, col := buildEngine(t, Options{})
	src := col.Queries[0].Sources[0]
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Recommend(src, 5); err != nil {
					t.Errorf("Recommend: %v", err)
					return
				}
			}
		}()
	}
	for m := 0; m < 3; m++ {
		if _, err := eng.ApplyUpdates(map[string][]string{src: {"u-live", col.Users[m]}}); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

// Save takes a consistent cut under the writer lock while lock-free readers
// keep serving; the reloaded engine answers identically and publishes its
// state under the version stamped into the snapshot, so version-keyed
// caches and replication cursors stay monotonic across restarts (the
// version names exactly the state that was saved, so reuse never aliases
// different state).
func TestSaveUnderConcurrentReadersAndVersionPersistence(t *testing.T) {
	eng, col := buildEngine(t, Options{})
	// Advance the live engine's version past 1 so persistence is observable.
	src := col.Queries[0].Sources[0]
	if _, err := eng.ApplyUpdates(map[string][]string{src: {"pre-save-user", col.Users[0]}}); err != nil {
		t.Fatal(err)
	}
	liveVersion := eng.Version()
	if liveVersion < 2 {
		t.Fatalf("live version = %d, want ≥ 2 (ingest+build+update)", liveVersion)
	}

	// Readers hammer the engine across the whole Save.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Recommend(src, 5); err != nil {
					t.Errorf("Recommend during Save: %v", err)
					return
				}
			}
		}()
	}
	var buf bytes.Buffer
	err := eng.Save(&buf)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != eng.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), eng.Len())
	}
	if v := restored.Version(); v != liveVersion {
		t.Fatalf("restored view version = %d, want the persisted %d", v, liveVersion)
	}
	if eng.Version() != liveVersion {
		t.Fatalf("live version moved during save: %d -> %d", liveVersion, eng.Version())
	}

	// Identical rankings across the round-trip, for every query source.
	for _, q := range col.Queries {
		id := q.Sources[0]
		a, err := eng.Recommend(id, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Recommend(id, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths %d vs %d", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s rank %d: live %+v vs restored %+v", id, i, a[i], b[i])
			}
		}
	}
}

// Crash-recovery story: snapshot + journal replay reproduces the state of
// an engine that applied the same updates live.
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "eng.snap")
	walPath := filepath.Join(dir, "comments.wal")

	live, col := buildEngine(t, Options{})
	if err := live.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := live.AttachJournal(walPath); err != nil {
		t.Fatal(err)
	}
	src := col.Queries[0].Sources[0]
	batches := []map[string][]string{
		{src: {"wal-user-1", col.Users[0]}},
		{col.Items[1].ID: {"wal-user-2", col.Users[1], col.Users[2]}},
	}
	for _, b := range batches {
		if _, err := live.ApplyUpdates(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// "Crash": rebuild from snapshot + journal.
	recovered, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	n, err := recovered.ReplayJournal(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(batches) {
		t.Fatalf("replayed %d batches, want %d", n, len(batches))
	}
	a, err := live.Recommend(src, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := recovered.Recommend(src, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs after recovery: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCloseJournalIdempotent(t *testing.T) {
	eng, _ := buildEngine(t, Options{})
	if err := eng.CloseJournal(); err != nil {
		t.Errorf("close without journal: %v", err)
	}
	path := filepath.Join(t.TempDir(), "w.wal")
	if err := eng.AttachJournal(path); err != nil {
		t.Fatal(err)
	}
	if err := eng.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	if err := eng.CloseJournal(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// Regression: replaying large (month-sized) journal batches must reproduce
// the live engine exactly — maintenance once depended on map iteration
// order for new-user assignment and diverged on replay.
func TestJournalRecoveryLargeBatches(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "eng.snap")
	walPath := filepath.Join(dir, "comments.wal")

	live, col := buildEngine(t, Options{SubCommunities: 40})
	if err := live.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := live.AttachJournal(walPath); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 2; m++ {
		batch := map[string][]string{}
		for _, it := range col.Items {
			for _, cm := range it.Comments {
				if cm.Month == col.Opts.MonthsSource+m {
					batch[it.ID] = append(batch[it.ID], cm.User)
				}
			}
		}
		if _, err := live.ApplyUpdates(batch); err != nil {
			t.Fatal(err)
		}
	}
	live.CloseJournal()

	recovered, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.ReplayJournal(walPath); err != nil {
		t.Fatal(err)
	}
	for _, q := range col.Queries {
		src := q.Sources[0]
		a, err := live.Recommend(src, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := recovered.Recommend(src, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths %d vs %d", src, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s rank %d: %+v vs %+v", src, i, a[i], b[i])
			}
		}
	}
}

// A crash mid-journal-append (torn final record) must not block restart:
// replay tolerates the tail, AttachJournal truncates it, and new updates
// journal cleanly after the old garbage is gone.
func TestJournalRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "eng.snap")
	walPath := filepath.Join(dir, "comments.wal")

	live, col := buildEngine(t, Options{})
	if err := live.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := live.AttachJournal(walPath); err != nil {
		t.Fatal(err)
	}
	src := col.Queries[0].Sources[0]
	if _, err := live.ApplyUpdates(map[string][]string{src: {"wal-user", col.Users[0]}}); err != nil {
		t.Fatal(err)
	}
	if err := live.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	// The crash: a partial record at the tail.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":2,"comments":{"torn":[`)
	f.Close()

	// Restart: snapshot + tolerant replay + tail-truncating attach.
	recovered, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	n, err := recovered.ReplayJournal(walPath)
	if err != nil {
		t.Fatalf("replay with torn tail failed startup: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d batches, want the 1 valid one", n)
	}
	if err := recovered.AttachJournal(walPath); err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.ApplyUpdates(map[string][]string{src: {"post-crash-user", col.Users[1]}}); err != nil {
		t.Fatal(err)
	}
	if err := recovered.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// The repaired journal replays end to end: 1 pre-crash + 1 post-crash.
	third, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	total, err := third.ReplayJournal(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Fatalf("final replay saw %d batches, want 2", total)
	}
}

// A process killed between writing the snapshot temp file and the rename
// must leave the previous snapshot loadable — restart recovers the old
// state instead of failing on a torn file.
func TestSaveFileKillDuringSnapshotRecovers(t *testing.T) {
	defer faults.Reset()
	path := filepath.Join(t.TempDir(), "eng.snap")
	eng, col := buildEngine(t, Options{})
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	src := col.Queries[0].Sources[0]
	if _, err := eng.ApplyUpdates(map[string][]string{src: {"late-user", col.Users[0]}}); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.SnapshotCommit, faults.Error(nil))
	if err := eng.SaveFile(path); err == nil {
		t.Fatal("injected kill-during-snapshot not surfaced")
	}
	faults.Reset()

	restored, err := LoadFile(path)
	if err != nil {
		t.Fatalf("restart after killed snapshot failed: %v", err)
	}
	if restored.Len() != eng.Len() {
		t.Fatalf("restored %d clips, want %d", restored.Len(), eng.Len())
	}
	if _, err := restored.Recommend(src, 5); err != nil {
		t.Fatalf("recovered engine unserviceable: %v", err)
	}
}
