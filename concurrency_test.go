package videorec

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"videorec/internal/video"
)

// Readers hammer Recommend while writers ingest, update, remove, and
// rebuild. Reads are lock-free against atomically published views, so the
// test asserts the guarantees that design makes: no torn reads (every
// ranking is internally consistent — bounded, sorted, duplicate-free, never
// self-referential), only the documented errors, and a monotonically
// non-decreasing view version. Run under -race; the detector turns any
// unsynchronized access into a failure.
func TestConcurrentReadersAndWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	eng, col := buildEngine(t, Options{})

	// Victim pool: clips the remover may delete. Query sources stay out of
	// it so readers never race a legitimate removal of their own source.
	const victims = 6
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < victims; i++ {
		v := video.Synthesize(fmt.Sprintf("victim-%d", i), i%3, video.DefaultSynthOptions(), rng)
		if err := eng.Add(clipFrom(v, col.Users[0], col.Users[1])); err != nil {
			t.Fatal(err)
		}
	}
	eng.Build()

	var sources []string
	for _, q := range col.Queries {
		sources = append(sources, q.Sources...)
	}

	var (
		readersWg sync.WaitGroup
		writersWg sync.WaitGroup
		done      = make(chan struct{})
		reads     atomic.Int64
		served    atomic.Int64 // reads that returned a ranking
		failure   atomic.Pointer[string]
	)
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		failure.CompareAndSwap(nil, &msg)
	}

	const readers = 8
	for g := 0; g < readers; g++ {
		readersWg.Add(1)
		go func(seed int64) {
			defer readersWg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastVersion uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				src := sources[rng.Intn(len(sources))]
				k := 1 + rng.Intn(10)
				recs, version, err := eng.RecommendVersioned(src, k)
				reads.Add(1)
				if err != nil {
					// Between Add and Build the published view is unbuilt;
					// that is the only legal error here (sources are never
					// removed, so ErrNotFound would be a torn read).
					if !errors.Is(err, ErrNotBuilt) {
						fail("reader: unexpected error %v", err)
						return
					}
					continue
				}
				served.Add(1)
				if version < lastVersion {
					fail("view version went backwards: %d after %d", version, lastVersion)
					return
				}
				lastVersion = version
				if len(recs) > k {
					fail("%d results for k=%d", len(recs), k)
					return
				}
				seen := make(map[string]bool, len(recs))
				for i, rec := range recs {
					if rec.VideoID == src {
						fail("self-recommendation for %s", src)
						return
					}
					if seen[rec.VideoID] {
						fail("duplicate %s in ranking for %s", rec.VideoID, src)
						return
					}
					seen[rec.VideoID] = true
					if i > 0 {
						prev := recs[i-1]
						if rec.Score > prev.Score ||
							(rec.Score == prev.Score && rec.VideoID < prev.VideoID) {
							fail("ranking for %s unsorted at %d: %+v after %+v", src, i, rec, prev)
							return
						}
					}
				}
			}
		}(int64(g + 1))
	}

	// Writer 1: ingest fresh clips, rebuilding after each so readers regain
	// a built view quickly.
	writersWg.Add(1)
	go func() {
		defer writersWg.Done()
		rng := rand.New(rand.NewSource(1001))
		for i := 0; i < 4; i++ {
			v := video.Synthesize(fmt.Sprintf("stress-add-%d", i), i%3, video.DefaultSynthOptions(), rng)
			if err := eng.Add(clipFrom(v, col.Users[2], col.Users[3])); err != nil {
				fail("Add: %v", err)
				return
			}
			eng.Build()
		}
	}()

	// Writer 2: stream comment updates through the maintenance path.
	writersWg.Add(1)
	go func() {
		defer writersWg.Done()
		rng := rand.New(rand.NewSource(2002))
		for i := 0; i < 12; i++ {
			batch := map[string][]string{
				sources[rng.Intn(len(sources))]: {
					fmt.Sprintf("stress-user-%d", i),
					col.Users[rng.Intn(len(col.Users))],
				},
			}
			if _, err := eng.ApplyUpdates(batch); err != nil && !errors.Is(err, ErrNotBuilt) {
				fail("ApplyUpdates: %v", err)
				return
			}
		}
	}()

	// Writer 3: delete the victim pool one clip at a time.
	writersWg.Add(1)
	go func() {
		defer writersWg.Done()
		for i := 0; i < victims; i++ {
			if err := eng.Remove(fmt.Sprintf("victim-%d", i)); err != nil {
				fail("Remove victim-%d: %v", i, err)
				return
			}
		}
	}()

	// Readers overlap the entire write schedule, then wind down.
	writersWg.Wait()
	close(done)
	readersWg.Wait()

	if msg := failure.Load(); msg != nil {
		t.Fatal(*msg)
	}
	if reads.Load() == 0 || served.Load() == 0 {
		t.Fatalf("stress produced no served reads (reads=%d served=%d)", reads.Load(), served.Load())
	}

	// The engine is coherent after the dust settles.
	eng.Build()
	recs, _, err := eng.RecommendVersioned(sources[0], 10)
	if err != nil || len(recs) == 0 {
		t.Fatalf("post-stress recommend: %d recs, err=%v", len(recs), err)
	}
	for i := 0; i < victims; i++ {
		if err := eng.Remove(fmt.Sprintf("victim-%d", i)); !errors.Is(err, ErrNotFound) {
			t.Errorf("victim-%d survived the stress: %v", i, err)
		}
	}
}
