// Command benchcompare diffs two vrecbench JSON reports, printing per-
// workload deltas of ns_per_op and allocs_per_op. It powers `make
// bench-compare`, which tracks serving-path performance from one checked-in
// BENCH_PR*.json to the next.
//
// It also understands vrecload reports (kind "vrecload", BENCH_LOAD_*.json):
// when both inputs are load reports, the diff is per-scenario goodput and
// latency-percentile deltas instead — `make load-compare`. For goodput a
// positive delta is an improvement; for p50/p99/p999 a negative one is.
//
// Usage:
//
//	go run ./cmd/benchcompare -old BENCH_PR3.json -new BENCH_PR5.json
//	go run ./cmd/benchcompare -old BENCH_LOAD_PR9.json -new BENCH_LOAD.json
//
// With -old-prefix/-new-prefix the tool compares two workload FAMILIES —
// possibly within one report: rows are filtered to the given name prefix and
// the prefix is stripped before matching, so
//
//	go run ./cmd/benchcompare -old BENCH_PR8.json -new BENCH_PR8.json \
//	    -old-prefix unbatched/ -new-prefix batch/
//
// diffs batch/N against unbatched/N per round size N — the batching speedup
// table of `make bench-batch`.
//
// Exit status is 0 whenever the tool has something sensible to say — also
// when the baseline file does not exist yet (first run on a branch, CI cache
// miss) or when the two reports share no workload names (a renamed suite):
// both cases print a clear note and exit 0 so pipelines treat them as "no
// comparison available", not as failures. Regressions are reported, not
// enforced; the numbers depend on the machine, so CI treats the diff as an
// informational artifact. Only malformed inputs (unreadable flags, a file
// that exists but does not parse) exit non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	QPS         float64 `json:"qps"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// scenario is one vrecload measurement row — the goodput/latency family of a
// load report, matched across files by scenario name.
type scenario struct {
	Name         string  `json:"name"`
	GoodputQPS   float64 `json:"goodput_qps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	P999Ms       float64 `json:"p999_ms"`
	ShedRate     float64 `json:"shed_rate"`
	DegradedRate float64 `json:"degraded_rate"`
}

type report struct {
	Kind       string     `json:"kind"` // "" = vrecbench, "vrecload" = load report
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Videos     int        `json:"videos"`
	Results    []result   `json:"results"`
	Scenarios  []scenario `json:"scenarios"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// filterPrefix restricts a report to one workload family: rows not carrying
// the prefix are dropped, matching rows lose it — so two families (e.g.
// unbatched/N vs batch/N) line up by their shared suffix.
func filterPrefix(rep *report, prefix string) {
	if prefix == "" {
		return
	}
	kept := rep.Results[:0]
	for _, r := range rep.Results {
		if strings.HasPrefix(r.Name, prefix) {
			r.Name = strings.TrimPrefix(r.Name, prefix)
			kept = append(kept, r)
		}
	}
	rep.Results = kept
}

// delta formats a relative change, signed, as a percentage. A negative
// ns_per_op or allocs_per_op delta is an improvement.
func delta(oldV, newV float64) string {
	if oldV == 0 {
		if newV == 0 {
			return "      ="
		}
		return "    new"
	}
	return fmt.Sprintf("%+6.1f%%", (newV-oldV)/oldV*100)
}

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline vrecbench JSON")
		newPath   = flag.String("new", "", "candidate vrecbench JSON")
		oldPrefix = flag.String("old-prefix", "", "keep only baseline workloads with this name prefix (stripped before matching)")
		newPrefix = flag.String("new-prefix", "", "keep only candidate workloads with this name prefix (stripped before matching)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("benchcompare: -old and -new are both required")
	}
	oldRep, err := load(*oldPath)
	if os.IsNotExist(err) {
		// No baseline is a normal state (first bench on a branch, pruned CI
		// cache), not an error: say so and succeed, so `make bench-compare`
		// and CI steps do not fail on repos without a prior run.
		fmt.Printf("benchcompare: baseline %s does not exist — nothing to compare against.\n", *oldPath)
		fmt.Printf("Run vrecbench to produce one, or pass an older BENCH_PR*.json with -old.\n")
		return
	}
	if err != nil {
		log.Fatal(err)
	}
	newRep, err := load(*newPath)
	if os.IsNotExist(err) {
		fmt.Printf("benchcompare: candidate %s does not exist — nothing to compare.\n", *newPath)
		fmt.Printf("Run vrecbench -out %s first.\n", *newPath)
		return
	}
	if err != nil {
		log.Fatal(err)
	}
	if oldRep.Kind == "vrecload" || newRep.Kind == "vrecload" {
		if oldRep.Kind != newRep.Kind {
			// One microbenchmark report, one load report: nothing lines up.
			// A clear note beats a table of "new"/"gone" rows.
			fmt.Printf("benchcompare: %s is kind %q but %s is kind %q — reports are not comparable.\n",
				*oldPath, kindName(oldRep.Kind), *newPath, kindName(newRep.Kind))
			return
		}
		compareLoad(*oldPath, oldRep, *newPath, newRep, *oldPrefix, *newPrefix)
		return
	}
	filterPrefix(oldRep, *oldPrefix)
	filterPrefix(newRep, *newPrefix)

	oldBy := make(map[string]result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	newBy := make(map[string]result, len(newRep.Results))
	names := make([]string, 0, len(newRep.Results))
	shared := 0
	for _, r := range newRep.Results {
		newBy[r.Name] = r
		names = append(names, r.Name)
		if _, ok := oldBy[r.Name]; ok {
			shared++
		}
	}
	sort.Strings(names)
	if shared == 0 {
		// Disjoint workload sets: every row would be "new"/"gone", which is a
		// rename or a suite rewrite, not a measurable regression. Report and
		// succeed rather than print a meaningless table.
		fmt.Printf("benchcompare: %s and %s share no workload names (%d baseline, %d candidate) — no comparable rows.\n",
			*oldPath, *newPath, len(oldRep.Results), len(newRep.Results))
		return
	}

	fmt.Printf("baseline:  %s (go %s, GOMAXPROCS %d, %d videos)\n", *oldPath, oldRep.GoVersion, oldRep.GOMAXPROCS, oldRep.Videos)
	fmt.Printf("candidate: %s (go %s, GOMAXPROCS %d, %d videos)\n\n", *newPath, newRep.GoVersion, newRep.GOMAXPROCS, newRep.Videos)
	fmt.Printf("%-28s %14s %14s %8s   %12s %12s %8s\n",
		"workload", "ns/op old", "ns/op new", "Δns", "allocs old", "allocs new", "Δallocs")
	for _, name := range names {
		n := newBy[name]
		o, ok := oldBy[name]
		if !ok {
			fmt.Printf("%-28s %14s %14.0f %8s   %12s %12.1f %8s\n",
				name, "-", n.NsPerOp, "new", "-", n.AllocsPerOp, "new")
			continue
		}
		fmt.Printf("%-28s %14.0f %14.0f %8s   %12.1f %12.1f %8s\n",
			name, o.NsPerOp, n.NsPerOp, delta(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp, delta(o.AllocsPerOp, n.AllocsPerOp))
	}
	for _, r := range oldRep.Results {
		if _, ok := newBy[r.Name]; !ok {
			fmt.Printf("%-28s %14.0f %14s %8s   %12.1f %12s %8s\n",
				r.Name, r.NsPerOp, "-", "gone", r.AllocsPerOp, "-", "gone")
		}
	}
}

func kindName(kind string) string {
	if kind == "" {
		return "vrecbench"
	}
	return kind
}

// filterScenarioPrefix is filterPrefix for load-report scenario rows.
func filterScenarioPrefix(rep *report, prefix string) {
	if prefix == "" {
		return
	}
	kept := rep.Scenarios[:0]
	for _, s := range rep.Scenarios {
		if strings.HasPrefix(s.Name, prefix) {
			s.Name = strings.TrimPrefix(s.Name, prefix)
			kept = append(kept, s)
		}
	}
	rep.Scenarios = kept
}

// compareLoad diffs two vrecload reports scenario by scenario: goodput and
// the latency-percentile family, the numbers the overload-control acceptance
// criteria are written against.
func compareLoad(oldPath string, oldRep *report, newPath string, newRep *report, oldPrefix, newPrefix string) {
	filterScenarioPrefix(oldRep, oldPrefix)
	filterScenarioPrefix(newRep, newPrefix)

	oldBy := make(map[string]scenario, len(oldRep.Scenarios))
	for _, s := range oldRep.Scenarios {
		oldBy[s.Name] = s
	}
	newBy := make(map[string]scenario, len(newRep.Scenarios))
	names := make([]string, 0, len(newRep.Scenarios))
	shared := 0
	for _, s := range newRep.Scenarios {
		newBy[s.Name] = s
		names = append(names, s.Name)
		if _, ok := oldBy[s.Name]; ok {
			shared++
		}
	}
	sort.Strings(names)
	if shared == 0 {
		fmt.Printf("benchcompare: %s and %s share no scenario names (%d baseline, %d candidate) — no comparable rows.\n",
			oldPath, newPath, len(oldRep.Scenarios), len(newRep.Scenarios))
		return
	}

	fmt.Printf("baseline:  %s (go %s, GOMAXPROCS %d, %d videos)\n", oldPath, oldRep.GoVersion, oldRep.GOMAXPROCS, oldRep.Videos)
	fmt.Printf("candidate: %s (go %s, GOMAXPROCS %d, %d videos)\n\n", newPath, newRep.GoVersion, newRep.GOMAXPROCS, newRep.Videos)
	fmt.Printf("%-20s %10s %10s %8s   %9s %9s %8s   %9s %9s %8s\n",
		"scenario", "qps old", "qps new", "Δqps", "p99 old", "p99 new", "Δp99", "p999 old", "p999 new", "Δp999")
	for _, name := range names {
		n := newBy[name]
		o, ok := oldBy[name]
		if !ok {
			fmt.Printf("%-20s %10s %10.1f %8s   %9s %9.1f %8s   %9s %9.1f %8s\n",
				name, "-", n.GoodputQPS, "new", "-", n.P99Ms, "new", "-", n.P999Ms, "new")
			continue
		}
		fmt.Printf("%-20s %10.1f %10.1f %8s   %9.1f %9.1f %8s   %9.1f %9.1f %8s\n",
			name, o.GoodputQPS, n.GoodputQPS, delta(o.GoodputQPS, n.GoodputQPS),
			o.P99Ms, n.P99Ms, delta(o.P99Ms, n.P99Ms),
			o.P999Ms, n.P999Ms, delta(o.P999Ms, n.P999Ms))
	}
	for _, s := range oldRep.Scenarios {
		if _, ok := newBy[s.Name]; !ok {
			fmt.Printf("%-20s %10.1f %10s %8s   %9.1f %9s %8s   %9.1f %9s %8s\n",
				s.Name, s.GoodputQPS, "-", "gone", s.P99Ms, "-", "gone", s.P999Ms, "-", "gone")
		}
	}
}
