// Command experiments regenerates the paper's tables and figures over the
// synthetic sharing community and prints the same rows/series the paper
// reports. See EXPERIMENTS.md for paper-vs-measured shapes.
//
// Usage:
//
//	experiments [-scale default|paper] [-exp all|table2|silhouette|fig7|fig8|fig9|fig10|fig11|fig12a|fig12b|fig12c]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"videorec/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: default (seconds) or paper (50-200h sweep, slow)")
	expFlag := flag.String("exp", "all", "experiment id: all, table2, silhouette, fig7, fig8, fig9, fig10, fig11, extended, robustness, ablations, fig12a, fig12b, fig12c")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "default":
		scale = experiments.DefaultScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := func(id string) bool { return *expFlag == "all" || *expFlag == id }

	needEff := false
	for _, id := range []string{"table2", "silhouette", "fig7", "fig8", "fig9", "fig10", "fig11", "extended", "robustness", "ablations"} {
		if want(id) {
			needEff = true
		}
	}
	var env *experiments.Env
	if needEff {
		fmt.Printf("building effectiveness collection (%.0f nominal hours, %d users)...\n",
			scale.EffectivenessHours, scale.Users)
		env = experiments.NewEnv(scale)
		fmt.Printf("collection: %d videos, %d queries\n\n", len(env.Col.Items), len(env.Col.Queries))
	}

	if want("table2") {
		section("Table 2: queries collected from the sharing community")
		for _, q := range env.Table2() {
			fmt.Printf("  %-4s %-15q sources: %s\n", q.ID, q.Text, strings.Join(q.Sources, ", "))
		}
	}

	if want("silhouette") {
		section("§4.2.2 in-text: Silhouette Coefficient, sub-community extraction vs spectral clustering")
		ours, spec := env.Silhouette(2000, scale.OptimalK)
		fmt.Printf("  ours = %.3f    spectral = %.3f    (paper: 0.498 vs 0.242)\n", ours, spec)
	}

	if want("fig7") {
		section("Figure 7: content relevance measures (ERP vs DTW vs κJ)")
		printRows(env.Fig7())
	}

	if want("fig8") {
		section("Figure 8: effect of ω (paper optimum 0.7)")
		printRows(env.Fig8([]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}))
	}

	if want("fig9") {
		section("Figure 9: effect of k (paper: rises to 60, then steady)")
		printRows(env.Fig9(scale.KSweep))
	}

	if want("fig10") {
		section("Figure 10: recommendation approaches (SR, CSF, CR, AFFRF)")
		printRows(env.Fig10())
	}

	if want("fig11") {
		section("Figure 11: effect of social updates on effectiveness (paper: steady)")
		printRows(env.Fig11())
	}

	if want("ablations") {
		section("Extension: design-choice ablations (DESIGN.md)")
		for _, r := range env.Ablations() {
			fmt.Println("  " + r.String())
		}
	}

	if want("robustness") {
		section("Extension: κJ retention under edit severity sweeps")
		rows, floor := env.Robustness()
		for _, r := range rows {
			fmt.Println("  " + r.String())
		}
		fmt.Printf("  (unrelated-pair noise floor: %.3f)\n", floor)
	}

	if want("extended") {
		section("Extension: modern ranking metrics over the Figure 10 approaches")
		last := ""
		for _, r := range env.Fig10Extended() {
			if r.Label != last && last != "" {
				fmt.Println()
			}
			last = r.Label
			fmt.Println("  " + r.String())
		}
	}

	if want("fig12a") || want("fig12b") || want("fig12c") {
		fmt.Printf("\nbuilding efficiency collection (%.0f nominal hours max, %d users)...\n",
			scale.EfficiencyHours[len(scale.EfficiencyHours)-1], scale.Users*4)
		eff := experiments.NewEfficiencyEnv(scale)
		fmt.Printf("collection: %d videos\n", len(eff.Col.Items))
		if want("fig12a") {
			section("Figure 12(a): recommendation time — CSF vs CSF-SAR vs CSF-SAR-H")
			for _, r := range eff.Fig12a() {
				fmt.Println("  " + r.String())
			}
		}
		if want("fig12b") {
			section("Figure 12(b): recommendation time — CSF-SAR-H vs CR")
			for _, r := range eff.Fig12b() {
				fmt.Println("  " + r.String())
			}
		}
		if want("fig12c") {
			section("Figure 12(c): social update maintenance cost, 1-4 months")
			for _, r := range eff.Fig12c() {
				fmt.Println("  " + r.String())
			}
		}
	}
}

func section(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func printRows(rows []experiments.Row) {
	last := ""
	for _, r := range rows {
		if r.Label != last && last != "" {
			fmt.Println()
		}
		last = r.Label
		fmt.Println("  " + r.String())
	}
}
