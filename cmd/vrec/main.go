// Command vrec drives the recommender end to end on a synthetic sharing
// community: generate a collection, build the content and social indexes,
// answer Table 2 queries, and replay social updates.
//
// Usage:
//
//	vrec stats     [-hours H] [-users U] [-seed S]
//	vrec recommend [-hours H] [-users U] [-seed S] [-query q1..q5] [-topk N] [-omega W] [-k K] [-mode csf|sar|sarh|cr|sr]
//	vrec update    [-hours H] [-users U] [-seed S] [-months M]
//	vrec export    [-hours H] [-users U] [-seed S] [-out DIR] [-count N]   write clips as .vv files
//	vrec identify  [-hours H] [-users U] [-seed S] [-file clip.vv] [-topk N]   recommend for an on-disk clip
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"videorec/internal/core"
	"videorec/internal/dataset"
	"videorec/internal/experiments"
	"videorec/internal/social"
	"videorec/internal/video"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	hours := fs.Float64("hours", 8, "nominal collection size in hours")
	users := fs.Int("users", 250, "community size")
	seed := fs.Int64("seed", 1, "generation seed")
	query := fs.String("query", "q1", "query id (q1..q5) whose first source video is the input")
	topk := fs.Int("topk", 10, "recommendations to return")
	omega := fs.Float64("omega", 0.7, "social weight in the fusion")
	k := fs.Int("k", 60, "sub-community count")
	mode := fs.String("mode", "sarh", "csf | sar | sarh | cr | sr")
	months := fs.Int("months", 4, "test-period months to replay")
	outDir := fs.String("out", "clips", "output directory for export")
	count := fs.Int("count", 10, "clips to export")
	file := fs.String("file", "", "clip file (.vv) to identify")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	o := dataset.DefaultOptions()
	o.Hours = *hours
	o.Users = *users
	o.Seed = *seed
	fmt.Printf("generating %.0fh synthetic community (%d users, seed %d)...\n", *hours, *users, *seed)
	col := dataset.Generate(o)
	fmt.Printf("collection: %d videos, %.1f nominal hours\n", len(col.Items), col.Hours())

	switch cmd {
	case "stats":
		stats(col)
	case "recommend":
		rec := build(col, *omega, *k, *mode)
		recommend(rec, col, *query, *topk)
	case "update":
		rec := build(col, *omega, *k, *mode)
		replay(rec, col, *months)
		recommend(rec, col, *query, *topk)
	case "export":
		export(col, *outDir, *count)
	case "identify":
		if *file == "" {
			fmt.Fprintln(os.Stderr, "identify requires -file")
			os.Exit(2)
		}
		rec := build(col, *omega, *k, *mode)
		identify(rec, col, *file, *topk)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vrec <stats|recommend|update|export|identify> [flags]  (run 'vrec recommend -h' for flags)")
	os.Exit(2)
}

// export renders the first clips of the collection into .vv files.
func export(col *dataset.Collection, dir string, count int) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n := 0
	for _, it := range col.Items {
		if n >= count {
			break
		}
		v := it.Render(col.Opts.Synth)
		path := filepath.Join(dir, it.ID+".vv")
		if err := video.WriteFile(path, v); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d frames, topic %d)\n", path, len(v.Frames), it.Topic)
		n++
	}
}

// identify loads an on-disk clip and recommends against the collection —
// the anonymous-viewer flow driven from a file.
func identify(rec *core.Recommender, col *dataset.Collection, path string, topk int) {
	v, err := video.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nidentifying %s (%d frames) against the collection:\n", path, len(v.Frames))
	q := rec.AdHocQuery(v, social.NewDescriptor(""))
	start := time.Now()
	results := rec.Recommend(q, topk) // no exclusion: identification wants the source itself
	for i, r := range results {
		note := ""
		if it, ok := col.ByID[r.VideoID]; ok && (it.ID == v.ID || it.DupOf() == v.ID) {
			note = " (same footage)"
		}
		fmt.Printf("%3d. %-8s score %.4f  content %.4f  social %.4f%s\n",
			i+1, r.VideoID, r.Score, r.Content, r.Social, note)
	}
	fmt.Printf("answered in %v\n", time.Since(start).Round(time.Microsecond))
}

func build(col *dataset.Collection, omega float64, k int, mode string) *core.Recommender {
	opts := core.DefaultOptions()
	opts.Omega = omega
	opts.K = k
	switch mode {
	case "csf":
		opts.Mode = core.ModeExact
	case "sar":
		opts.Mode = core.ModeSAR
	case "sarh":
		opts.Mode = core.ModeSARHash
	case "cr":
		opts.ContentWeightOnly = true
	case "sr":
		opts.SocialOnly = true
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", mode)
		os.Exit(2)
	}
	rec := core.NewRecommender(opts)
	start := time.Now()
	for _, it := range col.Items {
		v := it.Render(col.Opts.Synth)
		rec.IngestVideo(it.ID, v, experiments.SourceDescriptor(col, it))
		v.ReleaseFrames()
	}
	rec.BuildSocial()
	fmt.Printf("ingested and indexed in %v; %d sub-communities extracted\n",
		time.Since(start).Round(time.Millisecond), rec.Partition().Dim)
	return rec
}

func stats(col *dataset.Collection) {
	comments := 0
	for _, it := range col.Items {
		comments += len(it.Comments)
	}
	fmt.Printf("comments: %d over %d months (%d source + %d test)\n",
		comments, col.Opts.MonthsSource+col.Opts.MonthsTest, col.Opts.MonthsSource, col.Opts.MonthsTest)
	dups := 0
	for _, it := range col.Items {
		if it.DupOf() != "" {
			dups++
		}
	}
	fmt.Printf("near-duplicates: %d of %d videos\n", dups, len(col.Items))
	for _, q := range col.Queries {
		fmt.Printf("query %-3s %-15q sources %v\n", q.ID, q.Text, q.Sources)
	}
}

func recommend(rec *core.Recommender, col *dataset.Collection, queryID string, topk int) {
	var src string
	for _, q := range col.Queries {
		if q.ID == queryID && len(q.Sources) > 0 {
			src = q.Sources[0]
		}
	}
	if src == "" {
		fmt.Fprintf(os.Stderr, "unknown query %q\n", queryID)
		os.Exit(2)
	}
	fmt.Printf("\nrecommending for %s (query %s, topic %d):\n", src, queryID, col.ByID[src].Topic)
	start := time.Now()
	results := rec.RecommendID(src, topk)
	elapsed := time.Since(start)
	for i, r := range results {
		it := col.ByID[r.VideoID]
		note := ""
		if it.DupOf() == src || (it.DupOf() != "" && it.DupOf() == col.ByID[src].DupOf()) {
			note = " (near-duplicate)"
		} else if it.Topic == col.ByID[src].Topic {
			note = " (same topic)"
		}
		fmt.Printf("%3d. %-8s score %.4f  content %.4f  social %.4f  relevance %.2f%s\n",
			i+1, r.VideoID, r.Score, r.Content, r.Social, col.Relevance(src, r.VideoID), note)
	}
	fmt.Printf("answered in %v\n", elapsed.Round(time.Microsecond))
}

func replay(rec *core.Recommender, col *dataset.Collection, months int) {
	if months > col.Opts.MonthsTest {
		months = col.Opts.MonthsTest
	}
	for m := 0; m < months; m++ {
		batch := map[string][]string{}
		for _, it := range col.Items {
			for _, cm := range it.Comments {
				if cm.Month == col.Opts.MonthsSource+m {
					batch[it.ID] = append(batch[it.ID], cm.User)
				}
			}
		}
		start := time.Now()
		rep := rec.ApplyUpdates(batch)
		fmt.Printf("month %d: %d connections, %d unions, %d splits, %d videos re-vectorized (%v)\n",
			m+1, rep.Maintenance.NewConnections, rep.Maintenance.Unions,
			rep.Maintenance.Splits, rep.VideosRevectorized,
			time.Since(start).Round(time.Millisecond))
	}
}
