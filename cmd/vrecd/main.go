// Command vrecd serves the recommender over HTTP — the online deployment
// shape of the paper's system. It optionally restores a snapshot at start
// and persists one on demand (POST /snapshot) or on shutdown.
//
//	vrecd [-addr :8080] [-shards N] [-snapshot engine.snap] [-journal engine.wal]
//	      [-demo hours] [-query-timeout 2s] [-max-inflight 256] [-max-queue N]
//	      [-limit-floor 0] [-limit-ceiling 0] [-adjust-window 100ms]
//	      [-brownout] [-brownout-margin 10ms]
//	      [-max-k 100] [-replica-of http://primary:8080] [-max-replica-lag 64]
//	      [-shard-margin 0] [-shard-quorum 0] [-breaker-threshold 5]
//	      [-breaker-backoff 200ms] [-batch-window 0] [-max-batch 64]
//	      [-pprof localhost:6060]
//
// With -demo N the server starts pre-loaded with an N-hour synthetic
// community, ready to answer /recommend immediately. The resilience flags
// bound every recommendation query: requests beyond -max-inflight queue up
// to -max-queue deep and are then shed with 503 + Retry-After, and queries
// that outlive -query-timeout answer degraded (coarse SAR ranking) instead
// of erroring.
//
// With -limit-ceiling > 0 the concurrency limit adapts by latency gradient:
// it probes upward from -max-inflight toward the ceiling while observed
// latency tracks the no-queue baseline and backs off multiplicatively (never
// below -limit-floor) when latency inflates; /stats reports the live limit.
// The wait queue is deadline-aware — a queued query whose remaining budget
// cannot cover the expected service time is answered 504 immediately — and
// Retry-After on refusals is computed from queue depth over drain rate.
// With -brownout, sustained queue pressure browns out queries (tier 1: those
// that waited; tier 2: all) by shrinking their deadline to -brownout-margin,
// so they take the engine's coarse degraded path instead of queueing toward
// the deadline; browned answers are marked degraded:true and never cached.
//
// With -shards N (N > 1) the corpus is partitioned across N shard engines
// behind a scatter-gather router: queries fan out to every shard in parallel
// and the merged top-K is bit-identical to a single-shard deployment.
// -snapshot and -journal then name per-deployment base paths — each shard
// persists to <base>.shard<i> with a manifest at the base path — and /stats
// reports a per-shard breakdown. POST /shards/drain?shard=i retires a shard
// live, redistributing its videos across the survivors.
//
// The sharded fan-out tolerates per-shard failure: -shard-margin carves a
// per-shard budget out of each request deadline (a stuck shard times out
// while the router keeps merge headroom), -breaker-threshold consecutive
// failures open that shard's circuit breaker (half-open probes with jittered
// backoff starting at -breaker-backoff recover it), and -shard-quorum >= 1
// lets the merge answer partially (degraded:true, shardsFailed/shardsTotal
// in the response) as long as that many shards answered — below quorum the
// query 503s with Retry-After. -shard-quorum 0 keeps the strict default:
// every shard must answer.
//
// With -batch-window D (e.g. 500us) concurrent /recommend queries against
// the same view coalesce for up to D and execute as one batch — candidate
// generation is shared and identical (id, k) requests are computed once —
// flushing early once -max-batch queries have gathered. A lone query bypasses
// the window, so single-user latency is unchanged; under concurrency the
// window trades up to D of added latency for aggregate throughput. /stats
// reports batchedTotal, batchFlushes, avgBatchSize and batchBypassTotal.
//
// With -replica-of the process runs as a read-only replica: it bootstraps
// from the primary's snapshot, tails its journal, rejects mutating requests
// with 403, and reports ready on /readyz only once its replication lag is
// within -max-replica-lag batches. -snapshot and -journal then name the
// replica's local persistence, so restarts resume from local state instead
// of re-downloading history. Against a sharded primary, pass the matching
// -shards N: the replica runs one puller per shard stream and serves reads
// through its own local router.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; served only via -pprof
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"videorec"
	"videorec/internal/dataset"
	"videorec/internal/replica"
	"videorec/internal/server"
	"videorec/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 1, "shard engines behind the scatter-gather router (1 = unsharded)")
	snapshot := flag.String("snapshot", "", "snapshot path: restored at start if present, saved on shutdown")
	journal := flag.String("journal", "", "comment journal (WAL): replayed at start, appended on every update")
	demo := flag.Float64("demo", 0, "pre-load an N-hour synthetic community (0 = start empty)")
	queryTimeout := flag.Duration("query-timeout", 2*time.Second, "per-query deadline; near-deadline queries answer degraded (0 = none)")
	maxInflight := flag.Int("max-inflight", 256, "max concurrently executing queries (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "max queries queued for a slot before shedding (0 = same as -max-inflight)")
	limitFloor := flag.Int("limit-floor", 0, "adaptive concurrency limit floor (0 = default 1; needs -limit-ceiling)")
	limitCeiling := flag.Int("limit-ceiling", 0, "adaptive concurrency limit ceiling; the limiter probes between floor and ceiling by latency gradient (0 = fixed -max-inflight limit)")
	adjustWindow := flag.Duration("adjust-window", 0, "adaptive limiter adjustment cadence (0 = default 100ms)")
	brownout := flag.Bool("brownout", false, "serve coarse degraded answers under queue pressure instead of queueing toward the deadline")
	brownoutMargin := flag.Duration("brownout-margin", 0, "deadline budget left to a browned-out query (0 = default 10ms; keep it under the engine degrade margin)")
	maxK := flag.Int("max-k", 100, "cap on the k query parameter")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed (503) responses")
	replicaOf := flag.String("replica-of", "", "run as a read-only replica of this primary URL")
	maxReplicaLag := flag.Uint64("max-replica-lag", 64, "readiness threshold: max replication lag in batches")
	shardMargin := flag.Duration("shard-margin", 0, "per-shard budget margin under the request deadline (sharded; 0 = no per-shard budget)")
	shardQuorum := flag.Int("shard-quorum", 0, "min shards that must answer; partial answers above it are degraded (0 = all shards required)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive shard failures that open its circuit breaker (0 = default 5, <0 = disabled)")
	breakerBackoff := flag.Duration("breaker-backoff", 0, "initial open interval before a breaker's half-open probe (0 = default 200ms)")
	batchWindow := flag.Duration("batch-window", 0, "coalesce concurrent queries for up to this long into one batch (0 = no batching; single queries always bypass)")
	maxBatch := flag.Int("max-batch", 0, "flush a coalescing batch early at this many queries (0 = default 64; needs -batch-window)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	flag.Parse()

	if *pprofAddr != "" {
		// The pprof mux stays off the serving listener so profiling endpoints
		// are never exposed on the public address and profile downloads don't
		// compete with query traffic for the serving accept loop.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	cfg := server.Config{
		SnapshotPath:   *snapshot,
		MaxInFlight:    *maxInflight,
		MaxQueue:       *maxQueue,
		LimitFloor:     *limitFloor,
		LimitCeiling:   *limitCeiling,
		AdjustWindow:   *adjustWindow,
		Brownout:       *brownout,
		BrownoutMargin: *brownoutMargin,
		QueryTimeout:   *queryTimeout,
		MaxK:           *maxK,
		RetryAfter:     *retryAfter,
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,
	}

	if *shards < 1 {
		log.Fatalf("-shards must be >= 1, got %d", *shards)
	}
	var eng server.Backend
	var runReplica func(context.Context)
	if *replicaOf != "" {
		n := *shards
		engines := make([]*videorec.Engine, n)
		reps := make([]*replica.Replica, n)
		for i := range reps {
			rep, err := replica.Open(replica.Config{
				Primary:      *replicaOf,
				Shard:        i,
				SnapshotPath: shardedPath(*snapshot, i, n),
				JournalPath:  shardedPath(*journal, i, n),
				Logf:         log.Printf,
			})
			if err != nil {
				log.Fatal(err)
			}
			reps[i], engines[i] = rep, rep.Engine()
		}
		if n == 1 {
			eng = engines[0]
		} else {
			router, err := shard.NewFromEngines(engines)
			if err != nil {
				log.Fatal(err)
			}
			applyResilience(router, *shardMargin, *shardQuorum, *breakerThreshold, *breakerBackoff)
			eng = router
		}
		cfg.ReadOnly = true
		cfg.SnapshotPath = "" // POST /snapshot is the primary's concern
		cfg.ReadyChecks = []server.ReadyCheck{{
			Name: "replicaLag",
			Check: func() error {
				for i, rep := range reps {
					if err := rep.Ready(*maxReplicaLag); err != nil {
						return fmt.Errorf("shard %d: %w", i, err)
					}
				}
				return nil
			},
		}}
		runReplica = func(ctx context.Context) {
			var wg sync.WaitGroup
			for i, rep := range reps {
				wg.Add(1)
				go func(i int, rep *replica.Replica) {
					defer wg.Done()
					rep.Run(ctx)
					boots, batches, retries := rep.Stats()
					log.Printf("replica shard %d stopped at seq %d (%d bootstraps, %d batches, %d retries)",
						i, rep.Engine().AppliedSeq(), boots, batches, retries)
				}(i, rep)
			}
			wg.Wait()
		}
		log.Printf("replicating %d stream(s) from %s (ready under %d batches of lag)",
			n, *replicaOf, *maxReplicaLag)
	} else if *shards > 1 {
		router, err := bootstrapSharded(*snapshot, *demo, *shards)
		if err != nil {
			log.Fatal(err)
		}
		applyResilience(router, *shardMargin, *shardQuorum, *breakerThreshold, *breakerBackoff)
		if *journal != "" {
			if n, err := router.ReplayJournals(*journal); err != nil {
				log.Fatalf("replay journals: %v", err)
			} else if n > 0 {
				log.Printf("replayed %d journaled update batches across %d shards", n, router.NumShards())
			}
			if err := router.AttachJournals(*journal); err != nil {
				log.Fatal(err)
			}
			cfg.ReadyChecks = append(cfg.ReadyChecks, server.JournalCheck(router))
		}
		eng = router
		log.Printf("serving %d shards behind the scatter-gather router", router.NumShards())
	} else {
		e, err := bootstrap(*snapshot, *demo)
		if err != nil {
			log.Fatal(err)
		}
		if *journal != "" {
			if n, err := e.ReplayJournal(*journal); err != nil {
				log.Fatalf("replay journal: %v", err)
			} else if n > 0 {
				log.Printf("replayed %d journaled update batches", n)
			}
			if err := e.AttachJournal(*journal); err != nil {
				log.Fatal(err)
			}
			cfg.ReadyChecks = append(cfg.ReadyChecks, server.JournalCheck(e))
		}
		eng = e
	}
	log.Printf("engine ready: %d videos, %d sub-communities, view v%d, seq %d",
		eng.Len(), eng.SubCommunities(), eng.Version(), eng.AppliedSeq())

	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.NewWithConfig(eng, cfg).Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	repCtx, stopReplica := context.WithCancel(context.Background())
	defer stopReplica()
	if runReplica != nil {
		go runReplica(repCtx)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	stopReplica()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Drain in order: stop accepting and wait out in-flight requests (which
	// empties the admission limiter), write a final cursor-stamped snapshot,
	// then flush and close the journal — no torn tail, nothing lost.
	if err := server.Drain(ctx, srv, eng, *snapshot); err != nil {
		log.Printf("drain: %v", err)
	} else if *snapshot != "" {
		log.Printf("snapshot saved to %s", *snapshot)
	}
}

// applyResilience maps the fan-out fault-tolerance flags onto the router.
// Called after bootstrap (snapshot restore included) so the flags win over
// whatever the manifest deployment used before.
func applyResilience(router *shard.Router, margin time.Duration, quorum, threshold int, backoff time.Duration) {
	router.SetResilience(shard.Resilience{
		ShardMargin:      margin,
		MinShardQuorum:   quorum,
		BreakerThreshold: threshold,
		BreakerBackoff:   backoff,
	})
	if quorum > 0 {
		log.Printf("partial answers enabled: quorum %d of %d shards", quorum, router.NumShards())
	}
}

// shardedPath maps a base persistence path to shard i's file: the base path
// itself for an unsharded deployment, <base>.shard<i> otherwise — the same
// layout the sharded primary uses, so a promoted replica's files line up.
func shardedPath(base string, i, n int) string {
	if base == "" || n == 1 {
		return base
	}
	return shard.ShardPath(base, i)
}

// ingester is the ingest surface shared by the single engine and the router,
// letting one demo loader populate either.
type ingester interface {
	Add(videorec.Clip) error
	Build()
}

func bootstrap(snapshot string, demoHours float64) (*videorec.Engine, error) {
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			log.Printf("restoring snapshot %s", snapshot)
			return videorec.LoadFile(snapshot)
		}
	}
	eng := videorec.New(videorec.Options{})
	if err := loadDemo(eng, demoHours); err != nil {
		return nil, err
	}
	return eng, nil
}

func bootstrapSharded(snapshot string, demoHours float64, n int) (*shard.Router, error) {
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			log.Printf("restoring sharded snapshot %s", snapshot)
			router, err := shard.LoadFile(snapshot)
			if err != nil {
				return nil, err
			}
			if router.NumShards() != n {
				// The manifest is authoritative: shard count is fixed at save
				// time and drains change it, so the flag only sizes a fresh
				// deployment.
				log.Printf("snapshot has %d shards; ignoring -shards=%d", router.NumShards(), n)
			}
			return router, nil
		}
	}
	router, err := shard.New(n, videorec.Options{})
	if err != nil {
		return nil, err
	}
	if err := loadDemo(router, demoHours); err != nil {
		return nil, err
	}
	return router, nil
}

func loadDemo(ing ingester, demoHours float64) error {
	if demoHours <= 0 {
		return nil
	}
	log.Printf("generating %.0fh demo community", demoHours)
	o := dataset.DefaultOptions()
	o.Hours = demoHours
	o.Users = 250
	col := dataset.Generate(o)
	for _, it := range col.Items {
		v := it.Render(o.Synth)
		var commenters []string
		for _, cm := range it.Comments {
			if cm.Month < o.MonthsSource {
				commenters = append(commenters, cm.User)
			}
		}
		clip := videorec.Clip{ID: it.ID, FPS: v.FPS, Owner: it.Owner, Commenters: commenters}
		for _, f := range v.Frames {
			clip.Frames = append(clip.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
		}
		if err := ing.Add(clip); err != nil {
			return fmt.Errorf("demo ingest %s: %w", it.ID, err)
		}
	}
	ing.Build()
	return nil
}
