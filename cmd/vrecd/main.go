// Command vrecd serves the recommender over HTTP — the online deployment
// shape of the paper's system. It optionally restores a snapshot at start
// and persists one on demand (POST /snapshot) or on shutdown.
//
//	vrecd [-addr :8080] [-snapshot engine.snap] [-journal engine.wal] [-demo hours]
//	      [-query-timeout 2s] [-max-inflight 256] [-max-queue N] [-max-k 100]
//	      [-replica-of http://primary:8080] [-max-replica-lag 64]
//	      [-pprof localhost:6060]
//
// With -demo N the server starts pre-loaded with an N-hour synthetic
// community, ready to answer /recommend immediately. The resilience flags
// bound every recommendation query: requests beyond -max-inflight queue up
// to -max-queue deep and are then shed with 503 + Retry-After, and queries
// that outlive -query-timeout answer degraded (coarse SAR ranking) instead
// of erroring.
//
// With -replica-of the process runs as a read-only replica: it bootstraps
// from the primary's snapshot, tails its journal, rejects mutating requests
// with 403, and reports ready on /readyz only once its replication lag is
// within -max-replica-lag batches. -snapshot and -journal then name the
// replica's local persistence, so restarts resume from local state instead
// of re-downloading history.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; served only via -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"videorec"
	"videorec/internal/dataset"
	"videorec/internal/replica"
	"videorec/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot path: restored at start if present, saved on shutdown")
	journal := flag.String("journal", "", "comment journal (WAL): replayed at start, appended on every update")
	demo := flag.Float64("demo", 0, "pre-load an N-hour synthetic community (0 = start empty)")
	queryTimeout := flag.Duration("query-timeout", 2*time.Second, "per-query deadline; near-deadline queries answer degraded (0 = none)")
	maxInflight := flag.Int("max-inflight", 256, "max concurrently executing queries (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "max queries queued for a slot before shedding (0 = same as -max-inflight)")
	maxK := flag.Int("max-k", 100, "cap on the k query parameter")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed (503) responses")
	replicaOf := flag.String("replica-of", "", "run as a read-only replica of this primary URL")
	maxReplicaLag := flag.Uint64("max-replica-lag", 64, "readiness threshold: max replication lag in batches")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	flag.Parse()

	if *pprofAddr != "" {
		// The pprof mux stays off the serving listener so profiling endpoints
		// are never exposed on the public address and profile downloads don't
		// compete with query traffic for the serving accept loop.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	cfg := server.Config{
		SnapshotPath: *snapshot,
		MaxInFlight:  *maxInflight,
		MaxQueue:     *maxQueue,
		QueryTimeout: *queryTimeout,
		MaxK:         *maxK,
		RetryAfter:   *retryAfter,
	}

	var eng *videorec.Engine
	var runReplica func(context.Context)
	if *replicaOf != "" {
		rep, err := replica.Open(replica.Config{
			Primary:      *replicaOf,
			SnapshotPath: *snapshot,
			JournalPath:  *journal,
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		eng = rep.Engine()
		cfg.ReadOnly = true
		cfg.SnapshotPath = "" // POST /snapshot is the primary's concern
		cfg.ReadyChecks = []server.ReadyCheck{{
			Name:  "replicaLag",
			Check: func() error { return rep.Ready(*maxReplicaLag) },
		}}
		runReplica = func(ctx context.Context) {
			rep.Run(ctx)
			boots, batches, retries := rep.Stats()
			log.Printf("replica stopped at seq %d (%d bootstraps, %d batches, %d retries)",
				eng.AppliedSeq(), boots, batches, retries)
		}
		log.Printf("replicating from %s (ready under %d batches of lag)", *replicaOf, *maxReplicaLag)
	} else {
		var err error
		if eng, err = bootstrap(*snapshot, *demo); err != nil {
			log.Fatal(err)
		}
		if *journal != "" {
			if n, err := eng.ReplayJournal(*journal); err != nil {
				log.Fatalf("replay journal: %v", err)
			} else if n > 0 {
				log.Printf("replayed %d journaled update batches", n)
			}
			if err := eng.AttachJournal(*journal); err != nil {
				log.Fatal(err)
			}
			cfg.ReadyChecks = append(cfg.ReadyChecks, server.JournalCheck(eng))
		}
	}
	log.Printf("engine ready: %d videos, %d sub-communities, view v%d, seq %d",
		eng.Len(), eng.SubCommunities(), eng.Version(), eng.AppliedSeq())

	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.NewWithConfig(eng, cfg).Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	repCtx, stopReplica := context.WithCancel(context.Background())
	defer stopReplica()
	if runReplica != nil {
		go runReplica(repCtx)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	stopReplica()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Drain in order: stop accepting and wait out in-flight requests (which
	// empties the admission limiter), write a final cursor-stamped snapshot,
	// then flush and close the journal — no torn tail, nothing lost.
	if err := server.Drain(ctx, srv, eng, *snapshot); err != nil {
		log.Printf("drain: %v", err)
	} else if *snapshot != "" {
		log.Printf("snapshot saved to %s", *snapshot)
	}
}

func bootstrap(snapshot string, demoHours float64) (*videorec.Engine, error) {
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			log.Printf("restoring snapshot %s", snapshot)
			return videorec.LoadFile(snapshot)
		}
	}
	eng := videorec.New(videorec.Options{})
	if demoHours <= 0 {
		return eng, nil
	}
	log.Printf("generating %.0fh demo community", demoHours)
	o := dataset.DefaultOptions()
	o.Hours = demoHours
	o.Users = 250
	col := dataset.Generate(o)
	for _, it := range col.Items {
		v := it.Render(o.Synth)
		var commenters []string
		for _, cm := range it.Comments {
			if cm.Month < o.MonthsSource {
				commenters = append(commenters, cm.User)
			}
		}
		clip := videorec.Clip{ID: it.ID, FPS: v.FPS, Owner: it.Owner, Commenters: commenters}
		for _, f := range v.Frames {
			clip.Frames = append(clip.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
		}
		if err := eng.Add(clip); err != nil {
			return nil, fmt.Errorf("demo ingest %s: %w", it.ID, err)
		}
	}
	eng.Build()
	return eng, nil
}
