// Command vrecbench measures the serving-path performance of the
// recommender over fixed synthetic workloads and writes the measurements as
// JSON (BENCH_PR*.json files checked into the repo record one run per PR).
// Each recommend workload drives View.RecommendCtx — the same frozen-view
// entry point vrecd serves — so the numbers include candidate gathering,
// refinement and top-K selection. The candidates/* workloads isolate
// candidate generation (steps 1–2: posting-list union, social top-K, LCP
// walk) through View.GatherCandidates, and two κJ micro-workloads isolate
// the compiled vs. uncompiled refinement kernels. The shards/* workloads
// drive the scatter-gather router end to end — partitioned corpus, parallel
// fan-out, merged top-K — with each shard refining serially, so the qps
// curve across shard counts measures the router's scaling and its merged
// rankings stay bit-identical to shards/1 by construction. shards/faulty
// repeats the four-shard run with one shard armed with a latency fault past
// its per-shard budget: the degraded column reports the partial-answer rate
// and the latency percentiles show the circuit breaker sidelining the slow
// shard.
//
// The unbatched/N and batch/N workload pairs measure batched execution: the
// same Zipf-skewed query stream (fixed seed, s=1.2 — the head-heavy request
// mix of a sharing community) is answered N queries per op, either as N
// serial Engine.RecommendCtx calls or as one Engine.RecommendBatchCtx round
// that deduplicates repeated (clip, k) requests and shares candidate
// generation across the cohort. ns_per_op is per ROUND for these rows; qps
// counts queries, so the batch/N ÷ unbatched/N qps ratio is the aggregate
// speedup of batching at that cohort size.
//
// Usage:
//
//	go run ./cmd/vrecbench -out BENCH_PR8.json
//	go run ./cmd/vrecbench -short   # CI-sized run, seconds not minutes
//
// Compare two runs with cmd/benchcompare (make bench-compare).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"videorec"
	"videorec/internal/core"
	"videorec/internal/dataset"
	"videorec/internal/faults"
	"videorec/internal/shard"
	"videorec/internal/signature"
	"videorec/internal/social"
)

// result is one workload's measurement row.
type result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	QPS         float64 `json:"qps"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	Degraded    int     `json:"degraded,omitempty"`
}

type report struct {
	GeneratedUnix int64    `json:"generated_unix"`
	GoVersion     string   `json:"go_version"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	Hours         float64  `json:"hours"`
	Users         int      `json:"users"`
	Videos        int      `json:"videos"`
	Seed          int64    `json:"seed"`
	TopK          int      `json:"top_k"`
	Results       []result `json:"results"`
}

func main() {
	var (
		out   = flag.String("out", "BENCH_PR8.json", "output JSON path")
		short = flag.Bool("short", false, "CI-sized run: smaller collection, fewer iterations")
		hours = flag.Float64("hours", 8, "collection size in video-hours")
		users = flag.Int("users", 200, "community size")
		seed  = flag.Int64("seed", 11, "dataset seed")
		topK  = flag.Int("topk", 10, "recommendation depth")
		only  = flag.String("only", "", "run only workloads whose name starts with this prefix (e.g. updates/)")
	)
	flag.Parse()
	keep := func(name string) bool { return *only == "" || strings.HasPrefix(name, *only) }

	iters := 300
	if *short {
		*hours, *users, iters = 4, 150, 60
	}

	log.Printf("generating %.0fh / %d users (seed %d)...", *hours, *users, *seed)
	o := dataset.DefaultOptions()
	o.Hours = *hours
	o.Users = *users
	o.Seed = *seed
	col := dataset.Generate(o)

	// Extract once; every workload's recommender ingests the same series.
	sigOpts := signature.DefaultOptions()
	series := make(map[string]signature.Series, len(col.Items))
	descs := make(map[string]social.Descriptor, len(col.Items))
	for _, it := range col.Items {
		v := it.Render(o.Synth)
		series[it.ID] = signature.Extract(v, sigOpts)
		v.ReleaseFrames()
		var commenters []string
		for _, cm := range it.Comments {
			if cm.Month < col.Opts.MonthsSource {
				commenters = append(commenters, cm.User)
			}
		}
		descs[it.ID] = social.NewDescriptor(it.Owner, commenters...)
	}

	build := func(mutate func(*core.Options)) *core.View {
		opts := core.DefaultOptions()
		opts.K = 12
		if mutate != nil {
			mutate(&opts)
		}
		r := core.NewRecommender(opts)
		for _, it := range col.Items {
			r.IngestSeries(it.ID, series[it.ID], descs[it.ID])
		}
		r.BuildSocial()
		return r.Freeze()
	}

	queries := make([]string, 0, len(col.Items))
	for _, it := range col.Items {
		queries = append(queries, it.ID)
	}
	sort.Strings(queries)

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Hours:         *hours,
		Users:         *users,
		Videos:        len(col.Items),
		Seed:          *seed,
		TopK:          *topK,
	}

	type workload struct {
		name   string
		iters  int
		mutate func(*core.Options)
		// deadline, when nonzero, is attached to every query's context;
		// inside the degrade margin it forces the coarse-answer path.
		deadline time.Duration
	}
	workloads := []workload{
		{name: "recommend/sarhash/parallel", iters: iters, mutate: func(o *core.Options) { o.Mode = core.ModeSARHash }},
		{name: "recommend/sarhash/serial", iters: iters, mutate: func(o *core.Options) { o.Mode = core.ModeSARHash; o.RefineWorkers = 1 }},
		{name: "recommend/sar/serial", iters: iters, mutate: func(o *core.Options) { o.Mode = core.ModeSAR; o.RefineWorkers = 1 }},
		{name: "recommend/exact/fullscan", iters: max(iters/10, 5), mutate: func(o *core.Options) { o.Mode = core.ModeExact }},
		{name: "recommend/sarhash/degraded", iters: iters, mutate: func(o *core.Options) { o.Mode = core.ModeSARHash }, deadline: 15 * time.Millisecond},
	}

	for _, wl := range workloads {
		if !keep(wl.name) {
			continue
		}
		v := build(wl.mutate)
		r := runWorkload(wl.name, wl.iters, func(i int) (bool, error) {
			ctx := context.Background()
			if wl.deadline > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, time.Now().Add(wl.deadline))
				defer cancel()
			}
			id := queries[i%len(queries)]
			q, ok := v.QueryFor(id)
			if !ok {
				return false, fmt.Errorf("missing query %s", id)
			}
			res, info, err := v.RecommendCtx(ctx, q, *topK, id)
			if err == nil && len(res) == 0 {
				return false, fmt.Errorf("query %s returned no results", id)
			}
			return info.Degraded, err
		})
		rep.Results = append(rep.Results, r)
		log.Printf("%-28s %10.0f ns/op  %8.1f qps  %7.0f allocs/op  p99 %s",
			r.Name, r.NsPerOp, r.QPS, r.AllocsPerOp, time.Duration(r.P99Ns))
	}

	// Batched-serving workload pairs: one Zipf-skewed stream, replayed
	// identically through the serial and the batched entry points at round
	// sizes 1, 8 and 64. The skew (s=1.2 over the corpus, fixed seed) mirrors
	// a sharing community's head-heavy request mix, so larger rounds carry
	// repeats the engine-level dedup collapses and near-misses the shared
	// posting-list merge amortizes. One op = one round of N queries; qps
	// counts queries (see runWorkloadN), so rows are comparable across N.
	if keep("unbatched/") || keep("batch/") {
		eng := videorec.New(videorec.Options{SubCommunities: 12, RefineWorkers: 1})
		for _, it := range col.Items {
			if err := eng.AddPrepared(videorec.PreparedClip{ID: it.ID, Series: series[it.ID], Desc: descs[it.ID]}); err != nil {
				log.Fatalf("batch ingest %s: %v", it.ID, err)
			}
		}
		eng.Build()
		const maxRound = 64
		zr := rand.New(rand.NewSource(17))
		zipf := rand.NewZipf(zr, 1.2, 1, uint64(len(queries)-1))
		stream := make([]string, (iters+3)*maxRound) // +3 rounds of warm-up headroom
		for i := range stream {
			stream[i] = queries[zipf.Uint64()]
		}
		for _, n := range []int{1, 8, 64} {
			n := n
			round := func(i int) []string {
				base := (i * n) % (len(stream) - n + 1)
				return stream[base : base+n]
			}
			rep.Results = append(rep.Results, logRow(runWorkloadN(fmt.Sprintf("unbatched/%d", n), iters, n, func(i int) (bool, error) {
				deg := false
				for _, id := range round(i) {
					res, info, err := eng.RecommendCtx(context.Background(), id, *topK)
					if err != nil {
						return false, err
					}
					if len(res) == 0 {
						return false, fmt.Errorf("query %s returned no results", id)
					}
					deg = deg || info.Degraded
				}
				return deg, nil
			})))
			reqs := make([]videorec.BatchRequest, n)
			rep.Results = append(rep.Results, logRow(runWorkloadN(fmt.Sprintf("batch/%d", n), iters, n, func(i int) (bool, error) {
				for j, id := range round(i) {
					reqs[j] = videorec.BatchRequest{ClipID: id, TopK: *topK}
				}
				deg := false
				for _, a := range eng.RecommendBatchCtx(context.Background(), reqs) {
					if a.Err != nil {
						return false, a.Err
					}
					if len(a.Results) == 0 {
						return false, fmt.Errorf("batched query returned no results")
					}
					deg = deg || a.Meta.Degraded
				}
				return deg, nil
			})))
		}
	}

	// Scatter-gather workloads: the full sharded serving path — routed
	// query lookup, parallel per-shard gather+refine, merged top-K. Every
	// shard refines serially (RefineWorkers=1) so parallelism comes only
	// from the fan-out: the qps ratio between shard counts is the router's
	// scaling, not the refinement pool's. Rankings are bit-identical across
	// shard counts (the golden tests in internal/shard prove it); here we
	// only measure.
	for _, n := range []int{1, 4, 16} {
		if !keep(fmt.Sprintf("shards/%d", n)) {
			continue
		}
		router, err := shard.New(n, videorec.Options{SubCommunities: 12, RefineWorkers: 1})
		if err != nil {
			log.Fatal(err)
		}
		for _, it := range col.Items {
			if err := router.AddPrepared(videorec.PreparedClip{ID: it.ID, Series: series[it.ID], Desc: descs[it.ID]}); err != nil {
				log.Fatalf("shards/%d ingest %s: %v", n, it.ID, err)
			}
		}
		router.Build()
		rep.Results = append(rep.Results, logRow(runWorkload(fmt.Sprintf("shards/%d", n), iters, func(i int) (bool, error) {
			id := queries[i%len(queries)]
			res, info, err := router.RecommendCtx(context.Background(), id, *topK)
			if err == nil && len(res) == 0 {
				return false, fmt.Errorf("query %s returned no results", id)
			}
			return info.Degraded, err
		})))
	}

	// shards/faulty: the degraded serving path under a persistent slow shard.
	// One of four shards is armed with a 30ms latency fault — well past the
	// per-shard budget (deadline − margin ≈ 25ms) — so every answer is a
	// quorum-satisfying partial from the three healthy shards. The Degraded
	// column is the partial-answer count; the p50/p99 spread shows the
	// circuit breaker at work: once it opens, the slow shard is skipped and
	// the common case runs at healthy-path latency, while the tail carries
	// the occasional half-open probe that re-pays the fault to test for
	// recovery.
	if keep("shards/faulty") {
		const n = 4
		router, err := shard.New(n, videorec.Options{SubCommunities: 12, RefineWorkers: 1})
		if err != nil {
			log.Fatal(err)
		}
		for _, it := range col.Items {
			if err := router.AddPrepared(videorec.PreparedClip{ID: it.ID, Series: series[it.ID], Desc: descs[it.ID]}); err != nil {
				log.Fatalf("shards/faulty ingest %s: %v", it.ID, err)
			}
		}
		router.Build()
		router.SetResilience(shard.Resilience{
			ShardMargin:    75 * time.Millisecond,
			MinShardQuorum: 3,
		})
		faults.Arm(shard.SiteForShard(shard.FaultFanOutSlow, 1), faults.Latency(30*time.Millisecond))
		rep.Results = append(rep.Results, logRow(runWorkload("shards/faulty", iters, func(i int) (bool, error) {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			id := queries[i%len(queries)]
			res, info, err := router.RecommendCtx(ctx, id, *topK)
			if err == nil && len(res) == 0 {
				return false, fmt.Errorf("query %s returned no results", id)
			}
			return info.Degraded, err
		})))
		faults.Reset()
	}

	// Candidate-generation micro-workloads: steps 1–2 in isolation.
	// candidates/social exercises the posting-list k-way merge plus the
	// bounded s̃J selection; candidates/content exercises the heap-driven LCP
	// walk with bitset dedupe. Both run against a warm pooled scratch, so
	// allocs_per_op directly reports the steady-state gathering allocations
	// (the dense-ID design holds this at zero).
	gatherIters := iters * 20
	for _, cw := range []struct {
		name   string
		mutate func(*core.Options)
	}{
		{name: "candidates/social", mutate: func(o *core.Options) { o.Mode = core.ModeSARHash; o.SocialOnly = true }},
		{name: "candidates/content", mutate: func(o *core.Options) { o.Mode = core.ModeSARHash; o.ContentWeightOnly = true }},
	} {
		if !keep(cw.name) {
			continue
		}
		cv := build(cw.mutate)
		rep.Results = append(rep.Results, logRow(runWorkload(cw.name, gatherIters, func(i int) (bool, error) {
			id := queries[i%len(queries)]
			q, ok := cv.QueryFor(id)
			if !ok {
				return false, fmt.Errorf("missing query %s", id)
			}
			n, err := cv.GatherCandidates(context.Background(), q, id)
			if err == nil && n == 0 {
				return false, fmt.Errorf("query %s gathered no candidates", id)
			}
			return false, err
		})))
	}

	// κJ micro-workloads: one refinement step (query vs. stored candidate),
	// compiled kernel with a warmed scratch vs. the uncompiled reference.
	// The allocs_per_op gap between these two rows is the per-candidate
	// allocation reduction of the compiled representation.
	if keep("kj/") {
		v := build(nil)
		ids := v.SortedIDs()
		q, _ := v.QueryFor(ids[0])
		recs := make([]*core.Record, 0, len(ids))
		for _, id := range ids[1:] {
			rec, _ := v.Record(id)
			recs = append(recs, rec)
		}
		threshold := v.Options().MatchThreshold
		kjIters := iters * 40

		var scratch signature.KJScratch
		qc := signature.CompileSeries(q.Series)
		for _, rec := range recs { // warm the scratch high-water mark
			signature.KJCancelCompiled(qc, rec.Compiled, threshold, nil, &scratch)
		}
		rep.Results = append(rep.Results, logRow(runWorkload("kj/compiled", kjIters, func(i int) (bool, error) {
			signature.KJCancelCompiled(qc, recs[i%len(recs)].Compiled, threshold, nil, &scratch)
			return false, nil
		})))
		rep.Results = append(rep.Results, logRow(runWorkload("kj/uncompiled", kjIters, func(i int) (bool, error) {
			signature.KJCancel(q.Series, recs[i%len(recs)].Series, threshold, nil)
			return false, nil
		})))
	}

	// updates/{small,storm}: the write path end to end — Engine.ApplyUpdates
	// derives the new social connections a comment batch induces, maintains
	// the sub-communities (new-user attachment, unions, splits), grows
	// descriptors, re-vectorizes every touched video and publishes a new
	// view. Batches replay the dataset's test-period comment timeline
	// (months past the ingest horizon) in deterministic order, cycling when
	// exhausted — so after the first cycle most user pairs already exist and
	// the steady state is the delta-apply hot path: weight patches plus
	// occasional structural work, which is what a production comment stream
	// looks like between full rebuilds. updates/small applies
	// conversational batches (64 comments per op); updates/storm applies
	// republish-burst batches (2048 comments per op), the write pressure the
	// vrecload storm scenarios fire mid-traffic. One op = one journal-less
	// ApplyUpdates call, copy-on-write clone and view publication included.
	if keep("updates/") {
		type event struct{ vid, user string }
		var stream []event
		for _, it := range col.Items {
			for _, cm := range it.Comments {
				if cm.Month >= col.Opts.MonthsSource {
					stream = append(stream, event{vid: it.ID, user: cm.User})
				}
			}
		}
		if len(stream) == 0 {
			log.Fatal("updates/: dataset has no test-period comments")
		}
		for _, uw := range []struct {
			name  string
			batch int
			iters int
		}{
			{name: "updates/small", batch: 64, iters: iters},
			{name: "updates/storm", batch: 2048, iters: max(iters/5, 20)},
		} {
			eng := videorec.New(videorec.Options{SubCommunities: 12, RefineWorkers: 1})
			for _, it := range col.Items {
				if err := eng.AddPrepared(videorec.PreparedClip{ID: it.ID, Series: series[it.ID], Desc: descs[it.ID]}); err != nil {
					log.Fatalf("%s ingest %s: %v", uw.name, it.ID, err)
				}
			}
			eng.Build()
			batch := func(i int) map[string][]string {
				out := make(map[string][]string, uw.batch/4)
				base := i * uw.batch
				for j := 0; j < uw.batch; j++ {
					ev := stream[(base+j)%len(stream)]
					out[ev.vid] = append(out[ev.vid], ev.user)
				}
				return out
			}
			rep.Results = append(rep.Results, logRow(runWorkload(uw.name, uw.iters, func(i int) (bool, error) {
				_, err := eng.ApplyUpdates(batch(i))
				return false, err
			})))
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// runWorkload times iters calls of op, recording wall-clock latency per call
// and heap-allocation deltas across the whole loop.
func runWorkload(name string, iters int, op func(i int) (bool, error)) result {
	return runWorkloadN(name, iters, 1, op)
}

// runWorkloadN is runWorkload for ops that answer queriesPerOp queries per
// call (the unbatched/N and batch/N rounds): latency percentiles and
// ns_per_op stay per OP, while qps is scaled to count queries — the number
// that stays comparable between a round of N and a single-query op.
func runWorkloadN(name string, iters, queriesPerOp int, op func(i int) (bool, error)) result {
	// A few warm-up calls populate caches (lazy compiles, map growth) so the
	// measured loop sees steady state.
	for i := 0; i < min(iters, 3); i++ {
		if _, err := op(i); err != nil {
			log.Fatalf("%s warm-up: %v", name, err)
		}
	}
	lat := make([]time.Duration, iters)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	degraded := 0
	start := time.Now()
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		deg, err := op(i)
		lat[i] = time.Since(t0)
		if err != nil {
			log.Fatalf("%s iter %d: %v", name, i, err)
		}
		if deg {
			degraded++
		}
	}
	total := time.Since(start)
	runtime.ReadMemStats(&after)

	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pct := func(p float64) int64 {
		idx := int(p * float64(iters-1))
		return lat[idx].Nanoseconds()
	}
	return result{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(total.Nanoseconds()) / float64(iters),
		QPS:         float64(iters*queriesPerOp) / total.Seconds(),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		P50Ns:       pct(0.50),
		P99Ns:       pct(0.99),
		Degraded:    degraded,
	}
}

func logRow(r result) result {
	log.Printf("%-28s %10.0f ns/op  %8.1f qps  %7.0f allocs/op  p99 %s",
		r.Name, r.NsPerOp, r.QPS, r.AllocsPerOp, time.Duration(r.P99Ns))
	return r
}
