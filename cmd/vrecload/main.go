// Command vrecload is the HTTP-level traffic harness from the ROADMAP: it
// drives a vrecd-shaped server with the load shapes a sharing community
// actually produces — Zipf-popular videos (the head-heavy request mix) and
// scheduled comment storms that republish the view mid-traffic — and
// reports what the serving stack did about it: latency percentiles over
// admitted requests, shed/evicted/degraded rates, and goodput.
//
// Unlike vrecbench (in-process microbenchmarks of the engine), vrecload
// measures the whole serving path over real HTTP: admission control, the
// adaptive concurrency limiter, deadline-aware queueing, brownout, query
// coalescing, caching, and the handlers. It is how the overload-control
// subsystem is proven end to end.
//
// Two generator modes:
//
//   - closed (default): -conc workers issue queries back to back — offered
//     load self-adjusts to server capacity, the classic saturation probe.
//     A storm multiplies the worker pool by -storm-factor for its duration.
//   - open: queries fire at -rate qps regardless of completions — the
//     shape that actually overloads a server. A storm multiplies the rate.
//
// In both modes the storm window also streams comment bursts through POST
// /updates, forcing view republishes under fire (cache generations lapse,
// coalescing re-keys, social graphs rebuild incrementally).
//
// With no -addr the harness self-serves: it synthesizes a corpus, mounts a
// full server in-process on a loopback listener, and drives it over real
// HTTP — so CI can run storms with zero setup. Pass -addr to aim it at a
// live deployment instead (server tuning flags are then ignored).
//
// Usage:
//
//	go run ./cmd/vrecload -scenario storm/adaptive \
//	    -conc 24 -duration 6s -storm-at 2s -storm-dur 2s -storm-factor 3 \
//	    -limit-ceiling 32 -brownout -out BENCH_LOAD_PR9.json -append
//
//	go run ./cmd/vrecload -check   # CI smoke: assert goodput, no panics,
//	                               # Retry-After on every shed response
//
// Reports are JSON with kind "vrecload"; cmd/benchcompare diffs the
// goodput/p99 families of two BENCH_LOAD_*.json files.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"videorec"
	"videorec/internal/faults"
	"videorec/internal/server"
	"videorec/internal/video"
)

// loadResult is one scenario's measurement row.
type loadResult struct {
	Name        string  `json:"name"`
	Mode        string  `json:"mode"`
	Config      string  `json:"config,omitempty"`
	Conc        int     `json:"conc,omitempty"`
	RateQPS     float64 `json:"rate_qps,omitempty"`
	DurationSec float64 `json:"duration_sec"`
	ZipfS       float64 `json:"zipf_s"`
	StormFactor float64 `json:"storm_factor,omitempty"`

	Requests     int `json:"requests"`
	OK           int `json:"ok"`
	Degraded     int `json:"degraded"`
	Shed         int `json:"shed"`
	QuorumLost   int `json:"quorum_lost"`
	QueueEvicted int `json:"queue_evicted"`
	Deadline504  int `json:"deadline_504"`
	Canceled     int `json:"canceled"`
	Errors       int `json:"errors"`
	Republishes  int `json:"republishes"`

	GoodputQPS   float64 `json:"goodput_qps"`
	ShedRate     float64 `json:"shed_rate"`
	EvictedRate  float64 `json:"evicted_rate"`
	DegradedRate float64 `json:"degraded_rate"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	P999Ms       float64 `json:"p999_ms"`

	// ShedWithRetryAfter counts shed (503) responses that carried the hint;
	// it must equal Shed + QuorumLost for a healthy server.
	ShedWithRetryAfter int `json:"shed_with_retry_after"`

	// Server-side counters snapshotted from /stats after the run.
	FinalLimit      int     `json:"final_limit"`
	LimitProbes     float64 `json:"limit_probes"`
	LimitBackoffs   float64 `json:"limit_backoffs"`
	BrownoutTotal   float64 `json:"brownout_total"`
	QueueWaitP99Ms  float64 `json:"queue_wait_p99_ms"`
	PanicsRecovered float64 `json:"panics_recovered"`
}

type loadReport struct {
	Kind          string       `json:"kind"` // "vrecload"
	GeneratedUnix int64        `json:"generated_unix"`
	GoVersion     string       `json:"go_version"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Videos        int          `json:"videos"`
	Scenarios     []loadResult `json:"scenarios"`
}

// tally accumulates per-request outcomes under one mutex; contention is
// irrelevant next to the HTTP round-trips it counts.
type tally struct {
	mu           sync.Mutex
	okLatency    []time.Duration
	requests     int
	ok           int
	degraded     int
	shed         int
	quorumLost   int
	queueEvicted int
	deadline504  int
	canceled     int
	errors       int
	shedRetry    int
}

func (c *tally) record(status int, reason string, retryAfter bool, degraded bool, lat time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	switch status {
	case http.StatusOK:
		c.ok++
		c.okLatency = append(c.okLatency, lat)
		if degraded {
			c.degraded++
		}
	case http.StatusServiceUnavailable:
		if reason == "quorum_lost" {
			c.quorumLost++
		} else {
			c.shed++
		}
		if retryAfter {
			c.shedRetry++
		}
	case http.StatusGatewayTimeout:
		if reason == "queue_evicted" {
			c.queueEvicted++
		} else {
			c.deadline504++
		}
	case 499:
		c.canceled++
	default:
		c.errors++
	}
}

func main() {
	var (
		addr     = flag.String("addr", "", "target server base URL (empty = self-serve an in-process server)")
		out      = flag.String("out", "BENCH_LOAD.json", "output JSON report path")
		appendTo = flag.Bool("append", false, "append scenarios to an existing report instead of overwriting")
		check    = flag.Bool("check", false, "assert smoke invariants (nonzero goodput, zero panics, Retry-After on every shed) and exit non-zero on violation")
		scenario = flag.String("scenario", "storm/adaptive", "scenario name recorded in the report")

		mode     = flag.String("mode", "closed", "load generator: closed (workers back to back) or open (fixed offered rate)")
		conc     = flag.Int("conc", 16, "closed-loop worker count")
		rate     = flag.Float64("rate", 200, "open-loop offered rate, queries per second")
		duration = flag.Duration("duration", 4*time.Second, "total run length")
		zipfS    = flag.Float64("zipf", 1.2, "Zipf skew s of video popularity (>1)")
		shedWait = flag.Duration("shed-backoff", 25*time.Millisecond, "closed-loop: client-side pause after a 503 before retrying (real clients honor Retry-After; hammering a shedding server just measures the shed path)")
		topK     = flag.Int("topk", 10, "recommendation depth")
		seed     = flag.Int64("seed", 23, "workload seed")

		stormAt       = flag.Duration("storm-at", 0, "when the comment storm begins (0 = no storm)")
		stormDur      = flag.Duration("storm-dur", time.Second, "storm length")
		stormFactor   = flag.Float64("storm-factor", 3, "offered-load multiplier during the storm")
		stormComments = flag.Int("storm-comments", 6, "commenters per republish burst during the storm")

		videos         = flag.Int("videos", 90, "self-serve corpus size")
		users          = flag.Int("users", 32, "self-serve community size")
		maxInflight    = flag.Int("max-inflight", 8, "self-serve: initial/fixed concurrency limit")
		maxQueue       = flag.Int("max-queue", 16, "self-serve: admission queue bound")
		limitFloor     = flag.Int("limit-floor", 0, "self-serve: adaptive limit floor")
		limitCeiling   = flag.Int("limit-ceiling", 0, "self-serve: adaptive limit ceiling (0 = fixed limit)")
		adjustWindow   = flag.Duration("adjust-window", 50*time.Millisecond, "self-serve: limiter adjustment cadence")
		brownout       = flag.Bool("brownout", false, "self-serve: enable brownout degradation under queue pressure")
		brownoutMargin = flag.Duration("brownout-margin", 0, "self-serve: deadline budget left to a browned-out request (0 = server default); with -service-time, set it a little above the synthetic latency so browned requests survive the sleep and reach the engine's coarse path")
		queryTimeout   = flag.Duration("query-timeout", 250*time.Millisecond, "self-serve: per-query deadline")
		cacheSize      = flag.Int("cache-size", 24, "self-serve: result LRU capacity — keep it below -videos so the Zipf tail misses and the engine actually works")
		serviceTime    = flag.Duration("service-time", 0, "self-serve: add this much synthetic per-query handler latency (simulates a production-sized corpus on small machines; the sleep holds the admission slot but yields the CPU, so real queueing pressure forms even on one core)")
		batchWindow    = flag.Duration("batch-window", 0, "self-serve: query coalescing window (0 = off)")
		retryAfterFlag = flag.Duration("retry-after", time.Second, "self-serve: Retry-After fallback before drain-rate signal exists")
	)
	flag.Parse()

	base := *addr
	nVideos := *videos
	if base == "" {
		if *serviceTime > 0 {
			// The latency fault fires inside the admission slot (top of the
			// recommend handler), so every query costs at least this much
			// while holding its slot — the per-query price of a corpus far
			// larger than the harness can synthesize.
			faults.Arm(faults.ServerRecommend, faults.Latency(*serviceTime))
			defer faults.Reset()
		}
		var stop func()
		base, stop = selfServe(*videos, *users, *seed, server.Config{
			MaxInFlight:    *maxInflight,
			MaxQueue:       *maxQueue,
			LimitFloor:     *limitFloor,
			LimitCeiling:   *limitCeiling,
			AdjustWindow:   *adjustWindow,
			Brownout:       *brownout,
			BrownoutMargin: *brownoutMargin,
			QueryTimeout:   *queryTimeout,
			BatchWindow:    *batchWindow,
			RetryAfter:     *retryAfterFlag,
			CacheSize:      *cacheSize,
		})
		defer stop()
	}

	ids := make([]string, nVideos)
	for i := range ids {
		ids[i] = fmt.Sprintf("clip-%d", i)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}

	c := &tally{}
	var republishes int
	start := time.Now()
	switch *mode {
	case "closed":
		republishes = runClosed(client, base, ids, c, closedSpec{
			conc: *conc, duration: *duration, zipfS: *zipfS, topK: *topK, seed: *seed,
			stormAt: *stormAt, stormDur: *stormDur, stormFactor: *stormFactor, stormComments: *stormComments,
			users: *users, shedBackoff: *shedWait,
		})
	case "open":
		republishes = runOpen(client, base, ids, c, openSpec{
			rate: *rate, duration: *duration, zipfS: *zipfS, topK: *topK, seed: *seed,
			stormAt: *stormAt, stormDur: *stormDur, stormFactor: *stormFactor, stormComments: *stormComments,
			users: *users,
		})
	default:
		log.Fatalf("unknown -mode %q (closed or open)", *mode)
	}
	elapsed := time.Since(start)

	row := c.row(*scenario, *mode, *conc, *rate, elapsed, *zipfS, *stormAt, *stormFactor)
	row.Republishes = republishes
	if *addr == "" {
		// Record the self-served server's tuning so every row is reproducible
		// from the report alone.
		row.Config = fmt.Sprintf("inflight=%d queue=%d floor=%d ceiling=%d timeout=%s brownout=%v service=%s",
			*maxInflight, *maxQueue, *limitFloor, *limitCeiling, *queryTimeout, *brownout, *serviceTime)
	}
	fillServerStats(client, base, &row)

	log.Printf("%s: %d req in %.1fs — goodput %.1f qps, p50 %.1fms p99 %.1fms p999 %.1fms",
		row.Name, row.Requests, row.DurationSec, row.GoodputQPS, row.P50Ms, row.P99Ms, row.P999Ms)
	log.Printf("  ok=%d degraded=%d shed=%d quorumLost=%d evicted=%d deadline504=%d canceled=%d errors=%d republishes=%d",
		row.OK, row.Degraded, row.Shed, row.QuorumLost, row.QueueEvicted, row.Deadline504, row.Canceled, row.Errors, row.Republishes)
	log.Printf("  server: limit=%d probes=%.0f backoffs=%.0f brownouts=%.0f panics=%.0f",
		row.FinalLimit, row.LimitProbes, row.LimitBackoffs, row.BrownoutTotal, row.PanicsRecovered)

	writeReport(*out, *appendTo, nVideos, row)

	if *check {
		fail := false
		if row.OK == 0 {
			log.Print("CHECK FAILED: zero goodput — no request was answered 200")
			fail = true
		}
		if row.PanicsRecovered != 0 {
			log.Printf("CHECK FAILED: %.0f handler panics recovered during the run", row.PanicsRecovered)
			fail = true
		}
		if sheds := row.Shed + row.QuorumLost; row.ShedWithRetryAfter != sheds {
			log.Printf("CHECK FAILED: %d of %d 503 responses missing Retry-After", sheds-row.ShedWithRetryAfter, sheds)
			fail = true
		}
		if fail {
			os.Exit(1)
		}
		log.Print("smoke checks passed: nonzero goodput, zero panics, Retry-After on every 503")
	}
}

// row folds the tally into a report row.
func (c *tally) row(name, mode string, conc int, rate float64, elapsed time.Duration, zipfS float64, stormAt time.Duration, stormFactor float64) loadResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := loadResult{
		Name: name, Mode: mode, DurationSec: elapsed.Seconds(), ZipfS: zipfS,
		Requests: c.requests, OK: c.ok, Degraded: c.degraded,
		Shed: c.shed, QuorumLost: c.quorumLost, QueueEvicted: c.queueEvicted,
		Deadline504: c.deadline504, Canceled: c.canceled, Errors: c.errors,
		ShedWithRetryAfter: c.shedRetry,
	}
	if mode == "closed" {
		r.Conc = conc
	} else {
		r.RateQPS = rate
	}
	if stormAt > 0 {
		r.StormFactor = stormFactor
	}
	r.GoodputQPS = float64(c.ok) / elapsed.Seconds()
	if c.requests > 0 {
		r.ShedRate = float64(c.shed) / float64(c.requests)
		r.EvictedRate = float64(c.queueEvicted) / float64(c.requests)
	}
	if c.ok > 0 {
		r.DegradedRate = float64(c.degraded) / float64(c.ok)
		sort.Slice(c.okLatency, func(a, b int) bool { return c.okLatency[a] < c.okLatency[b] })
		pct := func(p float64) float64 {
			return float64(c.okLatency[int(p*float64(len(c.okLatency)-1))]) / 1e6
		}
		r.P50Ms, r.P99Ms, r.P999Ms = pct(0.50), pct(0.99), pct(0.999)
	}
	return r
}

type closedSpec struct {
	conc          int
	duration      time.Duration
	zipfS         float64
	topK          int
	seed          int64
	stormAt       time.Duration
	stormDur      time.Duration
	stormFactor   float64
	stormComments int
	users         int
	shedBackoff   time.Duration
}

// runClosed drives conc back-to-back workers for the duration; during the
// storm window extra workers join (factor× the pool) and comment bursts
// republish the view. Returns the republish count.
func runClosed(client *http.Client, base string, ids []string, c *tally, s closedSpec) int {
	stopAt := time.Now().Add(s.duration)
	var wg sync.WaitGroup
	worker := func(seed int64, from, until time.Time) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(rng, s.zipfS, 1, uint64(len(ids)-1))
		time.Sleep(time.Until(from))
		for time.Now().Before(until) {
			if status := doQuery(client, base, ids[zipf.Uint64()], s.topK, c); status == http.StatusServiceUnavailable {
				time.Sleep(s.shedBackoff)
			}
		}
	}
	now := time.Now()
	for w := 0; w < s.conc; w++ {
		wg.Add(1)
		go worker(s.seed+int64(w), now, stopAt)
	}
	var stormDone <-chan int
	if s.stormAt > 0 {
		stormStart := now.Add(s.stormAt)
		stormEnd := stormStart.Add(s.stormDur)
		extra := int(float64(s.conc)*(s.stormFactor-1) + 0.5)
		for w := 0; w < extra; w++ {
			wg.Add(1)
			go worker(s.seed+1000+int64(w), stormStart, stormEnd)
		}
		stormDone = startStormComments(client, base, ids, stormStart, stormEnd, s.stormComments, s.users, s.seed)
	}
	wg.Wait()
	if stormDone != nil {
		return <-stormDone
	}
	return 0
}

type openSpec struct {
	rate          float64
	duration      time.Duration
	zipfS         float64
	topK          int
	seed          int64
	stormAt       time.Duration
	stormDur      time.Duration
	stormFactor   float64
	stormComments int
	users         int
}

// runOpen fires queries on a fixed schedule regardless of completions —
// offered load does not yield to server pressure, which is precisely what
// makes open-loop storms dangerous. The storm window multiplies the rate.
func runOpen(client *http.Client, base string, ids []string, c *tally, s openSpec) int {
	rng := rand.New(rand.NewSource(s.seed))
	zipf := rand.NewZipf(rng, s.zipfS, 1, uint64(len(ids)-1))
	start := time.Now()
	stopAt := start.Add(s.duration)
	stormStart := start.Add(s.stormAt)
	stormEnd := stormStart.Add(s.stormDur)

	var wg sync.WaitGroup
	var stormDone <-chan int
	if s.stormAt > 0 {
		stormDone = startStormComments(client, base, ids, stormStart, stormEnd, s.stormComments, s.users, s.seed)
	}
	next := start
	for next.Before(stopAt) {
		rate := s.rate
		if s.stormAt > 0 && !next.Before(stormStart) && next.Before(stormEnd) {
			rate *= s.stormFactor
		}
		id := ids[zipf.Uint64()]
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			doQuery(client, base, id, s.topK, c)
		}(id)
		next = next.Add(time.Duration(float64(time.Second) / rate))
		time.Sleep(time.Until(next))
	}
	wg.Wait()
	if stormDone != nil {
		return <-stormDone
	}
	return 0
}

// startStormComments launches the storm's comment-burst stream: between
// from and until, every ~40ms a burst of commenters lands on a Zipf-hot
// video via POST /updates, forcing a view republish while query traffic is
// in full flight. The returned channel delivers the republish count once
// the stream ends.
func startStormComments(client *http.Client, base string, ids []string, from, until time.Time, commenters, users int, seed int64) <-chan int {
	done := make(chan int, 1)
	go func() {
		republishes := 0
		rng := rand.New(rand.NewSource(seed + 7))
		zipf := rand.NewZipf(rng, 1.1, 1, uint64(len(ids)-1))
		time.Sleep(time.Until(from))
		for time.Now().Before(until) {
			id := ids[zipf.Uint64()]
			names := make([]string, 0, commenters)
			for j := 0; j < commenters; j++ {
				names = append(names, fmt.Sprintf("user-%d", rng.Intn(users)))
			}
			body, _ := json.Marshal(map[string][]string{id: names})
			resp, err := client.Post(base+"/updates", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					republishes++
				}
			}
			time.Sleep(40 * time.Millisecond)
		}
		done <- republishes
	}()
	return done
}

// doQuery issues one GET /recommend, records its outcome, and returns the
// status code (0 on transport error).
func doQuery(client *http.Client, base, id string, topK int, c *tally) int {
	t0 := time.Now()
	resp, err := client.Get(fmt.Sprintf("%s/recommend?id=%s&k=%d", base, id, topK))
	lat := time.Since(t0)
	if err != nil {
		c.record(0, "", false, false, lat)
		return 0
	}
	defer resp.Body.Close()
	retryAfter := resp.Header.Get("Retry-After") != ""
	degraded := false
	reason := ""
	if resp.StatusCode == http.StatusOK {
		var rr struct {
			Degraded bool `json:"degraded"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&rr)
		degraded = rr.Degraded
	} else {
		var eb struct {
			Reason string `json:"reason"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		reason = eb.Reason
	}
	c.record(resp.StatusCode, reason, retryAfter, degraded, lat)
	return resp.StatusCode
}

// selfServe synthesizes a corpus, builds a full server and mounts it on a
// loopback listener — the zero-setup in-process vrecd the CI smoke drives.
func selfServe(videos, users int, seed int64, cfg server.Config) (baseURL string, stop func()) {
	log.Printf("self-serve: synthesizing %d clips / %d users...", videos, users)
	eng := videorec.New(videorec.Options{SubCommunities: 8})
	names := make([]string, users)
	for i := range names {
		names[i] = fmt.Sprintf("user-%d", i)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < videos; i++ {
		v := video.Synthesize(fmt.Sprintf("clip-%d", i), i%4, video.DefaultSynthOptions(), rng)
		commenters := make([]string, 0, 6)
		for j := 0; j < 6; j++ {
			commenters = append(commenters, names[rng.Intn(users)])
		}
		clip := videorec.Clip{ID: v.ID, FPS: v.FPS, Owner: names[i%users], Commenters: commenters}
		for _, f := range v.Frames {
			clip.Frames = append(clip.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
		}
		if err := eng.Add(clip); err != nil {
			log.Fatalf("self-serve ingest: %v", err)
		}
	}
	eng.Build()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: server.NewWithConfig(eng, cfg).Handler()}
	go func() { _ = hs.Serve(ln) }()
	log.Printf("self-serve: listening on %s (%d videos, limit %d, queue %d, ceiling %d, brownout %v)",
		ln.Addr(), videos, cfg.MaxInFlight, cfg.MaxQueue, cfg.LimitCeiling, cfg.Brownout)
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }
}

// fillServerStats snapshots the overload counters from /stats into the row.
func fillServerStats(client *http.Client, base string, row *loadResult) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		log.Printf("stats fetch failed: %v", err)
		return
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Printf("stats decode failed: %v", err)
		return
	}
	num := func(key string) float64 {
		v, _ := stats[key].(float64)
		return v
	}
	row.FinalLimit = int(num("limit"))
	row.LimitProbes = num("limitProbes")
	row.LimitBackoffs = num("limitBackoffs")
	row.BrownoutTotal = num("brownoutTotal")
	row.QueueWaitP99Ms = num("queueWaitP99Ms")
	row.PanicsRecovered = num("panicsRecovered")
}

// writeReport writes (or, with appendTo, merges into) the JSON report.
func writeReport(path string, appendTo bool, videos int, rows ...loadResult) {
	rep := loadReport{
		Kind:          "vrecload",
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Videos:        videos,
	}
	if appendTo {
		if data, err := os.ReadFile(path); err == nil {
			var prev loadReport
			if err := json.Unmarshal(data, &prev); err == nil && prev.Kind == "vrecload" {
				rep.Scenarios = prev.Scenarios
			}
		}
	}
	rep.Scenarios = append(rep.Scenarios, rows...)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d scenarios)", path, len(rep.Scenarios))
}
