module videorec

go 1.24
