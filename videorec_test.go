package videorec

import (
	"errors"
	"math/rand"
	"testing"

	"videorec/internal/dataset"
	"videorec/internal/video"
)

// clipFrom converts an internal synthetic video into a public Clip.
func clipFrom(v *video.Video, owner string, commenters ...string) Clip {
	c := Clip{
		ID:             v.ID,
		FPS:            v.FPS,
		NominalSeconds: v.NominalSeconds,
		Owner:          owner,
		Commenters:     commenters,
	}
	for _, f := range v.Frames {
		c.Frames = append(c.Frames, Frame{W: f.W, H: f.H, Pix: append([]float64(nil), f.Pix...)})
	}
	return c
}

// buildEngine ingests a small synthetic community through the public API.
func buildEngine(t testing.TB, opts Options) (*Engine, *dataset.Collection) {
	t.Helper()
	o := dataset.DefaultOptions()
	o.Hours = 3
	o.Users = 120
	o.Seed = 21
	col := dataset.Generate(o)
	eng := New(opts)
	for _, it := range col.Items {
		v := it.Render(o.Synth)
		var commenters []string
		for _, cm := range it.Comments {
			if cm.Month < o.MonthsSource {
				commenters = append(commenters, cm.User)
			}
		}
		clip := clipFrom(v, it.Owner, commenters...)
		clip.ID = it.ID
		if err := eng.Add(clip); err != nil {
			t.Fatalf("Add(%s): %v", it.ID, err)
		}
	}
	eng.Build()
	return eng, col
}

func TestAddValidation(t *testing.T) {
	eng := New(Options{})
	if err := eng.Add(Clip{}); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty id: got %v", err)
	}
	if err := eng.Add(Clip{ID: "x"}); !errors.Is(err, ErrNoFrames) {
		t.Errorf("no frames: got %v", err)
	}
	bad := Clip{ID: "x", Frames: []Frame{{W: 2, H: 2, Pix: []float64{1}}}}
	if err := eng.Add(bad); err == nil {
		t.Error("inconsistent frame accepted")
	}
}

func TestRecommendLifecycle(t *testing.T) {
	eng, col := buildEngine(t, Options{})
	if eng.Len() != len(col.Items) {
		t.Fatalf("Len = %d, want %d", eng.Len(), len(col.Items))
	}
	if eng.SubCommunities() == 0 {
		t.Error("no sub-communities after Build")
	}
	src := col.Queries[0].Sources[0]
	recs, err := eng.Recommend(src, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) > 10 {
		t.Fatalf("got %d recommendations", len(recs))
	}
	for i, r := range recs {
		if r.VideoID == src {
			t.Error("query video recommended to itself")
		}
		if i > 0 && r.Score > recs[i-1].Score {
			t.Error("results unsorted")
		}
	}
}

func TestRecommendErrors(t *testing.T) {
	eng := New(Options{})
	if _, err := eng.Recommend("x", 5); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("before Build: got %v", err)
	}
	built, _ := buildEngine(t, Options{})
	if _, err := built.Recommend("no-such", 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id: got %v", err)
	}
}

func TestRecommendClipAdHoc(t *testing.T) {
	eng, col := buildEngine(t, Options{})
	// An anonymous visitor watching an edited copy of a stored clip.
	orig := col.Items[0]
	v := orig.Render(col.Opts.Synth)
	edited := video.Brighten(v, 15)
	edited.ID = "adhoc-view"
	clip := clipFrom(edited, "", col.Users[0], col.Users[1])
	recs, err := eng.RecommendClip(clip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations for ad-hoc clip")
	}
	if _, err := eng.RecommendClip(Clip{ID: "x"}, 5); !errors.Is(err, ErrNoFrames) {
		t.Errorf("frameless ad-hoc clip: got %v", err)
	}
}

func TestApplyUpdatesPublic(t *testing.T) {
	eng, col := buildEngine(t, Options{})
	target := col.Items[0].ID
	sum, err := eng.ApplyUpdates(map[string][]string{
		target: {"newcomer-a", "newcomer-b", col.Users[2]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.NewConnections == 0 {
		t.Error("no connections derived")
	}
	if sum.VideosRevectorized == 0 {
		t.Error("nothing re-vectorized")
	}
	// Engine still answers queries.
	if _, err := eng.Recommend(col.Queries[0].Sources[0], 5); err != nil {
		t.Fatal(err)
	}
	// Before build: error.
	fresh := New(Options{})
	if _, err := fresh.ApplyUpdates(nil); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("updates before Build: got %v", err)
	}
}

func TestStrategyAndBaselineOptions(t *testing.T) {
	for _, opts := range []Options{
		{Strategy: SAR},
		{Strategy: ExactSocial},
		{ContentOnly: true},
		{SocialOnly: true},
		{Omega: 0.5, SubCommunities: 12, ExhaustiveSearch: true},
	} {
		eng, col := buildEngine(t, opts)
		recs, err := eng.Recommend(col.Queries[0].Sources[0], 5)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(recs) == 0 {
			t.Fatalf("opts %+v: empty results", opts)
		}
		if opts.ContentOnly {
			for _, r := range recs {
				if r.Social != 0 {
					t.Errorf("ContentOnly result has social score %g", r.Social)
				}
			}
		}
		if opts.SocialOnly {
			for _, r := range recs {
				if r.Content != 0 {
					t.Errorf("SocialOnly result has content score %g", r.Content)
				}
			}
		}
	}
}

func TestFrameClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := video.Synthesize("c", 1, video.DefaultSynthOptions(), rng)
	clip := clipFrom(v, "owner", "u1")
	clip.Frames[0].Pix[0] = -50
	clip.Frames[0].Pix[1] = 999
	eng := New(Options{})
	if err := eng.Add(clip); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRemove(t *testing.T) {
	eng, col := buildEngine(t, Options{})
	victim := col.Items[3].ID
	if err := eng.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if err := eng.Remove(victim); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: got %v", err)
	}
	src := col.Queries[0].Sources[0]
	if src == victim {
		src = col.Queries[0].Sources[1]
	}
	recs, err := eng.Recommend(src, eng.Len())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.VideoID == victim {
			t.Fatalf("removed clip %s still recommended", victim)
		}
	}
	// Build compacts and the engine keeps working.
	eng.Build()
	if _, err := eng.Recommend(src, 5); err != nil {
		t.Fatal(err)
	}
}

func TestFrameFromBytes(t *testing.T) {
	f, err := FrameFromBytes(2, 2, []byte{0, 128, 255, 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.Pix[1] != 128 || f.Pix[2] != 255 {
		t.Errorf("pixels = %v", f.Pix)
	}
	if _, err := FrameFromBytes(2, 2, []byte{1}); err == nil {
		t.Error("short pixel buffer accepted")
	}
	if _, err := FrameFromBytes(0, 2, nil); err == nil {
		t.Error("zero width accepted")
	}
}

func TestRecommendSegment(t *testing.T) {
	eng, col := buildEngine(t, Options{})
	v := col.Items[0].Render(col.Opts.Synth)
	clip := clipFrom(v, "", col.Users[0])
	recs, err := eng.RecommendSegment(clip, 0, len(clip.Frames)/2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations for segment")
	}
	if _, err := eng.RecommendSegment(clip, 5, 2, 5); err == nil {
		t.Error("inverted segment accepted")
	}
	if _, err := eng.RecommendSegment(clip, 0, len(clip.Frames)+9, 5); err == nil {
		t.Error("out-of-range segment accepted")
	}
}
