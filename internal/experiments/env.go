// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) over the synthetic sharing community: the Table 2 queries,
// the §4.2.2 Silhouette comparison, the effectiveness figures 7–11 and the
// efficiency figure 12. Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"sort"

	"videorec/internal/baselines"
	"videorec/internal/core"
	"videorec/internal/dataset"
	"videorec/internal/metrics"
	"videorec/internal/signature"
	"videorec/internal/social"
)

// Scale fixes the dataset sizes experiments run at. The paper's testbed
// crawled 200 hours of video; DefaultScale shrinks the collection so the
// whole suite runs in seconds while preserving every comparative shape, and
// PaperScale restores the 50–200 hour sweep.
type Scale struct {
	EffectivenessHours float64   // collection size for Figures 7–11
	EfficiencyHours    []float64 // Figure 12 sweep points
	Users              int
	CommentMean        float64 // descriptor sizes drive the exact-sJ cost
	OptimalK           int     // the tuned sub-community count (paper: 60)
	KSweep             []int   // Figure 9 sweep (paper: 20–80)
	Seed               int64
	PanelSeed          int64
}

// DefaultScale runs the suite at roughly 1/8 of the paper's scale. The
// community is sized so the paper's k values are meaningful: k of Figure 3
// must exceed the natural component count of the UIG but stay below the
// point where it only peels singletons, and that window moves with the
// number of recurring users.
func DefaultScale() Scale {
	return Scale{
		EffectivenessHours: 16,
		EfficiencyHours:    []float64{6.25, 12.5, 18.75, 25},
		Users:              250,
		CommentMean:        25,
		OptimalK:           60,
		KSweep:             []int{20, 40, 60, 80},
		Seed:               1,
		PanelSeed:          42,
	}
}

// PaperScale reproduces the paper's 50–200 hour sweep (slow: tens of
// minutes of synthesis and search). The k values scale with the community
// (see DefaultScale): 16x more users moves the useful k window accordingly.
func PaperScale() Scale {
	return Scale{
		EffectivenessHours: 200,
		EfficiencyHours:    []float64{50, 100, 150, 200},
		Users:              4000,
		CommentMean:        120,
		OptimalK:           960,
		KSweep:             []int{320, 640, 960, 1280},
		Seed:               1,
		PanelSeed:          42,
	}
}

// TopKs are the recommendation depths every effectiveness figure reports.
var TopKs = []int{5, 10, 20}

// Env holds the artifacts shared by all experiments at one scale: the
// generated collection, extracted signature series, source-period social
// descriptors, the rater panel, and the AFFRF baseline's features.
type Env struct {
	Scale Scale
	Col   *dataset.Collection
	Panel *metrics.Panel

	Series map[string]signature.Series
	Descs  map[string]social.Descriptor
	AFFRF  *baselines.AFFRF

	// content κJ cache: source id → candidate id → κJ.
	contentCache map[string]map[string]float64
}

// NewEnv generates the effectiveness collection and extracts every feature
// once. Frames are rendered per video and dropped immediately.
func NewEnv(s Scale) *Env {
	o := dataset.DefaultOptions()
	o.Hours = s.EffectivenessHours
	o.Users = s.Users
	o.CommentMean = s.CommentMean
	o.Seed = s.Seed
	col := dataset.Generate(o)
	e := &Env{
		Scale:        s,
		Col:          col,
		Panel:        metrics.NewPanel(10, s.PanelSeed),
		Series:       make(map[string]signature.Series, len(col.Items)),
		Descs:        make(map[string]social.Descriptor, len(col.Items)),
		AFFRF:        baselines.NewAFFRF(baselines.DefaultAFFRFOptions()),
		contentCache: map[string]map[string]float64{},
	}
	sigOpts := signature.DefaultOptions()
	for i, it := range col.Items {
		v := it.Render(o.Synth)
		e.Series[it.ID] = signature.Extract(v, sigOpts)
		e.AFFRF.Ingest(it.ID, it.Topic, v, int64(i+1))
		v.ReleaseFrames()
		e.Descs[it.ID] = SourceDescriptor(col, it)
	}
	return e
}

// SourceDescriptor builds a video's social descriptor from its owner and its
// source-period comments (months before MonthsSource).
func SourceDescriptor(col *dataset.Collection, it *dataset.Item) social.Descriptor {
	var users []string
	for _, cm := range it.Comments {
		if cm.Month < col.Opts.MonthsSource {
			users = append(users, cm.User)
		}
	}
	return social.NewDescriptor(it.Owner, users...)
}

// Sources returns the 10 source videos (top-2 per Table 2 query).
func (e *Env) Sources() []string {
	var out []string
	for _, q := range e.Col.Queries {
		out = append(out, q.Sources...)
	}
	return out
}

// Content returns the cached κJ between a source and every other video.
func (e *Env) Content(src string) map[string]float64 {
	if m, ok := e.contentCache[src]; ok {
		return m
	}
	qs := e.Series[src]
	m := make(map[string]float64, len(e.Col.Items))
	for _, it := range e.Col.Items {
		if it.ID == src {
			continue
		}
		m[it.ID] = signature.KJ(qs, e.Series[it.ID], signature.DefaultMatchThreshold)
	}
	e.contentCache[src] = m
	return m
}

// BuildRecommender ingests a collection's pre-extracted features into a
// fresh core recommender and builds its social machinery.
func (e *Env) BuildRecommender(opts core.Options, col *dataset.Collection) *core.Recommender {
	r := core.NewRecommender(opts)
	for _, it := range col.Items {
		r.IngestSeries(it.ID, e.Series[it.ID], SourceDescriptor(col, it))
	}
	r.BuildSocial()
	return r
}

// Row is one effectiveness measurement: a method (or parameter value) at
// one recommendation depth.
type Row struct {
	Label string
	TopK  int
	AR    float64
	AC    float64
	MAP   float64
}

// String renders the row the way cmd/experiments prints figures.
func (r Row) String() string {
	return fmt.Sprintf("%-12s top%-3d AR=%.3f AC=%.3f MAP=%.3f", r.Label, r.TopK, r.AR, r.AC, r.MAP)
}

// Ranker produces a ranked recommendation list for a source video.
type Ranker func(src string, topK int) []string

// Evaluate runs a ranker over all 10 sources at every TopK and aggregates
// AR, AC and MAP with the simulated panel (§5.2's protocol: each evaluator
// rates each recommended video 1–5 against the source).
func (e *Env) Evaluate(label string, rank Ranker) []Row {
	rows := make([]Row, 0, len(TopKs))
	for _, k := range TopKs {
		var arSum, acSum float64
		var aps []float64
		srcs := e.Sources()
		for _, src := range srcs {
			ids := rank(src, k)
			ratings := make([]float64, len(ids))
			for i, id := range ids {
				rel := e.Col.Relevance(src, id)
				ratings[i] = e.Panel.Rate(src+"|"+id, rel)
			}
			arSum += metrics.AR(ratings)
			acSum += metrics.AC(ratings)
			aps = append(aps, metrics.APFromRatings(ratings))
		}
		n := float64(len(srcs))
		rows = append(rows, Row{
			Label: label,
			TopK:  k,
			AR:    arSum / n,
			AC:    acSum / n,
			MAP:   metrics.MAP(aps),
		})
	}
	return rows
}

// rankByScore sorts candidate ids by descending score with id tie-break and
// truncates to topK.
func rankByScore(scores map[string]float64, topK int) []string {
	ids := make([]string, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if scores[ids[a]] != scores[ids[b]] {
			return scores[ids[a]] > scores[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if len(ids) > topK {
		ids = ids[:topK]
	}
	return ids
}
