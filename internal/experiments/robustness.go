package experiments

import (
	"fmt"
	"math/rand"

	"videorec/internal/signature"
	"videorec/internal/video"
)

// RobustnessRow reports κJ retention under one edit at one severity level:
// retention = κJ(original, edited) since κJ(original, original) = 1. The
// unrelated-pair baseline is what retention must stay above for the content
// matcher to remain useful.
type RobustnessRow struct {
	Edit      string
	Level     float64
	Retention float64
}

// String renders the row for cmd/experiments.
func (r RobustnessRow) String() string {
	return fmt.Sprintf("%-12s level %-6.2g κJ retention %.3f", r.Edit, r.Level, r.Retention)
}

// Robustness sweeps edit severity over the query source videos — an
// extension quantifying the §4.1 robustness claims signature-by-signature
// rather than end-to-end. Returns the sweep rows plus the maximum κJ seen
// between unrelated sources (the noise floor).
func (e *Env) Robustness() (rows []RobustnessRow, unrelatedFloor float64) {
	type edit struct {
		name  string
		level float64
		apply func(v *video.Video, rng *rand.Rand) *video.Video
	}
	var edits []edit
	for _, d := range []float64{10, 25, 40} {
		d := d
		edits = append(edits, edit{"brightness", d, func(v *video.Video, _ *rand.Rand) *video.Video {
			return video.Brighten(v, d)
		}})
	}
	for _, s := range []float64{2, 5, 10} {
		s := s
		edits = append(edits, edit{"noise", s, func(v *video.Video, rng *rand.Rand) *video.Video {
			return video.AddNoise(v, s, rng)
		}})
	}
	for _, f := range []float64{1.1, 1.25, 1.4} {
		f := f
		edits = append(edits, edit{"contrast", f, func(v *video.Video, _ *rand.Rand) *video.Video {
			return video.Contrast(v, f)
		}})
	}
	for _, n := range []float64{9, 6, 3} { // dropping every n-th frame; smaller = harsher
		n := n
		edits = append(edits, edit{"frame-drop", n, func(v *video.Video, _ *rand.Rand) *video.Video {
			return video.DropFrames(v, int(n))
		}})
	}

	sigOpts := signature.DefaultOptions()
	srcs := e.Sources()
	if len(srcs) > 4 {
		srcs = srcs[:4]
	}
	for _, ed := range edits {
		var sum float64
		n := 0
		for si, src := range srcs {
			orig := e.Col.ByID[src].Render(e.Col.Opts.Synth)
			so := e.Series[src]
			rng := rand.New(rand.NewSource(int64(si)*31 + int64(ed.level*10)))
			edited := ed.apply(orig, rng)
			se := signature.Extract(edited, sigOpts)
			sum += signature.KJ(so, se, signature.DefaultMatchThreshold)
			n++
		}
		rows = append(rows, RobustnessRow{Edit: ed.name, Level: ed.level, Retention: sum / float64(n)})
	}

	// Noise floor: the strongest κJ between different-theme sources.
	for i, a := range srcs {
		for _, b := range srcs[i+1:] {
			if theme(e.Col.ByID[a].Topic) == theme(e.Col.ByID[b].Topic) {
				continue
			}
			if s := signature.KJ(e.Series[a], e.Series[b], signature.DefaultMatchThreshold); s > unrelatedFloor {
				unrelatedFloor = s
			}
		}
	}
	return rows, unrelatedFloor
}

// theme mirrors the dataset's theme folding for the noise-floor pairing.
func theme(topic int) int { return topic % 5 }
