package experiments

import "fmt"

// TuneOmega grid-searches the fusion weight ω at the given granularity and
// returns the value maximizing mean AR at depth topK, together with the full
// sweep rows. It is the automated version of the paper's §5.3.2 manual
// tuning — an obvious extension for deployments whose community structure
// drifts over time (re-tune after heavy update periods).
func (e *Env) TuneOmega(step float64, topK int) (float64, []Row) {
	if step <= 0 || step > 0.5 {
		step = 0.1
	}
	vecs := e.socialVectors(e.optimalK())
	bestOmega, bestAR := 0.0, -1.0
	var all []Row
	for w := 0.0; w <= 1.0+1e-9; w += step {
		rows := e.Evaluate(fmt.Sprintf("w=%.2f", w), e.fusedRanker(w, vecs))
		all = append(all, rows...)
		for _, r := range rows {
			if r.TopK == topK && r.AR > bestAR {
				bestAR = r.AR
				bestOmega = w
			}
		}
	}
	return bestOmega, all
}
