package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"videorec/internal/community"
	"videorec/internal/emd"
	"videorec/internal/hashing"
	"videorec/internal/signature"
	"videorec/internal/social"
)

// AblationRow is one design-choice measurement: the production choice vs
// its alternative, with the correctness relationship between them.
type AblationRow struct {
	Name        string
	Production  string
	Alternative string
	Speedup     float64 // alternative time / production time
	Note        string
}

// String renders the row for cmd/experiments.
func (r AblationRow) String() string {
	return fmt.Sprintf("%-22s %s vs %s: %.1fx  (%s)", r.Name, r.Production, r.Alternative, r.Speedup, r.Note)
}

// Ablations measures the DESIGN.md §6 design choices programmatically (the
// bench harness measures the same things under testing.B; this variant
// feeds cmd/experiments).
func (e *Env) Ablations() []AblationRow {
	var rows []AblationRow

	// 1. Closed-form 1-D EMD vs transportation simplex.
	{
		rng := rand.New(rand.NewSource(7))
		n := 24
		v1, w1 := randHistogram(rng, n)
		v2, w2 := randHistogram(rng, n)
		cost := emd.GroundL1Cost(v1, v2)
		fast := timeIt(400, func() { _, _ = emd.Distance1D(v1, w1, v2, w2) })
		slow := timeIt(20, func() { _, _, _ = emd.Solve(cost, w1, w2) })
		rows = append(rows, AblationRow{
			Name: "emd-solver", Production: "closed-form-1d", Alternative: "simplex",
			Speedup: slow / fast, Note: "property-tested equal",
		})
	}

	// 2. Kruskal dual vs literal Figure 3 removal.
	{
		rng := rand.New(rand.NewSource(3))
		g := community.NewGraph()
		for i := 0; i < 200; i++ {
			for j := 0; j < 5; j++ {
				g.AddEdgeWeight(fmt.Sprintf("u%d", i), fmt.Sprintf("u%d", rng.Intn(200)), float64(1+rng.Intn(9)))
			}
		}
		fast := timeIt(20, func() { community.ExtractSubCommunities(g, 40) })
		slow := timeIt(3, func() { community.ExtractLiteral(g, 40) })
		rows = append(rows, AblationRow{
			Name: "partition", Production: "kruskal-dual", Alternative: "literal-removal",
			Speedup: slow / fast, Note: "identical partitions (property-tested)",
		})
	}

	// 3. κJ centroid lower-bound filter vs unfiltered (measured through the
	// public KJ on unrelated series, where the filter prunes most pairs).
	{
		s1 := e.Series[e.Sources()[0]]
		var s2 signature.Series
		srcTheme := theme(e.Col.ByID[e.Sources()[0]].Topic)
		for _, it := range e.Col.Items {
			if theme(it.Topic) != srcTheme {
				s2 = e.Series[it.ID]
				break
			}
		}
		filtered := timeIt(100, func() { signature.KJ(s1, s2, signature.DefaultMatchThreshold) })
		unfiltered := timeIt(100, func() { signature.KJ(s1, s2, 0) }) // threshold 0 disables the filter
		rows = append(rows, AblationRow{
			Name: "kj-lb-filter", Production: "filtered", Alternative: "unfiltered",
			Speedup: unfiltered / filtered, Note: "exact pruning, identical matches",
		})
	}

	// 4. Social estimators: exact sJ vs SAR vector vs MinHash sketch.
	{
		users := e.Col.Users
		half := len(users) / 2
		d1 := social.NewDescriptor("", users[:half+half/2]...)
		d2 := social.NewDescriptor("", users[half/2:]...)
		m := social.NewMinHasher(64, 1)
		sk1, sk2 := m.Sketch(d1), m.Sketch(d2)
		vecs := e.socialVectors(e.optimalK())
		va := vecs[e.Sources()[0]]
		vb := vecs[e.Sources()[1]]
		exact := timeIt(400, func() { social.Jaccard(d1, d2) })
		sar := timeIt(400, func() { social.ApproxJaccard(va, vb) })
		mh := timeIt(400, func() { social.EstimateJaccard(sk1, sk2) })
		rows = append(rows, AblationRow{
			Name: "social-estimator", Production: "sar-vector", Alternative: "exact-sJ",
			Speedup: exact / sar, Note: fmt.Sprintf("minhash-64 is %.1fx vs exact; SAR also feeds the inverted files", exact/mh),
		})
	}

	// 5. Chained shift-add-xor table vs linear dictionary scan.
	{
		tb := hashing.NewTable(1<<12, 17)
		dict := make([]string, 0, len(e.Col.Users))
		for i, u := range e.Col.Users {
			tb.Insert(u, i%60)
			dict = append(dict, u)
		}
		probe := e.Col.Users[len(e.Col.Users)-1]
		hashed := timeIt(2000, func() { tb.Lookup(probe) })
		linear := timeIt(2000, func() {
			for _, u := range dict {
				if u == probe {
					break
				}
			}
		})
		rows = append(rows, AblationRow{
			Name: "user-dictionary", Production: "chained-hash", Alternative: "linear-scan",
			Speedup: linear / hashed, Note: "the CSF-SAR-H vs CSF-SAR gap of Fig. 12(a)",
		})
	}
	return rows
}

func timeIt(iters int, f func()) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func randHistogram(rng *rand.Rand, n int) (v, w []float64) {
	v = make([]float64, n)
	w = make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
		w[i] = 1
	}
	if err := emd.Normalize(w); err != nil {
		panic(err)
	}
	return v, w
}
