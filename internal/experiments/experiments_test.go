package experiments

import (
	"sync"
	"testing"

	"videorec/internal/dataset"
)

// The effectiveness environment is expensive to build; tests share one.
var (
	envOnce sync.Once
	sharedE *Env
)

func env(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() { sharedE = NewEnv(DefaultScale()) })
	return sharedE
}

// row lookup helper.
func find(rows []Row, label string, topK int) Row {
	for _, r := range rows {
		if r.Label == label && r.TopK == topK {
			return r
		}
	}
	return Row{}
}

func TestEnvBasics(t *testing.T) {
	e := env(t)
	if got := len(e.Sources()); got != 10 {
		t.Fatalf("sources = %d, want 10 (top-2 per Table 2 query)", got)
	}
	for _, it := range e.Col.Items {
		if len(e.Series[it.ID]) == 0 {
			t.Fatalf("no signatures extracted for %s", it.ID)
		}
		if e.Descs[it.ID].Len() == 0 {
			t.Fatalf("empty descriptor for %s", it.ID)
		}
	}
	if e.AFFRF.Len() != len(e.Col.Items) {
		t.Errorf("AFFRF ingested %d of %d items", e.AFFRF.Len(), len(e.Col.Items))
	}
}

func TestTable2(t *testing.T) {
	e := env(t)
	qs := e.Table2()
	if len(qs) != 5 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if q.Text != dataset.Table2Queries[i] {
			t.Errorf("query %d = %q, want %q", i, q.Text, dataset.Table2Queries[i])
		}
		if len(q.Sources) != 2 {
			t.Errorf("query %q has %d sources", q.Text, len(q.Sources))
		}
	}
}

func TestEvaluateRowsWellFormed(t *testing.T) {
	e := env(t)
	rows := e.Evaluate("test", func(src string, k int) []string {
		// Trivial ranker: lexicographic ids.
		var ids []string
		for _, it := range e.Col.Items {
			if it.ID != src {
				ids = append(ids, it.ID)
			}
		}
		if len(ids) > k {
			ids = ids[:k]
		}
		return ids
	})
	if len(rows) != len(TopKs) {
		t.Fatalf("rows = %d, want %d", len(rows), len(TopKs))
	}
	for _, r := range rows {
		if r.AR < 1 || r.AR > 5 {
			t.Errorf("AR = %g out of rating range", r.AR)
		}
		if r.AC < 0 || r.AC > 1 || r.MAP < 0 || r.MAP > 1 {
			t.Errorf("AC/MAP out of [0,1]: %+v", r)
		}
	}
}

// Figure 7's headline: the set-based κJ beats the order-bound sequence
// measures on all three metrics at top-5.
func TestFig7Shape(t *testing.T) {
	rows := env(t).Fig7()
	kj := find(rows, "kJ", 5)
	erp := find(rows, "ERP", 5)
	dtw := find(rows, "DTW", 5)
	if kj.AR <= erp.AR || kj.AR <= dtw.AR {
		t.Errorf("κJ AR %.3f not above ERP %.3f / DTW %.3f", kj.AR, erp.AR, dtw.AR)
	}
	if kj.AC <= erp.AC || kj.AC <= dtw.AC {
		t.Errorf("κJ AC %.3f not above ERP %.3f / DTW %.3f", kj.AC, erp.AC, dtw.AC)
	}
}

// Figure 8's shape: fused weights around the paper's optimum beat both pure
// content (ω=0) and pure social (ω=1).
func TestFig8Shape(t *testing.T) {
	rows := env(t).Fig8([]float64{0, 0.7, 1.0})
	mid := find(rows, "w=0.7", 20)
	lo := find(rows, "w=0.0", 20)
	hi := find(rows, "w=1.0", 20)
	if mid.AR <= lo.AR {
		t.Errorf("ω=0.7 AR %.3f not above ω=0 AR %.3f", mid.AR, lo.AR)
	}
	if mid.AR <= hi.AR {
		t.Errorf("ω=0.7 AR %.3f not above ω=1 AR %.3f", mid.AR, hi.AR)
	}
}

// Figure 9's shape: effectiveness rises with k up to the working range and
// then plateaus.
func TestFig9Shape(t *testing.T) {
	e := env(t)
	rows := e.Fig9([]int{20, 60, 80})
	low := find(rows, "k=20", 10)
	opt := find(rows, "k=60", 10)
	high := find(rows, "k=80", 10)
	if opt.AR <= low.AR {
		t.Errorf("k=60 AR %.3f not above k=20 AR %.3f", opt.AR, low.AR)
	}
	// Plateau: k=80 within a small band of k=60.
	if diff := opt.AR - high.AR; diff > 0.4 || diff < -0.4 {
		t.Errorf("no plateau: k=60 AR %.3f vs k=80 AR %.3f", opt.AR, high.AR)
	}
}

// Figure 10's ordering: CSF best, CR clearly below (content alone misses the
// relevant-but-unmatched videos), AFFRF in between.
func TestFig10Shape(t *testing.T) {
	rows := env(t).Fig10()
	csf := find(rows, "CSF", 20)
	sr := find(rows, "SR", 20)
	cr := find(rows, "CR", 20)
	aff := find(rows, "AFFRF", 20)
	if csf.AR < sr.AR {
		t.Errorf("CSF AR %.3f below SR %.3f", csf.AR, sr.AR)
	}
	if csf.AR <= cr.AR {
		t.Errorf("CSF AR %.3f not above CR %.3f", csf.AR, cr.AR)
	}
	if csf.AR <= aff.AR {
		t.Errorf("CSF AR %.3f not above AFFRF %.3f", csf.AR, aff.AR)
	}
	if aff.AR <= cr.AR {
		t.Errorf("AFFRF AR %.3f not above CR %.3f (multimodal should beat pure content)", aff.AR, cr.AR)
	}
}

// Figure 11's shape: effectiveness stays steady as months of social updates
// are replayed through the maintenance path.
func TestFig11Stable(t *testing.T) {
	rows := env(t).Fig11()
	min, max := 10.0, 0.0
	for _, r := range rows {
		if r.TopK != 10 {
			continue
		}
		if r.AR < min {
			min = r.AR
		}
		if r.AR > max {
			max = r.AR
		}
	}
	if max-min > 0.35 {
		t.Errorf("effectiveness drifted %.3f across update months (want steady)", max-min)
	}
}

// §4.2.2's in-text comparison: our sub-community extraction clusters users
// better than spectral clustering under the interaction distance.
func TestSilhouetteBeatsSpectral(t *testing.T) {
	e := env(t)
	ours, spec := e.Silhouette(200, e.optimalK())
	if ours <= spec {
		t.Errorf("silhouette ours %.3f not above spectral %.3f", ours, spec)
	}
	if ours <= 0 {
		t.Errorf("our silhouette %.3f should be positive", ours)
	}
}

// Figure 12 structure at a reduced scale: the sweep produces a row per
// (approach, size) with positive times, and the exact-sJ CSF grows with the
// collection while the SAR curves stay below it at the largest size.
func TestFig12Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	s := DefaultScale()
	s.EfficiencyHours = []float64{3, 9}
	s.Users = 120
	s.CommentMean = 20
	e := NewEfficiencyEnv(s)

	a := e.Fig12a()
	if len(a) != 6 {
		t.Fatalf("Fig12a rows = %d, want 6", len(a))
	}
	for _, r := range a {
		if r.MillisPerQuery <= 0 {
			t.Errorf("non-positive time: %+v", r)
		}
	}
	b := e.Fig12b()
	if len(b) != 4 {
		t.Fatalf("Fig12b rows = %d, want 4", len(b))
	}
	c := e.Fig12c()
	if len(c) != e.Col.Opts.MonthsTest {
		t.Fatalf("Fig12c rows = %d, want %d", len(c), e.Col.Opts.MonthsTest)
	}
	for _, r := range c {
		if r.Millis <= 0 {
			t.Errorf("non-positive update time: %+v", r)
		}
		if r.Report.Maintenance.NewConnections == 0 {
			t.Errorf("month %d derived no connections", r.Months)
		}
	}
}

func TestSourceDescriptorUsesSourcePeriodOnly(t *testing.T) {
	e := env(t)
	it := e.Col.Items[0]
	d := SourceDescriptor(e.Col, it)
	// Every test-period-only commenter must be absent.
	srcUsers := map[string]bool{}
	testOnly := map[string]bool{}
	for _, cm := range it.Comments {
		if cm.Month < e.Col.Opts.MonthsSource {
			srcUsers[cm.User] = true
		}
	}
	for _, cm := range it.Comments {
		if cm.Month >= e.Col.Opts.MonthsSource && !srcUsers[cm.User] {
			testOnly[cm.User] = true
		}
	}
	for u := range testOnly {
		if u != it.Owner && d.Contains(u) {
			t.Errorf("descriptor contains test-period-only user %s", u)
		}
	}
}

// The auto-tuner must land in the fused interior (neither pure content nor
// pure social) — the Figure 8 story, found automatically.
func TestTuneOmega(t *testing.T) {
	e := env(t)
	best, rows := e.TuneOmega(0.25, 20)
	if best <= 0 || best >= 1 {
		t.Errorf("tuned ω = %.2f, want interior (0,1)", best)
	}
	if len(rows) != 5*len(TopKs) {
		t.Errorf("sweep rows = %d, want %d", len(rows), 5*len(TopKs))
	}
}

// Extended metrics must preserve the Figure 10 ordering: CSF beats CR on
// NDCG and recall at top-20.
func TestFig10ExtendedShape(t *testing.T) {
	rows := env(t).Fig10Extended()
	var csf, cr ExtRow
	for _, r := range rows {
		if r.TopK != 20 {
			continue
		}
		switch r.Label {
		case "CSF":
			csf = r
		case "CR":
			cr = r
		}
	}
	if csf.NDCG <= cr.NDCG {
		t.Errorf("CSF NDCG %.3f not above CR %.3f", csf.NDCG, cr.NDCG)
	}
	if csf.R <= cr.R {
		t.Errorf("CSF recall %.3f not above CR %.3f", csf.R, cr.R)
	}
	for _, r := range rows {
		if r.NDCG < 0 || r.NDCG > 1 || r.P < 0 || r.P > 1 || r.R < 0 || r.R > 1 || r.MRR < 0 || r.MRR > 1 {
			t.Errorf("metric out of range: %+v", r)
		}
	}
}

// Robustness extension: every edit level must retain more κJ than the
// unrelated-pair noise floor, and harsher noise must not retain more than
// milder noise.
func TestRobustnessShape(t *testing.T) {
	rows, floor := env(t).Robustness()
	if len(rows) == 0 {
		t.Fatal("no robustness rows")
	}
	byEdit := map[string][]RobustnessRow{}
	for _, r := range rows {
		if r.Retention <= floor {
			t.Errorf("%s@%g retention %.3f not above unrelated floor %.3f", r.Edit, r.Level, r.Retention, floor)
		}
		byEdit[r.Edit] = append(byEdit[r.Edit], r)
	}
	noise := byEdit["noise"]
	if len(noise) == 3 && noise[0].Retention < noise[2].Retention-0.05 {
		t.Errorf("mild noise %.3f retains less than harsh noise %.3f", noise[0].Retention, noise[2].Retention)
	}
}
