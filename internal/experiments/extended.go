package experiments

import (
	"fmt"

	"videorec/internal/metrics"
)

// ExtRow is one extended-metrics measurement: modern ranking measures the
// paper does not report, computed over the same rankers as Figure 10. An
// extension of the evaluation, recorded separately in EXPERIMENTS.md.
type ExtRow struct {
	Label string
	TopK  int
	NDCG  float64
	P     float64 // precision@K
	R     float64 // recall@K
	MRR   float64
}

// String renders the row for cmd/experiments.
func (r ExtRow) String() string {
	return fmt.Sprintf("%-12s top%-3d NDCG=%.3f P=%.3f R=%.3f MRR=%.3f",
		r.Label, r.TopK, r.NDCG, r.P, r.R, r.MRR)
}

// relevantTo reports ground-truth binary relevance for the extended
// metrics: same topic or shared footage.
func (e *Env) relevantTo(src, id string) bool {
	return e.Col.Relevance(src, id) >= 0.8
}

// totalRelevant counts the corpus-wide relevant items for a source.
func (e *Env) totalRelevant(src string) int {
	n := 0
	for _, it := range e.Col.Items {
		if it.ID != src && e.relevantTo(src, it.ID) {
			n++
		}
	}
	return n
}

// EvaluateExtended runs a ranker over the 10 sources and aggregates NDCG,
// precision, recall and MRR at each TopK.
func (e *Env) EvaluateExtended(label string, rank Ranker) []ExtRow {
	rows := make([]ExtRow, 0, len(TopKs))
	for _, k := range TopKs {
		var ndcgSum, pSum, rSum float64
		var perQueryRel [][]bool
		srcs := e.Sources()
		for _, src := range srcs {
			ids := rank(src, k)
			gains := make([]float64, len(ids))
			rel := make([]bool, len(ids))
			for i, id := range ids {
				gains[i] = e.Panel.Rate(src+"|"+id, e.Col.Relevance(src, id))
				rel[i] = e.relevantTo(src, id)
			}
			ndcgSum += metrics.NDCG(gains)
			pSum += metrics.PrecisionAtK(rel, k)
			rSum += metrics.RecallAtK(rel, k, e.totalRelevant(src))
			perQueryRel = append(perQueryRel, rel)
		}
		n := float64(len(srcs))
		rows = append(rows, ExtRow{
			Label: label,
			TopK:  k,
			NDCG:  ndcgSum / n,
			P:     pSum / n,
			R:     rSum / n,
			MRR:   metrics.MeanReciprocalRank(perQueryRel),
		})
	}
	return rows
}

// Fig10Extended evaluates the Figure 10 approaches under the extended
// ranking metrics.
func (e *Env) Fig10Extended() []ExtRow {
	vecs := e.socialVectors(e.optimalK())
	var rows []ExtRow
	rows = append(rows, e.EvaluateExtended("CSF", e.fusedRanker(0.7, vecs))...)
	rows = append(rows, e.EvaluateExtended("SR", e.fusedRanker(1.0, vecs))...)
	rows = append(rows, e.EvaluateExtended("CR", e.fusedRanker(0.0, vecs))...)
	rows = append(rows, e.EvaluateExtended("AFFRF", func(src string, topK int) []string {
		recs := e.AFFRF.Recommend(src, topK)
		ids := make([]string, len(recs))
		for i, r := range recs {
			ids[i] = r.ID
		}
		return ids
	})...)
	return rows
}
