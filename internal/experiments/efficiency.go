package experiments

import (
	"fmt"
	"time"

	"videorec/internal/core"
	"videorec/internal/dataset"
	"videorec/internal/signature"
)

// EfficiencyEnv is the artifact set for the Figure 12 timing experiments.
// The collection is generated once at the largest sweep size with heavier
// comment traffic (exact sJ's quadratic cost needs the paper's
// hundreds-of-commenters descriptors to show), then sliced down.
type EfficiencyEnv struct {
	Scale  Scale
	Col    *dataset.Collection
	Series map[string]signature.Series
}

// NewEfficiencyEnv generates and extracts the timing collection.
func NewEfficiencyEnv(s Scale) *EfficiencyEnv {
	o := dataset.DefaultOptions()
	o.Hours = s.EfficiencyHours[len(s.EfficiencyHours)-1]
	// Timing runs want the paper's fat descriptors ("several hundreds to
	// tens thousands" of commenters): the quadratic exact-sJ cost CSF pays
	// per candidate has to be visible against the content side.
	o.Users = s.Users * 4
	o.CommentMean = s.CommentMean * 8
	o.Seed = s.Seed + 1
	col := dataset.Generate(o)
	e := &EfficiencyEnv{Scale: s, Col: col, Series: make(map[string]signature.Series, len(col.Items))}
	sigOpts := signature.DefaultOptions()
	for _, it := range col.Items {
		v := it.Render(o.Synth)
		e.Series[it.ID] = signature.Extract(v, sigOpts)
		v.ReleaseFrames()
	}
	return e
}

// TimeRow is one timing measurement: an approach at one collection size.
type TimeRow struct {
	Label          string
	Hours          float64
	MillisPerQuery float64
}

// String renders the row the way cmd/experiments prints Figure 12.
func (r TimeRow) String() string {
	return fmt.Sprintf("%-10s %6.1fh  %8.2f ms/query", r.Label, r.Hours, r.MillisPerQuery)
}

// build ingests a slice of the timing collection into a recommender.
func (e *EfficiencyEnv) build(opts core.Options, col *dataset.Collection) *core.Recommender {
	r := core.NewRecommender(opts)
	for _, it := range col.Items {
		r.IngestSeries(it.ID, e.Series[it.ID], SourceDescriptor(col, it))
	}
	r.BuildSocial()
	return r
}

// timeQueries measures the mean wall-clock recommendation time over the 10
// source videos.
func timeQueries(r *core.Recommender, col *dataset.Collection, topK int) float64 {
	var srcs []string
	for _, q := range col.Queries {
		srcs = append(srcs, q.Sources...)
	}
	if len(srcs) == 0 {
		return 0
	}
	start := time.Now()
	for _, src := range srcs {
		r.RecommendID(src, topK)
	}
	return float64(time.Since(start).Microseconds()) / 1000.0 / float64(len(srcs))
}

// modeOptions returns the tuned options for one efficiency variant. The
// probe budgets are set low enough to bind at every sweep size: the whole
// point of the SAR candidate pruning is that the refinement set stops
// growing with the collection, which is what separates the CSF-SAR curves
// from the full-scan CSF in Figure 12(a).
func modeOptions(mode core.Mode) core.Options {
	opts := core.DefaultOptions()
	opts.Mode = mode
	opts.CandidateLimit = 120
	opts.ContentProbe = 256
	return opts
}

// Fig12a times the three social-relevance variants — CSF (exact sJ),
// CSF-SAR and CSF-SAR-H — over the collection-size sweep (Figure 12 a).
func (e *EfficiencyEnv) Fig12a() []TimeRow {
	var rows []TimeRow
	for _, mode := range []core.Mode{core.ModeExact, core.ModeSAR, core.ModeSARHash} {
		for _, h := range e.Scale.EfficiencyHours {
			col := e.Col.SliceHours(h)
			r := e.build(modeOptions(mode), col)
			rows = append(rows, TimeRow{
				Label:          mode.String(),
				Hours:          h,
				MillisPerQuery: timeQueries(r, col, 20),
			})
		}
	}
	return rows
}

// Fig12b times CSF-SAR-H against the content-only CR baseline [35]
// (Figure 12 b).
func (e *EfficiencyEnv) Fig12b() []TimeRow {
	var rows []TimeRow
	for _, h := range e.Scale.EfficiencyHours {
		col := e.Col.SliceHours(h)
		r := e.build(modeOptions(core.ModeSARHash), col)
		rows = append(rows, TimeRow{
			Label: "CSF-SAR-H", Hours: h, MillisPerQuery: timeQueries(r, col, 20),
		})
		crOpts := modeOptions(core.ModeSARHash)
		crOpts.ContentWeightOnly = true
		cr := e.build(crOpts, col)
		rows = append(rows, TimeRow{
			Label: "CR", Hours: h, MillisPerQuery: timeQueries(cr, col, 20),
		})
	}
	return rows
}

// UpdateRow is one social-update maintenance measurement (Figure 12 c).
type UpdateRow struct {
	Months int
	Millis float64
	Report core.UpdateReport
}

// String renders the row the way cmd/experiments prints Figure 12 (c).
func (r UpdateRow) String() string {
	return fmt.Sprintf("%d month(s)  %8.2f ms  (unions=%d splits=%d revectorized=%d)",
		r.Months, r.Millis,
		r.Report.Maintenance.Unions, r.Report.Maintenance.Splits, r.Report.VideosRevectorized)
}

// Fig12c measures the Figure 5 maintenance cost when replaying 1–4 months
// of test-period comments onto a recommender built on the source period.
func (e *EfficiencyEnv) Fig12c() []UpdateRow {
	months := e.Col.Opts.MonthsSource
	var rows []UpdateRow
	for m := 1; m <= e.Col.Opts.MonthsTest; m++ {
		r := e.build(modeOptions(core.ModeSARHash), e.Col)
		batch := map[string][]string{}
		for _, it := range e.Col.Items {
			for _, cm := range it.Comments {
				if cm.Month >= months && cm.Month < months+m {
					batch[it.ID] = append(batch[it.ID], cm.User)
				}
			}
		}
		start := time.Now()
		rep := r.ApplyUpdates(batch)
		rows = append(rows, UpdateRow{
			Months: m,
			Millis: float64(time.Since(start).Microseconds()) / 1000.0,
			Report: rep,
		})
	}
	return rows
}
