package experiments

import (
	"fmt"

	"videorec/internal/baselines"
	"videorec/internal/community"
	"videorec/internal/core"
	"videorec/internal/dataset"
	"videorec/internal/metrics"
	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/spectral"
)

// Table2 returns the five queries with their source videos — the contents of
// Table 2 plus the per-query sources the evaluation uses.
func (e *Env) Table2() []dataset.Query { return e.Col.Queries }

// Silhouette reproduces the in-text §4.2.2 comparison: cluster the users of
// a random video sample with our sub-community extraction and with spectral
// clustering, and report both Silhouette Coefficients (paper: 0.498 vs
// 0.242). The user distance is 1 − Jaccard over interest sets. sampleVideos
// bounds the sample; users are capped so the O(n³) spectral eigensolve stays
// tractable.
func (e *Env) Silhouette(sampleVideos, k int) (ours, spec float64) {
	audiences := map[string][]string{}
	userSet := map[string]bool{}
	const maxUsers = 220
	for i, it := range e.Col.Items {
		if i >= sampleVideos {
			break
		}
		users := e.Descs[it.ID].Users()
		kept := make([]string, 0, len(users))
		for _, u := range users {
			if userSet[u] || len(userSet) < maxUsers {
				userSet[u] = true
				kept = append(kept, u)
			}
		}
		audiences[it.ID] = kept
	}
	// Cluster the users the dictionary actually groups: drive-by commenters
	// carry no community signal and are excluded from the UIG at build time
	// (see core.FilterAudiences); clustering them is meaningless for either
	// algorithm.
	audiences = core.FilterAudiences(audiences, 4)
	g := community.BuildUIG(audiences)
	users := g.Users()
	if len(users) < 4 {
		return 0, 0
	}

	// Interest sets for the distance function: the user's full commenting
	// history over the whole collection, not just the sampled videos —
	// sample-restricted sets are too sparse to carry a usable distance.
	// The distance mirrors UIG semantics: d = 1/(1 + #shared videos), so
	// strongly co-commenting users are close regardless of how much else
	// they each watch.
	interest := map[string]map[string]bool{}
	for _, it := range e.Col.Items {
		for _, u := range e.Descs[it.ID].Users() {
			if interest[u] == nil {
				interest[u] = map[string]bool{}
			}
			interest[u][it.ID] = true
		}
	}
	dist := func(a, b string) float64 {
		ia, ib := interest[a], interest[b]
		inter := 0
		for v := range ia {
			if ib[v] {
				inter++
			}
		}
		return 1 / (1 + float64(inter))
	}

	p := community.ExtractSubCommunities(g, k)
	ours = metrics.Silhouette(users, p.AssignMap(), dist)
	spec = metrics.Silhouette(users, spectral.Cluster(g, k, e.Scale.Seed), dist)
	return ours, spec
}

// Fig7 compares the three content similarity measures — ERP, DTW and κJ —
// as content-only rankers (Figure 7 a–c).
func (e *Env) Fig7() []Row {
	var rows []Row
	measures := []struct {
		label string
		sim   func(a, b signature.Series) float64
	}{
		{"ERP", baselines.ERPSimilarity},
		{"DTW", baselines.DTWSimilarity},
		{"kJ", func(a, b signature.Series) float64 {
			return signature.KJ(a, b, signature.DefaultMatchThreshold)
		}},
	}
	for _, m := range measures {
		m := m
		rows = append(rows, e.Evaluate(m.label, func(src string, topK int) []string {
			scores := map[string]float64{}
			for _, it := range e.Col.Items {
				if it.ID != src {
					scores[it.ID] = m.sim(e.Series[src], e.Series[it.ID])
				}
			}
			return rankByScore(scores, topK)
		})...)
	}
	return rows
}

// socialVectors builds the SAR machinery at a given k over the
// source-period descriptors and returns every video's descriptor vector.
func (e *Env) socialVectors(k int) map[string]social.Vector {
	audiences := map[string][]string{}
	for _, it := range e.Col.Items {
		audiences[it.ID] = capUsers(e.Descs[it.ID].Users(), 50)
	}
	audiences = core.FilterAudiences(audiences, 2)
	g := community.BuildUIG(audiences)
	p := community.ExtractSubCommunities(g, k)
	lookup := p.Lookup
	vecs := make(map[string]social.Vector, len(e.Col.Items))
	for _, it := range e.Col.Items {
		vecs[it.ID] = social.Vectorize(e.Descs[it.ID], lookup, p.Dim)
	}
	return vecs
}

func capUsers(users []string, max int) []string {
	if len(users) <= max {
		return users
	}
	out := make([]string, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, users[i*len(users)/max])
	}
	return out
}

// fusedRanker ranks by FJ = (1−ω)·κJ + ω·s̃J over the given vectors.
func (e *Env) fusedRanker(omega float64, vecs map[string]social.Vector) Ranker {
	return func(src string, topK int) []string {
		content := e.Content(src)
		qv := vecs[src]
		scores := map[string]float64{}
		for _, it := range e.Col.Items {
			if it.ID == src {
				continue
			}
			s := social.ApproxJaccard(qv, vecs[it.ID])
			scores[it.ID] = (1-omega)*content[it.ID] + omega*s
		}
		return rankByScore(scores, topK)
	}
}

// Fig8 sweeps the fusion weight ω (Figure 8 a–c). The paper's peak is 0.7.
func (e *Env) Fig8(omegas []float64) []Row {
	vecs := e.socialVectors(e.optimalK())
	var rows []Row
	for _, w := range omegas {
		rows = append(rows, e.Evaluate(fmt.Sprintf("w=%.1f", w), e.fusedRanker(w, vecs))...)
	}
	return rows
}

// Fig9 sweeps the sub-community count k (Figure 9 a–c). The paper plateaus
// from 60. The sweep values scale with the collection: at DefaultScale the
// community is ~8x smaller than the paper's, so ks are interpreted as-is.
func (e *Env) Fig9(ks []int) []Row {
	var rows []Row
	for _, k := range ks {
		vecs := e.socialVectors(k)
		rows = append(rows, e.Evaluate(fmt.Sprintf("k=%d", k), e.fusedRanker(0.7, vecs))...)
	}
	return rows
}

// optimalK is the scale's tuned k clamped to the community's user count.
func (e *Env) optimalK() int {
	k := e.Scale.OptimalK
	if k < 1 {
		k = 60
	}
	if n := len(e.Col.Users); k > n {
		k = n
	}
	return k
}

// Fig10 compares the four recommendation approaches (Figure 10 a–c):
// SR (social only), CSF (content-social fusion at the tuned ω and k),
// CR (content only, [35]) and AFFRF (multimodal + relevance feedback [33]).
func (e *Env) Fig10() []Row {
	vecs := e.socialVectors(e.optimalK())
	var rows []Row
	rows = append(rows, e.Evaluate("CSF", e.fusedRanker(0.7, vecs))...)
	rows = append(rows, e.Evaluate("SR", e.fusedRanker(1.0, vecs))...)
	rows = append(rows, e.Evaluate("CR", e.fusedRanker(0.0, vecs))...)
	rows = append(rows, e.Evaluate("AFFRF", func(src string, topK int) []string {
		recs := e.AFFRF.Recommend(src, topK)
		ids := make([]string, len(recs))
		for i, r := range recs {
			ids[i] = r.ID
		}
		return ids
	})...)
	return rows
}

// Fig11 measures effectiveness stability under social updates (Figure 11
// a–c): the recommender is built on the 12-month source period, then 1–4
// months of test-period comments are replayed through the Figure 5
// maintenance path, re-evaluating after each extra month.
func (e *Env) Fig11() []Row {
	opts := core.DefaultOptions()
	opts.K = e.optimalK()
	opts.FullScan = true
	r := e.BuildRecommender(opts, e.Col)

	evalNow := func(label string) []Row {
		return e.Evaluate(label, func(src string, topK int) []string {
			res := r.RecommendID(src, topK)
			ids := make([]string, len(res))
			for i, x := range res {
				ids[i] = x.VideoID
			}
			return ids
		})
	}
	rows := evalNow("0mo")
	months := e.Col.Opts.MonthsSource
	for m := 0; m < e.Col.Opts.MonthsTest; m++ {
		batch := map[string][]string{}
		for _, it := range e.Col.Items {
			for _, cm := range it.Comments {
				if cm.Month == months+m {
					batch[it.ID] = append(batch[it.ID], cm.User)
				}
			}
		}
		r.ApplyUpdates(batch)
		rows = append(rows, evalNow(fmt.Sprintf("%dmo", m+1))...)
	}
	return rows
}
