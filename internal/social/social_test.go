package social

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDescriptorDedupes(t *testing.T) {
	d := NewDescriptor("owner", "a", "b", "a", "owner", "")
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (owner, a, b)", d.Len())
	}
	for _, u := range []string{"owner", "a", "b"} {
		if !d.Contains(u) {
			t.Errorf("missing %q", u)
		}
	}
	if d.Contains("c") {
		t.Error("unexpected user c")
	}
}

func TestNewDescriptorEmptyOwner(t *testing.T) {
	d := NewDescriptor("", "x")
	if d.Len() != 1 || !d.Contains("x") {
		t.Errorf("descriptor = %v", d.Users())
	}
}

func TestDescriptorAddDoesNotMutate(t *testing.T) {
	d := NewDescriptor("o", "a")
	e := d.Add("b", "a")
	if d.Len() != 2 {
		t.Errorf("original mutated: Len = %d", d.Len())
	}
	if e.Len() != 3 || !e.Contains("b") {
		t.Errorf("extended descriptor = %v", e.Users())
	}
}

func TestJaccardKnownValues(t *testing.T) {
	a := NewDescriptor("", "u1", "u2", "u3")
	b := NewDescriptor("", "u2", "u3", "u4", "u5")
	// |∩| = 2, |∪| = 5.
	if got := Jaccard(a, b); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Jaccard = %g, want 0.4", got)
	}
}

func TestJaccardEdgeCases(t *testing.T) {
	empty := NewDescriptor("")
	a := NewDescriptor("", "x")
	if got := Jaccard(empty, empty); got != 0 {
		t.Errorf("empty-empty = %g, want 0", got)
	}
	if got := Jaccard(a, empty); got != 0 {
		t.Errorf("a-empty = %g, want 0", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self = %g, want 1", got)
	}
}

func TestVectorize(t *testing.T) {
	cnos := map[string]int{"a": 0, "b": 1, "c": 1, "zombie": 99}
	lookup := func(u string) (int, bool) { c, ok := cnos[u]; return c, ok }
	d := NewDescriptor("", "a", "b", "c", "unknown", "zombie")
	v := Vectorize(d, lookup, 3)
	if len(v) != 3 {
		t.Fatalf("len = %d, want 3", len(v))
	}
	if v[0] != 1 || v[1] != 2 || v[2] != 0 {
		t.Errorf("vector = %v, want [1 2 0]", v)
	}
}

func TestApproxJaccardKnownValues(t *testing.T) {
	a := Vector{2, 0, 3}
	b := Vector{1, 1, 3}
	// min: 1+0+3 = 4; max: 2+1+3 = 6.
	if got := ApproxJaccard(a, b); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("ApproxJaccard = %g, want 2/3", got)
	}
}

func TestApproxJaccardEdgeCases(t *testing.T) {
	if got := ApproxJaccard(Vector{0, 0}, Vector{0, 0}); got != 0 {
		t.Errorf("zero vectors = %g, want 0", got)
	}
	if got := ApproxJaccard(Vector{1, 2}, Vector{1, 2}); got != 1 {
		t.Errorf("self = %g, want 1", got)
	}
	// Length mismatch degrades instead of panicking.
	if got := ApproxJaccard(Vector{1}, Vector{1, 3}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("mismatched lengths = %g, want 0.25", got)
	}
}

func randomDescriptor(rng *rand.Rand, universe int) Descriptor {
	n := rng.Intn(12)
	users := make([]string, 0, n)
	for i := 0; i < n; i++ {
		users = append(users, fmt.Sprintf("u%d", rng.Intn(universe)))
	}
	return NewDescriptor("", users...)
}

func TestPropertyJaccardAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDescriptor(rng, 20)
		b := randomDescriptor(rng, 20)
		s := Jaccard(a, b)
		if s < 0 || s > 1 {
			return false
		}
		if math.Abs(Jaccard(b, a)-s) > 1e-15 {
			return false
		}
		if a.Len() > 0 && Jaccard(a, a) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// SAR exactness property from DESIGN.md: with one sub-community per user the
// approximation degenerates to the exact Jaccard.
func TestPropertySingletonSubCommunitiesExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const universe = 15
		lookup := func(u string) (int, bool) {
			var id int
			if _, err := fmt.Sscanf(u, "u%d", &id); err != nil {
				return 0, false
			}
			return id, true
		}
		a := randomDescriptor(rng, universe)
		b := randomDescriptor(rng, universe)
		va := Vectorize(a, lookup, universe)
		vb := Vectorize(b, lookup, universe)
		return math.Abs(ApproxJaccard(va, vb)-Jaccard(a, b)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// s̃J can only overestimate or underestimate within [0,1] and stays
// symmetric.
func TestPropertyApproxJaccardAxioms(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a := make(Vector, half)
		b := make(Vector, half)
		for i := 0; i < half; i++ {
			a[i] = float64(raw[i] % 8)
			b[i] = float64(raw[half+i] % 8)
		}
		s := ApproxJaccard(a, b)
		if s < 0 || s > 1 {
			return false
		}
		return math.Abs(ApproxJaccard(b, a)-s) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkJaccardLargeDescriptors(b *testing.B) {
	users := make([]string, 2000)
	for i := range users {
		users[i] = fmt.Sprintf("user-%d", i)
	}
	d1 := NewDescriptor("", users[:1500]...)
	d2 := NewDescriptor("", users[500:]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(d1, d2)
	}
}

func BenchmarkApproxJaccard(b *testing.B) {
	a := make(Vector, 60)
	c := make(Vector, 60)
	for i := range a {
		a[i] = float64(i % 7)
		c[i] = float64((i + 3) % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApproxJaccard(a, c)
	}
}
