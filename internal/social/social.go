// Package social implements the social-relevance side of §4.2: per-video
// social descriptors (the owner plus every commenting user), the exact
// Jaccard relevance sJ (Equation 5), and the SAR approximation — descriptor
// vectorization over k sub-communities and the histogram min/max relevance
// s̃J (Equation 6).
package social

import "sort"

// Descriptor is the social descriptor D_V of a video: the set of ids of its
// owner and the users commenting on it. Users are stored sorted and
// deduplicated, so set operations are linear merges.
type Descriptor struct {
	users []string
}

// NewDescriptor builds a descriptor from the owner id and commenter ids.
// Empty ids are ignored; duplicates collapse.
func NewDescriptor(owner string, commenters ...string) Descriptor {
	all := make([]string, 0, len(commenters)+1)
	if owner != "" {
		all = append(all, owner)
	}
	for _, c := range commenters {
		if c != "" {
			all = append(all, c)
		}
	}
	return fromUnsorted(all)
}

// fromUnsorted sorts and deduplicates in place, taking ownership of the
// slice. Callers must have already dropped empty ids.
func fromUnsorted(all []string) Descriptor {
	sort.Strings(all)
	out := all[:0]
	for i, u := range all {
		if i == 0 || u != all[i-1] {
			out = append(out, u)
		}
	}
	return Descriptor{users: out}
}

// Len returns the number of distinct users in the descriptor.
func (d Descriptor) Len() int { return len(d.users) }

// Users returns the sorted distinct user ids. The caller must not modify the
// returned slice.
func (d Descriptor) Users() []string { return d.users }

// Contains reports whether the user id is in the descriptor.
func (d Descriptor) Contains(user string) bool {
	i := sort.SearchStrings(d.users, user)
	return i < len(d.users) && d.users[i] == user
}

// Add returns a descriptor extended with the given users (the original is
// unchanged). It is used when new comments arrive on a video. Only the
// incoming users are sorted; the existing members — already sorted — join
// them through a linear merge, so growing a large descriptor by a few
// commenters costs O(new·log new + len) rather than re-sorting everything.
func (d Descriptor) Add(users ...string) Descriptor {
	add := make([]string, 0, len(users))
	for _, u := range users {
		if u != "" {
			add = append(add, u)
		}
	}
	sort.Strings(add)
	w := 0
	for i, u := range add {
		if i == 0 || u != add[i-1] {
			add[w] = u
			w++
		}
	}
	add = add[:w]

	merged := make([]string, 0, len(d.users)+len(add))
	i, j := 0, 0
	for i < len(d.users) && j < len(add) {
		switch {
		case d.users[i] == add[j]:
			merged = append(merged, d.users[i])
			i++
			j++
		case d.users[i] < add[j]:
			merged = append(merged, d.users[i])
			i++
		default:
			merged = append(merged, add[j])
			j++
		}
	}
	merged = append(merged, d.users[i:]...)
	merged = append(merged, add[j:]...)
	return Descriptor{users: merged}
}

// Jaccard is Equation 5: |D_V ∩ D_Q| / |D_V ∪ D_Q|, computed by a linear
// merge over the sorted user lists. Two empty descriptors have relevance 0.
func Jaccard(a, b Descriptor) float64 {
	if len(a.users) == 0 && len(b.users) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a.users) && j < len(b.users) {
		switch {
		case a.users[i] == b.users[j]:
			inter++
			i++
			j++
		case a.users[i] < b.users[j]:
			i++
		default:
			j++
		}
	}
	union := len(a.users) + len(b.users) - inter
	return float64(inter) / float64(union)
}

// Vector is a SAR social-descriptor vector: Vector[c] counts the
// descriptor's users that belong to sub-community c.
type Vector []float64

// Lookup resolves a user id to its sub-community id; the boolean reports
// whether the user is known. In production this is the chained hash table of
// package hashing; tests may use a plain map.
type Lookup func(user string) (cno int, ok bool)

// Vectorize converts a descriptor into its k-dimensional sub-community
// histogram. Users the dictionary does not know (e.g. brand-new commenters
// that arrived after the last maintenance pass) are skipped — they belong to
// no extracted sub-community yet.
func Vectorize(d Descriptor, lookup Lookup, k int) Vector {
	return VectorizeInto(nil, d, lookup, k)
}

// VectorizeInto is Vectorize writing into dst's storage when it has the
// capacity, so a pooled per-query scratch vector is reused across queries
// instead of allocated per call. The returned vector must be used in place
// of dst (it may be a fresh allocation when dst was too small).
func VectorizeInto(dst Vector, d Descriptor, lookup Lookup, k int) Vector {
	if cap(dst) >= k {
		dst = dst[:k]
		clear(dst)
	} else {
		dst = make(Vector, k)
	}
	for _, u := range d.users {
		if cno, ok := lookup(u); ok && cno >= 0 && cno < k {
			dst[cno]++
		}
	}
	return dst
}

// ApproxJaccard is Equation 6: Σ min(d_Qi, d_Vi) / Σ max(d_Qi, d_Vi), the
// SAR approximation of sJ over two descriptor vectors. Vectors of different
// lengths are compared over the shorter prefix with the longer tail counted
// in the denominator, so a dimension mismatch degrades gracefully instead of
// panicking. Two zero vectors have relevance 0.
func ApproxJaccard(a, b Vector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var num, den float64
	for i := 0; i < n; i++ {
		if a[i] < b[i] {
			num += a[i]
			den += b[i]
		} else {
			num += b[i]
			den += a[i]
		}
	}
	for _, x := range a[n:] {
		den += x
	}
	for _, x := range b[n:] {
		den += x
	}
	if den == 0 {
		return 0
	}
	return num / den
}
