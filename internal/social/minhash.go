package social

// MinHash sketching — the classical estimator for set Jaccard and the
// natural alternative to the paper's SAR scheme. SAR compresses descriptors
// through community structure (k dims, exact for users inside one
// sub-community); MinHash compresses through random permutations (k hashes,
// unbiased for any sets but blind to community semantics and unable to feed
// the inverted files). The ablation bench compares both against exact sJ.

// MinHasher sketches user sets with k independent hash permutations.
type MinHasher struct {
	seeds []uint64
}

// NewMinHasher creates a sketcher with k hash functions, deterministically
// derived from seed. k is clamped to at least 1.
func NewMinHasher(k int, seed int64) *MinHasher {
	if k < 1 {
		k = 1
	}
	seeds := make([]uint64, k)
	x := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	for i := range seeds {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		seeds[i] = x | 1
	}
	return &MinHasher{seeds: seeds}
}

// K returns the sketch width.
func (m *MinHasher) K() int { return len(m.seeds) }

// Sketch returns the MinHash signature of a descriptor: per permutation,
// the minimum hash over its users. An empty descriptor sketches to all
// math.MaxUint64, which estimates Jaccard 1 only against another empty set —
// callers should treat empty descriptors specially (as Jaccard does).
func (m *MinHasher) Sketch(d Descriptor) []uint64 {
	sk := make([]uint64, len(m.seeds))
	for i := range sk {
		sk[i] = ^uint64(0)
	}
	for _, u := range d.Users() {
		h := fnv64(u)
		for i, s := range m.seeds {
			// Multiply-shift permutation per seed.
			v := (h ^ s) * 0xff51afd7ed558ccd
			v ^= v >> 33
			if v < sk[i] {
				sk[i] = v
			}
		}
	}
	return sk
}

// EstimateJaccard estimates |A∩B|/|A∪B| as the fraction of agreeing sketch
// positions. Sketches must come from the same MinHasher.
func EstimateJaccard(a, b []uint64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	agree := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(n)
}

func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
