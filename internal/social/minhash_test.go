package social

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinHashIdenticalSets(t *testing.T) {
	m := NewMinHasher(64, 7)
	d := NewDescriptor("", "a", "b", "c")
	if got := EstimateJaccard(m.Sketch(d), m.Sketch(d)); got != 1 {
		t.Errorf("identical sets estimate %g, want 1", got)
	}
}

func TestMinHashDisjointSets(t *testing.T) {
	m := NewMinHasher(128, 7)
	a := m.Sketch(NewDescriptor("", "a1", "a2", "a3", "a4"))
	b := m.Sketch(NewDescriptor("", "b1", "b2", "b3", "b4"))
	if got := EstimateJaccard(a, b); got > 0.1 {
		t.Errorf("disjoint sets estimate %g, want ~0", got)
	}
}

func TestMinHashDeterministic(t *testing.T) {
	d := NewDescriptor("", "x", "y")
	a := NewMinHasher(32, 3).Sketch(d)
	b := NewMinHasher(32, 3).Sketch(d)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sketch not deterministic")
		}
	}
	// Different seeds give different sketches.
	c := NewMinHasher(32, 4).Sketch(d)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical sketches")
	}
}

func TestMinHashClampsK(t *testing.T) {
	m := NewMinHasher(0, 1)
	if m.K() != 1 {
		t.Errorf("K = %d, want 1", m.K())
	}
}

func TestEstimateJaccardEdgeCases(t *testing.T) {
	if got := EstimateJaccard(nil, nil); got != 0 {
		t.Errorf("empty sketches = %g", got)
	}
	if got := EstimateJaccard([]uint64{1, 2}, []uint64{1}); got != 1 {
		t.Errorf("length mismatch uses prefix: %g", got)
	}
}

// The estimator must track the exact Jaccard within Monte-Carlo error
// (std ≈ sqrt(J(1-J)/k) ≈ 0.06 at k=128 worst case; allow 4 sigma).
func TestPropertyMinHashAccuracy(t *testing.T) {
	m := NewMinHasher(128, 11)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := 30
		mk := func() Descriptor {
			var us []string
			n := 3 + rng.Intn(12)
			for i := 0; i < n; i++ {
				us = append(us, fmt.Sprintf("u%d", rng.Intn(universe)))
			}
			return NewDescriptor("", us...)
		}
		a, b := mk(), mk()
		exact := Jaccard(a, b)
		est := EstimateJaccard(m.Sketch(a), m.Sketch(b))
		return math.Abs(exact-est) < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Compare the three estimators' cost on realistic descriptor sizes: exact
// sJ (linear merge), SAR s̃J (k-dim vectors) and MinHash (k-wide sketches).
func BenchmarkJaccardEstimators(b *testing.B) {
	users := make([]string, 400)
	for i := range users {
		users[i] = fmt.Sprintf("user-%04d", i)
	}
	d1 := NewDescriptor("", users[:300]...)
	d2 := NewDescriptor("", users[100:]...)
	m := NewMinHasher(64, 1)
	s1, s2 := m.Sketch(d1), m.Sketch(d2)
	v1 := make(Vector, 60)
	v2 := make(Vector, 60)
	for i := range v1 {
		v1[i] = float64(i % 5)
		v2[i] = float64((i + 2) % 7)
	}
	b.Run("exact-sJ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Jaccard(d1, d2)
		}
	})
	b.Run("sar-vector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ApproxJaccard(v1, v2)
		}
	})
	b.Run("minhash-64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EstimateJaccard(s1, s2)
		}
	})
	b.Run("minhash-sketch-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Sketch(d1)
		}
	})
}
