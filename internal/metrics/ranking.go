package metrics

import "math"

// Extensions beyond the paper's AR/AC/MAP: standard ranking measures that
// make the harness comparable with modern recommender evaluations.

// PrecisionAtK is the fraction of the first k entries that are relevant.
// Shorter lists are evaluated as-is (missing tail counts against precision
// only through k).
func PrecisionAtK(relevant []bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	n := k
	if len(relevant) < n {
		n = len(relevant)
	}
	hits := 0
	for i := 0; i < n; i++ {
		if relevant[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK is the fraction of all relevant items that appear in the first
// k entries. totalRelevant is the number of relevant items in the corpus
// for this query; zero yields recall 0.
func RecallAtK(relevant []bool, k, totalRelevant int) float64 {
	if k <= 0 || totalRelevant <= 0 {
		return 0
	}
	n := k
	if len(relevant) < n {
		n = len(relevant)
	}
	hits := 0
	for i := 0; i < n; i++ {
		if relevant[i] {
			hits++
		}
	}
	return float64(hits) / float64(totalRelevant)
}

// NDCG computes the normalized discounted cumulative gain of a ranked list
// of graded gains (e.g. the panel ratings): DCG with log2 discounting,
// normalized by the ideal ordering of the same gains. A list whose ideal
// DCG is zero scores 0.
func NDCG(gains []float64) float64 {
	if len(gains) == 0 {
		return 0
	}
	dcg := dcgOf(gains)
	ideal := append([]float64(nil), gains...)
	// Descending sort (tiny lists; insertion is fine and allocation-free).
	for i := 1; i < len(ideal); i++ {
		for j := i; j > 0 && ideal[j] > ideal[j-1]; j-- {
			ideal[j], ideal[j-1] = ideal[j-1], ideal[j]
		}
	}
	idcg := dcgOf(ideal)
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func dcgOf(gains []float64) float64 {
	var s float64
	for i, g := range gains {
		s += g / math.Log2(float64(i)+2)
	}
	return s
}

// MeanReciprocalRank is the standard MRR over per-query first-relevant
// ranks: 1/rank of the first relevant item, 0 when none is retrieved.
func MeanReciprocalRank(perQuery [][]bool) float64 {
	if len(perQuery) == 0 {
		return 0
	}
	var s float64
	for _, rel := range perQuery {
		for i, r := range rel {
			if r {
				s += 1 / float64(i+1)
				break
			}
		}
	}
	return s / float64(len(perQuery))
}
