// Package metrics implements the evaluation measures of §5.2 — average
// rating score AR (Eq. 10a), average accuracy AC (Eq. 10b), average
// precision AP (Eq. 11) and MAP (Eq. 12) — plus the Silhouette Coefficient
// used in the §4.2.2 clustering comparison, and a deterministic simulated
// evaluator panel standing in for the paper's 10 human raters.
package metrics

import (
	"math"
	"sort"
)

// RelevantThreshold is the rating above which a video counts as relevant:
// the paper defines N as "the number of retrieved videos with rating score
// bigger than 4".
const RelevantThreshold = 4.0

// AR is Equation 10a: the mean rating of the returned videos. An empty list
// scores 0.
func AR(ratings []float64) float64 {
	if len(ratings) == 0 {
		return 0
	}
	var s float64
	for _, r := range ratings {
		s += r
	}
	return s / float64(len(ratings))
}

// AC is Equation 10b: the fraction of returned videos whose rating exceeds
// RelevantThreshold.
func AC(ratings []float64) float64 {
	if len(ratings) == 0 {
		return 0
	}
	n := 0
	for _, r := range ratings {
		if r > RelevantThreshold {
			n++
		}
	}
	return float64(n) / float64(len(ratings))
}

// AP is the non-interpolated average precision of Equation 11 over a ranked
// relevance list: Σ_γ P(γ)·rel(γ), normalized by the number of relevant
// items retrieved (the standard TRECVID normalization [25]; without it the
// quantity would grow with list length). A list with no relevant items
// scores 0.
func AP(relevant []bool) float64 {
	var sum float64
	hits := 0
	for i, rel := range relevant {
		if rel {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / float64(hits)
}

// APFromRatings converts ratings to binary relevance (rating >
// RelevantThreshold) and computes AP.
func APFromRatings(ratings []float64) float64 {
	rel := make([]bool, len(ratings))
	for i, r := range ratings {
		rel[i] = r > RelevantThreshold
	}
	return AP(rel)
}

// MAP is Equation 12: the mean of per-query average precisions.
func MAP(aps []float64) float64 {
	if len(aps) == 0 {
		return 0
	}
	var s float64
	for _, ap := range aps {
		s += ap
	}
	return s / float64(len(aps))
}

// Silhouette computes the mean Silhouette Coefficient of a clustering under
// an arbitrary item distance [10]. Items in singleton clusters contribute 0,
// following the usual convention. Returns 0 for fewer than 2 items.
func Silhouette(items []string, assign map[string]int, dist func(a, b string) float64) float64 {
	if len(items) < 2 {
		return 0
	}
	// Group items by cluster.
	clusters := map[int][]string{}
	for _, it := range items {
		c := assign[it]
		clusters[c] = append(clusters[c], it)
	}
	cids := make([]int, 0, len(clusters))
	for c := range clusters {
		cids = append(cids, c)
	}
	sort.Ints(cids)

	var total float64
	for _, it := range items {
		own := assign[it]
		if len(clusters[own]) < 2 {
			continue // silhouette 0 for singletons
		}
		// a: mean distance to own cluster, excluding self.
		var a float64
		for _, other := range clusters[own] {
			if other != it {
				a += dist(it, other)
			}
		}
		a /= float64(len(clusters[own]) - 1)
		// b: min over other clusters of mean distance.
		b := math.Inf(1)
		for _, c := range cids {
			if c == own || len(clusters[c]) == 0 {
				continue
			}
			var d float64
			for _, other := range clusters[c] {
				d += dist(it, other)
			}
			d /= float64(len(clusters[c]))
			if d < b {
				b = d
			}
		}
		if math.IsInf(b, 1) {
			continue // single cluster overall
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(len(items))
}
