package metrics

import "math"

// Panel simulates the paper's subjective user study: 10 evaluators each rate
// a recommended video 1–5 for relevance to the source video. Each simulated
// rater has a stable personal bias and per-item noise derived
// deterministically from (rater, item key), so a given (panel seed, item)
// always rates identically regardless of evaluation order.
type Panel struct {
	seed   uint64
	biases []float64
}

// NewPanel creates a panel of n raters. Biases are spread deterministically
// in roughly ±0.45 rating points around zero.
func NewPanel(n int, seed int64) *Panel {
	if n < 1 {
		n = 1
	}
	p := &Panel{seed: uint64(seed)}
	p.biases = make([]float64, n)
	for i := range p.biases {
		p.biases[i] = (hash01(p.seed, uint64(i), 0x1234) - 0.5) * 0.9
	}
	return p
}

// Raters returns the panel size.
func (p *Panel) Raters() int { return len(p.biases) }

// Rate converts a ground-truth relevance in [0, 1] into the panel's mean
// rating of the item: each rater produces round(1 + 4·relevance + bias +
// noise) clamped to [1, 5]; the panel rating is the mean over raters. key
// identifies the (source video, recommended video) pair being judged.
func (p *Panel) Rate(key string, relevance float64) float64 {
	if relevance < 0 {
		relevance = 0
	}
	if relevance > 1 {
		relevance = 1
	}
	kh := hashString(key)
	var sum float64
	for i, bias := range p.biases {
		noise := (hash01(p.seed, uint64(i), kh) - 0.5) * 1.2
		r := math.Round(1 + 4*relevance + bias + noise)
		if r < 1 {
			r = 1
		}
		if r > 5 {
			r = 5
		}
		sum += r
	}
	return sum / float64(len(p.biases))
}

// hash01 maps the tuple to a uniform-ish value in [0, 1).
func hash01(a, b, c uint64) float64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xc2b2ae3d27d4eb4f ^ c*0x165667b19e3779f9
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
