package metrics

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestARKnownValues(t *testing.T) {
	if got := AR([]float64{5, 4, 3}); math.Abs(got-4) > 1e-12 {
		t.Errorf("AR = %g, want 4", got)
	}
	if got := AR(nil); got != 0 {
		t.Errorf("AR(nil) = %g, want 0", got)
	}
}

func TestACThreshold(t *testing.T) {
	// Only ratings strictly above 4 count.
	if got := AC([]float64{5, 4.5, 4, 3, 1}); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("AC = %g, want 0.4", got)
	}
	if got := AC(nil); got != 0 {
		t.Errorf("AC(nil) = %g, want 0", got)
	}
}

func TestAPKnownValues(t *testing.T) {
	// Relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2 = 5/6.
	got := AP([]bool{true, false, true})
	if math.Abs(got-5.0/6.0) > 1e-12 {
		t.Errorf("AP = %g, want 5/6", got)
	}
	if got := AP([]bool{false, false}); got != 0 {
		t.Errorf("AP with no relevant = %g, want 0", got)
	}
	if got := AP([]bool{true, true, true}); math.Abs(got-1) > 1e-12 {
		t.Errorf("AP all relevant = %g, want 1", got)
	}
}

func TestAPFromRatings(t *testing.T) {
	got := APFromRatings([]float64{5, 2, 4.7})
	want := AP([]bool{true, false, true})
	if got != want {
		t.Errorf("APFromRatings = %g, want %g", got, want)
	}
}

func TestMAP(t *testing.T) {
	if got := MAP([]float64{1, 0.5}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MAP = %g, want 0.75", got)
	}
	if got := MAP(nil); got != 0 {
		t.Errorf("MAP(nil) = %g, want 0", got)
	}
}

func TestPropertyMetricBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		ratings := make([]float64, len(raw))
		rel := make([]bool, len(raw))
		for i, r := range raw {
			ratings[i] = 1 + float64(r%5)
			rel[i] = r%2 == 0
		}
		ar, ac, ap := AR(ratings), AC(ratings), AP(rel)
		if len(ratings) > 0 && (ar < 1 || ar > 5) {
			return false
		}
		return ac >= 0 && ac <= 1 && ap >= 0 && ap <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Ranking relevant items earlier can never decrease AP.
func TestAPMonotoneInRank(t *testing.T) {
	worse := AP([]bool{false, false, true, true})
	better := AP([]bool{true, true, false, false})
	if better <= worse {
		t.Errorf("AP better=%g should exceed worse=%g", better, worse)
	}
}

func TestSilhouettePerfectClusters(t *testing.T) {
	// Two tight groups far apart on a line.
	pos := map[string]float64{"a": 0, "b": 0.1, "c": 10, "d": 10.1}
	assign := map[string]int{"a": 0, "b": 0, "c": 1, "d": 1}
	dist := func(x, y string) float64 { return math.Abs(pos[x] - pos[y]) }
	got := Silhouette([]string{"a", "b", "c", "d"}, assign, dist)
	if got < 0.95 {
		t.Errorf("Silhouette = %g, want close to 1", got)
	}
}

func TestSilhouetteBadClustersNegative(t *testing.T) {
	// Clusters deliberately mixed across the two groups.
	pos := map[string]float64{"a": 0, "b": 0.1, "c": 10, "d": 10.1}
	assign := map[string]int{"a": 0, "b": 1, "c": 0, "d": 1}
	dist := func(x, y string) float64 { return math.Abs(pos[x] - pos[y]) }
	got := Silhouette([]string{"a", "b", "c", "d"}, assign, dist)
	if got >= 0 {
		t.Errorf("Silhouette = %g, want negative for mixed clusters", got)
	}
}

func TestSilhouetteEdgeCases(t *testing.T) {
	dist := func(x, y string) float64 { return 1 }
	if got := Silhouette([]string{"a"}, map[string]int{"a": 0}, dist); got != 0 {
		t.Errorf("single item = %g, want 0", got)
	}
	// All in one cluster: no b(i) exists → 0.
	got := Silhouette([]string{"a", "b"}, map[string]int{"a": 0, "b": 0}, dist)
	if got != 0 {
		t.Errorf("single cluster = %g, want 0", got)
	}
}

func TestPanelDeterministic(t *testing.T) {
	p1 := NewPanel(10, 42)
	p2 := NewPanel(10, 42)
	if p1.Rate("q1:v1", 0.8) != p2.Rate("q1:v1", 0.8) {
		t.Error("same seed, same key: ratings differ")
	}
	if p1.Raters() != 10 {
		t.Errorf("Raters = %d, want 10", p1.Raters())
	}
}

func TestPanelTracksRelevance(t *testing.T) {
	p := NewPanel(10, 7)
	// Averaged over many items, high relevance must earn clearly higher ratings.
	var loSum, hiSum float64
	const n = 50
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("item-%d", i)
		loSum += p.Rate(key, 0.1)
		hiSum += p.Rate(key, 0.9)
	}
	lo, hi := loSum/n, hiSum/n
	if hi-lo < 2 {
		t.Errorf("panel barely separates relevance: lo=%g hi=%g", lo, hi)
	}
}

func TestPanelBounds(t *testing.T) {
	p := NewPanel(10, 1)
	for _, rel := range []float64{-0.5, 0, 0.3, 1, 1.7} {
		r := p.Rate("k", rel)
		if r < 1 || r > 5 {
			t.Errorf("Rate(%g) = %g out of [1,5]", rel, r)
		}
	}
}

func TestPanelClampSize(t *testing.T) {
	p := NewPanel(0, 1)
	if p.Raters() != 1 {
		t.Errorf("Raters = %d, want clamped to 1", p.Raters())
	}
}

func TestPropertyPanelMonotone(t *testing.T) {
	p := NewPanel(10, 3)
	f := func(seed int64) bool {
		key := fmt.Sprintf("k%d", seed)
		// Averaged over the panel, a big relevance gap must not invert.
		return p.Rate(key, 0.95) >= p.Rate(key, 0.05)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPanelRate(b *testing.B) {
	p := NewPanel(10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rate("bench-key", 0.6)
	}
}

func TestPanelRatingsSpanScale(t *testing.T) {
	// Across many items, extreme relevances must reach near the scale ends.
	p := NewPanel(10, 5)
	var lo, hi float64 = 5, 1
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("span-%d", i)
		if r := p.Rate(key, 0); r < lo {
			lo = r
		}
		if r := p.Rate(key, 1); r > hi {
			hi = r
		}
	}
	if lo > 1.6 {
		t.Errorf("lowest rating %g never approaches 1", lo)
	}
	if hi < 4.4 {
		t.Errorf("highest rating %g never approaches 5", hi)
	}
}
