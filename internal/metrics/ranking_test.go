package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrecisionAtK(t *testing.T) {
	rel := []bool{true, false, true, false}
	if got := PrecisionAtK(rel, 2); got != 0.5 {
		t.Errorf("P@2 = %g, want 0.5", got)
	}
	if got := PrecisionAtK(rel, 4); got != 0.5 {
		t.Errorf("P@4 = %g, want 0.5", got)
	}
	// k beyond the list penalizes the missing tail.
	if got := PrecisionAtK([]bool{true}, 2); got != 0.5 {
		t.Errorf("P@2 short list = %g, want 0.5", got)
	}
	if got := PrecisionAtK(rel, 0); got != 0 {
		t.Errorf("P@0 = %g, want 0", got)
	}
}

func TestRecallAtK(t *testing.T) {
	rel := []bool{true, false, true, false}
	if got := RecallAtK(rel, 4, 4); got != 0.5 {
		t.Errorf("R@4 = %g, want 0.5", got)
	}
	if got := RecallAtK(rel, 1, 2); got != 0.5 {
		t.Errorf("R@1 = %g, want 0.5", got)
	}
	if got := RecallAtK(rel, 3, 0); got != 0 {
		t.Errorf("R with no relevant = %g, want 0", got)
	}
}

func TestNDCGKnownValues(t *testing.T) {
	// Perfectly ordered gains → 1.
	if got := NDCG([]float64{5, 4, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("ideal NDCG = %g, want 1", got)
	}
	// Worst ordering of distinct gains < 1.
	if got := NDCG([]float64{1, 3, 5}); got >= 1 {
		t.Errorf("reversed NDCG = %g, want < 1", got)
	}
	if got := NDCG(nil); got != 0 {
		t.Errorf("empty NDCG = %g", got)
	}
	if got := NDCG([]float64{0, 0}); got != 0 {
		t.Errorf("zero-gain NDCG = %g", got)
	}
}

func TestMRR(t *testing.T) {
	got := MeanReciprocalRank([][]bool{
		{true},                // 1
		{false, true},         // 1/2
		{false, false, false}, // 0
	})
	want := (1 + 0.5 + 0) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MRR = %g, want %g", got, want)
	}
	if got := MeanReciprocalRank(nil); got != 0 {
		t.Errorf("empty MRR = %g", got)
	}
}

func TestPropertyRankingBounds(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		rel := make([]bool, len(raw))
		gains := make([]float64, len(raw))
		total := 0
		for i, r := range raw {
			rel[i] = r%2 == 0
			if rel[i] {
				total++
			}
			gains[i] = float64(r % 6)
		}
		k := int(kRaw%10) + 1
		p := PrecisionAtK(rel, k)
		rc := RecallAtK(rel, k, total)
		nd := NDCG(gains)
		return p >= 0 && p <= 1 && rc >= 0 && rc <= 1 && nd >= 0 && nd <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// NDCG rewards moving a high gain earlier.
func TestNDCGMonotone(t *testing.T) {
	worse := NDCG([]float64{1, 1, 5})
	better := NDCG([]float64{5, 1, 1})
	if better <= worse {
		t.Errorf("NDCG better=%g should exceed worse=%g", better, worse)
	}
}
