// Package replica implements the follower side of journal-shipping
// replication: a puller loop that bootstraps from a primary's snapshot,
// tails its journal over HTTP, and applies shipped comment batches to a
// local read-only engine.
//
// The loop is self-healing by construction. Every failure mode collapses
// into one of two recoveries:
//
//   - transient (connection refused, dropped response, torn mid-stream
//     body, 5xx): retry the same request after an exponential backoff with
//     jitter — delivery is at-least-once and application is idempotent, so
//     redelivery is always safe;
//   - unrecoverable locally (primary compacted its journal past our
//     cursor → 410 Gone, or a sequence gap slipped through): throw the
//     local state away and re-bootstrap from a fresh snapshot.
//
// When Config.JournalPath is set, every applied batch is journaled locally
// under the primary's sequence numbers before application, so a replica
// restart resumes from its own snapshot + journal without re-downloading
// history, and the replica can itself serve as a bootstrap source.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"videorec"
	"videorec/internal/faults"
	"videorec/internal/server"
)

// ErrNotSynced is returned by Ready before the replica has completed its
// first successful bootstrap or tail poll.
var ErrNotSynced = errors.New("replica: not yet synced with primary")

// Config tunes one replica's pull loop. Only Primary is required.
type Config struct {
	// Primary is the base URL of the primary's HTTP server,
	// e.g. "http://primary:8080".
	Primary string
	// SnapshotPath, when set, persists a local snapshot after every
	// bootstrap and lets Open resume from it on restart.
	SnapshotPath string
	// JournalPath, when set, journals every applied batch locally under the
	// primary's sequence numbers (crash-safe restart without re-download).
	JournalPath string
	// Shard selects which of the primary's replication streams to follow
	// when the primary is sharded. Each shard is an independent stream
	// (its own snapshot, journal and cursor), so a replica of an N-shard
	// primary runs N pullers, one per shard, over N local engines.
	// Zero — the only valid value against a single-engine primary — follows
	// the first (or only) stream.
	Shard int
	// Client is the HTTP client for all primary requests. Defaults to a
	// client whose timeout accommodates the long-poll window.
	Client *http.Client
	// PollWait is the long-poll window requested from the primary's tail
	// endpoint. Default 2s.
	PollWait time.Duration
	// MaxBatch bounds the entries pulled per tail poll. Default 256.
	MaxBatch int
	// BackoffMin/BackoffMax bound the exponential retry backoff.
	// Defaults 50ms / 3s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Logf receives progress and recovery logs. Nil disables logging.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() {
	if c.PollWait <= 0 {
		c.PollWait = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = 3 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.PollWait + 30*time.Second}
	}
}

// Replica owns a local engine kept in sync with a primary. Create with
// Open, drive with Run, serve reads from Engine().
type Replica struct {
	cfg Config
	eng *videorec.Engine

	needBoot bool // Run-goroutine only: next step must re-bootstrap

	synced atomic.Bool   // at least one successful bootstrap or poll
	head   atomic.Uint64 // primary's journal head from the last contact

	// Counters for /stats-style introspection and tests.
	bootstraps atomic.Uint64
	batches    atomic.Uint64
	retries    atomic.Uint64
}

// Open builds a replica, resuming from the local snapshot and journal when
// they exist: the snapshot restores the engine at its stamped cursor, the
// journal replays everything past it, and tailing continues from there. With
// no local state the engine starts empty and the first Run step bootstraps
// from the primary.
func Open(cfg Config) (*Replica, error) {
	cfg.withDefaults()
	if cfg.Primary == "" {
		return nil, errors.New("replica: Config.Primary is required")
	}
	eng := videorec.New(videorec.Options{})
	if cfg.SnapshotPath != "" {
		if _, err := os.Stat(cfg.SnapshotPath); err == nil {
			restored, err := videorec.LoadFile(cfg.SnapshotPath)
			if err != nil {
				return nil, fmt.Errorf("replica: restore local snapshot: %w", err)
			}
			eng = restored
		}
	}
	if cfg.JournalPath != "" {
		if n, err := eng.ReplayJournal(cfg.JournalPath); err != nil {
			return nil, fmt.Errorf("replica: replay local journal: %w", err)
		} else if n > 0 && cfg.Logf != nil {
			cfg.Logf("replica: replayed %d local journal batches", n)
		}
		if err := eng.AttachJournal(cfg.JournalPath); err != nil {
			return nil, fmt.Errorf("replica: attach local journal: %w", err)
		}
	}
	r := &Replica{cfg: cfg, eng: eng, needBoot: !eng.Built()}
	return r, nil
}

// Engine returns the replica's local engine for read-only serving.
func (r *Replica) Engine() *videorec.Engine { return r.eng }

// Run pulls from the primary until ctx is cancelled. Transient errors back
// off exponentially with jitter and never escape; the only return value is
// ctx.Err().
func (r *Replica) Run(ctx context.Context) error {
	backoff := r.cfg.BackoffMin
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := r.step(ctx)
		if err == nil {
			backoff = r.cfg.BackoffMin
			continue
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.retries.Add(1)
		r.logf("replica: %v (retrying in %v)", err, backoff)
		// Full jitter: sleep a uniformly random slice of the window so a
		// fleet of replicas reconnecting after a primary restart does not
		// stampede it in lockstep.
		sleep := time.Duration(rand.Int63n(int64(backoff))) + backoff/2
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > r.cfg.BackoffMax {
			backoff = r.cfg.BackoffMax
		}
	}
}

// step performs one unit of progress: a bootstrap when one is needed,
// otherwise one tail poll.
func (r *Replica) step(ctx context.Context) error {
	if r.needBoot {
		if err := r.bootstrap(ctx); err != nil {
			return err
		}
		r.needBoot = false
		r.synced.Store(true)
		return nil
	}
	if err := r.tailOnce(ctx); err != nil {
		return err
	}
	r.synced.Store(true)
	return nil
}

// bootstrap downloads a full snapshot and reloads the engine in place. The
// body is buffered before any state changes, so a download torn mid-stream
// leaves the engine untouched.
func (r *Replica) bootstrap(ctx context.Context) error {
	if err := faults.Inject(faults.ReplicaFetch); err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	resp, err := r.get(ctx, fmt.Sprintf("%s/replication/snapshot?shard=%d", r.cfg.Primary, r.cfg.Shard))
	if err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch snapshot: primary answered %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	if err := r.eng.Reload(bytes.NewReader(body)); err != nil {
		return fmt.Errorf("load snapshot: %w", err)
	}
	r.head.Store(r.eng.AppliedSeq())
	r.bootstraps.Add(1)
	r.logf("replica: bootstrapped from %s at seq %d (view v%s)",
		r.cfg.Primary, r.eng.AppliedSeq(), resp.Header.Get(server.HeaderViewVersion))
	if r.cfg.SnapshotPath != "" {
		if err := r.eng.SaveFile(r.cfg.SnapshotPath); err != nil {
			// Local persistence is an optimization; replication goes on.
			r.logf("replica: persist local snapshot: %v", err)
		}
	}
	return nil
}

// tailOnce long-polls the primary's journal tail once and applies whatever
// it returns. A 410 (our cursor predates the primary's compaction) and a
// sequence gap both flip needBoot instead of erroring: they are expected
// protocol outcomes with a defined recovery, not faults to back off from.
func (r *Replica) tailOnce(ctx context.Context) error {
	if err := faults.Inject(faults.ReplicaFetch); err != nil {
		return fmt.Errorf("tail: %w", err)
	}
	after := r.eng.AppliedSeq()
	url := fmt.Sprintf("%s/replication/tail?after=%d&max=%d&wait=%s&shard=%d",
		r.cfg.Primary, after, r.cfg.MaxBatch, r.cfg.PollWait, r.cfg.Shard)
	resp, err := r.get(ctx, url)
	if err != nil {
		return fmt.Errorf("tail: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		r.logf("replica: cursor %d compacted away on primary — re-bootstrapping", after)
		r.needBoot = true
		return nil
	default:
		return fmt.Errorf("tail: primary answered %s", resp.Status)
	}
	var tr server.TailResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		// Torn mid-stream: nothing was applied, the poll just retries.
		return fmt.Errorf("tail: decode: %w", err)
	}
	for _, ent := range tr.Entries {
		// Entries from a sharded primary carry the globally summed edges
		// alongside the shard-local comments; ApplyReplicatedEntry applies
		// both so a single-shard replica evolves in lockstep with its shard
		// without seeing the rest of the corpus.
		applied, err := r.eng.ApplyReplicatedEntry(ent.Seq, ent.Comments, ent.Edges)
		if errors.Is(err, videorec.ErrReplicationGap) {
			r.logf("replica: %v — re-bootstrapping", err)
			r.needBoot = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("apply seq %d: %w", ent.Seq, err)
		}
		if applied {
			r.batches.Add(1)
		}
	}
	r.head.Store(tr.Head)
	return nil
}

func (r *Replica) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return r.cfg.Client.Do(req)
}

// Lag is the replica's distance behind the primary's last observed journal
// head, in batches. Zero when caught up (or when the primary has not been
// reached yet — pair with Ready, which gates on first contact).
func (r *Replica) Lag() uint64 {
	head, applied := r.head.Load(), r.eng.AppliedSeq()
	if head <= applied {
		return 0
	}
	return head - applied
}

// Ready reports whether the replica can serve: it has synced with the
// primary at least once and its lag is within maxLag batches. Shaped for
// server.ReadyCheck.
func (r *Replica) Ready(maxLag uint64) error {
	if !r.synced.Load() {
		return ErrNotSynced
	}
	if lag := r.Lag(); lag > maxLag {
		return fmt.Errorf("replica: lag %d batches exceeds threshold %d", lag, maxLag)
	}
	return nil
}

// Stats reports the loop's lifetime counters: completed bootstraps, applied
// batches, and backoff retries.
func (r *Replica) Stats() (bootstraps, batches, retries uint64) {
	return r.bootstraps.Load(), r.batches.Load(), r.retries.Load()
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}
