package replica

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"videorec"
	"videorec/internal/faults"
	"videorec/internal/server"
	"videorec/internal/video"
)

const clips = 6

// newPrimary builds a journaled primary engine behind a real HTTP server.
func newPrimary(t testing.TB, dir string) (*videorec.Engine, *httptest.Server) {
	t.Helper()
	eng := videorec.New(videorec.Options{SubCommunities: 6})
	fans := []string{"ann", "ben", "cal", "dee"}
	for i := 0; i < clips; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		v := video.Synthesize(fmt.Sprintf("clip-%d", i), i%2, video.DefaultSynthOptions(), rng)
		clip := videorec.Clip{ID: v.ID, FPS: v.FPS, Owner: fans[i%4], Commenters: fans}
		for _, f := range v.Frames {
			clip.Frames = append(clip.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
		}
		if err := eng.Add(clip); err != nil {
			t.Fatal(err)
		}
	}
	eng.Build()
	if err := eng.AttachJournal(filepath.Join(dir, "primary.wal")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(eng, "").Handler())
	t.Cleanup(ts.Close)
	return eng, ts
}

func fastConfig(primary, dir string) Config {
	return Config{
		Primary:      primary,
		SnapshotPath: filepath.Join(dir, "replica.snap"),
		JournalPath:  filepath.Join(dir, "replica.wal"),
		PollWait:     50 * time.Millisecond,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   40 * time.Millisecond,
	}
}

// waitCaughtUp polls until the replica's cursor reaches want.
func waitCaughtUp(t testing.TB, eng *videorec.Engine, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for eng.AppliedSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, want %d", eng.AppliedSeq(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertIdenticalRankings demands bitwise-equal recommendations — IDs and
// all three score components — for every clip on both engines.
func assertIdenticalRankings(t testing.TB, primary, replica *videorec.Engine) {
	t.Helper()
	for i := 0; i < clips; i++ {
		id := fmt.Sprintf("clip-%d", i)
		want, err := primary.Recommend(id, clips)
		if err != nil {
			t.Fatal(err)
		}
		got, err := replica.Recommend(id, clips)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("%s: primary ranks %d, replica %d", id, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("%s rank %d: primary %+v, replica %+v", id, j, want[j], got[j])
			}
		}
	}
}

func TestReplicaBootstrapAndCatchUp(t *testing.T) {
	dir := t.TempDir()
	primary, ts := newPrimary(t, dir)
	for i := 0; i < 3; i++ {
		if _, err := primary.ApplyUpdates(map[string][]string{"clip-0": {fmt.Sprintf("pre-%d", i), "ann"}}); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := Open(fastConfig(ts.URL, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Ready(0); err == nil {
		t.Fatal("replica ready before first sync")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); rep.Run(ctx) }()

	waitCaughtUp(t, rep.Engine(), 3)
	// Writes that land while the replica is tailing.
	for i := 0; i < 4; i++ {
		if _, err := primary.ApplyUpdates(map[string][]string{"clip-1": {fmt.Sprintf("live-%d", i), "ben"}}); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, rep.Engine(), 7)
	if err := rep.Ready(0); err != nil {
		t.Fatalf("caught-up replica not ready: %v", err)
	}
	assertIdenticalRankings(t, primary, rep.Engine())
	cancel()
	<-done
}

func TestReplicaRebootstrapsAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	primary, ts := newPrimary(t, dir)
	rep, err := Open(fastConfig(ts.URL, dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); rep.Run(ctx) }()
	waitCaughtUp(t, rep.Engine(), 0)
	cancel()
	<-done // replica offline

	// While it is gone: more writes, then a snapshot+compaction that trims
	// the journal past the replica's cursor.
	for i := 0; i < 5; i++ {
		if _, err := primary.ApplyUpdates(map[string][]string{"clip-2": {fmt.Sprintf("gone-%d", i), "cal"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.SaveFileAndCompact(filepath.Join(dir, "primary.snap")); err != nil {
		t.Fatal(err)
	}

	// Restart from persisted local state: the stale cursor gets 410 from
	// the tail and the replica must heal by re-bootstrapping.
	rep2, err := Open(fastConfig(ts.URL, dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done2 := make(chan struct{})
	go func() { defer close(done2); rep2.Run(ctx2) }()
	waitCaughtUp(t, rep2.Engine(), primary.AppliedSeq())
	if boots, _, _ := rep2.Stats(); boots == 0 {
		t.Fatal("replica caught up without re-bootstrapping — compaction path untested")
	}
	assertIdenticalRankings(t, primary, rep2.Engine())
	cancel2()
	<-done2
}

// flaky returns a fault handler that fails with probability p and adds up
// to maxDelay of latency — a lossy, slow replication link.
func flaky(p float64, maxDelay time.Duration, seed int64) faults.Handler {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func() error {
		mu.Lock()
		fail := rng.Float64() < p
		delay := time.Duration(rng.Int63n(int64(maxDelay)))
		mu.Unlock()
		time.Sleep(delay)
		if fail {
			return faults.ErrInjected
		}
		return nil
	}
}

// TestReplicaChaos is the partition/restart drill: a lossy, laggy link
// (dropped requests, refused polls, responses torn mid-stream), compactions
// racing the replica's cursor, and a forced replica restart from persisted
// state in the middle — after all of which the replica must converge to
// bitwise-identical recommendations.
func TestReplicaChaos(t *testing.T) {
	dir := t.TempDir()
	primary, ts := newPrimary(t, dir)

	faults.Arm(faults.ReplicaFetch, flaky(0.25, 2*time.Millisecond, 101))
	faults.Arm(faults.ReplicationTail, flaky(0.15, time.Millisecond, 202))
	faults.Arm(faults.ReplicationTailMid, flaky(0.20, time.Millisecond, 303))
	defer faults.Reset()

	cfg := fastConfig(ts.URL, dir)
	cfg.PollWait = 20 * time.Millisecond
	rep, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); rep.Run(ctx) }()

	// The write storm: 40 batches, compacting the journal twice mid-storm
	// so a lagging cursor can fall off the retained log.
	for i := 0; i < 40; i++ {
		if _, err := primary.ApplyUpdates(map[string][]string{
			fmt.Sprintf("clip-%d", i%clips): {fmt.Sprintf("chaos-%d", i), "dee"},
		}); err != nil {
			t.Fatal(err)
		}
		if i == 15 || i == 30 {
			if err := primary.SaveFileAndCompact(filepath.Join(dir, "primary.snap")); err != nil {
				t.Fatal(err)
			}
		}
		if i == 20 {
			// Forced replica crash mid-storm: kill the loop, then restart a
			// fresh Replica from whatever state it persisted.
			cancel()
			<-done
			if rep, err = Open(cfg); err != nil {
				t.Fatal(err)
			}
			ctx, cancel = context.WithCancel(context.Background())
			done = make(chan struct{})
			go func() { defer close(done); rep.Run(ctx) }()
		}
		time.Sleep(2 * time.Millisecond)
	}
	defer func() { cancel(); <-done }()

	// The link stays faulty while the replica converges — self-healing must
	// not depend on the faults going away.
	waitCaughtUp(t, rep.Engine(), primary.AppliedSeq())
	if err := rep.Ready(0); err != nil {
		t.Fatalf("converged replica not ready: %v", err)
	}
	assertIdenticalRankings(t, primary, rep.Engine())
	_, batches, retries := rep.Stats()
	t.Logf("chaos: converged at seq %d after %d applied batches, %d retries",
		rep.Engine().AppliedSeq(), batches, retries)
}
