package replica

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"videorec"
	"videorec/internal/server"
	"videorec/internal/shard"
	"videorec/internal/video"
)

// Sharded replication: each shard of the primary is its own stream, and a
// replica runs one puller per stream over one local engine per shard. The
// replica's router must converge to bitwise-identical recommendations —
// per-shard journals are self-contained (they carry the globally summed
// edges), so no cross-shard coordination is needed on the follower.

func newShardedPrimary(t testing.TB, dir string, n int) (*shard.Router, *httptest.Server) {
	t.Helper()
	router, err := shard.New(n, videorec.Options{SubCommunities: 6})
	if err != nil {
		t.Fatal(err)
	}
	fans := []string{"ann", "ben", "cal", "dee"}
	for i := 0; i < clips; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		v := video.Synthesize(fmt.Sprintf("clip-%d", i), i%2, video.DefaultSynthOptions(), rng)
		clip := videorec.Clip{ID: v.ID, FPS: v.FPS, Owner: fans[i%4], Commenters: fans}
		for _, f := range v.Frames {
			clip.Frames = append(clip.Frames, videorec.Frame{W: f.W, H: f.H, Pix: f.Pix})
		}
		if err := router.Add(clip); err != nil {
			t.Fatal(err)
		}
	}
	router.Build()
	if err := router.AttachJournals(filepath.Join(dir, "primary.wal")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(router, "").Handler())
	t.Cleanup(ts.Close)
	return router, ts
}

func TestShardedReplicaConverges(t *testing.T) {
	const nShards = 2
	dir := t.TempDir()
	primary, ts := newShardedPrimary(t, dir, nShards)

	// Pre-tail writes, so bootstrap carries real update state.
	for i := 0; i < 3; i++ {
		if _, err := primary.ApplyUpdates(map[string][]string{
			"clip-0": {fmt.Sprintf("pre-%d", i), "ann"},
			"clip-3": {fmt.Sprintf("pre-%d", i), "ben"},
		}); err != nil {
			t.Fatal(err)
		}
	}

	engines := make([]*videorec.Engine, nShards)
	reps := make([]*Replica, nShards)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{}, nShards)
	for i := range reps {
		cfg := fastConfig(ts.URL, dir)
		cfg.Shard = i
		cfg.SnapshotPath = filepath.Join(dir, fmt.Sprintf("replica-%d.snap", i))
		cfg.JournalPath = filepath.Join(dir, fmt.Sprintf("replica-%d.wal", i))
		rep, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reps[i], engines[i] = rep, rep.Engine()
		go func(rep *Replica) { rep.Run(ctx); done <- struct{}{} }(rep)
	}

	// Writes landing while the pullers tail.
	for i := 0; i < 4; i++ {
		if _, err := primary.ApplyUpdates(map[string][]string{
			fmt.Sprintf("clip-%d", i%clips): {fmt.Sprintf("live-%d", i), "cal"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range reps {
		pe, ok := primary.ShardEngine(i)
		if !ok {
			t.Fatalf("primary has no shard %d", i)
		}
		waitCaughtUp(t, engines[i], pe.AppliedSeq())
	}

	follower, err := shard.NewFromEngines(engines)
	if err != nil {
		t.Fatal(err)
	}
	qctx := context.Background()
	for i := 0; i < clips; i++ {
		id := fmt.Sprintf("clip-%d", i)
		want, _, err1 := primary.RecommendCtx(qctx, id, clips)
		got, _, err2 := follower.RecommendCtx(qctx, id, clips)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: primary err %v, follower err %v", id, err1, err2)
		}
		if len(want) != len(got) {
			t.Fatalf("%s: primary ranks %d, follower %d", id, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("%s rank %d: primary %+v, follower %+v", id, j, want[j], got[j])
			}
		}
	}
	cancel()
	for range reps {
		<-done
	}
}
