package emd

import (
	"math"
	"sort"
)

// Distance1D computes the exact EMD between two one-dimensional weighted
// point sets under the |x−y| ground distance. This is the fast path used for
// video cuboid signatures, whose cuboid values are single scalars (§4.1 of
// the paper: "we use bigrams and each v is a single value").
//
// For equal total masses the 1-D EMD has the closed form
//
//	EMD = ∫ |F₁(x) − F₂(x)| dx
//
// where F₁, F₂ are the cumulative mass functions. Weights must be
// non-negative and the two sets must carry equal non-zero total mass
// (normalize first with Normalize when reproducing Definition 1).
//
// Distance1D validates and sorts on every call; hot loops that hold
// pre-sorted, pre-validated points (signature.Compiled) should call
// Distance1DSorted directly, which allocates nothing.
func Distance1D(v1, w1, v2, w2 []float64) (float64, error) {
	if len(v1) == 0 || len(v2) == 0 {
		return 0, ErrEmpty
	}
	if len(v1) != len(w1) || len(v2) != len(w2) {
		return 0, ErrShape
	}
	s1, ok := ValidateWeights(w1)
	if !ok {
		return 0, weightsErr(w1)
	}
	s2, ok := ValidateWeights(w2)
	if !ok {
		return 0, weightsErr(w2)
	}
	if MassMismatch(s1, s2) {
		return 0, ErrMassMismatch
	}
	sv1 := append([]float64(nil), v1...)
	sw1 := append([]float64(nil), w1...)
	sv2 := append([]float64(nil), v2...)
	sw2 := append([]float64(nil), w2...)
	SortByValue(sv1, sw1)
	SortByValue(sv2, sw2)
	return Distance1DSorted(sv1, sw1, sv2, sw2, s1/s2), nil
}

// Distance1DSorted is the zero-allocation steady-state kernel behind
// Distance1D: an O(m+n) two-cursor merge over two point sets already sorted
// ascending by value. scale is multiplied into every set-2 weight so callers
// can absorb a tolerated relative mass mismatch (pass s1/s2; 1 when both
// sides are normalized).
//
// Preconditions (unchecked — the caller owns validation): both sets
// non-empty, v ascending, weights non-negative with equal scaled total mass
// within MassMismatch tolerance. Use signature.Compile / ValidateWeights to
// establish them once per stored object instead of per call.
func Distance1DSorted(v1, w1, v2, w2 []float64, scale float64) float64 {
	i, j := 0, 0
	var dist, cum, prev float64
	first := true
	for i < len(v1) || j < len(v2) {
		var x, w float64
		// Merge order is deterministic: ties take set 1 first. Equal-x points
		// contribute zero-width strips, so the tie rule cannot change the
		// integral — it only fixes the floating-point summation order.
		if j >= len(v2) || (i < len(v1) && v1[i] <= v2[j]) {
			x, w = v1[i], w1[i]
			i++
		} else {
			x, w = v2[j], -w2[j]*scale
			j++
		}
		if first {
			first = false
		} else {
			dist += math.Abs(cum) * (x - prev)
		}
		cum += w
		prev = x
	}
	return dist
}

// ValidateWeights checks a weight vector the way the EMD solvers do and
// returns its total mass: ok is false when any weight is negative or the
// total mass is below the solver tolerance. Compiled signature
// representations call it once at build time so the per-pair kernel can skip
// re-validation.
func ValidateWeights(w []float64) (mass float64, ok bool) {
	for _, x := range w {
		if x < 0 {
			return 0, false
		}
		mass += x
	}
	if mass <= massEps {
		return 0, false
	}
	return mass, true
}

// weightsErr maps an invalid weight vector to the error Distance1D reports.
func weightsErr(w []float64) error {
	for _, x := range w {
		if x < 0 {
			return ErrNegative
		}
	}
	return ErrZeroMass
}

// MassMismatch reports whether two total masses differ beyond the relative
// tolerance the EMD solvers accept (mismatches within it are absorbed by
// scaling inside the kernel).
func MassMismatch(s1, s2 float64) bool {
	return math.Abs(s1-s2) > 1e-6*math.Max(s1, s2)
}

// byValue sorts parallel value/weight slices by value, keeping equal values
// in their original order so sorting is a pure function of the input.
type byValue struct{ v, w []float64 }

func (s byValue) Len() int           { return len(s.v) }
func (s byValue) Less(i, j int) bool { return s.v[i] < s.v[j] }
func (s byValue) Swap(i, j int) {
	s.v[i], s.v[j] = s.v[j], s.v[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// SortByValue stably sorts a weighted point set in place by ascending value —
// the precondition of Distance1DSorted. Stability makes compiled
// representations deterministic for tie-heavy inputs.
func SortByValue(v, w []float64) {
	sort.Stable(byValue{v, w})
}

// LowerBound1D returns the centroid lower bound on the 1-D EMD between two
// normalized weighted point sets: EMD ≥ |Σ v₁·w₁ − Σ v₂·w₂| for any
// transportation plan (mass conservation moves the mean by at most the
// work spent). It is the cheap filter [35] applies before exact EMD: since
// SimC = 1/(1+EMD) ≤ 1/(1+LB), a pair whose bound already falls below the
// match threshold can be skipped without changing any result. Weights must
// be normalized for the bound to be valid.
func LowerBound1D(v1, w1, v2, w2 []float64) float64 {
	var m1, m2 float64
	for i, v := range v1 {
		m1 += v * w1[i]
	}
	for i, v := range v2 {
		m2 += v * w2[i]
	}
	return math.Abs(m1 - m2)
}

// Similarity1D is a convenience wrapper returning SimC (Equation 3) for two
// scalar-valued weighted point sets.
func Similarity1D(v1, w1, v2, w2 []float64) (float64, error) {
	d, err := Distance1D(v1, w1, v2, w2)
	if err != nil {
		return 0, err
	}
	return Similarity(d), nil
}
