package emd

import (
	"math"
	"sort"
)

// Distance1D computes the exact EMD between two one-dimensional weighted
// point sets under the |x−y| ground distance. This is the fast path used for
// video cuboid signatures, whose cuboid values are single scalars (§4.1 of
// the paper: "we use bigrams and each v is a single value").
//
// For equal total masses the 1-D EMD has the closed form
//
//	EMD = ∫ |F₁(x) − F₂(x)| dx
//
// where F₁, F₂ are the cumulative mass functions, so the solver runs in
// O((m+n) log (m+n)) instead of simplex time. Weights must be non-negative
// and the two sets must carry equal non-zero total mass (normalize first
// with Normalize when reproducing Definition 1).
func Distance1D(v1, w1, v2, w2 []float64) (float64, error) {
	if len(v1) == 0 || len(v2) == 0 {
		return 0, ErrEmpty
	}
	if len(v1) != len(w1) || len(v2) != len(w2) {
		return 0, ErrShape
	}
	var s1, s2 float64
	for _, w := range w1 {
		if w < 0 {
			return 0, ErrNegative
		}
		s1 += w
	}
	for _, w := range w2 {
		if w < 0 {
			return 0, ErrNegative
		}
		s2 += w
	}
	if s1 <= massEps || s2 <= massEps {
		return 0, ErrZeroMass
	}
	if math.Abs(s1-s2) > 1e-6*math.Max(s1, s2) {
		return 0, ErrMassMismatch
	}

	type pt struct {
		x float64
		w float64 // signed: +w for set 1, −w for set 2
	}
	pts := make([]pt, 0, len(v1)+len(v2))
	for i, x := range v1 {
		pts = append(pts, pt{x, w1[i]})
	}
	// Scale set 2 so both sides carry exactly s1 mass; this absorbs the
	// tolerated relative mass mismatch.
	scale := s1 / s2
	for j, x := range v2 {
		pts = append(pts, pt{x, -w2[j] * scale})
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })

	var dist, cum float64
	for i := 0; i < len(pts)-1; i++ {
		cum += pts[i].w
		dist += math.Abs(cum) * (pts[i+1].x - pts[i].x)
	}
	return dist, nil
}

// LowerBound1D returns the centroid lower bound on the 1-D EMD between two
// normalized weighted point sets: EMD ≥ |Σ v₁·w₁ − Σ v₂·w₂| for any
// transportation plan (mass conservation moves the mean by at most the
// work spent). It is the cheap filter [35] applies before exact EMD: since
// SimC = 1/(1+EMD) ≤ 1/(1+LB), a pair whose bound already falls below the
// match threshold can be skipped without changing any result. Weights must
// be normalized for the bound to be valid.
func LowerBound1D(v1, w1, v2, w2 []float64) float64 {
	var m1, m2 float64
	for i, v := range v1 {
		m1 += v * w1[i]
	}
	for i, v := range v2 {
		m2 += v * w2[i]
	}
	return math.Abs(m1 - m2)
}

// Similarity1D is a convenience wrapper returning SimC (Equation 3) for two
// scalar-valued weighted point sets.
func Similarity1D(v1, w1, v2, w2 []float64) (float64, error) {
	d, err := Distance1D(v1, w1, v2, w2)
	if err != nil {
		return 0, err
	}
	return Similarity(d), nil
}
