// Package emd implements exact Earth Mover's Distance (EMD) solvers used to
// compare video cuboid signatures (Definition 1 of the paper).
//
// Two solvers are provided:
//
//   - Solve: the general transportation simplex, accepting an arbitrary
//     ground-cost matrix. It is the literal implementation of Definition 1
//     (minimize Σ c_ij f_ij subject to CPos, CSource and CTarget).
//   - Distance1D: a closed-form O(n log n) fast path for the one-dimensional
//     case with |x−y| ground distance, which is exactly the shape of video
//     cuboid signatures (each cuboid value v is a single scalar).
//
// Both solvers require the two inputs to carry equal total mass; the paper
// normalizes every signature to total mass 1 (Definition 1), and Normalize
// is provided for that purpose.
package emd

import (
	"errors"
	"fmt"
	"math"
)

// Tolerance bounds below which masses and reduced costs are treated as zero.
const (
	massEps = 1e-9
	costEps = 1e-10
)

// Errors returned by the solvers.
var (
	ErrEmpty        = errors.New("emd: empty histogram")
	ErrNegative     = errors.New("emd: negative weight")
	ErrZeroMass     = errors.New("emd: zero total mass")
	ErrMassMismatch = errors.New("emd: total masses differ")
	ErrShape        = errors.New("emd: cost matrix shape does not match supplies/demands")
	ErrNoConverge   = errors.New("emd: simplex failed to converge")
)

// Normalize scales weights in place so they sum to one. It returns an error
// if the slice is empty, contains a negative weight, or sums to zero.
func Normalize(weights []float64) error {
	if len(weights) == 0 {
		return ErrEmpty
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			return ErrNegative
		}
		sum += w
	}
	if sum <= massEps {
		return ErrZeroMass
	}
	for i := range weights {
		weights[i] /= sum
	}
	return nil
}

// Similarity converts an EMD value into the similarity score of Equation 3:
// SimC = 1 / (1 + EMD).
func Similarity(dist float64) float64 {
	if dist < 0 {
		dist = 0
	}
	return 1 / (1 + dist)
}

// GroundL1Cost builds the |v1_i − v2_j| ground-cost matrix used when cuboid
// values are scalars.
func GroundL1Cost(v1, v2 []float64) [][]float64 {
	cost := make([][]float64, len(v1))
	for i, a := range v1 {
		row := make([]float64, len(v2))
		for j, b := range v2 {
			row[j] = math.Abs(a - b)
		}
		cost[i] = row
	}
	return cost
}

// Flow is an optimal transportation plan: Flow[i][j] is the mass moved from
// supply i to demand j.
type Flow [][]float64

// Solve computes the exact EMD between a supply histogram and a demand
// histogram under the given ground-cost matrix using the transportation
// simplex (northwest-corner start, MODI pivoting). cost[i][j] is the cost of
// moving one unit of mass from supply i to demand j. Supplies and demands
// must be non-negative and carry equal (non-zero) total mass.
//
// The returned Flow satisfies the CPos/CSource/CTarget constraints of
// Definition 1 up to floating-point tolerance.
func Solve(cost [][]float64, supply, demand []float64) (float64, Flow, error) {
	m, n := len(supply), len(demand)
	if m == 0 || n == 0 {
		return 0, nil, ErrEmpty
	}
	if len(cost) != m {
		return 0, nil, ErrShape
	}
	for _, row := range cost {
		if len(row) != n {
			return 0, nil, ErrShape
		}
	}
	var sa, sb float64
	for _, a := range supply {
		if a < 0 {
			return 0, nil, ErrNegative
		}
		sa += a
	}
	for _, b := range demand {
		if b < 0 {
			return 0, nil, ErrNegative
		}
		sb += b
	}
	if sa <= massEps || sb <= massEps {
		return 0, nil, ErrZeroMass
	}
	if math.Abs(sa-sb) > 1e-6*math.Max(sa, sb) {
		return 0, nil, fmt.Errorf("%w: %g vs %g", ErrMassMismatch, sa, sb)
	}

	// Copy and perturb supplies deterministically to break degeneracy; the
	// perturbation is orders of magnitude below massEps so the reported cost
	// is unaffected at the tolerance we guarantee.
	a := make([]float64, m)
	b := make([]float64, n)
	const pert = 1e-13
	var added float64
	for i := range supply {
		a[i] = supply[i] + pert*float64(i+1)
		added += pert * float64(i+1)
	}
	copy(b, demand)
	b[n-1] += added + (sa - sb) // re-balance exactly

	t := newTransport(cost, a, b)
	if err := t.run(); err != nil {
		return 0, nil, err
	}
	flow := make(Flow, m)
	for i := range flow {
		flow[i] = make([]float64, n)
	}
	var total float64
	for _, c := range t.basis {
		f := t.flow[c]
		if f < 0 {
			f = 0
		}
		flow[c.i][c.j] = f
		total += f * cost[c.i][c.j]
	}
	return total, flow, nil
}

type cell struct{ i, j int }

// transport carries the state of one transportation-simplex run.
type transport struct {
	cost  [][]float64
	a, b  []float64
	m, n  int
	basis []cell
	flow  map[cell]float64
	u     []float64
	v     []float64
	uSet  []bool
	vSet  []bool
}

func newTransport(cost [][]float64, a, b []float64) *transport {
	return &transport{
		cost: cost,
		a:    a,
		b:    b,
		m:    len(a),
		n:    len(b),
		flow: make(map[cell]float64),
		u:    make([]float64, len(a)),
		v:    make([]float64, len(b)),
		uSet: make([]bool, len(a)),
		vSet: make([]bool, len(b)),
	}
}

func (t *transport) run() error {
	t.northwest()
	maxIter := 50 * (t.m*t.n + 10)
	for iter := 0; iter < maxIter; iter++ {
		t.potentials()
		ei, ej, found := t.entering()
		if !found {
			return nil
		}
		if err := t.pivot(cell{ei, ej}); err != nil {
			return err
		}
	}
	return ErrNoConverge
}

// northwest builds the initial basic feasible solution. It always produces
// exactly m+n−1 basic cells (including zero-flow cells on ties) so the basis
// graph is a spanning tree.
func (t *transport) northwest() {
	ra := make([]float64, t.m)
	rb := make([]float64, t.n)
	copy(ra, t.a)
	copy(rb, t.b)
	i, j := 0, 0
	for i < t.m && j < t.n {
		f := math.Min(ra[i], rb[j])
		c := cell{i, j}
		t.basis = append(t.basis, c)
		t.flow[c] = f
		ra[i] -= f
		rb[j] -= f
		switch {
		case i == t.m-1 && j == t.n-1:
			i++
			j++
		case j == t.n-1:
			i++
		case i == t.m-1:
			j++
		case ra[i] <= rb[j]:
			i++
		default:
			j++
		}
	}
}

// potentials solves u_i + v_j = c_ij over the basis spanning tree.
func (t *transport) potentials() {
	for i := range t.uSet {
		t.uSet[i] = false
	}
	for j := range t.vSet {
		t.vSet[j] = false
	}
	t.u[0] = 0
	t.uSet[0] = true
	// Basis is a tree with m+n nodes, so at most m+n sweeps settle it.
	for pass := 0; pass < t.m+t.n; pass++ {
		progress := false
		for _, c := range t.basis {
			switch {
			case t.uSet[c.i] && !t.vSet[c.j]:
				t.v[c.j] = t.cost[c.i][c.j] - t.u[c.i]
				t.vSet[c.j] = true
				progress = true
			case !t.uSet[c.i] && t.vSet[c.j]:
				t.u[c.i] = t.cost[c.i][c.j] - t.v[c.j]
				t.uSet[c.i] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
}

// entering returns the non-basic cell with the most negative reduced cost.
func (t *transport) entering() (int, int, bool) {
	inBasis := make(map[cell]bool, len(t.basis))
	for _, c := range t.basis {
		inBasis[c] = true
	}
	best := -costEps
	bi, bj, found := -1, -1, false
	for i := 0; i < t.m; i++ {
		for j := 0; j < t.n; j++ {
			if inBasis[cell{i, j}] {
				continue
			}
			r := t.cost[i][j] - t.u[i] - t.v[j]
			if r < best {
				best = r
				bi, bj = i, j
				found = true
			}
		}
	}
	return bi, bj, found
}

// pivot brings enter into the basis, pushing θ around the unique cycle it
// forms with the basis tree and evicting the minus-position cell whose flow
// hits zero first.
func (t *transport) pivot(enter cell) error {
	cyc, err := t.findCycle(enter)
	if err != nil {
		return err
	}
	// Odd positions in the cycle are minus positions.
	theta := math.Inf(1)
	leaveIdx := -1
	for p := 1; p < len(cyc); p += 2 {
		if f := t.flow[cyc[p]]; f < theta {
			theta = f
			leaveIdx = p
		}
	}
	if leaveIdx < 0 {
		return ErrNoConverge
	}
	for p, c := range cyc {
		if p == 0 {
			continue
		}
		if p%2 == 1 {
			t.flow[c] -= theta
		} else {
			t.flow[c] += theta
		}
	}
	leave := cyc[leaveIdx]
	t.flow[enter] = theta
	delete(t.flow, leave)
	for i, c := range t.basis {
		if c == leave {
			t.basis[i] = enter
			return nil
		}
	}
	return ErrNoConverge
}

// findCycle locates the unique alternating cycle formed by the entering cell
// and the basis tree. The returned slice starts with enter and alternates
// plus/minus positions.
func (t *transport) findCycle(enter cell) ([]cell, error) {
	// Adjacency over basis cells: row node i ↔ column node j.
	rowAdj := make([][]cell, t.m)
	colAdj := make([][]cell, t.n)
	for _, c := range t.basis {
		rowAdj[c.i] = append(rowAdj[c.i], c)
		colAdj[c.j] = append(colAdj[c.j], c)
	}
	// Path in the basis tree from row enter.i to column enter.j. Nodes:
	// rows 0..m−1, columns m..m+n−1. Track the basis cell used to reach each
	// node so the cell path can be reconstructed.
	type node struct {
		id   int
		via  cell
		prev int
	}
	const none = -1
	visited := make([]int, t.m+t.n) // index into trail, or -1
	for i := range visited {
		visited[i] = none
	}
	trail := []node{{id: enter.i, prev: none}}
	visited[enter.i] = 0
	target := t.m + enter.j
	for head := 0; head < len(trail); head++ {
		cur := trail[head]
		if cur.id == target {
			// Reconstruct cells along the tree path, then prepend enter.
			var path []cell
			for at := head; trail[at].prev != none; at = trail[at].prev {
				path = append(path, trail[at].via)
			}
			// path is column→…→row order; reverse to start at enter.i side.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			return append([]cell{enter}, path...), nil
		}
		if cur.id < t.m {
			for _, c := range rowAdj[cur.id] {
				nid := t.m + c.j
				if visited[nid] == none {
					visited[nid] = len(trail)
					trail = append(trail, node{id: nid, via: c, prev: head})
				}
			}
		} else {
			j := cur.id - t.m
			for _, c := range colAdj[j] {
				if visited[c.i] == none {
					visited[c.i] = len(trail)
					trail = append(trail, node{id: c.i, via: c, prev: head})
				}
			}
		}
	}
	return nil, ErrNoConverge
}
