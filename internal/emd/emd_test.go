package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-6

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestNormalize(t *testing.T) {
	w := []float64{1, 3, 4}
	if err := Normalize(w); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if !almostEqual(sum, 1, tol) {
		t.Fatalf("sum = %g, want 1", sum)
	}
	if !almostEqual(w[0], 0.125, tol) {
		t.Fatalf("w[0] = %g, want 0.125", w[0])
	}
}

func TestNormalizeErrors(t *testing.T) {
	if err := Normalize(nil); err != ErrEmpty {
		t.Errorf("empty: got %v, want ErrEmpty", err)
	}
	if err := Normalize([]float64{1, -1}); err != ErrNegative {
		t.Errorf("negative: got %v, want ErrNegative", err)
	}
	if err := Normalize([]float64{0, 0}); err != ErrZeroMass {
		t.Errorf("zero: got %v, want ErrZeroMass", err)
	}
}

func TestSimilarityBounds(t *testing.T) {
	if got := Similarity(0); got != 1 {
		t.Errorf("Similarity(0) = %g, want 1", got)
	}
	if got := Similarity(1); !almostEqual(got, 0.5, tol) {
		t.Errorf("Similarity(1) = %g, want 0.5", got)
	}
	if got := Similarity(-3); got != 1 {
		t.Errorf("Similarity(-3) = %g, want 1 (clamped)", got)
	}
	for d := 0.0; d < 100; d += 7.3 {
		s := Similarity(d)
		if s <= 0 || s > 1 {
			t.Fatalf("Similarity(%g) = %g out of (0,1]", d, s)
		}
	}
}

func TestDistance1DIdentity(t *testing.T) {
	v := []float64{0.1, 0.5, 0.9}
	w := []float64{0.2, 0.3, 0.5}
	d, err := Distance1D(v, w, v, w)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, tol) {
		t.Errorf("self-distance = %g, want 0", d)
	}
}

func TestDistance1DPointMass(t *testing.T) {
	// Moving a unit point mass from 0 to 3 costs exactly 3.
	d, err := Distance1D([]float64{0}, []float64{1}, []float64{3}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 3, tol) {
		t.Errorf("d = %g, want 3", d)
	}
}

func TestDistance1DHandComputed(t *testing.T) {
	// Two half-masses at 0 and 1 vs one full mass at 0.5:
	// each half moves 0.5 → EMD = 0.5.
	d, err := Distance1D([]float64{0, 1}, []float64{0.5, 0.5}, []float64{0.5}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0.5, tol) {
		t.Errorf("d = %g, want 0.5", d)
	}
}

func TestDistance1DAsymmetricWeights(t *testing.T) {
	// supply: 0.75 at 0, 0.25 at 4; demand: all at 1.
	// Cost = 0.75*1 + 0.25*3 = 1.5.
	d, err := Distance1D([]float64{0, 4}, []float64{0.75, 0.25}, []float64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1.5, tol) {
		t.Errorf("d = %g, want 1.5", d)
	}
}

func TestDistance1DErrors(t *testing.T) {
	one := []float64{1}
	if _, err := Distance1D(nil, nil, one, one); err != ErrEmpty {
		t.Errorf("empty: got %v", err)
	}
	if _, err := Distance1D(one, []float64{1, 2}, one, one); err != ErrShape {
		t.Errorf("shape: got %v", err)
	}
	if _, err := Distance1D(one, []float64{-1}, one, one); err != ErrNegative {
		t.Errorf("negative: got %v", err)
	}
	if _, err := Distance1D(one, []float64{0}, one, one); err != ErrZeroMass {
		t.Errorf("zero mass: got %v", err)
	}
	if _, err := Distance1D(one, []float64{1}, one, []float64{2}); err != ErrMassMismatch {
		t.Errorf("mismatch: got %v", err)
	}
}

func TestSolveHandComputed(t *testing.T) {
	// Classic 2x2: supplies (0.6, 0.4), demands (0.5, 0.5).
	cost := [][]float64{{0, 1}, {1, 0}}
	d, flow, err := Solve(cost, []float64{0.6, 0.4}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: move 0.5 from s0→d0, 0.1 from s0→d1, 0.4 from s1→d1 → cost 0.1.
	if !almostEqual(d, 0.1, 1e-5) {
		t.Errorf("cost = %g, want 0.1", d)
	}
	checkFlowFeasible(t, flow, []float64{0.6, 0.4}, []float64{0.5, 0.5})
}

func TestSolveSingleCell(t *testing.T) {
	d, _, err := Solve([][]float64{{2.5}}, []float64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 2.5, tol) {
		t.Errorf("cost = %g, want 2.5", d)
	}
}

func TestSolveDegenerateTies(t *testing.T) {
	// Equal supplies and demands force degenerate pivots.
	cost := [][]float64{{1, 2, 3}, {4, 1, 2}, {3, 4, 1}}
	sup := []float64{1. / 3, 1. / 3, 1. / 3}
	dem := []float64{1. / 3, 1. / 3, 1. / 3}
	d, flow, err := Solve(cost, sup, dem)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1, 1e-5) { // diagonal assignment, cost 1/3*3
		t.Errorf("cost = %g, want 1", d)
	}
	checkFlowFeasible(t, flow, sup, dem)
}

func TestSolveErrors(t *testing.T) {
	if _, _, err := Solve(nil, nil, nil); err != ErrEmpty {
		t.Errorf("empty: got %v", err)
	}
	if _, _, err := Solve([][]float64{{1}}, []float64{1}, []float64{1, 2}); err != ErrShape {
		t.Errorf("shape: got %v", err)
	}
	if _, _, err := Solve([][]float64{{1, 2}, {1}}, []float64{1, 1}, []float64{1, 1}); err != ErrShape {
		t.Errorf("row shape: got %v", err)
	}
	if _, _, err := Solve([][]float64{{1}}, []float64{-1}, []float64{1}); err != ErrNegative {
		t.Errorf("negative: got %v", err)
	}
}

func checkFlowFeasible(t *testing.T, flow Flow, sup, dem []float64) {
	t.Helper()
	for i, row := range flow {
		var s float64
		for _, f := range row {
			if f < -tol {
				t.Fatalf("negative flow %g at row %d", f, i)
			}
			s += f
		}
		if !almostEqual(s, sup[i], 1e-5) {
			t.Fatalf("row %d flow %g != supply %g", i, s, sup[i])
		}
	}
	for j := range dem {
		var s float64
		for i := range flow {
			s += flow[i][j]
		}
		if !almostEqual(s, dem[j], 1e-5) {
			t.Fatalf("col %d flow %g != demand %g", j, s, dem[j])
		}
	}
}

// randomHist draws a normalized histogram with n points in [0,1).
func randomHist(rng *rand.Rand, n int) (vals, weights []float64) {
	vals = make([]float64, n)
	weights = make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
		weights[i] = 0.05 + rng.Float64()
	}
	if err := Normalize(weights); err != nil {
		panic(err)
	}
	return vals, weights
}

// The 1-D closed form must agree with the general transportation simplex.
func TestProperty1DMatchesSimplex(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(7)
		n := 1 + r.Intn(7)
		v1, w1 := randomHist(r, m)
		v2, w2 := randomHist(r, n)
		fast, err := Distance1D(v1, w1, v2, w2)
		if err != nil {
			t.Logf("Distance1D: %v", err)
			return false
		}
		exact, _, err := Solve(GroundL1Cost(v1, v2), w1, w2)
		if err != nil {
			t.Logf("Solve: %v", err)
			return false
		}
		if !almostEqual(fast, exact, 1e-5) {
			t.Logf("seed %d: fast=%g exact=%g", seed, fast, exact)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// EMD with a metric ground distance is itself a metric on normalized
// histograms: identity, symmetry and the triangle inequality must hold.
func TestPropertyMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() ([]float64, []float64) { return randomHist(r, 1+r.Intn(6)) }
		av, aw := mk()
		bv, bw := mk()
		cv, cw := mk()
		dab, err1 := Distance1D(av, aw, bv, bw)
		dba, err2 := Distance1D(bv, bw, av, aw)
		dac, err3 := Distance1D(av, aw, cv, cw)
		dbc, err4 := Distance1D(bv, bw, cv, cw)
		daa, err5 := Distance1D(av, aw, av, aw)
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return false
			}
		}
		if dab < -tol || !almostEqual(dab, dba, 1e-7) {
			return false
		}
		if !almostEqual(daa, 0, 1e-9) {
			return false
		}
		return dac <= dab+dbc+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Simplex optimality: the returned cost can never beat a brute-force
// enumeration lower bound and never exceeds a greedy feasible upper bound.
func TestPropertySimplexBracketed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(5)
		n := 1 + r.Intn(5)
		v1, w1 := randomHist(r, m)
		v2, w2 := randomHist(r, n)
		cost := GroundL1Cost(v1, v2)
		d, flow, err := Solve(cost, w1, w2)
		if err != nil {
			return false
		}
		// Feasibility of the reported flow.
		for i := range flow {
			var s float64
			for j := range flow[i] {
				if flow[i][j] < -tol {
					return false
				}
				s += flow[i][j]
			}
			if !almostEqual(s, w1[i], 1e-4) {
				return false
			}
		}
		// Flow cost equals reported distance.
		var fc float64
		for i := range flow {
			for j := range flow[i] {
				fc += flow[i][j] * cost[i][j]
			}
		}
		if !almostEqual(fc, d, 1e-5) {
			return false
		}
		// Greedy northwest feasible plan is an upper bound.
		greedy := nwCost(cost, w1, w2)
		return d <= greedy+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func nwCost(cost [][]float64, sup, dem []float64) float64 {
	ra := append([]float64(nil), sup...)
	rb := append([]float64(nil), dem...)
	var total float64
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		f := math.Min(ra[i], rb[j])
		total += f * cost[i][j]
		ra[i] -= f
		rb[j] -= f
		if ra[i] <= massEps {
			i++
		} else {
			j++
		}
	}
	return total
}

// Scaling both histograms' positions scales the distance linearly.
func TestPropertyPositionScaling(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v1, w1 := randomHist(r, 1+r.Intn(5))
		v2, w2 := randomHist(r, 1+r.Intn(5))
		d1, err := Distance1D(v1, w1, v2, w2)
		if err != nil {
			return false
		}
		const c = 3.5
		sv1 := make([]float64, len(v1))
		sv2 := make([]float64, len(v2))
		for i, x := range v1 {
			sv1[i] = c * x
		}
		for i, x := range v2 {
			sv2[i] = c * x
		}
		d2, err := Distance1D(sv1, w1, sv2, w2)
		if err != nil {
			return false
		}
		return almostEqual(d2, c*d1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroundL1Cost(t *testing.T) {
	c := GroundL1Cost([]float64{0, 2}, []float64{1})
	if len(c) != 2 || len(c[0]) != 1 {
		t.Fatalf("shape = %dx%d", len(c), len(c[0]))
	}
	if c[0][0] != 1 || c[1][0] != 1 {
		t.Errorf("costs = %v", c)
	}
}

func BenchmarkDistance1D(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	v1, w1 := randomHist(r, 32)
	v2, w2 := randomHist(r, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distance1D(v1, w1, v2, w2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSimplex(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	v1, w1 := randomHist(r, 32)
	v2, w2 := randomHist(r, 32)
	cost := GroundL1Cost(v1, v2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(cost, w1, w2); err != nil {
			b.Fatal(err)
		}
	}
}
