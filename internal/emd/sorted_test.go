package emd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The zero-alloc merge kernel must agree exactly with the validating wrapper:
// Distance1D is now defined as validate + stable-sort + Distance1DSorted, so
// feeding the kernel pre-sorted copies of the same input must be bit-equal.
func TestDistance1DSortedMatchesDistance1D(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v1, w1 := randomHist(r, 1+r.Intn(9))
		v2, w2 := randomHist(r, 1+r.Intn(9))
		want, err := Distance1D(v1, w1, v2, w2)
		if err != nil {
			return false
		}
		s1, ok1 := ValidateWeights(w1)
		s2, ok2 := ValidateWeights(w2)
		if !ok1 || !ok2 {
			return false
		}
		SortByValue(v1, w1)
		SortByValue(v2, w2)
		got := Distance1DSorted(v1, w1, v2, w2, s1/s2)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Tie-heavy inputs (duplicate positions within and across the two sets) must
// still match the wrapper bit-for-bit: the kernel's set-1-first tie rule and
// the stable per-set sort pin the summation order.
func TestDistance1DSortedTies(t *testing.T) {
	v1 := []float64{0.5, 0.5, 0.25, 0.5}
	w1 := []float64{0.1, 0.2, 0.3, 0.4}
	v2 := []float64{0.5, 0.25, 0.25}
	w2 := []float64{0.6, 0.3, 0.1}
	want, err := Distance1D(v1, w1, v2, w2)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := ValidateWeights(w1)
	s2, _ := ValidateWeights(w2)
	SortByValue(v1, w1)
	SortByValue(v2, w2)
	if got := Distance1DSorted(v1, w1, v2, w2, s1/s2); got != want {
		t.Fatalf("sorted kernel %v != wrapper %v", got, want)
	}
}

// The steady-state kernel must not allocate: it is called once per signature
// pair inside refinement, hundreds of thousands of times per query workload.
func TestDistance1DSortedZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	v1, w1 := randomHist(r, 24)
	v2, w2 := randomHist(r, 17)
	SortByValue(v1, w1)
	SortByValue(v2, w2)
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		sink += Distance1DSorted(v1, w1, v2, w2, 1)
	})
	if allocs != 0 {
		t.Fatalf("Distance1DSorted allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}

func TestSortByValueStable(t *testing.T) {
	v := []float64{2, 1, 2, 1}
	w := []float64{10, 20, 30, 40}
	SortByValue(v, w)
	wantV := []float64{1, 1, 2, 2}
	wantW := []float64{20, 40, 10, 30} // original order preserved within ties
	for i := range v {
		if v[i] != wantV[i] || w[i] != wantW[i] {
			t.Fatalf("sorted to v=%v w=%v, want v=%v w=%v", v, w, wantV, wantW)
		}
	}
}

func TestValidateWeights(t *testing.T) {
	if _, ok := ValidateWeights([]float64{0.5, -0.1}); ok {
		t.Error("negative weight validated")
	}
	if _, ok := ValidateWeights([]float64{0, 0}); ok {
		t.Error("zero mass validated")
	}
	if _, ok := ValidateWeights(nil); ok {
		t.Error("empty weights validated")
	}
	mass, ok := ValidateWeights([]float64{0.25, 0.75})
	if !ok || mass != 1 {
		t.Errorf("ValidateWeights = (%g, %v), want (1, true)", mass, ok)
	}
}

func TestMassMismatch(t *testing.T) {
	if MassMismatch(1, 1) {
		t.Error("equal masses flagged")
	}
	if MassMismatch(1, 1+5e-7) {
		t.Error("within-tolerance mismatch flagged")
	}
	if !MassMismatch(1, 2) {
		t.Error("2x mismatch not flagged")
	}
}

func BenchmarkDistance1DSorted(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	v1, w1 := randomHist(r, 32)
	v2, w2 := randomHist(r, 32)
	SortByValue(v1, w1)
	SortByValue(v2, w2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance1DSorted(v1, w1, v2, w2, 1)
	}
}
