// Package overload is the serving layer's adaptive overload-control
// subsystem: it decides, request by request, whether the server should run
// a query now, make it wait, make it cheaper, or refuse it — and it makes
// those decisions from measured latency instead of fixed knobs.
//
// Four mechanisms compose:
//
//   - A latency-gradient concurrency limiter (AIMD). The controller tracks
//     a no-queue service-time baseline (the windowed minimum, allowed to
//     drift up slowly so corpus growth is not punished forever) and the
//     current window's mean. While the mean tracks the baseline within a
//     tolerance factor the limit probes additively upward toward a ceiling;
//     when latency inflates — the queueing signal — the limit backs off
//     multiplicatively toward a floor. A zero Ceiling disables adaptation
//     and the limit stays fixed, which is the pre-adaptive behavior.
//
//   - A deadline-aware bounded wait queue. Requests beyond the limit wait
//     for a slot — but a waiter whose remaining deadline budget cannot
//     cover the expected service time (an EWMA of observed latency) is
//     evicted with ErrDoomed instead of burning a slot on an answer nobody
//     will wait for. Eviction happens both at enqueue and again at
//     dispatch, because the queue wait itself consumes budget. Under
//     sustained overload (the queue continuously occupied longer than
//     LIFOAfter) dispatch flips from FIFO to LIFO: the freshest request has
//     the most deadline budget left and the best chance of a useful answer,
//     while the old head of a FIFO queue under overload is usually already
//     doomed.
//
//   - Load-derived Retry-After. The hint on shed responses is computed from
//     the live queue depth and the measured drain rate (completions per
//     second) — "come back when the queue you would join has drained" —
//     instead of a constant. With no drain-rate signal yet it falls back to
//     the configured constant.
//
//   - Brownout tiers. From queue pressure the controller derives a tier
//     (0 = normal, 1 = pressured, 2 = saturated) with hysteresis on the way
//     down. The server couples tiers to the engine's degrade path: tier 1
//     serves queued requests the coarse social-only ranking, tier 2 serves
//     it to everyone — shedding work before deadlines force it.
//
// The controller is a single mutex-guarded state machine. Admission and
// completion both take the lock; at the concurrency levels the limiter
// itself enforces (tens to low thousands in flight) the lock is never the
// bottleneck — the queries behind it are milliseconds each.
package overload

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrShed is returned by Acquire when both the execution slots and the wait
// queue are full: the request must be refused now (HTTP 503), it can not
// even wait.
var ErrShed = errors.New("overload: server saturated, request shed")

// ErrDoomed is returned by Acquire when the request's remaining deadline
// budget cannot cover the expected service time: running it would burn a
// slot producing an answer that misses its deadline anyway, so it is
// refused immediately (HTTP 504) without holding a slot.
var ErrDoomed = errors.New("overload: deadline budget below expected service time, evicted from queue")

// Config tunes a Controller. Only Limit is required; every other field has
// a serviceable default.
type Config struct {
	// Limit is the initial concurrency limit (and the permanent one when
	// Ceiling == 0). Must be > 0.
	Limit int
	// Floor and Ceiling bound the adaptive limit. Ceiling > 0 enables
	// adaptation; Floor defaults to 1. With Ceiling == 0 the limit is fixed.
	Floor, Ceiling int
	// MaxQueue bounds how many requests may wait for a slot; beyond it
	// Acquire sheds. 0 disables queueing entirely (immediate shed at the
	// limit).
	MaxQueue int
	// Tolerance is the latency inflation factor the limiter forgives before
	// backing off: the window mean may reach baseline*Tolerance. Default 2.
	Tolerance float64
	// Backoff is the multiplicative decrease applied to the limit when
	// latency inflates past tolerance. Default 0.9.
	Backoff float64
	// AdjustWindow is the adjustment cadence: baseline/limit updates happen
	// at most once per window, and only with enough samples. Default 100ms.
	AdjustWindow time.Duration
	// MinWindowSamples is the minimum completions a window needs before the
	// limiter acts on it. Default 8.
	MinWindowSamples int
	// LIFOAfter is how long the queue must stay continuously occupied
	// before dispatch flips from FIFO to LIFO. Default 500ms.
	LIFOAfter time.Duration
	// RetryAfterFallback is the Retry-After hint used before any drain-rate
	// signal exists. Default 1s.
	RetryAfterFallback time.Duration
	// RetryAfterMax caps the computed Retry-After hint. Default 30s.
	RetryAfterMax time.Duration
	// Now overrides the clock (tests). Nil uses time.Now.
	Now func() time.Time
}

// waiter states; transitions happen only under Controller.mu.
const (
	stateWaiting = iota
	stateAdmitted
	stateRejected // evicted (doomed); error already delivered
	stateCanceled // caller's context died while queued
)

type waiter struct {
	ch          chan error // buffered(1): deliver never blocks the dispatcher
	enqueued    time.Time
	deadline    time.Time
	hasDeadline bool
	state       int
	admittedAt  time.Time
}

// waitHistSize is the queue-wait ring-buffer size backing the /stats
// percentiles. Power of two, sized to hold a few seconds of admissions.
const waitHistSize = 1024

// Controller is the admission state machine. Create with New; a nil
// *Controller is valid and admits everything (overload control disabled).
type Controller struct {
	cfg Config

	mu       sync.Mutex
	limit    int
	inFlight int
	waiters  []*waiter
	queued   int // live (stateWaiting) waiters; len(waiters) includes canceled ones

	congestedSince time.Time // queue continuously occupied since; zero when empty
	tier           int
	enter1, enter2 int // tier entry thresholds (queue depth)
	exit1, exit2   int // tier exit thresholds (hysteresis)

	// Latency model, all under mu.
	baseline    time.Duration // no-queue service time (windowed min, slow upward drift)
	expected    time.Duration // EWMA of service time — the eviction yardstick
	windowMin   time.Duration
	windowSum   time.Duration
	windowCount int
	windowStart time.Time
	drainRate   float64 // completions per second, EWMA across windows

	// Queue-wait history ring for p50/p99.
	waitRing  [waitHistSize]int64
	waitIdx   int
	waitCount uint64

	// Counters, under mu (read through Snapshot).
	evictedTotal uint64
	probeTotal   uint64
	backoffTotal uint64
	queuedServed uint64 // admissions that waited in the queue first
	lifoDispatch uint64 // dispatches made in LIFO order
	peakQueue    int
	limitMaxSeen int
	limitMinSeen int
}

// New builds a Controller. A cfg.Limit <= 0 returns nil — the disabled
// controller, whose methods all no-op/admit.
func New(cfg Config) *Controller {
	if cfg.Limit <= 0 {
		return nil
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.Ceiling > 0 {
		if cfg.Floor <= 0 {
			cfg.Floor = 1
		}
		if cfg.Ceiling < cfg.Floor {
			cfg.Ceiling = cfg.Floor
		}
		if cfg.Limit < cfg.Floor {
			cfg.Limit = cfg.Floor
		}
		if cfg.Limit > cfg.Ceiling {
			cfg.Limit = cfg.Ceiling
		}
	}
	if cfg.Tolerance <= 1 {
		cfg.Tolerance = 2.0
	}
	if cfg.Backoff <= 0 || cfg.Backoff >= 1 {
		cfg.Backoff = 0.9
	}
	if cfg.AdjustWindow <= 0 {
		cfg.AdjustWindow = 100 * time.Millisecond
	}
	if cfg.MinWindowSamples <= 0 {
		cfg.MinWindowSamples = 8
	}
	if cfg.LIFOAfter <= 0 {
		cfg.LIFOAfter = 500 * time.Millisecond
	}
	if cfg.RetryAfterFallback <= 0 {
		cfg.RetryAfterFallback = time.Second
	}
	if cfg.RetryAfterMax <= 0 {
		cfg.RetryAfterMax = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Controller{
		cfg:          cfg,
		limit:        cfg.Limit,
		windowStart:  cfg.Now(),
		limitMaxSeen: cfg.Limit,
		limitMinSeen: cfg.Limit,
	}
	// Brownout thresholds from queue capacity: enter tier 1 at half a queue,
	// tier 2 at three quarters; exit with hysteresis at a quarter / a half so
	// the tier does not flap at the boundary. MaxQueue == 0 leaves both
	// entries unreachable (nothing ever queues), disabling brownout.
	c.enter1 = (cfg.MaxQueue + 1) / 2
	c.enter2 = (3*cfg.MaxQueue + 3) / 4
	c.exit1 = cfg.MaxQueue / 4
	c.exit2 = cfg.MaxQueue / 2
	if cfg.MaxQueue == 0 {
		c.enter1, c.enter2 = 1<<30, 1<<30
	}
	return c
}

// Acquire claims an execution slot, waiting in the bounded deadline-aware
// queue when the limit is reached. On success it returns a release func
// (call exactly once, when the request finishes — it records the service
// latency the limiter adapts on) and how long the request waited queued.
// Errors: ErrShed (queue full), ErrDoomed (deadline budget below expected
// service time), or ctx.Err() when the caller's context dies while queued.
// A nil Controller admits immediately.
func (c *Controller) Acquire(ctx context.Context) (release func(), waited time.Duration, err error) {
	if c == nil {
		return func() {}, 0, nil
	}
	now := c.cfg.Now()
	deadline, hasDeadline := ctx.Deadline()

	c.mu.Lock()
	if c.queued > 0 && c.inFlight < c.limit {
		// A limit raise can leave free slots with queued waiters; they go
		// first — the newcomer does not jump the queue.
		c.dispatchLocked(now)
	}
	if c.inFlight < c.limit && c.queued == 0 {
		c.inFlight++
		c.mu.Unlock()
		return c.releaseFunc(now), 0, nil
	}
	if c.queued >= c.cfg.MaxQueue {
		c.mu.Unlock()
		return nil, 0, ErrShed
	}
	if hasDeadline && c.expected > 0 && deadline.Sub(now) < c.expected {
		// Doomed on arrival: even with an instant slot the expected service
		// time overruns the deadline. Refuse now, free of charge.
		c.evictedTotal++
		c.mu.Unlock()
		return nil, 0, ErrDoomed
	}
	w := &waiter{
		ch:          make(chan error, 1),
		enqueued:    now,
		deadline:    deadline,
		hasDeadline: hasDeadline,
	}
	c.waiters = append(c.waiters, w)
	c.queued++
	if c.queued > c.peakQueue {
		c.peakQueue = c.queued
	}
	if c.congestedSince.IsZero() {
		c.congestedSince = now
	}
	c.retierLocked()
	c.mu.Unlock()

	select {
	case err := <-w.ch:
		if err != nil {
			return nil, 0, err // evicted while queued (ErrDoomed)
		}
		c.mu.Lock()
		c.queuedServed++
		admittedAt := w.admittedAt
		c.mu.Unlock()
		return c.releaseFunc(admittedAt), admittedAt.Sub(w.enqueued), nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.state == stateAdmitted {
			// Lost the race: the dispatcher granted the slot as the context
			// died. Give the slot straight back (no latency sample — the
			// request never ran).
			c.inFlight--
			c.dispatchLocked(c.cfg.Now())
			c.mu.Unlock()
			return nil, 0, ctx.Err()
		}
		if w.state == stateWaiting {
			w.state = stateCanceled
			c.queued--
			c.queueDrainedLocked()
			c.retierLocked()
		}
		c.mu.Unlock()
		return nil, 0, ctx.Err()
	}
}

// releaseFunc builds the single-use completion callback for a request
// admitted at start: it records the observed service latency (feeding the
// gradient limiter, the eviction estimate and the drain rate) and hands the
// slot to the next eligible waiter.
func (c *Controller) releaseFunc(start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			now := c.cfg.Now()
			c.mu.Lock()
			c.recordLocked(now, now.Sub(start))
			c.inFlight--
			c.dispatchLocked(now)
			c.mu.Unlock()
		})
	}
}

// dispatchLocked hands free slots to queued waiters — FIFO normally, LIFO
// under sustained overload — evicting waiters whose remaining deadline can
// no longer cover the expected service time. Callers hold c.mu.
func (c *Controller) dispatchLocked(now time.Time) {
	lifo := !c.congestedSince.IsZero() && now.Sub(c.congestedSince) >= c.cfg.LIFOAfter
	for c.inFlight < c.limit {
		w := c.popLocked(lifo)
		if w == nil {
			break
		}
		c.queued--
		if w.hasDeadline && c.expected > 0 && w.deadline.Sub(now) < c.expected {
			w.state = stateRejected
			c.evictedTotal++
			w.ch <- ErrDoomed
			continue
		}
		if lifo {
			c.lifoDispatch++
		}
		w.state = stateAdmitted
		w.admittedAt = now
		c.recordWaitLocked(now.Sub(w.enqueued))
		c.inFlight++
		w.ch <- nil
	}
	c.queueDrainedLocked()
	c.retierLocked()
}

// popLocked removes and returns the next live waiter in the given order,
// discarding canceled entries. Callers hold c.mu.
func (c *Controller) popLocked(lifo bool) *waiter {
	for len(c.waiters) > 0 {
		var w *waiter
		if lifo {
			w = c.waiters[len(c.waiters)-1]
			c.waiters = c.waiters[:len(c.waiters)-1]
		} else {
			w = c.waiters[0]
			c.waiters = c.waiters[1:]
		}
		if w.state != stateWaiting {
			continue // canceled; its count was already removed
		}
		return w
	}
	return nil
}

// queueDrainedLocked resets the sustained-overload clock once the queue is
// empty: the next congestion episode starts its LIFO countdown afresh.
func (c *Controller) queueDrainedLocked() {
	if c.queued == 0 {
		c.congestedSince = time.Time{}
		// Compact away any canceled stragglers so the slice does not pin
		// dead waiters until the next dispatch.
		c.waiters = c.waiters[:0]
	}
}

// retierLocked recomputes the brownout tier from queue depth, with
// hysteresis: entering a tier is eager, leaving one requires the queue to
// fall well below the entry threshold.
func (c *Controller) retierLocked() {
	q := c.queued
	switch c.tier {
	case 0:
		if q >= c.enter2 {
			c.tier = 2
		} else if q >= c.enter1 {
			c.tier = 1
		}
	case 1:
		if q >= c.enter2 {
			c.tier = 2
		} else if q <= c.exit1 {
			c.tier = 0
		}
	case 2:
		if q <= c.exit1 {
			c.tier = 0
		} else if q <= c.exit2 {
			c.tier = 1
		}
	}
}

// recordLocked folds one completed request's service latency into the
// latency model and, at window boundaries, adjusts the limit: additive
// probe while the window mean tracks the no-queue baseline, multiplicative
// backoff when it inflates. Callers hold c.mu.
func (c *Controller) recordLocked(now time.Time, lat time.Duration) {
	if lat < 0 {
		lat = 0
	}
	// Expected service time: EWMA, alpha 1/8 — smooth enough to ignore one
	// outlier, fresh enough to follow a brownout's cheaper answers down.
	if c.expected == 0 {
		c.expected = lat
	} else {
		c.expected += (lat - c.expected) / 8
	}
	if c.windowCount == 0 || lat < c.windowMin {
		c.windowMin = lat
	}
	c.windowSum += lat
	c.windowCount++

	elapsed := now.Sub(c.windowStart)
	if elapsed < c.cfg.AdjustWindow || c.windowCount < c.cfg.MinWindowSamples {
		return
	}
	// Drain rate across the closing window, EWMA-smoothed.
	rate := float64(c.windowCount) / elapsed.Seconds()
	if c.drainRate == 0 {
		c.drainRate = rate
	} else {
		c.drainRate = 0.7*c.drainRate + 0.3*rate
	}
	// Baseline: snap down to any new minimum, drift up slowly (1/64 of the
	// gap per window, ~6s time constant at the default cadence) so a
	// permanently costlier corpus is eventually accepted as the new normal
	// — but a transient storm, whose inflated minima would re-baseline a
	// faster drift, keeps reading as overload for its whole duration.
	if c.baseline == 0 || c.windowMin < c.baseline {
		c.baseline = c.windowMin
	} else {
		c.baseline += (c.windowMin - c.baseline) / 64
	}
	if c.cfg.Ceiling > 0 {
		mean := c.windowSum / time.Duration(c.windowCount)
		if float64(mean) <= float64(c.baseline)*c.cfg.Tolerance {
			// Latency tracks the no-queue baseline: probe upward. The step
			// scales gently with the limit so big deployments converge in
			// seconds, small ones move by 1.
			step := c.limit / 16
			if step < 1 {
				step = 1
			}
			if next := c.limit + step; next <= c.cfg.Ceiling {
				c.limit = next
			} else {
				c.limit = c.cfg.Ceiling
			}
			c.probeTotal++
			if c.limit > c.limitMaxSeen {
				c.limitMaxSeen = c.limit
			}
			// A raised limit may free slots for queued waiters right now.
			c.dispatchLocked(now)
		} else {
			next := int(float64(c.limit) * c.cfg.Backoff)
			if next >= c.limit {
				next = c.limit - 1
			}
			if next < c.cfg.Floor {
				next = c.cfg.Floor
			}
			if next != c.limit {
				c.limit = next
				c.backoffTotal++
				if c.limit < c.limitMinSeen {
					c.limitMinSeen = c.limit
				}
			}
		}
	}
	c.windowStart = now
	c.windowCount = 0
	c.windowSum = 0
	c.windowMin = 0
}

// recordWaitLocked stores one admission's queue wait in the percentile
// ring. Callers hold c.mu.
func (c *Controller) recordWaitLocked(wait time.Duration) {
	c.waitRing[c.waitIdx] = wait.Nanoseconds()
	c.waitIdx = (c.waitIdx + 1) % waitHistSize
	c.waitCount++
}

// RetryAfterSeconds computes the Retry-After hint from the live queue
// depth and the measured drain rate: roughly how long until the queue a
// retry would join has drained. Without a drain-rate signal it falls back
// to the configured constant; the result is clamped to [1, RetryAfterMax].
func (c *Controller) RetryAfterSeconds() int {
	if c == nil {
		return 1
	}
	c.mu.Lock()
	depth, rate := c.queued, c.drainRate
	c.mu.Unlock()
	var d time.Duration
	if rate <= 0 {
		d = c.cfg.RetryAfterFallback
	} else {
		d = time.Duration(float64(depth+1) / rate * float64(time.Second))
	}
	if d > c.cfg.RetryAfterMax {
		d = c.cfg.RetryAfterMax
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Tier reports the current brownout tier: 0 normal, 1 pressured (queued
// requests should go coarse), 2 saturated (everything should go coarse).
func (c *Controller) Tier() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tier
}

// InFlight reports currently admitted requests.
func (c *Controller) InFlight() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inFlight
}

// Limit reports the current (possibly adapted) concurrency limit.
func (c *Controller) Limit() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// Stats is a point-in-time observability snapshot for /stats.
type Stats struct {
	Limit          int     `json:"limit"`
	InFlight       int     `json:"inFlight"`
	QueueDepth     int     `json:"queueDepth"`
	PeakQueue      int     `json:"peakQueue"`
	Tier           int     `json:"brownoutTier"`
	BaselineMs     float64 `json:"baselineMs"`
	ExpectedMs     float64 `json:"expectedMs"`
	DrainRate      float64 `json:"drainRate"`
	QueueWaitP50Ms float64 `json:"queueWaitP50Ms"`
	QueueWaitP99Ms float64 `json:"queueWaitP99Ms"`
	EvictedTotal   uint64  `json:"queueEvictedTotal"`
	ProbeTotal     uint64  `json:"limitProbes"`
	BackoffTotal   uint64  `json:"limitBackoffs"`
	QueuedServed   uint64  `json:"queuedServedTotal"`
	LIFODispatches uint64  `json:"lifoDispatchTotal"`
	LimitMax       int     `json:"limitMax"`
	LimitMin       int     `json:"limitMin"`
}

// Snapshot returns the current Stats. Percentiles sort a copy of the wait
// ring; the call is meant for /stats cadence, not per-request hot paths. A
// nil Controller returns the zero Stats.
func (c *Controller) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	s := Stats{
		Limit:          c.limit,
		InFlight:       c.inFlight,
		QueueDepth:     c.queued,
		PeakQueue:      c.peakQueue,
		Tier:           c.tier,
		BaselineMs:     float64(c.baseline) / 1e6,
		ExpectedMs:     float64(c.expected) / 1e6,
		DrainRate:      c.drainRate,
		EvictedTotal:   c.evictedTotal,
		ProbeTotal:     c.probeTotal,
		BackoffTotal:   c.backoffTotal,
		QueuedServed:   c.queuedServed,
		LIFODispatches: c.lifoDispatch,
		LimitMax:       c.limitMaxSeen,
		LimitMin:       c.limitMinSeen,
	}
	n := int(c.waitCount)
	if n > waitHistSize {
		n = waitHistSize
	}
	waits := make([]int64, n)
	copy(waits, c.waitRing[:n])
	c.mu.Unlock()
	if n > 0 {
		sort.Slice(waits, func(a, b int) bool { return waits[a] < waits[b] })
		s.QueueWaitP50Ms = float64(waits[n/2]) / 1e6
		s.QueueWaitP99Ms = float64(waits[(n-1)*99/100]) / 1e6
	}
	return s
}
