package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock, making every latency sample and
// window boundary in these tests deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// waitFor polls cond until it holds or the test times out. The controller
// never depends on wall time (fake clock), so polling is purely about
// goroutine scheduling.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// deadlineCtx reports a (fake-clock) deadline to Deadline() but never
// actually fires: the controller's eviction logic sees the budget while the
// test stays immune to real-time scheduling.
type deadlineCtx struct {
	context.Context
	dl time.Time
}

func (d deadlineCtx) Deadline() (time.Time, bool) { return d.dl, true }
func (d deadlineCtx) Done() <-chan struct{}       { return nil }
func (d deadlineCtx) Err() error                  { return nil }

// drive completes n requests, each taking lat of (fake) service time — the
// basic way to feed the latency model.
func drive(t *testing.T, c *Controller, clk *fakeClock, n int, lat time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		rel, _, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatalf("drive acquire %d: %v", i, err)
		}
		clk.advance(lat)
		rel()
	}
}

func TestFixedLimitQueueAndShed(t *testing.T) {
	clk := newClock()
	c := New(Config{Limit: 1, MaxQueue: 1, Now: clk.now})

	rel1, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second request queues.
	got := make(chan error, 1)
	go func() {
		rel, _, err := c.Acquire(context.Background())
		if err == nil {
			defer rel()
		}
		got <- err
	}()
	waitFor(t, "second request queued", func() bool { return c.Snapshot().QueueDepth == 1 })
	// Third sheds: queue is full.
	if _, _, err := c.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("third acquire: err = %v, want ErrShed", err)
	}
	rel1()
	if err := <-got; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	s := c.Snapshot()
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("leaked state: %+v", s)
	}
	if s.QueuedServed != 1 {
		t.Fatalf("queuedServed = %d, want 1", s.QueuedServed)
	}
	if s.Limit != 1 {
		t.Fatalf("fixed limit moved to %d", s.Limit)
	}
}

// The AIMD core: while latency tracks the no-queue baseline the limit
// probes additively to the ceiling; when latency inflates past tolerance it
// backs off multiplicatively to the floor.
func TestAIMDProbeAndBackoff(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Limit: 4, Floor: 2, Ceiling: 16, MaxQueue: 16,
		Tolerance: 2.0, Backoff: 0.5,
		AdjustWindow: 10 * time.Millisecond, MinWindowSamples: 4,
		Now: clk.now,
	})

	// Healthy phase: 1ms service time, every window at the baseline.
	drive(t, c, clk, 200, time.Millisecond)
	s := c.Snapshot()
	if s.Limit != 16 {
		t.Fatalf("healthy phase: limit = %d, want ceiling 16", s.Limit)
	}
	if s.ProbeTotal == 0 {
		t.Fatal("no probes counted")
	}
	if s.BaselineMs < 0.9 || s.BaselineMs > 1.1 {
		t.Fatalf("baseline = %vms, want ~1ms", s.BaselineMs)
	}

	// Congested phase: latency inflates 5x past tolerance. The backoff is
	// multiplicative (16 → 8 → 4 → 2 within three windows), and the slow
	// baseline drift must not re-accept 5ms as normal within the phase.
	drive(t, c, clk, 60, 5*time.Millisecond)
	s = c.Snapshot()
	if s.Limit != 2 {
		t.Fatalf("congested phase: limit = %d, want floor 2", s.Limit)
	}
	if s.BackoffTotal == 0 {
		t.Fatal("no backoffs counted")
	}
	if s.LimitMax != 16 || s.LimitMin != 2 {
		t.Fatalf("limit excursion [%d, %d], want [2, 16]", s.LimitMin, s.LimitMax)
	}

	// Recovery: latency back at baseline, the limit climbs again.
	drive(t, c, clk, 300, time.Millisecond)
	if got := c.Snapshot().Limit; got != 16 {
		t.Fatalf("recovery: limit = %d, want 16", got)
	}
}

// A request whose deadline budget cannot cover the expected service time is
// refused immediately — at enqueue, and again at dispatch after queue wait
// consumed its budget.
func TestDeadlineEviction(t *testing.T) {
	clk := newClock()
	c := New(Config{Limit: 1, MaxQueue: 8, AdjustWindow: time.Hour, Now: clk.now})
	drive(t, c, clk, 5, 10*time.Millisecond) // teach expected service ~10ms

	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Doomed on arrival: 2ms of budget against ~10ms expected service.
	ctx := deadlineCtx{context.Background(), clk.now().Add(2 * time.Millisecond)}
	if _, _, err := c.Acquire(ctx); !errors.Is(err, ErrDoomed) {
		t.Fatalf("tight-deadline acquire: err = %v, want ErrDoomed", err)
	}

	// Doomed at dispatch: 50ms of budget is plenty at enqueue, but the queue
	// wait burns 45 of them before a slot frees.
	ctx2 := deadlineCtx{context.Background(), clk.now().Add(50 * time.Millisecond)}
	got := make(chan error, 1)
	go func() {
		_, _, err := c.Acquire(ctx2)
		got <- err
	}()
	waitFor(t, "waiter queued", func() bool { return c.Snapshot().QueueDepth == 1 })
	clk.advance(45 * time.Millisecond)
	hold()
	if err := <-got; !errors.Is(err, ErrDoomed) {
		t.Fatalf("stale waiter: err = %v, want ErrDoomed", err)
	}
	if got := c.Snapshot().EvictedTotal; got != 2 {
		t.Fatalf("evictedTotal = %d, want 2", got)
	}
	// The slot freed by hold() must still be grantable.
	rel, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("post-eviction acquire: %v", err)
	}
	rel()
}

// Queue order is FIFO normally and flips to LIFO once the queue has been
// continuously occupied past LIFOAfter — fresh requests first.
func TestAdaptiveLIFOOrdering(t *testing.T) {
	for _, lifo := range []bool{false, true} {
		clk := newClock()
		c := New(Config{Limit: 1, MaxQueue: 8, LIFOAfter: 50 * time.Millisecond, AdjustWindow: time.Hour, Now: clk.now})
		hold, _, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		order := make(chan string, 3)
		enqueue := func(name string) {
			go func() {
				rel, _, err := c.Acquire(context.Background())
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				order <- name
				rel()
			}()
		}
		for i, name := range []string{"A", "B", "C"} {
			enqueue(name)
			want := i + 1
			waitFor(t, name+" queued", func() bool { return c.Snapshot().QueueDepth == want })
			clk.advance(time.Millisecond) // distinct enqueue times
		}
		if lifo {
			clk.advance(60 * time.Millisecond) // past LIFOAfter: sustained overload
		}
		hold()
		var got [3]string
		for i := range got {
			got[i] = <-order
		}
		want := [3]string{"A", "B", "C"}
		if lifo {
			want = [3]string{"C", "B", "A"}
		}
		if got != want {
			t.Fatalf("lifo=%v: dispatch order %v, want %v", lifo, got, want)
		}
		s := c.Snapshot()
		if lifo && s.LIFODispatches == 0 {
			t.Fatal("LIFO dispatches not counted")
		}
		if !lifo && s.LIFODispatches != 0 {
			t.Fatalf("unexpected LIFO dispatches: %d", s.LIFODispatches)
		}
	}
}

// A caller's context dying while queued returns ctx.Err() and removes the
// waiter; the departed waiter must never be granted a slot.
func TestCancelWhileQueued(t *testing.T) {
	clk := newClock()
	c := New(Config{Limit: 1, MaxQueue: 4, Now: clk.now})
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, _, err := c.Acquire(ctx)
		got <- err
	}()
	waitFor(t, "waiter queued", func() bool { return c.Snapshot().QueueDepth == 1 })
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v, want context.Canceled", err)
	}
	if got := c.Snapshot().QueueDepth; got != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", got)
	}
	hold()
	// The freed slot must go to a live request, not the canceled ghost.
	rel, waited, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if waited != 0 {
		t.Fatalf("fresh request waited %v with an empty queue", waited)
	}
	rel()
	if s := c.Snapshot(); s.InFlight != 0 {
		t.Fatalf("inFlight = %d after full drain", s.InFlight)
	}
}

// Retry-After derives from queue depth over drain rate; before any signal
// exists it falls back to the configured constant; it is clamped at the cap.
func TestRetryAfterFromDrainRate(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Limit: 1, MaxQueue: 16,
		AdjustWindow: 100 * time.Millisecond, MinWindowSamples: 2,
		RetryAfterFallback: 2 * time.Second, RetryAfterMax: 5 * time.Second,
		Now: clk.now,
	})
	// No completions yet: fallback.
	if got := c.RetryAfterSeconds(); got != 2 {
		t.Fatalf("fallback Retry-After = %d, want 2", got)
	}
	// Two completions of 500ms each: drain rate 2/s.
	drive(t, c, clk, 2, 500*time.Millisecond)
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		go func() {
			rel, _, err := c.Acquire(context.Background())
			if err == nil {
				rel()
			}
		}()
	}
	waitFor(t, "three waiters", func() bool { return c.Snapshot().QueueDepth == 3 })
	// (3 queued + 1) / 2 per second = 2s.
	if got := c.RetryAfterSeconds(); got != 2 {
		t.Fatalf("computed Retry-After = %d, want 2", got)
	}
	hold()
	waitFor(t, "drain", func() bool { s := c.Snapshot(); return s.InFlight == 0 && s.QueueDepth == 0 })
}

// Retry-After clamps to the configured cap when the drain rate says longer.
func TestRetryAfterClamped(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Limit: 1, MaxQueue: 64,
		AdjustWindow: 100 * time.Millisecond, MinWindowSamples: 2,
		RetryAfterMax: 3 * time.Second,
		Now:           clk.now,
	})
	drive(t, c, clk, 2, 2*time.Second) // drain rate 0.5/s
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		go func() {
			rel, _, err := c.Acquire(context.Background())
			if err == nil {
				rel()
			}
		}()
	}
	waitFor(t, "ten waiters", func() bool { return c.Snapshot().QueueDepth == 10 })
	// (10+1)/0.5 = 22s, clamped to 3.
	if got := c.RetryAfterSeconds(); got != 3 {
		t.Fatalf("clamped Retry-After = %d, want 3", got)
	}
	hold()
	waitFor(t, "drain", func() bool { s := c.Snapshot(); return s.InFlight == 0 && s.QueueDepth == 0 })
}

// Brownout tiers enter eagerly on queue depth and exit with hysteresis.
func TestBrownoutTierHysteresis(t *testing.T) {
	clk := newClock()
	// MaxQueue 4: enter1=2, enter2=3, exit1=1, exit2=2.
	c := New(Config{Limit: 1, MaxQueue: 4, Now: clk.now})
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	type qw struct {
		cancel context.CancelFunc
		done   chan struct{}
	}
	var ws []qw
	push := func() {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			rel, _, err := c.Acquire(ctx)
			if err == nil {
				rel()
			}
		}()
		want := c.Snapshot().QueueDepth + 1
		ws = append(ws, qw{cancel, done})
		waitFor(t, "enqueue", func() bool { return c.Snapshot().QueueDepth == want })
	}
	pop := func() {
		w := ws[len(ws)-1]
		ws = ws[:len(ws)-1]
		w.cancel()
		<-w.done
	}

	if got := c.Tier(); got != 0 {
		t.Fatalf("tier at depth 0 = %d", got)
	}
	push() // depth 1
	if got := c.Tier(); got != 0 {
		t.Fatalf("tier at depth 1 = %d, want 0", got)
	}
	push() // depth 2 >= enter1
	if got := c.Tier(); got != 1 {
		t.Fatalf("tier at depth 2 = %d, want 1", got)
	}
	push() // depth 3 >= enter2
	if got := c.Tier(); got != 2 {
		t.Fatalf("tier at depth 3 = %d, want 2", got)
	}
	pop() // depth 2 <= exit2: drops only to 1
	if got := c.Tier(); got != 1 {
		t.Fatalf("tier back at depth 2 = %d, want 1 (hysteresis)", got)
	}
	pop() // depth 1 <= exit1: back to normal
	if got := c.Tier(); got != 0 {
		t.Fatalf("tier back at depth 1 = %d, want 0", got)
	}
	pop()
	hold()
}

// Queue-wait percentiles come from the ring of admitted waiters' waits.
func TestQueueWaitPercentiles(t *testing.T) {
	clk := newClock()
	c := New(Config{Limit: 1, MaxQueue: 4, AdjustWindow: time.Hour, Now: clk.now})
	hold, _, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan time.Duration, 1)
	go func() {
		rel, waited, err := c.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			done <- 0
			return
		}
		rel()
		done <- waited
	}()
	waitFor(t, "waiter queued", func() bool { return c.Snapshot().QueueDepth == 1 })
	clk.advance(7 * time.Millisecond)
	hold()
	if waited := <-done; waited != 7*time.Millisecond {
		t.Fatalf("waited = %v, want 7ms", waited)
	}
	s := c.Snapshot()
	if s.QueueWaitP50Ms != 7 || s.QueueWaitP99Ms != 7 {
		t.Fatalf("wait percentiles p50=%v p99=%v, want 7/7", s.QueueWaitP50Ms, s.QueueWaitP99Ms)
	}
}

// A nil controller admits everything and reports zeros — the disabled mode.
func TestNilController(t *testing.T) {
	var c *Controller
	rel, waited, err := c.Acquire(context.Background())
	if err != nil || waited != 0 {
		t.Fatalf("nil acquire: %v %v", waited, err)
	}
	rel()
	if s := c.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if c.Tier() != 0 || c.Limit() != 0 || c.InFlight() != 0 {
		t.Fatal("nil accessors not zero")
	}
	if New(Config{Limit: 0}) != nil {
		t.Fatal("New with Limit 0 should return nil")
	}
}

// The limit never leaves [Floor, Ceiling], whatever the latency does.
func TestLimitBounds(t *testing.T) {
	clk := newClock()
	c := New(Config{
		Limit: 8, Floor: 4, Ceiling: 8, MaxQueue: 8,
		AdjustWindow: time.Millisecond, MinWindowSamples: 1,
		Now: clk.now,
	})
	drive(t, c, clk, 50, 100*time.Microsecond)
	if got := c.Snapshot().Limit; got > 8 {
		t.Fatalf("limit %d above ceiling", got)
	}
	drive(t, c, clk, 5, time.Millisecond) // set a baseline to inflate against
	drive(t, c, clk, 100, 50*time.Millisecond)
	if got := c.Snapshot().Limit; got < 4 {
		t.Fatalf("limit %d below floor", got)
	}
}
