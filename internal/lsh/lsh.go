// Package lsh implements the content-index machinery of §4.4: the EMD→L1
// embedding (the multi-resolution grid construction of Indyk–Thaper used by
// [35] to "embed EMD-metric into L1-norm space"), a 1-stable (Cauchy) LSH
// family for the L1 norm, and Z-order interleaving of the m hash values into
// the single uint64 keys stored in the LSB-tree [28].
package lsh

import (
	"fmt"
	"math"
	"math/rand"
)

// Embedder maps a weighted 1-D point set (a cuboid signature) to a vector
// whose L1 distance approximates the EMD between the point sets. It overlays
// grids of geometrically finer cells on the value domain; each cell
// contributes its mass scaled by the cell width.
type Embedder struct {
	min, max float64
	levels   int
	dim      int
}

// NewEmbedder builds an embedder over the closed value domain [min, max]
// with the given number of grid levels (level l has 2^l cells). Values
// outside the domain are clamped. Levels is clamped to [1, 12].
func NewEmbedder(min, max float64, levels int) *Embedder {
	if max <= min {
		panic(fmt.Sprintf("lsh: empty value domain [%g, %g]", min, max))
	}
	if levels < 1 {
		levels = 1
	}
	if levels > 12 {
		levels = 12
	}
	dim := 0
	for l := 0; l < levels; l++ {
		dim += 1 << l
	}
	return &Embedder{min: min, max: max, levels: levels, dim: dim}
}

// Dim returns the embedding dimensionality (2^levels − 1).
func (e *Embedder) Dim() int { return e.dim }

// Embed maps the weighted point set to its grid embedding. vals and weights
// must be parallel slices; weights should be normalized (total mass 1) for
// the L1-distance-approximates-EMD guarantee to be meaningful.
func (e *Embedder) Embed(vals, weights []float64) []float64 {
	return e.EmbedInto(nil, vals, weights)
}

// EmbedInto is Embed writing into dst's storage when it has the capacity.
// The returned slice must be used in place of dst.
func (e *Embedder) EmbedInto(dst []float64, vals, weights []float64) []float64 {
	var out []float64
	if cap(dst) >= e.dim {
		out = dst[:e.dim]
		clear(out)
	} else {
		out = make([]float64, e.dim)
	}
	span := e.max - e.min
	offset := 0
	for l := 0; l < e.levels; l++ {
		cells := 1 << l
		cellWidth := span / float64(cells)
		for i, v := range vals {
			x := (v - e.min) / span
			if x < 0 {
				x = 0
			}
			if x >= 1 {
				x = 1 - 1e-12
			}
			c := int(x * float64(cells))
			out[offset+c] += weights[i] * cellWidth
		}
		offset += cells
	}
	return out
}

// L1 returns the L1 distance between two equal-length vectors.
func L1(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// HashFamily is an LSH family for the L1 norm: m independent functions
// h_i(x) = floor((a_i·x + b_i) / W) with Cauchy-distributed a_i (1-stable
// for L1). Each hash value is offset and clamped into [0, 2^bits).
type HashFamily struct {
	m    int
	bits int
	w    float64
	a    [][]float64
	b    []float64
}

// NewHashFamily draws m hash functions over dim-dimensional inputs with
// bucket width w and bits output bits each. m·bits must fit in 64 bits for
// Z-order packing. Deterministic given the seed.
func NewHashFamily(dim, m, bits int, w float64, seed int64) *HashFamily {
	if m < 1 || bits < 1 || m*bits > 64 {
		panic(fmt.Sprintf("lsh: invalid family m=%d bits=%d", m, bits))
	}
	if w <= 0 {
		panic("lsh: bucket width must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	hf := &HashFamily{m: m, bits: bits, w: w}
	hf.a = make([][]float64, m)
	hf.b = make([]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, dim)
		for d := range row {
			// Standard Cauchy via inverse CDF.
			row[d] = math.Tan(math.Pi * (rng.Float64() - 0.5))
		}
		hf.a[i] = row
		hf.b[i] = rng.Float64() * w
	}
	return hf
}

// M returns the number of hash functions.
func (hf *HashFamily) M() int { return hf.m }

// Bits returns the output bits per hash function.
func (hf *HashFamily) Bits() int { return hf.bits }

// Hash computes the m clamped hash values of x.
func (hf *HashFamily) Hash(x []float64) []int {
	return hf.HashInto(nil, x)
}

// HashInto is Hash writing into dst's storage when it has the capacity. The
// returned slice must be used in place of dst.
func (hf *HashFamily) HashInto(dst []int, x []float64) []int {
	var out []int
	if cap(dst) >= hf.m {
		out = dst[:hf.m]
	} else {
		out = make([]int, hf.m)
	}
	half := 1 << (hf.bits - 1)
	limit := (1 << hf.bits) - 1
	for i := 0; i < hf.m; i++ {
		var dot float64
		a := hf.a[i]
		for d := range x {
			dot += a[d] * x[d]
		}
		h := int(math.Floor((dot+hf.b[i])/hf.w)) + half
		if h < 0 {
			h = 0
		}
		if h > limit {
			h = limit
		}
		out[i] = h
	}
	return out
}

// Key embeds, hashes and Z-orders a weighted point set in one call.
func (hf *HashFamily) Key(e *Embedder, vals, weights []float64) uint64 {
	return ZOrder(hf.Hash(e.Embed(vals, weights)), hf.bits)
}

// KeyScratch holds the intermediate embedding and hash buffers of KeyInto so
// repeated keying (the per-query walker seeding) allocates nothing once warm.
type KeyScratch struct {
	emb []float64
	h   []int
}

// KeyInto is Key computing through the scratch's reusable buffers.
func (hf *HashFamily) KeyInto(e *Embedder, vals, weights []float64, sc *KeyScratch) uint64 {
	sc.emb = e.EmbedInto(sc.emb, vals, weights)
	sc.h = hf.HashInto(sc.h, sc.emb)
	return ZOrder(sc.h, hf.bits)
}

// ZOrder interleaves the values bit by bit, most significant bits first,
// producing the Z-order (Morton) key stored in the LSB-tree. Each value
// contributes exactly bits bits; len(vals)*bits must be at most 64.
func ZOrder(vals []int, bits int) uint64 {
	m := len(vals)
	if m == 0 || bits < 1 || m*bits > 64 {
		panic(fmt.Sprintf("lsh: cannot Z-order %d values of %d bits", m, bits))
	}
	var key uint64
	for b := bits - 1; b >= 0; b-- {
		for _, v := range vals {
			key = key<<1 | uint64(v>>b)&1
		}
	}
	return key
}

// CommonPrefixLen returns the number of leading bits shared by a and b when
// both are totalBits wide. Longer common prefixes mean closer points in
// every LSH dimension simultaneously — the "next longest common prefix"
// search order of Figure 6 relies on this.
func CommonPrefixLen(a, b uint64, totalBits int) int {
	if totalBits <= 0 || totalBits > 64 {
		panic(fmt.Sprintf("lsh: invalid totalBits %d", totalBits))
	}
	x := (a ^ b) << (64 - totalBits)
	if x == 0 {
		return totalBits
	}
	n := 0
	for x&(1<<63) == 0 {
		n++
		x <<= 1
	}
	return n
}
