package lsh

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"videorec/internal/emd"
)

func TestEmbedderDim(t *testing.T) {
	e := NewEmbedder(-1, 1, 4)
	if e.Dim() != 1+2+4+8 {
		t.Errorf("Dim = %d, want 15", e.Dim())
	}
}

func TestEmbedderPanicsOnEmptyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEmbedder(1, 1, 3)
}

func TestEmbedIdenticalInputsEqual(t *testing.T) {
	e := NewEmbedder(-2, 2, 5)
	v := []float64{-1, 0.5, 1.2}
	w := []float64{0.3, 0.3, 0.4}
	a := e.Embed(v, w)
	b := e.Embed(v, w)
	if L1(a, b) != 0 {
		t.Error("identical inputs embed differently")
	}
}

func TestEmbedClampsOutOfDomain(t *testing.T) {
	e := NewEmbedder(0, 1, 3)
	// Should not panic or produce NaN for out-of-domain values.
	out := e.Embed([]float64{-5, 7}, []float64{0.5, 0.5})
	for _, x := range out {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("bad embedding value %g", x)
		}
	}
}

func randHist(rng *rand.Rand, n int) (v, w []float64) {
	v = make([]float64, n)
	w = make([]float64, n)
	var sum float64
	for i := range v {
		v[i] = rng.Float64()*2 - 1
		w[i] = 0.1 + rng.Float64()
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return v, w
}

// The embedding is useful iff L1 distance correlates with true EMD. We check
// rank correlation over random pairs rather than tight distortion bounds
// (the Indyk–Thaper guarantee is O(log n) distortion in expectation).
func TestEmbeddingCorrelatesWithEMD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := NewEmbedder(-1, 1, 7)
	var emds, l1s []float64
	for i := 0; i < 200; i++ {
		v1, w1 := randHist(rng, 1+rng.Intn(8))
		v2, w2 := randHist(rng, 1+rng.Intn(8))
		d, err := emd.Distance1D(v1, w1, v2, w2)
		if err != nil {
			t.Fatal(err)
		}
		emds = append(emds, d)
		l1s = append(l1s, L1(e.Embed(v1, w1), e.Embed(v2, w2)))
	}
	// Spearman rank correlation.
	rho := spearman(emds, l1s)
	if rho < 0.7 {
		t.Errorf("rank correlation EMD vs embedded L1 = %.3f, want >= 0.7", rho)
	}
}

func spearman(xs, ys []float64) float64 {
	n := len(xs)
	rankOf := func(v []float64) []float64 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
		r := make([]float64, n)
		for rank, i := range idx {
			r[i] = float64(rank)
		}
		return r
	}
	ra := rankOf(xs)
	rb := rankOf(ys)
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	nf := float64(n)
	return 1 - 6*d2/(nf*(nf*nf-1))
}

func TestHashFamilyDeterministic(t *testing.T) {
	a := NewHashFamily(15, 8, 8, 0.5, 42)
	b := NewHashFamily(15, 8, 8, 0.5, 42)
	x := make([]float64, 15)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	ha, hb := a.Hash(x), b.Hash(x)
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("hash %d differs: %d vs %d", i, ha[i], hb[i])
		}
	}
}

func TestHashFamilyBounds(t *testing.T) {
	hf := NewHashFamily(10, 8, 8, 0.25, 7)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, 10)
		for i := range x {
			x[i] = rng.NormFloat64() * 100 // extreme inputs
		}
		for _, h := range hf.Hash(x) {
			if h < 0 || h > 255 {
				t.Fatalf("hash value %d out of [0,255]", h)
			}
		}
	}
}

func TestHashFamilyPanics(t *testing.T) {
	for _, tc := range []struct{ m, bits int }{{0, 8}, {9, 8}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("m=%d bits=%d: expected panic", tc.m, tc.bits)
				}
			}()
			NewHashFamily(4, tc.m, tc.bits, 1, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("w=0: expected panic")
			}
		}()
		NewHashFamily(4, 4, 8, 0, 1)
	}()
}

func TestZOrderKnownPattern(t *testing.T) {
	// Two 2-bit values: v0=0b10, v1=0b01 → interleaved MSB-first: 1,0,0,1.
	got := ZOrder([]int{2, 1}, 2)
	if got != 0b1001 {
		t.Errorf("ZOrder = %b, want 1001", got)
	}
}

func TestZOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64 bits")
		}
	}()
	ZOrder(make([]int, 9), 8)
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b  uint64
		total int
		want  int
	}{
		{0b1010, 0b1010, 4, 4},
		{0b1010, 0b1011, 4, 3},
		{0b1010, 0b0010, 4, 0},
		{0, 0, 64, 64},
		{0, 1, 64, 63},
	}
	for _, c := range cases {
		if got := CommonPrefixLen(c.a, c.b, c.total); got != c.want {
			t.Errorf("CommonPrefixLen(%b,%b,%d) = %d, want %d", c.a, c.b, c.total, got, c.want)
		}
	}
}

// Property: the Z-order key preserves per-function hash equality — equal
// hashes give the longest possible prefix, and longer shared prefixes never
// come from more differing hash values.
func TestPropertyZOrderPrefixStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m, bits = 8, 8
		a := make([]int, m)
		b := make([]int, m)
		for i := range a {
			a[i] = rng.Intn(256)
			b[i] = a[i]
		}
		// Identical → full prefix.
		if CommonPrefixLen(ZOrder(a, bits), ZOrder(b, bits), m*bits) != m*bits {
			return false
		}
		// Flip the lowest bit of one value: prefix must stay >= (bits-1)*m.
		b[rng.Intn(m)] ^= 1
		if CommonPrefixLen(ZOrder(a, bits), ZOrder(b, bits), m*bits) < (bits-1)*m {
			return false
		}
		// Flip the highest bit: prefix < m.
		c := append([]int(nil), a...)
		c[rng.Intn(m)] ^= 1 << (bits - 1)
		return CommonPrefixLen(ZOrder(a, bits), ZOrder(c, bits), m*bits) < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// LSH locality: near-identical histograms should share strictly longer
// Z-order prefixes on average than unrelated ones.
func TestLSHLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEmbedder(-1, 1, 7)
	hf := NewHashFamily(e.Dim(), 8, 8, 0.05, 9)
	var nearSum, farSum float64
	const trials = 120
	for i := 0; i < trials; i++ {
		v1, w1 := randHist(rng, 5)
		// Near: tiny perturbation.
		v2 := append([]float64(nil), v1...)
		for j := range v2 {
			v2[j] += rng.NormFloat64() * 0.01
		}
		// Far: fresh histogram.
		v3, w3 := randHist(rng, 5)
		k1 := hf.Key(e, v1, w1)
		k2 := hf.Key(e, v2, w1)
		k3 := hf.Key(e, v3, w3)
		nearSum += float64(CommonPrefixLen(k1, k2, 64))
		farSum += float64(CommonPrefixLen(k1, k3, 64))
	}
	if nearSum <= farSum {
		t.Errorf("near prefix avg %.2f <= far prefix avg %.2f", nearSum/trials, farSum/trials)
	}
}

func BenchmarkEmbed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := NewEmbedder(-1, 1, 7)
	v, w := randHist(rng, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Embed(v, w)
	}
}

func BenchmarkKey(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := NewEmbedder(-1, 1, 7)
	hf := NewHashFamily(e.Dim(), 8, 8, 0.05, 9)
	v, w := randHist(rng, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hf.Key(e, v, w)
	}
}

// FuzzZOrderPrefix: CommonPrefixLen over arbitrary keys stays within bounds
// and is symmetric.
func FuzzZOrderPrefix(f *testing.F) {
	f.Add(uint64(0), uint64(0), 64)
	f.Add(uint64(1)<<63, uint64(0), 64)
	f.Add(uint64(0xdeadbeef), uint64(0xdeadbeee), 32)
	f.Fuzz(func(t *testing.T, a, b uint64, total int) {
		if total < 1 {
			total = 1
		}
		if total > 64 {
			total = 64
		}
		// Mask to the declared width so equal-width semantics hold.
		if total < 64 {
			mask := (uint64(1) << total) - 1
			a &= mask
			b &= mask
		}
		p := CommonPrefixLen(a, b, total)
		q := CommonPrefixLen(b, a, total)
		if p != q {
			t.Fatalf("asymmetric: %d vs %d", p, q)
		}
		if p < 0 || p > total {
			t.Fatalf("prefix %d out of [0,%d]", p, total)
		}
		if a == b && p != total {
			t.Fatalf("equal keys prefix %d, want %d", p, total)
		}
	})
}
