// Package bitset provides a dense bitset over uint32 indices. The
// candidate-generation path of the KNN search keys every per-video set —
// tombstones, the per-query exclude set, the gathered candidate set — by the
// view's interned dense video index, so membership is one shift and mask
// instead of a string hash.
package bitset

import "math/bits"

// Set is a bitset addressed by uint32 index. The zero value is an empty set
// of capacity zero; Grow before Add.
type Set []uint64

// Make returns a set able to hold indices [0, n).
func Make(n int) Set { return make(Set, (n+63)/64) }

// Grow extends the set to hold indices [0, n), preserving existing bits.
func (s *Set) Grow(n int) {
	words := (n + 63) / 64
	if words <= len(*s) {
		return
	}
	if words <= cap(*s) {
		old := len(*s)
		*s = (*s)[:words]
		clear((*s)[old:])
		return
	}
	ns := make(Set, words)
	copy(ns, *s)
	*s = ns
}

// Cap returns the number of indices the set can currently hold.
func (s Set) Cap() int { return len(s) * 64 }

// Add sets bit i. i must be within Cap.
func (s Set) Add(i uint32) { s[i>>6] |= 1 << (i & 63) }

// Remove clears bit i. i must be within Cap.
func (s Set) Remove(i uint32) { s[i>>6] &^= 1 << (i & 63) }

// Has reports whether bit i is set. Indices past Cap are absent, not a
// panic — callers probe with indices minted after the set was sized.
func (s Set) Has(i uint32) bool {
	w := i >> 6
	return int(w) < len(s) && s[w]&(1<<(i&63)) != 0
}

// Reset clears every bit, keeping capacity.
func (s Set) Reset() { clear(s) }

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	if len(s) == 0 {
		return nil
	}
	cp := make(Set, len(s))
	copy(cp, s)
	return cp
}
