package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := Make(130)
	if s.Cap() < 130 {
		t.Fatalf("Cap = %d, want >= 130", s.Cap())
	}
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Remove(64) not visible")
	}
	s.Reset()
	if got := s.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d", got)
	}
}

func TestHasPastCap(t *testing.T) {
	var s Set
	if s.Has(7) {
		t.Fatal("zero-value set claims membership")
	}
	s = Make(10)
	if s.Has(1 << 20) {
		t.Fatal("probe past Cap claims membership")
	}
}

// Grow must preserve bits, and reusing freed capacity must not resurrect
// stale bits from a prior larger incarnation.
func TestGrowPreservesAndZeroes(t *testing.T) {
	s := Make(64)
	s.Add(3)
	s.Grow(256)
	if !s.Has(3) {
		t.Fatal("Grow dropped a bit")
	}
	s.Add(200)
	// Shrink the view of the slice, then regrow into existing capacity.
	s = s[:1]
	s.Grow(256)
	if s.Has(200) {
		t.Fatal("Grow into retained capacity resurrected a stale bit")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := Make(64)
	s.Add(5)
	cp := s.Clone()
	s.Add(6)
	if cp.Has(6) {
		t.Fatal("clone shares storage")
	}
	if !cp.Has(5) {
		t.Fatal("clone missing bit")
	}
	if Set(nil).Clone() != nil {
		t.Fatal("empty clone should be nil")
	}
}

// Randomized cross-check against a map reference.
func TestAgainstMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 2000
	s := Make(n)
	ref := map[uint32]bool{}
	for step := 0; step < 10000; step++ {
		i := uint32(rng.Intn(n))
		if rng.Intn(3) == 0 {
			s.Remove(i)
			delete(ref, i)
		} else {
			s.Add(i)
			ref[i] = true
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, ref %d", s.Count(), len(ref))
	}
	for i := uint32(0); i < n; i++ {
		if s.Has(i) != ref[i] {
			t.Fatalf("bit %d: set %v, ref %v", i, s.Has(i), ref[i])
		}
	}
}
