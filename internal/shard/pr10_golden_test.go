package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"videorec"
	"videorec/internal/community"
)

// TestUpdateGoldenFile pins the observable behavior of the user-interest
// graph write path — partitions, update summaries, recommendation rankings,
// and the edge lists that reach the journal wire format — against a
// checked-in golden file. TestShardGolden proves router ≡ single engine at
// one point in time; this test additionally proves the CURRENT
// implementation ≡ the implementation that generated the file, so a graph
// rewrite (e.g. the map-adjacency → CSR move) can demonstrate bit-identity
// across releases, not just across shard counts.
//
// Everything hashed here is exact: float64 score and weight bits go into
// the hashes via math.Float64bits, so a single ULP of drift anywhere in
// derive → sum → maintain → re-vectorize → rank fails the test.
//
// Regenerate (only when an intentional behavior change is being made):
//
//	REGEN_PR10_GOLDEN=1 go test ./internal/shard/ -run UpdateGoldenFile
const pr10GoldenPath = "testdata/pr10_updates.json"

type pr10Summary struct {
	NewConnections     int `json:"newConnections"`
	Unions             int `json:"unions"`
	Splits             int `json:"splits"`
	UsersMoved         int `json:"usersMoved"`
	VideosRevectorized int `json:"videosRevectorized"`
}

type pr10Step struct {
	Op        string       `json:"op"`
	Summary   *pr10Summary `json:"summary,omitempty"`
	Dim       int          `json:"dim"`
	Partition string       `json:"partition"`          // fnv64a over the sorted assignment + K/Dim/w bits
	Edges     string       `json:"edges,omitempty"`    // fnv64a over the globally summed edge list (journal payload)
	Rankings  []string     `json:"rankings,omitempty"` // per probe query: "id:fnv64a(results)"
}

type pr10Golden struct {
	Scenarios map[string][]pr10Step `json:"scenarios"`
	Journals  map[string]string     `json:"journals"` // shard journal file → fnv64a of its bytes
}

// pr10AssignMap extracts the partition's user → sub-community assignment as
// a plain map. Isolated in one helper so a partition-representation change
// only touches this line while the golden hashes stay byte-identical.
func pr10AssignMap(p *community.Partition) map[string]int {
	return p.AssignMap()
}

func pr10Partition(e *videorec.Engine) *community.Partition {
	view, _ := e.CurrentView()
	return view.Partition()
}

func pr10PartitionHash(e *videorec.Engine) string {
	p := pr10Partition(e)
	if p == nil {
		return "unbuilt"
	}
	assign := pr10AssignMap(p)
	users := make([]string, 0, len(assign))
	for u := range assign {
		users = append(users, u)
	}
	sort.Strings(users)
	h := fnv.New64a()
	fmt.Fprintf(h, "K=%d Dim=%d w=%016x\n", p.K, p.Dim, math.Float64bits(p.LightestIntra))
	for _, u := range users {
		fmt.Fprintf(h, "%s=%d\n", u, assign[u])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func pr10EdgesHash(edges []community.Edge) string {
	h := fnv.New64a()
	for _, e := range edges {
		fmt.Fprintf(h, "%s|%s|%016x\n", e.U, e.V, math.Float64bits(e.W))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func pr10Rankings(t *testing.T, r *Router, queries []string, skip map[string]bool) []string {
	t.Helper()
	out := make([]string, 0, len(queries))
	for _, id := range queries {
		if skip[id] {
			continue
		}
		res, _, err := r.RecommendCtx(context.Background(), id, 10)
		if err != nil {
			t.Fatalf("recommend %s: %v", id, err)
		}
		h := fnv.New64a()
		for _, r := range res {
			fmt.Fprintf(h, "%s:%016x:%016x:%016x\n", r.VideoID,
				math.Float64bits(r.Score), math.Float64bits(r.Content), math.Float64bits(r.Social))
		}
		out = append(out, fmt.Sprintf("%s:%016x", id, h.Sum64()))
	}
	return out
}

// pr10DeriveGlobal reproduces the derive+sum half of Router.ApplyUpdates
// without mutating anything: the edge list every shard is about to journal
// and apply. Derivation is a pure read of descriptors, so hashing it before
// the apply observes exactly what the apply will use.
func pr10DeriveGlobal(t *testing.T, r *Router, batch map[string][]string) []community.Edge {
	t.Helper()
	s := r.set()
	parts := make([][]community.Edge, len(s.engines))
	for i, e := range s.engines {
		p, err := e.DeriveConnections(batch)
		if err != nil {
			t.Fatalf("derive shard %d: %v", i, err)
		}
		parts[i] = p
	}
	return videorec.MergeConnections(parts...)
}

func pr10Scenario(t *testing.T, f *fixture, strat videorec.Strategy, n int, journalDir string) ([]pr10Step, map[string]string) {
	t.Helper()
	r, err := New(n, videorec.Options{Strategy: strat, RefineWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, f, r.Add)
	if journalDir != "" {
		if err := r.AttachJournals(filepath.Join(journalDir, "journal")); err != nil {
			t.Fatal(err)
		}
	}
	r.Build()

	queries := f.queries
	if len(queries) > 4 {
		queries = queries[:4]
	}
	isQuery := map[string]bool{}
	for _, q := range queries {
		isQuery[q] = true
	}
	shard0 := func() *videorec.Engine { return r.set().engines[0] }

	var steps []pr10Step
	record := func(op string, sum *pr10Summary, edges string, skip map[string]bool) {
		steps = append(steps, pr10Step{
			Op:        op,
			Summary:   sum,
			Dim:       r.SubCommunities(),
			Partition: pr10PartitionHash(shard0()),
			Edges:     edges,
			Rankings:  pr10Rankings(t, r, queries, skip),
		})
	}
	record("build", nil, "", nil)

	applyBatch := func(op string, batch map[string][]string) {
		edges := pr10DeriveGlobal(t, r, batch)
		sum, err := r.ApplyUpdates(batch)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		record(op, &pr10Summary{
			NewConnections:     sum.NewConnections,
			Unions:             sum.Unions,
			Splits:             sum.Splits,
			UsersMoved:         sum.UsersMoved,
			VideosRevectorized: sum.VideosRevectorized,
		}, pr10EdgesHash(edges), nil)
	}
	apply := func(op string, month int) { applyBatch(op, f.updateBatch(month)) }

	src := f.col.Opts.MonthsSource
	apply("update1", src)

	// Remove a non-query clip, then re-ingest it and rebuild — the partition
	// must survive the removal and the rebuild must reproduce the
	// from-scratch extraction.
	var victim videorec.Clip
	for _, c := range f.clips {
		if !isQuery[c.ID] {
			victim = c
			break
		}
	}
	if err := r.Remove(victim.ID); err != nil {
		t.Fatal(err)
	}
	record("remove", nil, "", map[string]bool{victim.ID: true})
	if err := r.Add(victim); err != nil {
		t.Fatal(err)
	}
	r.Build()
	record("re-ingest", nil, "", nil)

	apply("update2", src+1)
	apply("update3", src+2)

	// The organic monthly batches never carry a single edge heavier than the
	// extraction-time lightest intra-community weight, so steps 2–3 of the
	// maintenance algorithm (union + compensating split) would go unpinned.
	// Force them: pick pairs of users from different sub-communities and have
	// each pair co-comment on a block of videos, giving the derived batch
	// edge a weight equal to the block size — far above the union threshold.
	assign := pr10AssignMap(pr10Partition(shard0()))
	users := make([]string, 0, len(assign))
	for u := range assign {
		users = append(users, u)
	}
	sort.Strings(users)
	unionBatch := map[string][]string{}
	vi := 0
	for pair := 0; pair < 3 && vi+8 <= len(f.clips); pair++ {
		uA := users[pair*7%len(users)]
		uB := ""
		for _, u := range users {
			if assign[u] != assign[uA] {
				uB = u
				break
			}
		}
		if uB == "" {
			break
		}
		for j := 0; j < 8; j++ {
			id := f.clips[vi].ID
			unionBatch[id] = append(unionBatch[id], uA, uB)
			vi++
		}
	}
	applyBatch("forced-union", unionBatch)
	apply("post-union", src)

	journals := map[string]string{}
	if journalDir != "" {
		if err := r.CloseJournal(); err != nil {
			t.Fatal(err)
		}
		files, err := filepath.Glob(filepath.Join(journalDir, "*"))
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(files)
		for _, path := range files {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			h := fnv.New64a()
			h.Write(data)
			journals[filepath.Base(path)] = fmt.Sprintf("%016x", h.Sum64())
		}
	}
	return steps, journals
}

func TestUpdateGoldenFile(t *testing.T) {
	f := loadFixture(t, 21)
	got := pr10Golden{Scenarios: map[string][]pr10Step{}, Journals: map[string]string{}}
	for _, strat := range []videorec.Strategy{videorec.SARWithHashing, videorec.SAR, videorec.ExactSocial} {
		for _, n := range []int{1, 4} {
			key := fmt.Sprintf("%s/shards=%d", stratName(strat), n)
			// The sarhash/4 run doubles as the journal-bytes pin: every shard
			// journals the globally summed edge list in the v3 wire format,
			// and the file hashes must not move under a graph rewrite.
			dir := ""
			if strat == videorec.SARWithHashing && n == 4 {
				dir = t.TempDir()
			}
			steps, journals := pr10Scenario(t, f, strat, n, dir)
			got.Scenarios[key] = steps
			for name, h := range journals {
				got.Journals[name] = h
			}
		}
	}

	if os.Getenv("REGEN_PR10_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(pr10GoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(pr10GoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", pr10GoldenPath)
		return
	}

	data, err := os.ReadFile(pr10GoldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with REGEN_PR10_GOLDEN=1 to generate): %v", err)
	}
	var want pr10Golden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for key, wantSteps := range want.Scenarios {
		gotSteps := got.Scenarios[key]
		if len(gotSteps) != len(wantSteps) {
			t.Fatalf("%s: %d steps, want %d", key, len(gotSteps), len(wantSteps))
		}
		for i, ws := range wantSteps {
			gs := gotSteps[i]
			wj, _ := json.Marshal(ws)
			gj, _ := json.Marshal(gs)
			if string(wj) != string(gj) {
				t.Errorf("%s step %d (%s) diverged\n got: %s\nwant: %s", key, i, ws.Op, gj, wj)
			}
		}
	}
	for name, wantHash := range want.Journals {
		if got.Journals[name] != wantHash {
			t.Errorf("journal %s hash = %s, want %s (wire bytes changed!)", name, got.Journals[name], wantHash)
		}
	}
	if len(got.Scenarios) != len(want.Scenarios) || len(got.Journals) != len(want.Journals) {
		t.Errorf("scenario/journal count mismatch: got %d/%d, want %d/%d",
			len(got.Scenarios), len(got.Journals), len(want.Scenarios), len(want.Journals))
	}
}
