package shard

import (
	"context"
	"errors"
	"testing"

	"videorec"
	"videorec/internal/faults"
)

// requireAnswerEqualsSerial asserts one batch answer matches the serial
// router answer for the same (id, k) — results, degraded flag and
// shard accounting all equal.
func requireAnswerEqualsSerial(t *testing.T, r *Router, id string, k int, a videorec.BatchAnswer) {
	t.Helper()
	want, wantMeta, wantErr := r.RecommendCtx(context.Background(), id, k)
	if (wantErr == nil) != (a.Err == nil) {
		t.Fatalf("query %s: serial err %v, batch err %v", id, wantErr, a.Err)
	}
	if wantErr != nil {
		return
	}
	if a.Meta.Degraded != wantMeta.Degraded || a.Meta.ShardsFailed != wantMeta.ShardsFailed || a.Meta.ShardsTotal != wantMeta.ShardsTotal {
		t.Fatalf("query %s: meta differs: serial %+v, batch %+v", id, wantMeta, a.Meta)
	}
	if len(a.Results) != len(want) {
		t.Fatalf("query %s: serial %d results, batch %d", id, len(want), len(a.Results))
	}
	for i := range want {
		if a.Results[i] != want[i] {
			t.Fatalf("query %s rank %d differs\nserial: %+v\nbatch:  %+v", id, i, want[i], a.Results[i])
		}
	}
}

// A batched fan-out must answer every query bit-identically to serial
// scatter-gather calls through the same router — across shard counts,
// strategies, and with duplicate requests deduplicated inside the batch.
func TestShardBatchGolden(t *testing.T) {
	f := loadFixture(t, 21)
	for _, strat := range []videorec.Strategy{videorec.SARWithHashing, videorec.ExactSocial} {
		for _, n := range []int{1, 4} {
			r := buildRouter(t, f, n, videorec.Options{Strategy: strat})
			reqs := make([]videorec.BatchRequest, 0, len(f.queries)+2)
			for _, id := range f.queries {
				reqs = append(reqs, videorec.BatchRequest{ClipID: id, TopK: 10})
			}
			// Duplicates of the first query, one at a different K.
			reqs = append(reqs,
				videorec.BatchRequest{ClipID: f.queries[0], TopK: 10},
				videorec.BatchRequest{ClipID: f.queries[0], TopK: 5},
			)
			answers := r.RecommendBatchCtx(context.Background(), reqs)
			for i, a := range answers {
				requireAnswerEqualsSerial(t, r, reqs[i].ClipID, reqs[i].TopK, a)
			}
		}
	}
}

// A batch member whose own context is dead settles with that error; its
// cohort still gets bit-identical answers. An unknown clip fails only its
// own request.
func TestShardBatchMemberIsolation(t *testing.T) {
	f := loadFixture(t, 21)
	r := buildRouter(t, f, 4, videorec.Options{})
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []videorec.BatchRequest{
		{ClipID: f.queries[0], TopK: 10},
		{ClipID: f.queries[1], TopK: 10, Ctx: dead},
		{ClipID: "no-such-clip", TopK: 10},
		{ClipID: f.queries[2], TopK: 10},
	}
	answers := r.RecommendBatchCtx(context.Background(), reqs)
	if !errors.Is(answers[1].Err, context.Canceled) {
		t.Fatalf("cancelled member: err %v, want context.Canceled", answers[1].Err)
	}
	if !errors.Is(answers[2].Err, videorec.ErrNotFound) {
		t.Fatalf("unknown clip: err %v, want ErrNotFound", answers[2].Err)
	}
	for _, i := range []int{0, 3} {
		if answers[i].Err != nil {
			t.Fatalf("survivor %s: %v", reqs[i].ClipID, answers[i].Err)
		}
		requireAnswerEqualsSerial(t, r, reqs[i].ClipID, reqs[i].TopK, answers[i])
	}
}

// Batching composes with PR7's partial answers: with one shard failing and
// quorum allowing it, every batched query gets the same partial, degraded
// merge the serial fan-out produces; with strict quorum every query fails
// with ErrQuorum.
func TestShardBatchPartialAndQuorum(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	r := buildRouter(t, f, 4, videorec.Options{})
	faults.Arm(SiteForShard(FaultFanOut, 1), faults.Error(nil))

	// Strict quorum (all shards required): every query loses.
	reqs := make([]videorec.BatchRequest, 0, len(f.queries))
	for _, id := range f.queries {
		reqs = append(reqs, videorec.BatchRequest{ClipID: id, TopK: 10})
	}
	for _, a := range r.RecommendBatchCtx(context.Background(), reqs) {
		if !errors.Is(a.Err, ErrQuorum) {
			t.Fatalf("strict quorum: err %v, want ErrQuorum", a.Err)
		}
	}

	// Tolerant quorum: partial answers, identical to serial partials.
	r.SetResilience(Resilience{MinShardQuorum: 3})
	answers := r.RecommendBatchCtx(context.Background(), reqs)
	for i, a := range answers {
		if a.Err != nil {
			t.Fatalf("partial %s: %v", reqs[i].ClipID, a.Err)
		}
		if !a.Meta.Degraded || a.Meta.ShardsFailed != 1 || a.Meta.ShardsTotal != 4 {
			t.Fatalf("partial %s: meta %+v, want degraded with 1/4 shards failed", reqs[i].ClipID, a.Meta)
		}
		requireAnswerEqualsSerial(t, r, reqs[i].ClipID, reqs[i].TopK, a)
	}

	// The failing shard's breaker accumulated evidence once per batch, and
	// its dispatch counter moved.
	if fails, _, _ := r.FaultCounters(); fails == 0 {
		t.Fatal("no shard failures recorded")
	}
	dispatches := r.BatchDispatches()
	if len(dispatches) != 4 || dispatches[0] == 0 {
		t.Fatalf("batch dispatch counters %v, want 4 shards with shard 0 > 0", dispatches)
	}
}
