package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"videorec"
	"videorec/internal/dataset"
	"videorec/internal/video"
)

// The golden suite: an N-shard router must return bit-identical rankings to
// a single engine holding the whole corpus — same ids, same fused scores,
// same component relevances — across every strategy, serial and parallel
// refinement, and through the whole lifecycle: build, incremental updates,
// remove, re-ingest, and shard drain. The corpus is sized so the per-shard
// candidate budgets never bind (the regime where the scatter-gather merge
// is provably exact; see the package comment).

// fixture is the shared corpus: clips prepared once (signature extraction
// dominates ingest cost) and replayed into every engine and router under
// test, plus the comment timeline the update phases draw from.
type fixture struct {
	clips   []videorec.Clip
	queries []string
	col     *dataset.Collection
}

var fixtures = map[int64]*fixture{}

func loadFixture(t testing.TB, seed int64) *fixture {
	t.Helper()
	if f, ok := fixtures[seed]; ok {
		return f
	}
	o := dataset.DefaultOptions()
	o.Hours = 3
	o.Users = 120
	o.Seed = seed
	col := dataset.Generate(o)
	f := &fixture{col: col}
	for _, it := range col.Items {
		v := it.Render(o.Synth)
		var commenters []string
		for _, cm := range it.Comments {
			if cm.Month < o.MonthsSource {
				commenters = append(commenters, cm.User)
			}
		}
		f.clips = append(f.clips, clipFrom(v, it.ID, it.Owner, commenters))
	}
	for _, q := range col.Queries {
		f.queries = append(f.queries, q.Sources...)
	}
	if len(f.queries) > 8 {
		f.queries = f.queries[:8]
	}
	fixtures[seed] = f
	return f
}

func clipFrom(v *video.Video, id, owner string, commenters []string) videorec.Clip {
	c := videorec.Clip{
		ID:             id,
		FPS:            v.FPS,
		NominalSeconds: v.NominalSeconds,
		Owner:          owner,
		Commenters:     commenters,
	}
	for _, f := range v.Frames {
		c.Frames = append(c.Frames, videorec.Frame{W: f.W, H: f.H, Pix: append([]float64(nil), f.Pix...)})
	}
	return c
}

// updateBatch collects the comments of one test-period month, the natural
// incremental-maintenance payload.
func (f *fixture) updateBatch(month int) map[string][]string {
	out := map[string][]string{}
	for _, it := range f.col.Items {
		for _, cm := range it.Comments {
			if cm.Month == month {
				out[it.ID] = append(out[it.ID], cm.User)
			}
		}
	}
	return out
}

func ingestAll(t testing.TB, f *fixture, add func(videorec.Clip) error) {
	t.Helper()
	for _, c := range f.clips {
		if err := add(c); err != nil {
			t.Fatalf("add %s: %v", c.ID, err)
		}
	}
}

// requireSameRankings asserts every sampled query ranks identically on the
// reference engine and the router — exact float equality, not tolerance:
// the claim is bit-identity.
func requireSameRankings(t *testing.T, phase string, ref *videorec.Engine, r *Router, queries []string, skip map[string]bool) {
	t.Helper()
	ctx := context.Background()
	for _, id := range queries {
		if skip[id] {
			continue
		}
		want, wantMeta, err1 := ref.RecommendCtx(ctx, id, 10)
		got, gotMeta, err2 := r.RecommendCtx(ctx, id, 10)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: query %s: reference err %v, router err %v", phase, id, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if wantMeta.Degraded || gotMeta.Degraded {
			t.Fatalf("%s: query %s degraded without a deadline", phase, id)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: query %s: reference returned %d results, router %d\nref: %v\ngot: %v",
				phase, id, len(want), len(got), want, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: query %s: rank %d differs\nref: %+v\ngot: %+v",
					phase, id, i, want[i], got[i])
			}
		}
	}
}

func shardCounts(short bool) []int {
	if short {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 16}
}

func strategies(short bool) []videorec.Strategy {
	if short {
		return []videorec.Strategy{videorec.SARWithHashing, videorec.ExactSocial}
	}
	return []videorec.Strategy{videorec.SARWithHashing, videorec.SAR, videorec.ExactSocial}
}

func stratName(s videorec.Strategy) string {
	switch s {
	case videorec.SAR:
		return "sar"
	case videorec.ExactSocial:
		return "exact"
	default:
		return "sarhash"
	}
}

func TestShardGolden(t *testing.T) {
	f := loadFixture(t, 21)
	for _, strat := range strategies(testing.Short()) {
		strat := strat
		t.Run(stratName(strat), func(t *testing.T) {
			for _, workers := range []int{1, 0} {
				if workers == 0 && testing.Short() {
					continue
				}
				workers := workers
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					refOpts := videorec.Options{Strategy: strat, RefineWorkers: workers}
					for _, n := range shardCounts(testing.Short()) {
						n := n
						t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
							runGoldenLifecycle(t, f, refOpts, n)
						})
					}
				})
			}
		})
	}
}

// runGoldenLifecycle drives one router through build → update → remove →
// re-ingest → update → drain → update, comparing rankings against a
// reference engine taken through the same mutations (except the drain,
// which must not change rankings at all — the reference doubles as the
// from-scratch build the post-drain state must match).
func runGoldenLifecycle(t *testing.T, f *fixture, opts videorec.Options, n int) {
	ref := videorec.New(opts)
	ingestAll(t, f, ref.Add)
	ref.Build()

	r, err := New(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, f, r.Add)
	r.Build()

	if got, want := r.Len(), ref.Len(); got != want {
		t.Fatalf("router holds %d videos, reference %d", got, want)
	}
	requireSameRankings(t, "build", ref, r, f.queries, nil)

	src := f.col.Opts.MonthsSource
	batch1 := f.updateBatch(src)
	if _, err := ref.ApplyUpdates(batch1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyUpdates(batch1); err != nil {
		t.Fatal(err)
	}
	requireSameRankings(t, "update1", ref, r, f.queries, nil)

	// Remove a non-query video, compare, then re-ingest it and rebuild.
	victim := ""
	isQuery := map[string]bool{}
	for _, q := range f.queries {
		isQuery[q] = true
	}
	var victimClip videorec.Clip
	for _, c := range f.clips {
		if !isQuery[c.ID] {
			victim, victimClip = c.ID, c
			break
		}
	}
	if err := ref.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(victim); err != nil {
		t.Fatal(err)
	}
	requireSameRankings(t, "remove", ref, r, f.queries, nil)

	if err := ref.Add(victimClip); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(victimClip); err != nil {
		t.Fatal(err)
	}
	ref.Build()
	r.Build()
	requireSameRankings(t, "re-ingest", ref, r, f.queries, nil)

	batch2 := f.updateBatch(src + 1)
	if _, err := ref.ApplyUpdates(batch2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyUpdates(batch2); err != nil {
		t.Fatal(err)
	}
	requireSameRankings(t, "update2", ref, r, f.queries, nil)

	if n > 1 {
		// Drain the middle shard: the corpus is unchanged, so rankings must
		// still match the reference — which never drained anything and is
		// therefore exactly the from-scratch build of the same corpus.
		moved, err := r.DrainShard(n / 2)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumShards() != n-1 {
			t.Fatalf("after drain: %d shards, want %d", r.NumShards(), n-1)
		}
		if got, want := r.Len(), ref.Len(); got != want {
			t.Fatalf("after drain moved=%d: router holds %d videos, reference %d", moved, got, want)
		}
		requireSameRankings(t, "drain", ref, r, f.queries, nil)

		batch3 := f.updateBatch(src + 2)
		if _, err := ref.ApplyUpdates(batch3); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ApplyUpdates(batch3); err != nil {
			t.Fatal(err)
		}
		requireSameRankings(t, "update3", ref, r, f.queries, nil)
	}
}

// TestShardGoldenAdHoc pins the ad-hoc (clip not in the collection) path:
// the query is assembled once and fanned out, and the merged ranking must
// match the single-engine answer exactly.
func TestShardGoldenAdHoc(t *testing.T) {
	f := loadFixture(t, 21)
	opts := videorec.Options{}
	ref := videorec.New(opts)
	ingestAll(t, f, ref.Add)
	ref.Build()
	for _, n := range shardCounts(testing.Short()) {
		r, err := New(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, f, r.Add)
		r.Build()
		probe := f.clips[len(f.clips)/2]
		probe.ID = "ad-hoc-probe"
		want, _, err1 := ref.RecommendClipCtx(context.Background(), probe, 10)
		got, _, err2 := r.RecommendClipCtx(context.Background(), probe, 10)
		if err1 != nil || err2 != nil {
			t.Fatalf("shards=%d: errors %v / %v", n, err1, err2)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d results, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: rank %d differs\nref: %+v\ngot: %+v", n, i, want[i], got[i])
			}
		}
	}
}

// TestShardDrainFromScratch pins the ISSUE's drain guarantee in its
// strongest form: drain a freshly built deployment (no incremental updates
// yet) and the rankings must match a from-scratch single-engine build of
// the same corpus — relocation changes placement, never scores.
func TestShardDrainFromScratch(t *testing.T) {
	f := loadFixture(t, 21)
	scratch := videorec.New(videorec.Options{})
	ingestAll(t, f, scratch.Add)
	scratch.Build()
	for _, n := range []int{2, 4} {
		r, err := New(n, videorec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, f, r.Add)
		r.Build()
		if _, err := r.DrainShard(n - 1); err != nil {
			t.Fatal(err)
		}
		requireSameRankings(t, fmt.Sprintf("from-scratch drain n=%d", n), scratch, r, f.queries, nil)
	}
}

func TestRouterErrors(t *testing.T) {
	if _, err := New(0, videorec.Options{}); !errors.Is(err, ErrNoShards) {
		t.Errorf("New(0): %v", err)
	}
	r, err := New(2, videorec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.RecommendCtx(context.Background(), "x", 5); !errors.Is(err, videorec.ErrNotBuilt) {
		t.Errorf("before Build: %v", err)
	}
	f := loadFixture(t, 21)
	ingestAll(t, f, r.Add)
	r.Build()
	if _, _, err := r.RecommendCtx(context.Background(), "no-such", 5); !errors.Is(err, videorec.ErrNotFound) {
		t.Errorf("unknown id: %v", err)
	}
	if err := r.Remove("no-such"); !errors.Is(err, videorec.ErrNotFound) {
		t.Errorf("remove unknown: %v", err)
	}
	if _, err := r.DrainShard(5); err == nil {
		t.Error("drain of out-of-range shard succeeded")
	}
	if _, err := r.DrainShard(0); err != nil {
		t.Fatalf("drain shard 0: %v", err)
	}
	if _, err := r.DrainShard(0); !errors.Is(err, ErrLastShard) {
		t.Errorf("drain last shard: %v", err)
	}
}

func TestRouterVersionFingerprint(t *testing.T) {
	f := loadFixture(t, 21)
	r, err := New(4, videorec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, f, r.Add)
	r.Build()
	v1 := r.Version()
	if _, err := r.ApplyUpdates(f.updateBatch(f.col.Opts.MonthsSource)); err != nil {
		t.Fatal(err)
	}
	v2 := r.Version()
	if v1 == v2 {
		t.Error("fingerprint unchanged across an update")
	}
	if _, err := r.DrainShard(1); err != nil {
		t.Fatal(err)
	}
	if v3 := r.Version(); v3 == v2 {
		t.Error("fingerprint unchanged across a drain")
	}
}
