// Package shard partitions the corpus across N independent engines and
// serves queries by scatter-gather: each shard owns a hash slice of the
// videos — its own dense id table, posting lists, LSB trees, journal and
// COW view — and a query fans out to every shard's published view in
// parallel, with the per-shard top-K merged under the engine's (score desc,
// id asc) total order.
//
// The merged ranking is bit-identical to a single engine holding the whole
// corpus. Two properties carry that guarantee:
//
//   - The social machinery is global. Build unions every shard's capped
//     audience map and hands the same map to each shard, whose deterministic
//     construction (sorted graph assembly, sorted edge extraction) yields
//     identical user-interest-graph, partition, hash-table and dictionary
//     copies. Updates likewise derive per-shard edge slices, sum them into
//     the exact whole-corpus edge list, and apply that list to every shard's
//     copy — so all copies evolve in lockstep and per-shard SAR scores equal
//     single-engine SAR scores.
//
//   - Scoring is pointwise. A candidate's fused FJ depends only on the query
//     and its own record (plus the shared social machinery), never on which
//     other videos share its shard; each shard's local top-K therefore
//     contains every global winner stored there, and the merge selects
//     exactly the single-engine ranking.
//
// One honest caveat: when the per-shard candidate budgets (ContentProbe,
// CandidateLimit) bind, each shard refines a full budget of its own
// candidates, so the sharded gather covers a superset of the single-engine
// candidate set — recall can only improve, but a ranking assembled from a
// larger refined pool may differ from the budget-starved single-engine one.
// Exact and exhaustive-search modes never use budgets and are always
// bit-identical. The golden tests pin the unbound regime.
package shard

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"videorec"
	"videorec/internal/community"
	"videorec/internal/core"
	"videorec/internal/faults"
	"videorec/internal/topk"
)

// Fault-injection sites inside the scatter-gather path. The per-shard form
// (SiteForShard) lets a test or drill arm exactly one shard — the realistic
// failure shape: one machine is slow or down, not the whole fleet.
const (
	// FaultFanOut fires once per shard per query, before the shard's view is
	// consulted — arm it with Error to fail a shard's answers outright, or
	// with PanicEvery to crash inside the fan-out goroutine (the router
	// recovers the panic into a shard failure).
	FaultFanOut = "shard.fanout"
	// FaultFanOutSlow fires immediately after FaultFanOut — arm it with
	// Latency to make a shard slow enough to blow its per-shard budget.
	// It is a separate site so a drill can combine a fleet-wide error rate
	// with slowness on one shard.
	FaultFanOutSlow = "shard.fanout.slow"
	// FaultDrainAdd fires before each re-homed record is added to a survivor
	// during DrainShard — the mid-drain ingest failure the transactional
	// rollback must survive.
	FaultDrainAdd = "shard.drain.add"
	// FaultDrainReindex fires before each survivor's post-drain Reindex —
	// the late drain failure: every record already moved, index rebuild fails.
	FaultDrainReindex = "shard.drain.reindex"
)

// SiteForShard narrows a fan-out fault site to one shard index:
// SiteForShard(FaultFanOut, 2) = "shard.fanout.2". Both the generic and the
// per-shard site fire on every hit, so tests can arm either granularity.
func SiteForShard(site string, i int) string {
	return site + "." + strconv.Itoa(i)
}

// Resilience tunes the router's fault-tolerance machinery. The zero value
// enables the circuit breaker at its defaults, requires every shard to
// answer (no partial results), and derives no per-shard budget — the
// behavior matching a deployment that has not opted into degraded answers.
type Resilience struct {
	// ShardMargin is the headroom reserved from the request deadline for the
	// merge: each shard's fan-out call runs under (deadline − margin), so one
	// stuck shard exhausts its own budget — becoming a shard failure the
	// quorum logic can tolerate — while the router still has margin left to
	// merge the survivors and answer inside the request deadline. 0 disables
	// budgets: a stuck shard then rides the request deadline itself.
	ShardMargin time.Duration
	// MinShardQuorum is the minimum number of shards that must answer for a
	// query to succeed. <= 0 requires every shard (any failure fails the
	// query — the strict default); n >= 1 tolerates failures down to n
	// surviving shards, returning the merged partial ranking marked
	// Degraded with ShardsFailed/ShardsTotal set. Below quorum the query
	// fails with ErrQuorum.
	MinShardQuorum int
	// BreakerThreshold is the consecutive-failure count that opens a shard's
	// circuit breaker. 0 uses the default (5); negative disables breakers.
	BreakerThreshold int
	// BreakerBackoff is the first open interval before a half-open probe;
	// it doubles on every failed probe. 0 uses the default (200ms).
	BreakerBackoff time.Duration
	// BreakerMaxBackoff caps the backoff growth. 0 uses the default (5s).
	BreakerMaxBackoff time.Duration
}

// Breaker defaults: open after 5 consecutive failures, probe after 200ms,
// cap the doubling at 5s.
const (
	defaultBreakerThreshold  = 5
	defaultBreakerBackoff    = 200 * time.Millisecond
	defaultBreakerMaxBackoff = 5 * time.Second
)

// quorum resolves the minimum surviving-shard count for n live shards.
func (res *Resilience) quorum(n int) int {
	if res.MinShardQuorum <= 0 {
		return n
	}
	if res.MinShardQuorum > n {
		return n
	}
	return res.MinShardQuorum
}

// ErrQuorum reports a query that lost too many shards: fewer than
// MinShardQuorum answered, so even a partial ranking would be misleading.
// The serving layer maps it to 503 + Retry-After — the shards may be
// recovering behind their breakers.
var ErrQuorum = errors.New("shard: quorum lost")

// Router is the scatter-gather front of a sharded deployment. It satisfies
// the same serving surface as *videorec.Engine (the server's Backend), so a
// deployment scales from one shard to N without touching handlers.
//
// Reads are lock-free: they load the current shard set through an atomic
// pointer and run against each shard's immutable view. Mutations serialize
// behind the router mutex and then behind each shard's own writer lock.
type Router struct {
	mu  sync.Mutex // serializes mutations, build, drain and journal management
	cur atomic.Pointer[shardSet]
	res atomic.Pointer[Resilience]

	// Fault-tolerance counters, monotonic across topology changes (per-shard
	// breakers reset when the topology is republished; these never do).
	shardFailTotal   atomic.Uint64 // shard calls that errored, timed out or panicked
	breakerOpenTotal atomic.Uint64 // closed/half-open → open transitions
	quorumLostTotal  atomic.Uint64 // queries failed because too few shards answered
}

// shardSet is one immutable generation of the shard topology. Drain and add
// publish a new set; in-flight readers keep the set they loaded.
type shardSet struct {
	engines  []*videorec.Engine
	breakers []*breaker // one per engine; reset with the topology
	// batchDispatched counts batched fan-out dispatches per shard — how many
	// whole-batch calls each shard's view has executed. Like the breakers it
	// resets when the topology is republished; /stats surfaces it per shard.
	batchDispatched []atomic.Uint64
	// epoch counts topology changes (drain, add). It feeds the version
	// fingerprint so a query served by an old topology never shares a cache
	// key with one served by the new.
	epoch uint64
}

// ErrNoShards reports a Router constructed with no engines.
var ErrNoShards = errors.New("shard: router needs at least one shard")

// ErrLastShard reports an attempt to drain the only remaining shard.
var ErrLastShard = errors.New("shard: cannot drain the last shard")

// New creates a router over n fresh engines sharing one configuration. The
// Options' ShardMargin and MinShardQuorum seed the router's Resilience;
// breaker tuning goes through SetResilience.
func New(n int, opts videorec.Options) (*Router, error) {
	if n <= 0 {
		return nil, ErrNoShards
	}
	engines := make([]*videorec.Engine, n)
	for i := range engines {
		engines[i] = videorec.New(opts)
	}
	r, err := NewFromEngines(engines)
	if err != nil {
		return nil, err
	}
	if opts.ShardMargin != 0 || opts.MinShardQuorum != 0 {
		r.SetResilience(Resilience{ShardMargin: opts.ShardMargin, MinShardQuorum: opts.MinShardQuorum})
	}
	return r, nil
}

// NewFromEngines creates a router over existing engines — the load and
// replica paths, where each shard engine was restored separately.
func NewFromEngines(engines []*videorec.Engine) (*Router, error) {
	if len(engines) == 0 {
		return nil, ErrNoShards
	}
	r := &Router{}
	r.res.Store(&Resilience{})
	r.cur.Store(r.newSet(append([]*videorec.Engine(nil), engines...), 0))
	return r, nil
}

// newSet assembles one topology generation with fresh breakers.
func (r *Router) newSet(engines []*videorec.Engine, epoch uint64) *shardSet {
	res := r.res.Load()
	breakers := make([]*breaker, len(engines))
	for i := range breakers {
		breakers[i] = newBreaker(*res)
	}
	return &shardSet{
		engines:         engines,
		breakers:        breakers,
		batchDispatched: make([]atomic.Uint64, len(engines)),
		epoch:           epoch,
	}
}

// SetResilience replaces the router's fault-tolerance configuration. Breaker
// state resets (the thresholds may have changed); the topology, its engines
// and the version fingerprint are untouched.
func (r *Router) SetResilience(res Resilience) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := res
	r.res.Store(&cp)
	s := r.set()
	r.cur.Store(r.newSet(s.engines, s.epoch))
}

// Resilience returns the router's current fault-tolerance configuration.
func (r *Router) Resilience() Resilience {
	return *r.res.Load()
}

// set loads the current shard topology.
func (r *Router) set() *shardSet { return r.cur.Load() }

// shardOf is the placement function: FNV-1a of the video id modulo the live
// shard count. Placement only decides where a video's record lives — scores
// are placement-independent — so after a drain resettles ids under a new
// modulus, rankings are unchanged.
func shardOf(id string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

// owner finds the shard currently holding id (drains can leave videos off
// their hash slot, so a miss on the hash shard falls back to scanning).
// Returns -1 when no shard has it.
func (s *shardSet) owner(id string) int {
	home := shardOf(id, len(s.engines))
	if view, _ := s.engines[home].CurrentView(); view.Has(id) {
		return home
	}
	for i, e := range s.engines {
		if i == home {
			continue
		}
		if view, _ := e.CurrentView(); view.Has(id) {
			return i
		}
	}
	return -1
}

// NumShards reports the live shard count.
func (r *Router) NumShards() int { return len(r.set().engines) }

// ShardEngine resolves a shard index to its engine — the serving layer's
// per-shard introspection hook (per-shard stats, replication endpoints).
func (r *Router) ShardEngine(i int) (*videorec.Engine, bool) {
	s := r.set()
	if i < 0 || i >= len(s.engines) {
		return nil, false
	}
	return s.engines[i], true
}

// Version returns a fingerprint of the serving state: an FNV-1a fold of the
// topology epoch and every shard's view version. Any mutation on any shard,
// and any topology change, yields a new fingerprint — the property
// version-keyed result caches need. Fingerprints identify states (equality
// keying); unlike a single engine's version they are not monotonic.
func (r *Router) Version() uint64 {
	s := r.set()
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], s.epoch)
	h.Write(buf[:])
	for _, e := range s.engines {
		_, v := e.CurrentView()
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Len returns the total number of stored clips across shards.
func (r *Router) Len() int {
	n := 0
	for _, e := range r.set().engines {
		n += e.Len()
	}
	return n
}

// Built reports whether every shard's published view is built.
func (r *Router) Built() bool {
	for _, e := range r.set().engines {
		if !e.Built() {
			return false
		}
	}
	return true
}

// SubCommunities returns the SAR dimensionality — identical on every shard,
// read from the first.
func (r *Router) SubCommunities() int {
	return r.set().engines[0].SubCommunities()
}

// GraphStats reports the user-interest graph size. Every shard maintains an
// identical replicated graph copy, so the first shard speaks for all.
func (r *Router) GraphStats() (users, edges, overlay int) {
	return r.set().engines[0].GraphStats()
}

// AppliedSeq returns the highest journal cursor across shards. Per-shard
// cursors advance independently (a batch touching no video of a shard whose
// edge list is also empty does not claim a sequence there); the maximum is
// the aggregate progress indicator.
func (r *Router) AppliedSeq() uint64 {
	var max uint64
	for _, e := range r.set().engines {
		if s := e.AppliedSeq(); s > max {
			max = s
		}
	}
	return max
}

// Add ingests a clip into its shard: extraction runs outside every lock,
// placement hashes the id, and only the owning shard takes its writer lock.
// A re-ingested id goes back to the shard already holding it, never to a
// second one.
func (r *Router) Add(clip videorec.Clip) error {
	p, err := r.set().engines[0].PrepareClip(clip)
	if err != nil {
		return err
	}
	return r.AddPrepared(p)
}

// AddPrepared routes an already-extracted clip to its shard — the zero-copy
// ingest path for callers (bulk loaders, benchmarks) that extract series and
// descriptors themselves.
func (r *Router) AddPrepared(p videorec.PreparedClip) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.set() // re-load under the mutex: a drain may have republished
	target := s.owner(p.ID)
	if target < 0 {
		target = shardOf(p.ID, len(s.engines))
	}
	return s.engines[target].AddPrepared(p)
}

// Remove deletes a stored clip from the shard holding it.
func (r *Router) Remove(clipID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.set()
	i := s.owner(clipID)
	if i < 0 {
		return fmt.Errorf("%w: %s", videorec.ErrNotFound, clipID)
	}
	return s.engines[i].Remove(clipID)
}

// Build constructs the social machinery globally: the union of every
// shard's audience map (disjoint by video — each video lives on one shard)
// is handed to every shard, which builds an identical partition copy over
// it in parallel.
func (r *Router) Build() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buildLocked(r.set())
}

func (r *Router) buildLocked(s *shardSet) {
	global := map[string][]string{}
	for _, e := range s.engines {
		for vid, aud := range e.Audiences() {
			global[vid] = aud
		}
	}
	var wg sync.WaitGroup
	for _, e := range s.engines {
		wg.Add(1)
		go func(e *videorec.Engine) {
			defer wg.Done()
			e.BuildFromAudiences(global)
		}(e)
	}
	wg.Wait()
}

// RecommendCtx answers a stored-clip query by scatter-gather: the owning
// shard's view supplies the query, every shard's view runs the unchanged
// gather/refine pipeline against it in parallel, and the per-shard top-K
// merge selects the global winners under (score desc, id asc). Degradation
// is sticky: if any shard answered coarse, the merged ranking is flagged
// degraded.
func (r *Router) RecommendCtx(ctx context.Context, clipID string, topK int) ([]videorec.Recommendation, videorec.RecommendMeta, error) {
	s := r.set()
	meta := videorec.RecommendMeta{ViewVersion: r.fingerprint(s)}
	views := make([]*core.View, len(s.engines))
	for i, e := range s.engines {
		views[i], _ = e.CurrentView()
		if !views[i].Built() {
			return nil, meta, videorec.ErrNotBuilt
		}
	}
	var q core.Query
	found := false
	for _, v := range views {
		if qq, ok := v.QueryFor(clipID); ok {
			q, found = qq, true
			break
		}
	}
	if !found {
		return nil, meta, fmt.Errorf("%w: %s", videorec.ErrNotFound, clipID)
	}
	if len(views) > 1 {
		// Key the query's content-index positions once; every shard's forest
		// shares the owner's fingerprint (one configuration), so the fan-out
		// skips per-shard re-embedding — the dominant fixed cost per shard.
		q = views[0].PrimeContentKeys(q)
	}
	return r.fanOut(ctx, s, views, q, topK, clipID, meta)
}

// RecommendClipCtx answers an ad-hoc-clip query: extraction and query
// assembly run once (all shards share one configuration), then the same
// scatter-gather as RecommendCtx.
func (r *Router) RecommendClipCtx(ctx context.Context, clip videorec.Clip, topK int) ([]videorec.Recommendation, videorec.RecommendMeta, error) {
	s := r.set()
	meta := videorec.RecommendMeta{ViewVersion: r.fingerprint(s)}
	q, err := s.engines[0].NewAdHocQuery(clip)
	if err != nil {
		return nil, meta, err
	}
	views := make([]*core.View, len(s.engines))
	for i, e := range s.engines {
		views[i], _ = e.CurrentView()
		if !views[i].Built() {
			return nil, meta, videorec.ErrNotBuilt
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, meta, err
	}
	if len(views) > 1 {
		q = views[0].PrimeContentKeys(q)
	}
	return r.fanOut(ctx, s, views, q, topK, clip.ID, meta)
}

// fingerprint is Version over an already-loaded shard set.
func (r *Router) fingerprint(s *shardSet) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], s.epoch)
	h.Write(buf[:])
	for _, e := range s.engines {
		_, v := e.CurrentView()
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// shardAnswer is one shard's contribution to a fan-out: its local top-K, or
// the reason it has none.
type shardAnswer struct {
	res     []core.Result
	info    core.RecommendInfo
	err     error
	probe   bool // this call was the shard's half-open breaker probe
	skipped bool // breaker open: the shard was never dispatched to
}

// errBreakerOpen marks a shard skipped because its circuit breaker is open.
var errBreakerOpen = errors.New("shard: circuit breaker open")

// callShard runs one shard's slice of the fan-out: fault sites first (the
// generic and the per-shard form of each), then the unchanged gather/refine
// pipeline against the shard's view. A panic anywhere inside becomes a
// shard failure instead of killing the process — with partial results, one
// crashing shard must degrade the answer, not the service.
func callShard(ctx context.Context, i int, v *core.View, q core.Query, topK int, exclude string) (res []core.Result, info core.RecommendInfo, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("shard: shard %d panicked: %v", i, p)
		}
	}()
	if err := faults.Inject(FaultFanOut); err != nil {
		return nil, info, err
	}
	if err := faults.Inject(SiteForShard(FaultFanOut, i)); err != nil {
		return nil, info, err
	}
	if err := faults.Inject(FaultFanOutSlow); err != nil {
		return nil, info, err
	}
	if err := faults.Inject(SiteForShard(FaultFanOutSlow, i)); err != nil {
		return nil, info, err
	}
	return v.RecommendCtx(ctx, q, topK, exclude)
}

// fanOut runs the query against every view in parallel and merges the
// per-shard rankings, tolerating per-shard failure:
//
//   - every shard call runs under the per-shard budget (request deadline
//     minus Resilience.ShardMargin), so a stuck shard times out while the
//     router still has margin to merge the survivors;
//   - a shard whose breaker is open is skipped outright — its recent history
//     says the call would fail anyway, and skipping is free;
//   - shard failures (error, budget timeout, panic, open breaker) drop that
//     shard's list from the merge; as long as at least
//     Resilience.MinShardQuorum shards answered, the merged partial ranking
//     is returned marked Degraded with ShardsFailed/ShardsTotal set.
//
// A dead parent context is never a shard failure: the query returns
// ctx.Err() so the serving layer maps it to 499/504, and no breaker is
// penalized for a client that walked away — though an in-flight half-open
// probe is settled back to open (backoff unchanged) so the breaker is not
// stuck refusing its shard.
func (r *Router) fanOut(ctx context.Context, s *shardSet, views []*core.View, q core.Query, topK int, exclude string, meta videorec.RecommendMeta) ([]videorec.Recommendation, videorec.RecommendMeta, error) {
	res := r.res.Load()
	meta.ShardsTotal = len(views)

	// Derive the per-shard budget: the time between fan-out start and
	// (deadline − margin), applied per dispatch. In the parallel path every
	// dispatch starts together, so each shard runs under the absolute budget
	// deadline; in the serial path (GOMAXPROCS=1) each shard gets its own
	// window, so one slow shard exhausts only its own budget, not the later
	// shards' — the parent deadline still caps the total. A non-positive
	// budget means the request was nearly dead on arrival; the engines' own
	// degrade machinery is the right tool there.
	var budget time.Duration
	if res.ShardMargin > 0 {
		if d, ok := ctx.Deadline(); ok {
			budget = time.Until(d.Add(-res.ShardMargin))
		}
	}

	answers := make([]shardAnswer, len(views))
	dispatch := func(i int, v *core.View) {
		a := &answers[i]
		ok, probe := s.breakers[i].allow()
		if !ok {
			a.err, a.skipped = errBreakerOpen, true
			return
		}
		a.probe = probe
		callCtx := ctx
		if budget > 0 {
			var cancel context.CancelFunc
			callCtx, cancel = context.WithTimeout(ctx, budget)
			defer cancel()
		}
		a.res, a.info, a.err = callShard(callCtx, i, v, q, topK, exclude)
	}
	if len(views) == 1 || runtime.GOMAXPROCS(0) == 1 {
		// Single shard — or a single P, where goroutines per shard buy no
		// wall-clock and only pay spawn + scheduling: stay on the calling
		// goroutine. Results are identical either way; only latency differs.
		for i, v := range views {
			if err := ctx.Err(); err != nil {
				// Don't dispatch against a dead context; the classification
				// below surfaces ctx.Err() for the whole query.
				answers[i].err, answers[i].skipped = err, true
				continue
			}
			dispatch(i, v)
		}
	} else {
		var wg sync.WaitGroup
		for i, v := range views {
			wg.Add(1)
			go func(i int, v *core.View) {
				defer wg.Done()
				dispatch(i, v)
			}(i, v)
		}
		wg.Wait()
	}

	failed := 0
	var shardErrs []error
	for i := range answers {
		a := &answers[i]
		if a.err == nil {
			s.breakers[i].success(a.probe)
			if a.info.Degraded {
				meta.Degraded = true
			}
			continue
		}
		// The parent context dying fails every outstanding shard at once;
		// that is a serving outcome of the whole query, not evidence against
		// any shard. Surface ctx.Err() itself (→ 499/504 upstream) — but
		// settle the remaining answers' breakers first: a dispatched
		// half-open probe left unsettled would refuse its shard forever
		// (allow() admits nothing while a probe is in flight, and only the
		// probe's outcome transitions out of half-open). An aborted probe
		// proved nothing, so it re-arms the open state with the backoff
		// unchanged instead of counting as a failure.
		if ctxErr := ctx.Err(); ctxErr != nil {
			for j := i; j < len(answers); j++ {
				rest := &answers[j]
				switch {
				case rest.err == nil:
					s.breakers[j].success(rest.probe)
				case rest.probe:
					s.breakers[j].abortProbe()
				}
			}
			return nil, meta, ctxErr
		}
		failed++
		if !a.skipped {
			r.shardFailTotal.Add(1)
			if s.breakers[i].failure(a.probe) {
				r.breakerOpenTotal.Add(1)
			}
		}
		shardErrs = append(shardErrs, fmt.Errorf("shard %d: %w", i, a.err))
	}
	if ok := len(views) - failed; ok < res.quorum(len(views)) {
		r.quorumLostTotal.Add(1)
		return nil, meta, fmt.Errorf("%w: %d of %d shards answered, need %d: %w",
			ErrQuorum, ok, len(views), res.quorum(len(views)), errors.Join(shardErrs...))
	}
	if failed > 0 {
		// A partial answer is a degraded answer: correct over the surviving
		// shards' videos, silent about the rest. Serving layers must not
		// cache it.
		meta.Degraded = true
		meta.ShardsFailed = failed
	}
	merged := MergeTopK(topK, func(yield func([]core.Result)) {
		for i := range answers {
			if answers[i].err == nil {
				yield(answers[i].res)
			}
		}
	})
	out := make([]videorec.Recommendation, len(merged))
	for i, res := range merged {
		out[i] = videorec.Recommendation{
			VideoID: res.VideoID,
			Score:   res.Score,
			Content: res.Content,
			Social:  res.Social,
		}
	}
	return out, meta, nil
}

// ShardHealth is one shard's breaker state as surfaced by Router.Health()
// and the serving layer's /stats.
type ShardHealth struct {
	Shard            int          `json:"shard"`
	Breaker          BreakerState `json:"breaker"`
	ConsecutiveFails int          `json:"consecutiveFails"`
	// Failures and Opens count since this topology generation was published
	// (drain, add and SetResilience reset them); the router-level counters
	// are monotonic.
	Failures uint64 `json:"failures"`
	Opens    uint64 `json:"opens"`
	// RetryInMs is how long an open breaker will keep refusing before the
	// next half-open probe; 0 unless open.
	RetryInMs int64 `json:"retryInMs,omitempty"`
}

// Health reports every shard's breaker state — the operator's view of which
// shards the fan-out is currently routing around.
func (r *Router) Health() []ShardHealth {
	s := r.set()
	out := make([]ShardHealth, len(s.breakers))
	for i, b := range s.breakers {
		state, consecutive, failures, opens, retryIn := b.snapshot()
		out[i] = ShardHealth{
			Shard:            i,
			Breaker:          state,
			ConsecutiveFails: consecutive,
			Failures:         failures,
			Opens:            opens,
			RetryInMs:        retryIn.Milliseconds(),
		}
	}
	return out
}

// Quorum reports the minimum shards a query needs and how many are currently
// healthy (breaker closed) — the readiness gate: healthy < required means
// queries are failing with ErrQuorum right now. Half-open counts as
// unhealthy, not healthy: while its probe is in flight the fan-out refuses
// every other dispatch to that shard, so live queries fail it exactly as if
// it were open; the state is transient (the probe settles, or an aborted
// probe re-opens), so readiness recovers as soon as the shard does.
func (r *Router) Quorum() (required, healthy int) {
	s := r.set()
	res := r.res.Load()
	required = res.quorum(len(s.engines))
	for _, b := range s.breakers {
		if state, _, _, _, _ := b.snapshot(); state == BreakerClosed {
			healthy++
		}
	}
	return required, healthy
}

// BatchDispatches reports how many batched fan-out dispatches each shard has
// executed since the current topology generation was published — the
// per-shard slice of the serving layer's batch observability.
func (r *Router) BatchDispatches() []uint64 {
	s := r.set()
	out := make([]uint64, len(s.batchDispatched))
	for i := range s.batchDispatched {
		out[i] = s.batchDispatched[i].Load()
	}
	return out
}

// FaultCounters returns the router's monotonic fault-tolerance counters:
// shard calls failed, breaker open transitions, and queries lost to quorum.
func (r *Router) FaultCounters() (shardFail, breakerOpen, quorumLost uint64) {
	return r.shardFailTotal.Load(), r.breakerOpenTotal.Load(), r.quorumLostTotal.Load()
}

// MergeTopK merges per-shard result lists into one global top-K under the
// engine's ranking order — (score desc, id asc), the same strict total
// order the per-view pipeline selects under, so merging local top-Ks of
// disjoint corpora reproduces the single-corpus selection exactly.
func MergeTopK(topK int, lists func(yield func([]core.Result))) []core.Result {
	sel := topk.New(topK, func(a, b core.Result) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.VideoID > b.VideoID
	})
	lists(func(res []core.Result) {
		for _, r := range res {
			sel.Offer(r)
		}
	})
	return sel.Sorted()
}

// ApplyUpdates runs one maintenance batch globally, in three steps mirroring
// the single-engine pass: every shard derives the edge slice its videos
// induce (parallel), the slices are summed into the whole-corpus edge list,
// and every shard journals + applies that list with its local slice of the
// comments (parallel). Maintenance statistics are identical on every shard
// (same edges, same graph copy) and reported once; re-vectorization counts
// sum across shards.
func (r *Router) ApplyUpdates(newComments map[string][]string) (videorec.UpdateSummary, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.set()
	n := len(s.engines)

	parts := make([][]community.Edge, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, e := range s.engines {
		wg.Add(1)
		go func(i int, e *videorec.Engine) {
			defer wg.Done()
			parts[i], errs[i] = e.DeriveConnections(newComments)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return videorec.UpdateSummary{}, err
		}
	}
	edges := videorec.MergeConnections(parts...)

	// Split the batch by owning shard; comments on unknown videos go nowhere,
	// exactly as a single engine ignores them.
	local := make([]map[string][]string, n)
	for i := range local {
		local[i] = map[string][]string{}
	}
	for vid, users := range newComments {
		if i := s.owner(vid); i >= 0 {
			local[i][vid] = users
		}
	}

	sums := make([]videorec.UpdateSummary, n)
	for i, e := range s.engines {
		wg.Add(1)
		go func(i int, e *videorec.Engine) {
			defer wg.Done()
			sums[i], errs[i] = e.ApplyConnections(edges, local[i])
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return videorec.UpdateSummary{}, err
		}
	}
	// Graph sizes and maintenance stats are identical on every shard (same
	// edges, same graph copy), so sums[0] already carries them; the shards
	// maintain in parallel, so the batch's maintenance cost is the slowest
	// shard's, and re-vectorization counts sum.
	out := sums[0]
	out.VideosRevectorized = 0
	for _, sum := range sums {
		out.VideosRevectorized += sum.VideosRevectorized
		if sum.MaintenanceDuration > out.MaintenanceDuration {
			out.MaintenanceDuration = sum.MaintenanceDuration
		}
	}
	return out, nil
}

// DrainShard takes shard i out of the topology: its videos re-intern into
// the surviving shards (placed by the new modulus), the derived indexes are
// rebuilt around the partitions the survivors already hold, and finally the
// drained shard's journal is flushed and closed — the audience map is
// unchanged by relocation, so every survivor derives the same partition as
// before and rankings are unaffected (scores are placement-independent).
// Returns the number of videos moved. The drained engine is detached, not
// destroyed; its snapshot/journal files are the operator's to archive.
//
// The drain is transactional. Every re-homed record is staged and its
// routing validated before any survivor is touched; the drained shard is
// read, never mutated, until the survivors hold everything (its journal
// closes last). If any mid-drain AddPrepared or Reindex fails, the already
// re-homed records are removed from the survivors, their indexes restored,
// and the original topology republished — the router ends bit-identical to
// its pre-drain state, with no record lost or duplicated.
func (r *Router) DrainShard(i int) (moved int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.set()
	if i < 0 || i >= len(s.engines) {
		return 0, fmt.Errorf("shard: no shard %d in a %d-shard router", i, len(s.engines))
	}
	if len(s.engines) == 1 {
		return 0, ErrLastShard
	}
	drained := s.engines[i]
	wasBuilt := drained.Built()

	survivors := make([]*videorec.Engine, 0, len(s.engines)-1)
	survivors = append(survivors, s.engines[:i]...)
	survivors = append(survivors, s.engines[i+1:]...)

	// Stage: convert and route every record before touching anything. A
	// record that cannot be staged — or whose id a survivor somehow already
	// holds (re-homing it would duplicate) — fails the drain here, while the
	// router is still untouched.
	records := drained.ExportRecords()
	staged := make([]videorec.PreparedClip, len(records))
	targets := make([]int, len(records))
	for j, rs := range records {
		p := videorec.PreparedFromRecord(rs)
		if p.ID == "" {
			return 0, fmt.Errorf("shard: drain staging: record %d of shard %d has an empty id", j, i)
		}
		for k, e := range survivors {
			if view, _ := e.CurrentView(); view.Has(p.ID) {
				return 0, fmt.Errorf("shard: drain staging: %s already on surviving shard %d", p.ID, k)
			}
		}
		staged[j], targets[j] = p, shardOf(p.ID, len(survivors))
	}

	// Publish before re-ingesting: from here on, reads see the survivor
	// topology (briefly missing the moving videos, exactly like a snapshot
	// restore mid-ingest) and new Adds place against the new modulus.
	r.cur.Store(r.newSet(survivors, s.epoch+1))

	// rollback undoes a partial re-home: remove whatever was added, restore
	// the survivors' indexes, and republish the original topology (new
	// epoch — in-flight queries may have served against the survivor set).
	// The drained shard was never mutated, so the router is back to its
	// exact pre-drain state.
	rollback := func(added int, cause error) error {
		var errs []error
		touched := map[int]bool{}
		for j := 0; j < added; j++ {
			touched[targets[j]] = true
			if rmErr := survivors[targets[j]].Remove(staged[j].ID); rmErr != nil {
				errs = append(errs, fmt.Errorf("shard: drain rollback of %s: %w", staged[j].ID, rmErr))
			}
		}
		if wasBuilt {
			for k := range touched {
				if riErr := survivors[k].Reindex(); riErr != nil {
					errs = append(errs, fmt.Errorf("shard: drain rollback reindex of shard %d: %w", k, riErr))
				}
			}
		}
		r.cur.Store(r.newSet(s.engines, s.epoch+2))
		if len(errs) > 0 {
			return fmt.Errorf("shard: drain failed AND rollback incomplete: %w", errors.Join(append([]error{cause}, errs...)...))
		}
		return fmt.Errorf("shard: drain rolled back: %w", cause)
	}

	for j, p := range staged {
		if err := faults.Inject(FaultDrainAdd); err != nil {
			return 0, rollback(j, fmt.Errorf("re-home %s: %w", p.ID, err))
		}
		if err := survivors[targets[j]].AddPrepared(p); err != nil {
			return 0, rollback(j, fmt.Errorf("re-home %s: %w", p.ID, err))
		}
	}
	// Re-ingestion marks the receiving shards unbuilt. Restore them by
	// reindexing around the partition they already hold — NOT by a fresh
	// build: the partition has been incrementally maintained since the last
	// Build, and a fresh sub-community extraction over today's audiences
	// would not reproduce it (maintenance and re-extraction converge
	// differently by design). Reindexing preserves every shard's maintained
	// copy, so post-drain rankings are bit-identical to pre-drain.
	if wasBuilt {
		var wg sync.WaitGroup
		errs := make([]error, len(survivors))
		for k, e := range survivors {
			wg.Add(1)
			go func(k int, e *videorec.Engine) {
				defer wg.Done()
				if errs[k] = faults.Inject(FaultDrainReindex); errs[k] != nil {
					return
				}
				errs[k] = e.Reindex()
			}(k, e)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return 0, rollback(len(staged), fmt.Errorf("reindex survivors: %w", err))
		}
	}
	// Everything the drained shard held is now owned (and indexed) by the
	// survivors: only now is it safe to cut its journal. A close failure at
	// this point is reported but not rolled back — no record is at risk.
	if err := drained.CloseJournal(); err != nil {
		return len(staged), fmt.Errorf("shard: drain journal: %w", err)
	}
	return len(staged), nil
}

// AddShard grows the topology by one empty shard configured like the
// existing ones. Existing videos stay where they are (lookups fall back to
// scanning); only new ingests place against the grown modulus. When the
// deployment is built, the new shard receives the global social build so it
// can serve and maintain immediately.
func (r *Router) AddShard(opts videorec.Options) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.set()
	engines := append(append([]*videorec.Engine(nil), s.engines...), videorec.New(opts))
	next := r.newSet(engines, s.epoch+1)
	r.cur.Store(next)
	if s.engines[0].Built() {
		r.buildLocked(next)
	}
	return len(engines) - 1
}

// manifest is the on-disk description of a sharded snapshot: a tiny JSON
// file at the snapshot path, with each shard's state beside it in
// "<path>.shard<i>".
type manifest struct {
	Format string `json:"format"`
	Shards int    `json:"shards"`
	Epoch  uint64 `json:"epoch"`
}

const manifestFormat = "vrec-shard-manifest"

// ShardPath names shard i's file under a base path — the layout SaveFile
// writes and LoadFile, AttachJournals and ReplayJournals expect.
func ShardPath(base string, i int) string {
	return fmt.Sprintf("%s.shard%d", base, i)
}

// SaveFile persists the deployment: a manifest at path and one snapshot per
// shard beside it. Shard snapshots are written through the engine's atomic
// save; the manifest is written last, so a manifest always names complete
// snapshots.
func (r *Router) SaveFile(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.set()
	for i, e := range s.engines {
		if err := e.SaveFile(ShardPath(path, i)); err != nil {
			return err
		}
	}
	return writeManifest(path, manifest{Format: manifestFormat, Shards: len(s.engines), Epoch: s.epoch})
}

func writeManifest(path string, m manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dirOf(path), ".vrecshards-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}

// LoadFile restores a sharded deployment saved by SaveFile.
func LoadFile(path string) (*Router, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil || m.Format != manifestFormat || m.Shards <= 0 {
		return nil, fmt.Errorf("shard: %s is not a shard manifest", path)
	}
	engines := make([]*videorec.Engine, m.Shards)
	for i := range engines {
		if engines[i], err = videorec.LoadFile(ShardPath(path, i)); err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", i, err)
		}
	}
	r, err := NewFromEngines(engines)
	if err != nil {
		return nil, err
	}
	r.cur.Store(r.newSet(r.set().engines, m.Epoch))
	return r, nil
}

// ReplayJournals replays each shard's journal ("<base>.shard<i>") through
// its entry-aware update path, returning the total batches applied. Call
// after LoadFile and before AttachJournals, mirroring the single-engine
// restart sequence.
func (r *Router) ReplayJournals(base string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for i, e := range r.set().engines {
		n, err := e.ReplayJournal(ShardPath(base, i))
		total += n
		if err != nil {
			return total, fmt.Errorf("shard: replay shard %d journal: %w", i, err)
		}
	}
	return total, nil
}

// AttachJournals attaches each shard's journal at "<base>.shard<i>".
func (r *Router) AttachJournals(base string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range r.set().engines {
		if err := e.AttachJournal(ShardPath(base, i)); err != nil {
			return fmt.Errorf("shard: attach shard %d journal: %w", i, err)
		}
	}
	return nil
}

// CloseJournal flushes and detaches every shard's journal.
func (r *Router) CloseJournal() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	for i, e := range r.set().engines {
		if err := e.CloseJournal(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// SaveFileAndCompact snapshots every shard and compacts its journal at the
// snapshot's cursor, then rewrites the manifest — the sharded form of the
// primary's log-trimming operation. Each shard's snapshot+compact pair is
// atomic under that shard's writer lock.
func (r *Router) SaveFileAndCompact(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.set()
	for i, e := range s.engines {
		if err := e.SaveFileAndCompact(ShardPath(path, i)); err != nil {
			return fmt.Errorf("shard: compact shard %d: %w", i, err)
		}
	}
	return writeManifest(path, manifest{Format: manifestFormat, Shards: len(s.engines), Epoch: s.epoch})
}

// JournalStatus aggregates the shards' journal positions: attached only
// when every shard has a journal, path is the first shard's (the serving
// layer reports per-shard paths via ShardEngine), base is the minimum
// retained base and seq the maximum head.
func (r *Router) JournalStatus() (attached bool, path string, base, seq uint64) {
	engines := r.set().engines
	attached = true
	first := true
	for _, e := range engines {
		a, p, b, q := e.JournalStatus()
		if !a {
			attached = false
			continue
		}
		if path == "" {
			path = p
		}
		if first || b < base {
			base = b
		}
		first = false
		if q > seq {
			seq = q
		}
	}
	return attached, path, base, seq
}

// SortedIDs returns every stored id across shards in one stable order.
func (r *Router) SortedIDs() []string {
	var ids []string
	for _, e := range r.set().engines {
		view, _ := e.CurrentView()
		ids = append(ids, view.SortedIDs()...)
	}
	sort.Strings(ids)
	return ids
}
