package shard

import (
	"sync/atomic"
	"testing"
	"time"
)

// The breaker state machine, pinned in isolation: closed → open after the
// consecutive-failure threshold, open → half-open after the jittered
// backoff, half-open → closed on a successful probe and back to open (with
// the backoff doubled) on a failed one.

// testBreaker builds a breaker with timing small enough for tests to wait
// out backoffs deterministically: the jittered open interval never exceeds
// the un-jittered backoff, so sleeping the full backoff (plus slack)
// guarantees the next allow() can win the half-open probe.
func testBreaker(threshold int, base, max time.Duration) *breaker {
	return newBreaker(Resilience{BreakerThreshold: threshold, BreakerBackoff: base, BreakerMaxBackoff: max})
}

// waitHalfOpen spins until the breaker grants a half-open probe.
func waitHalfOpen(t *testing.T, b *breaker) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok, probe := b.allow(); ok {
			if !probe {
				t.Fatal("open breaker granted a non-probe dispatch")
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("breaker never reached half-open")
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := testBreaker(3, 20*time.Millisecond, 80*time.Millisecond)
	for i := 0; i < 2; i++ {
		if opened := b.failure(false); opened {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
		if ok, _ := b.allow(); !ok {
			t.Fatalf("breaker refusing below threshold (%d failures)", i+1)
		}
	}
	if opened := b.failure(false); !opened {
		t.Fatal("third failure did not open the breaker")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker allowed a dispatch inside its backoff")
	}
	state, consecutive, failures, opens, _ := b.snapshot()
	if state != BreakerOpen || consecutive != 3 || failures != 3 || opens != 1 {
		t.Fatalf("snapshot = (%s, %d, %d, %d), want (open, 3, 3, 1)", state, consecutive, failures, opens)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := testBreaker(3, 20*time.Millisecond, 80*time.Millisecond)
	b.failure(false)
	b.failure(false)
	b.success(false)
	// The streak broke: two more failures stay under the threshold again.
	b.failure(false)
	if opened := b.failure(false); opened {
		t.Fatal("breaker opened on a non-consecutive failure streak")
	}
	if state, _, _, _, _ := b.snapshot(); state != BreakerClosed {
		t.Fatalf("state = %s, want closed", state)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b := testBreaker(1, 10*time.Millisecond, 40*time.Millisecond)
	if opened := b.failure(false); !opened {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	waitHalfOpen(t, b)
	// Exactly one probe: while it is in flight every other allow refuses.
	if ok, _ := b.allow(); ok {
		t.Fatal("second dispatch allowed while the probe is in flight")
	}
	if state, _, _, _, _ := b.snapshot(); state != BreakerHalfOpen {
		t.Fatal("breaker not half-open during the probe")
	}
	b.success(true)
	if state, _, _, _, _ := b.snapshot(); state != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if ok, probe := b.allow(); !ok || probe {
		t.Fatalf("closed breaker allow = (%v, %v), want (true, false)", ok, probe)
	}
	if got := b.backoff.Load(); got != 0 {
		t.Fatalf("successful probe left backoff at %d, want 0 (reset)", got)
	}
}

func TestBreakerFailedProbeReopensWithDoubledBackoff(t *testing.T) {
	b := testBreaker(1, 10*time.Millisecond, 40*time.Millisecond)
	b.failure(false)
	first := b.backoff.Load()
	waitHalfOpen(t, b)
	if opened := b.failure(true); !opened {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("re-opened breaker allowed a dispatch immediately")
	}
	if second := b.backoff.Load(); second != 2*first {
		t.Fatalf("backoff after failed probe = %v, want doubled %v", time.Duration(second), time.Duration(2*first))
	}
	// The doubling caps at max.
	for i := 0; i < 6; i++ {
		waitHalfOpen(t, b)
		b.failure(true)
	}
	if got := b.backoff.Load(); got != int64(40*time.Millisecond) {
		t.Fatalf("backoff grew to %v, want capped at 40ms", time.Duration(got))
	}
	if _, _, _, opens, _ := b.snapshot(); opens != 8 {
		t.Fatalf("opens = %d, want 8", opens)
	}
}

// TestBreakerAbortedProbeReturnsToOpen pins the dangling-probe settle path:
// a probe cut short by the parent request dying must return the breaker to
// open — backoff unchanged, no failure or open transition recorded — and
// the next probe must fire on schedule, not never. Half-open has no other
// exit, so without this the shard would be refused until a topology change.
func TestBreakerAbortedProbeReturnsToOpen(t *testing.T) {
	b := testBreaker(1, 10*time.Millisecond, 40*time.Millisecond)
	b.failure(false)
	backoff := b.backoff.Load()
	failuresBefore := b.failTotal.Load()
	waitHalfOpen(t, b)
	b.abortProbe()
	state, _, failures, opens, retryIn := b.snapshot()
	if state != BreakerOpen {
		t.Fatalf("aborted probe left state %s, want open", state)
	}
	if retryIn <= 0 {
		t.Fatal("aborted probe re-opened with no backoff deadline")
	}
	if got := b.backoff.Load(); got != backoff {
		t.Fatalf("aborted probe changed backoff %v -> %v, want unchanged",
			time.Duration(backoff), time.Duration(got))
	}
	if failures != failuresBefore {
		t.Fatalf("aborted probe recorded a failure: %d -> %d", failuresBefore, failures)
	}
	if opens != 1 {
		t.Fatalf("aborted probe counted as an open transition: opens = %d, want 1", opens)
	}
	// The breaker is not stuck: the next probe fires after the same backoff
	// and settles normally.
	waitHalfOpen(t, b)
	b.success(true)
	if state, _, _, _, _ := b.snapshot(); state != BreakerClosed {
		t.Fatal("probe after an aborted one did not close the breaker")
	}
}

// TestBreakerOpenPublishesBackoffBeforeState hammers allow() while the
// breaker trips: the open state must never be observable before `until` is
// stored, or a racing allow() would win the half-open CAS against a stale
// zero `until` and probe the just-failed shard instantly. With a 1 s base
// backoff, any probe granted inside this test's lifetime is that race.
func TestBreakerOpenPublishesBackoffBeforeState(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		b := testBreaker(1, time.Second, 4*time.Second)
		var granted atomic.Bool
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 5000; i++ {
				if _, probe := b.allow(); probe {
					granted.Store(true)
					return
				}
			}
		}()
		b.failure(false)
		<-done
		if granted.Load() {
			t.Fatal("allow() granted a probe before the open backoff was published")
		}
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := testBreaker(-1, 0, 0)
	for i := 0; i < 50; i++ {
		if opened := b.failure(false); opened {
			t.Fatal("disabled breaker opened")
		}
	}
	if ok, probe := b.allow(); !ok || probe {
		t.Fatalf("disabled breaker allow = (%v, %v), want (true, false)", ok, probe)
	}
	if state, _, _, _, _ := b.snapshot(); state != BreakerClosed {
		t.Fatalf("disabled breaker state = %s, want closed", state)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(Resilience{})
	if b.threshold != defaultBreakerThreshold {
		t.Errorf("threshold = %d, want %d", b.threshold, defaultBreakerThreshold)
	}
	if b.base != defaultBreakerBackoff {
		t.Errorf("base = %v, want %v", b.base, defaultBreakerBackoff)
	}
	if b.max != defaultBreakerMaxBackoff {
		t.Errorf("max = %v, want %v", b.max, defaultBreakerMaxBackoff)
	}
	// A max below the base clamps up to the base, never below it.
	b = newBreaker(Resilience{BreakerBackoff: 10 * time.Second, BreakerMaxBackoff: time.Second})
	if b.max < b.base {
		t.Errorf("max %v below base %v", b.max, b.base)
	}
}
