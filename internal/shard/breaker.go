package shard

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// Per-shard circuit breaker. The fan-out consults the breaker before
// dispatching to a shard: a shard that has failed BreakerThreshold times in a
// row stops receiving queries (open) until a jittered backoff elapses, after
// which exactly one query is let through as a probe (half-open). A successful
// probe closes the breaker and resets the backoff; a failed probe re-opens it
// with the backoff doubled (capped at BreakerMaxBackoff). All state is
// atomic — the fan-out path takes no lock — and the router surfaces it
// through Health().
//
// Breakers protect the service, not the answer: an open breaker converts a
// shard that would burn the whole request budget into an instant
// shard-failure, so the merge proceeds over the survivors and the response
// is marked partial. Whether a partial answer is acceptable at all is the
// quorum knob's decision (Resilience.MinShardQuorum).

// Breaker states, in the order they cycle: closed → open → half-open →
// {closed, open}.
const (
	stClosed int32 = iota
	stOpen
	stHalfOpen
)

// BreakerState is the observable state of one shard's breaker.
type BreakerState string

const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

type breaker struct {
	threshold int           // consecutive failures to open; <= 0 disables
	base      time.Duration // first open interval
	max       time.Duration // backoff growth cap

	state     atomic.Int32 // stClosed / stOpen / stHalfOpen
	fails     atomic.Int64 // consecutive failures since the last success
	until     atomic.Int64 // unixnano until which open refuses probes
	backoff   atomic.Int64 // current un-jittered open interval, ns
	failTotal atomic.Uint64
	openTotal atomic.Uint64
}

func newBreaker(res Resilience) *breaker {
	threshold := res.BreakerThreshold
	if threshold == 0 {
		threshold = defaultBreakerThreshold
	}
	base := res.BreakerBackoff
	if base <= 0 {
		base = defaultBreakerBackoff
	}
	max := res.BreakerMaxBackoff
	if max < base {
		max = defaultBreakerMaxBackoff
		if max < base {
			max = base
		}
	}
	return &breaker{threshold: threshold, base: base, max: max}
}

// allow reports whether the shard may be dispatched to, and whether this
// dispatch is the half-open probe (the caller must report the probe's outcome
// via success(true)/failure(true)).
func (b *breaker) allow() (ok, probe bool) {
	if b.threshold <= 0 {
		return true, false
	}
	switch b.state.Load() {
	case stClosed:
		return true, false
	case stOpen:
		// Backoff elapsed: exactly one caller wins the CAS and probes; the
		// rest keep skipping until the probe settles.
		if time.Now().UnixNano() >= b.until.Load() && b.state.CompareAndSwap(stOpen, stHalfOpen) {
			return true, true
		}
		return false, false
	default: // half-open, probe in flight
		return false, false
	}
}

// success records a completed shard call. A successful probe closes the
// breaker and resets the backoff schedule.
func (b *breaker) success(probe bool) {
	if b.threshold <= 0 {
		return
	}
	b.fails.Store(0)
	if probe {
		b.backoff.Store(0)
		b.state.Store(stClosed)
	}
}

// failure records a failed shard call (error, budget timeout, panic) and
// reports whether this failure opened the breaker. A failed probe re-opens
// immediately with the backoff doubled; in the closed state the
// consecutive-failure counter must reach the threshold first.
func (b *breaker) failure(probe bool) (opened bool) {
	if b.threshold <= 0 {
		return false
	}
	b.failTotal.Add(1)
	b.fails.Add(1)
	if probe {
		b.open()
		return true
	}
	// CAS through half-open rather than straight to open: half-open refuses
	// every allow(), so no concurrent caller can observe the open state
	// before open() has stored the backoff and `until`. Publishing stOpen
	// first would let a racing allow() win the probe CAS against a stale
	// (zero) `until` and hit the just-failed shard again instantly.
	if b.fails.Load() >= int64(b.threshold) && b.state.CompareAndSwap(stClosed, stHalfOpen) {
		b.open()
		return true
	}
	return false
}

// open transitions to the open state with the backoff doubled (clamped to
// [base, max]).
func (b *breaker) open() {
	b.openTotal.Add(1)
	b.rearm(2 * b.backoff.Load())
}

// abortProbe returns a half-open breaker to the open state without judging
// the shard. The fan-out calls it when the parent request dies while the
// probe is in flight: the cancel cut the probe short, so its outcome says
// nothing about the shard — no failure is recorded, the backoff is not
// doubled, and the next probe fires after the current interval again.
// Without this settle path the breaker would stay half-open forever: allow()
// refuses every dispatch while a probe is in flight, and only the probe's
// outcome transitions out of half-open.
func (b *breaker) abortProbe() {
	if b.threshold <= 0 {
		return
	}
	b.rearm(b.backoff.Load())
}

// rearm stores the (clamped) backoff interval and its jittered `until`, then
// publishes the open state — in that order, so a concurrent allow() can
// never observe stOpen with a stale `until`. Jitter spreads the half-open
// probes of breakers that tripped together, so a recovered shard is not hit
// by every router's probe at once.
func (b *breaker) rearm(interval int64) {
	if interval < int64(b.base) {
		interval = int64(b.base)
	}
	if interval > int64(b.max) {
		interval = int64(b.max)
	}
	b.backoff.Store(interval)
	wait := interval/2 + rand.Int63n(interval/2+1)
	b.until.Store(time.Now().UnixNano() + wait)
	b.state.Store(stOpen)
}

// snapshot reads the breaker's observable state for Health().
func (b *breaker) snapshot() (state BreakerState, consecutive int, failures, opens uint64, retryIn time.Duration) {
	if b.threshold <= 0 {
		return BreakerClosed, 0, b.failTotal.Load(), 0, 0
	}
	switch b.state.Load() {
	case stOpen:
		state = BreakerOpen
		if d := time.Duration(b.until.Load() - time.Now().UnixNano()); d > 0 {
			retryIn = d
		}
	case stHalfOpen:
		state = BreakerHalfOpen
	default:
		state = BreakerClosed
	}
	return state, int(b.fails.Load()), b.failTotal.Load(), b.openTotal.Load(), retryIn
}
