package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"videorec"
	"videorec/internal/core"
	"videorec/internal/faults"
)

// batchShardAnswer is one shard's contribution to a batched fan-out: a
// per-item output slice, or the reason the whole dispatch has none.
type batchShardAnswer struct {
	outs    []core.BatchOut
	err     error // whole-dispatch failure: fault site, panic, open breaker
	probe   bool
	skipped bool
}

// RecommendBatch answers a batch of stored-clip queries by scatter-gather.
// Equivalent to RecommendBatchCtx with a background batch context.
func (r *Router) RecommendBatch(reqs []videorec.BatchRequest) []videorec.BatchAnswer {
	return r.RecommendBatchCtx(context.Background(), reqs)
}

// RecommendBatchCtx fans a whole batch of stored-clip queries out to every
// shard in ONE dispatch per shard and merges per query, composing batching
// with the router's fault-tolerance machinery:
//
//   - Duplicate (ClipID, TopK) requests are computed once per shard and
//     fanned back to every requester, exactly like Engine.RecommendBatchCtx.
//   - Each shard runs the whole batch under one per-shard budget (deadline −
//     ShardMargin) and one breaker admission — a batch is one unit of
//     evidence for the breaker, not len(reqs) units, so a single slow batch
//     cannot slam a healthy shard's breaker open.
//   - Quorum is settled per query: a query whose surviving shard count stays
//     at or above MinShardQuorum merges the survivors' lists (marked
//     Degraded with ShardsFailed set when any shard dropped out); below
//     quorum it fails with ErrQuorum. A request cancelled by its own Ctx
//     settles with that context error and is never counted against a shard.
//
// Per-query merged rankings are bit-identical to serial RecommendCtx calls
// through the same router.
func (r *Router) RecommendBatchCtx(ctx context.Context, reqs []videorec.BatchRequest) []videorec.BatchAnswer {
	if ctx == nil {
		ctx = context.Background()
	}
	answers := make([]videorec.BatchAnswer, len(reqs))
	if len(reqs) == 0 {
		return answers
	}
	s := r.set()
	res := r.res.Load()
	fp := r.fingerprint(s)
	for i := range answers {
		answers[i].Meta.ViewVersion = fp
	}
	views := make([]*core.View, len(s.engines))
	for i, e := range s.engines {
		views[i], _ = e.CurrentView()
		if !views[i].Built() {
			for j := range answers {
				answers[j].Err = videorec.ErrNotBuilt
			}
			return answers
		}
	}

	// Group identical (ClipID, TopK) requests behind one fan-out item,
	// resolving each clip's query from whichever shard owns it and keying the
	// content-index positions once for the whole fleet (all shards share one
	// forest fingerprint).
	type groupKey struct {
		clipID string
		topK   int
	}
	type group struct {
		item    core.BatchItem
		exclude [1]string
		members []int
		cancel  context.CancelFunc
	}
	groups := make(map[groupKey]*group, len(reqs))
	ordered := make([]*group, 0, len(reqs))
	for i, req := range reqs {
		if rctx := req.Ctx; rctx != nil && rctx.Err() != nil {
			answers[i].Err = rctx.Err()
			continue
		}
		k := groupKey{req.ClipID, req.TopK}
		g, ok := groups[k]
		if !ok {
			var q core.Query
			found := false
			for _, v := range views {
				if qq, qok := v.QueryFor(req.ClipID); qok {
					q, found = qq, true
					break
				}
			}
			if !found {
				answers[i].Err = fmt.Errorf("%w: %s", videorec.ErrNotFound, req.ClipID)
				continue
			}
			if len(views) > 1 {
				q = views[0].PrimeContentKeys(q)
			}
			g = &group{item: core.BatchItem{Query: q, TopK: req.TopK}}
			g.exclude[0] = req.ClipID
			g.item.Exclude = g.exclude[:]
			groups[k] = g
			ordered = append(ordered, g)
		}
		g.members = append(g.members, i)
	}
	if len(ordered) == 0 {
		return answers
	}

	// Per-group contexts follow the engine's dedup rule: a singleton keeps
	// its member's context verbatim; a shared group runs until the LAST
	// member's deadline (or unbounded under the batch context) and members
	// are re-checked individually at settlement.
	items := make([]core.BatchItem, len(ordered))
	for gi, g := range ordered {
		if len(g.members) == 1 {
			g.item.Ctx = reqs[g.members[0]].Ctx
		} else {
			var latest time.Time
			bounded := true
			for _, m := range g.members {
				rctx := reqs[m].Ctx
				if rctx == nil {
					bounded = false
					break
				}
				d, ok := rctx.Deadline()
				if !ok {
					bounded = false
					break
				}
				if d.After(latest) {
					latest = d
				}
			}
			if bounded {
				g.item.Ctx, g.cancel = context.WithDeadline(ctx, latest)
			}
		}
		items[gi] = g.item
	}
	defer func() {
		for _, g := range ordered {
			if g.cancel != nil {
				g.cancel()
			}
		}
	}()

	// One budget window and one breaker admission per shard for the whole
	// batch — the batched form of fanOut's per-shard dispatch.
	var budget time.Duration
	if res.ShardMargin > 0 {
		if d, ok := ctx.Deadline(); ok {
			budget = time.Until(d.Add(-res.ShardMargin))
		}
	}
	shardOuts := make([]batchShardAnswer, len(views))
	dispatch := func(i int, v *core.View) {
		a := &shardOuts[i]
		ok, probe := s.breakers[i].allow()
		if !ok {
			a.err, a.skipped = errBreakerOpen, true
			return
		}
		a.probe = probe
		s.batchDispatched[i].Add(1)
		callCtx := ctx
		if budget > 0 {
			var cancel context.CancelFunc
			callCtx, cancel = context.WithTimeout(ctx, budget)
			defer cancel()
		}
		a.outs, a.err = callShardBatch(callCtx, i, v, items)
	}
	if len(views) == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i, v := range views {
			if err := ctx.Err(); err != nil {
				shardOuts[i].err, shardOuts[i].skipped = err, true
				continue
			}
			dispatch(i, v)
		}
	} else {
		var wg sync.WaitGroup
		for i, v := range views {
			wg.Add(1)
			go func(i int, v *core.View) {
				defer wg.Done()
				dispatch(i, v)
			}(i, v)
		}
		wg.Wait()
	}

	// Settle breakers on whole-shard evidence. A shard failed the batch when
	// its dispatch erred outright, or when any item's answer erred while that
	// item's own context was still alive — a per-item error under a live item
	// context is the shard's doing (budget timeout, injected fault inside
	// refine), whereas an item its requester cancelled proves nothing.
	if ctxErr := ctx.Err(); ctxErr != nil {
		for i := range shardOuts {
			a := &shardOuts[i]
			switch {
			case a.err == nil && !shardFailedItems(a.outs, items):
				s.breakers[i].success(a.probe)
			case a.probe:
				s.breakers[i].abortProbe()
			}
		}
		for i := range answers {
			if answers[i].Err == nil {
				answers[i].Err = ctxErr
			}
		}
		return answers
	}
	shardDead := make([]bool, len(views))
	for i := range shardOuts {
		a := &shardOuts[i]
		failed := a.err != nil || shardFailedItems(a.outs, items)
		shardDead[i] = failed
		if !failed {
			s.breakers[i].success(a.probe)
			continue
		}
		if !a.skipped {
			r.shardFailTotal.Add(1)
			if s.breakers[i].failure(a.probe) {
				r.breakerOpenTotal.Add(1)
			}
		}
	}

	// Per-query settlement: quorum over the shards that answered this item,
	// then the same (score desc, id asc) merge as the serial fan-out.
	need := res.quorum(len(views))
	for gi, g := range ordered {
		var (
			okShards  int
			degraded  bool
			shardErrs []error
		)
		for i := range shardOuts {
			a := &shardOuts[i]
			switch {
			case a.err != nil:
				shardErrs = append(shardErrs, fmt.Errorf("shard %d: %w", i, a.err))
			case a.outs[gi].Err != nil:
				shardErrs = append(shardErrs, fmt.Errorf("shard %d: %w", i, a.outs[gi].Err))
			default:
				okShards++
				if a.outs[gi].Info.Degraded {
					degraded = true
				}
			}
		}
		var groupErr error
		var shared []videorec.Recommendation
		meta := videorec.RecommendMeta{ViewVersion: fp, ShardsTotal: len(views)}
		if itemErr := itemCtxErr(g.item.Ctx); itemErr != nil && okShards < len(views) {
			// The group's own context died mid-flight: the missing shard
			// answers are the request's doing, not the shards'.
			groupErr = itemErr
		} else if okShards < need {
			r.quorumLostTotal.Add(1)
			groupErr = fmt.Errorf("%w: %d of %d shards answered, need %d: %w",
				ErrQuorum, okShards, len(views), need, errors.Join(shardErrs...))
		} else {
			if okShards < len(views) {
				degraded = true
				meta.ShardsFailed = len(views) - okShards
			}
			merged := MergeTopK(g.item.TopK, func(yield func([]core.Result)) {
				for i := range shardOuts {
					if shardOuts[i].err == nil && shardOuts[i].outs[gi].Err == nil {
						yield(shardOuts[i].outs[gi].Results)
					}
				}
			})
			meta.Degraded = degraded
			shared = make([]videorec.Recommendation, len(merged))
			for i, res := range merged {
				shared[i] = videorec.Recommendation{
					VideoID: res.VideoID,
					Score:   res.Score,
					Content: res.Content,
					Social:  res.Social,
				}
			}
		}
		for _, m := range g.members {
			if rctx := reqs[m].Ctx; rctx != nil && rctx.Err() != nil {
				answers[m].Err = rctx.Err()
				continue
			}
			if groupErr != nil {
				answers[m].Err = groupErr
				continue
			}
			answers[m].Results = shared
			answers[m].Meta = meta
		}
	}
	return answers
}

// callShardBatch runs one shard's slice of a batched fan-out: the same fault
// sites as callShard — fired ONCE per shard per batch, the unit the breaker
// reasons about — then the shard view's batched pipeline. A panic becomes a
// whole-dispatch failure.
func callShardBatch(ctx context.Context, i int, v *core.View, items []core.BatchItem) (outs []core.BatchOut, err error) {
	defer func() {
		if p := recover(); p != nil {
			outs, err = nil, fmt.Errorf("shard: shard %d panicked: %v", i, p)
		}
	}()
	if err := faults.Inject(FaultFanOut); err != nil {
		return nil, err
	}
	if err := faults.Inject(SiteForShard(FaultFanOut, i)); err != nil {
		return nil, err
	}
	if err := faults.Inject(FaultFanOutSlow); err != nil {
		return nil, err
	}
	if err := faults.Inject(SiteForShard(FaultFanOutSlow, i)); err != nil {
		return nil, err
	}
	return v.RecommendBatch(ctx, items), nil
}

// shardFailedItems reports whether any item of a shard's batch answer erred
// while the item's own context was alive — the shard-attributable failure
// shape (budget exhaustion, internal fault); items their requesters
// cancelled are excluded.
func shardFailedItems(outs []core.BatchOut, items []core.BatchItem) bool {
	for j := range outs {
		if outs[j].Err != nil && itemCtxErr(items[j].Ctx) == nil {
			return true
		}
	}
	return false
}

// itemCtxErr is ctx.Err tolerant of the nil item context.
func itemCtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
