package shard

import (
	"context"
	"path/filepath"
	"testing"

	"videorec"
)

// The sharded crash-recovery contract mirrors the single-engine one,
// per shard: snapshot + journal replay reconstruct exactly the state that
// went down, and the recovered deployment ranks bit-identically.

func TestRouterSaveLoadRoundTrip(t *testing.T) {
	f := loadFixture(t, 21)
	dir := t.TempDir()
	snap := filepath.Join(dir, "deploy.snap")

	r, err := New(4, videorec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, f, r.Add)
	r.Build()
	if err := r.SaveFile(snap); err != nil {
		t.Fatal(err)
	}

	r2, err := LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumShards() != 4 {
		t.Fatalf("loaded %d shards, want 4", r2.NumShards())
	}
	if r2.Len() != r.Len() {
		t.Fatalf("loaded %d videos, want %d", r2.Len(), r.Len())
	}
	ctx := context.Background()
	for _, id := range f.queries {
		want, _, err1 := r.RecommendCtx(ctx, id, 10)
		got, _, err2 := r2.RecommendCtx(ctx, id, 10)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %s: %v / %v", id, err1, err2)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %s rank %d: reloaded %+v, want %+v", id, i, got[i], want[i])
			}
		}
	}
}

func TestRouterJournalCrashRecovery(t *testing.T) {
	f := loadFixture(t, 21)
	dir := t.TempDir()
	snap := filepath.Join(dir, "deploy.snap")
	wal := filepath.Join(dir, "deploy.wal")

	r, err := New(4, videorec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, f, r.Add)
	r.Build()
	if err := r.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachJournals(wal); err != nil {
		t.Fatal(err)
	}
	src := f.col.Opts.MonthsSource
	for m := src; m < src+3; m++ {
		if _, err := r.ApplyUpdates(f.updateBatch(m)); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": abandon r without snapshotting the updates; recover from the
	// pre-update snapshot plus the per-shard journals.
	if err := r.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := r2.ReplayJournals(wal)
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("no journal batches replayed")
	}
	if err := r2.AttachJournals(wal); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range f.queries {
		want, _, err1 := r.RecommendCtx(ctx, id, 10)
		got, _, err2 := r2.RecommendCtx(ctx, id, 10)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %s: %v / %v", id, err1, err2)
		}
		if len(got) != len(want) {
			t.Fatalf("query %s: %d results, want %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %s rank %d: recovered %+v, want %+v", id, i, got[i], want[i])
			}
		}
	}
	// The recovered deployment keeps journaling: one more batch must land
	// contiguously on every shard's journal.
	if _, err := r2.ApplyUpdates(f.updateBatch(src + 3)); err != nil {
		t.Fatal(err)
	}
	if attached, _, _, seq := r2.JournalStatus(); !attached || seq == 0 {
		t.Fatalf("journals after recovery: attached=%v seq=%d", attached, seq)
	}
}

func TestRouterCompactAndCursorStatus(t *testing.T) {
	f := loadFixture(t, 21)
	dir := t.TempDir()
	snap := filepath.Join(dir, "deploy.snap")
	wal := filepath.Join(dir, "deploy.wal")

	r, err := New(2, videorec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, f, r.Add)
	r.Build()
	if err := r.AttachJournals(wal); err != nil {
		t.Fatal(err)
	}
	src := f.col.Opts.MonthsSource
	if _, err := r.ApplyUpdates(f.updateBatch(src)); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveFileAndCompact(snap); err != nil {
		t.Fatal(err)
	}
	attached, _, base, seq := r.JournalStatus()
	if !attached {
		t.Fatal("journals detached after compact")
	}
	if base == 0 || seq < base {
		t.Fatalf("compacted cursor: base=%d seq=%d", base, seq)
	}
	// A compacted deployment restores from its own snapshots alone.
	r2, err := LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := r2.ReplayJournals(wal); err != nil || n != 0 {
		t.Fatalf("replay after compact: n=%d err=%v", n, err)
	}
}
