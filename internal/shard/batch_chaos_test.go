package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"videorec"
	"videorec/internal/core"
)

// TestBatchChaosCancelDuringRepublish hammers one captured immutable view
// with concurrent batched queries — one member cancelled mid-flight and one
// pre-cancelled per batch — while the owning engine keeps republishing new
// views. The view is COW-immutable, so every surviving answer must stay
// bit-identical to the serial answer computed on the same view before the
// chaos started; the batch scratch is pooled per view and shared by every
// concurrent batch, so any cross-query bleed shows up as a ranking diff (or
// as a data race under -race, which `make test-faults` runs this under).
func TestBatchChaosCancelDuringRepublish(t *testing.T) {
	f := loadFixture(t, 21)
	eng := buildRef(t, f, videorec.Options{})
	view, _ := eng.CurrentView()

	type golden struct {
		id   string
		q    core.Query
		want []core.Result
	}
	queries := make([]golden, 0, len(f.queries))
	for _, id := range f.queries {
		q, ok := view.QueryFor(id)
		if !ok {
			t.Fatalf("missing record %s", id)
		}
		want, info, err := view.RecommendCtx(context.Background(), q, 10, id)
		if err != nil || info.Degraded {
			t.Fatalf("serial %s: err=%v degraded=%v", id, err, info.Degraded)
		}
		queries = append(queries, golden{id, q, want})
	}
	if len(queries) < 3 {
		t.Fatal("fixture too small for member isolation roles")
	}

	// Republisher: churns new engine views for the whole run. The captured
	// view must not notice.
	stop := make(chan struct{})
	var pubWg sync.WaitGroup
	pubWg.Add(1)
	go func() {
		defer pubWg.Done()
		month := f.col.Opts.MonthsSource
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.ApplyUpdates(f.updateBatch(month + i%3)); err != nil {
				t.Errorf("republish: %v", err)
				return
			}
		}
	}()

	const workers = 4
	const rounds = 20
	var cancelledSeen, survivedSeen atomic.Int64
	var workerWg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		workerWg.Add(1)
		go func() {
			defer workerWg.Done()
			for round := 0; round < rounds; round++ {
				// Roles rotate every round: `victim` is cancelled while the
				// batch runs (either outcome is legal), `preDead` joins with
				// an already-dead context (must settle with its error).
				victim := (w + round) % len(queries)
				preDead := (victim + 1) % len(queries)
				dead, deadCancel := context.WithCancel(context.Background())
				deadCancel()
				midCtx, midCancel := context.WithCancel(context.Background())
				items := make([]core.BatchItem, len(queries))
				for i, g := range queries {
					items[i] = core.BatchItem{Query: g.q, TopK: 10, Exclude: []string{g.id}}
					switch i {
					case victim:
						items[i].Ctx = midCtx
					case preDead:
						items[i].Ctx = dead
					}
				}
				raced := make(chan struct{})
				go func() {
					midCancel() // mid-flight on purpose: races the batch
					close(raced)
				}()
				outs := view.RecommendBatch(context.Background(), items)
				<-raced
				for i, out := range outs {
					g := queries[i]
					switch {
					case i == preDead:
						if out.Err != context.Canceled {
							t.Errorf("worker %d round %d: pre-cancelled %s: err %v, want context.Canceled", w, round, g.id, out.Err)
						}
						cancelledSeen.Add(1)
						continue
					case out.Err != nil:
						if i != victim || out.Err != context.Canceled {
							t.Errorf("worker %d round %d: query %s: unexpected err %v", w, round, g.id, out.Err)
							continue
						}
						cancelledSeen.Add(1)
						continue
					}
					if out.Info.Degraded {
						t.Errorf("worker %d round %d: query %s degraded without a deadline", w, round, g.id)
						continue
					}
					if len(out.Results) != len(g.want) {
						t.Errorf("worker %d round %d: query %s: %d results, want %d", w, round, g.id, len(out.Results), len(g.want))
						continue
					}
					for r := range g.want {
						if out.Results[r] != g.want[r] {
							t.Errorf("worker %d round %d: query %s rank %d drifted during republish\ngot:  %+v\nwant: %+v",
								w, round, g.id, r, out.Results[r], g.want[r])
							break
						}
					}
					survivedSeen.Add(1)
				}
			}
		}()
	}
	workerWg.Wait()
	close(stop)
	pubWg.Wait()

	if cancelledSeen.Load() == 0 || survivedSeen.Load() == 0 {
		t.Fatalf("chaos run exercised nothing: %d cancelled, %d survived", cancelledSeen.Load(), survivedSeen.Load())
	}
}
