package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"videorec"
	"videorec/internal/faults"
)

// Fault-injection suite for the scatter-gather path: per-shard budgets,
// partial answers under quorum, breaker lifecycle through the router, the
// transactional drain, and a race-enabled chaos run mixing all of them with
// concurrent queries, updates and a drain.

// buildRouter ingests the fixture into a fresh n-shard router and builds it.
func buildRouter(t *testing.T, f *fixture, n int, opts videorec.Options) *Router {
	t.Helper()
	r, err := New(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, f, r.Add)
	r.Build()
	return r
}

// buildRef ingests the fixture into a single reference engine and builds it.
func buildRef(t *testing.T, f *fixture, opts videorec.Options) *videorec.Engine {
	t.Helper()
	ref := videorec.New(opts)
	ingestAll(t, f, ref.Add)
	ref.Build()
	return ref
}

// ownedIDs maps each live shard to the set of video ids it holds.
func ownedIDs(r *Router) []map[string]bool {
	s := r.set()
	out := make([]map[string]bool, len(s.engines))
	for i, e := range s.engines {
		view, _ := e.CurrentView()
		m := map[string]bool{}
		for _, id := range view.SortedIDs() {
			m[id] = true
		}
		out[i] = m
	}
	return out
}

// fullRanking returns the reference engine's complete ranking for each query
// (topK = corpus size, so every candidate appears with its exact score).
func fullRanking(t *testing.T, ref *videorec.Engine, queries []string) map[string][]videorec.Recommendation {
	t.Helper()
	out := map[string][]videorec.Recommendation{}
	for _, q := range queries {
		full, _, err := ref.RecommendCtx(context.Background(), q, ref.Len())
		if err != nil {
			t.Fatalf("reference ranking for %s: %v", q, err)
		}
		out[q] = full
	}
	return out
}

// partialExpect restricts a full reference ranking to the videos whose
// shards survived — the answer a correct partial merge must produce.
func partialExpect(full []videorec.Recommendation, dead map[string]bool, k int) []videorec.Recommendation {
	var out []videorec.Recommendation
	for _, r := range full {
		if dead[r.VideoID] {
			continue
		}
		out = append(out, r)
		if len(out) == k {
			break
		}
	}
	return out
}

func requireSameList(t *testing.T, label string, got, want []videorec.Recommendation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d differs\ngot:  %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

// TestFanOutErrorPartialAnswer: one erroring shard of four drops out of the
// merge, and the partial answer is exactly the reference ranking restricted
// to the surviving shards' videos, marked Degraded with ShardsFailed set.
func TestFanOutErrorPartialAnswer(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	ref := buildRef(t, f, videorec.Options{})
	r := buildRouter(t, f, 4, videorec.Options{})
	r.SetResilience(Resilience{MinShardQuorum: 1, BreakerThreshold: -1})
	refFull := fullRanking(t, ref, f.queries)
	owned := ownedIDs(r)

	faults.Arm(SiteForShard(FaultFanOut, 2), faults.Error(nil))
	for _, q := range f.queries {
		got, meta, err := r.RecommendCtx(context.Background(), q, 10)
		if err != nil {
			t.Fatalf("query %s above quorum errored: %v", q, err)
		}
		if !meta.Degraded || meta.ShardsFailed != 1 || meta.ShardsTotal != 4 {
			t.Fatalf("query %s: meta = degraded=%v failed=%d total=%d, want degraded 1/4",
				q, meta.Degraded, meta.ShardsFailed, meta.ShardsTotal)
		}
		requireSameList(t, "partial "+q, got, partialExpect(refFull[q], owned[2], 10))
	}
	if shardFail, _, _ := r.FaultCounters(); shardFail != uint64(len(f.queries)) {
		t.Errorf("shardFailTotal = %d, want %d", shardFail, len(f.queries))
	}
}

// TestFanOutQuorumLoss: below MinShardQuorum the query errors with ErrQuorum
// wrapping the shard causes; the strict default (quorum 0 = all shards)
// turns any single failure into quorum loss.
func TestFanOutQuorumLoss(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	r := buildRouter(t, f, 4, videorec.Options{})

	// Strict default: one failed shard fails the query.
	faults.Arm(SiteForShard(FaultFanOut, 0), faults.Error(nil))
	if _, _, err := r.RecommendCtx(context.Background(), f.queries[0], 10); !errors.Is(err, ErrQuorum) {
		t.Fatalf("strict mode with one failed shard: %v, want ErrQuorum", err)
	} else if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("quorum error does not wrap the shard cause: %v", err)
	}

	// Quorum 3 tolerates one failure but not two.
	r.SetResilience(Resilience{MinShardQuorum: 3, BreakerThreshold: -1})
	if _, meta, err := r.RecommendCtx(context.Background(), f.queries[0], 10); err != nil {
		t.Fatalf("one failure above quorum 3: %v", err)
	} else if meta.ShardsFailed != 1 {
		t.Fatalf("ShardsFailed = %d, want 1", meta.ShardsFailed)
	}
	faults.Arm(SiteForShard(FaultFanOut, 1), faults.Error(nil))
	_, _, err := r.RecommendCtx(context.Background(), f.queries[0], 10)
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("two failures under quorum 3: %v, want ErrQuorum", err)
	}
	if _, _, quorumLost := r.FaultCounters(); quorumLost != 2 {
		t.Errorf("quorumLostTotal = %d, want 2", quorumLost)
	}
}

// TestFanOutCancelSurfacesContextError pins the error-mapping satellite: a
// query whose own context died surfaces ctx.Err() — never a shard error —
// and penalizes no breaker.
func TestFanOutCancelSurfacesContextError(t *testing.T) {
	f := loadFixture(t, 21)
	r := buildRouter(t, f, 4, videorec.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.RecommendCtx(ctx, f.queries[0], 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query: %v, want context.Canceled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := r.RecommendCtx(dctx, f.queries[0], 10); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired query: %v, want context.DeadlineExceeded", err)
	}

	if shardFail, breakerOpen, _ := r.FaultCounters(); shardFail != 0 || breakerOpen != 0 {
		t.Errorf("dead contexts counted as shard faults: fail=%d open=%d", shardFail, breakerOpen)
	}
	for _, h := range r.Health() {
		if h.ConsecutiveFails != 0 || h.Breaker != BreakerClosed {
			t.Errorf("shard %d breaker penalized by a dead context: %+v", h.Shard, h)
		}
	}
}

// TestFanOutBudgetSlowShard: with ShardMargin set, a shard slower than its
// budget becomes a shard failure while the request is still alive — the
// query answers partially instead of riding the slow shard to the request
// deadline.
func TestFanOutBudgetSlowShard(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	ref := buildRef(t, f, videorec.Options{})
	r := buildRouter(t, f, 4, videorec.Options{})
	r.SetResilience(Resilience{ShardMargin: 450 * time.Millisecond, MinShardQuorum: 1, BreakerThreshold: -1})
	refFull := fullRanking(t, ref, f.queries)
	owned := ownedIDs(r)

	// The shard sleeps past its budget (deadline − margin ≈ 150ms) but well
	// under the request deadline: the fan-out must classify it failed and
	// answer from the other three shards before the request expires.
	faults.Arm(SiteForShard(FaultFanOutSlow, 1), faults.Latency(300*time.Millisecond))
	q := f.queries[0]
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	start := time.Now()
	got, meta, err := r.RecommendCtx(ctx, q, 10)
	if err != nil {
		t.Fatalf("budgeted query errored: %v (after %v)", err, time.Since(start))
	}
	if !meta.Degraded || meta.ShardsFailed != 1 || meta.ShardsTotal != 4 {
		t.Fatalf("meta = degraded=%v failed=%d total=%d, want degraded 1/4",
			meta.Degraded, meta.ShardsFailed, meta.ShardsTotal)
	}
	requireSameList(t, "budget partial", got, partialExpect(refFull[q], owned[1], 10))
	if shardFail, _, _ := r.FaultCounters(); shardFail != 1 {
		t.Errorf("shardFailTotal = %d, want 1", shardFail)
	}
}

// TestBreakerOpensAndRecoversThroughRouter drives the breaker lifecycle
// through real queries: consecutive shard failures open the breaker (visible
// in Health), open-breaker queries skip the shard without counting new
// faults, and once the fault is disarmed a half-open probe closes it and
// full bit-identical answers resume.
func TestBreakerOpensAndRecoversThroughRouter(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	ref := buildRef(t, f, videorec.Options{})
	r := buildRouter(t, f, 4, videorec.Options{})
	r.SetResilience(Resilience{
		MinShardQuorum:    1,
		BreakerThreshold:  2,
		BreakerBackoff:    40 * time.Millisecond,
		BreakerMaxBackoff: 80 * time.Millisecond,
	})

	faults.Arm(SiteForShard(FaultFanOut, 2), faults.Error(nil))
	for i := 0; i < 2; i++ {
		if _, meta, err := r.RecommendCtx(context.Background(), f.queries[0], 10); err != nil || meta.ShardsFailed != 1 {
			t.Fatalf("query %d: err=%v failed=%d", i, err, meta.ShardsFailed)
		}
	}
	if h := r.Health()[2]; h.Breaker != BreakerOpen || h.ConsecutiveFails != 2 || h.Opens != 1 {
		t.Fatalf("after threshold: health = %+v, want open breaker", h)
	}
	shardFail, breakerOpen, _ := r.FaultCounters()
	if shardFail != 2 || breakerOpen != 1 {
		t.Fatalf("counters after open: fail=%d open=%d, want 2/1", shardFail, breakerOpen)
	}

	// With the breaker open the shard is skipped, still a partial answer but
	// no new fault is counted against it.
	if _, meta, err := r.RecommendCtx(context.Background(), f.queries[0], 10); err != nil || meta.ShardsFailed != 1 {
		t.Fatalf("open-breaker query: err=%v failed=%d", err, meta.ShardsFailed)
	}
	if gotFail, _, _ := r.FaultCounters(); gotFail != shardFail {
		t.Errorf("skip counted as a shard fault: %d -> %d", shardFail, gotFail)
	}

	// Disarm and let the half-open probe recover the shard.
	faults.Disarm(SiteForShard(FaultFanOut, 2))
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, meta, err := r.RecommendCtx(context.Background(), f.queries[0], 10)
		if err == nil && meta.ShardsFailed == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: err=%v failed=%d health=%+v", err, meta.ShardsFailed, r.Health()[2])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := r.Health()[2]; h.Breaker != BreakerClosed || h.ConsecutiveFails != 0 {
		t.Fatalf("after recovery: health = %+v, want closed breaker", h)
	}
	requireSameRankings(t, "post-recovery", ref, r, f.queries, nil)
}

// TestBreakerAbortedProbeRecoversThroughRouter pins the dangling-probe
// regression through real queries: when
// the parent request dies while a half-open probe is in flight, the breaker
// must settle back to open (probe rescheduled) instead of sticking
// half-open — where allow() refuses every dispatch and the shard would be
// skipped on all future queries until a topology change.
func TestBreakerAbortedProbeRecoversThroughRouter(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	r := buildRouter(t, f, 2, videorec.Options{})
	r.SetResilience(Resilience{
		MinShardQuorum:    1,
		BreakerThreshold:  1,
		BreakerBackoff:    10 * time.Millisecond,
		BreakerMaxBackoff: 20 * time.Millisecond,
	})

	// Open shard 1's breaker with one injected error.
	faults.Arm(SiteForShard(FaultFanOut, 1), faults.Error(nil))
	if _, meta, err := r.RecommendCtx(context.Background(), f.queries[0], 10); err != nil || meta.ShardsFailed != 1 {
		t.Fatalf("opening query: err=%v failed=%d", err, meta.ShardsFailed)
	}
	if h := r.Health()[1]; h.Breaker != BreakerOpen {
		t.Fatalf("breaker not open after threshold: %+v", h)
	}

	// Swap the error for latency and let the backoff elapse: the next query
	// wins the half-open probe, sleeps past the request deadline, and the
	// parent context dies with the probe still unsettled.
	faults.Disarm(SiteForShard(FaultFanOut, 1))
	faults.Arm(SiteForShard(FaultFanOutSlow, 1), faults.Latency(150*time.Millisecond))
	time.Sleep(25 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := r.RecommendCtx(ctx, f.queries[0], 10); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("probe query: err=%v, want context.DeadlineExceeded", err)
	}
	if h := r.Health()[1]; h.Breaker == BreakerHalfOpen {
		t.Fatalf("aborted probe left the breaker half-open: %+v", h)
	}
	// The abort is not evidence against the shard: no fault counted beyond
	// the opening error.
	if shardFail, breakerOpen, _ := r.FaultCounters(); shardFail != 1 || breakerOpen != 1 {
		t.Errorf("aborted probe advanced fault counters: fail=%d open=%d, want 1/1", shardFail, breakerOpen)
	}

	// Disarm: the rescheduled probe must recover the shard to full serving —
	// with the bug, half-open never exits and this loop times out.
	faults.Reset()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, meta, err := r.RecommendCtx(context.Background(), f.queries[0], 10)
		if err == nil && meta.ShardsFailed == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never recovered after aborted probe: err=%v failed=%d health=%+v",
				err, meta.ShardsFailed, r.Health()[1])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := r.Health()[1]; h.Breaker != BreakerClosed {
		t.Fatalf("after recovery: %+v, want closed", h)
	}
}

// TestQuorumCountsOnlyClosedBreakers pins the readiness accounting: healthy
// counts closed breakers only. A half-open shard refuses every dispatch but
// its single probe, so from a live query's perspective it is still failing
// and must not prop up /readyz.
func TestQuorumCountsOnlyClosedBreakers(t *testing.T) {
	f := loadFixture(t, 21)
	r := buildRouter(t, f, 3, videorec.Options{})
	r.SetResilience(Resilience{MinShardQuorum: 2, BreakerThreshold: 1})

	if required, healthy := r.Quorum(); required != 2 || healthy != 3 {
		t.Fatalf("all-closed quorum = (%d, %d), want (2, 3)", required, healthy)
	}
	s := r.set()
	s.breakers[1].failure(false) // open
	s.breakers[2].state.Store(stHalfOpen)
	if _, healthy := r.Quorum(); healthy != 1 {
		t.Fatalf("healthy = %d with one open and one half-open breaker, want 1", healthy)
	}
}

// TestMergedPartialOrderingGolden pins the merged-partial contract across
// strategies and shard counts: the merge over any surviving shard subset
// equals the single-engine ranking restricted to that subset's videos, in
// the same (score desc, id asc) order.
func TestMergedPartialOrderingGolden(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	for _, strat := range strategies(testing.Short()) {
		strat := strat
		t.Run(stratName(strat), func(t *testing.T) {
			opts := videorec.Options{Strategy: strat, RefineWorkers: 1}
			ref := buildRef(t, f, opts)
			refFull := fullRanking(t, ref, f.queries)
			for _, n := range []int{2, 4} {
				t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
					r := buildRouter(t, f, n, opts)
					r.SetResilience(Resilience{MinShardQuorum: 1, BreakerThreshold: -1})
					owned := ownedIDs(r)

					// Fail every single shard, and (for n > 2) every shard's
					// complement — the two extremes of subset size.
					var failSets [][]int
					for i := 0; i < n; i++ {
						failSets = append(failSets, []int{i})
						if n > 2 {
							var comp []int
							for j := 0; j < n; j++ {
								if j != i {
									comp = append(comp, j)
								}
							}
							failSets = append(failSets, comp)
						}
					}
					for _, fs := range failSets {
						dead := map[string]bool{}
						for _, i := range fs {
							faults.Arm(SiteForShard(FaultFanOut, i), faults.Error(nil))
							for id := range owned[i] {
								dead[id] = true
							}
						}
						for _, q := range f.queries {
							got, meta, err := r.RecommendCtx(context.Background(), q, 10)
							if err != nil {
								t.Fatalf("failset %v query %s: %v", fs, q, err)
							}
							if meta.ShardsFailed != len(fs) || meta.ShardsTotal != n || !meta.Degraded {
								t.Fatalf("failset %v query %s: meta = degraded=%v %d/%d",
									fs, q, meta.Degraded, meta.ShardsFailed, meta.ShardsTotal)
							}
							requireSameList(t, fmt.Sprintf("failset %v query %s", fs, q),
								got, partialExpect(refFull[q], dead, 10))
						}
						faults.Reset()
					}
				})
			}
		})
	}
}

// TestDrainRollbackOnAddFailure pins the transactional drain against the
// mid-drain ingest failure: the drain must roll back to a bit-identical
// pre-drain router — same shard count, same record set, same rankings, no
// record lost or duplicated — and succeed once the fault clears.
func TestDrainRollbackOnAddFailure(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	ref := buildRef(t, f, videorec.Options{})
	r := buildRouter(t, f, 4, videorec.Options{})
	base := t.TempDir() + "/wal"
	if err := r.AttachJournals(base); err != nil {
		t.Fatal(err)
	}
	drainedEng, _ := r.ShardEngine(1)
	wantIDs := fmt.Sprint(r.SortedIDs())
	wantLen := r.Len()

	// Fail mid-way: some records already re-homed, the rest pending — the
	// worst partial state the rollback must unwind. (FailN fails the first n
	// hits; a counter-based handler fails exactly the failAt-th.)
	failAt := drainedEng.Len()/2 + 1
	hits := 0
	faults.Arm(FaultDrainAdd, func() error {
		hits++
		if hits == failAt {
			return faults.ErrInjected
		}
		return nil
	})

	moved, err := r.DrainShard(1)
	if err == nil || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("fault-injected drain: moved=%d err=%v, want injected failure", moved, err)
	}
	if moved != 0 {
		t.Errorf("failed drain reported %d moved", moved)
	}
	if r.NumShards() != 4 {
		t.Fatalf("rollback left %d shards, want 4", r.NumShards())
	}
	if r.Len() != wantLen {
		t.Fatalf("rollback lost records: %d videos, want %d", r.Len(), wantLen)
	}
	if got := fmt.Sprint(r.SortedIDs()); got != wantIDs {
		t.Fatalf("rollback changed the record set:\ngot:  %s\nwant: %s", got, wantIDs)
	}
	if attached, _, _, _ := drainedEng.JournalStatus(); !attached {
		t.Error("failed drain closed the drained shard's journal")
	}
	requireSameRankings(t, "post-rollback", ref, r, f.queries, nil)

	// Clear the fault: the same drain now completes, moving every record.
	faults.Reset()
	moved, err = r.DrainShard(1)
	if err != nil {
		t.Fatalf("drain after disarm: %v", err)
	}
	if moved != drainedEng.Len() {
		t.Errorf("drain moved %d records, drained shard held %d", moved, drainedEng.Len())
	}
	if r.NumShards() != 3 || r.Len() != wantLen {
		t.Fatalf("after drain: %d shards %d videos, want 3 shards %d videos", r.NumShards(), r.Len(), wantLen)
	}
	if attached, _, _, _ := drainedEng.JournalStatus(); attached {
		t.Error("successful drain left the drained shard's journal attached")
	}
	requireSameRankings(t, "post-drain", ref, r, f.queries, nil)
}

// TestDrainRollbackOnReindexFailure: the latest possible drain failure —
// every record already re-homed, a survivor's index rebuild fails — still
// rolls back to the exact pre-drain state.
func TestDrainRollbackOnReindexFailure(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	ref := buildRef(t, f, videorec.Options{})
	r := buildRouter(t, f, 4, videorec.Options{})
	wantIDs := fmt.Sprint(r.SortedIDs())
	wantLen := r.Len()

	faults.Arm(FaultDrainReindex, faults.FailN(1, nil))
	moved, err := r.DrainShard(2)
	if err == nil || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("reindex-failed drain: moved=%d err=%v, want injected failure", moved, err)
	}
	if r.NumShards() != 4 || r.Len() != wantLen {
		t.Fatalf("rollback left %d shards %d videos, want 4 shards %d", r.NumShards(), r.Len(), wantLen)
	}
	if got := fmt.Sprint(r.SortedIDs()); got != wantIDs {
		t.Fatalf("rollback changed the record set:\ngot:  %s\nwant: %s", got, wantIDs)
	}
	requireSameRankings(t, "post-reindex-rollback", ref, r, f.queries, nil)

	faults.Reset()
	if _, err := r.DrainShard(2); err != nil {
		t.Fatalf("drain after disarm: %v", err)
	}
	if r.NumShards() != 3 || r.Len() != wantLen {
		t.Fatalf("after drain: %d shards %d videos, want 3 shards %d", r.NumShards(), r.Len(), wantLen)
	}
	requireSameRankings(t, "post-drain", ref, r, f.queries, nil)
}

// TestShardChaosConcurrentFaults is the race-enabled chaos drill: latency,
// error and panic faults armed across shards while queries, updates and a
// drain run concurrently. Every non-error answer must be either the
// bit-identical full ranking or a correctly-marked partial one, and once the
// faults clear the breakers must recover to full bit-identical serving.
func TestShardChaosConcurrentFaults(t *testing.T) {
	defer faults.Reset()
	f := loadFixture(t, 21)
	ref := buildRef(t, f, videorec.Options{})
	r := buildRouter(t, f, 4, videorec.Options{})
	r.SetResilience(Resilience{
		MinShardQuorum:    2,
		BreakerThreshold:  3,
		BreakerBackoff:    20 * time.Millisecond,
		BreakerMaxBackoff: 40 * time.Millisecond,
	})

	// Reference rankings for the static phase: the full per-query ranking
	// (for score lookups on partial answers) and its top-10 prefix (the
	// bit-identity target for full answers).
	refFull := fullRanking(t, ref, f.queries)
	refTop := map[string][]videorec.Recommendation{}
	refScore := map[string]map[string]float64{}
	for q, full := range refFull {
		top := full
		if len(top) > 10 {
			top = full[:10]
		}
		refTop[q] = top
		m := map[string]float64{}
		for _, rec := range full {
			m[rec.VideoID] = rec.Score
		}
		refScore[q] = m
	}

	// checkShape validates the structural invariants every successful answer
	// must satisfy, chaos or not: no duplicate ids, strict (score desc, id
	// asc) order, partiality marked Degraded, sane shard accounting.
	checkShape := func(phase, q string, out []videorec.Recommendation, meta videorec.RecommendMeta) bool {
		ok := true
		if meta.ShardsFailed > 0 && !meta.Degraded {
			t.Errorf("%s %s: partial answer (failed=%d) not marked degraded", phase, q, meta.ShardsFailed)
			ok = false
		}
		if meta.ShardsFailed < 0 || meta.ShardsFailed >= meta.ShardsTotal && meta.ShardsFailed != 0 {
			t.Errorf("%s %s: shard accounting %d/%d", phase, q, meta.ShardsFailed, meta.ShardsTotal)
			ok = false
		}
		seen := map[string]bool{}
		for i, rec := range out {
			if seen[rec.VideoID] {
				t.Errorf("%s %s: duplicate id %s in merged answer", phase, q, rec.VideoID)
				ok = false
			}
			seen[rec.VideoID] = true
			if i > 0 {
				prev := out[i-1]
				if prev.Score < rec.Score || (prev.Score == rec.Score && prev.VideoID >= rec.VideoID) {
					t.Errorf("%s %s: rank %d out of order: %+v before %+v", phase, q, i, prev, rec)
					ok = false
				}
			}
		}
		return ok
	}

	// Phase A — static corpus under chaos: one shard hard-failing, one
	// panicking every few calls, fleet-wide latency jitter. Full answers
	// must be bit-identical; partial answers must carry exact reference
	// scores in reference order.
	faults.Arm(SiteForShard(FaultFanOut, 1), faults.Error(nil))
	faults.Arm(SiteForShard(FaultFanOut, 2), faults.PanicEvery(4, "chaos: injected shard panic"))
	faults.Arm(FaultFanOutSlow, faults.Latency(200*time.Microsecond))

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				q := f.queries[(w+it)%len(f.queries)]
				out, meta, err := r.RecommendCtx(context.Background(), q, 10)
				if err != nil {
					if !errors.Is(err, ErrQuorum) {
						t.Errorf("phase A %s: unexpected error %v", q, err)
					}
					continue
				}
				if !checkShape("phase A", q, out, meta) {
					continue
				}
				if meta.ShardsFailed == 0 {
					if len(out) != len(refTop[q]) {
						t.Errorf("phase A %s: full answer has %d results, want %d", q, len(out), len(refTop[q]))
						continue
					}
					for i := range out {
						if out[i] != refTop[q][i] {
							t.Errorf("phase A %s: full answer rank %d = %+v, want %+v", q, i, out[i], refTop[q][i])
							break
						}
					}
				} else {
					for _, rec := range out {
						if want, held := refScore[q][rec.VideoID]; !held || want != rec.Score {
							t.Errorf("phase A %s: partial answer id %s score %v, reference %v (held=%v)",
								q, rec.VideoID, rec.Score, want, held)
							break
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Phase B — mutate under chaos: updates and a drain race the query
	// traffic. The corpus is in motion, so only the structural invariants
	// hold; queries may also see not-built/not-found windows mid-drain.
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for w := 0; w < 3; w++ {
		qwg.Add(1)
		go func(w int) {
			defer qwg.Done()
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				q := f.queries[(w+it)%len(f.queries)]
				out, meta, err := r.RecommendCtx(context.Background(), q, 10)
				if err != nil {
					if !errors.Is(err, ErrQuorum) && !errors.Is(err, videorec.ErrNotBuilt) && !errors.Is(err, videorec.ErrNotFound) {
						t.Errorf("phase B %s: unexpected error %v", q, err)
					}
					continue
				}
				checkShape("phase B", q, out, meta)
			}
		}(w)
	}
	src := f.col.Opts.MonthsSource
	if _, err := r.ApplyUpdates(f.updateBatch(src)); err != nil {
		t.Fatalf("chaos update 1: %v", err)
	}
	if _, err := r.DrainShard(3); err != nil {
		t.Fatalf("chaos drain: %v", err)
	}
	if _, err := r.ApplyUpdates(f.updateBatch(src + 1)); err != nil {
		t.Fatalf("chaos update 2: %v", err)
	}
	close(stop)
	qwg.Wait()

	// Phase C — disarm and recover: the reference replays the same updates,
	// the breakers close via half-open probes, and serving returns to full
	// bit-identity (the drain must not have changed any ranking).
	faults.Reset()
	if _, err := ref.ApplyUpdates(f.updateBatch(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ApplyUpdates(f.updateBatch(src + 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		allFull := true
		for _, q := range f.queries {
			_, meta, err := r.RecommendCtx(context.Background(), q, 10)
			if err != nil || meta.ShardsFailed > 0 {
				allFull = false
			}
		}
		if allFull {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breakers never recovered after disarm: health=%+v", r.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, h := range r.Health() {
		if h.Breaker != BreakerClosed {
			t.Errorf("shard %d breaker %s after recovery, want closed", h.Shard, h.Breaker)
		}
	}
	requireSameRankings(t, "post-chaos", ref, r, f.queries, nil)
}
