package shard

import (
	"context"
	"testing"

	"videorec"
)

// BenchmarkFanOut profiles the sharded query path (go test -bench FanOut
// -cpuprofile): the same corpus at 1 and 16 shards isolates the per-shard
// fixed cost the router pays beyond its share of refinement work.
func BenchmarkFanOut(b *testing.B) {
	for _, n := range []int{1, 16} {
		b.Run(map[int]string{1: "shards1", 16: "shards16"}[n], func(b *testing.B) {
			f := loadFixture(b, 21)
			r, err := New(n, videorec.Options{RefineWorkers: 1})
			if err != nil {
				b.Fatal(err)
			}
			ingestAll(b, f, r.Add)
			r.Build()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := f.queries[i%len(f.queries)]
				if _, _, err := r.RecommendCtx(ctx, id, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
