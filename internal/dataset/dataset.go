// Package dataset generates the synthetic sharing community that stands in
// for the paper's 200-hour YouTube crawl (§5.1): topic-driven videos with
// controlled near-duplicates, users with latent interests, timestamped
// comments spanning a 12-month source period plus a 4-month test period, and
// the five popular queries of Table 2 with their top-2 source videos.
//
// Ground truth is known by construction (topic structure), which is what
// lets the simulated evaluator panel in internal/metrics reproduce the
// paper's subjective study: see DESIGN.md §1 for the substitution argument.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"videorec/internal/community"
	"videorec/internal/video"
)

// Table2Queries are the five most popular YouTube queries of Table 2.
var Table2Queries = []string{"youtube", "mariah carey", "miley cyrus", "american idol", "wwe"}

// Comment is one social interaction: a user commenting on a video during a
// timeline month (0-based; months [0, MonthsSource) are the source period,
// the rest the test period).
type Comment struct {
	User    string
	VideoID string
	Month   int
}

// Item is one video of the collection together with its community metadata.
// Frames are rendered lazily (Render) so a 200-hour collection never holds
// all pixels at once.
type Item struct {
	ID             string
	Topic          int // content topic (drives rendering and relevance)
	AudienceTopic  int // fandom the comments come from (== Topic unless mislabeled)
	Owner          string
	NominalSeconds float64
	Comments       []Comment // sorted by month

	seed  int64            // instance seed (edit chain randomness)
	dupOf string           // id of the original when this is a near-duplicate
	specs []video.ShotSpec // the clip's shot list; shared specs = shared footage
	edits []uint8          // transformation codes applied after synthesis
}

// DupOf returns the id of the clip this item is a near-duplicate of, or ""
// when the item is original footage.
func (it *Item) DupOf() string { return it.dupOf }

// SharedShots counts the shot specs two items have in common — the amount of
// footage they share. Same-query clips on YouTube routinely share material;
// the generator models that with per-topic shot pools.
func (it *Item) SharedShots(other *Item) int {
	n := 0
	for _, a := range it.specs {
		for _, b := range other.specs {
			if a == b {
				n++
				break
			}
		}
	}
	return n
}

// Render synthesizes the item's frames from its shot list and applies its
// recorded edit chain, so the whole collection is reproducible from seeds
// alone. Near-duplicates carry their original's shot list.
func (it *Item) Render(opts video.SynthOptions) *video.Video {
	v := video.SynthesizeFromShots(it.ID, it.specs, opts)
	v.NominalSeconds = it.NominalSeconds
	v.Topic = it.Topic
	erng := rand.New(rand.NewSource(it.seed ^ 0x5eed))
	for _, e := range it.edits {
		v = applyEdit(v, e, erng)
	}
	v.ID = it.ID
	return v
}

// Edit codes recorded on near-duplicate items.
const (
	editBrighten = iota
	editContrast
	editNoise
	editCropShift
	editDropFrames
	editReorder
	numEdits
)

func applyEdit(v *video.Video, code uint8, rng *rand.Rand) *video.Video {
	switch code {
	case editBrighten:
		return video.Brighten(v, 10+rng.Float64()*25)
	case editContrast:
		return video.Contrast(v, 0.85+rng.Float64()*0.3)
	case editNoise:
		return video.AddNoise(v, 2+rng.Float64()*3, rng)
	case editCropShift:
		return video.CropShift(v, 1+rng.Intn(2), 1+rng.Intn(2))
	case editDropFrames:
		return video.DropFrames(v, 6+rng.Intn(4))
	case editReorder:
		return video.ReorderShots(v, rng)
	}
	return v
}

// Query is one Table 2 query: its text, the theme topic it maps to, and the
// ids of its top-2 most-commented videos (the recommendation sources, §5.1).
type Query struct {
	ID      string
	Text    string
	Topic   int
	Sources []string
}

// Options controls collection generation.
type Options struct {
	Hours          float64 // nominal dataset size; the paper uses 50–200
	Topics         int     // latent topics; the first 5 are the query themes
	Users          int     // community size
	CommentMean    float64 // mean comments per video (query-theme videos get ~2x)
	DupFraction    float64 // fraction of videos that are edited near-duplicates
	MonthsSource   int     // length of the source period (the paper: 12)
	MonthsTest     int     // length of the test period (the paper: 4)
	Seed           int64
	Synth          video.SynthOptions
	SecondInterest float64 // probability a user follows a second topic
	ShotPool       int     // canonical shots per topic (shared-footage pool)
	PoolShare      float64 // probability a shot is drawn from the topic pool

	// Comment traffic is heavy-tailed, as on real sharing sites: a small
	// power-fan core per topic comments on most of the topic's videos
	// (their co-comment edges are the heavy intra-community edges the
	// Figure 3 partition keys on), regular fans comment occasionally, and
	// anyone may drop a casual comment (light cross-community noise).
	PowerFans   int     // power-fan core size per topic
	PowerShare  float64 // fraction of a video's comments from the power core
	FanShare    float64 // fraction from the topic's regular fans
	CasualShare float64 // fraction from arbitrary users

	// Mislabel is the fraction of clips whose audience belongs to a
	// different topic than their content (cross-posts, clickbait, mis-tagged
	// uploads). Pure social relevance ranks these highly for the wrong
	// queries; content fusion demotes them — they are why ω=1 underperforms
	// ω≈0.7 in Figure 8 ("videos with relevant content are replaced by
	// those irrelevant ones with common social connections").
	Mislabel float64
}

// DefaultOptions mirrors the paper's setup at full scale: 200 nominal hours,
// a 12-month source period and 4 months of update traffic. Most users follow
// a single topic — focused fandoms are what make the UIG separable by
// lightest-edge removal, mirroring the community structure the paper's
// algorithm presupposes.
func DefaultOptions() Options {
	return Options{
		Hours:          200,
		Topics:         20,
		Users:          800,
		CommentMean:    14,
		DupFraction:    0.25,
		MonthsSource:   12,
		MonthsTest:     4,
		Seed:           1,
		Synth:          video.DefaultSynthOptions(),
		SecondInterest: 0.25,
		ShotPool:       10,
		PoolShare:      0.7,
		PowerFans:      10,
		PowerShare:     0.5,
		FanShare:       0.4,
		CasualShare:    0.1,
		Mislabel:       0.15,
	}
}

// Collection is a generated sharing community.
type Collection struct {
	Opts    Options
	Items   []*Item
	ByID    map[string]*Item
	Queries []Query
	Users   []string
}

// Hours returns the nominal duration of the collection in hours.
func (c *Collection) Hours() float64 {
	var s float64
	for _, it := range c.Items {
		s += it.NominalSeconds
	}
	return s / 3600
}

// Generate builds a collection deterministically from opts.Seed.
func Generate(opts Options) *Collection {
	if opts.Topics < 5 {
		opts.Topics = 5
	}
	if opts.Users < 10 {
		opts.Users = 10
	}
	if opts.MonthsSource < 1 {
		opts.MonthsSource = 1
	}
	if opts.Synth.Width == 0 {
		opts.Synth = video.DefaultSynthOptions()
	}
	if opts.ShotPool < 1 {
		opts.ShotPool = 10
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	c := &Collection{Opts: opts, ByID: make(map[string]*Item)}

	// Users with latent interests: one focused topic, sometimes a second.
	pickTopic := func() int {
		// Bias interests toward the query themes so those communities are
		// dense, like real fandoms.
		if rng.Float64() < 0.6 {
			return rng.Intn(5)
		}
		return rng.Intn(opts.Topics)
	}
	interests := make([][]int, opts.Users)
	for u := 0; u < opts.Users; u++ {
		name := fmt.Sprintf("user%04d", u)
		c.Users = append(c.Users, name)
		seen := map[int]bool{pickTopic(): true}
		if rng.Float64() < opts.SecondInterest {
			seen[pickTopic()] = true
		}
		for t := range seen {
			interests[u] = append(interests[u], t)
		}
		sort.Ints(interests[u])
	}

	// Fan rosters are built from single-interest users only: a high-activity
	// user with split loyalties would put heavy edges into two fandoms and
	// chain them together under the paper's single-linkage partition (the
	// classic giant-component pathology). Dual-interest users still comment
	// through the casual channel, so light cross-community edges — the ones
	// the Figure 3 removal loop is designed to cut — exist in the UIG.
	fansOf := make([][]int, opts.Topics)
	powerOf := make([][]int, opts.Topics)
	for u, ts := range interests {
		if len(ts) != 1 {
			continue
		}
		t := ts[0]
		fansOf[t] = append(fansOf[t], u)
		if len(powerOf[t]) < opts.PowerFans {
			powerOf[t] = append(powerOf[t], u)
		}
	}
	sampler := fanSampler{users: c.Users, fansOf: fansOf, powerOf: powerOf, opts: opts}

	// Per-topic canonical shot pools: same-topic clips draw shots from the
	// pool, so clips answering one query genuinely share footage.
	pools := make([][]video.ShotSpec, opts.Topics)
	for t := range pools {
		pools[t] = make([]video.ShotSpec, opts.ShotPool)
		for j := range pools[t] {
			pools[t][j] = video.ShotSpec{Topic: t, Seed: opts.Seed*7_368_787 + int64(t)*1_000_000 + int64(j)}
		}
	}

	// Videos. Count from nominal hours.
	nominal := opts.Synth.NominalSeconds
	if nominal <= 0 {
		nominal = 420
	}
	n := int(math.Round(opts.Hours * 3600 / nominal))
	if n < 1 {
		n = 1
	}
	perTopic := make(map[int][]*Item)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("v%05d", i)
		// Query themes are hot: they receive half the uploads. The first ten
		// clips cycle the five themes so every Table 2 query has its two
		// source videos even in tiny collections.
		var topic int
		switch {
		case i < 10:
			topic = i % 5
		case rng.Float64() < 0.5:
			topic = rng.Intn(5)
		default:
			topic = rng.Intn(opts.Topics)
		}
		it := &Item{
			ID:             id,
			Topic:          topic,
			AudienceTopic:  topic,
			NominalSeconds: nominal * (0.6 + 0.8*rng.Float64()),
			seed:           opts.Seed*1_000_003 + int64(i),
		}
		if opts.Mislabel > 0 && rng.Float64() < opts.Mislabel {
			it.AudienceTopic = rng.Intn(opts.Topics)
		}
		// Near-duplicate injection: re-edit an earlier clip of the topic.
		if prev := perTopic[topic]; len(prev) > 0 && rng.Float64() < opts.DupFraction {
			orig := prev[rng.Intn(len(prev))]
			for orig.dupOf != "" { // chain back to true footage
				orig = c.ByID[orig.dupOf]
			}
			it.dupOf = orig.ID
			it.specs = append([]video.ShotSpec(nil), orig.specs...)
			nEdits := 1 + rng.Intn(2)
			for e := 0; e < nEdits; e++ {
				it.edits = append(it.edits, uint8(rng.Intn(numEdits)))
			}
		} else {
			// Original footage: a mix of pool shots (shared with other clips
			// of the topic) and fresh shots unique to this clip.
			nShots := opts.Synth.Shots
			if nShots < 1 {
				nShots = 4
			}
			it.specs = make([]video.ShotSpec, 0, nShots)
			for s := 0; s < nShots; s++ {
				if rng.Float64() < opts.PoolShare {
					it.specs = append(it.specs, pools[topic][rng.Intn(len(pools[topic]))])
				} else {
					it.specs = append(it.specs, video.ShotSpec{Topic: topic, Seed: rng.Int63()})
				}
			}
		}
		// Owner prefers the fandom the clip circulates in.
		it.Owner = sampler.owner(rng, it.AudienceTopic)
		c.Items = append(c.Items, it)
		c.ByID[id] = it
		perTopic[topic] = append(perTopic[topic], it)
	}

	// Comments over the full timeline.
	months := opts.MonthsSource + opts.MonthsTest
	for _, it := range c.Items {
		mean := opts.CommentMean
		if it.Topic < 5 {
			mean *= 2 // query themes are popular
		}
		nCom := poissonish(rng, mean)
		for k := 0; k < nCom; k++ {
			it.Comments = append(it.Comments, Comment{
				User:    sampler.pick(rng, it.AudienceTopic),
				VideoID: it.ID,
				Month:   rng.Intn(months),
			})
		}
		sort.Slice(it.Comments, func(a, b int) bool { return it.Comments[a].Month < it.Comments[b].Month })
	}

	// Queries: theme t's top-2 most commented originals are the sources.
	for qi, text := range Table2Queries {
		cands := append([]*Item(nil), perTopic[qi]...)
		sort.Slice(cands, func(a, b int) bool {
			if len(cands[a].Comments) != len(cands[b].Comments) {
				return len(cands[a].Comments) > len(cands[b].Comments)
			}
			return cands[a].ID < cands[b].ID
		})
		q := Query{ID: fmt.Sprintf("q%d", qi+1), Text: text, Topic: qi}
		for _, cand := range cands {
			if len(q.Sources) == 2 {
				break
			}
			if cand.AudienceTopic != cand.Topic {
				continue // a mis-audienced source would misrepresent the query
			}
			q.Sources = append(q.Sources, cand.ID)
		}
		c.Queries = append(c.Queries, q)
	}
	return c
}

// fanSampler draws commenters for a video with the heavy-tailed mix of
// Options: power core, regular fans, casual passers-by. A casual comments on
// at most one video per topic: repeat drive-by comments on a topic would
// build medium-weight edges to that topic's power fans (who blanket the
// topic's videos) and chain fandoms together in the UIG.
type fanSampler struct {
	users      []string
	fansOf     [][]int
	powerOf    [][]int
	opts       Options
	casualSeen []map[int]bool // user idx → topics already casually commented
}

func (s *fanSampler) pick(rng *rand.Rand, topic int) string {
	r := rng.Float64()
	switch {
	case r < s.opts.PowerShare && len(s.powerOf[topic]) > 0:
		return s.users[s.powerOf[topic][rng.Intn(len(s.powerOf[topic]))]]
	case r < s.opts.PowerShare+s.opts.FanShare && len(s.fansOf[topic]) > 0:
		return s.users[s.fansOf[topic][rng.Intn(len(s.fansOf[topic]))]]
	default:
		if s.casualSeen == nil {
			s.casualSeen = make([]map[int]bool, len(s.users))
		}
		for tries := 0; tries < 32; tries++ {
			u := rng.Intn(len(s.users))
			if s.casualSeen[u] == nil {
				s.casualSeen[u] = map[int]bool{}
			}
			if !s.casualSeen[u][topic] {
				s.casualSeen[u][topic] = true
				return s.users[u]
			}
		}
		return s.users[rng.Intn(len(s.users))]
	}
}

// owner picks an uploader: a fan of the topic when one exists.
func (s *fanSampler) owner(rng *rand.Rand, topic int) string {
	if fans := s.fansOf[topic]; len(fans) > 0 {
		return s.users[fans[rng.Intn(len(fans))]]
	}
	return s.users[rng.Intn(len(s.users))]
}

func poissonish(rng *rand.Rand, mean float64) int {
	// Knuth's method is fine for the small means used here.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > int(mean*6+20) {
			return k
		}
	}
}

// Relevance is the ground-truth topical relevance in [0, 1] between two
// videos, used by the simulated evaluator panel: near-duplicates of the same
// footage are fully relevant, same-topic clips strongly relevant, same-theme
// clips moderately relevant, everything else background noise.
func (c *Collection) Relevance(aID, bID string) float64 {
	a, okA := c.ByID[aID]
	b, okB := c.ByID[bID]
	if !okA || !okB {
		return 0
	}
	if aID == bID {
		return 1
	}
	rootA, rootB := a, b
	if rootA.dupOf != "" {
		rootA = c.ByID[rootA.dupOf]
	}
	if rootB.dupOf != "" {
		rootB = c.ByID[rootB.dupOf]
	}
	switch {
	case rootA.ID == rootB.ID:
		return 1
	case a.Topic == b.Topic:
		return 0.8
	case theme(a.Topic) == theme(b.Topic):
		return 0.45
	default:
		return 0.05
	}
}

// theme folds background topics onto the five query themes.
func theme(topic int) int { return topic % 5 }

// AudiencesUpTo returns, for every video, its audience (owner plus
// commenters) restricted to comments strictly before the given month. It is
// the input to BuildUIG at index-construction time.
func (c *Collection) AudiencesUpTo(month int) map[string][]string {
	out := make(map[string][]string, len(c.Items))
	for _, it := range c.Items {
		users := []string{it.Owner}
		for _, cm := range it.Comments {
			if cm.Month < month {
				users = append(users, cm.User)
			}
		}
		out[it.ID] = users
	}
	return out
}

// ConnectionsBetween derives the new social connections formed by comments
// in months [from, to): for each video, every pair among (new commenters ×
// audience so far) gains one unit of weight. This is the {e_i} input of the
// Figure 5 maintenance algorithm.
func (c *Collection) ConnectionsBetween(from, to int) []community.Edge {
	acc := map[userPair]float64{}
	for _, it := range c.Items {
		var old []string
		old = append(old, it.Owner)
		var fresh []string
		for _, cm := range it.Comments {
			switch {
			case cm.Month < from:
				old = append(old, cm.User)
			case cm.Month < to:
				fresh = append(fresh, cm.User)
			}
		}
		seen := map[string]bool{}
		for _, u := range append(old, fresh...) {
			seen[u] = true
		}
		for i, u := range fresh {
			for _, v := range old {
				addPair(acc, u, v)
			}
			for _, v := range fresh[i+1:] {
				addPair(acc, u, v)
			}
		}
		_ = seen
	}
	edges := make([]community.Edge, 0, len(acc))
	for k, w := range acc {
		edges = append(edges, community.Edge{U: k.u, V: k.v, W: w})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	return edges
}

type userPair struct{ u, v string }

func addPair(acc map[userPair]float64, a, b string) {
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	acc[userPair{a, b}]++
}

// SliceHours returns a sub-collection containing a prefix of the items
// summing to roughly the requested nominal hours (the 50/100/150/200-hour
// sweeps of Figure 12). Queries are rebuilt over the subset.
func (c *Collection) SliceHours(hours float64) *Collection {
	sub := &Collection{Opts: c.Opts, ByID: make(map[string]*Item), Users: c.Users}
	sub.Opts.Hours = hours
	var acc float64
	for _, it := range c.Items {
		if acc >= hours*3600 {
			break
		}
		// Near-duplicates of clips outside the subset become originals of
		// their own footage; Render handles that via baseSeed, but the
		// relevance chain needs the dup pointer dropped.
		cp := *it
		if cp.dupOf != "" {
			if _, ok := sub.ByID[cp.dupOf]; !ok {
				cp.dupOf = ""
			}
		}
		sub.Items = append(sub.Items, &cp)
		sub.ByID[cp.ID] = &cp
		acc += cp.NominalSeconds
	}
	// Rebuild queries over the subset.
	perTopic := map[int][]*Item{}
	for _, it := range sub.Items {
		perTopic[it.Topic] = append(perTopic[it.Topic], it)
	}
	for qi, text := range Table2Queries {
		cands := append([]*Item(nil), perTopic[qi]...)
		sort.Slice(cands, func(a, b int) bool {
			if len(cands[a].Comments) != len(cands[b].Comments) {
				return len(cands[a].Comments) > len(cands[b].Comments)
			}
			return cands[a].ID < cands[b].ID
		})
		q := Query{ID: fmt.Sprintf("q%d", qi+1), Text: text, Topic: qi}
		for _, cand := range cands {
			if len(q.Sources) == 2 {
				break
			}
			if cand.AudienceTopic != cand.Topic {
				continue // a mis-audienced source would misrepresent the query
			}
			q.Sources = append(q.Sources, cand.ID)
		}
		sub.Queries = append(sub.Queries, q)
	}
	return sub
}
