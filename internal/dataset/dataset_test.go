package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"videorec/internal/video"
)

// smallOptions keeps generation fast in unit tests.
func smallOptions() Options {
	o := DefaultOptions()
	o.Hours = 4
	o.Users = 120
	o.Seed = 7
	return o
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallOptions())
	b := Generate(smallOptions())
	if len(a.Items) != len(b.Items) {
		t.Fatalf("item counts differ: %d vs %d", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		x, y := a.Items[i], b.Items[i]
		if x.ID != y.ID || x.Topic != y.Topic || x.Owner != y.Owner ||
			len(x.Comments) != len(y.Comments) || x.dupOf != y.dupOf {
			t.Fatalf("item %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestGenerateHoursAccounting(t *testing.T) {
	c := Generate(smallOptions())
	if got := c.Hours(); math.Abs(got-4) > 1.5 {
		t.Errorf("Hours = %g, want ~4", got)
	}
	if len(c.Items) < 20 {
		t.Errorf("only %d items for 4 nominal hours", len(c.Items))
	}
}

func TestGenerateQueries(t *testing.T) {
	c := Generate(smallOptions())
	if len(c.Queries) != 5 {
		t.Fatalf("queries = %d, want 5", len(c.Queries))
	}
	for qi, q := range c.Queries {
		if q.Text != Table2Queries[qi] {
			t.Errorf("query %d text = %q", qi, q.Text)
		}
		if len(q.Sources) != 2 {
			t.Errorf("query %q has %d sources, want 2", q.Text, len(q.Sources))
		}
		for _, src := range q.Sources {
			it, ok := c.ByID[src]
			if !ok {
				t.Fatalf("source %s missing", src)
			}
			if it.Topic != q.Topic {
				t.Errorf("source %s topic %d, want %d", src, it.Topic, q.Topic)
			}
		}
	}
}

func TestNearDuplicateChainsResolved(t *testing.T) {
	c := Generate(smallOptions())
	dups := 0
	for _, it := range c.Items {
		if it.DupOf() == "" {
			continue
		}
		dups++
		orig, ok := c.ByID[it.DupOf()]
		if !ok {
			t.Fatalf("dup %s points at missing original %s", it.ID, it.DupOf())
		}
		if orig.DupOf() != "" {
			t.Errorf("dup %s points at another dup %s (chains must resolve)", it.ID, orig.ID)
		}
		if orig.Topic != it.Topic {
			t.Errorf("dup %s changed topic", it.ID)
		}
		if len(it.edits) == 0 {
			t.Errorf("dup %s has no edits", it.ID)
		}
	}
	if dups == 0 {
		t.Error("no near-duplicates generated")
	}
}

func TestRenderDeterministicAndDupSimilarity(t *testing.T) {
	c := Generate(smallOptions())
	opts := c.Opts.Synth
	var dup *Item
	for _, it := range c.Items {
		if it.DupOf() != "" {
			dup = it
			break
		}
	}
	if dup == nil {
		t.Fatal("no dup found")
	}
	v1 := dup.Render(opts)
	v2 := dup.Render(opts)
	if len(v1.Frames) != len(v2.Frames) {
		t.Fatal("render not deterministic in frame count")
	}
	for i := range v1.Frames {
		for p := range v1.Frames[i].Pix {
			if v1.Frames[i].Pix[p] != v2.Frames[i].Pix[p] {
				t.Fatal("render not deterministic in pixels")
			}
		}
	}
	// A dup's footage must be closer to its original than to a clip of a
	// different theme (coarse mean-intensity check; the signature-level
	// check lives in internal/signature tests).
	orig := c.ByID[dup.DupOf()].Render(opts)
	var other *Item
	for _, it := range c.Items {
		if theme(it.Topic) != theme(dup.Topic) && it.DupOf() == "" {
			other = it
			break
		}
	}
	if other == nil {
		t.Skip("no cross-theme item in small collection")
	}
	ov := other.Render(opts)
	if d1, d2 := meanDiff(v1, orig), meanDiff(v1, ov); d1 >= d2 {
		t.Errorf("dup not closer to original: %g vs %g", d1, d2)
	}
}

func meanDiff(a, b *video.Video) float64 {
	n := len(a.Frames)
	if len(b.Frames) < n {
		n = len(b.Frames)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(a.Frames[i].Mean() - b.Frames[i].Mean())
	}
	return s / float64(n)
}

func TestRelevanceRules(t *testing.T) {
	c := Generate(smallOptions())
	var dup *Item
	for _, it := range c.Items {
		if it.DupOf() != "" {
			dup = it
			break
		}
	}
	if dup == nil {
		t.Fatal("no dup")
	}
	if got := c.Relevance(dup.ID, dup.DupOf()); got != 1 {
		t.Errorf("dup relevance = %g, want 1", got)
	}
	if got := c.Relevance("v00000", "v00000"); got != 1 {
		t.Errorf("self relevance = %g, want 1", got)
	}
	if got := c.Relevance("v00000", "nope"); got != 0 {
		t.Errorf("missing id relevance = %g, want 0", got)
	}
	// Same topic beats different theme.
	var same, diff string
	a := c.Items[0]
	for _, it := range c.Items[1:] {
		if it.Topic == a.Topic && same == "" && it.DupOf() == "" && a.DupOf() == "" {
			same = it.ID
		}
		if theme(it.Topic) != theme(a.Topic) && diff == "" {
			diff = it.ID
		}
	}
	if same != "" && diff != "" {
		if c.Relevance(a.ID, same) <= c.Relevance(a.ID, diff) {
			t.Error("same-topic relevance should beat cross-theme")
		}
	}
}

func TestCommentsSortedAndInRange(t *testing.T) {
	c := Generate(smallOptions())
	months := c.Opts.MonthsSource + c.Opts.MonthsTest
	total := 0
	for _, it := range c.Items {
		for i, cm := range it.Comments {
			total++
			if cm.Month < 0 || cm.Month >= months {
				t.Fatalf("comment month %d out of range", cm.Month)
			}
			if i > 0 && cm.Month < it.Comments[i-1].Month {
				t.Fatalf("comments not sorted on %s", it.ID)
			}
			if cm.VideoID != it.ID {
				t.Fatalf("comment carries wrong video id")
			}
		}
	}
	if total == 0 {
		t.Fatal("no comments generated")
	}
}

func TestAudiencesUpTo(t *testing.T) {
	c := Generate(smallOptions())
	aud := c.AudiencesUpTo(c.Opts.MonthsSource)
	if len(aud) != len(c.Items) {
		t.Fatalf("audiences for %d videos, want %d", len(aud), len(c.Items))
	}
	for _, it := range c.Items {
		users := aud[it.ID]
		if len(users) == 0 || users[0] != it.Owner {
			t.Fatalf("audience of %s must start with owner", it.ID)
		}
	}
	// Month 0 audiences contain only owners.
	aud0 := c.AudiencesUpTo(0)
	for id, users := range aud0 {
		if len(users) != 1 {
			t.Fatalf("month-0 audience of %s = %v", id, users)
		}
	}
}

func TestConnectionsBetween(t *testing.T) {
	c := Generate(smallOptions())
	edges := c.ConnectionsBetween(c.Opts.MonthsSource, c.Opts.MonthsSource+2)
	if len(edges) == 0 {
		t.Fatal("no connections in test period")
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge endpoints not ordered: %+v", e)
		}
		if e.W <= 0 {
			t.Fatalf("non-positive weight: %+v", e)
		}
	}
	// More months → at least as many connections.
	e1 := c.ConnectionsBetween(c.Opts.MonthsSource, c.Opts.MonthsSource+1)
	if len(e1) > len(edges) {
		t.Errorf("1 month has %d edges but 2 months only %d", len(e1), len(edges))
	}
}

func TestSliceHours(t *testing.T) {
	o := smallOptions()
	o.Hours = 8
	c := Generate(o)
	sub := c.SliceHours(3)
	if got := sub.Hours(); got > 3.8 || got < 2 {
		t.Errorf("sliced Hours = %g, want ~3", got)
	}
	if len(sub.Queries) != 5 {
		t.Errorf("sliced queries = %d", len(sub.Queries))
	}
	for _, it := range sub.Items {
		if it.DupOf() != "" {
			if _, ok := sub.ByID[it.DupOf()]; !ok {
				t.Errorf("dup %s points outside the slice", it.ID)
			}
		}
	}
	// Source videos must exist in the subset.
	for _, q := range sub.Queries {
		for _, s := range q.Sources {
			if _, ok := sub.ByID[s]; !ok {
				t.Errorf("query source %s missing from slice", s)
			}
		}
	}
}

func TestPropertyGenerateWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		o := smallOptions()
		o.Seed = seed
		o.Hours = 2
		c := Generate(o)
		if len(c.Items) == 0 || len(c.Users) != o.Users {
			return false
		}
		for _, it := range c.Items {
			if _, ok := c.ByID[it.ID]; !ok {
				return false
			}
			if it.Topic < 0 || it.Topic >= o.Topics {
				return false
			}
			if it.Owner == "" {
				return false
			}
		}
		return len(c.Queries) == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	o := smallOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(o)
	}
}

func BenchmarkRender(b *testing.B) {
	c := Generate(smallOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Items[i%len(c.Items)].Render(c.Opts.Synth)
	}
}

func TestSharedShotsWithinTopic(t *testing.T) {
	c := Generate(smallOptions())
	// Two originals of the same topic drawing from the pool should share at
	// least one shot somewhere in the collection; cross-topic never share.
	maxSame, maxCross := 0, 0
	for i, a := range c.Items {
		for _, b := range c.Items[i+1:] {
			if a.DupOf() != "" || b.DupOf() != "" {
				continue
			}
			n := a.SharedShots(b)
			if a.Topic == b.Topic && n > maxSame {
				maxSame = n
			}
			if a.Topic != b.Topic && n > maxCross {
				maxCross = n
			}
		}
	}
	if maxSame == 0 {
		t.Error("no same-topic originals share pool footage")
	}
	if maxCross != 0 {
		t.Errorf("cross-topic clips share %d shots, want 0", maxCross)
	}
}

func TestDupSharesAllShotsWithOriginal(t *testing.T) {
	c := Generate(smallOptions())
	for _, it := range c.Items {
		if it.DupOf() == "" {
			continue
		}
		orig := c.ByID[it.DupOf()]
		if got := it.SharedShots(orig); got != len(orig.specs) {
			t.Errorf("dup %s shares %d/%d shots with original", it.ID, got, len(orig.specs))
		}
	}
}
