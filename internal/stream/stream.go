// Package stream implements online near-duplicate monitoring over a video
// stream — the operating mode of the content substrate the paper adopts
// ([35], "Monitoring near duplicates over video streams"). Frames are pushed
// one at a time; the monitor detects shot boundaries online, extracts cuboid
// signatures per completed shot, probes the LSB index of a reference
// library, and raises an alert once enough of a reference's signatures have
// been matched.
package stream

import (
	"math"
	"sort"

	"videorec/internal/index"
	"videorec/internal/signature"
	"videorec/internal/video"
)

// Options tunes the monitor.
type Options struct {
	Sig            signature.Options // extraction parameters per shot
	LSB            index.LSBOptions
	MatchThreshold float64 // SimC level for a signature match
	ProbePerSig    int     // LSB candidates examined per stream signature
	AlertMatches   int     // matched signatures before a video is reported
	MaxShotFrames  int     // force a shot boundary after this many frames
}

// DefaultOptions follows the recommendation engine's content defaults.
func DefaultOptions() Options {
	return Options{
		Sig:            signature.DefaultOptions(),
		LSB:            index.DefaultLSBOptions(),
		MatchThreshold: signature.DefaultMatchThreshold,
		ProbePerSig:    24,
		AlertMatches:   3,
		MaxShotFrames:  256,
	}
}

// Match is one signature-level hit against a reference video.
type Match struct {
	VideoID    string
	Similarity float64
	StreamShot int // index of the completed shot that matched
}

// Alert reports that a reference video has accumulated enough matches to be
// considered a near-duplicate of recent stream content.
type Alert struct {
	VideoID      string
	Matches      int
	MeanSimilar  float64
	FirstShot    int
	LastShot     int
	TotalStreamN int // signatures seen on the stream so far
}

// Monitor is the online detector. Not safe for concurrent use.
type Monitor struct {
	opts Options
	lib  *index.LSB

	// The LSB index stores dense uint32 video indices; the monitor owns the
	// id ↔ index mapping for its reference library.
	refs   []string
	refIdx map[string]uint32

	buf       []*video.Frame
	prevHist  []float64
	diffs     []float64
	shotCount int
	sigCount  int

	tally   map[string]*tally
	alerted map[string]bool
}

type tally struct {
	matches int
	simSum  float64
	first   int
	last    int
}

// NewMonitor creates an empty monitor.
func NewMonitor(opts Options) *Monitor {
	if opts.ProbePerSig <= 0 {
		opts = DefaultOptions()
	}
	return &Monitor{
		opts:    opts,
		lib:     index.NewLSB(opts.LSB),
		refIdx:  map[string]uint32{},
		tally:   map[string]*tally{},
		alerted: map[string]bool{},
	}
}

// AddReference indexes a reference video's signature series. References may
// be added while the stream is running.
func (m *Monitor) AddReference(id string, series signature.Series) {
	i, ok := m.refIdx[id]
	if !ok {
		i = uint32(len(m.refs))
		m.refs = append(m.refs, id)
		m.refIdx[id] = i
	}
	m.lib.Add(i, series)
}

// LibrarySize returns the number of indexed reference signatures.
func (m *Monitor) LibrarySize() int { return m.lib.Len() }

// Push feeds one frame. When the frame closes a shot (histogram cut or
// MaxShotFrames reached), the completed shot is matched against the library
// and any newly crossed alert thresholds are returned.
func (m *Monitor) Push(f *video.Frame) []Alert {
	cut := false
	h := f.Histogram(m.opts.Sig.Cut.Bins)
	if m.prevHist != nil {
		d := video.HistDiff(m.prevHist, h)
		if len(m.buf) >= m.opts.Sig.Cut.MinShotLen && d >= m.opts.Sig.Cut.MinDiff && d > adaptive(m.diffs, m.opts.Sig.Cut) {
			cut = true
		}
		m.diffs = append(m.diffs, d)
		if len(m.diffs) > m.opts.Sig.Cut.Window {
			m.diffs = m.diffs[1:]
		}
	}
	m.prevHist = h

	var alerts []Alert
	if cut || len(m.buf) >= m.opts.MaxShotFrames {
		alerts = m.closeShot()
	}
	m.buf = append(m.buf, f)
	return alerts
}

// Flush closes the currently open shot and returns any resulting alerts.
// Call at end of stream.
func (m *Monitor) Flush() []Alert {
	return m.closeShot()
}

// Alerts returns every alert raised so far, sorted by video id.
func (m *Monitor) Alerts() []Alert {
	var out []Alert
	for id := range m.alerted {
		out = append(out, m.alertFor(id))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].VideoID < out[b].VideoID })
	return out
}

// closeShot extracts signatures from the buffered shot, matches them, and
// returns newly raised alerts.
func (m *Monitor) closeShot() []Alert {
	if len(m.buf) < m.opts.Sig.Cut.MinShotLen {
		m.buf = nil
		return nil
	}
	shot := &video.Video{Frames: m.buf, FPS: 25}
	m.buf = nil
	series := signature.Extract(shot, m.opts.Sig)
	shotIdx := m.shotCount
	m.shotCount++

	var newAlerts []Alert
	for _, sig := range series {
		m.sigCount++
		best := map[string]float64{}
		w := m.lib.NewWalker(signature.Series{sig})
		for probe := 0; probe < m.opts.ProbePerSig; probe++ {
			e, _, ok := w.Next()
			if !ok {
				break
			}
			if s := signature.SimC(sig, e.Sig); s >= m.opts.MatchThreshold {
				if id := m.refs[e.Video]; s > best[id] {
					best[id] = s
				}
			}
		}
		ids := make([]string, 0, len(best))
		for id := range best {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			t := m.tally[id]
			if t == nil {
				t = &tally{first: shotIdx}
				m.tally[id] = t
			}
			t.matches++
			t.simSum += best[id]
			t.last = shotIdx
			if t.matches >= m.opts.AlertMatches && !m.alerted[id] {
				m.alerted[id] = true
				newAlerts = append(newAlerts, m.alertFor(id))
			}
		}
	}
	return newAlerts
}

func (m *Monitor) alertFor(id string) Alert {
	t := m.tally[id]
	return Alert{
		VideoID:      id,
		Matches:      t.matches,
		MeanSimilar:  t.simSum / float64(t.matches),
		FirstShot:    t.first,
		LastShot:     t.last,
		TotalStreamN: m.sigCount,
	}
}

// adaptive is the same mean+σ·std rule the offline cut detector uses.
func adaptive(diffs []float64, opts video.CutOptions) float64 {
	if len(diffs) == 0 {
		return 0
	}
	var mean float64
	for _, d := range diffs {
		mean += d
	}
	mean /= float64(len(diffs))
	var varsum float64
	for _, d := range diffs {
		varsum += (d - mean) * (d - mean)
	}
	return mean + opts.Sigma*math.Sqrt(varsum/float64(len(diffs)))
}
