package stream

import (
	"math/rand"
	"testing"

	"videorec/internal/signature"
	"videorec/internal/video"
)

func synth(topic int, seed int64) *video.Video {
	rng := rand.New(rand.NewSource(seed))
	return video.Synthesize("s", topic, video.DefaultSynthOptions(), rng)
}

// feed pushes every frame of a video through the monitor and collects
// alerts.
func feed(m *Monitor, v *video.Video) []Alert {
	var alerts []Alert
	for _, f := range v.Frames {
		alerts = append(alerts, m.Push(f)...)
	}
	return alerts
}

func buildMonitor(t testing.TB) (*Monitor, *video.Video) {
	t.Helper()
	m := NewMonitor(DefaultOptions())
	ref := synth(3, 7)
	m.AddReference("ref", signature.Extract(ref, DefaultOptions().Sig))
	// Distractor references from other topics.
	for i := 0; i < 4; i++ {
		d := synth(10+i, int64(20+i))
		m.AddReference(vid(i), signature.Extract(d, DefaultOptions().Sig))
	}
	if m.LibrarySize() == 0 {
		t.Fatal("empty library")
	}
	return m, ref
}

func vid(i int) string { return "distractor-" + string(rune('a'+i)) }

func TestDetectsEditedDuplicateInStream(t *testing.T) {
	m, ref := buildMonitor(t)
	// The stream: unrelated content, then an edited copy of the reference,
	// then more unrelated content.
	pre := synth(15, 99)
	dup := video.Brighten(ref, 15)
	post := synth(16, 100)

	feed(m, pre)
	feed(m, dup)
	feed(m, post)
	m.Flush()

	alerts := m.Alerts()
	found := false
	for _, a := range alerts {
		if a.VideoID == "ref" {
			found = true
			if a.Matches < DefaultOptions().AlertMatches {
				t.Errorf("alert with %d matches, threshold %d", a.Matches, DefaultOptions().AlertMatches)
			}
			if a.MeanSimilar < DefaultOptions().MatchThreshold {
				t.Errorf("mean similarity %.3f below threshold", a.MeanSimilar)
			}
		}
		if a.VideoID != "ref" {
			t.Errorf("false alert on %s", a.VideoID)
		}
	}
	if !found {
		t.Error("edited duplicate not detected")
	}
}

func TestNoAlertOnUnrelatedStream(t *testing.T) {
	m, _ := buildMonitor(t)
	feed(m, synth(17, 55))
	feed(m, synth(18, 56))
	m.Flush()
	if alerts := m.Alerts(); len(alerts) != 0 {
		t.Errorf("false alerts: %+v", alerts)
	}
}

func TestAlertRaisedOnce(t *testing.T) {
	m, ref := buildMonitor(t)
	raised := 0
	raised += len(feed(m, ref))
	raised += len(feed(m, ref)) // second pass must not re-alert
	raised += len(m.Flush())
	if raised != 1 {
		t.Errorf("alert raised %d times, want 1", raised)
	}
	// But the tally keeps accumulating.
	if a := m.Alerts(); len(a) != 1 || a[0].Matches < 2 {
		t.Errorf("alerts = %+v", a)
	}
}

func TestReferencesAddedMidStream(t *testing.T) {
	m := NewMonitor(DefaultOptions())
	ref := synth(4, 11)
	feed(m, synth(12, 30)) // nothing indexed yet
	m.AddReference("late", signature.Extract(ref, DefaultOptions().Sig))
	feed(m, ref)
	m.Flush()
	found := false
	for _, a := range m.Alerts() {
		if a.VideoID == "late" {
			found = true
		}
	}
	if !found {
		t.Error("late-added reference not matched")
	}
}

func TestFlushEmptyAndShortShots(t *testing.T) {
	m := NewMonitor(DefaultOptions())
	if alerts := m.Flush(); alerts != nil {
		t.Errorf("flush on empty monitor: %v", alerts)
	}
	// A shot shorter than MinShotLen is discarded without matching.
	f := video.NewFrame(8, 8)
	m.Push(f)
	if alerts := m.Flush(); alerts != nil {
		t.Errorf("short shot produced alerts: %v", alerts)
	}
}

func TestMaxShotFramesForcesBoundary(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxShotFrames = 10
	m := NewMonitor(opts)
	ref := synth(2, 3)
	m.AddReference("r", signature.Extract(ref, opts.Sig))
	// A static stream (no histogram cuts) must still close shots.
	f := video.NewFrame(32, 32)
	for i := 0; i < 35; i++ {
		m.Push(f)
	}
	if m.shotCount == 0 {
		t.Error("no shots closed on a static stream")
	}
}

func BenchmarkMonitorPush(b *testing.B) {
	m, ref := buildMonitor(b)
	frames := ref.Frames
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Push(frames[i%len(frames)])
	}
}

func TestAlertFieldsConsistent(t *testing.T) {
	m, ref := buildMonitor(t)
	feed(m, ref)
	m.Flush()
	for _, a := range m.Alerts() {
		if a.FirstShot > a.LastShot {
			t.Errorf("FirstShot %d > LastShot %d", a.FirstShot, a.LastShot)
		}
		if a.MeanSimilar <= 0 || a.MeanSimilar > 1 {
			t.Errorf("MeanSimilar %g out of (0,1]", a.MeanSimilar)
		}
		if a.TotalStreamN <= 0 {
			t.Errorf("TotalStreamN = %d", a.TotalStreamN)
		}
	}
}

func TestMonitorDefaultsOnZeroOptions(t *testing.T) {
	m := NewMonitor(Options{})
	if m.opts.ProbePerSig <= 0 || m.opts.AlertMatches <= 0 {
		t.Error("zero options not defaulted")
	}
}
