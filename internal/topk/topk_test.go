package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// intWorse orders plain ints: smaller is worse.
func intWorse(a, b int) bool { return a < b }

// Heap selection must return exactly what sort-everything-and-truncate
// returns, for any stream and any k — the selector is a drop-in replacement
// for the full sort, provided the ordering is total.
func TestSelectorMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		k := 1 + rng.Intn(40)
		xs := make([]int, n)
		for i := range xs {
			// A narrow value range forces duplicates; the int ordering is
			// still total so duplicates may appear in any ordering among
			// themselves — compare as sorted slices.
			xs[i] = rng.Intn(50)
		}
		sel := New(k, intWorse)
		for _, x := range xs {
			sel.Offer(x)
		}
		got := sel.Sorted()

		want := append([]int(nil), xs...)
		sort.Sort(sort.Reverse(sort.IntSlice(want))) // best (largest) first
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorEdges(t *testing.T) {
	sel := New(0, intWorse)
	sel.Offer(1)
	sel.Offer(2)
	if sel.Len() != 0 || len(sel.Sorted()) != 0 {
		t.Error("k=0 selector retained items")
	}

	sel = New(5, intWorse)
	if got := sel.Sorted(); len(got) != 0 {
		t.Errorf("empty selector Sorted = %v", got)
	}

	sel = New(5, intWorse)
	sel.Offer(3)
	sel.Offer(1)
	if sel.Len() != 2 {
		t.Errorf("Len = %d, want 2", sel.Len())
	}
	if got := sel.Items(); len(got) != 2 {
		t.Errorf("Items = %v, want 2 entries", got)
	}
	got := sel.Sorted()
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("Sorted = %v, want [3 1]", got)
	}
}

// Offer must not allocate once the selector is at capacity: step 1 offers
// every social candidate through a hot loop.
func TestSelectorOfferZeroAlloc(t *testing.T) {
	sel := New(16, intWorse)
	for i := 0; i < 16; i++ {
		sel.Offer(i)
	}
	allocs := testing.AllocsPerRun(200, func() {
		sel.Offer(20)
	})
	if allocs != 0 {
		t.Fatalf("Offer at capacity allocates %.1f/op, want 0", allocs)
	}
}
