package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// intWorse orders plain ints: smaller is worse.
func intWorse(a, b int) bool { return a < b }

// Heap selection must return exactly what sort-everything-and-truncate
// returns, for any stream and any k — the selector is a drop-in replacement
// for the full sort, provided the ordering is total.
func TestSelectorMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		k := 1 + rng.Intn(40)
		xs := make([]int, n)
		for i := range xs {
			// A narrow value range forces duplicates; the int ordering is
			// still total so duplicates may appear in any ordering among
			// themselves — compare as sorted slices.
			xs[i] = rng.Intn(50)
		}
		sel := New(k, intWorse)
		for _, x := range xs {
			sel.Offer(x)
		}
		got := sel.Sorted()

		want := append([]int(nil), xs...)
		sort.Sort(sort.Reverse(sort.IntSlice(want))) // best (largest) first
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorEdges(t *testing.T) {
	sel := New(0, intWorse)
	sel.Offer(1)
	sel.Offer(2)
	if sel.Len() != 0 || len(sel.Sorted()) != 0 {
		t.Error("k=0 selector retained items")
	}

	sel = New(5, intWorse)
	if got := sel.Sorted(); len(got) != 0 {
		t.Errorf("empty selector Sorted = %v", got)
	}

	sel = New(5, intWorse)
	sel.Offer(3)
	sel.Offer(1)
	if sel.Len() != 2 {
		t.Errorf("Len = %d, want 2", sel.Len())
	}
	if got := sel.Items(); len(got) != 2 {
		t.Errorf("Items = %v, want 2 entries", got)
	}
	got := sel.Sorted()
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("Sorted = %v, want [3 1]", got)
	}
}

// Offer must not allocate once the selector is at capacity: step 1 offers
// every social candidate through a hot loop.
func TestSelectorOfferZeroAlloc(t *testing.T) {
	sel := New(16, intWorse)
	for i := 0; i < 16; i++ {
		sel.Offer(i)
	}
	allocs := testing.AllocsPerRun(200, func() {
		sel.Offer(20)
	})
	if allocs != 0 {
		t.Fatalf("Offer at capacity allocates %.1f/op, want 0", allocs)
	}
}

// scored mimics the serving layer's ranked result: a score with a string id
// tiebreak, selected under the engine's (score desc, id asc) total order.
type scored struct {
	id    string
	score float64
}

func scoredWorse(a, b scored) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.id > b.id
}

// Merging per-shard selections must preserve (score desc, id asc) exactly,
// including across deliberately colliding scores contributed by different
// shards — the property the scatter-gather router's bit-identity rests on.
// Regression for the merge-of-selectors path: per-shard top-Ks feed a merge
// selector, and the result must equal one selector fed the full stream.
func TestSelectorMergePreservesTieOrder(t *testing.T) {
	// Three "shards", each already reduced to a local top-K. Scores collide
	// across shards on purpose: 0.5 appears on every shard, 0.9 on two.
	shards := [][]scored{
		{{"s0-a", 0.9}, {"s0-b", 0.5}, {"s0-c", 0.1}},
		{{"s1-a", 0.5}, {"s1-b", 0.5}, {"s1-c", 0.3}},
		{{"s2-a", 0.9}, {"s2-b", 0.5}, {"s2-c", 0.05}},
	}
	const k = 6
	merge := New(k, scoredWorse)
	var all []scored
	for _, sh := range shards {
		for _, s := range sh {
			merge.Offer(s)
			all = append(all, s)
		}
	}
	got := merge.Sorted()

	single := New(k, scoredWorse)
	for _, s := range all {
		single.Offer(s)
	}
	want := single.Sorted()

	expect := []scored{
		{"s0-a", 0.9}, {"s2-a", 0.9},
		{"s0-b", 0.5}, {"s1-a", 0.5}, {"s1-b", 0.5}, {"s2-b", 0.5},
	}
	if len(got) != len(expect) {
		t.Fatalf("merged %d items, want %d", len(got), len(expect))
	}
	for i := range expect {
		if got[i] != expect[i] {
			t.Errorf("rank %d: got %v, want %v", i, got[i], expect[i])
		}
		if got[i] != want[i] {
			t.Errorf("rank %d: merge-of-selections %v differs from single selection %v", i, got[i], want[i])
		}
	}
}

// Property form: for any scores (drawn from a small set to force ties) and
// any sharding of the stream, merging per-shard top-Ks equals selecting over
// the whole stream — local selection loses no global winner.
func TestSelectorMergeMatchesGlobal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		k := 1 + rng.Intn(12)
		nshards := 1 + rng.Intn(8)
		locals := make([]*Selector[scored], nshards)
		for i := range locals {
			locals[i] = New(k, scoredWorse)
		}
		global := New(k, scoredWorse)
		for i := 0; i < n; i++ {
			s := scored{
				id:    string(rune('a'+rng.Intn(26))) + string(rune('a'+i%26)) + string(rune('0'+i/26%10)),
				score: float64(rng.Intn(5)) / 4, // heavy collisions
			}
			locals[rng.Intn(nshards)].Offer(s)
			global.Offer(s)
		}
		merge := New(k, scoredWorse)
		for _, l := range locals {
			for _, s := range l.Sorted() {
				merge.Offer(s)
			}
		}
		got, want := merge.Sorted(), global.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
