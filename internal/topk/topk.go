// Package topk provides bounded top-K selection over a stream of items: a
// fixed-capacity binary heap that keeps the K best items seen so far, in
// O(n log K) time and O(K) space. It replaces the sort-everything-truncate
// pattern on the query path, where candidate sets are hundreds to thousands
// of items but only CandidateLimit / topK winners survive.
//
// Selection is defined by a strict "worse" order. When the order is total
// (every comparison tie-broken), the kept set and Sorted output are exactly
// the first K items of a full sort — the heap changes cost, never results.
package topk

// Selector accumulates the K best items of a stream under a strict total
// order. The zero value is not usable; construct with New.
type Selector[T any] struct {
	k     int
	worse func(a, b T) bool // a ranks strictly below b
	h     []T               // binary min-heap with the worst kept item at the root
}

// New returns a selector keeping the best k items. worse must define a
// strict total order: worse(a, b) reports that a ranks strictly below b
// (a would be evicted before b). k <= 0 keeps nothing.
func New[T any](k int, worse func(a, b T) bool) *Selector[T] {
	s := &Selector[T]{k: k, worse: worse}
	if k > 0 {
		s.h = make([]T, 0, k)
	}
	return s
}

// Reset empties the selector and sets a new capacity, keeping the order
// function and the heap's backing storage. It lets pooled per-query scratch
// reuse one selector across queries without reallocating.
func (s *Selector[T]) Reset(k int) {
	s.k = k
	s.h = s.h[:0]
}

// Offer considers one item: it is kept if fewer than k items are held, or if
// it ranks above the current worst kept item (which it then evicts).
func (s *Selector[T]) Offer(x T) {
	if s.k <= 0 {
		return
	}
	if len(s.h) < s.k {
		s.h = append(s.h, x)
		s.up(len(s.h) - 1)
		return
	}
	if s.worse(s.h[0], x) {
		s.h[0] = x
		s.down(0)
	}
}

// Len returns the number of items currently kept.
func (s *Selector[T]) Len() int { return len(s.h) }

// Items returns the kept items in heap order — no ranking order guaranteed.
// Use it when only membership matters (e.g. filling a candidate set). The
// slice aliases the selector's storage; do not Offer afterwards.
func (s *Selector[T]) Items() []T { return s.h }

// Sorted drains the selector and returns the kept items best-first. The
// selector is empty afterwards.
func (s *Selector[T]) Sorted() []T {
	return s.SortedInto(nil)
}

// SortedInto is Sorted draining into dst's storage: when dst has the
// capacity no allocation happens, so a caller answering a stream of queries
// (the batched serving path) can recycle one result buffer per slot. The
// returned slice must be used in place of dst; the selector is empty
// afterwards.
func (s *Selector[T]) SortedInto(dst []T) []T {
	n := len(s.h)
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]T, n)
	}
	for i := n - 1; i >= 0; i-- {
		dst[i] = s.h[0]
		last := len(s.h) - 1
		s.h[0] = s.h[last]
		s.h = s.h[:last]
		if last > 0 {
			s.down(0)
		}
	}
	return dst
}

func (s *Selector[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.worse(s.h[i], s.h[parent]) {
			return
		}
		s.h[i], s.h[parent] = s.h[parent], s.h[i]
		i = parent
	}
}

func (s *Selector[T]) down(i int) {
	n := len(s.h)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && s.worse(s.h[l], s.h[worst]) {
			worst = l
		}
		if r < n && s.worse(s.h[r], s.h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		s.h[i], s.h[worst] = s.h[worst], s.h[i]
		i = worst
	}
}
