package faults

import (
	"errors"
	"testing"
	"time"
)

func TestInjectUnarmedIsNil(t *testing.T) {
	if err := Inject("nowhere"); err != nil {
		t.Fatalf("unarmed inject = %v", err)
	}
}

func TestArmDisarm(t *testing.T) {
	defer Reset()
	Arm("site", Error(nil))
	if err := Inject("site"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed inject = %v, want ErrInjected", err)
	}
	// A different site stays clean while one is armed.
	if err := Inject("other"); err != nil {
		t.Fatalf("other site = %v", err)
	}
	Disarm("site")
	if err := Inject("site"); err != nil {
		t.Fatalf("disarmed inject = %v", err)
	}
	// Double disarm must not corrupt the armed count.
	Disarm("site")
	if armed.Load() != 0 {
		t.Fatalf("armed count = %d after disarms, want 0", armed.Load())
	}
}

func TestFailN(t *testing.T) {
	defer Reset()
	sentinel := errors.New("boom")
	Arm("s", FailN(2, sentinel))
	for i := 0; i < 2; i++ {
		if err := Inject("s"); !errors.Is(err, sentinel) {
			t.Fatalf("hit %d = %v, want sentinel", i, err)
		}
	}
	if err := Inject("s"); err != nil {
		t.Fatalf("post-budget hit = %v, want nil", err)
	}
}

func TestLatencySleeps(t *testing.T) {
	defer Reset()
	Arm("slow", Latency(10*time.Millisecond))
	start := time.Now()
	if err := Inject("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency injection slept %v, want >= 10ms", d)
	}
}

func TestPanicEvery(t *testing.T) {
	defer Reset()
	Arm("p", PanicEvery(2, "kaboom"))
	if err := Inject("p"); err != nil { // hit 1: no panic
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second hit did not panic")
		}
	}()
	_ = Inject("p") // hit 2: panics
}

func TestReset(t *testing.T) {
	Arm("a", Error(nil))
	Arm("b", Error(nil))
	Reset()
	if armed.Load() != 0 {
		t.Fatalf("armed count = %d after Reset, want 0", armed.Load())
	}
	if err := Inject("a"); err != nil {
		t.Fatalf("post-reset inject = %v", err)
	}
}
