// Package faults provides named fault-injection points for resilience
// testing. Production code calls Inject(site) at the places where a
// deployment can actually fail — inside the EMD refinement loop, around
// snapshot commits, at handler entry — and tests arm those sites with
// latency, errors or panics to exercise the recovery paths. When nothing is
// armed (the production state) Inject is a single atomic load, so the hooks
// stay compiled into the hot paths at effectively zero cost.
package faults

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Injection sites. Each constant names one place in the serving or
// persistence path where a fault can be armed; the string doubles as the
// site's identity, so packages outside internal/ could add their own.
const (
	// RefineScore fires once per candidate inside the step-3 EMD refinement
	// worker loop — arm it with Latency to make refinement slow enough to
	// cancel mid-flight, or with an error to simulate a scoring failure.
	RefineScore = "core.refine.score"
	// ServerRecommend fires at the top of the GET/POST /recommend handlers.
	ServerRecommend = "server.recommend"
	// SnapshotCommit fires after the snapshot temp file is fully written but
	// before it is renamed into place — the kill-during-snapshot point.
	SnapshotCommit = "store.snapshot.commit"
	// JournalAppend fires before a comment batch is written to the journal.
	JournalAppend = "store.journal.append"
	// ReplicaFetch fires before each replication HTTP request a replica
	// makes to its primary — arm it with Latency for a slow link or with
	// errors to drop requests entirely.
	ReplicaFetch = "replica.fetch"
	// ReplicationTail fires at the top of the primary's journal-tail
	// handler — an armed error refuses the poll before any bytes are sent.
	ReplicationTail = "server.replication.tail"
	// ReplicationTailMid fires after the tail handler has computed its
	// response — an armed error makes the handler send a partial body and
	// abort the connection, the classic mid-stream failure replicas must
	// survive.
	ReplicationTailMid = "server.replication.tail.mid"
)

// ErrInjected is the error returned by the Error and FailN handlers.
var ErrInjected = errors.New("faults: injected error")

// Handler is an armed fault: it runs every time its site is hit. Returning
// a non-nil error makes Inject return that error; a Handler may also sleep
// (latency injection) or panic (crash injection).
type Handler func() error

var (
	armed atomic.Int32 // count of armed sites; 0 = fast path
	mu    sync.RWMutex
	sites = map[string]Handler{}
)

// Inject runs the handler armed at site, if any. With nothing armed
// anywhere it is one atomic load.
func Inject(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	h := sites[site]
	mu.RUnlock()
	if h == nil {
		return nil
	}
	return h()
}

// Arm installs (or replaces) the handler at site.
func Arm(site string, h Handler) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; !ok {
		armed.Add(1)
	}
	sites[site] = h
}

// Disarm removes the handler at site, if armed.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; ok {
		delete(sites, site)
		armed.Add(-1)
	}
}

// Reset disarms every site. Tests that arm faults must defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for site := range sites {
		delete(sites, site)
		armed.Add(-1)
	}
}

// Latency returns a handler that sleeps d on every hit.
func Latency(d time.Duration) Handler {
	return func() error {
		time.Sleep(d)
		return nil
	}
}

// Error returns a handler that fails every hit with err (ErrInjected when
// err is nil).
func Error(err error) Handler {
	if err == nil {
		err = ErrInjected
	}
	return func() error { return err }
}

// FailN returns a handler that fails the first n hits with err (ErrInjected
// when err is nil) and succeeds afterwards.
func FailN(n int, err error) Handler {
	if err == nil {
		err = ErrInjected
	}
	var left atomic.Int64
	left.Store(int64(n))
	return func() error {
		if left.Add(-1) >= 0 {
			return err
		}
		return nil
	}
}

// PanicEvery returns a handler that panics with msg on every n-th hit.
func PanicEvery(n int, msg string) Handler {
	var hits atomic.Int64
	return func() error {
		if n > 0 && hits.Add(1)%int64(n) == 0 {
			panic(msg)
		}
		return nil
	}
}
