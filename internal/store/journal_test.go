package store

import (
	"bytes"

	"os"
	"path/filepath"
	"strings"
	"testing"
	"videorec/internal/faults"
)

func TestJournalAppendReplay(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	batches := []map[string][]string{
		{"v1": {"a", "b"}},
		{"v2": {"c"}, "v3": {"d", "e"}},
	}
	for _, b := range batches {
		if err := j.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if j.Entries() != 2 {
		t.Errorf("Entries = %d, want 2", j.Entries())
	}
	var got []map[string][]string
	n, err := ReplayJournal(&buf, func(c map[string][]string) error {
		got = append(got, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(got) != 2 {
		t.Fatalf("replayed %d batches", n)
	}
	if got[0]["v1"][1] != "b" || got[1]["v3"][0] != "d" {
		t.Errorf("replayed content wrong: %v", got)
	}
}

func TestJournalEmptyBatchIgnored(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.Append(nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("empty batch was written")
	}
}

func TestJournalToleratesTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.Append(map[string][]string{"v": {"u"}}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a second entry.
	buf.WriteString(`{"seq":2,"comments":{"v2":[`)
	n, err := ReplayJournal(&buf, func(map[string][]string) error { return nil })
	if err != nil {
		t.Fatalf("truncated tail should be tolerated: %v", err)
	}
	if n != 1 {
		t.Errorf("replayed %d batches, want 1", n)
	}
}

func TestJournalRejectsMidstreamCorruption(t *testing.T) {
	data := `{"seq":1,"comments":{"v":["a"]}}
garbage that is not json
{"seq":3,"comments":{"v":["b"]}}
`
	_, err := ReplayJournal(strings.NewReader(data), func(map[string][]string) error { return nil })
	if err == nil {
		t.Error("midstream corruption accepted")
	}
}

func TestJournalFileLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "comments.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(map[string][]string{"v": {"x"}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open appends, not truncates.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(map[string][]string{"v": {"y"}}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	n, err := ReplayJournalFile(path, func(map[string][]string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("replayed %d, want 2 (append mode)", n)
	}
}

func TestReplayJournalFileMissing(t *testing.T) {
	n, err := ReplayJournalFile(filepath.Join(t.TempDir(), "absent.wal"), nil)
	if err != nil || n != 0 {
		t.Errorf("missing journal: n=%d err=%v", n, err)
	}
}

func TestReplayCallbackErrorStops(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Append(map[string][]string{"v1": {"a"}})
	j.Append(map[string][]string{"v2": {"b"}})
	calls := 0
	_, err := ReplayJournal(&buf, func(map[string][]string) error {
		calls++
		return os.ErrInvalid
	})
	if err == nil {
		t.Error("callback error swallowed")
	}
	if calls != 1 {
		t.Errorf("callback ran %d times after error, want 1", calls)
	}
}

func TestRepairJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "comments.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(map[string][]string{"v1": {"a"}})
	j.Append(map[string][]string{"v2": {"b"}})
	j.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a partial third record with no newline.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"seq":3,"comments":{"v3":[`)
	f.Close()

	dropped, err := RepairJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("torn tail not detected")
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, clean) {
		t.Fatalf("repair did not restore the valid prefix:\n%q\nwant\n%q", repaired, clean)
	}
	// Appends after repair land cleanly and the whole file replays.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(map[string][]string{"v3": {"c"}})
	j2.Close()
	n, err := ReplayJournalFile(path, func(map[string][]string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d batches after repair+append, want 3", n)
	}
	// A second repair is a no-op.
	if d, err := RepairJournal(path); err != nil || d != 0 {
		t.Fatalf("repair of clean journal: dropped=%d err=%v", d, err)
	}
}

func TestRepairJournalMissingFile(t *testing.T) {
	if d, err := RepairJournal(filepath.Join(t.TempDir(), "absent.wal")); err != nil || d != 0 {
		t.Fatalf("missing journal: dropped=%d err=%v", d, err)
	}
}

func TestRepairJournalRejectsMidstreamCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wal")
	data := `{"seq":1,"comments":{"v":["a"]}}
garbage that is not json
{"seq":3,"comments":{"v":["b"]}}
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RepairJournal(path); err == nil {
		t.Fatal("midstream corruption repaired as if it were a torn tail")
	}
	// The file must be untouched by the refused repair.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != data {
		t.Fatal("refused repair still modified the journal")
	}
}

func TestJournalAppendInjectedFault(t *testing.T) {
	defer faults.Reset()
	var buf bytes.Buffer
	j := NewJournal(&buf)
	faults.Arm(faults.JournalAppend, faults.Error(nil))
	if err := j.Append(map[string][]string{"v": {"u"}}); err == nil {
		t.Fatal("injected append fault not surfaced")
	}
	if buf.Len() != 0 {
		t.Fatal("failed append still wrote bytes")
	}
	faults.Reset()
	if err := j.Append(map[string][]string{"v": {"u"}}); err != nil {
		t.Fatal(err)
	}
}

// Regression: a single flipped byte inside a record's payload — JSON still
// valid, content silently different — must be caught by the per-record
// checksum. Mid-file it is a hard error; at the tail it is dropped exactly
// like a torn append (the two are indistinguishable after a crash).
func TestJournalCRCDetectsFlippedByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(map[string][]string{"v1": {"alice"}})
	j.Append(map[string][]string{"v2": {"bobby"}})
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(sub string) []byte {
		i := bytes.Index(data, []byte(sub))
		if i < 0 {
			t.Fatalf("%q not in journal %q", sub, data)
		}
		out := append([]byte(nil), data...)
		out[i] ^= 0x01 // alice -> `lice / bobby -> cobby: still valid JSON
		return out
	}

	// Mid-file: corruption, not a tear.
	if err := os.WriteFile(path, flip("alice"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayJournalFile(path, func(map[string][]string) error { return nil }); err == nil {
		t.Fatal("mid-file bit flip replayed silently")
	}
	if _, err := RepairJournal(path); err == nil {
		t.Fatal("mid-file bit flip repaired as a torn tail")
	}

	// Final record: indistinguishable from a torn append — replay keeps the
	// valid prefix, repair truncates it.
	if err := os.WriteFile(path, flip("bobby"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := ReplayJournalFile(path, func(map[string][]string) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("tail bit flip: replayed %d batches, err %v; want the 1 valid prefix batch", n, err)
	}
	if dropped, err := RepairJournal(path); err != nil || dropped == 0 {
		t.Fatalf("tail bit flip not repaired: dropped=%d err=%v", dropped, err)
	}
}

// Legacy journals predate checksums: records without a crc field replay
// unverified, and mixed files (old prefix, new suffix) work.
func TestReplayLegacyJournalWithoutCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.wal")
	legacy := `{"seq":1,"comments":{"v1":["a","b"]}}
{"seq":2,"comments":{"v2":["c"]}}
`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	// Append through the current code: the new record is checksummed and the
	// sequence continues from the scanned legacy head.
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(map[string][]string{"v3": {"d"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	var seqs []uint64
	n, err := ReplayJournalFileSeq(path, func(seq uint64, _ map[string][]string) error {
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || seqs[2] != 3 {
		t.Fatalf("replayed %d batches with seqs %v, want 3 ending at seq 3", n, seqs)
	}
	raw, _ := os.ReadFile(path)
	if !bytes.Contains(raw, []byte(`"crc":`)) {
		t.Fatal("new record written without a checksum")
	}
}
