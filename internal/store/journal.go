package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"strconv"
	"sync"

	"videorec/internal/faults"
)

// Journal is an append-only log of comment batches — the write-ahead
// complement to snapshots: a deployment snapshots periodically and journals
// every ApplyUpdates batch in between, so a crash loses nothing. Entries are
// newline-delimited JSON objects (one batch per line), trivially greppable
// and append-safe.
//
// The journal doubles as the replication log: every record carries a
// monotonically increasing sequence number that survives process restarts
// (opening a file-backed journal scans it and continues from the highest
// sequence seen) and a CRC32C checksum, so replicas can resume from a
// cursor and corruption is detected per record rather than per file.
type Journal struct {
	mu   sync.Mutex
	w    io.Writer
	bw   *bufio.Writer
	c    io.Closer
	n    int    // batches appended through this Journal instance
	seq  uint64 // highest sequence number written or observed
	base uint64 // sequence the log starts after (compaction marker)
	path string // non-empty for file-backed journals (enables Compact)
}

// Edge is the wire form of one derived social connection — a user pair and
// the weight a comment batch added to it. Shard journals carry the globally
// summed edge list alongside each shard's local comment slice, so a
// single-shard replica can maintain its sub-community copy without seeing
// the rest of the corpus.
type Edge struct {
	U string  `json:"u"`
	V string  `json:"v"`
	W float64 `json:"w"`
}

// record is the wire form of one journal line. Four shapes share it:
//
//   - v3 entry:  {"seq":N,"crc":C,"comments":{...},"edges":[...]} — shard
//     entry carrying the globally derived connections for the batch
//   - v2 entry:  {"seq":N,"crc":C,"comments":{...}} — checksummed batch
//   - v1 entry:  {"seq":N,"comments":{...}}         — legacy, no checksum
//   - marker:    {"base":N}                          — compaction marker:
//     entries with seq ≤ N were folded into a snapshot and dropped
type record struct {
	Seq      uint64              `json:"seq,omitempty"`
	CRC      *uint32             `json:"crc,omitempty"`
	Comments map[string][]string `json:"comments,omitempty"`
	Edges    []Edge              `json:"edges,omitempty"`
	Base     *uint64             `json:"base,omitempty"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recordCRC computes the CRC32C of an entry: the sequence number and the
// canonical JSON encoding of the batch (json.Marshal sorts map keys, so the
// encoding — and therefore the checksum — is deterministic across the
// append/replay round trip). Edge-carrying entries append the edge encoding
// after a separator; edge-less entries checksum exactly as v2 did, so old
// journals verify unchanged.
func recordCRC(seq uint64, comments map[string][]string, edges []Edge) (uint32, error) {
	body, err := json.Marshal(comments)
	if err != nil {
		return 0, err
	}
	buf := strconv.AppendUint(nil, seq, 10)
	buf = append(buf, ':')
	buf = append(buf, body...)
	if edges != nil {
		eb, err := json.Marshal(edges)
		if err != nil {
			return 0, err
		}
		buf = append(buf, '|')
		buf = append(buf, eb...)
	}
	return crc32.Checksum(buf, castagnoli), nil
}

// parseRecord decodes one journal line and verifies its checksum when
// present. isMarker reports a compaction marker (rec.Base set).
func parseRecord(line []byte) (rec record, isMarker bool, err error) {
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, false, err
	}
	if rec.Base != nil && rec.Comments == nil && rec.Edges == nil && rec.Seq == 0 {
		return rec, true, nil
	}
	if rec.CRC != nil {
		want, err := recordCRC(rec.Seq, rec.Comments, rec.Edges)
		if err != nil {
			return rec, false, err
		}
		if want != *rec.CRC {
			return rec, false, fmt.Errorf("crc mismatch on seq %d: file says %08x, payload is %08x", rec.Seq, *rec.CRC, want)
		}
	}
	return rec, false, nil
}

// NewJournal wraps a writer. If w is also an io.Closer, Close closes it.
func NewJournal(w io.Writer) *Journal {
	j := &Journal{w: w, bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// OpenJournal opens (or creates) an append-mode journal file. The existing
// file is scanned so sequence numbers continue where the previous process
// stopped — a torn trailing line is tolerated (AttachJournal repairs it),
// corruption elsewhere is an error.
func OpenJournal(path string) (*Journal, error) {
	base, last, err := scanJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	j := NewJournal(f)
	j.path = path
	j.base = base
	j.seq = last
	return j, nil
}

// scanJournal reads the journal at path and reports its compaction base and
// highest sequence number. A missing file is an empty journal. A torn final
// line is skipped, matching replay semantics.
func scanJournal(path string) (base, last uint64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: open journal: %w", err)
	}
	defer f.Close()
	// Scan with a cursor beyond any real sequence: positions and bases are
	// tracked, no entry bodies are retained.
	tail, err := readTail(f, ^uint64(0), 0)
	if err != nil {
		return 0, 0, err
	}
	return tail.Base, tail.Head, nil
}

// Append logs one comment batch under the next sequence number and flushes
// it to the underlying writer.
func (j *Journal) Append(comments map[string][]string) error {
	if len(comments) == 0 {
		return nil
	}
	return j.AppendEntry(comments, nil)
}

// AppendEntry logs one batch — comments plus, for shard journals, the
// globally derived edge list — under the next sequence number. Unlike
// Append, a batch with edges but no local comments still claims a sequence
// number: every shard's journal advances in lockstep with the global batch
// sequence even when the batch touched no video on this shard.
func (j *Journal) AppendEntry(comments map[string][]string, edges []Edge) error {
	if len(comments) == 0 && len(edges) == 0 {
		return nil
	}
	if err := faults.Inject(faults.JournalAppend); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(j.seq+1, comments, edges)
}

// AppendAt logs one batch under an explicit sequence number — the replica
// side of journal shipping, where the primary assigned the sequence. The
// number must extend the log contiguously; callers deduplicate already-seen
// sequences before appending.
func (j *Journal) AppendAt(seq uint64, comments map[string][]string) error {
	if len(comments) == 0 {
		return nil
	}
	return j.AppendEntryAt(seq, comments, nil)
}

// AppendEntryAt is AppendEntry under an explicit (primary-assigned)
// sequence number; see AppendAt for the contiguity contract.
func (j *Journal) AppendEntryAt(seq uint64, comments map[string][]string, edges []Edge) error {
	if len(comments) == 0 && len(edges) == 0 {
		return nil
	}
	if err := faults.Inject(faults.JournalAppend); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq != j.seq+1 {
		return fmt.Errorf("store: journal append at seq %d would leave a gap after %d", seq, j.seq)
	}
	return j.appendLocked(seq, comments, edges)
}

func (j *Journal) appendLocked(seq uint64, comments map[string][]string, edges []Edge) error {
	// Normalize empty to nil: omitempty drops empty collections from the
	// line, so the CRC must be computed over what a reader will decode.
	if len(comments) == 0 {
		comments = nil
	}
	if len(edges) == 0 {
		edges = nil
	}
	crc, err := recordCRC(seq, comments, edges)
	if err != nil {
		return fmt.Errorf("store: encode journal entry: %w", err)
	}
	b, err := json.Marshal(record{Seq: seq, CRC: &crc, Comments: comments, Edges: edges})
	if err != nil {
		return fmt.Errorf("store: encode journal entry: %w", err)
	}
	if _, err := j.bw.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	j.seq = seq
	j.n++
	return nil
}

// Entries returns the number of batches appended through this Journal
// instance (not the file's historical total — see Seq for that).
func (j *Journal) Entries() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Seq returns the highest sequence number written to (or scanned from) the
// journal — the head of the replication log.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Base returns the sequence number the retained log starts after: entries
// with seq ≤ Base were compacted into a snapshot and are no longer
// available for tailing.
func (j *Journal) Base() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base
}

// Compact atomically replaces the journal file with a single compaction
// marker at the current head: every retained entry is assumed to have been
// folded into a snapshot the caller just wrote. Sequence numbers continue
// from the head, so replicas holding an older cursor get ErrCompacted from
// the tail reader and know to re-bootstrap. File-backed journals only.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resetLocked(j.seq)
}

// ResetTo atomically replaces the journal file with a compaction marker at
// seq, discarding all retained entries — the replica-bootstrap primitive:
// after loading a primary snapshot covering seq, the local log restarts
// from there. File-backed journals only.
func (j *Journal) ResetTo(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resetLocked(seq)
}

func (j *Journal) resetLocked(seq uint64) error {
	if j.path == "" {
		return errors.New("store: compact requires a file-backed journal")
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("store: compact journal: %w", err)
	}
	if j.c != nil {
		if err := j.c.Close(); err != nil {
			return fmt.Errorf("store: compact journal: %w", err)
		}
	}
	dir := dirOf(j.path)
	tmp, err := os.CreateTemp(dir, ".vrecwal-*")
	if err != nil {
		return fmt.Errorf("store: compact journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	if seq > 0 {
		b, err := json.Marshal(record{Base: &seq})
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact journal: %w", err)
		}
		if _, err := tmp.Write(append(b, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact journal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("store: compact journal: %w", err)
	}
	syncDir(dir)
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen compacted journal: %w", err)
	}
	j.w, j.c = f, f
	j.bw = bufio.NewWriter(f)
	j.base, j.seq = seq, seq
	return nil
}

// Close flushes and closes the underlying writer when it is closable.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil {
		return err
	}
	if j.c != nil {
		return j.c.Close()
	}
	return nil
}

// ReplayJournal streams every batch of a journal to fn in append order. A
// truncated or corrupt trailing line (crash mid-append) is tolerated and
// skipped; corruption elsewhere — including a per-record checksum mismatch
// — is an error. Legacy checksum-less records replay without verification.
func ReplayJournal(r io.Reader, fn func(comments map[string][]string) error) (int, error) {
	return ReplayJournalSeq(r, func(_ uint64, comments map[string][]string) error {
		return fn(comments)
	})
}

// ReplayJournalSeq is ReplayJournal with each batch's sequence number —
// what restart paths use to restore their replication cursor. Compaction
// markers are skipped (they carry no batch).
func ReplayJournalSeq(r io.Reader, fn func(seq uint64, comments map[string][]string) error) (int, error) {
	return ReplayJournalEntries(r, func(seq uint64, comments map[string][]string, _ []Edge) error {
		return fn(seq, comments)
	})
}

// ReplayJournalEntries is the full-fidelity replay: each batch's sequence
// number, comments, and — for shard journals — the derived edge list it was
// appended with. Edge-less (v1/v2) records replay with nil edges.
func ReplayJournalEntries(r io.Reader, fn func(seq uint64, comments map[string][]string, edges []Edge) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	replayed := 0
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			// A bad line followed by more data is real corruption.
			return replayed, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, marker, err := parseRecord(line)
		if err != nil {
			pendingErr = fmt.Errorf("store: corrupt journal entry after %d batches: %w", replayed, err)
			continue
		}
		if marker {
			continue
		}
		if err := fn(rec.Seq, rec.Comments, rec.Edges); err != nil {
			return replayed, err
		}
		replayed++
	}
	if err := sc.Err(); err != nil {
		return replayed, fmt.Errorf("store: read journal: %w", err)
	}
	if pendingErr != nil {
		// pendingErr on the final line = a crash mid-append tore the tail.
		// The valid prefix is the log; warn and carry on.
		log.Printf("store: journal replay tolerating torn tail after %d batches: %v", replayed, pendingErr)
	}
	return replayed, nil
}

// RepairJournal truncates a torn final record (a crash mid-append) from the
// journal at path, returning the number of bytes dropped. A missing file and
// a clean journal both return 0. Corruption that is NOT confined to the
// final record — a bad line with any data after it — is an error, exactly as
// in ReplayJournal: repair must never silently discard valid batches. A
// complete final record whose checksum does not verify is treated the same
// as a torn one: it cannot be distinguished from a partially flushed append
// and the valid prefix is the log.
func RepairJournal(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open journal: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	var offset int64   // bytes consumed so far
	var validEnd int64 // end offset of the last valid complete record
	badStart := int64(-1)
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) == 0 && rerr == io.EOF {
			break
		}
		if rerr != nil && rerr != io.EOF {
			return 0, fmt.Errorf("store: read journal: %w", rerr)
		}
		start := offset
		offset += int64(len(line))
		if badStart >= 0 {
			// Any line after a bad record — valid or not — means the damage
			// is not a single torn tail.
			return 0, fmt.Errorf("store: journal %s corrupt at byte %d with %d trailing bytes — not a torn tail", path, badStart, offset-badStart)
		}
		complete := rerr == nil // the line ended with '\n'
		trimmed := bytes.TrimSpace(line)
		parses := false
		if complete && len(trimmed) > 0 {
			_, _, perr := parseRecord(trimmed)
			parses = perr == nil
		}
		switch {
		case len(trimmed) == 0 && complete:
			validEnd = offset // blank line: ReplayJournal skips these
		case parses:
			validEnd = offset
		default:
			badStart = start
		}
		if rerr == io.EOF {
			break
		}
	}
	if badStart < 0 {
		return 0, nil
	}
	dropped := offset - validEnd
	if err := f.Truncate(validEnd); err != nil {
		return 0, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("store: fsync journal: %w", err)
	}
	return dropped, nil
}

// ReplayJournalFile replays a journal from disk; a missing file replays
// zero batches.
func ReplayJournalFile(path string, fn func(comments map[string][]string) error) (int, error) {
	return ReplayJournalFileSeq(path, func(_ uint64, comments map[string][]string) error {
		return fn(comments)
	})
}

// ReplayJournalFileSeq replays a journal from disk with sequence numbers; a
// missing file replays zero batches.
func ReplayJournalFileSeq(path string, fn func(seq uint64, comments map[string][]string) error) (int, error) {
	return ReplayJournalFileEntries(path, func(seq uint64, comments map[string][]string, _ []Edge) error {
		return fn(seq, comments)
	})
}

// ReplayJournalFileEntries replays a journal from disk with sequence
// numbers and edge lists; a missing file replays zero batches.
func ReplayJournalFileEntries(path string, fn func(seq uint64, comments map[string][]string, edges []Edge) error) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open journal: %w", err)
	}
	defer f.Close()
	return ReplayJournalEntries(f, fn)
}
