package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"sync"

	"videorec/internal/faults"
)

// Journal is an append-only log of comment batches — the write-ahead
// complement to snapshots: a deployment snapshots periodically and journals
// every ApplyUpdates batch in between, so a crash loses nothing. Entries are
// newline-delimited JSON objects (one batch per line), trivially greppable
// and append-safe.
type Journal struct {
	mu sync.Mutex
	w  io.Writer
	bw *bufio.Writer
	c  io.Closer
	n  int
}

// entry is one journaled batch.
type entry struct {
	Seq      int                 `json:"seq"`
	Comments map[string][]string `json:"comments"`
}

// NewJournal wraps a writer. If w is also an io.Closer, Close closes it.
func NewJournal(w io.Writer) *Journal {
	j := &Journal{w: w, bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// OpenJournal opens (or creates) an append-mode journal file.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	return NewJournal(f), nil
}

// Append logs one comment batch and flushes it to the underlying writer.
func (j *Journal) Append(comments map[string][]string) error {
	if len(comments) == 0 {
		return nil
	}
	if err := faults.Inject(faults.JournalAppend); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.n++
	b, err := json.Marshal(entry{Seq: j.n, Comments: comments})
	if err != nil {
		return fmt.Errorf("store: encode journal entry: %w", err)
	}
	if _, err := j.bw.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	return j.bw.Flush()
}

// Entries returns the number of batches appended through this Journal.
func (j *Journal) Entries() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Close flushes and closes the underlying writer when it is closable.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil {
		return err
	}
	if j.c != nil {
		return j.c.Close()
	}
	return nil
}

// ReplayJournal streams every batch of a journal to fn in append order. A
// truncated trailing line (crash mid-append) is tolerated and skipped;
// corruption elsewhere is an error.
func ReplayJournal(r io.Reader, fn func(comments map[string][]string) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	replayed := 0
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			// A bad line followed by more data is real corruption.
			return replayed, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr = fmt.Errorf("store: corrupt journal entry after %d batches: %w", replayed, err)
			continue
		}
		if err := fn(e.Comments); err != nil {
			return replayed, err
		}
		replayed++
	}
	if err := sc.Err(); err != nil {
		return replayed, fmt.Errorf("store: read journal: %w", err)
	}
	if pendingErr != nil {
		// pendingErr on the final line = a crash mid-append tore the tail.
		// The valid prefix is the log; warn and carry on.
		log.Printf("store: journal replay tolerating torn tail after %d batches: %v", replayed, pendingErr)
	}
	return replayed, nil
}

// RepairJournal truncates a torn final record (a crash mid-append) from the
// journal at path, returning the number of bytes dropped. A missing file and
// a clean journal both return 0. Corruption that is NOT confined to the
// final record — a bad line with any data after it — is an error, exactly as
// in ReplayJournal: repair must never silently discard valid batches.
func RepairJournal(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open journal: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	var offset int64   // bytes consumed so far
	var validEnd int64 // end offset of the last valid complete record
	badStart := int64(-1)
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) == 0 && rerr == io.EOF {
			break
		}
		if rerr != nil && rerr != io.EOF {
			return 0, fmt.Errorf("store: read journal: %w", rerr)
		}
		start := offset
		offset += int64(len(line))
		if badStart >= 0 {
			// Any line after a bad record — valid or not — means the damage
			// is not a single torn tail.
			return 0, fmt.Errorf("store: journal %s corrupt at byte %d with %d trailing bytes — not a torn tail", path, badStart, offset-badStart)
		}
		complete := rerr == nil // the line ended with '\n'
		trimmed := bytes.TrimSpace(line)
		switch {
		case len(trimmed) == 0 && complete:
			validEnd = offset // blank line: ReplayJournal skips these
		case complete && json.Unmarshal(trimmed, new(entry)) == nil:
			validEnd = offset
		default:
			badStart = start
		}
		if rerr == io.EOF {
			break
		}
	}
	if badStart < 0 {
		return 0, nil
	}
	dropped := offset - validEnd
	if err := f.Truncate(validEnd); err != nil {
		return 0, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("store: fsync journal: %w", err)
	}
	return dropped, nil
}

// ReplayJournalFile replays a journal from disk; a missing file replays
// zero batches.
func ReplayJournalFile(path string, fn func(comments map[string][]string) error) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open journal: %w", err)
	}
	defer f.Close()
	return ReplayJournal(f, fn)
}
