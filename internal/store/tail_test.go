package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBatches(t *testing.T, path string, n int) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Append(map[string][]string{"v": {strings.Repeat("u", i+1)}}); err != nil {
			t.Fatal(err)
		}
	}
	return j
}

func TestReadTailFromCursor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	j := writeBatches(t, path, 5)
	defer j.Close()

	tail, err := ReadTail(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tail.Head != 5 || tail.Base != 0 || tail.State != TailCaughtUp {
		t.Fatalf("tail = %+v, want head 5 base 0 caught-up", tail)
	}
	if len(tail.Entries) != 3 || tail.Entries[0].Seq != 3 || tail.Entries[2].Seq != 5 {
		t.Fatalf("entries = %+v, want seqs 3..5", tail.Entries)
	}
	// Caught up exactly at the head.
	tail, err = ReadTail(path, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Entries) != 0 || tail.Head != 5 {
		t.Fatalf("tail at head = %+v, want no entries", tail)
	}
}

func TestReadTailLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	j := writeBatches(t, path, 6)
	defer j.Close()
	tail, err := ReadTail(path, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Entries) != 2 || tail.Entries[1].Seq != 2 {
		t.Fatalf("capped entries = %+v, want seqs 1,2", tail.Entries)
	}
	// Head still reports the real end so pollers know there is more.
	if tail.Head != 6 {
		t.Fatalf("head = %d, want 6", tail.Head)
	}
}

func TestReadTailTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	j := writeBatches(t, path, 2)
	j.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"seq":3,"crc":1,"comments":{"v":[`)
	f.Close()

	tail, err := ReadTail(path, 0, 0)
	if err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if tail.State != TailTorn {
		t.Fatalf("state = %v, want TailTorn", tail.State)
	}
	if len(tail.Entries) != 2 || tail.Head != 2 {
		t.Fatalf("tail = %+v, want the 2 valid entries", tail)
	}
}

func TestReadTailMidstreamCorruptionErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	data := `{"seq":1,"comments":{"v":["a"]}}
garbage
{"seq":3,"comments":{"v":["b"]}}
`
	os.WriteFile(path, []byte(data), 0o644)
	if _, err := ReadTail(path, 0, 0); err == nil {
		t.Fatal("midstream corruption served as a tail")
	}
}

func TestReadTailCompacted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	j := writeBatches(t, path, 4)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(map[string][]string{"v": {"post-compact"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// A cursor inside the compacted range cannot be served.
	_, err := ReadTail(path, 2, 0)
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("err = %v, want ErrCompacted", err)
	}
	// A cursor at or past the base tails normally.
	tail, err := ReadTail(path, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tail.Base != 4 || tail.Head != 5 || len(tail.Entries) != 1 || tail.Entries[0].Seq != 5 {
		t.Fatalf("post-compaction tail = %+v, want base 4 head 5 entry seq 5", tail)
	}
}

func TestReadTailMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.wal")
	tail, err := ReadTail(path, 0, 0)
	if err != nil || tail.Head != 0 {
		t.Fatalf("missing file with zero cursor: %+v, %v", tail, err)
	}
	if _, err := ReadTail(path, 3, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("missing file with nonzero cursor: %v, want ErrCompacted", err)
	}
}

func TestOpenJournalContinuesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	j := writeBatches(t, path, 3)
	if j.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", j.Seq())
	}
	j.Close()
	// A new process must continue, not restart, the sequence.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Seq() != 3 {
		t.Fatalf("reopened seq = %d, want 3", j2.Seq())
	}
	if err := j2.Append(map[string][]string{"v": {"next"}}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	var seqs []uint64
	if _, err := ReplayJournalFileSeq(path, func(seq uint64, _ map[string][]string) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4}
	if len(seqs) != len(want) {
		t.Fatalf("seqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("seqs = %v, want %v", seqs, want)
		}
	}
}

func TestAppendAtRejectsGaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	j := writeBatches(t, path, 2)
	defer j.Close()
	if err := j.AppendAt(4, map[string][]string{"v": {"x"}}); err == nil {
		t.Fatal("gap accepted")
	}
	if err := j.AppendAt(3, map[string][]string{"v": {"x"}}); err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", j.Seq())
	}
}

func TestResetToStartsLogAtCursor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// A replica bootstraps from a snapshot covering seq 7: the local log
	// must accept seq 8 next.
	if err := j.ResetTo(7); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAt(8, map[string][]string{"v": {"u"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Base() != 7 || j2.Seq() != 8 {
		t.Fatalf("reopened base/seq = %d/%d, want 7/8", j2.Base(), j2.Seq())
	}
}
