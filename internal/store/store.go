// Package store persists recommender snapshots. The format is a small
// versioned header followed by a gob-encoded core.Snapshot; everything
// derived (LSB tree, hash table, vectors, inverted files) is rebuilt on
// load, so files stay compact and forward motion on index internals never
// invalidates stored data.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"videorec/internal/core"
	"videorec/internal/faults"
)

// Format constants.
const (
	magic   = "VRECSNAP"
	version = 1
)

// Errors returned by the decoder.
var (
	ErrBadMagic   = errors.New("store: not a videorec snapshot")
	ErrBadVersion = errors.New("store: unsupported snapshot version")
)

// Save writes the snapshot to w.
func Save(w io.Writer, snap *core.Snapshot) error {
	if snap == nil {
		return errors.New("store: nil snapshot")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("store: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(version)); err != nil {
		return fmt.Errorf("store: write version: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(snap); err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	return bw.Flush()
}

// Load reads a snapshot from r.
func Load(r io.Reader) (*core.Snapshot, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: read magic: %w", err)
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("store: read version: %w", err)
	}
	if ver != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	var snap core.Snapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	return &snap, nil
}

// SaveFile writes the snapshot to path crash-safely: the bytes go to a temp
// file in the target's directory, are fsync'd, and only then rename into
// place (with a directory fsync so the rename itself survives a power cut).
// A crash at any point leaves either the old complete snapshot or the new
// complete snapshot — never a torn file — plus at worst a stale .vrecsnap-*
// temp that the next successful save of the same directory leaves behind
// harmlessly.
func SaveFile(path string, snap *core.Snapshot) error {
	dir := dirOf(path)
	tmp, err := os.CreateTemp(dir, ".vrecsnap-*")
	if err != nil {
		return fmt.Errorf("store: create temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Save(tmp, snap); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close temp: %w", err)
	}
	// The kill-during-snapshot point: the new bytes exist only under the
	// temp name. Fault injection simulates dying here; the target must stay
	// untouched.
	if err := faults.Inject(faults.SnapshotCommit); err != nil {
		return fmt.Errorf("store: commit snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Errors are
// ignored: some filesystems refuse directory fsync and the rename is still
// atomic on them.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*core.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	defer f.Close()
	return Load(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
