package store

import (
	"bytes"
	"os"
	"testing"

	"videorec/internal/core"
)

func writeFuzzFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}

// FuzzLoad: arbitrary bytes must never panic the snapshot decoder — they
// either decode or return an error.
func FuzzLoad(f *testing.F) {
	f.Add([]byte("VRECSNAP\x01\x00\x00\x00"))
	f.Add([]byte("VRECSNAP"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	// A valid snapshot as a seed.
	var buf bytes.Buffer
	r := buildRecommender(f, 3, true)
	if err := Save(&buf, r.Snapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decodable snapshot must either reconstruct or error — no panic.
		_, _ = core.FromSnapshot(snap)
	})
}

// FuzzReplayJournal: arbitrary journal bytes must never panic replay — not
// the legacy uncheckedsummed records, not the CRC32C-stamped v2 records, not
// compaction markers, and not any mutation of them.
func FuzzReplayJournal(f *testing.F) {
	// Legacy (pre-checksum) shapes.
	f.Add([]byte(`{"seq":1,"comments":{"v":["a"]}}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte(""))
	f.Add([]byte(`{"seq":1,"comments":{"v":["a"]}}` + "\n" + `{"seq":2,"comments":{`))
	// Checksummed records with real CRCs, plus a compaction marker, written
	// by the journal itself so the corpus tracks the wire format.
	var crcd bytes.Buffer
	j := NewJournal(&crcd)
	for _, user := range []string{"ann", "ben"} {
		if err := j.Append(map[string][]string{"v": {user, "cal"}}); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(crcd.Bytes())
	f.Add([]byte(`{"base":7}` + "\n" + string(crcd.Bytes())))
	// A CRC that does not match its payload, and a torn CRC'd tail.
	f.Add([]byte(`{"seq":1,"crc":12345,"comments":{"v":["a"]}}` + "\n"))
	if b := crcd.Bytes(); len(b) > 4 {
		f.Add(b[:len(b)-4])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReplayJournal(bytes.NewReader(data), func(map[string][]string) error { return nil })
		_, _ = ReplayJournalSeq(bytes.NewReader(data), func(uint64, map[string][]string) error { return nil })
	})
}

// FuzzReadTail: the replication tail reader shares the journal parser but
// has its own cursor/compaction logic — arbitrary bytes and cursors must
// never panic it.
func FuzzReadTail(f *testing.F) {
	var crcd bytes.Buffer
	j := NewJournal(&crcd)
	for _, user := range []string{"ann", "ben", "cal"} {
		if err := j.Append(map[string][]string{"v": {user}}); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(crcd.Bytes(), uint64(1))
	f.Add([]byte(`{"base":2}`+"\n"+`{"seq":3,"comments":{"v":["a"]}}`+"\n"), uint64(1))
	f.Add([]byte("torn"), uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, after uint64) {
		dir := t.TempDir()
		path := dir + "/fuzz.wal"
		if err := writeFuzzFile(path, data); err != nil {
			t.Skip()
		}
		_, _ = ReadTail(path, after, 64)
	})
}
