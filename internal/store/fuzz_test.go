package store

import (
	"bytes"
	"testing"

	"videorec/internal/core"
)

// FuzzLoad: arbitrary bytes must never panic the snapshot decoder — they
// either decode or return an error.
func FuzzLoad(f *testing.F) {
	f.Add([]byte("VRECSNAP\x01\x00\x00\x00"))
	f.Add([]byte("VRECSNAP"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	// A valid snapshot as a seed.
	var buf bytes.Buffer
	r := buildRecommender(f, 3, true)
	if err := Save(&buf, r.Snapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decodable snapshot must either reconstruct or error — no panic.
		_, _ = core.FromSnapshot(snap)
	})
}

// FuzzReplayJournal: arbitrary journal bytes must never panic replay.
func FuzzReplayJournal(f *testing.F) {
	f.Add([]byte(`{"seq":1,"comments":{"v":["a"]}}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte(""))
	f.Add([]byte(`{"seq":1,"comments":{"v":["a"]}}` + "\n" + `{"seq":2,"comments":{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReplayJournal(bytes.NewReader(data), func(map[string][]string) error { return nil })
	})
}
