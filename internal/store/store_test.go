package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"videorec/internal/core"
	"videorec/internal/faults"
	"videorec/internal/social"
	"videorec/internal/video"
)

func buildRecommender(t testing.TB, n int, build bool) *core.Recommender {
	t.Helper()
	opts := core.DefaultOptions()
	opts.K = 8
	r := core.NewRecommender(opts)
	rng := rand.New(rand.NewSource(4))
	users := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < n; i++ {
		v := video.Synthesize(vidID(i), i%3, video.DefaultSynthOptions(), rng)
		commenters := append([]string{}, users[i%3], users[(i+1)%6], users[(i+2)%6])
		r.IngestVideo(v.ID, v, social.NewDescriptor(users[i%6], commenters...))
	}
	if build {
		r.BuildSocial()
	}
	return r
}

func vidID(i int) string { return string(rune('p'+i%16)) + "-clip" }

func TestRoundTripBuilt(t *testing.T) {
	r := buildRecommender(t, 10, true)
	var buf bytes.Buffer
	if err := Save(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != r.Len() {
		t.Fatalf("restored %d videos, want %d", restored.Len(), r.Len())
	}
	if restored.Partition() == nil || restored.Partition().Dim != r.Partition().Dim {
		t.Fatal("partition not restored")
	}
	// Recommendations must be identical (fully deterministic pipeline).
	for _, id := range r.SortedIDs()[:3] {
		a := r.RecommendID(id, 5)
		b := restored.RecommendID(id, 5)
		if len(a) != len(b) {
			t.Fatalf("result lengths differ for %s: %d vs %d", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("result %d for %s differs: %+v vs %+v", i, id, a[i], b[i])
			}
		}
	}
}

func TestRoundTripUnbuilt(t *testing.T) {
	r := buildRecommender(t, 5, false)
	var buf bytes.Buffer
	if err := Save(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Partition() != nil {
		t.Error("unbuilt snapshot restored a partition")
	}
	restored.BuildSocial() // must work after restore
	if restored.Partition() == nil {
		t.Error("BuildSocial after restore failed to build")
	}
}

func TestUpdatesContinueAfterReload(t *testing.T) {
	r := buildRecommender(t, 10, true)
	snap := r.Snapshot()
	restored, err := core.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	rep := restored.ApplyUpdates(map[string][]string{
		vidID(0): {"newbie1", "newbie2", "a"},
	})
	if rep.Maintenance.NewConnections == 0 {
		t.Error("no connections derived after reload")
	}
	if got := restored.RecommendID(vidID(0), 3); len(got) == 0 {
		t.Error("no recommendations after post-reload update")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := buildRecommender(t, 6, true)
	snap := r.Snapshot()
	// Mutating the original must not affect the snapshot.
	r.ApplyUpdates(map[string][]string{vidID(1): {"x1", "x2", "a"}})
	restored, err := core.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := restored.Record(vidID(1))
	if rec.Desc.Contains("x1") {
		t.Error("snapshot saw a post-snapshot update")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTASNAP????"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Wrong version.
	var buf bytes.Buffer
	buf.WriteString("VRECSNAP")
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := Load(&buf); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: got %v", err)
	}
	// Truncated body.
	var ok bytes.Buffer
	r := buildRecommender(t, 3, false)
	if err := Save(&ok, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	trunc := ok.Bytes()[:ok.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "engine.snap")
	r := buildRecommender(t, 8, true)
	if err := SaveFile(path, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 8 {
		t.Errorf("records = %d, want 8", len(snap.Records))
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want only the snapshot", len(entries))
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	if _, err := core.FromSnapshot(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	r := buildRecommender(t, 4, true)
	snap := r.Snapshot()
	snap.Order = append(snap.Order, "ghost")
	if _, err := core.FromSnapshot(snap); err == nil {
		t.Error("dangling order entry accepted")
	}
	snap2 := r.Snapshot()
	snap2.Assign["a"] = 999
	if _, err := core.FromSnapshot(snap2); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}

func BenchmarkSaveLoad(b *testing.B) {
	r := buildRecommender(b, 16, true)
	snap := r.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Save(&buf, snap); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// A crash between writing the snapshot temp file and renaming it into place
// (injected at faults.SnapshotCommit) must leave the previous snapshot
// intact and loadable — the atomic-rename contract.
func TestSaveFileCrashDuringCommitLeavesTargetIntact(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "eng.snap")
	r := buildRecommender(t, 8, true)
	if err := SaveFile(path, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" the process at the commit point of the next save.
	faults.Arm(faults.SnapshotCommit, faults.Error(nil))
	r2 := buildRecommender(t, 12, true)
	if err := SaveFile(path, r2.Snapshot()); err == nil {
		t.Fatal("injected commit crash did not surface")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("target snapshot changed despite aborted commit")
	}
	snap, err := LoadFile(path)
	if err != nil {
		t.Fatalf("old snapshot unloadable after aborted save: %v", err)
	}
	restored, err := core.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 8 {
		t.Fatalf("restored %d videos, want the pre-crash 8", restored.Len())
	}

	// Recovery: with the fault cleared the next save goes through.
	faults.Reset()
	if err := SaveFile(path, r2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored2, err := core.FromSnapshot(snap2); err != nil || restored2.Len() != 12 {
		t.Fatalf("post-recovery snapshot: len=%v err=%v", restored2.Len(), err)
	}
}
