// Journal tailing — the primary side of journal shipping. A replica holds a
// cursor (the sequence number of the last batch it applied) and repeatedly
// asks for everything after it; the reader distinguishes "caught up" from
// "the file ends mid-record" so pollers never mistake an in-flight append
// for the end of history, and refuses to serve across a compaction gap.
package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
)

// Cursor identifies a replication position: the view version stamped into
// the snapshot a replica bootstrapped from, plus the journal sequence number
// of the last batch applied on top of it. Cursors are monotonic — snapshot
// versions and sequence numbers both survive restarts.
type Cursor struct {
	SnapshotVersion uint64 `json:"snapshotVersion"`
	Seq             uint64 `json:"seq"`
}

// Entry is one journaled batch with its replication sequence number — the
// unit shipped from primary to replicas. Edges carries the derived
// connection list of shard-journal entries (nil for whole-corpus journals).
type Entry struct {
	Seq      uint64              `json:"seq"`
	Comments map[string][]string `json:"comments"`
	Edges    []Edge              `json:"edges,omitempty"`
}

// ErrCompacted reports that the journal no longer retains the entries a
// cursor asks for: they were folded into a snapshot. The only way forward
// is to re-bootstrap from that snapshot.
var ErrCompacted = errors.New("store: journal compacted past requested cursor")

// TailState reports how a tail read ended.
type TailState int

const (
	// TailCaughtUp: the file ended cleanly after the last returned entry —
	// the reader has everything the journal holds.
	TailCaughtUp TailState = iota
	// TailTorn: the file ends in an incomplete or unverifiable record — an
	// append in flight, or a crash's torn tail. The returned entries are the
	// valid prefix; poll again rather than treating this as the end.
	TailTorn
)

// Tail is the result of one ReadTail pass.
type Tail struct {
	// Entries are the batches with seq > the requested cursor, capped at the
	// requested limit, in log order.
	Entries []Entry
	// Head is the highest sequence number present in the journal (including
	// entries beyond the limit cap). Head > cursor with no Entries returned
	// never happens except under a limit cap.
	Head uint64
	// Base is the compaction base: entries with seq ≤ Base are gone.
	Base uint64
	// State distinguishes a clean end of log from a torn/in-flight tail.
	State TailState
}

// ReadTail reads the journal at path and returns the entries after cursor
// seq `after`, at most limit of them (0 = no cap). A missing file is an
// empty journal when after == 0 and ErrCompacted otherwise (the log the
// cursor came from is gone). A cursor older than the compaction base gets
// ErrCompacted. Corruption that is not confined to the final record is an
// error.
func ReadTail(path string, after uint64, limit int) (Tail, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		if after > 0 {
			return Tail{}, fmt.Errorf("%w: journal %s missing, cursor at %d", ErrCompacted, path, after)
		}
		return Tail{}, nil
	}
	if err != nil {
		return Tail{}, fmt.Errorf("store: open journal: %w", err)
	}
	defer f.Close()
	return readTail(f, after, limit)
}

func readTail(r io.Reader, after uint64, limit int) (Tail, error) {
	var t Tail
	br := bufio.NewReaderSize(r, 1<<16)
	var pendingErr error
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) == 0 && rerr == io.EOF {
			break
		}
		if rerr != nil && rerr != io.EOF {
			return t, fmt.Errorf("store: read journal: %w", rerr)
		}
		if pendingErr != nil {
			// A bad record with data after it is corruption, not a tear.
			return t, pendingErr
		}
		complete := rerr == nil
		trimmed := trimLine(line)
		switch {
		case len(trimmed) == 0 && complete:
			// blank line — replay skips these too
		case !complete:
			pendingErr = fmt.Errorf("store: journal ends mid-record (%d bytes)", len(line))
		default:
			rec, marker, err := parseRecord(trimmed)
			switch {
			case err != nil:
				pendingErr = fmt.Errorf("store: corrupt journal entry at seq %d: %w", t.Head, err)
			case marker:
				if *rec.Base > t.Base {
					t.Base = *rec.Base
				}
				if *rec.Base > t.Head {
					t.Head = *rec.Base
				}
			default:
				if rec.Seq > t.Head {
					t.Head = rec.Seq
				}
				if rec.Seq > after && (limit <= 0 || len(t.Entries) < limit) {
					t.Entries = append(t.Entries, Entry{Seq: rec.Seq, Comments: rec.Comments, Edges: rec.Edges})
				}
			}
		}
		if rerr == io.EOF {
			break
		}
	}
	if after < t.Base {
		return Tail{Base: t.Base, Head: t.Head}, fmt.Errorf("%w: cursor at %d, journal starts after %d", ErrCompacted, after, t.Base)
	}
	if pendingErr != nil {
		// The final record is torn or unverifiable — either an append racing
		// this read or a crash's tail. Not an error: the valid prefix stands
		// and the poller retries.
		t.State = TailTorn
	}
	return t, nil
}

// trimLine strips trailing newline/whitespace without allocating.
func trimLine(line []byte) []byte {
	for len(line) > 0 {
		switch line[len(line)-1] {
		case '\n', '\r', ' ', '\t':
			line = line[:len(line)-1]
		default:
			return line
		}
	}
	return line
}
