// Package signature implements the video cuboid signature model of §4.1:
// each video segment is summarized by a set of cuboids (v, μ) where v is the
// average intensity change between temporally adjacent blocks and μ the
// relative block size; signatures are compared with EMD (SimC, Equation 3)
// and signature series with the extended Jaccard κJ (Equation 4).
package signature

import (
	"fmt"
	"math"
	"sort"

	"videorec/internal/video"
)

// Cuboid is one (v, μ) pair: v is the average intensity change of a merged
// block region between temporally adjacent keyframes (in raw intensity
// units, so v ∈ [−255, 255]), μ its weight (region size as a fraction of the
// frame, so Σμ = 1 per Definition 1).
type Cuboid struct {
	V  float64
	Mu float64
}

// Signature is one video cuboid signature: the cuboids of a single q-gram of
// temporally consecutive keyframes.
type Signature struct {
	Cuboids []Cuboid
}

// Series is a video's signature sequence — one Signature per q-gram window.
type Series []Signature

// Values returns the cuboid values and weights as parallel slices, the shape
// the EMD solvers consume.
func (s Signature) Values() (v, mu []float64) {
	return s.ValuesInto(nil, nil)
}

// ValuesInto is Values writing into the given slices' storage when they have
// the capacity, so hot paths (the LCP walker re-keys every query signature)
// reuse one pair of buffers instead of allocating per call. The returned
// slices must be used in place of the arguments.
func (s Signature) ValuesInto(v, mu []float64) (vv, mm []float64) {
	n := len(s.Cuboids)
	if cap(v) >= n {
		v = v[:n]
	} else {
		v = make([]float64, n)
	}
	if cap(mu) >= n {
		mu = mu[:n]
	} else {
		mu = make([]float64, n)
	}
	for i, c := range s.Cuboids {
		v[i] = c.V
		mu[i] = c.Mu
	}
	return v, mu
}

// TotalMass returns Σμ (1 up to floating point for extracted signatures).
func (s Signature) TotalMass() float64 {
	var t float64
	for _, c := range s.Cuboids {
		t += c.Mu
	}
	return t
}

// Mean returns the mass-weighted mean cuboid value Σ v·μ — the quantity the
// centroid EMD lower bound compares (emd.LowerBound1D).
func (s Signature) Mean() float64 {
	var m float64
	for _, c := range s.Cuboids {
		m += c.V * c.Mu
	}
	return m
}

// DefaultMatchThreshold is the SimC level above which two cuboid signatures
// count as a matched pair in κJ. At the default VScale it cleanly separates
// edited near-duplicates (which stay above it) from unrelated clips (whose
// pairs essentially never reach it).
const DefaultMatchThreshold = 0.5

// Options tunes signature extraction.
type Options struct {
	Grid             int     // blocks per frame side (Grid×Grid equal blocks)
	MergeThreshold   float64 // max mean-intensity gap for merging adjacent blocks
	KeyframesPerShot int     // keyframes sampled per detected shot
	Q                int     // q-gram length; the paper uses bigrams (Q=2)
	VScale           float64 // intensity units per EMD unit (v = Δ/VScale)
	Cut              video.CutOptions
}

// DefaultOptions follow the paper's simplification: bigrams with scalar v.
func DefaultOptions() Options {
	return Options{
		Grid:             8,
		MergeThreshold:   6,
		KeyframesPerShot: 3,
		Q:                2,
		VScale:           4,
		Cut:              video.DefaultCutOptions(),
	}
}

// Extract converts a video into its signature series: detect shots, sample
// keyframes per shot, slide a Q-length window over each shot's keyframes and
// build one cuboid signature per window. A shot with fewer than Q keyframes
// contributes one signature built from its available keyframes (with the
// last keyframe repeated), so no shot is silently dropped.
func Extract(v *video.Video, opts Options) Series {
	s, _ := ExtractCancelled(v, opts, nil)
	return s
}

// ExtractCancelled is Extract with cooperative cancellation: cancelled (when
// non-nil) is polled between shots and between q-gram windows — every window
// builds one signature's worth of cuboids, so a cancellation lands within
// one signature of being requested even inside a very long single clip. A
// true return abandons the extraction; the second result reports whether the
// series is complete.
func ExtractCancelled(v *video.Video, opts Options, cancelled func() bool) (Series, bool) {
	if opts.Grid <= 0 || opts.Q < 2 {
		panic(fmt.Sprintf("signature: invalid options %+v", opts))
	}
	shots := video.Shots(v, opts.Cut)
	var series Series
	for _, shot := range shots {
		if cancelled != nil && cancelled() {
			return nil, false
		}
		if shot.Len() <= 0 {
			continue
		}
		keys := video.Keyframes(v, []video.Shot{shot}, opts.KeyframesPerShot)
		if len(keys) == 0 {
			continue
		}
		for len(keys) < opts.Q {
			keys = append(keys, keys[len(keys)-1])
		}
		for w := 0; w+opts.Q <= len(keys); w++ {
			if cancelled != nil && cancelled() {
				return nil, false
			}
			sig := buildSignature(keys[w:w+opts.Q], opts)
			if len(sig.Cuboids) > 0 {
				series = append(series, sig)
			}
		}
	}
	return series, true
}

// buildSignature constructs one cuboid signature over q consecutive
// keyframes: partition the reference (first) keyframe into Grid×Grid blocks,
// merge spatially adjacent similar blocks into regions, then for each region
// average the per-transition intensity change across the q-gram.
func buildSignature(keys []*video.Frame, opts Options) Signature {
	ref := keys[0]
	g := opts.Grid
	regions := mergeBlocks(ref, g, opts.MergeThreshold)

	// Per-region mean intensity in every keyframe.
	nRegions := 0
	for _, r := range regions {
		if r+1 > nRegions {
			nRegions = r + 1
		}
	}
	means := make([][]float64, len(keys))
	sizes := make([]float64, nRegions)
	bw := (ref.W + g - 1) / g
	bh := (ref.H + g - 1) / g
	for ki, f := range keys {
		means[ki] = make([]float64, nRegions)
		counts := make([]float64, nRegions)
		for by := 0; by < g; by++ {
			for bx := 0; bx < g; bx++ {
				r := regions[by*g+bx]
				m := f.BlockMean(bx*bw, by*bh, (bx+1)*bw, (by+1)*bh)
				means[ki][r] += m
				counts[r]++
			}
		}
		for r := range means[ki] {
			if counts[r] > 0 {
				means[ki][r] /= counts[r]
			}
			if ki == 0 {
				sizes[r] = counts[r]
			}
		}
	}

	total := float64(g * g)
	sig := Signature{Cuboids: make([]Cuboid, 0, nRegions)}
	for r := 0; r < nRegions; r++ {
		if sizes[r] == 0 {
			continue
		}
		var dv float64
		for ki := 1; ki < len(keys); ki++ {
			dv += means[ki][r] - means[ki-1][r]
		}
		dv /= float64(len(keys) - 1)
		scale := opts.VScale
		if scale <= 0 {
			scale = 1
		}
		sig.Cuboids = append(sig.Cuboids, Cuboid{
			V:  dv / scale,
			Mu: sizes[r] / total,
		})
	}
	return sig
}

// mergeBlocks region-grows the Grid×Grid block lattice of the reference
// frame: 4-adjacent blocks whose mean intensities differ by at most thresh
// are merged (union-find). It returns a dense region id per block cell.
func mergeBlocks(f *video.Frame, g int, thresh float64) []int {
	bw := (f.W + g - 1) / g
	bh := (f.H + g - 1) / g
	means := make([]float64, g*g)
	for by := 0; by < g; by++ {
		for bx := 0; bx < g; bx++ {
			means[by*g+bx] = f.BlockMean(bx*bw, by*bh, (bx+1)*bw, (by+1)*bh)
		}
	}
	parent := make([]int, g*g)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for by := 0; by < g; by++ {
		for bx := 0; bx < g; bx++ {
			i := by*g + bx
			if bx+1 < g && math.Abs(means[i]-means[i+1]) <= thresh {
				union(i, i+1)
			}
			if by+1 < g && math.Abs(means[i]-means[i+g]) <= thresh {
				union(i, i+g)
			}
		}
	}
	// Densify region ids.
	next := 0
	dense := make(map[int]int)
	out := make([]int, g*g)
	for i := range out {
		r := find(i)
		id, ok := dense[r]
		if !ok {
			id = next
			dense[r] = id
			next++
		}
		out[i] = id
	}
	return out
}

// SimC is Equation 3: 1/(1+EMD) between two signatures, using the 1-D
// closed-form EMD (cuboid values are scalar). It compiles both signatures on
// the fly and runs the same merge kernel as SimCCompiled, so the two paths
// are bit-identical; loops comparing stored signatures repeatedly should
// compile once and use SimCCompiled instead.
func SimC(a, b Signature) float64 {
	ca, cb := Compile(a), Compile(b)
	return SimCCompiled(&ca, &cb)
}

// KJ is Equation 4: the extended Jaccard over two signature series. Pairs
// are greedily matched in decreasing SimC order; pairs below matchThreshold
// stay unmatched. |S1 ∪ S2| is |S1| + |S2| − #matched, following the
// set-based measure of [35], and the numerator sums SimC over matched pairs.
func KJ(s1, s2 Series, matchThreshold float64) float64 {
	v, _ := KJCancel(s1, s2, matchThreshold, nil)
	return v
}

// KJCancel is KJ with cooperative cancellation: cancelled (when non-nil) is
// polled between EMD evaluations, and a true return abandons the computation
// immediately — the second result reports whether the value is complete. A
// single EMD over cuboid signatures is microseconds, so a deadline-expired
// recommendation stops burning CPU within one evaluation of noticing.
//
// KJCancel is the reference implementation over raw series; the serving hot
// path uses KJCancelCompiled over precompiled series, which is bit-identical
// (golden-tested) and allocation-free in steady state.
func KJCancel(s1, s2 Series, matchThreshold float64, cancelled func() bool) (float64, bool) {
	if len(s1) == 0 || len(s2) == 0 {
		return 0, true
	}
	type pair struct {
		i, j int
		sim  float64
	}
	// Centroid lower-bound filter ([35]): SimC ≤ 1/(1+|mean₁−mean₂|), so a
	// pair whose bound is already below the threshold cannot match and the
	// exact EMD is skipped. Exact pruning — results are unchanged.
	means1 := make([]float64, len(s1))
	for i, sig := range s1 {
		means1[i] = sig.Mean()
	}
	means2 := make([]float64, len(s2))
	for j, sig := range s2 {
		means2[j] = sig.Mean()
	}
	pairs := make([]pair, 0, len(s1)*len(s2))
	for i := range s1 {
		for j := range s2 {
			if cancelled != nil && cancelled() {
				return 0, false
			}
			if matchThreshold > 0 {
				lb := means1[i] - means2[j]
				if lb < 0 {
					lb = -lb
				}
				if 1/(1+lb) < matchThreshold {
					continue
				}
			}
			if sim := SimC(s1[i], s2[j]); sim >= matchThreshold {
				pairs = append(pairs, pair{i, j, sim})
			}
		}
	}
	// Greedy maximum matching by similarity. Ties are broken (i asc, j asc)
	// so the order — and therefore the matching and the κJ value — is a pure
	// function of the input, stable across sort algorithms and Go versions.
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].sim != pairs[b].sim {
			return pairs[a].sim > pairs[b].sim
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	usedI := make([]bool, len(s1))
	usedJ := make([]bool, len(s2))
	var num float64
	matched := 0
	for _, p := range pairs {
		if usedI[p.i] || usedJ[p.j] {
			continue
		}
		usedI[p.i] = true
		usedJ[p.j] = true
		num += p.sim
		matched++
	}
	union := float64(len(s1) + len(s2) - matched)
	if union <= 0 {
		return 0, true
	}
	return num / union, true
}
