// Compiled signature representations: the per-pair κJ/SimC kernel is the
// dominant cost of the Figure 6 kNN refinement, so everything that can be
// derived once per stored video — sorted cuboid values, validated weights,
// centroid mean, total mass — is precomputed here, and the steady-state
// comparison path allocates nothing (scratch buffers owned by the caller,
// one per refine worker).
package signature

import (
	"sort"

	"videorec/internal/emd"
)

// Compiled is one cuboid signature prepared for the zero-allocation EMD
// kernel: values sorted ascending (stably, so compilation is a pure function
// of the signature), weights aligned, and the quantities every comparison
// re-derived — total mass, centroid mean, validity — computed once.
//
// Mean and Mass are accumulated in original cuboid order, exactly as
// Signature.Mean and Signature.TotalMass do, so the compiled path is
// bit-identical to the uncompiled one.
type Compiled struct {
	V, W []float64 // cuboid values/weights, stable-sorted by value
	Mean float64   // Σ v·μ — the centroid the κJ lower-bound filter compares
	Mass float64   // Σ μ (1 up to floating point for extracted signatures)
	OK   bool      // non-empty, no negative weights, mass above solver tolerance
}

// Compile builds the compiled form of one signature.
func Compile(s Signature) Compiled {
	c := Compiled{
		V: make([]float64, len(s.Cuboids)),
		W: make([]float64, len(s.Cuboids)),
	}
	for i, cb := range s.Cuboids {
		c.V[i] = cb.V
		c.W[i] = cb.Mu
		c.Mean += cb.V * cb.Mu
	}
	c.Mass, c.OK = emd.ValidateWeights(c.W)
	if len(s.Cuboids) == 0 {
		c.OK = false
	}
	emd.SortByValue(c.V, c.W)
	return c
}

// CompiledSeries is a signature series compiled for refinement: one Compiled
// per q-gram signature. It is immutable after construction and safe to share
// across any number of concurrent readers; views cache one per stored video.
type CompiledSeries struct {
	Sigs []Compiled
}

// CompileSeries compiles every signature of a series. A nil or empty series
// compiles to an empty CompiledSeries, which κJ treats exactly like the
// empty raw series (relevance 0).
func CompileSeries(s Series) *CompiledSeries {
	cs := &CompiledSeries{Sigs: make([]Compiled, len(s))}
	for i, sig := range s {
		cs.Sigs[i] = Compile(sig)
	}
	return cs
}

// Len returns the number of compiled signatures.
func (cs *CompiledSeries) Len() int { return len(cs.Sigs) }

// SimCCompiled is Equation 3 over two compiled signatures. It is
// bit-identical to SimC on the corresponding raw signatures and allocates
// nothing.
func SimCCompiled(a, b *Compiled) float64 {
	if !a.OK || !b.OK || emd.MassMismatch(a.Mass, b.Mass) {
		return 0
	}
	return emd.Similarity(emd.Distance1DSorted(a.V, a.W, b.V, b.W, a.Mass/b.Mass))
}

// kjPair is one above-threshold signature pair awaiting greedy matching.
type kjPair struct {
	i, j int
	sim  float64
}

// pairHeap orders pairs by (sim desc, i asc, j asc) — the κJ greedy-matching
// order. The tie-break makes the order total, so any sorting algorithm (and
// any Go version) produces the same matching.
type pairHeap []kjPair

func (p *pairHeap) Len() int { return len(*p) }
func (p *pairHeap) Less(a, b int) bool {
	s := *p
	if s[a].sim != s[b].sim {
		return s[a].sim > s[b].sim
	}
	if s[a].i != s[b].i {
		return s[a].i < s[b].i
	}
	return s[a].j < s[b].j
}
func (p *pairHeap) Swap(a, b int) {
	s := *p
	s[a], s[b] = s[b], s[a]
}

// KJScratch holds the buffers one κJ evaluation needs — candidate pairs and
// the matched-row/column marks. A refine worker allocates one scratch and
// reuses it across every candidate it scores; after the buffers have grown to
// the workload's high-water mark, KJCancelCompiled performs no heap
// allocation at all. A scratch must never be shared between concurrently
// running evaluations.
type KJScratch struct {
	pairs pairHeap
	usedI []bool
	usedJ []bool
}

// grow readies the scratch for an s1×s2 evaluation.
func (sc *KJScratch) grow(n1, n2 int) {
	sc.pairs = sc.pairs[:0]
	sc.usedI = growBools(sc.usedI, n1)
	sc.usedJ = growBools(sc.usedJ, n2)
}

func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// KJCompiled is KJ (Equation 4) over compiled series. It is bit-identical to
// KJ on the corresponding raw series.
func KJCompiled(s1, s2 *CompiledSeries, matchThreshold float64) float64 {
	v, _ := KJCancelCompiled(s1, s2, matchThreshold, nil, nil)
	return v
}

// KJCancelCompiled is KJCancel over compiled series: the extended Jaccard
// with cooperative cancellation, computed through the zero-allocation merge
// EMD kernel. scratch supplies the pair/match buffers; nil falls back to a
// private allocation (convenience paths — hot loops pass a per-worker
// scratch). cancelled, when non-nil, is polled between EMD evaluations; a
// true return abandons the computation and the second result reports false.
//
// Results are bit-identical to KJCancel on the corresponding raw series: the
// same centroid lower-bound filter, the same kernel arithmetic, and the same
// (sim desc, i asc, j asc) greedy matching order.
func KJCancelCompiled(s1, s2 *CompiledSeries, matchThreshold float64, cancelled func() bool, scratch *KJScratch) (float64, bool) {
	if s1 == nil || s2 == nil || len(s1.Sigs) == 0 || len(s2.Sigs) == 0 {
		return 0, true
	}
	if scratch == nil {
		scratch = &KJScratch{}
	}
	scratch.grow(len(s1.Sigs), len(s2.Sigs))
	for i := range s1.Sigs {
		for j := range s2.Sigs {
			if cancelled != nil && cancelled() {
				return 0, false
			}
			// Centroid lower-bound filter ([35]): SimC ≤ 1/(1+|mean₁−mean₂|),
			// so a pair whose bound is already below the threshold cannot
			// match and the exact EMD is skipped. Exact pruning — results are
			// unchanged. Means are precompiled, so the filter is two loads.
			if matchThreshold > 0 {
				lb := s1.Sigs[i].Mean - s2.Sigs[j].Mean
				if lb < 0 {
					lb = -lb
				}
				if 1/(1+lb) < matchThreshold {
					continue
				}
			}
			if sim := SimCCompiled(&s1.Sigs[i], &s2.Sigs[j]); sim >= matchThreshold {
				scratch.pairs = append(scratch.pairs, kjPair{i, j, sim})
			}
		}
	}
	// Greedy maximum matching by similarity, ties broken (i asc, j asc).
	sort.Sort(&scratch.pairs)
	var num float64
	matched := 0
	for _, p := range scratch.pairs {
		if scratch.usedI[p.i] || scratch.usedJ[p.j] {
			continue
		}
		scratch.usedI[p.i] = true
		scratch.usedJ[p.j] = true
		num += p.sim
		matched++
	}
	union := float64(len(s1.Sigs) + len(s2.Sigs) - matched)
	if union <= 0 {
		return 0, true
	}
	return num / union, true
}
