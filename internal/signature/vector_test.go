package signature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"videorec/internal/video"
)

func vectorOptions() Options {
	o := DefaultOptions()
	o.Q = 3
	o.KeyframesPerShot = 4
	return o
}

func TestExtractVectorWellFormed(t *testing.T) {
	series := ExtractVector(synth(2, 5), vectorOptions())
	if len(series) == 0 {
		t.Fatal("empty vector series")
	}
	for i, sig := range series {
		if math.Abs(sig.TotalMass()-1) > 1e-9 {
			t.Errorf("signature %d mass = %g", i, sig.TotalMass())
		}
		for _, c := range sig.Cuboids {
			if len(c.V) != vectorOptions().Q-1 {
				t.Fatalf("cuboid value dimension = %d, want %d", len(c.V), vectorOptions().Q-1)
			}
		}
	}
}

func TestExtractVectorPanicsOnScalarQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Q=2")
		}
	}()
	o := DefaultOptions() // Q=2
	ExtractVector(synth(1, 1), o)
}

func TestSimCVectorAxioms(t *testing.T) {
	a := ExtractVector(synth(1, 1), vectorOptions())
	b := ExtractVector(synth(7, 2), vectorOptions())
	if got := SimCVector(a[0], a[0]); math.Abs(got-1) > 1e-6 {
		t.Errorf("self similarity = %g, want 1", got)
	}
	x, y := SimCVector(a[0], b[0]), SimCVector(b[0], a[0])
	if math.Abs(x-y) > 1e-9 {
		t.Errorf("asymmetric: %g vs %g", x, y)
	}
	if x <= 0 || x > 1 {
		t.Errorf("similarity %g out of (0,1]", x)
	}
	if got := SimCVector(VectorSignature{}, a[0]); got != 0 {
		t.Errorf("empty similarity = %g", got)
	}
}

func TestKJVectorSelfAndRange(t *testing.T) {
	s := ExtractVector(synth(3, 4), vectorOptions())
	if got := KJVector(s, s, 0.5); math.Abs(got-1) > 1e-6 {
		t.Errorf("KJVector(s,s) = %g, want 1", got)
	}
	u := ExtractVector(synth(11, 9), vectorOptions())
	got := KJVector(s, u, 0.5)
	if got < 0 || got > 1 {
		t.Errorf("KJVector = %g out of [0,1]", got)
	}
	if got := KJVector(nil, s, 0.5); got != 0 {
		t.Errorf("KJVector(nil,s) = %g", got)
	}
}

// The general model must keep the core separation: edited duplicates score
// above unrelated clips.
func TestKJVectorSeparatesDupsFromUnrelated(t *testing.T) {
	opts := vectorOptions()
	orig := synth(1, 1)
	so := ExtractVector(orig, opts)
	dup := ExtractVector(video.Brighten(orig, 15), opts)
	dupScore := KJVector(so, dup, 0.5)
	var worst float64
	for topic := 20; topic < 24; topic++ {
		u := ExtractVector(synth(topic, int64(topic)), opts)
		if s := KJVector(so, u, 0.5); s > worst {
			worst = s
		}
	}
	if dupScore <= worst {
		t.Errorf("dup κJ %.4f not above max unrelated %.4f", dupScore, worst)
	}
}

// Scalar and vector models must agree on the degenerate direction: both see
// a self-match as perfect and are symmetric under random inputs.
func TestPropertyVectorModelConsistent(t *testing.T) {
	opts := vectorOptions()
	f := func(seedA, seedB int64, ta, tb uint8) bool {
		a := ExtractVector(synth(int(ta%6), seedA), opts)
		b := ExtractVector(synth(int(tb%6), seedB), opts)
		x := KJVector(a, b, 0.5)
		y := KJVector(b, a, 0.5)
		return x >= 0 && x <= 1 && math.Abs(x-y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestL1Vec(t *testing.T) {
	if got := l1Vec([]float64{1, -2}, []float64{0, 1}); got != 4 {
		t.Errorf("l1Vec = %g, want 4", got)
	}
	// Length mismatch counts the tail as distance from zero.
	if got := l1Vec([]float64{1}, []float64{1, -3}); got != 3 {
		t.Errorf("mismatched l1Vec = %g, want 3", got)
	}
}

func BenchmarkSimCVector(b *testing.B) {
	opts := vectorOptions()
	a := ExtractVector(synth(1, 1), opts)
	c := ExtractVector(synth(2, 2), opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimCVector(a[0], c[0])
	}
}

func BenchmarkKJScalarVsVector(b *testing.B) {
	scalarOpts := DefaultOptions()
	vecOpts := vectorOptions()
	rng := rand.New(rand.NewSource(1))
	_ = rng
	s1 := Extract(synth(1, 1), scalarOpts)
	s2 := Extract(synth(2, 2), scalarOpts)
	v1 := ExtractVector(synth(1, 1), vecOpts)
	v2 := ExtractVector(synth(2, 2), vecOpts)
	b.Run("scalar-bigram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KJ(s1, s2, DefaultMatchThreshold)
		}
	})
	b.Run("vector-trigram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KJVector(v1, v2, DefaultMatchThreshold)
		}
	})
}
