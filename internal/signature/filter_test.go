package signature

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"videorec/internal/emd"
)

// kjReference is KJ without the centroid lower-bound filter — the oracle the
// filtered implementation must match exactly.
func kjReference(s1, s2 Series, matchThreshold float64) float64 {
	if len(s1) == 0 || len(s2) == 0 {
		return 0
	}
	type pair struct {
		i, j int
		sim  float64
	}
	var pairs []pair
	for i := range s1 {
		for j := range s2 {
			if sim := SimC(s1[i], s2[j]); sim >= matchThreshold {
				pairs = append(pairs, pair{i, j, sim})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].sim > pairs[b].sim })
	usedI := make([]bool, len(s1))
	usedJ := make([]bool, len(s2))
	var num float64
	matched := 0
	for _, p := range pairs {
		if usedI[p.i] || usedJ[p.j] {
			continue
		}
		usedI[p.i] = true
		usedJ[p.j] = true
		num += p.sim
		matched++
	}
	union := float64(len(s1) + len(s2) - matched)
	if union <= 0 {
		return 0
	}
	return num / union
}

// The lower-bound filter is exact pruning: KJ must equal the unfiltered
// reference on arbitrary series and thresholds.
func TestPropertyKJFilterExact(t *testing.T) {
	f := func(seedA, seedB int64, ta, tb, th uint8) bool {
		a := Extract(synth(int(ta%8), seedA), DefaultOptions())
		b := Extract(synth(int(tb%8), seedB), DefaultOptions())
		threshold := float64(th%10) / 10.0
		got := KJ(a, b, threshold)
		want := kjReference(a, b, threshold)
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The centroid bound never exceeds the true EMD on normalized signatures.
func TestPropertyLowerBoundValid(t *testing.T) {
	f := func(seedA, seedB int64, ta, tb uint8) bool {
		a := Extract(synth(int(ta%8), seedA), DefaultOptions())
		b := Extract(synth(int(tb%8), seedB), DefaultOptions())
		for i := 0; i < len(a) && i < 3; i++ {
			for j := 0; j < len(b) && j < 3; j++ {
				av, aw := a[i].Values()
				bv, bw := b[j].Values()
				lb := emd.LowerBound1D(av, aw, bv, bw)
				exact, err := emd.Distance1D(av, aw, bv, bw)
				if err != nil {
					return false
				}
				if lb > exact+1e-9 {
					t.Logf("LB %g > exact %g", lb, exact)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureMean(t *testing.T) {
	s := Signature{Cuboids: []Cuboid{{V: 2, Mu: 0.25}, {V: -1, Mu: 0.75}}}
	if got, want := s.Mean(), 2*0.25-1*0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

// The filter's payoff: κJ over unrelated series skips most exact EMDs.
func BenchmarkKJFiltered(b *testing.B) {
	s1 := Extract(synth(1, 1), DefaultOptions())
	s2 := Extract(synth(9, 2), DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KJ(s1, s2, DefaultMatchThreshold)
	}
}

func BenchmarkKJUnfilteredReference(b *testing.B) {
	s1 := Extract(synth(1, 1), DefaultOptions())
	s2 := Extract(synth(9, 2), DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kjReference(s1, s2, DefaultMatchThreshold)
	}
}
