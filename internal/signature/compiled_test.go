package signature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSignature(rng *rand.Rand, n int) Signature {
	sig := Signature{Cuboids: make([]Cuboid, n)}
	var mass float64
	for i := range sig.Cuboids {
		sig.Cuboids[i] = Cuboid{V: rng.NormFloat64(), Mu: 0.05 + rng.Float64()}
		mass += sig.Cuboids[i].Mu
	}
	for i := range sig.Cuboids {
		sig.Cuboids[i].Mu /= mass
	}
	return sig
}

func TestCompileBasics(t *testing.T) {
	sig := Signature{Cuboids: []Cuboid{{V: 0.5, Mu: 0.25}, {V: -0.2, Mu: 0.75}}}
	c := Compile(sig)
	if !c.OK {
		t.Fatal("valid signature compiled to !OK")
	}
	if c.Mass != sig.TotalMass() {
		t.Errorf("Mass = %v, want %v", c.Mass, sig.TotalMass())
	}
	if c.Mean != sig.Mean() {
		t.Errorf("Mean = %v, want %v", c.Mean, sig.Mean())
	}
	if c.V[0] != -0.2 || c.V[1] != 0.5 {
		t.Errorf("values not sorted: %v", c.V)
	}
	if c.W[0] != 0.75 || c.W[1] != 0.25 {
		t.Errorf("weights not aligned to sorted values: %v", c.W)
	}

	if Compile(Signature{}).OK {
		t.Error("empty signature compiled to OK")
	}
	if Compile(Signature{Cuboids: []Cuboid{{V: 1, Mu: -1}}}).OK {
		t.Error("negative weight compiled to OK")
	}
	if Compile(Signature{Cuboids: []Cuboid{{V: 1, Mu: 0}}}).OK {
		t.Error("zero mass compiled to OK")
	}
}

// The compiled SimC must be bit-identical to the uncompiled SimC — it is the
// same kernel fed the same stable-sorted points, so not even the last ULP may
// move.
func TestSimCCompiledMatchesSimC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSignature(rng, 1+rng.Intn(12))
		b := randomSignature(rng, 1+rng.Intn(12))
		ca, cb := Compile(a), Compile(b)
		return SimCCompiled(&ca, &cb) == SimC(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Degenerate signatures must agree with the uncompiled path too (both report
// relevance 0 rather than erroring).
func TestSimCCompiledDegenerate(t *testing.T) {
	good := Compile(Signature{Cuboids: []Cuboid{{V: 1, Mu: 1}}})
	for name, bad := range map[string]Signature{
		"empty":    {},
		"negative": {Cuboids: []Cuboid{{V: 1, Mu: -1}}},
		"zeromass": {Cuboids: []Cuboid{{V: 1, Mu: 0}}},
	} {
		cb := Compile(bad)
		if got := SimCCompiled(&good, &cb); got != 0 {
			t.Errorf("%s: compiled = %g, want 0", name, got)
		}
		if got := SimC(Signature{Cuboids: []Cuboid{{V: 1, Mu: 1}}}, bad); got != 0 {
			t.Errorf("%s: uncompiled = %g, want 0", name, got)
		}
	}
	// Mass mismatch beyond tolerance → 0 on both paths.
	heavy := Compile(Signature{Cuboids: []Cuboid{{V: 1, Mu: 2}}})
	if got := SimCCompiled(&good, &heavy); got != 0 {
		t.Errorf("mass mismatch: compiled = %g, want 0", got)
	}
}

// κJ over compiled series must be bit-identical to κJ over raw series, on
// real extracted signatures and at every threshold (0 disables the
// lower-bound filter, exercising the full pair loop).
func TestKJCompiledMatchesKJ(t *testing.T) {
	opts := DefaultOptions()
	var series []Series
	for topic := 0; topic < 4; topic++ {
		series = append(series, Extract(synth(topic, int64(topic+1)), opts))
	}
	for _, threshold := range []float64{0, 0.3, DefaultMatchThreshold, 0.9} {
		for i := range series {
			for j := range series {
				want := KJ(series[i], series[j], threshold)
				got := KJCompiled(CompileSeries(series[i]), CompileSeries(series[j]), threshold)
				if got != want {
					t.Fatalf("threshold %g, pair (%d,%d): compiled %v != uncompiled %v", threshold, i, j, got, want)
				}
			}
		}
	}
}

// Satellite regression: greedy matching must break equal-SimC ties by
// (i asc, j asc) so κJ is a pure function of the input, stable across sort
// algorithms and Go versions. The fixture has an exact tie whose resolution
// changes the final value: s1 = {X=-d, Y=+d}, s2 = {Z=0, W=10}. Both X and Y
// are exactly d from Z (tied sim), and whichever of them loses the tie is
// matched with the far-away W — X losing and Y losing give different sums.
func TestKJTieBreakDeterministic(t *testing.T) {
	const d = 0.25
	point := func(v float64) Signature {
		return Signature{Cuboids: []Cuboid{{V: v, Mu: 1}}}
	}
	s1 := Series{point(-d), point(+d)}
	s2 := Series{point(0), point(10)}

	simTie := 1 / (1 + d) // X↔Z and Y↔Z, exactly equal
	if SimC(s1[0], s2[0]) != simTie || SimC(s1[1], s2[0]) != simTie {
		t.Fatal("fixture does not produce an exact tie")
	}
	// Tie goes to i=0 (X matches Z); Y falls through to W at distance 10−d.
	// Union = |S1|+|S2|−matched = 2+2−2 = 2.
	want := (simTie + 1/(1+10-d)) / 2

	for run := 0; run < 50; run++ {
		if got := KJ(s1, s2, 0); got != want {
			t.Fatalf("run %d: κJ = %v, want %v (tie resolved against i asc)", run, got, want)
		}
		if got := KJCompiled(CompileSeries(s1), CompileSeries(s2), 0); got != want {
			t.Fatalf("run %d: compiled κJ = %v, want %v", run, got, want)
		}
	}
}

// The compiled κJ with a caller-owned scratch must allocate nothing in steady
// state — this is the per-candidate refinement step.
func TestKJCancelCompiledZeroAlloc(t *testing.T) {
	opts := DefaultOptions()
	a := CompileSeries(Extract(synth(1, 1), opts))
	b := CompileSeries(Extract(synth(2, 2), opts))
	var scratch KJScratch
	// Warm the scratch to its high-water mark for this pair.
	if v, ok := KJCancelCompiled(a, b, DefaultMatchThreshold, nil, &scratch); !ok || math.IsNaN(v) {
		t.Fatal("warm-up failed")
	}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		v, _ := KJCancelCompiled(a, b, DefaultMatchThreshold, nil, &scratch)
		sink += v
	})
	if allocs != 0 {
		t.Fatalf("KJCancelCompiled allocates %.1f/op with scratch, want 0", allocs)
	}
	// Threshold 0 takes the no-filter path with many more pairs; still 0.
	KJCancelCompiled(a, b, 0, nil, &scratch)
	allocs = testing.AllocsPerRun(100, func() {
		v, _ := KJCancelCompiled(a, b, 0, nil, &scratch)
		sink += v
	})
	if allocs != 0 {
		t.Fatalf("KJCancelCompiled (threshold 0) allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}

// Cancellation semantics of the compiled path mirror KJCancel: a cancelled
// computation reports incomplete, nil series behave like empty ones.
func TestKJCancelCompiledEdges(t *testing.T) {
	opts := DefaultOptions()
	a := CompileSeries(Extract(synth(1, 1), opts))
	if v, ok := KJCancelCompiled(nil, a, 0.5, nil, nil); v != 0 || !ok {
		t.Errorf("nil series: (%g, %v), want (0, true)", v, ok)
	}
	if v, ok := KJCancelCompiled(a, &CompiledSeries{}, 0.5, nil, nil); v != 0 || !ok {
		t.Errorf("empty series: (%g, %v), want (0, true)", v, ok)
	}
	if _, ok := KJCancelCompiled(a, a, 0.5, func() bool { return true }, nil); ok {
		t.Error("cancelled computation reported complete")
	}
}

func BenchmarkKJCompiled(b *testing.B) {
	opts := DefaultOptions()
	s1 := CompileSeries(Extract(synth(1, 1), opts))
	s2 := CompileSeries(Extract(synth(2, 2), opts))
	var scratch KJScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KJCancelCompiled(s1, s2, DefaultMatchThreshold, nil, &scratch)
	}
}
