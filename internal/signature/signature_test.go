package signature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"videorec/internal/video"
)

func synth(topic int, seed int64) *video.Video {
	rng := rand.New(rand.NewSource(seed))
	return video.Synthesize("t", topic, video.DefaultSynthOptions(), rng)
}

func TestExtractProducesNormalizedSignatures(t *testing.T) {
	v := synth(1, 1)
	series := Extract(v, DefaultOptions())
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	for i, sig := range series {
		if len(sig.Cuboids) == 0 {
			t.Fatalf("signature %d has no cuboids", i)
		}
		if m := sig.TotalMass(); math.Abs(m-1) > 1e-9 {
			t.Errorf("signature %d mass = %g, want 1", i, m)
		}
		for _, c := range sig.Cuboids {
			if c.Mu <= 0 {
				t.Errorf("signature %d has non-positive weight %g", i, c.Mu)
			}
			limit := 255.0 / DefaultOptions().VScale
			if c.V < -limit || c.V > limit {
				t.Errorf("signature %d value %g out of [-%g,%g]", i, c.V, limit, limit)
			}
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	a := Extract(synth(2, 5), DefaultOptions())
	b := Extract(synth(2, 5), DefaultOptions())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Cuboids) != len(b[i].Cuboids) {
			t.Fatalf("signature %d cuboid counts differ", i)
		}
		for j := range a[i].Cuboids {
			if a[i].Cuboids[j] != b[i].Cuboids[j] {
				t.Fatalf("signature %d cuboid %d differs", i, j)
			}
		}
	}
}

func TestExtractPanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Extract(synth(1, 1), Options{Grid: 0, Q: 2})
}

func TestMergeBlocksUniformFrame(t *testing.T) {
	f := video.NewFrame(16, 16)
	for i := range f.Pix {
		f.Pix[i] = 100
	}
	regions := mergeBlocks(f, 4, 5)
	for _, r := range regions {
		if r != 0 {
			t.Fatalf("uniform frame should merge to one region, got id %d", r)
		}
	}
}

func TestMergeBlocksSplitFrame(t *testing.T) {
	// Left half dark, right half bright: expect exactly two regions.
	f := video.NewFrame(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if x < 8 {
				f.Set(x, y, 20)
			} else {
				f.Set(x, y, 220)
			}
		}
	}
	regions := mergeBlocks(f, 4, 10)
	ids := map[int]bool{}
	for _, r := range regions {
		ids[r] = true
	}
	if len(ids) != 2 {
		t.Fatalf("got %d regions, want 2", len(ids))
	}
	if regions[0] == regions[3] {
		t.Error("left and right blocks merged despite intensity gap")
	}
}

func TestSimCSelf(t *testing.T) {
	v := synth(3, 2)
	series := Extract(v, DefaultOptions())
	if got := SimC(series[0], series[0]); math.Abs(got-1) > 1e-9 {
		t.Errorf("self SimC = %g, want 1", got)
	}
}

func TestSimCEmpty(t *testing.T) {
	v := synth(3, 2)
	series := Extract(v, DefaultOptions())
	if got := SimC(Signature{}, series[0]); got != 0 {
		t.Errorf("empty SimC = %g, want 0", got)
	}
}

func TestSimCSymmetric(t *testing.T) {
	a := Extract(synth(1, 1), DefaultOptions())
	b := Extract(synth(4, 2), DefaultOptions())
	if got, want := SimC(a[0], b[0]), SimC(b[0], a[0]); math.Abs(got-want) > 1e-12 {
		t.Errorf("SimC asymmetric: %g vs %g", got, want)
	}
}

func TestKJSelfSimilarityIsOne(t *testing.T) {
	s := Extract(synth(2, 3), DefaultOptions())
	if got := KJ(s, s, 0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("KJ(s,s) = %g, want 1", got)
	}
}

func TestKJEmpty(t *testing.T) {
	s := Extract(synth(2, 3), DefaultOptions())
	if got := KJ(nil, s, 0.5); got != 0 {
		t.Errorf("KJ(nil, s) = %g, want 0", got)
	}
}

func TestKJRange(t *testing.T) {
	a := Extract(synth(1, 1), DefaultOptions())
	b := Extract(synth(9, 2), DefaultOptions())
	got := KJ(a, b, 0.5)
	if got < 0 || got > 1 {
		t.Errorf("KJ = %g out of [0,1]", got)
	}
}

// Near-duplicates must score far higher than unrelated topics — the core
// robustness claim behind choosing cuboid signatures (§4.1).
func TestKJNearDuplicateBeatsUnrelated(t *testing.T) {
	opts := DefaultOptions()
	rng := rand.New(rand.NewSource(99))
	orig := synth(1, 1)
	so := Extract(orig, opts)

	duplicates := map[string]*video.Video{
		"brighten":  video.Brighten(orig, 20),
		"contrast":  video.Contrast(orig, 1.15),
		"noise":     video.AddNoise(orig, 4, rng),
		"cropshift": video.CropShift(orig, 1, 1),
		"drop":      video.DropFrames(orig, 7),
		"reorder":   video.ReorderShots(orig, rng),
	}
	// Max κJ against clips from several unrelated topics.
	var unrelated float64
	for topic := 20; topic < 26; topic++ {
		u := Extract(synth(topic, int64(topic)), opts)
		if s := KJ(so, u, 0.5); s > unrelated {
			unrelated = s
		}
	}
	for name, dup := range duplicates {
		sd := Extract(dup, opts)
		got := KJ(so, sd, 0.5)
		if got <= unrelated {
			t.Errorf("%s: κJ(dup) = %.4f not above max unrelated %.4f", name, got, unrelated)
		}
	}
}

// Temporal shot reordering must NOT destroy κJ: the set-based measure is the
// reason κJ beats DTW/ERP in Figure 7.
func TestKJRobustToReordering(t *testing.T) {
	opts := DefaultOptions()
	orig := synth(5, 8)
	re := video.ReorderShots(orig, rand.New(rand.NewSource(4)))
	so := Extract(orig, opts)
	sr := Extract(re, opts)
	if got := KJ(so, sr, 0.5); got < 0.5 {
		t.Errorf("κJ after reorder = %g, want >= 0.5", got)
	}
}

func TestPropertyKJBoundsAndSymmetry(t *testing.T) {
	opts := DefaultOptions()
	f := func(seedA, seedB int64, ta, tb uint8) bool {
		a := Extract(synth(int(ta%8), seedA), opts)
		b := Extract(synth(int(tb%8), seedB), opts)
		x := KJ(a, b, 0.5)
		y := KJ(b, a, 0.5)
		return x >= 0 && x <= 1 && math.Abs(x-y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySignatureMassInvariant(t *testing.T) {
	opts := DefaultOptions()
	f := func(seed int64, topic uint8) bool {
		series := Extract(synth(int(topic%8), seed), opts)
		for _, sig := range series {
			if math.Abs(sig.TotalMass()-1) > 1e-9 {
				return false
			}
		}
		return len(series) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValuesRoundTrip(t *testing.T) {
	sig := Signature{Cuboids: []Cuboid{{V: 0.5, Mu: 0.25}, {V: -0.2, Mu: 0.75}}}
	v, mu := sig.Values()
	if v[0] != 0.5 || v[1] != -0.2 || mu[0] != 0.25 || mu[1] != 0.75 {
		t.Errorf("Values round trip failed: %v %v", v, mu)
	}
}

func BenchmarkExtract(b *testing.B) {
	v := synth(1, 1)
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(v, opts)
	}
}

func BenchmarkKJ(b *testing.B) {
	opts := DefaultOptions()
	s1 := Extract(synth(1, 1), opts)
	s2 := Extract(synth(2, 2), opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KJ(s1, s2, 0.5)
	}
}
