package signature

import (
	"fmt"
	"sort"

	"videorec/internal/emd"
	"videorec/internal/video"
)

// The paper simplifies the cuboid model to scalars: "we use bigrams and
// each v is a single value" (§4.1). Definition 1, however, is stated for
// arbitrary ground costs. This file implements the general form: q-grams
// with q > 2 produce vector-valued cuboids (one intensity-change component
// per keyframe transition), compared with the exact transportation simplex
// under the L1 ground distance. It trades the closed-form 1-D EMD for finer
// temporal detail — the ablation bench quantifies the cost.

// VectorCuboid is the general (v, μ) pair with a vector-valued v.
type VectorCuboid struct {
	V  []float64
	Mu float64
}

// VectorSignature is a cuboid signature in the general model.
type VectorSignature struct {
	Cuboids []VectorCuboid
}

// VectorSeries is a video's sequence of general signatures.
type VectorSeries []VectorSignature

// TotalMass returns Σμ.
func (s VectorSignature) TotalMass() float64 {
	var t float64
	for _, c := range s.Cuboids {
		t += c.Mu
	}
	return t
}

// ExtractVector converts a video into its general signature series: the
// same shot/keyframe/block-merge pipeline as Extract, but each region's v
// holds all Q−1 per-transition intensity changes instead of their average.
// Q must be at least 3 (Q=2 is exactly the scalar model — use Extract).
func ExtractVector(v *video.Video, opts Options) VectorSeries {
	if opts.Grid <= 0 || opts.Q < 3 {
		panic(fmt.Sprintf("signature: ExtractVector needs Q >= 3, got %+v", opts))
	}
	shots := video.Shots(v, opts.Cut)
	var series VectorSeries
	for _, shot := range shots {
		if shot.Len() <= 0 {
			continue
		}
		keys := video.Keyframes(v, []video.Shot{shot}, opts.KeyframesPerShot)
		if len(keys) == 0 {
			continue
		}
		for len(keys) < opts.Q {
			keys = append(keys, keys[len(keys)-1])
		}
		for w := 0; w+opts.Q <= len(keys); w++ {
			sig := buildVectorSignature(keys[w:w+opts.Q], opts)
			if len(sig.Cuboids) > 0 {
				series = append(series, sig)
			}
		}
	}
	return series
}

func buildVectorSignature(keys []*video.Frame, opts Options) VectorSignature {
	ref := keys[0]
	g := opts.Grid
	regions := mergeBlocks(ref, g, opts.MergeThreshold)
	nRegions := 0
	for _, r := range regions {
		if r+1 > nRegions {
			nRegions = r + 1
		}
	}
	bw := (ref.W + g - 1) / g
	bh := (ref.H + g - 1) / g
	means := make([][]float64, len(keys))
	sizes := make([]float64, nRegions)
	for ki, f := range keys {
		means[ki] = make([]float64, nRegions)
		counts := make([]float64, nRegions)
		for by := 0; by < g; by++ {
			for bx := 0; bx < g; bx++ {
				r := regions[by*g+bx]
				means[ki][r] += f.BlockMean(bx*bw, by*bh, (bx+1)*bw, (by+1)*bh)
				counts[r]++
			}
		}
		for r := range means[ki] {
			if counts[r] > 0 {
				means[ki][r] /= counts[r]
			}
			if ki == 0 {
				sizes[r] = counts[r]
			}
		}
	}
	scale := opts.VScale
	if scale <= 0 {
		scale = 1
	}
	total := float64(g * g)
	sig := VectorSignature{Cuboids: make([]VectorCuboid, 0, nRegions)}
	for r := 0; r < nRegions; r++ {
		if sizes[r] == 0 {
			continue
		}
		vals := make([]float64, len(keys)-1)
		for ki := 1; ki < len(keys); ki++ {
			vals[ki-1] = (means[ki][r] - means[ki-1][r]) / scale
		}
		sig.Cuboids = append(sig.Cuboids, VectorCuboid{V: vals, Mu: sizes[r] / total})
	}
	return sig
}

// SimCVector is Equation 3 in the general model: 1/(1+EMD) with EMD solved
// exactly by the transportation simplex under the L1 ground distance between
// cuboid vectors.
func SimCVector(a, b VectorSignature) float64 {
	if len(a.Cuboids) == 0 || len(b.Cuboids) == 0 {
		return 0
	}
	cost := make([][]float64, len(a.Cuboids))
	supply := make([]float64, len(a.Cuboids))
	demand := make([]float64, len(b.Cuboids))
	for i, ca := range a.Cuboids {
		row := make([]float64, len(b.Cuboids))
		for j, cb := range b.Cuboids {
			row[j] = l1Vec(ca.V, cb.V)
		}
		cost[i] = row
		supply[i] = ca.Mu
	}
	for j, cb := range b.Cuboids {
		demand[j] = cb.Mu
	}
	d, _, err := emd.Solve(cost, supply, demand)
	if err != nil {
		return 0
	}
	return emd.Similarity(d)
}

// KJVector is Equation 4 over general signature series.
func KJVector(s1, s2 VectorSeries, matchThreshold float64) float64 {
	if len(s1) == 0 || len(s2) == 0 {
		return 0
	}
	type pair struct {
		i, j int
		sim  float64
	}
	var pairs []pair
	for i := range s1 {
		for j := range s2 {
			if sim := SimCVector(s1[i], s2[j]); sim >= matchThreshold {
				pairs = append(pairs, pair{i, j, sim})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].sim > pairs[b].sim })
	usedI := make([]bool, len(s1))
	usedJ := make([]bool, len(s2))
	var num float64
	matched := 0
	for _, p := range pairs {
		if usedI[p.i] || usedJ[p.j] {
			continue
		}
		usedI[p.i] = true
		usedJ[p.j] = true
		num += p.sim
		matched++
	}
	union := float64(len(s1) + len(s2) - matched)
	if union <= 0 {
		return 0
	}
	return num / union
}

func l1Vec(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	for _, x := range a[n:] {
		if x < 0 {
			x = -x
		}
		s += x
	}
	for _, x := range b[n:] {
		if x < 0 {
			x = -x
		}
		s += x
	}
	return s
}
