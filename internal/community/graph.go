// Package community implements the sub-community machinery of §4.2.2 and
// §4.2.4: the user interest graph (UIG), sub-community extraction by
// lightest-edge removal (Figure 3) together with its efficient
// descending-Kruskal dual, and the social-updates maintenance algorithm
// (Figure 5) with the cost model of Equation 8.
package community

import "sort"

// Edge is a weighted UIG edge: W counts the videos both users are
// interested in.
type Edge struct {
	U, V string
	W    float64
}

// Graph is the user interest graph: nodes are social users, edge weights
// count shared interesting videos. It is undirected; parallel additions
// accumulate weight.
type Graph struct {
	index map[string]int
	names []string
	adj   []map[int]float64
}

// NewGraph returns an empty UIG.
func NewGraph() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddUser inserts the user if absent and returns its node index.
func (g *Graph) AddUser(u string) int {
	if i, ok := g.index[u]; ok {
		return i
	}
	i := len(g.names)
	g.index[u] = i
	g.names = append(g.names, u)
	g.adj = append(g.adj, make(map[int]float64))
	return i
}

// HasUser reports whether u is a node of the graph.
func (g *Graph) HasUser(u string) bool {
	_, ok := g.index[u]
	return ok
}

// NumUsers returns the node count.
func (g *Graph) NumUsers() int { return len(g.names) }

// Users returns the node names in insertion order. The caller must not
// modify the returned slice.
func (g *Graph) Users() []string { return g.names }

// AddEdgeWeight adds delta to the weight of the undirected edge (u, v),
// creating users and the edge as needed. Self-loops create the user but no
// edge; empty user ids are ignored entirely.
func (g *Graph) AddEdgeWeight(u, v string, delta float64) {
	if u == "" || v == "" {
		return
	}
	iu := g.AddUser(u)
	iv := g.AddUser(v)
	if u == v || delta == 0 {
		return
	}
	g.adj[iu][iv] += delta
	g.adj[iv][iu] += delta
}

// Weight returns the weight of edge (u, v), or 0 if absent.
func (g *Graph) Weight(u, v string) float64 {
	iu, ok := g.index[u]
	if !ok {
		return 0
	}
	iv, ok := g.index[v]
	if !ok {
		return 0
	}
	return g.adj[iu][iv]
}

// Edges returns every undirected edge exactly once, sorted by (U, V) for
// determinism.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for iu, nbrs := range g.adj {
		for iv, w := range nbrs {
			if iu < iv {
				a, b := g.names[iu], g.names[iv]
				if a > b {
					a, b = b, a
				}
				es = append(es, Edge{U: a, V: b, W: w})
			}
		}
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].U != es[b].U {
			return es[a].U < es[b].U
		}
		return es[a].V < es[b].V
	})
	return es
}

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nbrs := range g.adj {
		n += len(nbrs)
	}
	return n / 2
}

// Neighbors calls f for every neighbor of u with the edge weight.
func (g *Graph) Neighbors(u string, f func(v string, w float64)) {
	iu, ok := g.index[u]
	if !ok {
		return
	}
	for iv, w := range g.adj[iu] {
		f(g.names[iv], w)
	}
}

// Interests maps a user to the set of video ids they are interested in
// (owned or commented). It is the input from which the UIG is built.
type Interests map[string][]string

// BuildUIG constructs the user interest graph from per-video audiences: for
// each video, every pair of its users gains one unit of edge weight ("the
// weight of an edge linking two users denotes the number of common
// interested videos shared by them"). audiences maps video id → user ids.
// Every user becomes a node even if it shares no video with anyone.
func BuildUIG(audiences map[string][]string) *Graph {
	g := NewGraph()
	// Sort video ids so graph construction order — and therefore node
	// indices — is deterministic.
	vids := make([]string, 0, len(audiences))
	for vid := range audiences {
		vids = append(vids, vid)
	}
	sort.Strings(vids)
	for _, vid := range vids {
		users := dedupe(audiences[vid])
		for _, u := range users {
			g.AddUser(u)
		}
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				g.AddEdgeWeight(users[i], users[j], 1)
			}
		}
	}
	return g
}

func dedupe(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	w := 0
	for i, s := range out {
		if s == "" {
			continue
		}
		if w > 0 && out[w-1] == s {
			continue
		}
		_ = i
		out[w] = s
		w++
	}
	return out[:w]
}
