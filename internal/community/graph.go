// Package community implements the sub-community machinery of §4.2.2 and
// §4.2.4: the user interest graph (UIG), sub-community extraction by
// lightest-edge removal (Figure 3) together with its efficient
// descending-Kruskal dual, and the social-updates maintenance algorithm
// (Figure 5) with the cost model of Equation 8.
package community

import "sort"

// Edge is a weighted UIG edge: W counts the videos both users are
// interested in. Edges are string-named because they cross the journal and
// replication wire (the v3 entry format); inside the package everything
// runs on dense interned ids.
type Edge struct {
	U, V string
	W    float64
}

// Graph is the user interest graph: nodes are social users, edge weights
// count shared interesting videos. It is undirected; parallel additions
// accumulate weight.
//
// Adjacency is a CSR base (flat neighbor/weight arrays plus per-node
// offsets, both directions stored, neighbors sorted by id) with a small
// per-node overlay absorbing post-build insertions. An edge lives in
// exactly one of the two: a delta to an edge already in the base patches
// the weight array in place (the graph is write-side private — published
// Views hold only the partition and the user table, never the adjacency),
// while a brand-new edge goes to the overlay. When the overlay outgrows
// compactThreshold(base size) it is merged into a fresh CSR base, so the
// steady state is flat-array traversal with amortized O(1) insertion.
//
// Nodes minted after the last compaction have no base span; their entire
// adjacency is overlay.
type Graph struct {
	users *UserTable

	off []uint32 // base: node id → [off[i], off[i+1]) span in nbr/wt; len = baseNodes+1
	nbr []uint32 // base: neighbor ids, sorted within each span
	wt  []float64

	ov    [][]oedge // per-node overlay, sorted by .to; nil for untouched nodes
	ovLen int       // total overlay entries (directed)
	edges int       // undirected edge count (base + overlay)
}

type oedge struct {
	to uint32
	w  float64
}

// compactTrigger decides when the overlay is folded into the CSR base. A
// variable so tests can force compaction on tiny graphs.
var compactTrigger = func(overlayDirected, baseDirected int) bool {
	return overlayDirected > 128 && overlayDirected > baseDirected/2
}

// NewGraph returns an empty UIG.
func NewGraph() *Graph {
	return &Graph{users: NewUserTable(), off: []uint32{0}}
}

// UserTable exposes the graph's intern table. The partition extracted from
// this graph shares it.
func (g *Graph) UserTable() *UserTable { return g.users }

// MarkUsersShared flags the intern table as published: the next minted user
// id copies the table first so frozen readers are unaffected.
func (g *Graph) MarkUsersShared() { g.users.MarkShared() }

// internUser resolves a name to its dense id, minting (with copy-on-write
// when the table is shared) if new. The empty string must never reach this.
func (g *Graph) internUser(name string) (uint32, bool) {
	if i, ok := g.users.idx[name]; ok {
		return i, false
	}
	if g.users.shared {
		g.users = g.users.clone()
	}
	return g.users.insert(name), true
}

// AddUser inserts the user if absent and returns its node index.
func (g *Graph) AddUser(u string) int {
	i, _ := g.internUser(u)
	return int(i)
}

// HasUser reports whether u is a node of the graph.
func (g *Graph) HasUser(u string) bool {
	_, ok := g.users.idx[u]
	return ok
}

// NumUsers returns the node count.
func (g *Graph) NumUsers() int { return g.users.Len() }

// Users returns the node names in insertion order. The caller must not
// modify the returned slice.
func (g *Graph) Users() []string { return g.users.names }

// baseSpan returns the CSR slice bounds for node i (empty for nodes minted
// after the last compaction).
func (g *Graph) baseSpan(i uint32) (lo, hi uint32) {
	if int(i)+1 >= len(g.off) {
		return 0, 0
	}
	return g.off[i], g.off[i+1]
}

// findBase locates neighbor b in a's base span via binary search, returning
// the index into nbr/wt.
func (g *Graph) findBase(a, b uint32) (int, bool) {
	lo, hi := g.baseSpan(a)
	end := hi
	for lo < hi {
		mid := (lo + hi) / 2
		if g.nbr[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && g.nbr[lo] == b {
		return int(lo), true
	}
	return 0, false
}

// addDirected adds delta to the a→b half-edge, reporting whether the edge
// did not exist before (in either base or overlay).
func (g *Graph) addDirected(a, b uint32, delta float64) bool {
	if i, ok := g.findBase(a, b); ok {
		g.wt[i] += delta
		return false
	}
	ov := g.ov
	if int(a) >= len(ov) {
		grown := make([][]oedge, g.users.Len())
		copy(grown, ov)
		g.ov, ov = grown, grown
	}
	lst := ov[a]
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := (lo + hi) / 2
		if lst[mid].to < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(lst) && lst[lo].to == b {
		lst[lo].w += delta
		return false
	}
	lst = append(lst, oedge{})
	copy(lst[lo+1:], lst[lo:])
	lst[lo] = oedge{to: b, w: delta}
	ov[a] = lst
	g.ovLen++
	return true
}

// AddEdgeWeight adds delta to the weight of the undirected edge (u, v),
// creating users and the edge as needed. Self-loops create the user but no
// edge; empty user ids are ignored entirely.
func (g *Graph) AddEdgeWeight(u, v string, delta float64) {
	if u == "" || v == "" {
		return
	}
	iu, _ := g.internUser(u)
	iv, _ := g.internUser(v)
	if u == v || delta == 0 {
		return
	}
	g.addEdgeDense(iu, iv, delta)
}

// addEdgeDense is AddEdgeWeight after interning: both endpoints exist and
// are distinct.
func (g *Graph) addEdgeDense(iu, iv uint32, delta float64) {
	if g.addDirected(iu, iv, delta) {
		g.edges++
	}
	g.addDirected(iv, iu, delta)
	g.maybeCompact()
}

func (g *Graph) maybeCompact() {
	if compactTrigger(g.ovLen, len(g.nbr)) {
		g.Compact()
	}
}

// Compact merges the overlay into a fresh CSR base covering every current
// node. Weights and the edge set are unchanged; only the storage moves.
func (g *Graph) Compact() {
	n := g.users.Len()
	off := make([]uint32, n+1)
	for i := uint32(0); i < uint32(n); i++ {
		lo, hi := g.baseSpan(i)
		deg := int(hi-lo) + len(g.overlayOf(i))
		off[i+1] = off[i] + uint32(deg)
	}
	total := int(off[n])
	nbr := make([]uint32, total)
	wt := make([]float64, total)
	for i := uint32(0); i < uint32(n); i++ {
		lo, hi := g.baseSpan(i)
		ov := g.overlayOf(i)
		w := off[i]
		// Merge two id-sorted runs.
		for lo < hi && len(ov) > 0 {
			if g.nbr[lo] < ov[0].to {
				nbr[w], wt[w] = g.nbr[lo], g.wt[lo]
				lo++
			} else {
				nbr[w], wt[w] = ov[0].to, ov[0].w
				ov = ov[1:]
			}
			w++
		}
		for ; lo < hi; lo++ {
			nbr[w], wt[w] = g.nbr[lo], g.wt[lo]
			w++
		}
		for _, e := range ov {
			nbr[w], wt[w] = e.to, e.w
			w++
		}
	}
	g.off, g.nbr, g.wt = off, nbr, wt
	g.ov, g.ovLen = nil, 0
}

func (g *Graph) overlayOf(i uint32) []oedge {
	if int(i) < len(g.ov) {
		return g.ov[i]
	}
	return nil
}

// OverlayLen returns the number of directed overlay entries — the "not yet
// compacted" portion of the adjacency, surfaced in update reports.
func (g *Graph) OverlayLen() int { return g.ovLen }

// weightDense returns the weight of the directed half-edge a→b, or 0.
func (g *Graph) weightDense(a, b uint32) float64 {
	if i, ok := g.findBase(a, b); ok {
		return g.wt[i]
	}
	for _, e := range g.overlayOf(a) {
		if e.to == b {
			return e.w
		}
		if e.to > b {
			break
		}
	}
	return 0
}

// Weight returns the weight of edge (u, v), or 0 if absent.
func (g *Graph) Weight(u, v string) float64 {
	iu, ok := g.users.Lookup(u)
	if !ok {
		return 0
	}
	iv, ok := g.users.Lookup(v)
	if !ok {
		return 0
	}
	return g.weightDense(iu, iv)
}

// neighborsDense calls f for every neighbor of node i with the half-edge
// weight, base entries before overlay entries.
func (g *Graph) neighborsDense(i uint32, f func(j uint32, w float64)) {
	lo, hi := g.baseSpan(i)
	for ; lo < hi; lo++ {
		f(g.nbr[lo], g.wt[lo])
	}
	for _, e := range g.overlayOf(i) {
		f(e.to, e.w)
	}
}

// eachEdgeDense calls f once per undirected edge (iu < iv), in unspecified
// order. Callers needing determinism must impose their own total order on
// what f observes.
func (g *Graph) eachEdgeDense(f func(iu, iv uint32, w float64)) {
	n := uint32(g.users.Len())
	for i := uint32(0); i < n; i++ {
		lo, hi := g.baseSpan(i)
		for ; lo < hi; lo++ {
			if j := g.nbr[lo]; i < j {
				f(i, j, g.wt[lo])
			}
		}
		for _, e := range g.overlayOf(i) {
			if i < e.to {
				f(i, e.to, e.w)
			}
		}
	}
}

// Edges returns every undirected edge exactly once, sorted by (U, V) for
// determinism.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.edges)
	g.eachEdgeDense(func(iu, iv uint32, w float64) {
		a, b := g.users.Name(iu), g.users.Name(iv)
		if a > b {
			a, b = b, a
		}
		es = append(es, Edge{U: a, V: b, W: w})
	})
	sort.Slice(es, func(a, b int) bool {
		if es[a].U != es[b].U {
			return es[a].U < es[b].U
		}
		return es[a].V < es[b].V
	})
	return es
}

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Neighbors calls f for every neighbor of u with the edge weight.
func (g *Graph) Neighbors(u string, f func(v string, w float64)) {
	iu, ok := g.users.Lookup(u)
	if !ok {
		return
	}
	g.neighborsDense(iu, func(j uint32, w float64) {
		f(g.users.Name(j), w)
	})
}

// Interests maps a user to the set of video ids they are interested in
// (owned or commented). It is the input from which the UIG is built.
type Interests map[string][]string

// BuildUIG constructs the user interest graph from per-video audiences: for
// each video, every pair of its users gains one unit of edge weight ("the
// weight of an edge linking two users denotes the number of common
// interested videos shared by them"). audiences maps video id → user ids.
// Every user becomes a node even if it shares no video with anyone.
//
// Construction is bulk: per-video pairs are emitted as packed uint64 id
// keys, sorted once, and run-length counted straight into the CSR base —
// no per-edge map traffic. Node ids follow (sorted video id, sorted user
// name) encounter order, so the graph is deterministic given the map's
// contents.
func BuildUIG(audiences map[string][]string) *Graph {
	g := NewGraph()
	vids := make([]string, 0, len(audiences))
	for vid := range audiences {
		vids = append(vids, vid)
	}
	sort.Strings(vids)

	var pairs []uint64
	ids := make([]uint32, 0, 64)
	for _, vid := range vids {
		users := DedupeUsers(audiences[vid])
		ids = ids[:0]
		for _, u := range users {
			i, _ := g.internUser(u)
			ids = append(ids, i)
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if a > b {
					a, b = b, a
				}
				pairs = append(pairs, uint64(a)<<32|uint64(b))
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a] < pairs[b] })

	// Run-length count → degree histogram → CSR fill (both directions).
	n := g.users.Len()
	deg := make([]uint32, n)
	runs := 0
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		deg[pairs[i]>>32]++
		deg[uint32(pairs[i])]++
		runs++
		i = j
	}
	off := make([]uint32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i]
	}
	nbr := make([]uint32, off[n])
	wt := make([]float64, off[n])
	cursor := make([]uint32, n)
	copy(cursor, off[:n])
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		a, b := uint32(pairs[i]>>32), uint32(pairs[i])
		w := float64(j - i)
		nbr[cursor[a]], wt[cursor[a]] = b, w
		cursor[a]++
		nbr[cursor[b]], wt[cursor[b]] = a, w
		cursor[b]++
		i = j
	}
	// Pairs were emitted with a-sides ascending per a, so each a-span filled
	// in key order is already id-sorted; b-sides land sorted too because the
	// global key order visits each b's partners in ascending a.
	g.off, g.nbr, g.wt = off, nbr, wt
	g.edges = runs
	return g
}
