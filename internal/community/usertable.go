package community

import "sort"

// UserTable is the dense user-id intern table: every user name is assigned
// the next uint32 id, forever. It mirrors the video-id table of
// internal/core — ids are append-only and stable, so the graph adjacency,
// the partition assignment and every derived structure can be
// integer-addressed instead of string-keyed.
//
// The table is shared copy-on-write between the write-side Graph and the
// Partitions published inside read Views: publishing marks the table shared,
// and the first mutation that mints a new id copies the table before
// appending (see Graph.internUser), so readers keep resolving names against
// the table they froze while the writer grows a private successor.
//
// The empty string is never interned: it is the "no user" sentinel
// everywhere in this package, and both the graph and the batch paths filter
// it before reaching the table.
type UserTable struct {
	names  []string          // dense id → user name
	idx    map[string]uint32 // user name → dense id
	shared bool              // a published Partition references this table
}

// NewUserTable returns an empty table.
func NewUserTable() *UserTable {
	return &UserTable{idx: make(map[string]uint32)}
}

// Len returns the number of interned users.
func (t *UserTable) Len() int { return len(t.names) }

// Name returns the user name for a dense id.
func (t *UserTable) Name(i uint32) string { return t.names[i] }

// Names returns the dense id → name slice. Callers must not modify it.
func (t *UserTable) Names() []string { return t.names }

// Lookup resolves a user name to its dense id.
func (t *UserTable) Lookup(name string) (uint32, bool) {
	i, ok := t.idx[name]
	return i, ok
}

// MarkShared flags the table as reachable from a published reader; the next
// Insert will copy it first.
func (t *UserTable) MarkShared() { t.shared = true }

// clone returns a privately owned copy with the same id assignments.
func (t *UserTable) clone() *UserTable {
	cp := &UserTable{
		names: append([]string(nil), t.names...),
		idx:   make(map[string]uint32, len(t.idx)),
	}
	for name, i := range t.idx {
		cp.idx[name] = i
	}
	return cp
}

// insert mints the next id for a new name. The caller has already checked
// absence and handled copy-on-write; this is the tail of Graph.internUser.
func (t *UserTable) insert(name string) uint32 {
	i := uint32(len(t.names))
	t.names = append(t.names, name)
	t.idx[name] = i
	return i
}

// DedupeUsers returns the sorted, deduplicated user list with empty ids
// dropped — the audience normalization shared by UIG construction and
// connection derivation. The input is not modified.
func DedupeUsers(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	w := 0
	for _, s := range out {
		if s == "" {
			continue
		}
		if w > 0 && out[w-1] == s {
			continue
		}
		out[w] = s
		w++
	}
	return out[:w]
}
