//go:build !race

package community

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
