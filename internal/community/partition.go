package community

import (
	"math"
	"sort"
)

// Partition is the result of sub-community extraction: a dense sub-community
// id per user. Ids are in [0, Dim).
type Partition struct {
	K             int            // requested number of sub-communities
	Dim           int            // actual number extracted (see ExtractSubCommunities)
	Assign        map[string]int // user → sub-community id
	LightestIntra float64        // w: the lightest edge weight inside any sub-community (+Inf when no edges survive)
}

// Lookup returns the sub-community id of a user.
func (p *Partition) Lookup(u string) (int, bool) {
	c, ok := p.Assign[u]
	return c, ok
}

// Sizes returns the member count per sub-community id.
func (p *Partition) Sizes() []int {
	sizes := make([]int, p.Dim)
	for _, c := range p.Assign {
		if c >= 0 && c < p.Dim {
			sizes[c]++
		}
	}
	return sizes
}

// edgeLess is the deterministic total order used by both extraction
// algorithms: ascending weight, ties by endpoint names. A consistent order
// is what makes the literal removal loop and the Kruskal dual provably
// produce identical partitions.
func edgeLess(a, b Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// ExtractSubCommunities implements Figure 3 efficiently via the
// descending-Kruskal dual of lightest-edge removal: processing edges from
// heaviest to lightest, union components until exactly k remain; the first
// merging edge encountered at k components — and every lighter edge — is
// exactly the prefix Figure 3 removes.
//
// The actual number of sub-communities Dim can differ from k: it is k when
// the graph has at least k nodes and at most k natural components, the
// natural component count when that exceeds k (removal stops immediately),
// and the node count when the graph has fewer than k users.
func ExtractSubCommunities(g *Graph, k int) *Partition {
	if k < 1 {
		k = 1
	}
	n := g.NumUsers()
	uf := newUnionFind(n)
	edges := g.Edges()
	sort.Slice(edges, func(a, b int) bool { return edgeLess(edges[b], edges[a]) }) // descending

	count := n
	lightest := math.Inf(1)
	for _, e := range edges {
		iu := g.index[e.U]
		iv := g.index[e.V]
		if uf.find(iu) != uf.find(iv) {
			if count <= k {
				break // this edge and all lighter ones are the removed prefix
			}
			uf.union(iu, iv)
			count--
		}
		if e.W < lightest {
			lightest = e.W
		}
	}
	return partitionFromRoots(g, uf, k, lightest)
}

// ExtractLiteral is the verbatim algorithm of Figure 3: repeatedly remove
// the globally lightest remaining edge (deterministic tie-break) and recount
// connected components until at least k exist. It is quadratic and exists to
// property-test the Kruskal dual; use ExtractSubCommunities in production.
func ExtractLiteral(g *Graph, k int) *Partition {
	if k < 1 {
		k = 1
	}
	edges := g.Edges()
	sort.Slice(edges, func(a, b int) bool { return edgeLess(edges[a], edges[b]) }) // ascending

	// Live adjacency over node indices.
	n := g.NumUsers()
	alive := make([]map[int]bool, n)
	for i := range alive {
		alive[i] = make(map[int]bool)
	}
	for _, e := range edges {
		iu, iv := g.index[e.U], g.index[e.V]
		alive[iu][iv] = true
		alive[iv][iu] = true
	}
	components := func() *unionFind {
		uf := newUnionFind(n)
		for iu, nbrs := range alive {
			for iv := range nbrs {
				uf.union(iu, iv)
			}
		}
		return uf
	}
	uf := components()
	removed := 0
	for uf.count < k && removed < len(edges) {
		e := edges[removed]
		removed++
		iu, iv := g.index[e.U], g.index[e.V]
		delete(alive[iu], iv)
		delete(alive[iv], iu)
		uf = components()
	}
	lightest := math.Inf(1)
	for _, e := range edges[removed:] {
		if e.W < lightest {
			lightest = e.W
		}
	}
	return partitionFromRoots(g, uf, k, lightest)
}

// partitionFromRoots densifies union-find roots into sub-community ids,
// numbering communities by first appearance in user insertion order.
func partitionFromRoots(g *Graph, uf *unionFind, k int, lightest float64) *Partition {
	assign := make(map[string]int, g.NumUsers())
	ids := make(map[int]int)
	for i, name := range g.Users() {
		root := uf.find(i)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		assign[name] = id
	}
	return &Partition{
		K:             k,
		Dim:           len(ids),
		Assign:        assign,
		LightestIntra: lightest,
	}
}

type unionFind struct {
	parent []int
	rank   []int
	count  int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n), count: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	uf.count--
	return true
}
