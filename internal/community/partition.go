package community

import (
	"math"
	"sort"
)

// Partition is the result of sub-community extraction: a dense sub-community
// id per user. Ids are in [0, Dim).
//
// The assignment is a flat int32 slice indexed by the dense user id of the
// shared UserTable (-1 = not assigned); the string-keyed view of it exists
// only at the boundaries (snapshots, metrics, tests) via AssignMap. Cloning
// a partition for copy-on-write publication copies the assignment slice and
// shares the table, which from then on copies itself on the first new-user
// mint (see Graph.internUser) — so a published reader never observes the
// writer's table growing underneath it.
type Partition struct {
	K             int     // requested number of sub-communities
	Dim           int     // actual number extracted (see ExtractSubCommunities)
	LightestIntra float64 // w: the lightest edge weight inside any sub-community (+Inf when no edges survive)

	users  *UserTable
	assign []int32 // dense user id → sub-community id; -1 = unassigned
}

// NewPartition builds a partition over an explicit user → sub-community
// map, interning users into the given table (minting ids for unknown
// names). It is the boundary constructor used by snapshot restore and
// tests; extraction and maintenance construct partitions densely.
func NewPartition(users *UserTable, k, dim int, lightest float64, assign map[string]int) *Partition {
	p := &Partition{K: k, Dim: dim, LightestIntra: lightest, users: users}
	names := make([]string, 0, len(assign))
	for u := range assign {
		names = append(names, u)
	}
	sort.Strings(names)
	for _, u := range names {
		id, ok := users.Lookup(u)
		if !ok {
			id = users.insert(u)
		}
		p.growTo(int(id) + 1)
		p.assign[id] = int32(assign[u])
	}
	p.growTo(users.Len())
	return p
}

// Users exposes the partition's intern table (shared with the graph it was
// extracted from).
func (p *Partition) Users() *UserTable { return p.users }

// growTo extends the assignment slice to cover n user ids, filling new
// slots with -1.
func (p *Partition) growTo(n int) {
	for len(p.assign) < n {
		p.assign = append(p.assign, -1)
	}
}

// syncTable repoints the partition at the graph's current table (which may
// have been copy-on-write replaced by a mint) and covers any new ids. The
// maintainer calls this after the merge step of every pass.
func (p *Partition) syncTable(t *UserTable) {
	p.users = t
	p.growTo(t.Len())
}

// Lookup returns the sub-community id of a user.
func (p *Partition) Lookup(u string) (int, bool) {
	i, ok := p.users.Lookup(u)
	if !ok || int(i) >= len(p.assign) || p.assign[i] < 0 {
		return 0, false
	}
	return int(p.assign[i]), true
}

// lookupDense returns the sub-community of a dense user id, or -1.
func (p *Partition) lookupDense(i uint32) int32 {
	if int(i) >= len(p.assign) {
		return -1
	}
	return p.assign[i]
}

// Len returns the number of assigned users.
func (p *Partition) Len() int {
	n := 0
	for _, c := range p.assign {
		if c >= 0 {
			n++
		}
	}
	return n
}

// AssignMap materializes the user → sub-community map. It allocates; use it
// at snapshot/metrics boundaries, not on hot paths.
func (p *Partition) AssignMap() map[string]int {
	out := make(map[string]int, len(p.assign))
	for i, c := range p.assign {
		if c >= 0 {
			out[p.users.Name(uint32(i))] = int(c)
		}
	}
	return out
}

// Clone returns a copy safe to mutate while the original keeps serving
// frozen readers: the assignment slice is copied, the table shared and
// marked so the next mint copies it.
func (p *Partition) Clone() *Partition {
	p.users.MarkShared()
	return &Partition{
		K:             p.K,
		Dim:           p.Dim,
		LightestIntra: p.LightestIntra,
		users:         p.users,
		assign:        append([]int32(nil), p.assign...),
	}
}

// Sizes returns the member count per sub-community id.
func (p *Partition) Sizes() []int {
	sizes := make([]int, p.Dim)
	for _, c := range p.assign {
		if c >= 0 && int(c) < p.Dim {
			sizes[c]++
		}
	}
	return sizes
}

// edgeLess is the deterministic total order used by both extraction
// algorithms: ascending weight, ties by endpoint names. A consistent order
// is what makes the literal removal loop and the Kruskal dual provably
// produce identical partitions.
func edgeLess(a, b Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// ExtractSubCommunities implements Figure 3 efficiently via the
// descending-Kruskal dual of lightest-edge removal: processing edges from
// heaviest to lightest, union components until exactly k remain; the first
// merging edge encountered at k components — and every lighter edge — is
// exactly the prefix Figure 3 removes.
//
// The actual number of sub-communities Dim can differ from k: it is k when
// the graph has at least k nodes and at most k natural components, the
// natural component count when that exceeds k (removal stops immediately),
// and the node count when the graph has fewer than k users.
func ExtractSubCommunities(g *Graph, k int) *Partition {
	if k < 1 {
		k = 1
	}
	n := g.NumUsers()
	uf := newUnionFind(n)
	edges := g.Edges()
	sort.Slice(edges, func(a, b int) bool { return edgeLess(edges[b], edges[a]) }) // descending

	count := n
	lightest := math.Inf(1)
	for _, e := range edges {
		iu, _ := g.users.Lookup(e.U)
		iv, _ := g.users.Lookup(e.V)
		if uf.find(int(iu)) != uf.find(int(iv)) {
			if count <= k {
				break // this edge and all lighter ones are the removed prefix
			}
			uf.union(int(iu), int(iv))
			count--
		}
		if e.W < lightest {
			lightest = e.W
		}
	}
	return partitionFromRoots(g, uf, k, lightest)
}

// ExtractLiteral is the verbatim algorithm of Figure 3: repeatedly remove
// the globally lightest remaining edge (deterministic tie-break) and recount
// connected components until at least k exist. It is quadratic and exists to
// property-test the Kruskal dual; use ExtractSubCommunities in production.
func ExtractLiteral(g *Graph, k int) *Partition {
	if k < 1 {
		k = 1
	}
	edges := g.Edges()
	sort.Slice(edges, func(a, b int) bool { return edgeLess(edges[a], edges[b]) }) // ascending

	// Live adjacency over node indices.
	n := g.NumUsers()
	alive := make([]map[int]bool, n)
	for i := range alive {
		alive[i] = make(map[int]bool)
	}
	nodeOf := func(name string) int {
		i, _ := g.users.Lookup(name)
		return int(i)
	}
	for _, e := range edges {
		iu, iv := nodeOf(e.U), nodeOf(e.V)
		alive[iu][iv] = true
		alive[iv][iu] = true
	}
	components := func() *unionFind {
		uf := newUnionFind(n)
		for iu, nbrs := range alive {
			for iv := range nbrs {
				uf.union(iu, iv)
			}
		}
		return uf
	}
	uf := components()
	removed := 0
	for uf.count < k && removed < len(edges) {
		e := edges[removed]
		removed++
		iu, iv := nodeOf(e.U), nodeOf(e.V)
		delete(alive[iu], iv)
		delete(alive[iv], iu)
		uf = components()
	}
	lightest := math.Inf(1)
	for _, e := range edges[removed:] {
		if e.W < lightest {
			lightest = e.W
		}
	}
	return partitionFromRoots(g, uf, k, lightest)
}

// partitionFromRoots densifies union-find roots into sub-community ids,
// numbering communities by first appearance in user insertion order.
func partitionFromRoots(g *Graph, uf *unionFind, k int, lightest float64) *Partition {
	n := g.NumUsers()
	assign := make([]int32, n)
	ids := make(map[int]int32)
	for i := 0; i < n; i++ {
		root := uf.find(i)
		id, ok := ids[root]
		if !ok {
			id = int32(len(ids))
			ids[root] = id
		}
		assign[i] = id
	}
	return &Partition{
		K:             k,
		Dim:           len(ids),
		LightestIntra: lightest,
		users:         g.users,
		assign:        assign,
	}
}

type unionFind struct {
	parent []int
	rank   []int
	count  int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n), count: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	uf.count--
	return true
}
