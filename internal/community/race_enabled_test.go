//go:build race

package community

// raceEnabled reports whether the race detector is instrumenting this build.
// Race instrumentation allocates, so allocation-pinning tests skip under it.
const raceEnabled = true
