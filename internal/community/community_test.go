package community

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// cno is the sub-community of a user, -1 when unassigned — test shorthand
// over the dense partition.
func cno(p *Partition, u string) int {
	c, ok := p.Lookup(u)
	if !ok {
		return -1
	}
	return c
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddEdgeWeight("a", "b", 2)
	g.AddEdgeWeight("b", "a", 1) // accumulates, undirected
	g.AddEdgeWeight("c", "c", 5) // self-loop ignored
	g.AddUser("lonely")
	if g.NumUsers() != 4 {
		t.Errorf("NumUsers = %d, want 4", g.NumUsers())
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w := g.Weight("a", "b"); w != 3 {
		t.Errorf("Weight(a,b) = %g, want 3", w)
	}
	if w := g.Weight("a", "zz"); w != 0 {
		t.Errorf("Weight to unknown = %g, want 0", w)
	}
	if !g.HasUser("lonely") || g.HasUser("nobody") {
		t.Error("HasUser wrong")
	}
}

func TestGraphEdgesDeterministic(t *testing.T) {
	g := NewGraph()
	g.AddEdgeWeight("b", "c", 1)
	g.AddEdgeWeight("a", "b", 2)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("edges = %d, want 2", len(es))
	}
	if es[0].U != "a" || es[0].V != "b" || es[1].U != "b" || es[1].V != "c" {
		t.Errorf("edges not sorted: %+v", es)
	}
}

// The paper's worked example: 8 videos, 5 users (Figure 2).
func paperExampleGraph() *Graph {
	return BuildUIG(map[string][]string{
		"V1": {"u1", "u4"},
		"V2": {"u3"},
		"V3": {"u1", "u2"},
		"V4": {"u3", "u4", "u5"},
		"V5": {"u3", "u4", "u5"},
		"V6": {"u5"},
		"V7": {"u5"},
		"V8": {"u1", "u2"},
	})
}

func TestBuildUIGPaperExample(t *testing.T) {
	g := paperExampleGraph()
	if g.NumUsers() != 5 {
		t.Fatalf("users = %d, want 5", g.NumUsers())
	}
	// u1-u2 share V3 and V8 → weight 2; u3-u4 share V4,V5 → 2; u3-u5 → 2;
	// u4-u5 → 2; u1-u4 share V1 → 1.
	cases := []struct {
		u, v string
		w    float64
	}{
		{"u1", "u2", 2}, {"u3", "u4", 2}, {"u3", "u5", 2},
		{"u4", "u5", 2}, {"u1", "u4", 1}, {"u1", "u3", 0}, {"u2", "u5", 0},
	}
	for _, c := range cases {
		if got := g.Weight(c.u, c.v); got != c.w {
			t.Errorf("Weight(%s,%s) = %g, want %g", c.u, c.v, got, c.w)
		}
	}
}

func TestBuildUIGDedupesAudience(t *testing.T) {
	g := BuildUIG(map[string][]string{"V1": {"a", "a", "b", ""}})
	if got := g.Weight("a", "b"); got != 1 {
		t.Errorf("duplicate commenters inflated weight: %g", got)
	}
	if g.HasUser("") {
		t.Error("empty user id became a node")
	}
}

func TestExtractPaperExample(t *testing.T) {
	g := paperExampleGraph()
	// Removing the lightest edge (u1-u4, weight 1) yields 2 components:
	// {u1,u2} and {u3,u4,u5}.
	p := ExtractSubCommunities(g, 2)
	if p.Dim != 2 {
		t.Fatalf("Dim = %d, want 2", p.Dim)
	}
	if cno(p, "u1") != cno(p, "u2") {
		t.Error("u1 and u2 should share a sub-community")
	}
	if cno(p, "u3") != cno(p, "u4") || cno(p, "u4") != cno(p, "u5") {
		t.Error("u3, u4, u5 should share a sub-community")
	}
	if cno(p, "u1") == cno(p, "u3") {
		t.Error("u1 and u3 should be separated")
	}
	if p.LightestIntra != 2 {
		t.Errorf("LightestIntra = %g, want 2", p.LightestIntra)
	}
}

func TestExtractKEqualsOne(t *testing.T) {
	g := paperExampleGraph()
	p := ExtractSubCommunities(g, 1)
	if p.Dim != 1 {
		t.Errorf("Dim = %d, want 1 (graph is connected)", p.Dim)
	}
}

func TestExtractKLargerThanUsers(t *testing.T) {
	g := paperExampleGraph()
	p := ExtractSubCommunities(g, 50)
	if p.Dim != 5 {
		t.Errorf("Dim = %d, want 5 (one per user)", p.Dim)
	}
	if !math.IsInf(p.LightestIntra, 1) {
		t.Errorf("LightestIntra = %g, want +Inf (no intra edges)", p.LightestIntra)
	}
}

func TestExtractAlreadyDisconnected(t *testing.T) {
	g := NewGraph()
	g.AddEdgeWeight("a", "b", 5)
	g.AddEdgeWeight("c", "d", 5)
	g.AddEdgeWeight("e", "f", 5)
	p := ExtractSubCommunities(g, 2)
	// 3 natural components > k: removal stops immediately.
	if p.Dim != 3 {
		t.Errorf("Dim = %d, want 3", p.Dim)
	}
}

func TestExtractSizesSumToUsers(t *testing.T) {
	g := paperExampleGraph()
	p := ExtractSubCommunities(g, 3)
	total := 0
	for _, s := range p.Sizes() {
		total += s
	}
	if total != g.NumUsers() {
		t.Errorf("sizes sum to %d, want %d", total, g.NumUsers())
	}
}

func randomGraph(rng *rand.Rand, users, edges int) *Graph {
	g := NewGraph()
	for i := 0; i < users; i++ {
		g.AddUser(fmt.Sprintf("u%d", i))
	}
	for e := 0; e < edges; e++ {
		u := fmt.Sprintf("u%d", rng.Intn(users))
		v := fmt.Sprintf("u%d", rng.Intn(users))
		g.AddEdgeWeight(u, v, float64(1+rng.Intn(9)))
	}
	return g
}

// The headline correctness property: the efficient Kruskal dual produces
// exactly the partition of the literal Figure 3 removal loop.
func TestPropertyKruskalDualMatchesLiteral(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		users := 2 + rng.Intn(25)
		g := randomGraph(rng, users, rng.Intn(60))
		k := 1 + rng.Intn(users)
		fast := ExtractSubCommunities(g, k)
		slow := ExtractLiteral(g, k)
		if fast.Dim != slow.Dim {
			t.Logf("seed %d: Dim %d vs %d", seed, fast.Dim, slow.Dim)
			return false
		}
		// Partitions must be identical up to id renaming; ids are assigned
		// by first appearance in both, so they must match exactly.
		slowAssign := slow.AssignMap()
		for u, c := range fast.AssignMap() {
			if slowAssign[u] != c {
				t.Logf("seed %d: user %s assigned %d vs %d", seed, u, c, slowAssign[u])
				return false
			}
		}
		if fast.LightestIntra != slow.LightestIntra {
			t.Logf("seed %d: w %g vs %g", seed, fast.LightestIntra, slow.LightestIntra)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Every extraction invariant: Dim communities, every user assigned, ids
// dense in [0, Dim).
func TestPropertyPartitionWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		users := 1 + rng.Intn(30)
		g := randomGraph(rng, users, rng.Intn(80))
		k := 1 + rng.Intn(users+3)
		p := ExtractSubCommunities(g, k)
		if p.Len() != users {
			return false
		}
		seen := map[int]bool{}
		for _, c := range p.AssignMap() {
			if c < 0 || c >= p.Dim {
				return false
			}
			seen[c] = true
		}
		return len(seen) == p.Dim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainerUnion(t *testing.T) {
	g := paperExampleGraph()
	p := ExtractSubCommunities(g, 2) // w = 2
	var replaced [][2]int
	var touched []int
	m := NewMaintainer(g, p, Hooks{
		ReplaceCommunity: func(old, new int) { replaced = append(replaced, [2]int{old, new}) },
		TouchDimensions:  func(ids ...int) { touched = append(touched, ids...) },
	})
	// A heavy new connection across the two communities (weight 3 > w=2)
	// must union them; the split pass then restores k=2.
	st := m.ApplyConnections([]Edge{{U: "u2", V: "u3", W: 3}})
	if st.Unions != 1 {
		t.Fatalf("Unions = %d, want 1", st.Unions)
	}
	if len(replaced) != 1 {
		t.Fatalf("ReplaceCommunity calls = %d, want 1", len(replaced))
	}
	if st.Splits != 1 {
		t.Errorf("Splits = %d, want 1 (restore k)", st.Splits)
	}
	if got := m.liveCount(); got != 2 {
		t.Errorf("live communities = %d, want 2", got)
	}
	if len(touched) == 0 {
		t.Error("TouchDimensions never called")
	}
}

func TestMaintainerLightConnectionNoUnion(t *testing.T) {
	g := paperExampleGraph()
	p := ExtractSubCommunities(g, 2) // w = 2
	m := NewMaintainer(g, p, Hooks{})
	st := m.ApplyConnections([]Edge{{U: "u2", V: "u3", W: 1}}) // 1 <= w
	if st.Unions != 0 || st.Splits != 0 {
		t.Errorf("light edge caused unions=%d splits=%d", st.Unions, st.Splits)
	}
	if cno(p, "u2") == cno(p, "u3") {
		t.Error("communities merged despite light connection")
	}
}

func TestMaintainerNewUserAssignment(t *testing.T) {
	g := paperExampleGraph()
	p := ExtractSubCommunities(g, 2)
	assigned := map[string]int{}
	m := NewMaintainer(g, p, Hooks{
		AssignUser: func(u string, c int) { assigned[u] = c },
	})
	st := m.ApplyConnections([]Edge{
		{U: "newbie", V: "u5", W: 1},
		{U: "chain", V: "newbie", W: 1},
	})
	if st.NewUsersAssigned != 2 {
		t.Fatalf("NewUsersAssigned = %d, want 2", st.NewUsersAssigned)
	}
	if cno(p, "newbie") != cno(p, "u5") {
		t.Error("newbie should join u5's community")
	}
	if cno(p, "chain") != cno(p, "newbie") {
		t.Error("chained new user should follow its neighbour")
	}
	if assigned["newbie"] != cno(p, "newbie") {
		t.Error("AssignUser hook saw a different community")
	}
}

func TestMaintainerIsolatedNewUserStaysOut(t *testing.T) {
	g := paperExampleGraph()
	p := ExtractSubCommunities(g, 2)
	m := NewMaintainer(g, p, Hooks{})
	st := m.ApplyConnections([]Edge{{U: "lost1", V: "lost2", W: 1}})
	if st.NewUsersAssigned != 0 {
		t.Errorf("NewUsersAssigned = %d, want 0", st.NewUsersAssigned)
	}
	if _, ok := p.Lookup("lost1"); ok {
		t.Error("isolated new user got an assignment")
	}
}

func TestMaintainerSplitRestoresK(t *testing.T) {
	// Two clusters bridged by a light edge, k=2; then a heavy connection
	// merges them and the split must recreate two communities.
	g := NewGraph()
	g.AddEdgeWeight("a1", "a2", 5)
	g.AddEdgeWeight("a2", "a3", 5)
	g.AddEdgeWeight("b1", "b2", 5)
	g.AddEdgeWeight("b2", "b3", 5)
	g.AddEdgeWeight("a3", "b1", 1)
	p := ExtractSubCommunities(g, 2)
	if cno(p, "a1") == cno(p, "b1") {
		t.Fatal("setup: clusters should start separated")
	}
	m := NewMaintainer(g, p, Hooks{})
	st := m.ApplyConnections([]Edge{{U: "a1", V: "b3", W: 9}})
	if st.Unions != 1 {
		t.Fatalf("Unions = %d, want 1", st.Unions)
	}
	if st.Splits != 1 {
		t.Fatalf("Splits = %d, want 1", st.Splits)
	}
	if m.liveCount() != 2 {
		t.Errorf("live communities = %d, want 2", m.liveCount())
	}
}

func TestMaintainerStatsCostModel(t *testing.T) {
	st := Stats{
		NewConnections: 10,
		Unions:         1,
		UnionSizes:     []int{4},
		Splits:         1,
		SplitSizes:     []int{6},
	}
	c := CostConstants{Ch: 1, T1: 2, T2: 3, T3: 4}
	// 10*1 + (4*2 + 2*3) + (6*(2+4) + 5*3) = 10 + 14 + 51 = 75.
	got := EstimateCost(c, st, []int{2}, []int{5})
	if got != 75 {
		t.Errorf("EstimateCost = %g, want 75", got)
	}
	// Missing video counts are treated as zero.
	got = EstimateCost(c, st, nil, nil)
	if got != 10+4*2+6*6 {
		t.Errorf("EstimateCost without videos = %g", got)
	}
}

// Maintenance preserves partition well-formedness under random update
// streams.
func TestPropertyMaintenanceWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		users := 6 + rng.Intn(20)
		g := randomGraph(rng, users, 20+rng.Intn(40))
		k := 2 + rng.Intn(5)
		p := ExtractSubCommunities(g, k)
		m := NewMaintainer(g, p, Hooks{})
		for round := 0; round < 3; round++ {
			var batch []Edge
			for e := 0; e < rng.Intn(10); e++ {
				batch = append(batch, Edge{
					U: fmt.Sprintf("u%d", rng.Intn(users+4)),
					V: fmt.Sprintf("u%d", rng.Intn(users+4)),
					W: float64(1 + rng.Intn(12)),
				})
			}
			m.ApplyConnections(batch)
		}
		// Every assigned id is in [0, Dim); assigned users are graph nodes.
		for u, c := range p.AssignMap() {
			if c < 0 || c >= p.Dim {
				return false
			}
			if !g.HasUser(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExtractSubCommunities(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 2000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractSubCommunities(g, 60)
	}
}

func BenchmarkApplyConnections(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 1000, 5000)
	p := ExtractSubCommunities(g, 60)
	m := NewMaintainer(g, p, Hooks{})
	batch := make([]Edge, 100)
	for i := range batch {
		batch[i] = Edge{
			U: fmt.Sprintf("u%d", rng.Intn(1100)),
			V: fmt.Sprintf("u%d", rng.Intn(1100)),
			W: float64(1 + rng.Intn(10)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ApplyConnections(batch)
	}
}
