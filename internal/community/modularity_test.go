package community

import (
	"math"
	"testing"
)

func cliquePair() *Graph {
	g := NewGraph()
	clique := func(names []string) {
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				g.AddEdgeWeight(names[i], names[j], 1)
			}
		}
	}
	clique([]string{"a1", "a2", "a3", "a4"})
	clique([]string{"b1", "b2", "b3", "b4"})
	g.AddEdgeWeight("a1", "b1", 1)
	return g
}

func TestModularityGoodVsBadPartition(t *testing.T) {
	g := cliquePair()
	good := map[string]int{
		"a1": 0, "a2": 0, "a3": 0, "a4": 0,
		"b1": 1, "b2": 1, "b3": 1, "b4": 1,
	}
	bad := map[string]int{
		"a1": 0, "a2": 1, "a3": 0, "a4": 1,
		"b1": 0, "b2": 1, "b3": 0, "b4": 1,
	}
	qGood := Modularity(g, good)
	qBad := Modularity(g, bad)
	if qGood <= qBad {
		t.Errorf("good partition Q=%.3f not above bad Q=%.3f", qGood, qBad)
	}
	if qGood < 0.3 {
		t.Errorf("good partition Q=%.3f unexpectedly low", qGood)
	}
}

func TestModularitySingleCommunityIsZero(t *testing.T) {
	g := cliquePair()
	all := map[string]int{}
	for _, u := range g.Users() {
		all[u] = 0
	}
	if q := Modularity(g, all); math.Abs(q) > 1e-12 {
		t.Errorf("single-community Q = %g, want 0", q)
	}
}

func TestModularityEdgeCases(t *testing.T) {
	empty := NewGraph()
	if q := Modularity(empty, map[string]int{}); q != 0 {
		t.Errorf("empty graph Q = %g", q)
	}
	// Unassigned users are ignored.
	g := cliquePair()
	partial := map[string]int{"a1": 0, "a2": 0}
	q := Modularity(g, partial)
	if q < -1 || q > 1 {
		t.Errorf("partial assignment Q = %g out of [-1,1]", q)
	}
}

func TestModularityOfExtraction(t *testing.T) {
	// With intra-clique weights clearly above the bridge, the extraction
	// finds the two cliques at k=2 and scores well. (With uniform weights
	// the removal order among ties is arbitrary and the split is not the
	// clique cut — single-linkage needs a weight signal.)
	g := NewGraph()
	clique := func(names []string) {
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				g.AddEdgeWeight(names[i], names[j], 3)
			}
		}
	}
	clique([]string{"a1", "a2", "a3", "a4"})
	clique([]string{"b1", "b2", "b3", "b4"})
	g.AddEdgeWeight("a1", "b1", 1)
	p := ExtractSubCommunities(g, 2)
	if q := Modularity(g, p.AssignMap()); q < 0.3 {
		t.Errorf("extracted partition Q = %.3f, want >= 0.3", q)
	}
}
