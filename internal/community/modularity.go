package community

// Modularity computes the Newman–Girvan modularity Q of a partition over a
// weighted graph: Q = Σ_c (in_c/m − (tot_c/2m)²), where in_c is the total
// weight inside community c, tot_c the total degree of its members and m
// the total edge weight. It is an extension metric for comparing
// sub-community extraction against other graph clusterings (the paper uses
// Silhouette; modularity is the standard graph-native complement). Users
// missing from assign are ignored. Returns 0 for an edgeless graph.
func Modularity(g *Graph, assign map[string]int) float64 {
	var m float64 // total edge weight
	for _, e := range g.Edges() {
		m += e.W
	}
	if m == 0 {
		return 0
	}
	in := map[int]float64{}  // intra-community weight per community
	tot := map[int]float64{} // total member degree per community
	for _, e := range g.Edges() {
		cu, uok := assign[e.U]
		cv, vok := assign[e.V]
		if uok && vok && cu == cv {
			in[cu] += e.W
		}
		if uok {
			tot[cu] += e.W
		}
		if vok {
			tot[cv] += e.W
		}
	}
	var q float64
	for _, inW := range in {
		q += inW / m
	}
	for _, totW := range tot {
		frac := totW / (2 * m)
		q -= frac * frac
	}
	return q
}
