package community

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// withCompactTrigger overrides the CSR compaction policy for the duration of
// a test and restores the default afterwards.
func withCompactTrigger(t testing.TB, f func(overlayDirected, baseDirected int) bool) {
	t.Helper()
	old := compactTrigger
	compactTrigger = f
	t.Cleanup(func() { compactTrigger = old })
}

var (
	alwaysCompact = func(int, int) bool { return true }
	neverCompact  = func(int, int) bool { return false }
)

// shadowGraph is a straightforward string-pair-keyed weight map — the data
// structure the CSR graph replaced — used as the behavioral oracle.
type shadowGraph struct {
	w     map[[2]string]float64
	users map[string]bool
}

func newShadow() *shadowGraph {
	return &shadowGraph{w: map[[2]string]float64{}, users: map[string]bool{}}
}

func (s *shadowGraph) add(u, v string, delta float64) {
	if u == "" || v == "" {
		return
	}
	s.users[u] = true
	s.users[v] = true
	if u == v || delta == 0 {
		return
	}
	if u > v {
		u, v = v, u
	}
	s.w[[2]string{u, v}] += delta
}

func (s *shadowGraph) edges() []Edge {
	out := make([]Edge, 0, len(s.w))
	for k, w := range s.w {
		out = append(out, Edge{U: k[0], V: k[1], W: w})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].V < out[b].V
	})
	return out
}

func requireSameEdges(t *testing.T, want, got []Edge, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d edges, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: edge %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestGraphMatchesShadowMap drives random AddEdgeWeight sequences through
// the CSR graph under three compaction policies — never, always, default —
// and checks every variant against the string-keyed oracle: same edge list,
// same pair weights, same counters.
func TestGraphMatchesShadowMap(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			names := make([]string, 20)
			for i := range names {
				names[i] = fmt.Sprintf("u%02d", i)
			}
			type op struct {
				u, v string
				w    float64
			}
			ops := make([]op, 400)
			for i := range ops {
				o := op{u: names[rng.Intn(len(names))], v: names[rng.Intn(len(names))], w: float64(1 + rng.Intn(5))}
				switch rng.Intn(10) {
				case 0:
					o.v = o.u // self loop: users registered, no edge
				case 1:
					o.u = "" // ignored entirely
				}
				ops[i] = o
			}

			shadow := newShadow()
			for _, o := range ops {
				shadow.add(o.u, o.v, o.w)
			}
			want := shadow.edges()

			policies := map[string]func(int, int) bool{
				"never":   neverCompact,
				"always":  alwaysCompact,
				"default": compactTrigger,
			}
			for label, policy := range policies {
				old := compactTrigger
				compactTrigger = policy
				g := NewGraph()
				for _, o := range ops {
					g.AddEdgeWeight(o.u, o.v, o.w)
				}
				compactTrigger = old

				requireSameEdges(t, want, g.Edges(), label)
				if g.NumEdges() != len(want) {
					t.Errorf("%s: NumEdges = %d, want %d", label, g.NumEdges(), len(want))
				}
				if g.NumUsers() != len(shadow.users) {
					t.Errorf("%s: NumUsers = %d, want %d", label, g.NumUsers(), len(shadow.users))
				}
				for k, w := range shadow.w {
					if got := g.Weight(k[0], k[1]); got != w {
						t.Errorf("%s: Weight(%s,%s) = %g, want %g", label, k[0], k[1], got, w)
					}
					if got := g.Weight(k[1], k[0]); got != w {
						t.Errorf("%s: Weight(%s,%s) = %g, want %g (reversed)", label, k[1], k[0], got, w)
					}
				}
				if label == "always" && g.OverlayLen() != 0 {
					t.Errorf("always-compact graph kept %d overlay entries", g.OverlayLen())
				}
			}
		})
	}
}

// hookCall records one maintenance hook invocation for sequence comparison.
type hookCall struct {
	kind string
	user string
	a, b int
}

func recordingHooks(calls *[]hookCall) Hooks {
	return Hooks{
		AssignUser: func(u string, cno int) {
			*calls = append(*calls, hookCall{kind: "assign", user: u, a: cno})
		},
		ReplaceCommunity: func(old, new int) {
			*calls = append(*calls, hookCall{kind: "replace", a: old, b: new})
		},
		TouchDimensions: func(ids ...int) {
			for _, d := range ids {
				*calls = append(*calls, hookCall{kind: "touch", a: d})
			}
		},
	}
}

// maintScenario replays a randomized multi-batch maintenance run — new
// users, repeat edges, union-weight bridges — and returns the final
// partition, per-batch stats and the full hook call sequence.
func maintScenario(seed int64) (map[string]int, []Stats, []hookCall) {
	rng := rand.New(rand.NewSource(seed))
	audiences := map[string][]string{}
	for v := 0; v < 12; v++ {
		n := 2 + rng.Intn(4)
		users := make([]string, n)
		for i := range users {
			users[i] = fmt.Sprintf("c%d-u%d", v%4, rng.Intn(8)) // 4 clusters of 8
		}
		audiences[fmt.Sprintf("vid%02d", v)] = users
	}
	g := BuildUIG(audiences)
	p := ExtractSubCommunities(g, 4)
	var calls []hookCall
	m := NewMaintainer(g, p, recordingHooks(&calls))

	var stats []Stats
	for batch := 0; batch < 6; batch++ {
		var edges []Edge
		for i := 0; i < 10; i++ {
			u := fmt.Sprintf("c%d-u%d", rng.Intn(4), rng.Intn(8))
			v := fmt.Sprintf("c%d-u%d", rng.Intn(4), rng.Intn(10)) // Intn(10): sometimes new users
			edges = append(edges, Edge{U: u, V: v, W: float64(1 + rng.Intn(3))})
		}
		if batch%2 == 1 {
			// A heavy cross-cluster bridge to force unions (and the splits
			// that restore K).
			edges = append(edges, Edge{
				U: fmt.Sprintf("c%d-u0", rng.Intn(4)),
				V: fmt.Sprintf("c%d-u1", rng.Intn(4)),
				W: p.LightestIntra + 10,
			})
		}
		stats = append(stats, m.ApplyConnections(edges))
	}
	return m.Partition().AssignMap(), stats, calls
}

// TestMaintenanceInvariantUnderCompaction runs the same maintenance scenario
// with compaction forced after every insert and with compaction disabled:
// partitions, per-batch stats and the exact hook call sequences must match.
// Compaction is a pure representation change; any divergence here means the
// overlay and the CSR base disagree about the graph.
func TestMaintenanceInvariantUnderCompaction(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		withCompactTrigger(t, neverCompact)
		assignNever, statsNever, callsNever := maintScenario(seed)
		withCompactTrigger(t, alwaysCompact)
		assignAlways, statsAlways, callsAlways := maintScenario(seed)

		if len(assignNever) != len(assignAlways) {
			t.Fatalf("seed %d: assigned %d users vs %d", seed, len(assignNever), len(assignAlways))
		}
		for u, c := range assignNever {
			if assignAlways[u] != c {
				t.Fatalf("seed %d: user %s in community %d vs %d", seed, u, c, assignAlways[u])
			}
		}
		if fmt.Sprint(statsNever) != fmt.Sprint(statsAlways) {
			t.Fatalf("seed %d: stats diverge:\n%v\n%v", seed, statsNever, statsAlways)
		}
		if len(callsNever) != len(callsAlways) {
			t.Fatalf("seed %d: %d hook calls vs %d", seed, len(callsNever), len(callsAlways))
		}
		for i := range callsNever {
			if callsNever[i] != callsAlways[i] {
				t.Fatalf("seed %d: hook call %d = %+v vs %+v", seed, i, callsNever[i], callsAlways[i])
			}
		}
		// Sanity: the scenario must actually exercise unions and splits.
		unions, splits := 0, 0
		for _, st := range statsNever {
			unions += st.Unions
			splits += st.Splits
		}
		if unions == 0 || splits == 0 {
			t.Fatalf("seed %d: scenario exercised %d unions, %d splits — wants both > 0", seed, unions, splits)
		}
	}
}

// steadyStateFixture builds a maintainer plus a batch that touches only
// existing users with weights at or below the union threshold — the
// steady-state pass that must not allocate.
func steadyStateFixture() (*Maintainer, []Edge) {
	audiences := map[string][]string{}
	for v := 0; v < 8; v++ {
		audiences[fmt.Sprintf("vid%d", v)] = []string{
			fmt.Sprintf("c%d-a", v%2), fmt.Sprintf("c%d-b", v%2), fmt.Sprintf("c%d-c", v%2),
		}
	}
	g := BuildUIG(audiences)
	p := ExtractSubCommunities(g, 2)
	m := NewMaintainer(g, p, Hooks{})
	edges := []Edge{
		{U: "c0-a", V: "c0-b", W: 1},
		{U: "c1-b", V: "c1-c", W: 1},
		{U: "c0-c", V: "c0-a", W: 1},
	}
	return m, edges
}

// TestApplyConnectionsSteadyStateAllocs pins the zero-allocation contract of
// the CSR rewrite: a pass over existing users whose weights stay at or below
// the union threshold patches base weights in place and must not allocate.
func TestApplyConnectionsSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	m, edges := steadyStateFixture()
	m.ApplyConnections(edges) // warm the pooled scratch
	allocs := testing.AllocsPerRun(100, func() {
		m.ApplyConnections(edges)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ApplyConnections allocates %.1f per run, want 0", allocs)
	}
}

// BenchmarkSteadyStateApply measures the in-place delta pass.
func BenchmarkSteadyStateApply(b *testing.B) {
	m, edges := steadyStateFixture()
	m.ApplyConnections(edges)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ApplyConnections(edges)
	}
}

// BenchmarkUnionSplitCycle pins the allocation profile of the pooled split
// path: every iteration a heavy bridge unions the two communities and the
// split pass re-extracts them, exercising splitLightest's scratch buffers.
// Internal edges are far heavier than the accumulating bridge, so the bridge
// stays the lightest intra-community edge and the cycle is periodic.
func BenchmarkUnionSplitCycle(b *testing.B) {
	g := NewGraph()
	assign := map[string]int{}
	for c := 0; c < 2; c++ {
		for i := 0; i < 10; i++ {
			assign[fmt.Sprintf("c%d-u%d", c, i)] = c
			for j := i + 1; j < 10; j++ {
				g.AddEdgeWeight(fmt.Sprintf("c%d-u%d", c, i), fmt.Sprintf("c%d-u%d", c, j), 1e12)
			}
		}
	}
	// A partition with an explicit union threshold of 5: each iteration's
	// weight-6 bridge exceeds it (union), yet the accumulated bridge stays
	// the lightest intra edge by far (split cuts it, restoring the clusters).
	p := NewPartition(g.UserTable(), 2, 2, 5, assign)
	m := NewMaintainer(g, p, Hooks{})
	bridge := []Edge{{U: "c0-u0", V: "c1-u0", W: 6}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := m.ApplyConnections(bridge)
		if st.Unions != 1 || st.Splits != 1 {
			b.Fatalf("iteration %d: unions=%d splits=%d, want 1/1", i, st.Unions, st.Splits)
		}
	}
}
