package community

import (
	"math"
	"sort"
)

// Hooks let the maintenance algorithm patch the structures that depend on
// the partition — the chained hash index and the video descriptor vectors —
// exactly as lines 9–10 and 19–20 of Figure 5 require. Nil hooks are
// skipped.
type Hooks struct {
	// AssignUser is called when a user enters a sub-community for the first
	// time or moves to another one (hash-table Insert / cno rewrite).
	AssignUser func(user string, cno int)
	// ReplaceCommunity is called on a union: every member of community old
	// is now in community new (hash-table ReplaceCno).
	ReplaceCommunity func(old, new int)
	// TouchDimensions is called with every sub-community id whose membership
	// changed; videos whose descriptors use these dimensions must be
	// re-vectorized.
	TouchDimensions func(ids ...int)
}

// Stats summarizes one maintenance pass; it carries the quantities of the
// cost model of Equation 8.
type Stats struct {
	NewConnections   int   // |E|
	Unions           int   // |{g_ui}|
	Splits           int   // |{g_si}|
	UnionSizes       []int // |g_ui| for each union (size of the absorbed community)
	SplitSizes       []int // |g_si| for each split (size of the community before splitting)
	NewUsersAssigned int
	UsersMoved       int
}

// Maintainer applies social updates to a partition in place (Figure 5). It
// owns the UIG and the partition it was built with; the caller streams new
// connections through ApplyConnections.
type Maintainer struct {
	g     *Graph
	p     *Partition
	hooks Hooks
	free  []int // sub-community ids released by unions, reused by splits

	// edgeCache holds the sorted edge list for the duration of one
	// ApplyConnections pass: the graph only changes in step 1, but the
	// split loop consults the global edge list once per split.
	edgeCache []Edge
}

// NewMaintainer wraps a graph and its partition for incremental updates.
func NewMaintainer(g *Graph, p *Partition, hooks Hooks) *Maintainer {
	return &Maintainer{g: g, p: p, hooks: hooks}
}

// Partition returns the live partition (mutated by ApplyConnections).
func (m *Maintainer) Partition() *Partition { return m.p }

// SetPartition repoints the maintainer at a replacement partition object
// while keeping its free-id pool. Copy-on-write callers clone the partition
// a published read view shares before the next maintenance pass and rebind
// the maintainer to the private copy.
func (m *Maintainer) SetPartition(p *Partition) { m.p = p }

// Graph returns the live UIG (mutated by ApplyConnections).
func (m *Maintainer) Graph() *Graph { return m.g }

// ApplyConnections performs one maintenance pass over a batch of new social
// connections (Figure 5):
//
//  1. the connections are merged into the UIG; users never seen before are
//     attached to the sub-community of their heaviest known neighbour;
//  2. a connection heavier than w joining two sub-communities unions them
//     (absorbing the smaller into the larger, freeing the absorbed id);
//  3. while fewer than k sub-communities remain, the community holding the
//     lightest internal edge is split in two (reusing a freed id);
//  4. the hash index and descriptor hooks are invoked for every change, and
//     w is re-derived for the next period.
func (m *Maintainer) ApplyConnections(edges []Edge) Stats {
	var st Stats
	st.NewConnections = len(edges)
	w := m.p.LightestIntra

	// Step 1: merge connections into the UIG, remembering new users.
	newUsers := map[string]bool{}
	for _, e := range edges {
		if e.U == e.V || e.W <= 0 {
			continue
		}
		if !m.g.HasUser(e.U) {
			newUsers[e.U] = true
		}
		if !m.g.HasUser(e.V) {
			newUsers[e.V] = true
		}
		m.g.AddEdgeWeight(e.U, e.V, e.W)
	}
	st.NewUsersAssigned = m.assignNewUsers(newUsers)
	m.edgeCache = m.g.Edges()
	defer func() { m.edgeCache = nil }()

	// Step 2: union pass. A fresh connection heavier than w that bridges
	// two sub-communities means they have grown together.
	for _, e := range edges {
		if e.W <= w {
			continue
		}
		ci, iok := m.p.Assign[e.U]
		cj, jok := m.p.Assign[e.V]
		if !iok || !jok || ci == cj {
			continue
		}
		m.union(ci, cj, &st)
	}

	// Step 3: split pass — restore k sub-communities.
	for m.liveCount() < m.p.K {
		if !m.splitLightest(&st) {
			break // nothing splittable left
		}
	}

	// Step 4: w stays at its extraction-time value. Newly attached users
	// hang off their communities by weight-1 edges; folding those into w
	// would drag the union threshold to 1 and make the next batch merge
	// every fandom a single shared video connects (observed as a partition
	// collapse after two update rounds). The separating threshold the
	// extraction established is the meaningful "lightest edge of the
	// original sub-communities" of §4.2.4. LightestIntraEdge remains
	// available to callers that rebuild from scratch.
	return st
}

// LightestIntraEdge recomputes the lightest edge weight inside any current
// sub-community. It is informational: ApplyConnections deliberately keeps
// the extraction-time w as its union threshold.
func (m *Maintainer) LightestIntraEdge() float64 { return m.lightestIntraEdge() }

// assignNewUsers attaches unseen users to the sub-community of their
// heaviest already-assigned neighbour, iterating so chains of new users
// resolve. Users with no assigned neighbour stay outside the dictionary
// until the next full rebuild.
func (m *Maintainer) assignNewUsers(newUsers map[string]bool) int {
	// Deterministic order: assignment of one new user can decide which
	// community a chained neighbour joins, and replaying a journal must
	// reproduce the live run exactly.
	pending := make([]string, 0, len(newUsers))
	for u := range newUsers {
		pending = append(pending, u)
	}
	sort.Strings(pending)
	assigned := 0
	for {
		progress := false
		for _, u := range pending {
			if _, ok := m.p.Assign[u]; ok {
				continue
			}
			bestW := 0.0
			bestC := -1
			bestName := ""
			m.g.Neighbors(u, func(v string, w float64) {
				c, ok := m.p.Assign[v]
				if !ok {
					return
				}
				// Deterministic tie-break by neighbour name: Neighbors
				// iterates a map.
				if w > bestW || (w == bestW && (bestName == "" || v < bestName)) {
					bestW = w
					bestC = c
					bestName = v
				}
			})
			if bestC >= 0 {
				m.p.Assign[u] = bestC
				if m.hooks.AssignUser != nil {
					m.hooks.AssignUser(u, bestC)
				}
				if m.hooks.TouchDimensions != nil {
					m.hooks.TouchDimensions(bestC)
				}
				assigned++
				progress = true
			}
		}
		if !progress {
			return assigned
		}
	}
}

// union absorbs the smaller of the two sub-communities into the larger one.
func (m *Maintainer) union(a, b int, st *Stats) {
	sizes := m.sizesByID()
	if sizes[a] < sizes[b] {
		a, b = b, a // absorb b into a
	}
	moved := 0
	for u, c := range m.p.Assign {
		if c == b {
			m.p.Assign[u] = a
			moved++
		}
	}
	m.free = append(m.free, b)
	st.Unions++
	st.UnionSizes = append(st.UnionSizes, moved)
	st.UsersMoved += moved
	if m.hooks.ReplaceCommunity != nil {
		m.hooks.ReplaceCommunity(b, a)
	}
	if m.hooks.TouchDimensions != nil {
		m.hooks.TouchDimensions(a, b)
	}
}

// splitLightest splits the sub-community containing the globally lightest
// internal edge. It reports false when no community can be split (all
// singletons or no internal edges).
func (m *Maintainer) splitLightest(st *Stats) bool {
	target, ok := m.communityWithLightestEdge()
	if !ok {
		return false
	}
	members := m.members(target)
	induced := NewGraph()
	for _, u := range members {
		induced.AddUser(u)
	}
	memberSet := make(map[string]bool, len(members))
	for _, u := range members {
		memberSet[u] = true
	}
	for _, u := range members {
		m.g.Neighbors(u, func(v string, w float64) {
			if memberSet[v] && u < v {
				induced.AddEdgeWeight(u, v, w)
			}
		})
	}
	sub := ExtractSubCommunities(induced, 2)
	if sub.Dim < 2 {
		return false
	}
	// Members of induced community id >= 1 move to a fresh id; id 0 keeps
	// the original. When the split yields more than two pieces (already
	// disconnected), everything beyond piece 0 moves together — the next
	// loop iteration can split again if needed.
	newID := m.takeID()
	moved := 0
	for _, u := range members {
		if sub.Assign[u] >= 1 {
			m.p.Assign[u] = newID
			if m.hooks.AssignUser != nil {
				m.hooks.AssignUser(u, newID)
			}
			moved++
		}
	}
	if moved == 0 || moved == len(members) {
		// Degenerate split; roll back the id and give up on this community.
		m.free = append(m.free, newID)
		return false
	}
	st.Splits++
	st.SplitSizes = append(st.SplitSizes, len(members))
	st.UsersMoved += moved
	if m.hooks.TouchDimensions != nil {
		m.hooks.TouchDimensions(target, newID)
	}
	return true
}

// communityWithLightestEdge finds the sub-community whose internal edge set
// contains the globally lightest edge (Figure 5, line 16). Communities of
// size < 2 cannot be split and are skipped.
func (m *Maintainer) communityWithLightestEdge() (int, bool) {
	best := math.Inf(1)
	bestID := -1
	sizes := m.sizesByID()
	for _, e := range m.edges() {
		cu, uok := m.p.Assign[e.U]
		cv, vok := m.p.Assign[e.V]
		if !uok || !vok || cu != cv {
			continue
		}
		if sizes[cu] < 2 {
			continue
		}
		if e.W < best {
			best = e.W
			bestID = cu
		}
	}
	if bestID < 0 {
		// Fall back to any internally disconnected community of size >= 2
		// (splittable without removing an edge).
		ids := make([]int, 0, len(sizes))
		for id, n := range sizes {
			if n >= 2 {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		for _, id := range ids {
			return id, true
		}
		return 0, false
	}
	return bestID, true
}

// lightestIntraEdge recomputes w over the maintained partition.
func (m *Maintainer) lightestIntraEdge() float64 {
	lightest := math.Inf(1)
	for _, e := range m.edges() {
		cu, uok := m.p.Assign[e.U]
		cv, vok := m.p.Assign[e.V]
		if uok && vok && cu == cv && e.W < lightest {
			lightest = e.W
		}
	}
	return lightest
}

// edges returns the pass-local edge cache, falling back to a fresh listing
// outside ApplyConnections.
func (m *Maintainer) edges() []Edge {
	if m.edgeCache != nil {
		return m.edgeCache
	}
	return m.g.Edges()
}

// liveCount is the number of sub-community ids currently in use.
func (m *Maintainer) liveCount() int {
	seen := map[int]bool{}
	for _, c := range m.p.Assign {
		seen[c] = true
	}
	return len(seen)
}

func (m *Maintainer) sizesByID() map[int]int {
	sizes := map[int]int{}
	for _, c := range m.p.Assign {
		sizes[c]++
	}
	return sizes
}

func (m *Maintainer) members(id int) []string {
	var out []string
	for u, c := range m.p.Assign {
		if c == id {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// takeID reuses an id freed by a union, or mints a fresh dimension.
func (m *Maintainer) takeID() int {
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		return id
	}
	id := m.p.Dim
	m.p.Dim++
	return id
}

// CostConstants are the constants c_h, t_1, t_2, t_3 of Equation 8: the cost
// of one hash mapping, one index update, one descriptor-dimension update and
// one element check during partitioning.
type CostConstants struct {
	Ch, T1, T2, T3 float64
}

// EstimateCost evaluates Equation 8 for a maintenance pass:
//
//	|E|·c_h + Σ_unions (|g_ui|·t1 + N_ui·t2) + Σ_splits (|g_si|·(t1+t3) + N_si·t2)
//
// unionVideos[i] and splitVideos[i] are the per-community video counts N_ui
// and N_si; they must be parallel to st.UnionSizes and st.SplitSizes.
func EstimateCost(c CostConstants, st Stats, unionVideos, splitVideos []int) float64 {
	total := float64(st.NewConnections) * c.Ch
	for i, sz := range st.UnionSizes {
		nv := 0
		if i < len(unionVideos) {
			nv = unionVideos[i]
		}
		total += float64(sz)*c.T1 + float64(nv)*c.T2
	}
	for i, sz := range st.SplitSizes {
		nv := 0
		if i < len(splitVideos) {
			nv = splitVideos[i]
		}
		total += float64(sz)*(c.T1+c.T3) + float64(nv)*c.T2
	}
	return total
}
