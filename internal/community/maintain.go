package community

import (
	"math"
	"sort"
)

// Hooks let the maintenance algorithm patch the structures that depend on
// the partition — the chained hash index and the video descriptor vectors —
// exactly as lines 9–10 and 19–20 of Figure 5 require. Nil hooks are
// skipped.
type Hooks struct {
	// AssignUser is called when a user enters a sub-community for the first
	// time or moves to another one (hash-table Insert / cno rewrite).
	AssignUser func(user string, cno int)
	// ReplaceCommunity is called on a union: every member of community old
	// is now in community new (hash-table ReplaceCno).
	ReplaceCommunity func(old, new int)
	// TouchDimensions is called with every sub-community id whose membership
	// changed; videos whose descriptors use these dimensions must be
	// re-vectorized.
	TouchDimensions func(ids ...int)
}

// Stats summarizes one maintenance pass; it carries the quantities of the
// cost model of Equation 8.
type Stats struct {
	NewConnections   int   // |E|
	Unions           int   // |{g_ui}|
	Splits           int   // |{g_si}|
	UnionSizes       []int // |g_ui| for each union (size of the absorbed community)
	SplitSizes       []int // |g_si| for each split (size of the community before splitting)
	NewUsersAssigned int
	UsersMoved       int
}

// Maintainer applies social updates to a partition in place (Figure 5). It
// owns the UIG and the partition it was built with; the caller streams new
// connections through ApplyConnections.
//
// All pass-local state (community sizes, the live-id set, new-user queues,
// the induced subgraph a split extracts over) lives in pooled scratch
// buffers: a steady-state pass — existing users, weights at or below the
// union threshold — allocates nothing (pinned by an AllocsPerRun test).
type Maintainer struct {
	g     *Graph
	p     *Partition
	hooks Hooks
	free  []int // sub-community ids released by unions, reused by splits

	// Pooled pass scratch.
	sizes    []int32  // community id → member count
	newUsers []uint32 // dense ids minted by the current pass
	split    splitScratch
}

// splitScratch is the pooled induced-subgraph state of splitLightest: the
// member list of the community being split, a global→local id map, the
// local edge list and the union-find that extracts two pieces from it.
type splitScratch struct {
	members []uint32 // member ids, sorted by user name
	local   []int32  // global user id → local index; -1 outside the community
	edges   []splitEdge
	parent  []int32
	rank    []int8
	subOf   []int32 // local index → piece number (dense, by first appearance)
}

type splitEdge struct {
	u, v int32
	w    float64
}

// NewMaintainer wraps a graph and its partition for incremental updates.
func NewMaintainer(g *Graph, p *Partition, hooks Hooks) *Maintainer {
	return &Maintainer{g: g, p: p, hooks: hooks}
}

// Partition returns the live partition (mutated by ApplyConnections).
func (m *Maintainer) Partition() *Partition { return m.p }

// SetPartition repoints the maintainer at a replacement partition object
// while keeping its free-id pool. Copy-on-write callers clone the partition
// a published read view shares before the next maintenance pass and rebind
// the maintainer to the private copy.
func (m *Maintainer) SetPartition(p *Partition) { m.p = p }

// Graph returns the live UIG (mutated by ApplyConnections).
func (m *Maintainer) Graph() *Graph { return m.g }

// ApplyConnections performs one maintenance pass over a batch of new social
// connections (Figure 5):
//
//  1. the connections are merged into the UIG; users never seen before are
//     attached to the sub-community of their heaviest known neighbour;
//  2. a connection heavier than w joining two sub-communities unions them
//     (absorbing the smaller into the larger, freeing the absorbed id);
//  3. while fewer than k sub-communities remain, the community holding the
//     lightest internal edge is split in two (reusing a freed id);
//  4. the hash index and descriptor hooks are invoked for every change, and
//     w is re-derived for the next period.
func (m *Maintainer) ApplyConnections(edges []Edge) Stats {
	var st Stats
	st.NewConnections = len(edges)
	w := m.p.LightestIntra

	// Step 1: merge connections into the UIG, remembering new users. Edge
	// names are interned once here; everything after runs on dense ids.
	m.newUsers = m.newUsers[:0]
	for _, e := range edges {
		if e.U == e.V || e.W <= 0 || e.U == "" || e.V == "" {
			continue
		}
		iu, freshU := m.g.internUser(e.U)
		if freshU {
			m.newUsers = append(m.newUsers, iu)
		}
		iv, freshV := m.g.internUser(e.V)
		if freshV {
			m.newUsers = append(m.newUsers, iv)
		}
		m.g.addEdgeDense(iu, iv, e.W)
	}
	// Minting may have copy-on-write replaced the intern table; the
	// partition must follow the graph's current table and cover the new ids.
	m.p.syncTable(m.g.users)
	st.NewUsersAssigned = m.assignNewUsers()

	// Step 2: union pass. A fresh connection heavier than w that bridges
	// two sub-communities means they have grown together. Membership is
	// resolved now — not in step 1 — so chained assignments are visible.
	for _, e := range edges {
		if e.W <= w {
			continue
		}
		iu, uok := m.g.users.Lookup(e.U)
		iv, vok := m.g.users.Lookup(e.V)
		if !uok || !vok {
			continue
		}
		ci, cj := m.p.lookupDense(iu), m.p.lookupDense(iv)
		if ci < 0 || cj < 0 || ci == cj {
			continue
		}
		m.union(int(ci), int(cj), &st)
	}

	// Step 3: split pass — restore k sub-communities.
	for m.liveCount() < m.p.K {
		if !m.splitLightest(&st) {
			break // nothing splittable left
		}
	}

	// Step 4: w stays at its extraction-time value. Newly attached users
	// hang off their communities by weight-1 edges; folding those into w
	// would drag the union threshold to 1 and make the next batch merge
	// every fandom a single shared video connects (observed as a partition
	// collapse after two update rounds). The separating threshold the
	// extraction established is the meaningful "lightest edge of the
	// original sub-communities" of §4.2.4. LightestIntraEdge remains
	// available to callers that rebuild from scratch.
	return st
}

// LightestIntraEdge recomputes the lightest edge weight inside any current
// sub-community. It is informational: ApplyConnections deliberately keeps
// the extraction-time w as its union threshold.
func (m *Maintainer) LightestIntraEdge() float64 {
	lightest := math.Inf(1)
	m.g.eachEdgeDense(func(iu, iv uint32, w float64) {
		cu, cv := m.p.lookupDense(iu), m.p.lookupDense(iv)
		if cu >= 0 && cu == cv && w < lightest {
			lightest = w
		}
	})
	return lightest
}

// assignNewUsers attaches the pass's minted users to the sub-community of
// their heaviest already-assigned neighbour, iterating so chains of new
// users resolve. Users with no assigned neighbour stay outside the
// dictionary until the next full rebuild.
func (m *Maintainer) assignNewUsers() int {
	if len(m.newUsers) == 0 {
		return 0
	}
	// Deterministic order: assignment of one new user can decide which
	// community a chained neighbour joins, and replaying a journal must
	// reproduce the live run exactly. Sorting by name (not id) preserves the
	// order the string-keyed implementation established.
	pending := m.newUsers
	names := m.g.users
	sort.Slice(pending, func(a, b int) bool { return names.Name(pending[a]) < names.Name(pending[b]) })
	assigned := 0
	for {
		progress := false
		for _, u := range pending {
			if m.p.assign[u] >= 0 {
				continue
			}
			bestW := 0.0
			bestC := int32(-1)
			bestName := ""
			m.g.neighborsDense(u, func(v uint32, w float64) {
				c := m.p.lookupDense(v)
				if c < 0 {
					return
				}
				// Deterministic tie-break by neighbour name, independent of
				// adjacency iteration order.
				if w > bestW || (w == bestW && (bestName == "" || names.Name(v) < bestName)) {
					bestW = w
					bestC = c
					bestName = names.Name(v)
				}
			})
			if bestC >= 0 {
				m.p.assign[u] = bestC
				if m.hooks.AssignUser != nil {
					m.hooks.AssignUser(names.Name(u), int(bestC))
				}
				if m.hooks.TouchDimensions != nil {
					m.hooks.TouchDimensions(int(bestC))
				}
				assigned++
				progress = true
			}
		}
		if !progress {
			return assigned
		}
	}
}

// computeSizes refreshes the pooled per-community member counts.
func (m *Maintainer) computeSizes() []int32 {
	sizes := m.sizes
	if cap(sizes) < m.p.Dim {
		sizes = make([]int32, m.p.Dim)
	}
	sizes = sizes[:m.p.Dim]
	clear(sizes)
	for _, c := range m.p.assign {
		if c >= 0 {
			sizes[c]++
		}
	}
	m.sizes = sizes
	return sizes
}

// union absorbs the smaller of the two sub-communities into the larger one.
func (m *Maintainer) union(a, b int, st *Stats) {
	sizes := m.computeSizes()
	if sizes[a] < sizes[b] {
		a, b = b, a // absorb b into a
	}
	moved := 0
	for i, c := range m.p.assign {
		if int(c) == b {
			m.p.assign[i] = int32(a)
			moved++
		}
	}
	m.free = append(m.free, b)
	st.Unions++
	st.UnionSizes = append(st.UnionSizes, moved)
	st.UsersMoved += moved
	if m.hooks.ReplaceCommunity != nil {
		m.hooks.ReplaceCommunity(b, a)
	}
	if m.hooks.TouchDimensions != nil {
		m.hooks.TouchDimensions(a, b)
	}
}

// splitLightest splits the sub-community containing the globally lightest
// internal edge. It reports false when no community can be split (all
// singletons or no internal edges).
func (m *Maintainer) splitLightest(st *Stats) bool {
	target, ok := m.communityWithLightestEdge()
	if !ok {
		return false
	}
	s := &m.split
	names := m.g.users

	// Members of the target community, sorted by user name: the induced
	// subgraph's local ids follow name order, so every tie-break below that
	// compares local ids reproduces the string-keyed implementation's name
	// comparisons exactly.
	s.members = s.members[:0]
	for i, c := range m.p.assign {
		if int(c) == target {
			s.members = append(s.members, uint32(i))
		}
	}
	sort.Slice(s.members, func(a, b int) bool {
		return names.Name(s.members[a]) < names.Name(s.members[b])
	})

	// Global → local index map, reset member-by-member on exit.
	n := names.Len()
	if cap(s.local) < n {
		s.local = make([]int32, n)
		for i := range s.local {
			s.local[i] = -1
		}
	}
	s.local = s.local[:n]
	for li, gi := range s.members {
		s.local[gi] = int32(li)
	}
	defer func() {
		for _, gi := range s.members {
			s.local[gi] = -1
		}
	}()

	// Induced edge list: each intra-community edge once, endpoints as local
	// ids with u < v (name order).
	s.edges = s.edges[:0]
	for li, gi := range s.members {
		su := int32(li)
		m.g.neighborsDense(gi, func(gv uint32, w float64) {
			if sv := s.local[gv]; sv > su {
				s.edges = append(s.edges, splitEdge{u: su, v: sv, w: w})
			}
		})
	}

	sub, pieces := m.extractTwo()
	if pieces < 2 {
		return false
	}
	// Members of induced piece >= 1 move to a fresh id; piece 0 keeps the
	// original. When the split yields more than two pieces (already
	// disconnected), everything beyond piece 0 moves together — the next
	// loop iteration can split again if needed.
	newID := m.takeID()
	moved := 0
	for li, gi := range s.members {
		if sub[li] >= 1 {
			m.p.assign[gi] = int32(newID)
			if m.hooks.AssignUser != nil {
				m.hooks.AssignUser(names.Name(gi), newID)
			}
			moved++
		}
	}
	if moved == 0 || moved == len(s.members) {
		// Degenerate split; roll back the id and give up on this community.
		m.free = append(m.free, newID)
		return false
	}
	st.Splits++
	st.SplitSizes = append(st.SplitSizes, len(s.members))
	st.UsersMoved += moved
	if m.hooks.TouchDimensions != nil {
		m.hooks.TouchDimensions(target, newID)
	}
	return true
}

// extractTwo runs ExtractSubCommunities(·, 2) over the scratch subgraph:
// descending Kruskal over the induced edges, stopping at two components,
// then densifying roots by first appearance in local (= name) order. It
// returns the local piece assignment and the piece count.
func (m *Maintainer) extractTwo() ([]int32, int) {
	s := &m.split
	// Descending (W, U, V) order. Local ids are name-ordered, so comparing
	// them is comparing names.
	sort.Slice(s.edges, func(a, b int) bool {
		ea, eb := s.edges[a], s.edges[b]
		if ea.w != eb.w {
			return ea.w > eb.w
		}
		if ea.u != eb.u {
			return ea.u > eb.u
		}
		return ea.v > eb.v
	})

	n := len(s.members)
	if cap(s.parent) < n {
		s.parent = make([]int32, n)
		s.rank = make([]int8, n)
	}
	s.parent, s.rank = s.parent[:n], s.rank[:n]
	for i := range s.parent {
		s.parent[i] = int32(i)
		s.rank[i] = 0
	}
	find := func(x int32) int32 {
		for s.parent[x] != x {
			s.parent[x] = s.parent[s.parent[x]]
			x = s.parent[x]
		}
		return x
	}

	count := n
	for _, e := range s.edges {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			if count <= 2 {
				break
			}
			if s.rank[ru] < s.rank[rv] {
				ru, rv = rv, ru
			}
			s.parent[rv] = ru
			if s.rank[ru] == s.rank[rv] {
				s.rank[ru]++
			}
			count--
		}
	}

	if cap(s.subOf) < n {
		s.subOf = make([]int32, n)
	}
	s.subOf = s.subOf[:n]
	pieces := int32(0)
	// Number pieces by first appearance in local order; reuse rank as the
	// seen marker is unsafe (it is union-find state), so mark via subOf
	// itself: roots are discovered through a two-pass sweep.
	for i := range s.subOf {
		s.subOf[i] = -1
	}
	for i := 0; i < n; i++ {
		root := find(int32(i))
		if s.subOf[root] < 0 {
			s.subOf[root] = pieces
			pieces++
		}
	}
	// Second pass: project root numbering onto every member. Roots hold
	// their own piece id already; non-roots read their root's.
	for i := 0; i < n; i++ {
		root := find(int32(i))
		if int32(i) != root {
			s.subOf[i] = s.subOf[root]
		}
	}
	return s.subOf, int(pieces)
}

// communityWithLightestEdge finds the sub-community whose internal edge set
// contains the globally lightest edge (Figure 5, line 16). Communities of
// size < 2 cannot be split and are skipped. Ties on weight resolve to the
// edge with the smallest canonical (min name, max name) pair — the edge a
// name-sorted scan would reach first.
func (m *Maintainer) communityWithLightestEdge() (int, bool) {
	sizes := m.computeSizes()
	names := m.g.users
	best := math.Inf(1)
	bestID := -1
	var bestA, bestB string
	m.g.eachEdgeDense(func(iu, iv uint32, w float64) {
		cu, cv := m.p.lookupDense(iu), m.p.lookupDense(iv)
		if cu < 0 || cu != cv || sizes[cu] < 2 {
			return
		}
		if w > best {
			return
		}
		a, b := names.Name(iu), names.Name(iv)
		if a > b {
			a, b = b, a
		}
		if w < best || a < bestA || (a == bestA && b < bestB) {
			best = w
			bestID = int(cu)
			bestA, bestB = a, b
		}
	})
	if bestID < 0 {
		// Fall back to the smallest-id community of size >= 2 (internally
		// disconnected: splittable without removing an edge).
		for id, n := range sizes {
			if n >= 2 {
				return id, true
			}
		}
		return 0, false
	}
	return bestID, true
}

// liveCount is the number of sub-community ids currently in use.
func (m *Maintainer) liveCount() int {
	sizes := m.computeSizes()
	live := 0
	for _, n := range sizes {
		if n > 0 {
			live++
		}
	}
	return live
}

// takeID reuses an id freed by a union, or mints a fresh dimension.
func (m *Maintainer) takeID() int {
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		return id
	}
	id := m.p.Dim
	m.p.Dim++
	return id
}

// CostConstants are the constants c_h, t_1, t_2, t_3 of Equation 8: the cost
// of one hash mapping, one index update, one descriptor-dimension update and
// one element check during partitioning.
type CostConstants struct {
	Ch, T1, T2, T3 float64
}

// EstimateCost evaluates Equation 8 for a maintenance pass:
//
//	|E|·c_h + Σ_unions (|g_ui|·t1 + N_ui·t2) + Σ_splits (|g_si|·(t1+t3) + N_si·t2)
//
// unionVideos[i] and splitVideos[i] are the per-community video counts N_ui
// and N_si; they must be parallel to st.UnionSizes and st.SplitSizes.
func EstimateCost(c CostConstants, st Stats, unionVideos, splitVideos []int) float64 {
	total := float64(st.NewConnections) * c.Ch
	for i, sz := range st.UnionSizes {
		nv := 0
		if i < len(unionVideos) {
			nv = unionVideos[i]
		}
		total += float64(sz)*c.T1 + float64(nv)*c.T2
	}
	for i, sz := range st.SplitSizes {
		nv := 0
		if i < len(splitVideos) {
			nv = splitVideos[i]
		}
		total += float64(sz)*(c.T1+c.T3) + float64(nv)*c.T2
	}
	return total
}
