package baselines

import (
	"math"
	"math/rand"
	"sort"

	"videorec/internal/video"
)

// AFFRFOptions tunes the reimplemented multimodal recommender of [33].
// The text and aural features are synthesized from the latent topic with
// noise (DESIGN.md §1: the substitution keeps the baseline's structure — a
// no-social multimodal recommender whose global features degrade under
// editing); the visual feature is a real colour histogram over the rendered
// frames, so edits genuinely disturb it.
type AFFRFOptions struct {
	TextDim     int
	AuralDim    int
	TextNoise   float64
	AuralNoise  float64
	HistBins    int
	FeedbackTop int     // pseudo-relevant depth of the feedback round
	Beta        float64 // Rocchio feedback weight
	Seed        int64
}

// DefaultAFFRFOptions gives the baseline a fair but imperfect signal,
// matching its Figure 10 role.
func DefaultAFFRFOptions() AFFRFOptions {
	return AFFRFOptions{
		TextDim:     24,
		AuralDim:    16,
		TextNoise:   0.55,
		AuralNoise:  0.8,
		HistBins:    16,
		FeedbackTop: 5,
		Beta:        0.75,
		Seed:        1,
	}
}

type affItem struct {
	id     string
	text   []float64
	visual []float64
	aural  []float64
}

// AFFRF is the attention-fusion + relevance-feedback recommender of Yang et
// al. [33]: per-modality similarities are fused with data-driven attention
// weights, a Rocchio round over the pseudo-relevant top results refines the
// query, and the refined scores produce the final ranking. It uses no
// social information — the structural weakness the paper exploits.
type AFFRF struct {
	opts  AFFRFOptions
	items map[string]*affItem
	order []string
}

// NewAFFRF returns an empty multimodal recommender.
func NewAFFRF(opts AFFRFOptions) *AFFRF {
	if opts.TextDim == 0 {
		opts = DefaultAFFRFOptions()
	}
	return &AFFRF{opts: opts, items: make(map[string]*affItem)}
}

// Len returns the number of ingested videos.
func (a *AFFRF) Len() int { return len(a.items) }

// Ingest extracts the three modality features for a clip. topic drives the
// synthetic text and aural features; the visual feature is computed from the
// actual frames. instanceSeed decorrelates same-topic items.
func (a *AFFRF) Ingest(id string, topic int, v *video.Video, instanceSeed int64) {
	rng := rand.New(rand.NewSource(instanceSeed ^ a.opts.Seed<<1))
	it := &affItem{id: id}

	// Text: topic term mass plus theme term mass, perturbed.
	it.text = make([]float64, a.opts.TextDim)
	it.text[topic%a.opts.TextDim] += 1
	it.text[(topic%5)+a.opts.TextDim-5] += 0.6 // theme terms share tail slots
	for d := range it.text {
		it.text[d] += math.Abs(rng.NormFloat64()) * a.opts.TextNoise
	}
	normalize(it.text)

	// Visual: mean intensity histogram over the rendered frames — a real
	// global feature, genuinely disturbed by brightness/contrast edits.
	it.visual = make([]float64, a.opts.HistBins)
	if len(v.Frames) > 0 {
		for _, f := range v.Frames {
			h := f.Histogram(a.opts.HistBins)
			for b := range h {
				it.visual[b] += h[b]
			}
		}
		for b := range it.visual {
			it.visual[b] /= float64(len(v.Frames))
		}
	}

	// Aural: topic-keyed spectral envelope with heavy noise (audio tracks of
	// user uploads are routinely replaced or re-encoded).
	it.aural = make([]float64, a.opts.AuralDim)
	arng := rand.New(rand.NewSource(int64(topic)*7919 + 13))
	for d := range it.aural {
		it.aural[d] = math.Abs(arng.NormFloat64()) + math.Abs(rng.NormFloat64())*a.opts.AuralNoise
	}
	normalize(it.aural)

	if _, seen := a.items[id]; !seen {
		a.order = append(a.order, id)
	}
	a.items[id] = it
}

// Rec is one AFFRF recommendation.
type Rec struct {
	ID    string
	Score float64
}

// Recommend ranks every other ingested clip against the query clip:
// per-modality scoring, attention fusion, one relevance-feedback round, and
// re-ranking, per [33].
func (a *AFFRF) Recommend(queryID string, topK int) []Rec {
	q, ok := a.items[queryID]
	if !ok || topK <= 0 {
		return nil
	}
	cands := make([]*affItem, 0, len(a.items)-1)
	for _, id := range a.order {
		if id != queryID {
			cands = append(cands, a.items[id])
		}
	}
	fused := a.scoreAll(q.text, q.visual, q.aural, cands)

	// Relevance feedback: Rocchio over the pseudo-relevant top results.
	top := rankTop(cands, fused, a.opts.FeedbackTop)
	qt := rocchio(q.text, centroid(top, func(it *affItem) []float64 { return it.text }), a.opts.Beta)
	qv := rocchio(q.visual, centroid(top, func(it *affItem) []float64 { return it.visual }), a.opts.Beta)
	qa := rocchio(q.aural, centroid(top, func(it *affItem) []float64 { return it.aural }), a.opts.Beta)
	fused = a.scoreAll(qt, qv, qa, cands)

	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		if fused[idx[x]] != fused[idx[y]] {
			return fused[idx[x]] > fused[idx[y]]
		}
		return cands[idx[x]].id < cands[idx[y]].id
	})
	if topK > len(idx) {
		topK = len(idx)
	}
	out := make([]Rec, topK)
	for i := 0; i < topK; i++ {
		out[i] = Rec{ID: cands[idx[i]].id, Score: fused[idx[i]]}
	}
	return out
}

// scoreAll computes attention-fused scores of every candidate against the
// given query modality vectors. Attention weights follow [33]'s intuition:
// a modality that separates candidates well (high peak over mean) earns
// more weight.
func (a *AFFRF) scoreAll(qt, qv, qa []float64, cands []*affItem) []float64 {
	n := len(cands)
	text := make([]float64, n)
	vis := make([]float64, n)
	aur := make([]float64, n)
	for i, it := range cands {
		text[i] = cosine(qt, it.text)
		vis[i] = histIntersect(qv, it.visual)
		aur[i] = cosine(qa, it.aural)
	}
	wt := attention(text)
	wv := attention(vis)
	wa := attention(aur)
	sum := wt + wv + wa
	if sum == 0 {
		wt, wv, wa, sum = 1, 1, 1, 3
	}
	fused := make([]float64, n)
	for i := range fused {
		fused[i] = (wt*text[i] + wv*vis[i] + wa*aur[i]) / sum
	}
	return fused
}

// attention scores a modality's informativeness as peak-over-mean contrast.
func attention(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	max, mean := scores[0], 0.0
	for _, s := range scores {
		if s > max {
			max = s
		}
		mean += s
	}
	mean /= float64(len(scores))
	if max <= 0 {
		return 0
	}
	return (max - mean) / max
}

func rankTop(cands []*affItem, scores []float64, k int) []*affItem {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return scores[idx[x]] > scores[idx[y]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]*affItem, k)
	for i := 0; i < k; i++ {
		out[i] = cands[idx[i]]
	}
	return out
}

func centroid(items []*affItem, get func(*affItem) []float64) []float64 {
	if len(items) == 0 {
		return nil
	}
	c := make([]float64, len(get(items[0])))
	for _, it := range items {
		for d, x := range get(it) {
			c[d] += x
		}
	}
	for d := range c {
		c[d] /= float64(len(items))
	}
	return c
}

func rocchio(q, centroid []float64, beta float64) []float64 {
	if centroid == nil {
		return q
	}
	out := make([]float64, len(q))
	for d := range q {
		out[d] = q[d] + beta*centroid[d]
	}
	return out
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func histIntersect(a, b []float64) float64 {
	var s float64
	for i := range a {
		if a[i] < b[i] {
			s += a[i]
		} else {
			s += b[i]
		}
	}
	return s
}

func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}
