// Package baselines implements the comparison systems of §5: the ERP [5]
// and DTW [7] sequence measures evaluated against κJ in Figure 7, and the
// AFFRF multimodal recommender of Yang et al. [33] (text + visual + aural
// attention fusion with relevance feedback) evaluated in Figure 10. The CR
// and SR baselines are the ContentWeightOnly / SocialOnly switches of
// internal/core.
package baselines

import (
	"videorec/internal/emd"
	"videorec/internal/signature"
)

// sigDist is the element distance both sequence measures use: the exact
// 1-D EMD between two cuboid signatures.
func sigDist(a, b signature.Signature) float64 {
	if len(a.Cuboids) == 0 || len(b.Cuboids) == 0 {
		return gapDist(a) + gapDist(b)
	}
	av, aw := a.Values()
	bv, bw := b.Values()
	d, err := emd.Distance1D(av, aw, bv, bw)
	if err != nil {
		return 0
	}
	return d
}

// gapDist is the ERP gap cost: the distance of a signature to the constant
// reference element g = {(0, 1)} (a still segment).
func gapDist(a signature.Signature) float64 {
	if len(a.Cuboids) == 0 {
		return 0
	}
	av, aw := a.Values()
	d, err := emd.Distance1D(av, aw, []float64{0}, []float64{1})
	if err != nil {
		return 0
	}
	return d
}

// ERP computes the Edit distance with Real Penalty between two signature
// series: a sequence alignment where gaps are charged their distance to the
// constant reference element. It is order-sensitive — temporal re-editing
// breaks it, which is exactly why it loses to κJ in Figure 7.
func ERP(s1, s2 signature.Series) float64 {
	m, n := len(s1), len(s2)
	if m == 0 && n == 0 {
		return 0
	}
	// dp[i][j]: cost aligning s1[:i] with s2[:j].
	dp := make([][]float64, m+1)
	for i := range dp {
		dp[i] = make([]float64, n+1)
	}
	for i := 1; i <= m; i++ {
		dp[i][0] = dp[i-1][0] + gapDist(s1[i-1])
	}
	for j := 1; j <= n; j++ {
		dp[0][j] = dp[0][j-1] + gapDist(s2[j-1])
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			match := dp[i-1][j-1] + sigDist(s1[i-1], s2[j-1])
			gap1 := dp[i-1][j] + gapDist(s1[i-1])
			gap2 := dp[i][j-1] + gapDist(s2[j-1])
			dp[i][j] = min3(match, gap1, gap2)
		}
	}
	return dp[m][n]
}

// DTW computes the dynamic time warping distance between two signature
// series under the EMD element distance, normalized by the warping path
// length so series of different lengths compare fairly.
func DTW(s1, s2 signature.Series) float64 {
	m, n := len(s1), len(s2)
	if m == 0 || n == 0 {
		return 0
	}
	dp := make([][]float64, m+1)
	steps := make([][]int, m+1)
	for i := range dp {
		dp[i] = make([]float64, n+1)
		steps[i] = make([]int, n+1)
		for j := range dp[i] {
			dp[i][j] = 1e308
		}
	}
	dp[0][0] = 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			d := sigDist(s1[i-1], s2[j-1])
			best := dp[i-1][j-1]
			step := steps[i-1][j-1]
			if dp[i-1][j] < best {
				best = dp[i-1][j]
				step = steps[i-1][j]
			}
			if dp[i][j-1] < best {
				best = dp[i][j-1]
				step = steps[i][j-1]
			}
			dp[i][j] = best + d
			steps[i][j] = step + 1
		}
	}
	if steps[m][n] == 0 {
		return 0
	}
	return dp[m][n] / float64(steps[m][n])
}

// ERPSimilarity converts the ERP distance to a (0, 1] similarity, length
// normalized so longer series are not penalized.
func ERPSimilarity(s1, s2 signature.Series) float64 {
	n := len(s1) + len(s2)
	if n == 0 {
		return 0
	}
	return 1 / (1 + ERP(s1, s2)/float64(n))
}

// DTWSimilarity converts the path-normalized DTW distance to a (0, 1]
// similarity.
func DTWSimilarity(s1, s2 signature.Series) float64 {
	if len(s1) == 0 || len(s2) == 0 {
		return 0
	}
	return 1 / (1 + DTW(s1, s2))
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
