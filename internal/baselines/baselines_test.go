package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"videorec/internal/signature"
	"videorec/internal/video"
)

func series(topic int, seed int64) signature.Series {
	rng := rand.New(rand.NewSource(seed))
	v := video.Synthesize("x", topic, video.DefaultSynthOptions(), rng)
	return signature.Extract(v, signature.DefaultOptions())
}

func TestERPIdentityAndSymmetry(t *testing.T) {
	s := series(1, 1)
	if got := ERP(s, s); math.Abs(got) > 1e-9 {
		t.Errorf("ERP(s,s) = %g, want 0", got)
	}
	u := series(5, 2)
	if a, b := ERP(s, u), ERP(u, s); math.Abs(a-b) > 1e-9 {
		t.Errorf("ERP asymmetric: %g vs %g", a, b)
	}
}

func TestERPEmptySeries(t *testing.T) {
	s := series(1, 1)
	if got := ERP(nil, nil); got != 0 {
		t.Errorf("ERP(nil,nil) = %g", got)
	}
	// Aligning against empty charges every element's gap cost.
	got := ERP(s, nil)
	var want float64
	for _, sig := range s {
		want += gapDist(sig)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ERP(s,nil) = %g, want %g", got, want)
	}
}

func TestDTWIdentityAndSymmetry(t *testing.T) {
	s := series(2, 3)
	if got := DTW(s, s); math.Abs(got) > 1e-9 {
		t.Errorf("DTW(s,s) = %g, want 0", got)
	}
	u := series(7, 4)
	if a, b := DTW(s, u), DTW(u, s); math.Abs(a-b) > 1e-9 {
		t.Errorf("DTW asymmetric: %g vs %g", a, b)
	}
	if got := DTW(nil, s); got != 0 {
		t.Errorf("DTW(nil,s) = %g", got)
	}
}

func TestSimilarityConversions(t *testing.T) {
	s := series(1, 1)
	u := series(9, 2)
	for name, f := range map[string]func(a, b signature.Series) float64{
		"ERP": ERPSimilarity, "DTW": DTWSimilarity,
	} {
		self := f(s, s)
		cross := f(s, u)
		if math.Abs(self-1) > 1e-9 {
			t.Errorf("%s self similarity = %g, want 1", name, self)
		}
		if cross <= 0 || cross > 1 {
			t.Errorf("%s cross similarity = %g out of (0,1]", name, cross)
		}
		if cross >= self {
			t.Errorf("%s cross %g >= self %g", name, cross, self)
		}
	}
	if got := ERPSimilarity(nil, nil); got != 0 {
		t.Errorf("ERPSimilarity(nil,nil) = %g", got)
	}
	if got := DTWSimilarity(nil, series(1, 1)); got != 0 {
		t.Errorf("DTWSimilarity(nil,s) = %g", got)
	}
}

// The headline Figure 7 behaviour: shot reordering hurts the order-bound
// measures far more than it hurts κJ.
func TestSequenceMeasuresOrderSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig := video.Synthesize("o", 4, video.DefaultSynthOptions(), rng)
	re := video.ReorderShots(orig, rand.New(rand.NewSource(2)))
	so := signature.Extract(orig, signature.DefaultOptions())
	sr := signature.Extract(re, signature.DefaultOptions())

	kj := signature.KJ(so, sr, signature.DefaultMatchThreshold)
	kjSelf := signature.KJ(so, so, signature.DefaultMatchThreshold)
	dtw := DTWSimilarity(so, sr)
	dtwSelf := DTWSimilarity(so, so)
	// κJ retention under reorder must beat DTW retention.
	if kj/kjSelf <= dtw/dtwSelf {
		t.Errorf("κJ retention %.3f not above DTW retention %.3f", kj/kjSelf, dtw/dtwSelf)
	}
}

func TestPropertyDistancesNonNegative(t *testing.T) {
	f := func(sa, sb int64, ta, tb uint8) bool {
		a := series(int(ta%6), sa)
		b := series(int(tb%6), sb)
		return ERP(a, b) >= 0 && DTW(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func synthVideo(topic int, seed int64) *video.Video {
	rng := rand.New(rand.NewSource(seed))
	return video.Synthesize("x", topic, video.DefaultSynthOptions(), rng)
}

func buildAFFRF(t testing.TB) *AFFRF {
	t.Helper()
	a := NewAFFRF(DefaultAFFRFOptions())
	id := 0
	for topic := 0; topic < 6; topic++ {
		for inst := 0; inst < 4; inst++ {
			a.Ingest(vid(id), topic, synthVideo(topic, int64(id+1)), int64(id+1))
			id++
		}
	}
	return a
}

func vid(i int) string { return "v" + string(rune('a'+i/10)) + string(rune('0'+i%10)) }

func TestAFFRFRecommendBasics(t *testing.T) {
	a := buildAFFRF(t)
	if a.Len() != 24 {
		t.Fatalf("Len = %d", a.Len())
	}
	res := a.Recommend(vid(0), 10)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		if r.ID == vid(0) {
			t.Error("query recommended to itself")
		}
		if i > 0 && r.Score > res[i-1].Score {
			t.Error("results unsorted")
		}
	}
}

func TestAFFRFPrefersSameTopic(t *testing.T) {
	a := buildAFFRF(t)
	// Count same-topic items (topic 0: ids 1..3) in the top 6 for query 0.
	res := a.Recommend(vid(0), 6)
	same := 0
	for _, r := range res {
		for i := 1; i < 4; i++ {
			if r.ID == vid(i) {
				same++
			}
		}
	}
	if same < 2 {
		t.Errorf("only %d/3 same-topic items in top 6", same)
	}
}

func TestAFFRFUnknownQueryAndZeroK(t *testing.T) {
	a := buildAFFRF(t)
	if res := a.Recommend("missing", 5); res != nil {
		t.Errorf("unknown query returned %v", res)
	}
	if res := a.Recommend(vid(0), 0); res != nil {
		t.Errorf("topK=0 returned %v", res)
	}
}

func TestAFFRFDeterministic(t *testing.T) {
	a := buildAFFRF(t)
	b := buildAFFRF(t)
	ra := a.Recommend(vid(3), 8)
	rb := b.Recommend(vid(3), 8)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("rank %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestAttentionContrast(t *testing.T) {
	if got := attention([]float64{0.9, 0.1, 0.1}); got <= attention([]float64{0.5, 0.5, 0.5}) {
		t.Error("peaked scores should earn more attention than flat scores")
	}
	if got := attention(nil); got != 0 {
		t.Errorf("attention(nil) = %g", got)
	}
	if got := attention([]float64{0, 0}); got != 0 {
		t.Errorf("attention(zeros) = %g", got)
	}
}

func TestCosineAndHistIntersect(t *testing.T) {
	if got := cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("cosine parallel = %g", got)
	}
	if got := cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Errorf("cosine orthogonal = %g", got)
	}
	if got := cosine([]float64{0, 0}, []float64{1, 0}); got != 0 {
		t.Errorf("cosine zero = %g", got)
	}
	if got := histIntersect([]float64{0.5, 0.5}, []float64{0.25, 0.75}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("histIntersect = %g, want 0.75", got)
	}
}

func BenchmarkDTW(b *testing.B) {
	s1 := series(1, 1)
	s2 := series(2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DTW(s1, s2)
	}
}

func BenchmarkAFFRFRecommend(b *testing.B) {
	a := buildAFFRF(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Recommend(vid(0), 10)
	}
}
