package btree

import "sort"

// Iterator is a position in the tree's leaf chain. It supports forward and
// backward movement — KNN search in the LSB-index expands from the query
// position in both directions.
type Iterator[V any] struct {
	leaf *leaf[V]
	idx  int
}

// Seek returns an iterator at the first slot with key >= key. The iterator
// is invalid when every key is smaller.
func (t *Tree[V]) Seek(key uint64) *Iterator[V] {
	it := t.SeekAt(key)
	return &it
}

// SeekAt is Seek returning the iterator by value, for callers that embed
// iterators in their own reusable structures (the LCP walker holds two per
// query front) and must not allocate per seek.
func (t *Tree[V]) SeekAt(key uint64) Iterator[V] {
	n := t.root
	for {
		in, ok := n.(*inner[V])
		if !ok {
			break
		}
		n = in.children[in.childIndex(key)]
	}
	lf := n.(*leaf[V])
	i := sort.Search(len(lf.keys), func(i int) bool { return lf.keys[i] >= key })
	it := Iterator[V]{leaf: lf, idx: i}
	if i == len(lf.keys) {
		it.Next() // roll over to the next leaf (or become invalid)
	}
	// With duplicate keys spilling across separators, the true first >= key
	// slot can live one leaf to the left; Seek's descent already routes past
	// separators equal to key, so stepping back while the previous slot is
	// still >= key fixes the position.
	for {
		prev := it
		if !prev.Prev() || prev.Key() < key {
			break
		}
		it = prev
	}
	return it
}

// SeekFirst positions at the smallest key.
func (t *Tree[V]) SeekFirst() *Iterator[V] {
	n := t.root
	for {
		in, ok := n.(*inner[V])
		if !ok {
			break
		}
		n = in.children[0]
	}
	return &Iterator[V]{leaf: n.(*leaf[V]), idx: 0}
}

// SeekLast positions at the largest key.
func (t *Tree[V]) SeekLast() *Iterator[V] {
	n := t.root
	for {
		in, ok := n.(*inner[V])
		if !ok {
			break
		}
		n = in.children[len(in.children)-1]
	}
	lf := n.(*leaf[V])
	return &Iterator[V]{leaf: lf, idx: len(lf.keys) - 1}
}

// Valid reports whether the iterator points at a slot.
func (it *Iterator[V]) Valid() bool {
	return it.leaf != nil && it.idx >= 0 && it.idx < len(it.leaf.keys)
}

// Key returns the key at the current slot. The iterator must be Valid.
func (it *Iterator[V]) Key() uint64 { return it.leaf.keys[it.idx] }

// Value returns the value at the current slot. The iterator must be Valid.
func (it *Iterator[V]) Value() V { return it.leaf.vals[it.idx] }

// Next advances to the following slot, reporting whether the iterator is
// still valid.
func (it *Iterator[V]) Next() bool {
	if it.leaf == nil {
		return false
	}
	it.idx++
	for it.leaf != nil && it.idx >= len(it.leaf.keys) {
		it.leaf = it.leaf.next
		it.idx = 0
	}
	return it.Valid()
}

// Prev moves to the preceding slot, reporting whether the iterator is still
// valid.
func (it *Iterator[V]) Prev() bool {
	if it.leaf == nil {
		return false
	}
	it.idx--
	for it.leaf != nil && it.idx < 0 {
		it.leaf = it.leaf.prev
		if it.leaf != nil {
			it.idx = len(it.leaf.keys) - 1
		}
	}
	return it.Valid()
}

// Clone returns an independent copy of the iterator position.
func (it *Iterator[V]) Clone() *Iterator[V] {
	c := *it
	return &c
}

// AscendRange calls f for every slot with lo <= key < hi in ascending order,
// stopping early if f returns false.
func (t *Tree[V]) AscendRange(lo, hi uint64, f func(key uint64, v V) bool) {
	for it := t.Seek(lo); it.Valid() && it.Key() < hi; it.Next() {
		if !f(it.Key(), it.Value()) {
			return
		}
	}
}

// Ascend calls f for every slot in ascending key order, stopping early if f
// returns false.
func (t *Tree[V]) Ascend(f func(key uint64, v V) bool) {
	for it := t.SeekFirst(); it.Valid(); it.Next() {
		if !f(it.Key(), it.Value()) {
			return
		}
	}
}

// Descend calls f for every slot in descending key order, stopping early if
// f returns false.
func (t *Tree[V]) Descend(f func(key uint64, v V) bool) {
	for it := t.SeekLast(); it.Valid(); it.Prev() {
		if !f(it.Key(), it.Value()) {
			return
		}
	}
}

// DescendRange calls f for every slot with lo < key <= hi in descending
// order, stopping early if f returns false.
func (t *Tree[V]) DescendRange(hi, lo uint64, f func(key uint64, v V) bool) {
	it := t.Seek(hi)
	switch {
	case it.Valid() && it.Key() == hi:
		// start at the last duplicate of hi
		for {
			next := it.Clone()
			if !next.Next() || next.Key() != hi {
				break
			}
			it = next
		}
	default:
		// first key > hi (or past the end) — step back to <= hi
		if !it.Valid() {
			it = t.SeekLast()
		} else if !it.Prev() {
			return
		}
	}
	for ; it.Valid() && it.Key() > lo; it.Prev() {
		if it.Key() > hi {
			continue
		}
		if !f(it.Key(), it.Value()) {
			return
		}
	}
}
