package btree

// Clone returns a structurally independent deep copy of the tree: every node
// is duplicated and the leaf chain relinked, so inserts and deletes on either
// tree never touch the other. Values are copied by assignment (value types
// must be treated as immutable by callers, which SigEntry payloads are).
// Cost is O(n) in nodes. It is the building block of the copy-on-write LSB
// index used by frozen read views.
func (t *Tree[V]) Clone() *Tree[V] {
	nt := &Tree[V]{order: t.order, size: t.size}
	var prev *leaf[V]
	nt.root = cloneNode(t.root, &prev)
	return nt
}

// cloneNode copies a subtree; prev threads the previously cloned leaf so the
// in-order walk can rebuild the doubly linked leaf chain.
func cloneNode[V any](n node[V], prev **leaf[V]) node[V] {
	switch nd := n.(type) {
	case *leaf[V]:
		l := &leaf[V]{
			keys: append([]uint64(nil), nd.keys...),
			vals: append([]V(nil), nd.vals...),
		}
		if *prev != nil {
			(*prev).next = l
			l.prev = *prev
		}
		*prev = l
		return l
	case *inner[V]:
		in := &inner[V]{
			keys:     append([]uint64(nil), nd.keys...),
			children: make([]node[V], 0, len(nd.children)),
		}
		for _, c := range nd.children {
			in.children = append(in.children, cloneNode(c, prev))
		}
		return in
	}
	return nil
}
