package btree

import (
	"sort"
	"testing"
)

// FuzzTreeOps: a byte stream drives interleaved inserts/deletes; the tree
// must always agree with a sorted-slice reference and keep its leaf chain
// consistent.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 1, 255, 1, 255, 1})
	f.Add([]byte{7, 7, 7, 135, 7, 7, 135, 135})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tr := New[int](4)
		var ref []uint64
		for _, b := range ops {
			k := uint64(b & 0x3f) // small key space forces duplicates
			if b&0x80 == 0 {
				tr.Insert(k, int(k))
				i := sort.Search(len(ref), func(i int) bool { return ref[i] >= k })
				ref = append(ref, 0)
				copy(ref[i+1:], ref[i:])
				ref[i] = k
			} else {
				got := tr.Delete(k)
				i := sort.Search(len(ref), func(i int) bool { return ref[i] >= k })
				want := i < len(ref) && ref[i] == k
				if got != want {
					t.Fatalf("Delete(%d) = %v, want %v", k, got, want)
				}
				if want {
					ref = append(ref[:i], ref[i+1:]...)
				}
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
		}
		var scan []uint64
		tr.Ascend(func(k uint64, v int) bool {
			scan = append(scan, k)
			return true
		})
		if len(scan) != len(ref) {
			t.Fatalf("scan %d keys, want %d", len(scan), len(ref))
		}
		for i := range ref {
			if scan[i] != ref[i] {
				t.Fatalf("scan[%d] = %d, want %d", i, scan[i], ref[i])
			}
		}
		// Backward walk must mirror forward.
		var back []uint64
		for it := tr.SeekLast(); it.Valid(); it.Prev() {
			back = append(back, it.Key())
		}
		for i := range back {
			if back[i] != scan[len(scan)-1-i] {
				t.Fatal("leaf chain inconsistent")
			}
		}
	})
}
