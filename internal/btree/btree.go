// Package btree provides an in-memory B⁺-tree over uint64 keys with linked
// leaves and bidirectional iteration. It is the backbone of the LSB-index
// [28]: Z-order values of LSH keys are stored in the tree and KNN search
// walks outward from the query position looking for the next longest common
// prefix. Duplicate keys are allowed (hash collisions are expected).
package btree

import "sort"

// Tree is a B⁺-tree mapping uint64 keys to values of type V. The zero value
// is not usable; call New.
type Tree[V any] struct {
	order int // max keys per node
	root  node[V]
	size  int
}

// New returns an empty tree. order is the maximum number of keys per node
// and is clamped to at least 4.
func New[V any](order int) *Tree[V] {
	if order < 4 {
		order = 4
	}
	return &Tree[V]{order: order, root: &leaf[V]{}}
}

// Len returns the number of stored key/value slots.
func (t *Tree[V]) Len() int { return t.size }

type node[V any] interface {
	isLeaf() bool
}

type leaf[V any] struct {
	keys       []uint64
	vals       []V
	prev, next *leaf[V]
}

func (*leaf[V]) isLeaf() bool { return true }

type inner[V any] struct {
	keys     []uint64  // separators: children[i] holds keys < keys[i]
	children []node[V] // len(children) == len(keys)+1
}

func (*inner[V]) isLeaf() bool { return false }

// childIndex routes key k to the child that may contain it: the first
// separator strictly greater than k.
func (in *inner[V]) childIndex(k uint64) int {
	return sort.Search(len(in.keys), func(i int) bool { return in.keys[i] > k })
}

// Insert stores (key, v). Duplicate keys are kept; the new slot lands after
// existing equal keys.
func (t *Tree[V]) Insert(key uint64, v V) {
	nk, nn := t.insert(t.root, key, v)
	if nn != nil {
		t.root = &inner[V]{keys: []uint64{nk}, children: []node[V]{t.root, nn}}
	}
	t.size++
}

// insert descends, returning a (separator, newNode) pair when the child
// split.
func (t *Tree[V]) insert(n node[V], key uint64, v V) (uint64, node[V]) {
	switch nd := n.(type) {
	case *leaf[V]:
		// Upper bound: append after existing duplicates.
		i := sort.Search(len(nd.keys), func(i int) bool { return nd.keys[i] > key })
		nd.keys = append(nd.keys, 0)
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = key
		var zero V
		nd.vals = append(nd.vals, zero)
		copy(nd.vals[i+1:], nd.vals[i:])
		nd.vals[i] = v
		if len(nd.keys) <= t.order {
			return 0, nil
		}
		// Split.
		mid := len(nd.keys) / 2
		right := &leaf[V]{
			keys: append([]uint64(nil), nd.keys[mid:]...),
			vals: append([]V(nil), nd.vals[mid:]...),
		}
		nd.keys = nd.keys[:mid]
		nd.vals = nd.vals[:mid]
		right.next = nd.next
		right.prev = nd
		if nd.next != nil {
			nd.next.prev = right
		}
		nd.next = right
		return right.keys[0], right
	case *inner[V]:
		ci := nd.childIndex(key)
		sk, sn := t.insert(nd.children[ci], key, v)
		if sn == nil {
			return 0, nil
		}
		nd.keys = append(nd.keys, 0)
		copy(nd.keys[ci+1:], nd.keys[ci:])
		nd.keys[ci] = sk
		nd.children = append(nd.children, nil)
		copy(nd.children[ci+2:], nd.children[ci+1:])
		nd.children[ci+1] = sn
		if len(nd.keys) <= t.order {
			return 0, nil
		}
		// Split inner: middle separator moves up.
		mid := len(nd.keys) / 2
		upKey := nd.keys[mid]
		right := &inner[V]{
			keys:     append([]uint64(nil), nd.keys[mid+1:]...),
			children: append([]node[V](nil), nd.children[mid+1:]...),
		}
		nd.keys = nd.keys[:mid]
		nd.children = nd.children[:mid+1]
		return upKey, right
	}
	panic("btree: unknown node type")
}

// Get returns the first value stored under key.
func (t *Tree[V]) Get(key uint64) (V, bool) {
	it := t.Seek(key)
	if it.Valid() && it.Key() == key {
		return it.Value(), true
	}
	var zero V
	return zero, false
}

// Delete removes one slot holding key (the leftmost), reporting whether a
// slot was removed.
func (t *Tree[V]) Delete(key uint64) bool {
	removed := t.delete(t.root, key)
	if !removed {
		return false
	}
	t.size--
	// Collapse a root inner node with a single child.
	if in, ok := t.root.(*inner[V]); ok && len(in.children) == 1 {
		t.root = in.children[0]
	}
	return true
}

func (t *Tree[V]) minKeys() int { return t.order / 2 }

// delete removes the leftmost slot with key under n and rebalances children
// on the way out.
func (t *Tree[V]) delete(n node[V], key uint64) bool {
	switch nd := n.(type) {
	case *leaf[V]:
		i := sort.Search(len(nd.keys), func(i int) bool { return nd.keys[i] >= key })
		if i >= len(nd.keys) || nd.keys[i] != key {
			return false
		}
		nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
		nd.vals = append(nd.vals[:i], nd.vals[i+1:]...)
		return true
	case *inner[V]:
		// A slot with key normally sits in the child at childIndex(key), but
		// duplicate keys equal to separators can spill into children further
		// left. Probe leftward while the adjacent separator still equals key.
		ci := nd.childIndex(key)
		for probe := ci; probe >= 0; probe-- {
			if t.delete(nd.children[probe], key) {
				t.rebalance(nd, probe)
				return true
			}
			if probe == 0 || nd.keys[probe-1] != key {
				return false
			}
		}
		return false
	}
	panic("btree: unknown node type")
}

// rebalance fixes child ci of parent after a deletion left it under-full.
func (t *Tree[V]) rebalance(parent *inner[V], ci int) {
	child := parent.children[ci]
	if t.nodeLen(child) >= t.minKeys() {
		return
	}
	// Try borrowing from a sibling, else merge.
	if ci > 0 && t.nodeLen(parent.children[ci-1]) > t.minKeys() {
		t.borrowLeft(parent, ci)
		return
	}
	if ci < len(parent.children)-1 && t.nodeLen(parent.children[ci+1]) > t.minKeys() {
		t.borrowRight(parent, ci)
		return
	}
	if ci > 0 {
		t.merge(parent, ci-1)
	} else if ci < len(parent.children)-1 {
		t.merge(parent, ci)
	}
}

func (t *Tree[V]) nodeLen(n node[V]) int {
	if l, ok := n.(*leaf[V]); ok {
		return len(l.keys)
	}
	return len(n.(*inner[V]).keys)
}

func (t *Tree[V]) borrowLeft(parent *inner[V], ci int) {
	switch child := parent.children[ci].(type) {
	case *leaf[V]:
		left := parent.children[ci-1].(*leaf[V])
		n := len(left.keys)
		child.keys = append([]uint64{left.keys[n-1]}, child.keys...)
		child.vals = append([]V{left.vals[n-1]}, child.vals...)
		left.keys = left.keys[:n-1]
		left.vals = left.vals[:n-1]
		parent.keys[ci-1] = child.keys[0]
	case *inner[V]:
		left := parent.children[ci-1].(*inner[V])
		n := len(left.keys)
		child.keys = append([]uint64{parent.keys[ci-1]}, child.keys...)
		child.children = append([]node[V]{left.children[n]}, child.children...)
		parent.keys[ci-1] = left.keys[n-1]
		left.keys = left.keys[:n-1]
		left.children = left.children[:n]
	}
}

func (t *Tree[V]) borrowRight(parent *inner[V], ci int) {
	switch child := parent.children[ci].(type) {
	case *leaf[V]:
		right := parent.children[ci+1].(*leaf[V])
		child.keys = append(child.keys, right.keys[0])
		child.vals = append(child.vals, right.vals[0])
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		parent.keys[ci] = right.keys[0]
	case *inner[V]:
		right := parent.children[ci+1].(*inner[V])
		child.keys = append(child.keys, parent.keys[ci])
		child.children = append(child.children, right.children[0])
		parent.keys[ci] = right.keys[0]
		right.keys = right.keys[1:]
		right.children = right.children[1:]
	}
}

// merge folds child ci+1 of parent into child ci.
func (t *Tree[V]) merge(parent *inner[V], ci int) {
	switch left := parent.children[ci].(type) {
	case *leaf[V]:
		right := parent.children[ci+1].(*leaf[V])
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
		if right.next != nil {
			right.next.prev = left
		}
	case *inner[V]:
		right := parent.children[ci+1].(*inner[V])
		left.keys = append(left.keys, parent.keys[ci])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	parent.keys = append(parent.keys[:ci], parent.keys[ci+1:]...)
	parent.children = append(parent.children[:ci+1], parent.children[ci+2:]...)
}
