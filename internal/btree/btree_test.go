package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGetSmall(t *testing.T) {
	tr := New[string](4)
	tr.Insert(10, "a")
	tr.Insert(5, "b")
	tr.Insert(20, "c")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Get(5); !ok || v != "b" {
		t.Errorf("Get(5) = (%q, %v)", v, ok)
	}
	if _, ok := tr.Get(7); ok {
		t.Error("Get(7) should miss")
	}
}

func TestInsertManySorted(t *testing.T) {
	tr := New[int](8)
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	// Full ascending scan must visit every key in order.
	want := uint64(0)
	tr.Ascend(func(k uint64, v int) bool {
		if k != want || v != int(want) {
			t.Fatalf("scan saw (%d,%d), want %d", k, v, want)
		}
		want++
		return true
	})
	if want != n {
		t.Errorf("scan visited %d keys, want %d", want, n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New[int](4)
	for i := 0; i < 50; i++ {
		tr.Insert(7, i)
	}
	tr.Insert(3, -1)
	tr.Insert(9, -2)
	count := 0
	tr.AscendRange(7, 8, func(k uint64, v int) bool {
		count++
		return true
	})
	if count != 50 {
		t.Errorf("found %d duplicates of key 7, want 50", count)
	}
	// Delete them all, one at a time.
	for i := 0; i < 50; i++ {
		if !tr.Delete(7) {
			t.Fatalf("Delete(7) #%d failed", i)
		}
	}
	if tr.Delete(7) {
		t.Error("extra Delete(7) succeeded")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestDeleteRebalances(t *testing.T) {
	tr := New[int](4)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i*2), i)
	}
	// Delete in an order that forces borrows and merges.
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if !tr.Delete(uint64(i * 2)) {
			t.Fatalf("Delete(%d) failed", i*2)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting everything", tr.Len())
	}
	if it := tr.SeekFirst(); it.Valid() {
		t.Error("iterator valid on empty tree")
	}
}

func TestSeekSemantics(t *testing.T) {
	tr := New[int](4)
	for _, k := range []uint64{10, 20, 30} {
		tr.Insert(k, int(k))
	}
	cases := []struct {
		seek uint64
		want uint64
		ok   bool
	}{
		{0, 10, true}, {10, 10, true}, {11, 20, true},
		{30, 30, true}, {31, 0, false},
	}
	for _, c := range cases {
		it := tr.Seek(c.seek)
		if it.Valid() != c.ok {
			t.Errorf("Seek(%d).Valid = %v, want %v", c.seek, it.Valid(), c.ok)
			continue
		}
		if c.ok && it.Key() != c.want {
			t.Errorf("Seek(%d) = %d, want %d", c.seek, it.Key(), c.want)
		}
	}
}

func TestIteratorBidirectional(t *testing.T) {
	tr := New[int](4)
	keys := []uint64{1, 3, 5, 7, 9, 11, 13}
	for _, k := range keys {
		tr.Insert(k, int(k))
	}
	it := tr.Seek(7)
	if !it.Valid() || it.Key() != 7 {
		t.Fatalf("Seek(7) invalid")
	}
	if !it.Next() || it.Key() != 9 {
		t.Errorf("Next -> %v", it.Key())
	}
	if !it.Prev() || it.Key() != 7 {
		t.Errorf("Prev -> %v", it.Key())
	}
	if !it.Prev() || it.Key() != 5 {
		t.Errorf("Prev -> %v", it.Key())
	}
	// Walk off the front.
	it = tr.SeekFirst()
	if it.Prev() {
		t.Error("Prev past the first key should invalidate")
	}
	// Walk off the back.
	it = tr.SeekLast()
	if it.Key() != 13 {
		t.Errorf("SeekLast = %d", it.Key())
	}
	if it.Next() {
		t.Error("Next past the last key should invalidate")
	}
}

func TestIteratorClone(t *testing.T) {
	tr := New[int](4)
	for i := 0; i < 10; i++ {
		tr.Insert(uint64(i), i)
	}
	it := tr.Seek(4)
	cl := it.Clone()
	it.Next()
	if cl.Key() != 4 {
		t.Errorf("clone moved with original: %d", cl.Key())
	}
}

func TestAscendRangeBounds(t *testing.T) {
	tr := New[int](4)
	for i := 0; i < 20; i++ {
		tr.Insert(uint64(i), i)
	}
	var got []uint64
	tr.AscendRange(5, 9, func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.AscendRange(0, 100, func(uint64, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New[int](4)
	if tr.Delete(1) {
		t.Error("Delete on empty succeeded")
	}
	if it := tr.Seek(0); it.Valid() {
		t.Error("Seek on empty is valid")
	}
	if it := tr.SeekLast(); it.Valid() {
		t.Error("SeekLast on empty is valid")
	}
}

// Property: under a random workload of inserts and deletes, the tree's full
// scan always equals a sorted reference multiset, and Seek matches a linear
// search.
func TestPropertyMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int](4 + rng.Intn(8))
		var ref []uint64 // sorted multiset
		for op := 0; op < 500; op++ {
			k := uint64(rng.Intn(60))
			if rng.Intn(3) > 0 { // 2/3 inserts
				tr.Insert(k, int(k))
				i := sort.Search(len(ref), func(i int) bool { return ref[i] >= k })
				ref = append(ref, 0)
				copy(ref[i+1:], ref[i:])
				ref[i] = k
			} else {
				got := tr.Delete(k)
				i := sort.Search(len(ref), func(i int) bool { return ref[i] >= k })
				want := i < len(ref) && ref[i] == k
				if got != want {
					return false
				}
				if want {
					ref = append(ref[:i], ref[i+1:]...)
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Scan equality.
		var scan []uint64
		tr.Ascend(func(k uint64, v int) bool {
			scan = append(scan, k)
			return true
		})
		if len(scan) != len(ref) {
			return false
		}
		for i := range ref {
			if scan[i] != ref[i] {
				return false
			}
		}
		// Seek equality on a few probes.
		for probe := 0; probe < 10; probe++ {
			k := uint64(rng.Intn(70))
			it := tr.Seek(k)
			i := sort.Search(len(ref), func(i int) bool { return ref[i] >= k })
			if i == len(ref) {
				if it.Valid() {
					return false
				}
			} else if !it.Valid() || it.Key() != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: backward iteration from the end reproduces the reverse of the
// forward scan even after heavy deletion (leaf chain stays consistent).
func TestPropertyLeafChainConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int](4)
		live := map[int]int{} // key -> count
		for i := 0; i < 300; i++ {
			k := rng.Intn(50)
			tr.Insert(uint64(k), k)
			live[k]++
		}
		for i := 0; i < 200; i++ {
			k := rng.Intn(50)
			if tr.Delete(uint64(k)) {
				live[k]--
				if live[k] == 0 {
					delete(live, k)
				}
			}
		}
		var fwd []uint64
		tr.Ascend(func(k uint64, v int) bool { fwd = append(fwd, k); return true })
		var bwd []uint64
		for it := tr.SeekLast(); it.Valid(); it.Prev() {
			bwd = append(bwd, it.Key())
		}
		if len(fwd) != len(bwd) {
			return false
		}
		for i := range fwd {
			if fwd[i] != bwd[len(bwd)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New[int](64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i*2654435761), i)
	}
}

func BenchmarkSeek(b *testing.B) {
	tr := New[int](64)
	for i := 0; i < 100000; i++ {
		tr.Insert(uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Seek(uint64(i % 100000))
	}
}

func TestDescend(t *testing.T) {
	tr := New[int](4)
	for i := 0; i < 10; i++ {
		tr.Insert(uint64(i), i)
	}
	var got []uint64
	tr.Descend(func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	for i, k := range got {
		if k != uint64(9-i) {
			t.Fatalf("Descend[%d] = %d, want %d", i, k, 9-i)
		}
	}
	n := 0
	tr.Descend(func(uint64, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestDescendRange(t *testing.T) {
	tr := New[int](4)
	for i := 0; i < 20; i++ {
		tr.Insert(uint64(i), i)
	}
	var got []uint64
	tr.DescendRange(8, 4, func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{8, 7, 6, 5}
	if len(got) != len(want) {
		t.Fatalf("DescendRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DescendRange = %v, want %v", got, want)
		}
	}
	// hi beyond the max key starts at the top.
	got = nil
	tr.DescendRange(100, 17, func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != 19 || got[1] != 18 {
		t.Errorf("open-hi DescendRange = %v", got)
	}
	// Duplicates of hi are all visited.
	tr.Insert(8, 80)
	tr.Insert(8, 81)
	count := 0
	tr.DescendRange(8, 7, func(k uint64, v int) bool {
		count++
		return true
	})
	if count != 3 {
		t.Errorf("duplicates of hi visited %d times, want 3", count)
	}
	// Empty range.
	got = nil
	tr.DescendRange(4, 4, func(k uint64, v int) bool { got = append(got, k); return true })
	if got != nil {
		t.Errorf("empty range = %v", got)
	}
}
