//go:build race

package index

// raceEnabled reports whether the race detector is instrumenting this build.
// Allocation-count tests skip under -race: the detector's shadow bookkeeping
// shows up in testing.AllocsPerRun.
const raceEnabled = true
