package index

import (
	"math/rand"
	"testing"

	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/video"
)

func series(topic int, seed int64) signature.Series {
	rng := rand.New(rand.NewSource(seed))
	v := video.Synthesize("x", topic, video.DefaultSynthOptions(), rng)
	return signature.Extract(v, signature.DefaultOptions())
}

func TestLSBAddAndLen(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	s := series(1, 1)
	ix.Add("v1", s)
	if ix.Len() != len(s) {
		t.Errorf("Len = %d, want %d", ix.Len(), len(s))
	}
}

func TestWalkerYieldsEverythingOnce(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	total := 0
	for i := 0; i < 5; i++ {
		s := series(i, int64(i+1))
		ix.Add(vid(i), s)
		total += len(s)
	}
	w := ix.NewWalker(series(1, 99)[:1]) // single query signature
	count := 0
	for {
		_, _, ok := w.Next()
		if !ok {
			break
		}
		count++
	}
	// One front per (signature, tree): every stored entry is yielded once
	// per tree of the forest.
	want := total * ix.Trees()
	if count != want {
		t.Errorf("walker yielded %d entries, want %d (each stored entry once per front)", count, want)
	}
}

func TestWalkerPrefixDescendingPerFront(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	for i := 0; i < 6; i++ {
		ix.Add(vid(i), series(i, int64(i+1)))
	}
	w := ix.NewWalker(series(2, 50)[:1])
	last := 1 << 30
	for {
		_, p, ok := w.Next()
		if !ok {
			break
		}
		if p > last {
			t.Fatalf("prefix length increased: %d after %d", p, last)
		}
		last = p
	}
}

func TestWalkerFindsNearDuplicateFirst(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	orig := series(3, 7)
	ix.Add("orig", orig)
	for i := 0; i < 8; i++ {
		ix.Add(vid(i), series(10+i, int64(i+20)))
	}
	// Query with the original's own signatures: the first few entries must
	// come from "orig" (identical keys → maximal prefix).
	w := ix.NewWalker(orig)
	e, p, ok := w.Next()
	if !ok {
		t.Fatal("walker empty")
	}
	if e.VideoID != "orig" {
		t.Errorf("first hit = %s (prefix %d), want orig", e.VideoID, p)
	}
	if p != 64 {
		t.Errorf("self prefix = %d, want 64", p)
	}
}

func TestWalkerEmptyIndexAndQuery(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	w := ix.NewWalker(series(1, 1))
	if _, _, ok := w.Next(); ok {
		t.Error("walker on empty index yielded an entry")
	}
	ix.Add("v", series(1, 1))
	w = ix.NewWalker(nil)
	if _, _, ok := w.Next(); ok {
		t.Error("walker with empty query yielded an entry")
	}
}

func TestInvertedAddCandidates(t *testing.T) {
	iv := NewInverted(4)
	iv.Add("a", social.Vector{1, 0, 2, 0})
	iv.Add("b", social.Vector{0, 3, 0, 0})
	iv.Add("c", social.Vector{0, 1, 1, 0})
	got := iv.Candidates(social.Vector{0, 0, 5, 0})
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("Candidates = %v, want [a c]", got)
	}
	if got := iv.Candidates(social.Vector{0, 0, 0, 1}); len(got) != 0 {
		t.Errorf("empty dim candidates = %v", got)
	}
}

func TestInvertedRemove(t *testing.T) {
	iv := NewInverted(3)
	vec := social.Vector{1, 1, 0}
	iv.Add("a", vec)
	iv.Remove("a", vec)
	if got := iv.Candidates(social.Vector{1, 1, 1}); len(got) != 0 {
		t.Errorf("after remove: %v", got)
	}
}

func TestInvertedGrow(t *testing.T) {
	iv := NewInverted(2)
	iv.Grow(5)
	if iv.Dims() != 5 {
		t.Errorf("Dims = %d, want 5", iv.Dims())
	}
	iv.Add("a", social.Vector{0, 0, 0, 0, 2})
	if got := iv.VideosForDim(4); len(got) != 1 || got[0] != "a" {
		t.Errorf("VideosForDim(4) = %v", got)
	}
	iv.Grow(3) // shrink requests are ignored
	if iv.Dims() != 5 {
		t.Errorf("Dims after no-op Grow = %d", iv.Dims())
	}
}

func TestVideosForDimBounds(t *testing.T) {
	iv := NewInverted(2)
	if got := iv.VideosForDim(-1); got != nil {
		t.Errorf("dim -1 = %v", got)
	}
	if got := iv.VideosForDim(9); got != nil {
		t.Errorf("dim 9 = %v", got)
	}
}

func vid(i int) string { return string(rune('a'+i)) + "-video" }

func BenchmarkWalkerNext(b *testing.B) {
	ix := NewLSB(DefaultLSBOptions())
	for i := 0; i < 50; i++ {
		ix.Add(vid(i%20), series(i%10, int64(i)))
	}
	q := series(3, 999)
	b.ResetTimer()
	w := ix.NewWalker(q)
	for i := 0; i < b.N; i++ {
		if _, _, ok := w.Next(); !ok {
			w = ix.NewWalker(q)
		}
	}
}

// The forest's value: recall of the true nearest signature improves with
// more trees at a fixed probe budget.
func TestForestImprovesRecall(t *testing.T) {
	mk := func(trees int) *LSB {
		o := DefaultLSBOptions()
		o.Trees = trees
		o.Seed = 17
		return NewLSB(o)
	}
	single, forest := mk(1), mk(4)
	for i := 0; i < 12; i++ {
		s := series(i%6, int64(i+1))
		single.Add(vid(i), s)
		forest.Add(vid(i), s)
	}
	recall := func(ix *LSB) int {
		hits := 0
		for probe := 0; probe < 10; probe++ {
			q := series(probe%6, int64(probe+1)) // identical to an indexed video
			w := ix.NewWalker(q[:1])
			for pops := 0; pops < 3; pops++ {
				e, _, ok := w.Next()
				if !ok {
					break
				}
				if e.VideoID == vid(probe) {
					hits++
					break
				}
			}
		}
		return hits
	}
	if rs, rf := recall(single), recall(forest); rf < rs {
		t.Errorf("forest recall %d below single-tree recall %d", rf, rs)
	}
}
