package index

import (
	"math/rand"
	"sort"
	"testing"

	"videorec/internal/lsh"
	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/video"
)

func series(topic int, seed int64) signature.Series {
	rng := rand.New(rand.NewSource(seed))
	v := video.Synthesize("x", topic, video.DefaultSynthOptions(), rng)
	return signature.Extract(v, signature.DefaultOptions())
}

func TestLSBAddAndLen(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	s := series(1, 1)
	ix.Add(1, s)
	if ix.Len() != len(s) {
		t.Errorf("Len = %d, want %d", ix.Len(), len(s))
	}
}

func TestWalkerYieldsEverythingOnce(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	total := 0
	for i := 0; i < 5; i++ {
		s := series(i, int64(i+1))
		ix.Add(uint32(i), s)
		total += len(s)
	}
	w := ix.NewWalker(series(1, 99)[:1]) // single query signature
	count := 0
	for {
		_, _, ok := w.Next()
		if !ok {
			break
		}
		count++
	}
	// One front per (signature, tree): every stored entry is yielded once
	// per tree of the forest.
	want := total * ix.Trees()
	if count != want {
		t.Errorf("walker yielded %d entries, want %d (each stored entry once per front)", count, want)
	}
}

func TestWalkerPrefixDescendingPerFront(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	for i := 0; i < 6; i++ {
		ix.Add(uint32(i), series(i, int64(i+1)))
	}
	w := ix.NewWalker(series(2, 50)[:1])
	last := 1 << 30
	for {
		_, p, ok := w.Next()
		if !ok {
			break
		}
		if p > last {
			t.Fatalf("prefix length increased: %d after %d", p, last)
		}
		last = p
	}
}

func TestWalkerFindsNearDuplicateFirst(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	orig := series(3, 7)
	const origIdx = 100
	ix.Add(origIdx, orig)
	for i := 0; i < 8; i++ {
		ix.Add(uint32(i), series(10+i, int64(i+20)))
	}
	// Query with the original's own signatures: the first few entries must
	// come from origIdx (identical keys → maximal prefix).
	w := ix.NewWalker(orig)
	e, p, ok := w.Next()
	if !ok {
		t.Fatal("walker empty")
	}
	if e.Video != origIdx {
		t.Errorf("first hit = %d (prefix %d), want %d", e.Video, p, origIdx)
	}
	if p != 64 {
		t.Errorf("self prefix = %d, want 64", p)
	}
}

func TestWalkerEmptyIndexAndQuery(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	w := ix.NewWalker(series(1, 1))
	if _, _, ok := w.Next(); ok {
		t.Error("walker on empty index yielded an entry")
	}
	ix.Add(7, series(1, 1))
	w = ix.NewWalker(nil)
	if _, _, ok := w.Next(); ok {
		t.Error("walker with empty query yielded an entry")
	}
}

// linearWalkerYield replays the pre-heap walker's selection rule — scan every
// front in creation order, fwd before bwd, take the first strict improvement —
// over a private set of iterators, yielding (video, prefix) pairs. The heap
// walker must produce the identical sequence.
func linearWalkerYield(ix *LSB, q signature.Series, maxYields int) [][2]int {
	type front struct {
		qkey     uint64
		fwd, bwd int // positions into the collected key/entry arrays; -1 = dead
	}
	// Materialize each tree's ordered (key, video) sequence once.
	type kv struct {
		key   uint64
		video uint32
	}
	flat := make([][]kv, ix.Trees())
	for t := range ix.trees {
		it := ix.trees[t].SeekAt(0)
		for ; it.Valid(); it.Next() {
			flat[t] = append(flat[t], kv{it.Key(), it.Value().Video})
		}
	}
	type ffront struct {
		tree int
		front
	}
	var fronts []ffront
	for _, sig := range q {
		for t := range ix.trees {
			k := ix.key(t, sig)
			pos := sort.Search(len(flat[t]), func(i int) bool { return flat[t][i].key >= k })
			f := ffront{tree: t, front: front{qkey: k, fwd: pos, bwd: pos - 1}}
			if f.fwd >= len(flat[t]) {
				f.fwd = -1
				// Matches the production walker: when the seek runs past the
				// end of the tree, the backward front is never seeded.
				f.bwd = -1
			}
			fronts = append(fronts, f)
		}
	}
	var out [][2]int
	for len(out) < maxYields {
		bestP, bestF, bestFwd := -1, -1, false
		for fi := range fronts {
			f := &fronts[fi]
			if f.fwd >= 0 {
				p := lsh.CommonPrefixLen(f.qkey, flat[f.tree][f.fwd].key, ix.totalBits)
				if p > bestP {
					bestP, bestF, bestFwd = p, fi, true
				}
			}
			if f.bwd >= 0 {
				p := lsh.CommonPrefixLen(f.qkey, flat[f.tree][f.bwd].key, ix.totalBits)
				if p > bestP {
					bestP, bestF, bestFwd = p, fi, false
				}
			}
		}
		if bestF < 0 {
			break
		}
		f := &fronts[bestF]
		if bestFwd {
			out = append(out, [2]int{int(flat[f.tree][f.fwd].video), bestP})
			f.fwd++
			if f.fwd >= len(flat[f.tree]) {
				f.fwd = -1
			}
		} else {
			out = append(out, [2]int{int(flat[f.tree][f.bwd].video), bestP})
			f.bwd--
		}
	}
	return out
}

// TestWalkerMatchesLinearReference proves the heap-driven walker yields the
// exact sequence of the linear-tournament walker it replaced — same videos,
// same prefixes, same order — across several query shapes.
func TestWalkerMatchesLinearReference(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	for i := 0; i < 14; i++ {
		ix.Add(uint32(i*3), series(i%7, int64(i+1)))
	}
	queries := []signature.Series{
		series(2, 50)[:1],
		series(4, 81),
		series(0, 7)[:2],
	}
	for qi, q := range queries {
		want := linearWalkerYield(ix, q, 1<<30)
		w := ix.NewWalker(q)
		var got [][2]int
		for {
			e, p, ok := w.Next()
			if !ok {
				break
			}
			got = append(got, [2]int{int(e.Video), p})
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: heap walker yielded %d entries, reference %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: yield %d = %v, reference %v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestWalkerResetReuses verifies a Reset walker behaves like a fresh one.
func TestWalkerResetReuses(t *testing.T) {
	ix := NewLSB(DefaultLSBOptions())
	for i := 0; i < 6; i++ {
		ix.Add(uint32(i), series(i, int64(i+1)))
	}
	q := series(3, 9)[:1]
	collect := func(w *Walker) [][2]int {
		var out [][2]int
		for {
			e, p, ok := w.Next()
			if !ok {
				break
			}
			out = append(out, [2]int{int(e.Video), p})
		}
		return out
	}
	w := ix.NewWalker(series(1, 2))
	collect(w) // drain with an unrelated query
	w.Reset(ix, q)
	got := collect(w)
	want := collect(ix.NewWalker(q))
	if len(got) != len(want) {
		t.Fatalf("reset walker yielded %d entries, fresh %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("yield %d: reset %v, fresh %v", i, got[i], want[i])
		}
	}
}

func unionOf(t *testing.T, iv *Inverted, q social.Vector) []uint32 {
	t.Helper()
	var sc UnionScratch
	out := iv.Union(q, &sc)
	return append([]uint32(nil), out...)
}

func TestInvertedAddUnion(t *testing.T) {
	iv := NewInverted(4)
	iv.Add(0, social.Vector{1, 0, 2, 0}) // a
	iv.Add(1, social.Vector{0, 3, 0, 0}) // b
	iv.Add(2, social.Vector{0, 1, 1, 0}) // c
	got := unionOf(t, iv, social.Vector{0, 0, 5, 0})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Union = %v, want [0 2]", got)
	}
	if got := unionOf(t, iv, social.Vector{0, 0, 0, 1}); len(got) != 0 {
		t.Errorf("empty dim union = %v", got)
	}
	if got := unionOf(t, iv, social.Vector{1, 1, 1, 0}); len(got) != 3 {
		t.Errorf("full union = %v, want 3 videos", got)
	}
}

func TestInvertedRemove(t *testing.T) {
	iv := NewInverted(3)
	vec := social.Vector{1, 1, 0}
	iv.Add(5, vec)
	iv.Remove(5, vec)
	if got := unionOf(t, iv, social.Vector{1, 1, 1}); len(got) != 0 {
		t.Errorf("after remove: %v", got)
	}
}

func TestInvertedGrow(t *testing.T) {
	iv := NewInverted(2)
	iv.Grow(5)
	if iv.Dims() != 5 {
		t.Errorf("Dims = %d, want 5", iv.Dims())
	}
	iv.Add(9, social.Vector{0, 0, 0, 0, 2})
	if got := iv.Postings(4); len(got) != 1 || got[0] != 9 {
		t.Errorf("Postings(4) = %v", got)
	}
	if iv.DimLen(4) != 1 {
		t.Errorf("DimLen(4) = %d, want 1", iv.DimLen(4))
	}
	iv.Grow(3) // shrink requests are ignored
	if iv.Dims() != 5 {
		t.Errorf("Dims after no-op Grow = %d", iv.Dims())
	}
}

func TestPostingsBounds(t *testing.T) {
	iv := NewInverted(2)
	if got := iv.Postings(-1); got != nil {
		t.Errorf("dim -1 = %v", got)
	}
	if got := iv.Postings(9); got != nil {
		t.Errorf("dim 9 = %v", got)
	}
	if iv.DimLen(-1) != 0 || iv.DimLen(9) != 0 {
		t.Error("DimLen out of bounds should be 0")
	}
}

// TestInvertedSortedInvariant checks posting lists stay sorted and unique
// under out-of-order adds, duplicate adds and interleaved removals.
func TestInvertedSortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	iv := NewInverted(3)
	live := map[uint32]social.Vector{}
	for step := 0; step < 500; step++ {
		v := uint32(rng.Intn(64))
		if vec, ok := live[v]; ok && rng.Intn(3) == 0 {
			iv.Remove(v, vec)
			delete(live, v)
			continue
		}
		vec := social.Vector{float64(rng.Intn(2)), float64(rng.Intn(2)), float64(rng.Intn(2))}
		if old, ok := live[v]; ok {
			iv.Remove(v, old)
		}
		iv.Add(v, vec)
		live[v] = vec
	}
	for d := 0; d < iv.Dims(); d++ {
		list := iv.Postings(d)
		for i := 1; i < len(list); i++ {
			if list[i-1] >= list[i] {
				t.Fatalf("dim %d not sorted/unique at %d: %v", d, i, list)
			}
		}
		for _, v := range list {
			vec, ok := live[v]
			if !ok || vec[d] <= 0 {
				t.Fatalf("dim %d posts %d which should not be posted", d, v)
			}
		}
		for v, vec := range live {
			if vec[d] > 0 {
				i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
				if i >= len(list) || list[i] != v {
					t.Fatalf("dim %d missing %d", d, v)
				}
			}
		}
	}
}

// TestUnionMatchesMapReference is the property test of the k-way merge: for
// random posting-list states (including removals and Grow-extended dims) and
// random query vectors, Union must return exactly the sorted set a map-based
// reference union produces.
func TestUnionMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(6)
		iv := NewInverted(k)
		live := map[uint32]social.Vector{}
		n := rng.Intn(80)
		for i := 0; i < n; i++ {
			v := uint32(rng.Intn(100))
			vec := make(social.Vector, k)
			for d := range vec {
				if rng.Intn(3) == 0 {
					vec[d] = float64(1 + rng.Intn(3))
				}
			}
			if old, ok := live[v]; ok {
				iv.Remove(v, old)
			}
			iv.Add(v, vec)
			live[v] = vec
		}
		// Random removals.
		for v, vec := range live {
			if rng.Intn(4) == 0 {
				iv.Remove(v, vec)
				delete(live, v)
			}
		}
		// Occasionally grow and post a video into the new dimensions.
		if rng.Intn(2) == 0 {
			k += 2
			iv.Grow(k)
			v := uint32(200 + trial)
			vec := make(social.Vector, k)
			vec[k-1] = 1
			iv.Add(v, vec)
			live[v] = vec
		}

		q := make(social.Vector, k)
		for d := range q {
			if rng.Intn(2) == 0 {
				q[d] = float64(rng.Intn(3)) // zero entries must not contribute
			}
		}

		// Map-based reference union.
		want := map[uint32]bool{}
		for v, vec := range live {
			for d := 0; d < k && d < len(vec); d++ {
				if q[d] > 0 && vec[d] > 0 {
					want[v] = true
				}
			}
		}
		wantSorted := make([]uint32, 0, len(want))
		for v := range want {
			wantSorted = append(wantSorted, v)
		}
		sort.Slice(wantSorted, func(a, b int) bool { return wantSorted[a] < wantSorted[b] })

		got := unionOf(t, iv, q)
		if len(got) != len(wantSorted) {
			t.Fatalf("trial %d: union %v, want %v", trial, got, wantSorted)
		}
		for i := range got {
			if got[i] != wantSorted[i] {
				t.Fatalf("trial %d: union %v, want %v", trial, got, wantSorted)
			}
		}
	}
}

// TestInvertedCloneIsolation verifies the copy-on-write sharing: mutations on
// a clone never leak into the original's posting lists and vice versa.
func TestInvertedCloneIsolation(t *testing.T) {
	iv := NewInverted(2)
	iv.Add(1, social.Vector{1, 1})
	iv.Add(3, social.Vector{1, 0})

	cp := iv.Clone()
	cp.Add(2, social.Vector{1, 1})
	cp.Remove(3, social.Vector{1, 0})

	if got := unionOf(t, iv, social.Vector{1, 0}); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("original dim 0 changed by clone mutation: %v", got)
	}
	if got := unionOf(t, cp, social.Vector{1, 0}); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("clone dim 0 = %v, want [1 2]", got)
	}

	// Mutating the original after cloning must not disturb the clone either.
	iv.Add(0, social.Vector{0, 1})
	if got := unionOf(t, cp, social.Vector{0, 1}); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("clone dim 1 changed by original mutation: %v", got)
	}
}

// TestUnionZeroAlloc pins the steady-state union to zero allocations once
// the scratch is warm.
func TestUnionZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	iv := NewInverted(4)
	for i := 0; i < 200; i++ {
		vec := social.Vector{0, 0, 0, 0}
		vec[i%4] = 1
		vec[(i+1)%4] = 1
		iv.Add(uint32(i), vec)
	}
	q := social.Vector{1, 0, 1, 1}
	var sc UnionScratch
	iv.Union(q, &sc) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		iv.Union(q, &sc)
	})
	if allocs != 0 {
		t.Errorf("Union allocates %v per run, want 0", allocs)
	}
}

func BenchmarkWalkerNext(b *testing.B) {
	ix := NewLSB(DefaultLSBOptions())
	for i := 0; i < 50; i++ {
		ix.Add(uint32(i%20), series(i%10, int64(i)))
	}
	q := series(3, 999)
	b.ResetTimer()
	w := ix.NewWalker(q)
	for i := 0; i < b.N; i++ {
		if _, _, ok := w.Next(); !ok {
			w.Reset(ix, q)
		}
	}
}

// The forest's value: recall of the true nearest signature improves with
// more trees at a fixed probe budget.
func TestForestImprovesRecall(t *testing.T) {
	mk := func(trees int) *LSB {
		o := DefaultLSBOptions()
		o.Trees = trees
		o.Seed = 17
		return NewLSB(o)
	}
	single, forest := mk(1), mk(4)
	for i := 0; i < 12; i++ {
		s := series(i%6, int64(i+1))
		single.Add(uint32(i), s)
		forest.Add(uint32(i), s)
	}
	recall := func(ix *LSB) int {
		hits := 0
		for probe := 0; probe < 10; probe++ {
			q := series(probe%6, int64(probe+1)) // identical to an indexed video
			w := ix.NewWalker(q[:1])
			for pops := 0; pops < 3; pops++ {
				e, _, ok := w.Next()
				if !ok {
					break
				}
				if e.Video == uint32(probe) {
					hits++
					break
				}
			}
		}
		return hits
	}
	if rs, rf := recall(single), recall(forest); rf < rs {
		t.Errorf("forest recall %d below single-tree recall %d", rf, rs)
	}
}
