// Package index implements the two access paths of the KNN search of §4.4
// (Figure 6): the LSB content index — cuboid signatures embedded into L1,
// LSH-hashed, Z-ordered and stored in a B⁺-tree whose entries carry the
// video id — and the k inverted files mapping each sub-community id to the
// videos whose descriptors touch it.
//
// Videos are identified by dense uint32 indices (interned by the owner — the
// core view assigns them in ingestion order), so posting lists are flat
// sorted integer arrays, set membership is a bitset probe, and candidate
// union is a k-way merge instead of a hash-map union.
package index

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"

	"videorec/internal/btree"
	"videorec/internal/lsh"
	"videorec/internal/signature"
	"videorec/internal/social"
)

// SigEntry is one LSB-tree payload: which video a stored signature belongs
// to (by dense index), and the signature itself so the refinement step can
// compute exact SimC without a side lookup.
type SigEntry struct {
	Video uint32
	Sig   signature.Signature
}

// LSBOptions tunes the content index.
type LSBOptions struct {
	M          int     // LSH functions per tree (M·Bits ≤ 64)
	Bits       int     // bits per hash value
	W          float64 // LSH bucket width
	Levels     int     // embedding grid levels
	VMin, VMax float64 // cuboid value domain
	TreeOrder  int
	Trees      int // LSB-trees in the forest ([28] uses L trees; more trees, better recall)
	Seed       int64
}

// DefaultLSBOptions matches the signature package's default value scaling
// (cuboid values in roughly [−64, 64] after VScale=4).
func DefaultLSBOptions() LSBOptions {
	return LSBOptions{
		M:      8,
		Bits:   8,
		W:      0.02,
		Levels: 7,
		VMin:   -64, VMax: 64,
		TreeOrder: 64,
		Trees:     2,
		Seed:      1,
	}
}

// LSB is the content index: an LSB-forest of one or more Z-order B⁺-trees,
// each with an independently drawn hash family, per [28]. A near neighbour
// missed by one tree's space-filling curve is usually caught by another's.
type LSB struct {
	trees     []*btree.Tree[SigEntry]
	hfs       []*lsh.HashFamily
	emb       *lsh.Embedder
	totalBits int
	// fp fingerprints the construction parameters. Hash families are drawn
	// deterministically from them, so two forests with equal fingerprints
	// key any signature identically — the contract behind sharing
	// precomputed QueryKeys across a sharded deployment's forests.
	fp uint64
}

// NewLSB builds an empty content index.
func NewLSB(opts LSBOptions) *LSB {
	if opts.M == 0 {
		opts = DefaultLSBOptions()
	}
	if opts.Trees < 1 {
		opts.Trees = 1
	}
	emb := lsh.NewEmbedder(opts.VMin, opts.VMax, opts.Levels)
	ix := &LSB{emb: emb, totalBits: opts.M * opts.Bits, fp: optsFingerprint(opts)}
	for t := 0; t < opts.Trees; t++ {
		ix.trees = append(ix.trees, btree.New[SigEntry](opts.TreeOrder))
		ix.hfs = append(ix.hfs, lsh.NewHashFamily(emb.Dim(), opts.M, opts.Bits, opts.W, opts.Seed+int64(t)*7919))
	}
	return ix
}

// optsFingerprint folds every parameter that shapes the hash families and
// the embedding into one comparable word.
func optsFingerprint(opts LSBOptions) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{
		uint64(opts.M), uint64(opts.Bits), math.Float64bits(opts.W),
		uint64(opts.Levels), math.Float64bits(opts.VMin), math.Float64bits(opts.VMax),
		uint64(opts.Trees), uint64(opts.Seed),
	} {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// KeyFingerprint identifies the keying behaviour of this forest. Equal
// fingerprints guarantee equal keys for any signature; QueryKeys results
// may be shared exactly between forests with matching fingerprints.
func (ix *LSB) KeyFingerprint() uint64 { return ix.fp }

// Len returns the number of indexed signatures (per tree; every tree holds
// every signature).
func (ix *LSB) Len() int { return ix.trees[0].Len() }

// Clone returns an independent copy of the index: the B⁺-trees are deep
// copied while the hash families and the embedder — immutable after
// construction — are shared. Mutating either copy never affects the other,
// which is what the copy-on-write read views rely on.
func (ix *LSB) Clone() *LSB {
	cp := &LSB{
		trees:     make([]*btree.Tree[SigEntry], len(ix.trees)),
		hfs:       ix.hfs,
		emb:       ix.emb,
		totalBits: ix.totalBits,
		fp:        ix.fp,
	}
	for t, tr := range ix.trees {
		cp.trees[t] = tr.Clone()
	}
	return cp
}

// Trees returns the forest size.
func (ix *LSB) Trees() int { return len(ix.trees) }

// key Z-orders a signature's LSH hashes under tree t's family.
func (ix *LSB) key(t int, sig signature.Signature) uint64 {
	v, w := sig.Values()
	return ix.hfs[t].Key(ix.emb, v, w)
}

// Add indexes every signature of a video's series into every tree.
func (ix *LSB) Add(video uint32, series signature.Series) {
	for _, sig := range series {
		e := SigEntry{Video: video, Sig: sig}
		for t := range ix.trees {
			ix.trees[t].Insert(ix.key(t, sig), e)
		}
	}
}

// Walker streams indexed signatures in decreasing order of the longest
// common Z-order prefix with any signature of the query series — the "next
// longest common prefix" search order of Figure 6. Each query signature
// expands bidirectionally from its tree position; a max-heap keyed by each
// front's current common-prefix length yields globally prefix-descending
// entries in O(log F) per pop instead of a linear scan over all fronts.
//
// A Walker is reusable: Reset re-seeds it for a new query without
// reallocating the front and heap storage, so pooled per-query scratch pays
// no per-query allocation.
type Walker struct {
	ix     *LSB
	fronts []walkFront
	heap   []walkItem

	// Reusable keying buffers: Reset re-keys every query signature per tree,
	// and these keep that free of allocation once warm.
	v, mu []float64
	ks    lsh.KeyScratch
}

type walkFront struct {
	qkey uint64
	fwd  btree.Iterator[SigEntry]
	bwd  btree.Iterator[SigEntry]
}

// walkItem is one heap entry: a front direction positioned on a live slot,
// keyed by the common-prefix length of that slot with the front's query key.
type walkItem struct {
	p   int32 // common-prefix length of the current position
	fi  int32 // front index, ascending tie-break
	fwd bool  // forward direction wins ties within a front
}

// before is the heap's strict total order: longer prefixes pop first; among
// equal prefixes the earliest front wins, forward before backward. This is
// exactly the order the former linear tournament produced (first strict
// improvement scanning fronts in creation order, fwd checked before bwd),
// so the yield sequence is unchanged.
func (a walkItem) before(b walkItem) bool {
	if a.p != b.p {
		return a.p > b.p
	}
	if a.fi != b.fi {
		return a.fi < b.fi
	}
	return a.fwd && !b.fwd
}

// NewWalker prepares an LCP walk for the query series: one bidirectional
// front per (query signature, tree) pair.
func (ix *LSB) NewWalker(q signature.Series) *Walker {
	w := &Walker{}
	w.Reset(ix, q)
	return w
}

// Reset re-seeds the walker for a new query against ix, reusing storage.
func (w *Walker) Reset(ix *LSB, q signature.Series) {
	w.ResetWithKeys(ix, q, nil)
}

// QueryKeys precomputes the Z-order key of every (query signature, tree)
// pair — the keying work Reset would otherwise redo — laid out as
// keys[si*Trees()+t]. A caller fanning one query across several forests
// with equal KeyFingerprints (the sharded deployment: same options, same
// deterministic hash families) keys once and hands the slice to each
// walker's ResetWithKeys instead of paying the embedding per forest.
func (ix *LSB) QueryKeys(q signature.Series) []uint64 {
	keys := make([]uint64, 0, len(q)*len(ix.trees))
	var v, mu []float64
	var ks lsh.KeyScratch
	for _, sig := range q {
		v, mu = sig.ValuesInto(v, mu)
		for t := range ix.hfs {
			keys = append(keys, ix.hfs[t].KeyInto(ix.emb, v, mu, &ks))
		}
	}
	return keys
}

// ResetWithKeys is Reset seeded from precomputed QueryKeys. A nil or
// mis-sized keys slice falls back to keying locally, so a stale cache can
// never corrupt the walk order — callers gate sharing on KeyFingerprint.
func (w *Walker) ResetWithKeys(ix *LSB, q signature.Series, keys []uint64) {
	w.ix = ix
	w.fronts = w.fronts[:0]
	w.heap = w.heap[:0]
	if keys != nil && len(keys) != len(q)*len(ix.trees) {
		keys = nil
	}
	for si, sig := range q {
		if keys == nil {
			w.v, w.mu = sig.ValuesInto(w.v, w.mu)
		}
		for t := range ix.trees {
			var k uint64
			if keys != nil {
				k = keys[si*len(ix.trees)+t]
			} else {
				k = ix.hfs[t].KeyInto(ix.emb, w.v, w.mu, &w.ks)
			}
			f := walkFront{qkey: k, fwd: ix.trees[t].SeekAt(k)}
			f.bwd = f.fwd
			fi := int32(len(w.fronts))
			if f.bwd.Prev() {
				w.push(walkItem{p: w.prefix(k, f.bwd.Key()), fi: fi, fwd: false})
			}
			if f.fwd.Valid() {
				w.push(walkItem{p: w.prefix(k, f.fwd.Key()), fi: fi, fwd: true})
			}
			w.fronts = append(w.fronts, f)
		}
	}
}

func (w *Walker) prefix(qkey, key uint64) int32 {
	return int32(lsh.CommonPrefixLen(qkey, key, w.ix.totalBits))
}

// Next returns the indexed entry with the globally longest remaining common
// prefix, its prefix length, and whether anything was left. Entries are
// yielded at most once per front but a video naturally recurs across
// signatures; the caller deduplicates at video level.
func (w *Walker) Next() (SigEntry, int, bool) {
	if len(w.heap) == 0 {
		return SigEntry{}, 0, false
	}
	top := w.heap[0]
	yielded := int(top.p)
	f := &w.fronts[top.fi]
	var e SigEntry
	var alive bool
	if top.fwd {
		e = f.fwd.Value()
		alive = f.fwd.Next()
		if alive {
			top.p = w.prefix(f.qkey, f.fwd.Key())
		}
	} else {
		e = f.bwd.Value()
		alive = f.bwd.Prev()
		if alive {
			top.p = w.prefix(f.qkey, f.bwd.Key())
		}
	}
	if alive {
		// Replace the root with the advanced position and restore heap order.
		w.heap[0] = top
		w.down(0)
	} else {
		last := len(w.heap) - 1
		w.heap[0] = w.heap[last]
		w.heap = w.heap[:last]
		if last > 0 {
			w.down(0)
		}
	}
	return e, yielded, true
}

func (w *Walker) push(it walkItem) {
	w.heap = append(w.heap, it)
	i := len(w.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !w.heap[i].before(w.heap[parent]) {
			return
		}
		w.heap[i], w.heap[parent] = w.heap[parent], w.heap[i]
		i = parent
	}
}

func (w *Walker) down(i int) {
	n := len(w.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && w.heap[l].before(w.heap[best]) {
			best = l
		}
		if r < n && w.heap[r].before(w.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		w.heap[i], w.heap[best] = w.heap[best], w.heap[i]
		i = best
	}
}

// Inverted is the set of k inverted files of §4.4: one posting list of
// dense video indices per sub-community dimension. Posting lists are sorted
// ascending and treated as immutable once shared: Clone copies only the
// outer table (O(k)), and the first mutation of a dimension after a clone
// replaces that dimension's list with a private copy. Views therefore share
// posting lists copy-on-write exactly like compiled signatures.
type Inverted struct {
	lists [][]uint32
	owned []bool // lists[d] is privately owned and may be mutated in place
}

// NewInverted allocates k empty posting lists.
func NewInverted(k int) *Inverted {
	return &Inverted{lists: make([][]uint32, k), owned: make([]bool, k)}
}

// Dims returns the number of posting lists.
func (iv *Inverted) Dims() int { return len(iv.lists) }

// Clone returns a copy sharing every posting list copy-on-write: O(k)
// regardless of how many postings exist. Both copies may afterwards be
// mutated independently — the single-writer discipline of the core engine
// guarantees the cloned-from side is a frozen view that never mutates.
func (iv *Inverted) Clone() *Inverted {
	cp := &Inverted{
		lists: append([][]uint32(nil), iv.lists...),
		owned: make([]bool, len(iv.lists)),
	}
	return cp
}

// own makes dimension d's list privately mutable, copying it if shared.
func (iv *Inverted) own(d int) {
	if !iv.owned[d] {
		iv.lists[d] = append([]uint32(nil), iv.lists[d]...)
		iv.owned[d] = true
	}
}

// Add posts the video under every dimension its descriptor vector touches,
// keeping each posting list sorted. Appending videos in ascending index
// order (the bulk-build path — ingestion order is interning order) is O(1)
// amortized per posting; out-of-order inserts pay one memmove.
func (iv *Inverted) Add(video uint32, vec social.Vector) {
	for d, x := range vec {
		if x <= 0 || d >= len(iv.lists) {
			continue
		}
		list := iv.lists[d]
		n := len(list)
		if n == 0 || list[n-1] < video {
			iv.own(d)
			iv.lists[d] = append(iv.lists[d], video)
			continue
		}
		i := sort.Search(n, func(i int) bool { return list[i] >= video })
		if i < n && list[i] == video {
			continue // already posted
		}
		iv.own(d)
		list = append(iv.lists[d], 0)
		copy(list[i+1:], list[i:])
		list[i] = video
		iv.lists[d] = list
	}
}

// Remove unposts the video from every dimension of the given vector (use
// the vector it was added with).
func (iv *Inverted) Remove(video uint32, vec social.Vector) {
	for d, x := range vec {
		if x <= 0 || d >= len(iv.lists) {
			continue
		}
		list := iv.lists[d]
		i := sort.Search(len(list), func(i int) bool { return list[i] >= video })
		if i >= len(list) || list[i] != video {
			continue
		}
		iv.own(d)
		list = iv.lists[d]
		iv.lists[d] = append(list[:i], list[i+1:]...)
	}
}

// Grow extends the index to at least k dimensions (maintenance can mint new
// sub-community ids past the original k).
func (iv *Inverted) Grow(k int) {
	for len(iv.lists) < k {
		iv.lists = append(iv.lists, nil)
		iv.owned = append(iv.owned, true)
	}
}

// DimLen returns the posting-list length of one dimension — the N_ui / N_si
// inputs of the Equation 8 cost model, read directly off the list header.
func (iv *Inverted) DimLen(d int) int {
	if d < 0 || d >= len(iv.lists) {
		return 0
	}
	return len(iv.lists[d])
}

// Postings returns one dimension's sorted posting list. The caller must
// treat it as immutable — it is shared with every clone of the index.
func (iv *Inverted) Postings(d int) []uint32 {
	if d < 0 || d >= len(iv.lists) {
		return nil
	}
	return iv.lists[d]
}

// UnionScratch is reusable storage for Union, pooled per query by the
// caller so steady-state candidate gathering allocates nothing.
type UnionScratch struct {
	heads [][]uint32 // cursor per active posting list (remaining suffix)
	out   []uint32
}

// Union returns every video sharing at least one non-zero dimension with
// the query vector, as a sorted, deduplicated slice of dense indices — the
// k-way merge of the touched posting lists. The dense-index order is the
// deterministic order; no per-query sort happens. The result aliases either
// scratch storage or a single shared posting list and is only valid until
// the next Union with the same scratch; callers must not mutate it.
func (iv *Inverted) Union(q social.Vector, scratch *UnionScratch) []uint32 {
	heads := scratch.heads[:0]
	for d, x := range q {
		if x <= 0 || d >= len(iv.lists) || len(iv.lists[d]) == 0 {
			continue
		}
		heads = append(heads, iv.lists[d])
	}
	scratch.heads = heads
	switch len(heads) {
	case 0:
		return nil
	case 1:
		// A single touched list is already the union; hand it out directly
		// (the caller's read-only contract makes sharing safe).
		return heads[0]
	}

	// Min-heap of cursors keyed by each list's next value. Pop the global
	// minimum, emit it, advance the popped cursor; duplicates across lists
	// collapse against the last emitted value.
	out := scratch.out[:0]
	for i := len(heads)/2 - 1; i >= 0; i-- {
		mergeDown(heads, i)
	}
	for len(heads) > 0 {
		v := heads[0][0]
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
		if rest := heads[0][1:]; len(rest) > 0 {
			heads[0] = rest
			mergeDown(heads, 0)
		} else {
			last := len(heads) - 1
			heads[0] = heads[last]
			heads = heads[:last]
			if last > 0 {
				mergeDown(heads, 0)
			}
		}
	}
	scratch.out = out
	return out
}

// mergeDown restores the min-heap property for the cursor heap (keyed by
// each cursor's head value) from position i downward.
func mergeDown(heads [][]uint32, i int) {
	n := len(heads)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && heads[l][0] < heads[least][0] {
			least = l
		}
		if r < n && heads[r][0] < heads[least][0] {
			least = r
		}
		if least == i {
			return
		}
		heads[i], heads[least] = heads[least], heads[i]
		i = least
	}
}
