// Package index implements the two access paths of the KNN search of §4.4
// (Figure 6): the LSB content index — cuboid signatures embedded into L1,
// LSH-hashed, Z-ordered and stored in a B⁺-tree whose entries carry the
// video id — and the k inverted files mapping each sub-community id to the
// videos whose descriptors touch it.
package index

import (
	"sort"

	"videorec/internal/btree"
	"videorec/internal/lsh"
	"videorec/internal/signature"
	"videorec/internal/social"
)

// SigEntry is one LSB-tree payload: which video a stored signature belongs
// to, and the signature itself so the refinement step can compute exact
// SimC without a side lookup.
type SigEntry struct {
	VideoID string
	Sig     signature.Signature
}

// LSBOptions tunes the content index.
type LSBOptions struct {
	M          int     // LSH functions per tree (M·Bits ≤ 64)
	Bits       int     // bits per hash value
	W          float64 // LSH bucket width
	Levels     int     // embedding grid levels
	VMin, VMax float64 // cuboid value domain
	TreeOrder  int
	Trees      int // LSB-trees in the forest ([28] uses L trees; more trees, better recall)
	Seed       int64
}

// DefaultLSBOptions matches the signature package's default value scaling
// (cuboid values in roughly [−64, 64] after VScale=4).
func DefaultLSBOptions() LSBOptions {
	return LSBOptions{
		M:      8,
		Bits:   8,
		W:      0.02,
		Levels: 7,
		VMin:   -64, VMax: 64,
		TreeOrder: 64,
		Trees:     2,
		Seed:      1,
	}
}

// LSB is the content index: an LSB-forest of one or more Z-order B⁺-trees,
// each with an independently drawn hash family, per [28]. A near neighbour
// missed by one tree's space-filling curve is usually caught by another's.
type LSB struct {
	trees     []*btree.Tree[SigEntry]
	hfs       []*lsh.HashFamily
	emb       *lsh.Embedder
	totalBits int
}

// NewLSB builds an empty content index.
func NewLSB(opts LSBOptions) *LSB {
	if opts.M == 0 {
		opts = DefaultLSBOptions()
	}
	if opts.Trees < 1 {
		opts.Trees = 1
	}
	emb := lsh.NewEmbedder(opts.VMin, opts.VMax, opts.Levels)
	ix := &LSB{emb: emb, totalBits: opts.M * opts.Bits}
	for t := 0; t < opts.Trees; t++ {
		ix.trees = append(ix.trees, btree.New[SigEntry](opts.TreeOrder))
		ix.hfs = append(ix.hfs, lsh.NewHashFamily(emb.Dim(), opts.M, opts.Bits, opts.W, opts.Seed+int64(t)*7919))
	}
	return ix
}

// Len returns the number of indexed signatures (per tree; every tree holds
// every signature).
func (ix *LSB) Len() int { return ix.trees[0].Len() }

// Clone returns an independent copy of the index: the B⁺-trees are deep
// copied while the hash families and the embedder — immutable after
// construction — are shared. Mutating either copy never affects the other,
// which is what the copy-on-write read views rely on.
func (ix *LSB) Clone() *LSB {
	cp := &LSB{
		trees:     make([]*btree.Tree[SigEntry], len(ix.trees)),
		hfs:       ix.hfs,
		emb:       ix.emb,
		totalBits: ix.totalBits,
	}
	for t, tr := range ix.trees {
		cp.trees[t] = tr.Clone()
	}
	return cp
}

// Trees returns the forest size.
func (ix *LSB) Trees() int { return len(ix.trees) }

// key Z-orders a signature's LSH hashes under tree t's family.
func (ix *LSB) key(t int, sig signature.Signature) uint64 {
	v, w := sig.Values()
	return ix.hfs[t].Key(ix.emb, v, w)
}

// Add indexes every signature of a video's series into every tree.
func (ix *LSB) Add(videoID string, series signature.Series) {
	for _, sig := range series {
		e := SigEntry{VideoID: videoID, Sig: sig}
		for t := range ix.trees {
			ix.trees[t].Insert(ix.key(t, sig), e)
		}
	}
}

// Walker streams indexed signatures in decreasing order of the longest
// common Z-order prefix with any signature of the query series — the "next
// longest common prefix" search order of Figure 6. Each query signature
// expands bidirectionally from its tree position; a tournament across all
// fronts yields globally prefix-descending entries.
type Walker struct {
	ix     *LSB
	fronts []*front
}

type front struct {
	qkey uint64
	fwd  *btree.Iterator[SigEntry]
	bwd  *btree.Iterator[SigEntry]
}

// NewWalker prepares an LCP walk for the query series: one bidirectional
// front per (query signature, tree) pair.
func (ix *LSB) NewWalker(q signature.Series) *Walker {
	w := &Walker{ix: ix}
	for _, sig := range q {
		for t := range ix.trees {
			k := ix.key(t, sig)
			f := &front{qkey: k, fwd: ix.trees[t].Seek(k)}
			f.bwd = f.fwd.Clone()
			if !f.bwd.Prev() {
				f.bwd = nil
			}
			if !f.fwd.Valid() {
				f.fwd = nil
			}
			w.fronts = append(w.fronts, f)
		}
	}
	return w
}

// Next returns the indexed entry with the globally longest remaining common
// prefix, its prefix length, and whether anything was left. Entries are
// yielded at most once per front but a video naturally recurs across
// signatures; the caller deduplicates at video level.
func (w *Walker) Next() (SigEntry, int, bool) {
	bestLen := -1
	var bestFront *front
	var takeFwd bool
	for _, f := range w.fronts {
		if f.fwd != nil {
			if p := lsh.CommonPrefixLen(f.qkey, f.fwd.Key(), w.ix.totalBits); p > bestLen {
				bestLen, bestFront, takeFwd = p, f, true
			}
		}
		if f.bwd != nil {
			if p := lsh.CommonPrefixLen(f.qkey, f.bwd.Key(), w.ix.totalBits); p > bestLen {
				bestLen, bestFront, takeFwd = p, f, false
			}
		}
	}
	if bestFront == nil {
		return SigEntry{}, 0, false
	}
	if takeFwd {
		e := bestFront.fwd.Value()
		if !bestFront.fwd.Next() {
			bestFront.fwd = nil
		}
		return e, bestLen, true
	}
	e := bestFront.bwd.Value()
	if !bestFront.bwd.Prev() {
		bestFront.bwd = nil
	}
	return e, bestLen, true
}

// Inverted is the set of k inverted files of §4.4: one posting list of video
// ids per sub-community dimension.
type Inverted struct {
	lists []map[string]bool
}

// NewInverted allocates k empty posting lists.
func NewInverted(k int) *Inverted {
	iv := &Inverted{lists: make([]map[string]bool, k)}
	for i := range iv.lists {
		iv.lists[i] = make(map[string]bool)
	}
	return iv
}

// Dims returns the number of posting lists.
func (iv *Inverted) Dims() int { return len(iv.lists) }

// Clone returns an independent copy of every posting list.
func (iv *Inverted) Clone() *Inverted {
	cp := &Inverted{lists: make([]map[string]bool, len(iv.lists))}
	for d, list := range iv.lists {
		m := make(map[string]bool, len(list))
		for id := range list {
			m[id] = true
		}
		cp.lists[d] = m
	}
	return cp
}

// Add posts the video under every dimension its descriptor vector touches.
func (iv *Inverted) Add(videoID string, vec social.Vector) {
	for d, x := range vec {
		if x > 0 && d < len(iv.lists) {
			iv.lists[d][videoID] = true
		}
	}
}

// Remove unposts the video from every dimension of the given vector (use
// the vector it was added with).
func (iv *Inverted) Remove(videoID string, vec social.Vector) {
	for d, x := range vec {
		if x > 0 && d < len(iv.lists) {
			delete(iv.lists[d], videoID)
		}
	}
}

// Grow extends the index to at least k dimensions (maintenance can mint new
// sub-community ids past the original k).
func (iv *Inverted) Grow(k int) {
	for len(iv.lists) < k {
		iv.lists = append(iv.lists, make(map[string]bool))
	}
}

// VideosForDim returns the sorted posting list of one dimension.
func (iv *Inverted) VideosForDim(d int) []string {
	if d < 0 || d >= len(iv.lists) {
		return nil
	}
	out := make([]string, 0, len(iv.lists[d]))
	for id := range iv.lists[d] {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Candidates returns every video sharing at least one non-zero dimension
// with the query vector, sorted for determinism.
func (iv *Inverted) Candidates(q social.Vector) []string {
	seen := map[string]bool{}
	for d, x := range q {
		if x <= 0 || d >= len(iv.lists) {
			continue
		}
		for id := range iv.lists[d] {
			seen[id] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
