//go:build !race

package index

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
