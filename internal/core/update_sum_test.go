package core

import (
	"math/rand"
	"testing"

	"videorec/internal/community"
)

func edgesEqual(a, b []community.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reversed pair orientation across shards must merge into one canonical
// edge: shard boundaries do not get to pick which endpoint comes first.
func TestSumConnectionsReversedOrientation(t *testing.T) {
	got := SumConnections(
		[]community.Edge{{U: "a", V: "b", W: 1}},
		[]community.Edge{{U: "b", V: "a", W: 2}},
	)
	want := []community.Edge{{U: "a", V: "b", W: 3}}
	if !edgesEqual(got, want) {
		t.Fatalf("SumConnections = %+v, want %+v", got, want)
	}
}

// SumConnections is a merge, not a validator: self-loops and empty names in
// the input pass through (canonically oriented), because filtering is
// derivation's job and a merge that silently drops input would let shards
// disagree about the batch they all must apply.
func TestSumConnectionsKeepsSelfLoopsAndEmptyNames(t *testing.T) {
	got := SumConnections(
		[]community.Edge{{U: "y", V: "y", W: 2}, {U: "x", V: "", W: 1}},
		[]community.Edge{{U: "", V: "x", W: 4}},
	)
	want := []community.Edge{
		{U: "", V: "x", W: 5},
		{U: "y", V: "y", W: 2},
	}
	if !edgesEqual(got, want) {
		t.Fatalf("SumConnections = %+v, want %+v", got, want)
	}
}

func TestSumConnectionsEmptyInput(t *testing.T) {
	if got := SumConnections(); len(got) != 0 {
		t.Fatalf("SumConnections() = %+v, want empty", got)
	}
	if got := SumConnections(nil, []community.Edge{}); len(got) != 0 {
		t.Fatalf("SumConnections(nil, empty) = %+v, want empty", got)
	}
}

// Property: however a derived edge list is sliced into parts — and whatever
// orientation each part stores — the merge reproduces the single-engine
// derivation exactly. This is the invariant sharded ApplyUpdates rests on:
// every shard applies SumConnections output, and it must equal what one
// engine holding the whole corpus would have derived.
func TestSumConnectionsMergeDeterminism(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	rng := rand.New(rand.NewSource(99))

	for trial := 0; trial < 20; trial++ {
		batch := map[string][]string{}
		for _, it := range c.Items {
			if rng.Intn(3) == 0 {
				users := make([]string, 1+rng.Intn(4))
				for i := range users {
					users[i] = c.Items[rng.Intn(len(c.Items))].Comments[0].User
				}
				batch[it.ID] = users
			}
		}
		full := r.DeriveConnections(batch)
		if len(full) == 0 {
			continue
		}

		// Slice the full list into 1–4 parts at random, flipping random
		// edges' orientation; derived weights are small integers, so
		// regrouping float additions is exact.
		nParts := 1 + rng.Intn(4)
		parts := make([][]community.Edge, nParts)
		for _, e := range full {
			p := rng.Intn(nParts)
			if rng.Intn(2) == 0 {
				e.U, e.V = e.V, e.U
			}
			parts[p] = append(parts[p], e)
		}
		if got := SumConnections(parts...); !edgesEqual(got, full) {
			t.Fatalf("trial %d: merged parts diverge from single derivation:\ngot  %+v\nwant %+v", trial, got, full)
		}

		// Part order must not matter either (weights are integral).
		reversed := make([][]community.Edge, nParts)
		for i := range parts {
			reversed[i] = parts[nParts-1-i]
		}
		if got := SumConnections(reversed...); !edgesEqual(got, full) {
			t.Fatalf("trial %d: merge depends on part order", trial)
		}
	}
}

// Splitting one part's edge for a pair across two parts must sum, matching
// the multi-shard case where both shards hold videos the pair co-commented.
func TestSumConnectionsAccumulatesAcrossParts(t *testing.T) {
	got := SumConnections(
		[]community.Edge{{U: "a", V: "b", W: 1.5}, {U: "a", V: "c", W: 1}},
		[]community.Edge{{U: "a", V: "b", W: 2.5}},
		[]community.Edge{{U: "a", V: "b", W: 1}},
	)
	want := []community.Edge{
		{U: "a", V: "b", W: 5},
		{U: "a", V: "c", W: 1},
	}
	if !edgesEqual(got, want) {
		t.Fatalf("SumConnections = %+v, want %+v", got, want)
	}
}
