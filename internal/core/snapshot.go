package core

import (
	"fmt"

	"videorec/internal/community"
	"videorec/internal/signature"
	"videorec/internal/social"
)

// Snapshot is the recommender's complete persistent state: everything needed
// to rebuild the indexes deterministically and to keep applying incremental
// social updates after a reload. The LSB tree, hash table, descriptor
// vectors and inverted files are all derived state and are reconstructed on
// load rather than stored.
type Snapshot struct {
	Options Options
	Records []RecordSnapshot
	Order   []string

	// Version records the view version of the engine that saved the
	// snapshot. A reloaded engine resumes this counter — it publishes the
	// restored state under the same version — so version-keyed caches and
	// replication cursors stay monotonic across restarts. Aliasing is safe:
	// the version identifies exactly the state that was saved.
	Version uint64

	// JournalSeq is the journal sequence number of the last update batch
	// included in this snapshot — the replication cursor the snapshot
	// covers. Replay and replica catch-up skip batches with seq ≤ JournalSeq
	// instead of double-applying them. Zero for snapshots written before
	// journal shipping (or by engines without a journal).
	JournalSeq uint64

	// Social machinery (present when BuildSocial had run).
	Built         bool
	Assign        map[string]int
	Dim           int
	K             int
	LightestIntra float64
	GraphEdges    []community.Edge
	GraphUsers    []string // preserves isolated users
}

// RecordSnapshot is one video's persistent state.
type RecordSnapshot struct {
	ID     string
	Series signature.Series
	Users  []string // social descriptor members
}

// Snapshot captures the recommender's state. The result shares no mutable
// structure with the recommender and is safe to serialize. It is a pure
// read of the build state, so it never triggers a copy-on-write clone.
func (r *Recommender) Snapshot() *Snapshot {
	st := r.state
	s := &Snapshot{
		Options: r.opts,
		Order:   append([]string(nil), st.order...),
		Built:   st.built,
	}
	for _, id := range st.order {
		rec := st.record(id)
		series := make(signature.Series, len(rec.Series))
		for i, sig := range rec.Series {
			series[i] = signature.Signature{Cuboids: append([]signature.Cuboid(nil), sig.Cuboids...)}
		}
		s.Records = append(s.Records, RecordSnapshot{
			ID:     id,
			Series: series,
			Users:  append([]string(nil), rec.Desc.Users()...),
		})
	}
	if st.built && st.part != nil {
		s.Assign = st.part.AssignMap()
		s.Dim = st.part.Dim
		s.K = st.part.K
		s.LightestIntra = st.part.LightestIntra
		s.GraphEdges = r.graph.Edges()
		s.GraphUsers = append([]string(nil), r.graph.Users()...)
	}
	return s
}

// FromSnapshot reconstructs a recommender: signatures are re-indexed into a
// fresh LSB tree (deterministic given Options), and when the snapshot was
// built, the partition and UIG are restored verbatim so incremental updates
// continue where they left off. The restored recommender's first Freeze
// publishes a view identical to what the saving engine served.
func FromSnapshot(s *Snapshot) (*Recommender, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	r := NewRecommender(s.Options)
	byID := make(map[string]RecordSnapshot, len(s.Records))
	for _, rec := range s.Records {
		byID[rec.ID] = rec
	}
	for _, id := range s.Order {
		rec, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("core: snapshot order references unknown id %q", id)
		}
		r.IngestSeries(id, rec.Series, social.NewDescriptor("", rec.Users...))
	}
	if len(s.Order) != len(s.Records) {
		return nil, fmt.Errorf("core: snapshot order (%d) and records (%d) disagree", len(s.Order), len(s.Records))
	}
	if !s.Built {
		return r, nil
	}

	// Restore the UIG and partition, then rebuild derived structures the
	// same way BuildSocial does.
	r.graph = community.NewGraph()
	for _, u := range s.GraphUsers {
		r.graph.AddUser(u)
	}
	for _, e := range s.GraphEdges {
		r.graph.AddEdgeWeight(e.U, e.V, e.W)
	}
	for u, c := range s.Assign {
		if c < 0 || c >= s.Dim {
			return nil, fmt.Errorf("core: snapshot assigns %q to invalid sub-community %d (dim %d)", u, c, s.Dim)
		}
	}
	r.state.part = community.NewPartition(r.graph.UserTable(), s.K, s.Dim, s.LightestIntra, s.Assign)
	r.installSocial()
	return r, nil
}

// installSocial wires the derived social structures (hash table, linear
// dictionary, maintainer hooks, vectors, inverted files) around the current
// graph and partition. BuildSocial and FromSnapshot share it. The hooks
// close over the recommender — not over any particular View — so they keep
// patching the current build state across copy-on-write clones.
func (r *Recommender) installSocial() {
	r.rebuildDictionaries()
	r.touched = map[int]bool{}
	r.maint = community.NewMaintainer(r.graph, r.state.part, community.Hooks{
		AssignUser: func(u string, cno int) {
			r.state.table.Insert(u, cno)
			r.state.dict = append(r.state.dict, dictEntry{user: u, cno: cno})
			r.touched[cno] = true
		},
		ReplaceCommunity: func(old, new int) {
			r.state.table.ReplaceCno(old, new)
			for i := range r.state.dict {
				if r.state.dict[i].cno == old {
					r.state.dict[i].cno = new
				}
			}
		},
		TouchDimensions: func(ids ...int) {
			for _, d := range ids {
				r.touched[d] = true
			}
		},
	})
	r.vectorizeAll()
	r.state.look = r.state.lookupFunc()
	r.state.built = true
	r.state.soa = buildSoA(r.state.recs)
}

// SortedIDs returns the ingested video ids in a stable order (useful for
// deterministic dumps and diffing snapshots).
func (r *Recommender) SortedIDs() []string { return r.state.SortedIDs() }
