package core

import (
	"sort"
	"sync"

	"videorec/internal/bitset"
	"videorec/internal/community"
	"videorec/internal/hashing"
	"videorec/internal/index"
	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/video"
)

// intern is the dense video-id table: every ingested id is assigned the
// next uint32 index, forever. Indices are stable across removal and
// re-ingest (a resurrected id reuses its slot), so every index structure —
// posting lists, tombstones, the record table — can be integer-addressed.
//
// The table is shared copy-on-write across view clones exactly like the
// compiled signatures: clone hands out the same pointer, and the first
// mutation that mints a new id copies the table before appending (see
// Recommender.internID). Most mutations (updates, removals) mint nothing
// and share the table indefinitely.
type intern struct {
	ids []string          // dense index → video id
	idx map[string]uint32 // video id → dense index
}

func newIntern() *intern {
	return &intern{idx: make(map[string]uint32)}
}

func (t *intern) clone() *intern {
	cp := &intern{
		ids: append([]string(nil), t.ids...),
		idx: make(map[string]uint32, len(t.idx)),
	}
	for id, i := range t.idx {
		cp.idx[id] = i
	}
	return cp
}

// View is the frozen, immutable state one recommendation query needs: the
// signature series and social descriptors of every stored video, the LSB
// content index, the inverted files, the SAR descriptor vectors, the
// sub-community partition and the chained-hash dictionary. A View is built by
// the write-side Recommender and published to readers, after which nothing
// reachable from it is ever mutated — any number of goroutines may call its
// query methods concurrently without locking.
//
// The write side enforces this with copy-on-write: once a View has been
// handed out by Freeze, the next mutation first clones every structure the
// View references (see clone) and applies itself to the private copy, so the
// published View keeps answering queries from the state it froze.
type View struct {
	opts Options

	intern      *intern   // dense id table, shared COW (see internID)
	internOwned bool      // this view may append to intern without copying
	recs        []*Record // dense index → record; nil marks a dead slot
	order       []string  // ingestion order of live videos: deterministic builds

	lsb   *index.LSB
	inv   *index.Inverted
	table *hashing.Table
	dict  []dictEntry // linear-scan dictionary for ModeSAR
	part  *community.Partition

	tombstones bitset.Set // removed videos with LSB entries pending compaction
	tombCount  int
	built      bool

	// soa is the structure-of-arrays layout of the compiled signatures,
	// consumed by batched refinement. Built by installSocial, shared
	// copy-on-write across clones (immutable once published), and nil
	// whenever the record set has mutated since the last build — readers
	// fall back to the per-record layout, which scores identically.
	soa *soaStore

	// look caches lookupFunc's closure for the query path — vectorizing the
	// query descriptor must not allocate a fresh closure per query. Set by
	// installSocial and rebuilt on clone (it binds the view's own table).
	look social.Lookup

	// scratch hands out per-query gather scratch (candidate bitset, qvec,
	// merged index buffer, LCP walker, social selector); kjScratch hands out
	// per-refinement-worker EMD scratch; batch hands out the chunk-wide
	// state of a batched call (per-dimension query masks, merge cursors,
	// a shared EMD scratch and result selector). All are per-view so every
	// pooled buffer is already sized for this view's id space, and all
	// survive only as long as the view — a clone starts fresh pools.
	scratch   *sync.Pool
	kjScratch *sync.Pool
	batch     *sync.Pool
}

// newPools builds the view's scratch pools. Called by NewRecommender and
// clone; the pool pointers are never shared between views.
func (v *View) newPools() {
	v.scratch = &sync.Pool{New: func() any { return new(queryScratch) }}
	v.kjScratch = &sync.Pool{New: func() any { return new(signature.KJScratch) }}
	v.batch = &sync.Pool{New: func() any { return new(batchScratch) }}
}

// clone returns a View whose mutable structures are all privately owned:
// record structs, ingestion order, the LSB trees, the inverted-file table,
// the hash table, the linear dictionary, the partition assignment and the
// tombstone bitset are copied; immutable payloads (signature series, social
// descriptors, SAR vectors, posting lists, the intern table — all replaced
// wholesale, never edited in place) are shared copy-on-write. The write side
// calls this exactly once per freeze→mutate transition.
func (v *View) clone() *View {
	nv := &View{
		opts:        v.opts,
		intern:      v.intern, // shared until a new id is interned
		internOwned: false,
		order:       append([]string(nil), v.order...),
		lsb:         v.lsb.Clone(),
		dict:        append([]dictEntry(nil), v.dict...),
		tombstones:  v.tombstones.Clone(),
		tombCount:   v.tombCount,
		built:       v.built,
		soa:         v.soa, // immutable once built; invalidated by record mutations
	}
	nv.newPools()
	if len(v.recs) > 0 {
		// One backing array for every record struct: two allocations total
		// instead of one per record.
		backing := make([]Record, len(v.recs))
		nv.recs = make([]*Record, len(v.recs))
		for i, rec := range v.recs {
			if rec != nil {
				backing[i] = *rec
				nv.recs[i] = &backing[i]
			}
		}
	}
	if v.inv != nil {
		nv.inv = v.inv.Clone()
	}
	if v.table != nil {
		nv.table = v.table.Clone()
	}
	if v.part != nil {
		// Copies the dense assignment slice and marks the shared user table
		// so the writer's next mint copies it — the frozen reader never sees
		// the table grow.
		nv.part = v.part.Clone()
	}
	if v.look != nil {
		// Rebind to the clone's own table/dict/partition copies.
		nv.look = nv.lookupFunc()
	}
	return nv
}

// record returns the dense-indexed record for a video id, or nil.
func (v *View) record(id string) *Record {
	if i, ok := v.intern.idx[id]; ok {
		return v.recs[i]
	}
	return nil
}

// Options returns the view's configuration.
func (v *View) Options() Options { return v.opts }

// Len returns the number of stored videos in the view.
func (v *View) Len() int { return len(v.order) }

// Built reports whether the social machinery had been built when the view
// was frozen; Recommend in a SAR mode panics on an unbuilt view exactly as
// it does on an unbuilt Recommender.
func (v *View) Built() bool { return v.built }

// Has reports whether the video id is stored in the view.
func (v *View) Has(id string) bool { return v.record(id) != nil }

// Record returns the stored record for a video id.
func (v *View) Record(id string) (*Record, bool) {
	rec := v.record(id)
	return rec, rec != nil
}

// Partition exposes the view's sub-community partition (nil before the
// social build). Callers must treat it as read-only.
func (v *View) Partition() *community.Partition { return v.part }

// SortedIDs returns the stored video ids in a stable order.
func (v *View) SortedIDs() []string {
	ids := append([]string(nil), v.order...)
	sort.Strings(ids)
	return ids
}

// QueryFor builds a Query from a stored video id.
func (v *View) QueryFor(id string) (Query, bool) {
	rec := v.record(id)
	if rec == nil {
		return Query{}, false
	}
	return Query{Series: rec.Series, Desc: rec.Desc, comp: rec.Compiled}, true
}

// AdHocQuery builds a Query from a clip that is not part of the collection —
// the anonymous visitor's currently-watched video. Extraction touches only
// the view's immutable options, so it runs without any engine lock.
func (v *View) AdHocQuery(vd *video.Video, desc social.Descriptor) Query {
	series := signature.Extract(vd, v.opts.Sig)
	return Query{Series: series, Desc: desc, comp: signature.CompileSeries(series)}
}

// PrimeContentKeys returns q carrying the precomputed content-index keys of
// its series, stamped with this view's forest fingerprint. Any view whose
// forest shares the fingerprint (every shard of a sharded deployment — the
// hash families are drawn deterministically from shared options) reuses the
// keys during candidate gathering instead of re-embedding the series, so a
// fanned-out query pays the keying cost once. Views with a different
// fingerprint ignore the cache and key locally; results are identical
// either way.
func (v *View) PrimeContentKeys(q Query) Query {
	q.contentKeys = v.lsb.QueryKeys(q.Series)
	q.keyFP = v.lsb.KeyFingerprint()
	return q
}

// ContentRelevance is κJ between the query and a stored video.
func (v *View) ContentRelevance(q Query, id string) float64 {
	rec := v.record(id)
	if rec == nil {
		return 0
	}
	return signature.KJ(q.Series, rec.Series, v.opts.MatchThreshold)
}

// SocialRelevance is the mode-dependent social relevance between the query
// and a stored video: exact sJ (naive quadratic, as the unoptimized system
// the paper starts from) in ModeExact, s̃J over SAR vectors otherwise.
func (v *View) SocialRelevance(q Query, qvec social.Vector, id string) float64 {
	rec := v.record(id)
	if rec == nil {
		return 0
	}
	return v.socialRelevanceRec(q, qvec, rec)
}

// socialRelevanceRec is SocialRelevance for a record already in hand — the
// step-3 scoring loop resolves candidates by dense index and must not
// re-hash the string id.
func (v *View) socialRelevanceRec(q Query, qvec social.Vector, rec *Record) float64 {
	if v.opts.Mode == ModeExact {
		return naiveJaccard(q.Desc, rec.Desc)
	}
	return social.ApproxJaccard(qvec, rec.Vec)
}

// VideosPerDim reports how many videos each inverted-file dimension holds —
// the N_ui / N_si inputs of the Equation 8 cost model — read directly off
// the posting-list headers.
func (v *View) VideosPerDim() []int {
	if v.inv == nil {
		return nil
	}
	out := make([]int, v.inv.Dims())
	for d := range out {
		out[d] = v.inv.DimLen(d)
	}
	return out
}

// lookupFunc returns the user → sub-community mapping for the active mode:
// the chained hash table for ModeSARHash, the deliberately linear dictionary
// scan for ModeSAR (the unoptimized vectorization the paper's hash scheme
// speeds up), and the partition map otherwise.
func (v *View) lookupFunc() social.Lookup {
	switch v.opts.Mode {
	case ModeSARHash:
		return v.table.Lookup
	case ModeSAR:
		return func(u string) (int, bool) {
			for _, e := range v.dict {
				if e.user == u {
					return e.cno, true
				}
			}
			return 0, false
		}
	default:
		return v.part.Lookup
	}
}

// fuse is Equation 9.
func (v *View) fuse(content, soc float64) float64 {
	if v.opts.ContentWeightOnly {
		return content
	}
	if v.opts.SocialOnly {
		return soc
	}
	return (1-v.opts.Omega)*content + v.opts.Omega*soc
}

// mustBuild panics if the view was frozen before BuildSocial — calling the
// SAR paths without a partition is a programming error, not a runtime
// condition.
func (v *View) mustBuild() {
	if !v.built || v.part == nil {
		panic("core: BuildSocial must be called before SAR-mode recommendation")
	}
}
