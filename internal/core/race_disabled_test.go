//go:build !race

package core

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
