package core

import (
	"testing"

	"videorec/internal/dataset"
)

// buildSmallTweaked is buildSmall plus an options hook applied before the
// recommender is constructed.
func buildSmallTweaked(t testing.TB, mode Mode, tweak func(*Options)) (*Recommender, *dataset.Collection) {
	t.Helper()
	o := dataset.DefaultOptions()
	o.Hours = 4
	o.Users = 150
	o.Seed = 11
	c := dataset.Generate(o)
	opts := DefaultOptions()
	opts.Mode = mode
	opts.K = 12
	if tweak != nil {
		tweak(&opts)
	}
	r := NewRecommender(opts)
	for _, it := range c.Items {
		v := it.Render(o.Synth)
		r.IngestVideo(it.ID, v, descriptorOf(c, it))
	}
	r.BuildSocial()
	return r, c
}

// Parallel step-3 refinement must be byte-identical to the serial path:
// each candidate's κJ/s̃J pair is computed into its own pre-assigned slot,
// so worker scheduling cannot perturb a single bit of the ranking. FullScan
// forces the candidate set well past minParallelRefine.
func TestParallelRefinementMatchesSerial(t *testing.T) {
	for _, mode := range []Mode{ModeSARHash, ModeSAR, ModeExact} {
		t.Run(mode.String(), func(t *testing.T) {
			serial, c := buildSmallTweaked(t, mode, func(o *Options) {
				o.FullScan = true
				o.RefineWorkers = 1
			})
			parallel, _ := buildSmallTweaked(t, mode, func(o *Options) {
				o.FullScan = true
				o.RefineWorkers = 8
			})
			for _, q := range c.Queries {
				src := q.Sources[0]
				a := serial.RecommendID(src, 15)
				b := parallel.RecommendID(src, 15)
				if len(a) != len(b) {
					t.Fatalf("%s: %d serial vs %d parallel results", src, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s rank %d: serial %+v vs parallel %+v", src, i, a[i], b[i])
					}
				}
			}
		})
	}
}

// A frozen view must be fully isolated from every mutation path: ingest,
// removal, and incremental updates clone the shared state before touching
// it, so the view keeps answering from the world as it was at Freeze time.
func TestFrozenViewIsolatedFromMutations(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	src := c.Queries[0].Sources[0]

	view := r.Freeze()
	wantLen := view.Len()
	want := view.RecommendID(src, 10)
	if len(want) == 0 {
		t.Fatal("frozen view returned no recommendations")
	}

	// Mutate through every write path. Removing a recommended video (not the
	// query source) makes any leakage into the view visible in the ranking.
	rep := r.ApplyUpdates(map[string][]string{src: {"cow-user-1", "cow-user-2", c.Users[0]}})
	if rep.VideosRevectorized == 0 {
		t.Fatal("updates were a no-op; test would prove nothing")
	}
	if !r.RemoveVideo(want[0].VideoID) {
		t.Fatalf("failed to remove %s", want[0].VideoID)
	}
	it := c.Items[0]
	r.IngestVideo("cow-fresh-clip", it.Render(c.Opts.Synth), descriptorOf(c, it))
	r.BuildSocial()

	if view.Len() != wantLen {
		t.Fatalf("frozen view Len changed: %d -> %d", wantLen, view.Len())
	}
	if _, ok := view.Record("cow-fresh-clip"); ok {
		t.Fatal("ingested clip leaked into frozen view")
	}
	got := view.RecommendID(src, 10)
	if len(got) != len(want) {
		t.Fatalf("frozen view result count changed: %d -> %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frozen view rank %d changed: %+v -> %+v", i, want[i], got[i])
		}
	}

	// The recommender itself sees the new world.
	if r.Len() != wantLen { // -1 removed, +1 ingested
		t.Fatalf("recommender Len = %d, want %d", r.Len(), wantLen)
	}
	if _, ok := r.Record(want[0].VideoID); ok {
		t.Fatal("removed clip still in recommender")
	}
	if _, ok := r.Record("cow-fresh-clip"); !ok {
		t.Fatal("ingested clip missing from recommender")
	}
}

// Freeze is O(1): a second Freeze with no intervening mutation returns the
// same view; a mutation then swaps in a clone.
func TestFreezeReturnsSameViewUntilMutation(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	v1 := r.Freeze()
	if v2 := r.Freeze(); v2 != v1 {
		t.Fatal("Freeze without mutation returned a different view")
	}
	r.ApplyUpdates(map[string][]string{c.Queries[0].Sources[0]: {"someone-new"}})
	if v3 := r.Freeze(); v3 == v1 {
		t.Fatal("Freeze after mutation returned the stale view")
	}
}
