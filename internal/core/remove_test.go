package core

import (
	"testing"
)

func TestRemoveVideoBasics(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	victim := r.state.order[2]
	before := r.Len()
	if !r.RemoveVideo(victim) {
		t.Fatal("RemoveVideo returned false for existing id")
	}
	if r.RemoveVideo(victim) {
		t.Fatal("double remove succeeded")
	}
	if r.Len() != before-1 {
		t.Errorf("Len = %d, want %d", r.Len(), before-1)
	}
	if r.Tombstones() != 1 {
		t.Errorf("Tombstones = %d, want 1", r.Tombstones())
	}
	// The removed video never appears in results.
	for _, id := range r.state.order[:3] {
		for _, res := range r.RecommendID(id, r.Len()) {
			if res.VideoID == victim {
				t.Fatalf("removed video %s recommended for %s", victim, id)
			}
		}
	}
}

func TestRemoveThenBuildCompacts(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	victim := r.state.order[0]
	sigCountBefore := 0
	if rec, ok := r.Record(victim); ok {
		sigCountBefore = len(rec.Series)
	}
	lsbBefore := r.state.lsb.Len()
	r.RemoveVideo(victim)
	r.BuildSocial()
	if r.Tombstones() != 0 {
		t.Errorf("Tombstones after Build = %d, want 0", r.Tombstones())
	}
	if got := r.state.lsb.Len(); got != lsbBefore-sigCountBefore {
		t.Errorf("LSB entries = %d, want %d", got, lsbBefore-sigCountBefore)
	}
	// Still answers queries.
	if res := r.RecommendID(r.state.order[0], 5); len(res) == 0 {
		t.Error("no recommendations after compaction")
	}
}

func TestRemoveUnbuiltRecommender(t *testing.T) {
	r := NewRecommender(DefaultOptions())
	if r.RemoveVideo("nope") {
		t.Error("remove on empty succeeded")
	}
}
