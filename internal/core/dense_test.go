package core

import (
	"context"
	"sort"
	"testing"

	"videorec/internal/signature"
	"videorec/internal/social"
)

// referenceCandidates recomputes candidate generation (steps 1–2) with the
// straightforward map-based pipeline the dense path replaced: the
// inverted-file union as a scan over every record's vector into a string map,
// social ranking by full sort, and the LCP walk deduplicated through the map.
// The returned set excludes the excluded ids, like gather's merged list.
func referenceCandidates(v *View, q Query, exclude ...string) map[string]bool {
	opts := v.Options()
	useSocial := !opts.ContentWeightOnly
	useContent := !opts.SocialOnly
	excl := map[string]bool{}
	for _, id := range exclude {
		excl[id] = true
	}
	var qvec social.Vector
	if useSocial && opts.Mode != ModeExact {
		qvec = social.Vectorize(q.Desc, v.lookupFunc(), v.part.Dim)
	}
	candidates := map[string]bool{}
	if opts.FullScan || (opts.Mode == ModeExact && useSocial) {
		for _, id := range v.order {
			candidates[id] = true
		}
	} else {
		if useSocial {
			// Union = every live video sharing a non-zero dimension with the
			// query vector; keep the CandidateLimit best by (s̃J desc, id asc).
			// Excluded ids still occupy selection slots.
			type scored struct {
				id string
				s  float64
			}
			var cands []scored
			for _, id := range v.order {
				rec := v.record(id)
				inUnion := false
				for d, x := range qvec {
					if x > 0 && d < len(rec.Vec) && rec.Vec[d] > 0 {
						inUnion = true
						break
					}
				}
				if inUnion {
					cands = append(cands, scored{id, social.ApproxJaccard(qvec, rec.Vec)})
				}
			}
			sort.Slice(cands, func(a, b int) bool {
				if cands[a].s != cands[b].s {
					return cands[a].s > cands[b].s
				}
				return cands[a].id < cands[b].id
			})
			if len(cands) > opts.CandidateLimit {
				cands = cands[:opts.CandidateLimit]
			}
			for _, c := range cands {
				candidates[c.id] = true
			}
		}
		if useContent {
			w := v.lsb.NewWalker(q.Series)
			added := 0
			for pops := 0; pops < opts.ContentProbe; pops++ {
				e, _, ok := w.Next()
				if !ok {
					break
				}
				id := v.intern.ids[e.Video]
				if v.tombstones.Has(e.Video) || candidates[id] {
					continue
				}
				candidates[id] = true
				added++
				if added >= 2*opts.CandidateLimit {
					break
				}
			}
		}
	}
	for id := range excl {
		delete(candidates, id)
	}
	return candidates
}

// referenceRecommend scores the reference candidate set directly — uncompiled
// κJ, mode-appropriate social relevance, Equation 9 fusion — and ranks by a
// full sort under (score desc, id asc). It is the executable specification
// the dense pipeline (bitset candidates, k-way posting merge, heap walker,
// pooled scratch, heap top-K) must reproduce bit for bit.
func referenceRecommend(v *View, q Query, topK int, exclude ...string) []Result {
	opts := v.Options()
	useSocial := !opts.ContentWeightOnly
	useContent := !opts.SocialOnly
	var qvec social.Vector
	if useSocial && opts.Mode != ModeExact {
		qvec = social.Vectorize(q.Desc, v.lookupFunc(), v.part.Dim)
	}
	ids := make([]string, 0, 64)
	for id := range referenceCandidates(v, q, exclude...) {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	results := make([]Result, 0, len(ids))
	for _, id := range ids {
		rec := v.record(id)
		var content, soc float64
		if useContent {
			content = signature.KJ(q.Series, rec.Series, opts.MatchThreshold)
		}
		if useSocial {
			soc = v.socialRelevanceRec(q, qvec, rec)
		}
		results = append(results, Result{VideoID: id, Score: v.fuse(content, soc), Content: content, Social: soc})
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Score != results[b].Score {
			return results[a].Score > results[b].Score
		}
		return results[a].VideoID < results[b].VideoID
	})
	if len(results) > topK {
		results = results[:topK]
	}
	return results
}

// TestDenseRecommendMatchesReference proves the dense-ID rewrite is a pure
// representation change: across every mode, candidate policy and worker
// count, Recommend must return rankings bit-identical to the map-based
// reference pipeline — same ids, same fused scores, same component
// relevances, same order.
func TestDenseRecommendMatchesReference(t *testing.T) {
	const topK = 10
	variants := []struct {
		name   string
		mutate func(*Options)
	}{
		{"exact", func(o *Options) { o.Mode = ModeExact }},
		{"sar", func(o *Options) { o.Mode = ModeSAR }},
		{"sarhash", func(o *Options) { o.Mode = ModeSARHash }},
		{"sarhash-serial", func(o *Options) { o.Mode = ModeSARHash; o.RefineWorkers = 1 }},
		{"sarhash-fullscan", func(o *Options) { o.Mode = ModeSARHash; o.FullScan = true }},
		{"content-only", func(o *Options) { o.Mode = ModeSARHash; o.ContentWeightOnly = true }},
		{"social-only", func(o *Options) { o.Mode = ModeSARHash; o.SocialOnly = true }},
	}
	for _, tc := range variants {
		t.Run(tc.name, func(t *testing.T) {
			v := buildGolden(t, tc.mutate)
			ids := v.SortedIDs()
			if len(ids) > 8 {
				ids = ids[:8]
			}
			for _, id := range ids {
				q, ok := v.QueryFor(id)
				if !ok {
					t.Fatalf("missing record %s", id)
				}
				got := v.Recommend(q, topK, id)
				want := referenceRecommend(v, q, topK, id)
				if !resultsEqual(got, want) {
					t.Fatalf("query %s: dense pipeline diverged from reference\ndense:     %+v\nreference: %+v", id, got, want)
				}
				if len(got) == 0 {
					t.Fatalf("query %s returned no results", id)
				}
			}
		})
	}
}

// gatherSet runs the production gather and returns the merged candidate list
// as a string set.
func gatherSet(t *testing.T, v *View, q Query, exclude ...string) map[string]bool {
	t.Helper()
	qs := v.getScratch()
	defer v.putScratch(qs)
	v.resolveExcludes(qs, exclude)
	if _, _, err := v.gather(context.Background(), q, qs); err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, i := range qs.merged {
		out[v.intern.ids[i]] = true
	}
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestGatherMatchesReferenceUnderMutation is the candidate-set property test:
// through removals, re-ingestion of a removed id (which revives its dense
// slot while its tombstone persists until compaction) and incremental updates
// (which can grow the inverted files), the dense k-way-merge gather must
// return exactly the candidate set of the map-based reference — including
// exclusion handling.
func TestGatherMatchesReferenceUnderMutation(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)

	check := func(stage string) {
		v := r.Freeze()
		ids := v.SortedIDs()
		probe := ids
		if len(probe) > 6 {
			probe = probe[:6]
		}
		for _, id := range probe {
			q, ok := v.QueryFor(id)
			if !ok {
				t.Fatalf("%s: missing record %s", stage, id)
			}
			got := gatherSet(t, v, q, id)
			want := referenceCandidates(v, q, id)
			if !sameSet(got, want) {
				t.Fatalf("%s: query %s gather set diverged\ndense:     %d candidates\nreference: %d candidates", stage, id, len(got), len(want))
			}
			// And with no exclusions at all.
			got = gatherSet(t, v, q)
			want = referenceCandidates(v, q)
			if !sameSet(got, want) {
				t.Fatalf("%s: query %s (no exclude) gather set diverged", stage, id)
			}
		}
	}

	check("fresh build")

	// Remove a few videos: postings vanish immediately, tombstones filter the
	// stale LSB entries.
	all := r.SortedIDs()
	removed := []string{all[1], all[3], all[5]}
	for _, id := range removed {
		if !r.RemoveVideo(id) {
			t.Fatalf("RemoveVideo(%s) = false", id)
		}
	}
	check("after removals")

	// Re-ingest one removed id: it reclaims its dense slot; the tombstone
	// stays until the next BuildSocial, so only its fresh inverted postings
	// (added on the next build) make it a candidate.
	rec0, _ := r.Record(all[0])
	r.IngestSeries(removed[0], rec0.Series, social.NewDescriptor("revived-owner", c.Users[0], c.Users[1]))
	r.BuildSocial()
	check("after re-ingest and rebuild")

	// Incremental updates touch dimensions and can mint new ones (growing
	// the inverted files).
	target := r.SortedIDs()[0]
	r.ApplyUpdates(map[string][]string{
		target: {"new-user-a", "new-user-b", c.Users[2]},
	})
	check("after ApplyUpdates")
}

// TestGatherCandidatesZeroAlloc pins warm-path candidate gathering — query
// vectorization, posting-list union, social top-K selection, the LCP walk
// and the merged-list build — to zero allocations per query.
func TestGatherCandidatesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	v := buildGolden(t, nil)
	ids := v.SortedIDs()
	q, ok := v.QueryFor(ids[0])
	if !ok {
		t.Fatal("missing record")
	}
	ctx := context.Background()
	// Warm the pooled scratch to its high-water mark across several queries.
	for _, id := range ids {
		wq, _ := v.QueryFor(id)
		if _, err := v.GatherCandidates(ctx, wq, id); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := v.GatherCandidates(ctx, q, ids[0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("GatherCandidates allocates %.1f/op warm, want 0", allocs)
	}
}

// TestInternSharedAcrossClones verifies the copy-on-write id table: clones
// share the intern table until a genuinely new id is minted, published views
// keep their table intact, and re-ingesting known ids never copies.
func TestInternSharedAcrossClones(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	v1 := r.Freeze()
	tab := v1.intern

	// Mutation that mints nothing: table stays shared.
	target := r.SortedIDs()[0]
	rec, _ := r.Record(target)
	r.IngestSeries(target, rec.Series, rec.Desc)
	if r.state.intern != tab {
		t.Error("re-ingesting a known id copied the intern table")
	}

	// Minting a new id copies the table; the published view keeps the old one.
	v2 := r.Freeze()
	r.IngestSeries("brand-new-video", rec.Series, rec.Desc)
	if r.state.intern == tab {
		t.Error("minting a new id did not copy the shared intern table")
	}
	if v1.intern != tab || v2.intern != tab {
		t.Error("published views lost their intern table")
	}
	if _, ok := v1.intern.idx["brand-new-video"]; ok {
		t.Error("new id leaked into the frozen view's table")
	}
	if i, ok := r.state.intern.idx[target]; !ok || r.state.intern.ids[i] != target {
		t.Error("copied table lost an existing id")
	}
}

// TestDenseIndexStableAcrossRemoveReingest verifies index stability: a
// removed id reclaims the same dense slot on re-ingest.
func TestDenseIndexStableAcrossRemoveReingest(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	id := r.SortedIDs()[2]
	before, ok := r.state.intern.idx[id]
	if !ok {
		t.Fatal("id not interned")
	}
	rec, _ := r.Record(id)
	series, desc := rec.Series, rec.Desc
	if !r.RemoveVideo(id) {
		t.Fatal("remove failed")
	}
	if r.state.recs[before] != nil {
		t.Fatal("dense slot not cleared on removal")
	}
	r.IngestSeries(id, series, desc)
	after := r.state.intern.idx[id]
	if after != before {
		t.Errorf("dense index changed across remove/re-ingest: %d -> %d", before, after)
	}
	if r.state.recs[after] == nil {
		t.Error("dense slot not repopulated")
	}
}

// TestVideosPerDimMatchesPostings cross-checks the posting-list-length report
// against a recount from the records themselves.
func TestVideosPerDimMatchesPostings(t *testing.T) {
	v := buildGolden(t, nil)
	got := v.VideosPerDim()
	want := make([]int, v.part.Dim)
	for _, rec := range v.recs {
		if rec == nil {
			continue
		}
		for d, x := range rec.Vec {
			if x > 0 && d < len(want) {
				want[d]++
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("VideosPerDim len = %d, want %d", len(got), len(want))
	}
	for d := range got {
		if got[d] != want[d] {
			t.Errorf("dim %d: VideosPerDim = %d, recount = %d", d, got[d], want[d])
		}
	}
}

func BenchmarkGatherCandidates(b *testing.B) {
	for _, mode := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"social", func(o *Options) { o.SocialOnly = true }},
		{"content", func(o *Options) { o.ContentWeightOnly = true }},
		{"fused", nil},
	} {
		b.Run(mode.name, func(b *testing.B) {
			v := buildGolden(b, mode.mutate)
			q, _ := v.QueryFor(v.SortedIDs()[0])
			ctx := context.Background()
			if _, err := v.GatherCandidates(ctx, q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.GatherCandidates(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
