package core

import (
	"context"
	"testing"
	"time"
)

// withSoARefine runs f under the given SoA-path selection and restores the
// default afterwards.
func withSoARefine(enabled bool, f func()) {
	prev := soaRefine
	soaRefine = enabled
	defer func() { soaRefine = prev }()
	f()
}

// batchVariants are the seven mode variants every batched golden claim is
// checked against: the six of the compiled-refine golden plus social-only.
var batchVariants = []struct {
	name   string
	mutate func(*Options)
}{
	{"exact", func(o *Options) { o.Mode = ModeExact }},
	{"sar", func(o *Options) { o.Mode = ModeSAR }},
	{"sarhash", func(o *Options) { o.Mode = ModeSARHash }},
	{"sarhash-serial", func(o *Options) { o.Mode = ModeSARHash; o.RefineWorkers = 1 }},
	{"sarhash-fullscan", func(o *Options) { o.Mode = ModeSARHash; o.FullScan = true }},
	{"content-only", func(o *Options) { o.Mode = ModeSARHash; o.ContentWeightOnly = true }},
	{"social-only", func(o *Options) { o.Mode = ModeSARHash; o.SocialOnly = true }},
}

func goldenQueries(t *testing.T, v *View, n int) []string {
	t.Helper()
	ids := v.SortedIDs()
	if len(ids) > n {
		ids = ids[:n]
	}
	if len(ids) == 0 {
		t.Fatal("empty fixture")
	}
	return ids
}

// Batched execution must be a pure scheduling change: for every mode variant
// the per-query answers of one RecommendBatch call — results, scores,
// component relevances, degraded flags — must be bit-identical to serial
// RecommendCtx calls for the same queries, both through the SoA store and
// through the per-record fallback.
func TestBatchGolden(t *testing.T) {
	const topK = 10
	for _, tc := range batchVariants {
		t.Run(tc.name, func(t *testing.T) {
			v := buildGolden(t, tc.mutate)
			ids := goldenQueries(t, v, 8)
			items := make([]BatchItem, 0, len(ids))
			serial := make([][]Result, 0, len(ids))
			for _, id := range ids {
				q, ok := v.QueryFor(id)
				if !ok {
					t.Fatalf("missing record %s", id)
				}
				items = append(items, BatchItem{Query: q, TopK: topK, Exclude: []string{id}})
				res, info, err := v.RecommendCtx(context.Background(), q, topK, id)
				if err != nil {
					t.Fatalf("serial %s: %v", id, err)
				}
				if info.Degraded {
					t.Fatalf("serial %s unexpectedly degraded", id)
				}
				serial = append(serial, res)
			}
			for _, soa := range []bool{true, false} {
				var outs []BatchOut
				withSoARefine(soa, func() { outs = v.RecommendBatch(context.Background(), items) })
				for i, out := range outs {
					if out.Err != nil {
						t.Fatalf("soa=%v batch item %s: %v", soa, ids[i], out.Err)
					}
					if out.Info.Degraded {
						t.Fatalf("soa=%v batch item %s unexpectedly degraded", soa, ids[i])
					}
					if !resultsEqual(out.Results, serial[i]) {
						t.Fatalf("soa=%v query %s: batched and serial rankings differ\nbatched: %+v\nserial:  %+v",
							soa, ids[i], out.Results, serial[i])
					}
					if len(out.Results) == 0 {
						t.Fatalf("query %s returned no results", ids[i])
					}
				}
			}
		})
	}
}

// A batch with cancelled members must settle exactly those members with
// their own context errors while every survivor stays bit-identical to its
// serial answer — a cancelled query never poisons its cohort.
func TestBatchGoldenMidBatchCancellation(t *testing.T) {
	const topK = 10
	for _, tc := range batchVariants {
		t.Run(tc.name, func(t *testing.T) {
			v := buildGolden(t, tc.mutate)
			ids := goldenQueries(t, v, 8)
			dead, cancel := context.WithCancel(context.Background())
			cancel()
			items := make([]BatchItem, 0, len(ids))
			for i, id := range ids {
				q, _ := v.QueryFor(id)
				it := BatchItem{Query: q, TopK: topK, Exclude: []string{id}}
				if i%3 == 1 {
					it.Ctx = dead
				}
				items = append(items, it)
			}
			outs := v.RecommendBatch(context.Background(), items)
			for i, out := range outs {
				if i%3 == 1 {
					if out.Err != context.Canceled {
						t.Fatalf("cancelled item %s: err = %v, want context.Canceled", ids[i], out.Err)
					}
					if len(out.Results) != 0 {
						t.Fatalf("cancelled item %s returned results", ids[i])
					}
					continue
				}
				if out.Err != nil {
					t.Fatalf("survivor %s: %v", ids[i], out.Err)
				}
				res, _, err := v.RecommendCtx(context.Background(), items[i].Query, topK, ids[i])
				if err != nil {
					t.Fatalf("serial %s: %v", ids[i], err)
				}
				if !resultsEqual(out.Results, res) {
					t.Fatalf("survivor %s differs from serial after cohort cancellation", ids[i])
				}
			}
		})
	}
}

// A batched item inside its degrade margin must produce exactly the serial
// degraded answer — the coarse social ranking — while full-deadline cohort
// members still get their exact refined answers.
func TestBatchGoldenDegraded(t *testing.T) {
	const topK = 10
	v := buildGolden(t, func(o *Options) {
		o.Mode = ModeSARHash
		o.DegradeMargin = time.Hour // any finite deadline is "near" — deterministic degrade
	})
	ids := goldenQueries(t, v, 6)
	nearCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	items := make([]BatchItem, 0, len(ids))
	for i, id := range ids {
		q, _ := v.QueryFor(id)
		it := BatchItem{Query: q, TopK: topK, Exclude: []string{id}}
		if i%2 == 0 {
			it.Ctx = nearCtx
		}
		items = append(items, it)
	}
	outs := v.RecommendBatch(context.Background(), items)
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("item %s: %v", ids[i], out.Err)
		}
		var wantCtx context.Context = context.Background()
		if items[i].Ctx != nil {
			wantCtx = items[i].Ctx
		}
		res, info, err := v.RecommendCtx(wantCtx, items[i].Query, topK, ids[i])
		if err != nil {
			t.Fatalf("serial %s: %v", ids[i], err)
		}
		wantDegraded := i%2 == 0
		if info.Degraded != wantDegraded || out.Info.Degraded != wantDegraded {
			t.Fatalf("item %s: degraded flags serial=%v batch=%v, want %v", ids[i], info.Degraded, out.Info.Degraded, wantDegraded)
		}
		if !resultsEqual(out.Results, res) {
			t.Fatalf("item %s: batched %v-degraded answer differs from serial\nbatched: %+v\nserial:  %+v",
				ids[i], wantDegraded, out.Results, res)
		}
	}
}

// Duplicate queries inside one batch are independent items and must each get
// the full, identical answer (engine-level dedup maps them to one item; the
// core path must stay correct either way).
func TestBatchGoldenDuplicates(t *testing.T) {
	v := buildGolden(t, nil)
	id := goldenQueries(t, v, 1)[0]
	q, _ := v.QueryFor(id)
	items := []BatchItem{
		{Query: q, TopK: 10, Exclude: []string{id}},
		{Query: q, TopK: 10, Exclude: []string{id}},
		{Query: q, TopK: 5, Exclude: []string{id}},
	}
	outs := v.RecommendBatch(context.Background(), items)
	serial10, _, _ := v.RecommendCtx(context.Background(), q, 10, id)
	serial5, _, _ := v.RecommendCtx(context.Background(), q, 5, id)
	if !resultsEqual(outs[0].Results, serial10) || !resultsEqual(outs[1].Results, serial10) {
		t.Fatal("duplicate items differ from serial answer")
	}
	if !resultsEqual(outs[2].Results, serial5) {
		t.Fatal("smaller-K duplicate differs from serial answer")
	}
}

// The warm batched serving loop — recycled outs, pooled chunk scratch — must
// not allocate: the SoA refinement path exists so steady-state serving moves
// no bytes. Skipped under -race (detector bookkeeping allocates).
func TestBatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	v := buildGolden(t, nil)
	ids := goldenQueries(t, v, 8)
	items := make([]BatchItem, 0, len(ids))
	for _, id := range ids {
		q, _ := v.QueryFor(id)
		items = append(items, BatchItem{Query: q, TopK: 10, Exclude: []string{id}})
	}
	outs := make([]BatchOut, len(items))
	ctx := context.Background()
	// Warm the pooled scratch and the per-out result slots to their
	// steady-state high-water marks.
	for i := 0; i < 3; i++ {
		v.RecommendBatchInto(ctx, items, outs)
	}
	allocs := testing.AllocsPerRun(50, func() {
		v.RecommendBatchInto(ctx, items, outs)
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch pass allocates %.1f/op, want 0", allocs)
	}
}

// Chunking: a batch larger than MaxSharedGather must still answer every item
// exactly (items beyond the first chunk run in later shared passes).
func TestBatchGoldenChunking(t *testing.T) {
	v := buildGolden(t, nil)
	ids := v.SortedIDs()
	items := make([]BatchItem, 0, MaxSharedGather+7)
	for i := 0; i < MaxSharedGather+7; i++ {
		id := ids[i%len(ids)]
		q, _ := v.QueryFor(id)
		items = append(items, BatchItem{Query: q, TopK: 10, Exclude: []string{id}})
	}
	outs := v.RecommendBatch(context.Background(), items)
	for i, out := range outs {
		id := ids[i%len(ids)]
		if out.Err != nil {
			t.Fatalf("item %d (%s): %v", i, id, out.Err)
		}
		res, _, _ := v.RecommendCtx(context.Background(), items[i].Query, 10, id)
		if !resultsEqual(out.Results, res) {
			t.Fatalf("item %d (%s) differs from serial", i, id)
		}
	}
}
