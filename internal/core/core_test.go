package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"videorec/internal/dataset"
	"videorec/internal/social"
	"videorec/internal/video"
)

// buildSmall ingests a small synthetic collection and returns the
// recommender plus the collection for ground truth.
func buildSmall(t testing.TB, mode Mode) (*Recommender, *dataset.Collection) {
	t.Helper()
	o := dataset.DefaultOptions()
	o.Hours = 4
	o.Users = 150
	o.Seed = 11
	c := dataset.Generate(o)
	opts := DefaultOptions()
	opts.Mode = mode
	opts.K = 12
	r := NewRecommender(opts)
	for _, it := range c.Items {
		v := it.Render(o.Synth)
		r.IngestVideo(it.ID, v, descriptorOf(c, it))
	}
	r.BuildSocial()
	return r, c
}

func descriptorOf(c *dataset.Collection, it *dataset.Item) social.Descriptor {
	var users []string
	for _, cm := range it.Comments {
		if cm.Month < c.Opts.MonthsSource {
			users = append(users, cm.User)
		}
	}
	return social.NewDescriptor(it.Owner, users...)
}

func TestModeString(t *testing.T) {
	if ModeExact.String() != "CSF" || ModeSAR.String() != "CSF-SAR" || ModeSARHash.String() != "CSF-SAR-H" {
		t.Error("mode names wrong")
	}
	if Mode(99).String() != "Mode(99)" {
		t.Error("unknown mode formatting")
	}
}

func TestIngestAndLen(t *testing.T) {
	r := NewRecommender(DefaultOptions())
	rng := rand.New(rand.NewSource(1))
	v := video.Synthesize("a", 1, video.DefaultSynthOptions(), rng)
	r.IngestVideo("a", v, social.NewDescriptor("owner", "u1"))
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	rec, ok := r.Record("a")
	if !ok || len(rec.Series) == 0 {
		t.Fatal("record missing or empty series")
	}
	// Re-ingesting replaces, not duplicates.
	r.IngestVideo("a", v, social.NewDescriptor("owner"))
	if r.Len() != 1 {
		t.Errorf("Len after re-ingest = %d", r.Len())
	}
}

func TestRecommendPanicsWithoutBuild(t *testing.T) {
	r := NewRecommender(DefaultOptions()) // ModeSARHash
	rng := rand.New(rand.NewSource(1))
	v := video.Synthesize("a", 1, video.DefaultSynthOptions(), rng)
	desc := social.NewDescriptor("o", "u")
	r.IngestVideo("a", v, desc)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Recommend(Query{Desc: desc}, 5)
}

func TestRecommendExcludesQueryVideo(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	id := r.state.order[0]
	for _, res := range r.RecommendID(id, 10) {
		if res.VideoID == id {
			t.Fatalf("query video %s recommended to itself", id)
		}
	}
}

func TestRecommendTopKOrderedAndBounded(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	res := r.RecommendID(r.state.order[1], 7)
	if len(res) > 7 {
		t.Fatalf("returned %d > topK", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("results not sorted: %g after %g", res[i].Score, res[i-1].Score)
		}
	}
	for _, x := range res {
		if x.Score < 0 || x.Score > 1 {
			t.Errorf("score %g out of [0,1]", x.Score)
		}
	}
}

func TestRecommendFindsNearDuplicate(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	// Pick a dup whose original exists; the original should rank well for
	// the dup's query under content-heavy fusion.
	opts := r.Options()
	_ = opts
	var dup *dataset.Item
	for _, it := range c.Items {
		if it.DupOf() != "" {
			dup = it
			break
		}
	}
	if dup == nil {
		t.Skip("no dup in collection")
	}
	// The original must rank among the top content matches for the dup's
	// query (the "matched videos" half of the paper's story); with shared
	// pool footage other same-topic clips may also score, so check the
	// content component specifically.
	q, _ := r.QueryFor(dup.ID)
	contentOf := map[string]float64{}
	res := r.Recommend(q, r.Len(), dup.ID)
	for _, x := range res {
		contentOf[x.VideoID] = x.Content
	}
	better := 0
	for id, cs := range contentOf {
		if id != dup.DupOf() && cs > contentOf[dup.DupOf()] {
			better++
		}
	}
	if contentOf[dup.DupOf()] <= 0 {
		t.Fatalf("original %s has zero content relevance for dup %s", dup.DupOf(), dup.ID)
	}
	if better > 5 {
		t.Errorf("original %s outranked by %d videos on content", dup.DupOf(), better)
	}
}

func TestSARModesAgreeOnScores(t *testing.T) {
	// ModeSAR and ModeSARHash must produce identical rankings: they compute
	// the same s̃J through different dictionaries.
	rs, c := buildSmall(t, ModeSAR)
	rh, _ := buildSmall(t, ModeSARHash)
	for _, q := range c.Queries {
		src := q.Sources[0]
		a := rs.RecommendID(src, 10)
		b := rh.RecommendID(src, 10)
		if len(a) != len(b) {
			t.Fatalf("lengths differ for %s: %d vs %d", src, len(a), len(b))
		}
		for i := range a {
			if a[i].VideoID != b[i].VideoID || a[i].Score != b[i].Score {
				t.Fatalf("rank %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

func TestExactModeScoresAllVideos(t *testing.T) {
	r, _ := buildSmall(t, ModeExact)
	id := r.state.order[0]
	res := r.RecommendID(id, r.Len())
	if len(res) != r.Len()-1 {
		t.Errorf("exact mode refined %d videos, want %d", len(res), r.Len()-1)
	}
}

func TestContentOnlyAndSocialOnly(t *testing.T) {
	o := dataset.DefaultOptions()
	o.Hours = 3
	o.Users = 100
	o.Seed = 5
	c := dataset.Generate(o)

	copts := DefaultOptions()
	copts.ContentWeightOnly = true
	cr := NewRecommender(copts)
	sopts := DefaultOptions()
	sopts.SocialOnly = true
	sopts.K = 12
	sr := NewRecommender(sopts)
	for _, it := range c.Items {
		v := it.Render(o.Synth)
		d := descriptorOf(c, it)
		cr.IngestVideo(it.ID, v, d)
		sr.IngestVideo(it.ID, v, d)
	}
	cr.BuildSocial()
	sr.BuildSocial()

	src := c.Queries[0].Sources[0]
	for _, res := range cr.RecommendID(src, 5) {
		if res.Social != 0 {
			t.Errorf("CR result has social component %g", res.Social)
		}
		if res.Score != res.Content {
			t.Errorf("CR score %g != content %g", res.Score, res.Content)
		}
	}
	for _, res := range sr.RecommendID(src, 5) {
		if res.Content != 0 {
			t.Errorf("SR result has content component %g", res.Content)
		}
		if res.Score != res.Social {
			t.Errorf("SR score %g != social %g", res.Score, res.Social)
		}
	}
}

func TestNaiveJaccardMatchesLinear(t *testing.T) {
	f := func(seedA, seedB uint16) bool {
		mk := func(seed uint16) social.Descriptor {
			rng := rand.New(rand.NewSource(int64(seed)))
			var us []string
			for i := 0; i < rng.Intn(12); i++ {
				us = append(us, fmt.Sprintf("u%d", rng.Intn(15)))
			}
			return social.NewDescriptor("", us...)
		}
		a, b := mk(seedA), mk(seedB)
		naive := naiveJaccard(a, b)
		linear := social.Jaccard(a, b)
		return naive == linear
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyUpdatesGrowsDescriptors(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	target := r.state.order[0]
	before := r.state.record(target).Desc.Len()
	newUsers := []string{"brand-new-1", "brand-new-2", c.Users[0]}
	rep := r.ApplyUpdates(map[string][]string{target: newUsers})
	after := r.state.record(target).Desc.Len()
	if after <= before {
		t.Errorf("descriptor did not grow: %d -> %d", before, after)
	}
	if rep.VideosRevectorized == 0 {
		t.Error("no videos re-vectorized")
	}
	if rep.Maintenance.NewConnections == 0 {
		t.Error("no connections derived from the comments")
	}
}

func TestApplyUpdatesKeepsRecommendationsWorking(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	// Replay the test period's comments month by month.
	months := c.Opts.MonthsSource
	for m := months; m < months+c.Opts.MonthsTest; m++ {
		batch := map[string][]string{}
		for _, it := range c.Items {
			for _, cm := range it.Comments {
				if cm.Month == m {
					batch[it.ID] = append(batch[it.ID], cm.User)
				}
			}
		}
		r.ApplyUpdates(batch)
	}
	res := r.RecommendID(c.Queries[0].Sources[0], 10)
	if len(res) == 0 {
		t.Fatal("no recommendations after updates")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results unsorted after updates")
		}
	}
}

func TestVideosPerDim(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	dims := r.VideosPerDim()
	if len(dims) != r.Partition().Dim {
		t.Fatalf("VideosPerDim len = %d, want %d", len(dims), r.Partition().Dim)
	}
	total := 0
	for _, n := range dims {
		total += n
	}
	if total == 0 {
		t.Error("all inverted files empty")
	}
}

func TestRecommendZeroK(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	if res := r.RecommendID(r.state.order[0], 0); res != nil {
		t.Errorf("topK=0 returned %v", res)
	}
}

func TestRecommendUnknownID(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	if res := r.RecommendID("no-such-video", 5); res != nil {
		t.Errorf("unknown id returned %v", res)
	}
}

func BenchmarkRecommendSARHash(b *testing.B) {
	r, c := buildSmall(b, ModeSARHash)
	src := c.Queries[0].Sources[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecommendID(src, 10)
	}
}

func BenchmarkRecommendExact(b *testing.B) {
	r, c := buildSmall(b, ModeExact)
	src := c.Queries[0].Sources[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecommendID(src, 10)
	}
}

func BenchmarkBuildSocial(b *testing.B) {
	r, _ := buildSmall(b, ModeSARHash)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.BuildSocial()
	}
}
