package core

import "videorec/internal/signature"

// soaStore is the structure-of-arrays view of every stored video's compiled
// signature series: one flat value array and one flat weight array for the
// whole collection, with per-signature Compiled headers subslicing them and
// per-video CompiledSeries headers addressed by dense index. Batched
// refinement iterates these contiguous arrays instead of chasing *Record →
// *CompiledSeries → per-signature slices scattered across the heap, so a
// batch streaming many candidates through the EMD kernel stays cache-line
// friendly.
//
// The store is an acceleration structure, never a source of truth: the
// headers carry exactly the values, weights, means and masses of the
// records' own CompiledSeries, so scoring through it is bit-identical to
// scoring through the records. It is built by installSocial (valid iff the
// view is built), shared copy-on-write across view clones like posting
// lists, and invalidated (set nil) by any mutation that changes the record
// set — IngestSeries, RemoveVideo — after which refinement falls back to the
// per-record layout until the next build.
type soaStore struct {
	series []signature.CompiledSeries // dense index → compiled header over the flat arrays
	v, w   []float64                  // flat cuboid value/weight storage
}

// buildSoA lays the compiled series of every live record out flat. Slots
// without a record (or without a compiled series) get an empty header, which
// κJ treats as relevance 0 — but such slots are never offered as candidates
// anyway.
func buildSoA(recs []*Record) *soaStore {
	cuboids, sigs := 0, 0
	for _, rec := range recs {
		if rec == nil || rec.Compiled == nil {
			continue
		}
		sigs += len(rec.Compiled.Sigs)
		for i := range rec.Compiled.Sigs {
			cuboids += len(rec.Compiled.Sigs[i].V)
		}
	}
	st := &soaStore{
		series: make([]signature.CompiledSeries, len(recs)),
		v:      make([]float64, 0, cuboids),
		w:      make([]float64, 0, cuboids),
	}
	flat := make([]signature.Compiled, 0, sigs)
	for idx, rec := range recs {
		if rec == nil || rec.Compiled == nil {
			continue
		}
		start := len(flat)
		for _, sig := range rec.Compiled.Sigs {
			vo := len(st.v)
			st.v = append(st.v, sig.V...)
			st.w = append(st.w, sig.W...)
			flat = append(flat, signature.Compiled{
				V:    st.v[vo:len(st.v):len(st.v)],
				W:    st.w[vo:len(st.w):len(st.w)],
				Mean: sig.Mean,
				Mass: sig.Mass,
				OK:   sig.OK,
			})
		}
		st.series[idx] = signature.CompiledSeries{Sigs: flat[start:len(flat):len(flat)]}
	}
	return st
}

// compiledFor resolves a candidate's compiled series for refinement: the SoA
// header when the store covers the index, the record's own otherwise.
func (st *soaStore) compiledFor(idx uint32, rec *Record) *signature.CompiledSeries {
	if st != nil && int(idx) < len(st.series) {
		return &st.series[idx]
	}
	return rec.Compiled
}
