package core

import (
	"context"
	"math/bits"
	"time"

	"videorec/internal/faults"
	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/topk"
)

// MaxSharedGather is the number of queries one shared candidate-generation
// pass covers: the per-dimension query-membership masks of the batched
// posting-list merge are single machine words, one bit per query. Larger
// batches are transparently processed in chunks of this size.
const MaxSharedGather = 64

// BatchItem is one query of a batched recommendation call. Ctx, when
// non-nil, carries the query's own deadline/cancellation; nil means the
// batch-level context governs it alone.
type BatchItem struct {
	Ctx     context.Context
	Query   Query
	TopK    int
	Exclude []string
}

// BatchOut is one query's answer from a batched call: exactly what
// RecommendCtx would have returned for the same query against the same view.
type BatchOut struct {
	Results []Result
	Info    RecommendInfo
	Err     error
}

// soaRefine selects whether batched refinement scores through the view's
// structure-of-arrays signature store (production default) or the per-record
// compiled series. Tests flip it to prove the two layouts produce
// bit-identical rankings; nothing else should touch it.
var soaRefine = true

// batchItemState is the per-query bookkeeping of one chunk: the query's
// pooled scratch, its cancellation channels, its effective deadline (the
// earlier of its own and the batch's), and its settlement status.
type batchItemState struct {
	qs          *queryScratch
	ctx         context.Context // the item's own context (bctx when none given)
	idone       <-chan struct{} // item ctx done channel (nil when ctx == bctx)
	sel         *topk.Selector[scoredCand]
	offers      int
	useContent  bool
	useSocial   bool
	deadline    time.Time
	hasDeadline bool
	skip        bool // settled (answered, failed, or empty); no further work
}

// batchScratch is the chunk-wide reusable state of a batched call, pooled
// per view: per-dimension query masks, the shared-merge cursors, the refine
// order permutation, one warm EMD scratch reused across every candidate of
// the batch, and the result selector feeding per-query top-K output buffers.
type batchScratch struct {
	states  []batchItemState
	dimMask []uint64   // dim → chunk-membership mask; all-zero between calls
	dims    []uint32   // dims with a nonzero mask, in first-touch order
	heads   [][]uint32 // posting-list cursors of the shared merge
	masks   []uint64   // membership mask per cursor
	order   []int      // refine order: earliest effective deadline first
	kj      signature.KJScratch
	resSel  *topk.Selector[Result]
}

func (bs *batchScratch) resultSelector() *topk.Selector[Result] {
	if bs.resSel == nil {
		bs.resSel = topk.New(0, worseResult)
	}
	return bs.resSel
}

// dead reports whether the item's own context or the batch context has been
// cancelled.
func (st *batchItemState) dead(gdone <-chan struct{}) bool {
	return ctxDone(st.idone) || ctxDone(gdone)
}

// failErr attributes a detected cancellation: the item's own context error
// wins (the caller maps it to the query, not the batch), the batch context's
// otherwise.
func (st *batchItemState) failErr(bctx context.Context) error {
	if err := st.ctx.Err(); err != nil {
		return err
	}
	if err := bctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// RecommendBatch answers every item against this view in one batched pass:
// candidate generation is shared across the batch (one merge over the
// touched posting lists, per-query membership masks) and refinement streams
// the structure-of-arrays signature store with one warm EMD scratch. Each
// item's answer is bit-identical to what RecommendCtx would return for the
// same query, deadline and view — batching changes cost, never results.
//
// bctx bounds the whole batch (a fan-out budget, the server's base context);
// each item's own Ctx additionally bounds just that item. A cancelled item
// settles with its own ctx error and drops out without disturbing its
// cohort. Items are refined earliest-effective-deadline first, and each
// item's degrade decision (Options.DegradeMargin) is made against its own
// effective deadline exactly as in serial serving.
func (v *View) RecommendBatch(bctx context.Context, items []BatchItem) []BatchOut {
	outs := make([]BatchOut, len(items))
	v.RecommendBatchInto(bctx, items, outs)
	return outs
}

// RecommendBatchInto is RecommendBatch writing into caller-owned output
// slots, reusing each out's Results capacity — the steady state of a warm
// serving loop allocates nothing. len(outs) must equal len(items).
func (v *View) RecommendBatchInto(bctx context.Context, items []BatchItem, outs []BatchOut) {
	if len(items) != len(outs) {
		panic("core: RecommendBatchInto items/outs length mismatch")
	}
	if bctx == nil {
		bctx = context.Background()
	}
	for start := 0; start < len(items); start += MaxSharedGather {
		end := start + MaxSharedGather
		if end > len(items) {
			end = len(items)
		}
		v.recommendChunk(bctx, items[start:end], outs[start:end])
	}
}

// settleBatchErr fails one item mid-batch: its answer becomes the attributed
// context error, its scratch goes back to the pool, and the rest of the
// chunk proceeds untouched.
func (v *View) settleBatchErr(st *batchItemState, out *BatchOut, bctx context.Context) {
	out.Results = out.Results[:0]
	out.Err = st.failErr(bctx)
	if st.qs != nil {
		v.putScratch(st.qs)
		st.qs = nil
	}
	st.skip = true
}

// recommendChunk runs one ≤MaxSharedGather-item chunk through gather and
// refinement.
func (v *View) recommendChunk(bctx context.Context, items []BatchItem, outs []BatchOut) {
	bs := v.batch.Get().(*batchScratch)
	gdone := bctx.Done()
	bDeadline, bHasDeadline := bctx.Deadline()

	if cap(bs.states) < len(items) {
		bs.states = make([]batchItemState, len(items))
	}
	states := bs.states[:len(items)]
	defer func() {
		for b := range states {
			if states[b].qs != nil {
				v.putScratch(states[b].qs)
			}
			states[b] = batchItemState{} // drop ctx/scratch references before pooling
		}
		v.batch.Put(bs)
	}()

	// Per-item setup: contexts, effective deadlines, exclusions, query
	// vectors — exactly the preamble RecommendCtx runs per query.
	for b := range items {
		it := &items[b]
		st := &states[b]
		out := &outs[b]
		out.Results = out.Results[:0]
		out.Info = RecommendInfo{}
		out.Err = nil
		*st = batchItemState{ctx: it.Ctx, skip: true}
		if st.ctx == nil {
			st.ctx = bctx
		} else if st.ctx != bctx {
			st.idone = st.ctx.Done()
		}
		if it.TopK <= 0 {
			continue // empty answer, matching RecommendCtx's nil result
		}
		if err := st.ctx.Err(); err != nil {
			out.Err = err
			continue
		}
		if err := bctx.Err(); err != nil {
			out.Err = err
			continue
		}
		st.skip = false
		st.deadline, st.hasDeadline = st.ctx.Deadline()
		if bHasDeadline && (!st.hasDeadline || bDeadline.Before(st.deadline)) {
			st.deadline, st.hasDeadline = bDeadline, true
		}
		st.useSocial = !v.opts.ContentWeightOnly
		st.useContent = !v.opts.SocialOnly
		st.qs = v.getScratch()
		v.resolveExcludes(st.qs, it.Exclude)
		if st.useSocial && v.opts.Mode != ModeExact {
			v.mustBuild()
			st.qs.qvec = social.VectorizeInto(st.qs.qvec, it.Query.Desc, v.look, v.part.Dim)
		}
	}

	v.gatherBatch(bctx, gdone, bs, items, states, outs)

	// Refine earliest-effective-deadline first: the deadline-nearest query
	// sets where in the batch degradation starts to bite, and every later
	// query re-checks its own margin at its own refine start. Insertion sort
	// over the index permutation — chunks are at most 64 items and the sort
	// must not allocate.
	order := bs.order[:0]
	for b := range states {
		if !states[b].skip {
			order = append(order, b)
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && deadlineBefore(&states[order[j]], &states[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	bs.order = order

	for _, b := range order {
		st := &states[b]
		it := &items[b]
		out := &outs[b]
		out.Info.Candidates = len(st.qs.merged)
		canDegrade := st.useContent && st.useSocial && v.opts.DegradeMargin > 0
		if canDegrade && st.hasDeadline && time.Until(st.deadline) < v.opts.DegradeMargin {
			v.finishCoarseBatch(bctx, st, it, out, bs, true)
			continue
		}
		results, err := v.refineBatchItem(bctx, st, it, bs)
		if err != nil {
			if canDegrade && err == context.DeadlineExceeded {
				// The deadline expired mid-refinement: the coarse answer is
				// still owed, computed without further polling (the serial
				// path's context.WithoutCancel).
				v.finishCoarseBatch(bctx, st, it, out, bs, false)
				continue
			}
			out.Results = out.Results[:0]
			out.Err = err
			continue
		}
		out.Results = topKResultsInto(out.Results, results, it.TopK, bs.resultSelector())
	}
}

// deadlineBefore orders items for refinement: deadlines before no-deadline,
// earlier deadlines first. Strict, so the insertion sort is stable and the
// order deterministic.
func deadlineBefore(a, b *batchItemState) bool {
	if !a.hasDeadline {
		return false
	}
	if !b.hasDeadline {
		return true
	}
	return a.deadline.Before(b.deadline)
}

// gatherBatch fills every active item's candidate set — the batched steps
// 1–2 of the Figure 6 KNN search. The social union runs ONCE for the whole
// chunk: every posting list touched by any query enters a shared ascending
// merge carrying a per-dimension membership mask, and each emitted candidate
// is offered to exactly the queries whose dimensions contained it — per
// query, the identical candidates in the identical (ascending dense index)
// order as its private Union, so selector outcomes are bit-identical to
// serial gathering. Content expansion stays per-query (the LCP walk order
// is query-specific), as does the full-scan path.
func (v *View) gatherBatch(bctx context.Context, gdone <-chan struct{}, bs *batchScratch, items []BatchItem, states []batchItemState, outs []BatchOut) {
	if v.opts.FullScan || (v.opts.Mode == ModeExact && !v.opts.ContentWeightOnly) {
		// Unoptimized CSF / exhaustive ranking: every stored video, per item.
		for b := range states {
			st := &states[b]
			if st.skip {
				continue
			}
			for i, rec := range v.recs {
				if i%cancelCheckStride == 0 && st.dead(gdone) {
					v.settleBatchErr(st, &outs[b], bctx)
					break
				}
				if rec == nil || st.qs.excl.Has(uint32(i)) {
					continue
				}
				st.qs.merged = append(st.qs.merged, uint32(i))
			}
		}
		return
	}

	for b := range states {
		if !states[b].skip {
			states[b].qs.cand.Grow(len(v.intern.ids))
		}
	}
	if !v.opts.ContentWeightOnly {
		v.gatherBatchSocial(bctx, gdone, bs, states, outs)
	}
	if !v.opts.SocialOnly {
		v.gatherBatchContent(bctx, gdone, items, states, outs)
	}
}

// gatherBatchSocial is the shared step-1 pass described on gatherBatch.
func (v *View) gatherBatchSocial(bctx context.Context, gdone <-chan struct{}, bs *batchScratch, states []batchItemState, outs []BatchOut) {
	dims := v.inv.Dims()
	bs.dimMask = growZeroed(bs.dimMask, dims)
	for b := range states {
		st := &states[b]
		if st.skip {
			continue
		}
		st.sel = st.qs.selector(v, v.opts.CandidateLimit)
		for d, x := range st.qs.qvec {
			if x <= 0 || d >= dims || v.inv.DimLen(d) == 0 {
				continue
			}
			if bs.dimMask[d] == 0 {
				bs.dims = append(bs.dims, uint32(d))
			}
			bs.dimMask[d] |= 1 << uint(b)
		}
	}
	heads := bs.heads[:0]
	masks := bs.masks[:0]
	for _, d := range bs.dims {
		heads = append(heads, v.inv.Postings(int(d)))
		masks = append(masks, bs.dimMask[d])
		bs.dimMask[d] = 0 // restore the all-zero invariant as we consume
	}
	bs.dims = bs.dims[:0]
	bs.heads, bs.masks = heads, masks

	// Shared ascending merge over every touched posting list. Lists number
	// at most the partition dimension (tens), so a linear min scan beats
	// heap bookkeeping and keeps the loop branch-predictable.
	for len(heads) > 0 {
		lo := heads[0][0]
		for hi := 1; hi < len(heads); hi++ {
			if heads[hi][0] < lo {
				lo = heads[hi][0]
			}
		}
		var mask uint64
		for hi := 0; hi < len(heads); {
			if heads[hi][0] != lo {
				hi++
				continue
			}
			mask |= masks[hi]
			if rest := heads[hi][1:]; len(rest) > 0 {
				heads[hi] = rest
				hi++
			} else {
				last := len(heads) - 1
				heads[hi] = heads[last]
				masks[hi] = masks[last]
				heads = heads[:last]
				masks = masks[:last]
			}
		}
		for m := mask; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			st := &states[b]
			if st.skip {
				continue
			}
			if st.offers%cancelCheckStride == 0 && st.dead(gdone) {
				v.settleBatchErr(st, &outs[b], bctx)
				continue
			}
			st.offers++
			st.sel.Offer(scoredCand{i: lo, s: social.ApproxJaccard(st.qs.qvec, v.recs[lo].Vec)})
		}
	}
	bs.heads = bs.heads[:0]
	bs.masks = bs.masks[:0]

	for b := range states {
		st := &states[b]
		if st.skip {
			continue
		}
		for _, sc := range st.sel.Items() {
			st.qs.addCandidate(sc.i)
		}
	}
}

// gatherBatchContent runs the per-query step-2 LCP expansion, identical to
// the serial path (precomputed content keys honored per query).
func (v *View) gatherBatchContent(bctx context.Context, gdone <-chan struct{}, items []BatchItem, states []batchItemState, outs []BatchOut) {
	for b := range states {
		st := &states[b]
		if st.skip {
			continue
		}
		q := &items[b].Query
		if q.contentKeys != nil && q.keyFP == v.lsb.KeyFingerprint() {
			st.qs.walker.ResetWithKeys(v.lsb, q.Series, q.contentKeys)
		} else {
			st.qs.walker.Reset(v.lsb, q.Series)
		}
		added := 0
		for pops := 0; pops < v.opts.ContentProbe; pops++ {
			if pops%cancelCheckStride == 0 && st.dead(gdone) {
				v.settleBatchErr(st, &outs[b], bctx)
				break
			}
			e, _, ok := st.qs.walker.Next()
			if !ok {
				break
			}
			if v.tombstones.Has(e.Video) || st.qs.cand.Has(e.Video) {
				continue
			}
			st.qs.addCandidate(e.Video)
			added++
			if added >= 2*v.opts.CandidateLimit {
				break
			}
		}
	}
}

// refineBatchItem scores one item's gathered candidates — the serial-order
// step 3, streaming the SoA signature store with the chunk's shared EMD
// scratch. Scoring arithmetic, candidate order and result slots are exactly
// those of the serial refine, so rankings are bit-identical.
func (v *View) refineBatchItem(bctx context.Context, st *batchItemState, it *BatchItem, bs *batchScratch) ([]Result, error) {
	qs := st.qs
	cands := qs.merged
	gdone := bctx.Done()
	var cancelled func() bool
	if st.idone != nil || gdone != nil {
		cancelled = func() bool { return st.dead(gdone) }
	}

	var qc *signature.CompiledSeries
	if st.useContent && compiledRefine {
		qc = it.Query.compiled()
	}
	soa := v.soa
	if !soaRefine {
		soa = nil
	}

	results := qs.resultSlots(len(cands))
	for i, idx := range cands {
		if err := faults.Inject(faults.RefineScore); err != nil {
			return nil, err
		}
		if cancelled != nil && cancelled() {
			return nil, st.failErr(bctx)
		}
		rec := v.recs[idx]
		var content, soc float64
		if st.useContent && rec != nil {
			var kj float64
			var complete bool
			if qc != nil && rec.Compiled != nil {
				kj, complete = signature.KJCancelCompiled(qc, soa.compiledFor(idx, rec), v.opts.MatchThreshold, cancelled, &bs.kj)
			} else {
				kj, complete = signature.KJCancel(it.Query.Series, rec.Series, v.opts.MatchThreshold, cancelled)
			}
			if !complete {
				return nil, st.failErr(bctx)
			}
			content = kj
		}
		if st.useSocial && rec != nil {
			soc = v.socialRelevanceRec(it.Query, qs.qvec, rec)
		}
		results[i] = Result{
			VideoID: v.intern.ids[idx],
			Score:   v.fuse(content, soc),
			Content: content,
			Social:  soc,
		}
	}
	return results, nil
}

// finishCoarseBatch is finishCoarse for one batched item: the coarse social
// ranking over its gathered candidates, flagged Degraded. poll mirrors the
// serial path's two entries — live polling on the up-front degrade, none
// after a mid-refinement expiry (WithoutCancel semantics).
func (v *View) finishCoarseBatch(bctx context.Context, st *batchItemState, it *BatchItem, out *BatchOut, bs *batchScratch, poll bool) {
	qs := st.qs
	gdone := bctx.Done()
	results := qs.resultSlots(len(qs.merged))
	for i, idx := range qs.merged {
		if poll && i%cancelCheckStride == 0 && st.dead(gdone) {
			out.Results = out.Results[:0]
			out.Err = st.failErr(bctx)
			return
		}
		soc := v.socialRelevanceRec(it.Query, qs.qvec, v.recs[idx])
		results[i] = Result{VideoID: v.intern.ids[idx], Score: soc, Social: soc}
	}
	out.Info.Degraded = true
	out.Results = topKResultsInto(out.Results, results, it.TopK, bs.resultSelector())
}

// growZeroed resizes an all-zero scratch slice. Entries are always restored
// to zero by their consumer, so a capacity hit needs no clearing.
func growZeroed(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}
