package core

import (
	"testing"

	"videorec/internal/social"
)

func TestFilterAudiences(t *testing.T) {
	aud := map[string][]string{
		"v1": {"recurring", "oneshot-a"},
		"v2": {"recurring", "oneshot-b"},
	}
	got := FilterAudiences(aud, 2)
	for vid, users := range got {
		if len(users) != 1 || users[0] != "recurring" {
			t.Errorf("%s filtered to %v, want [recurring]", vid, users)
		}
	}
	// min <= 1 is the identity.
	same := FilterAudiences(aud, 1)
	if len(same["v1"]) != 2 {
		t.Error("min=1 should not filter")
	}
	// Duplicate appearances within one video count once.
	dup := map[string][]string{"v1": {"x", "x"}, "v2": {"y"}}
	if got := FilterAudiences(dup, 2); len(got["v1"]) != 0 {
		t.Errorf("duplicate-in-one-video user survived: %v", got["v1"])
	}
}

func TestCapAudience(t *testing.T) {
	users := []string{"a", "b", "c", "d", "e", "f"}
	if got := capAudience(users, 10); len(got) != 6 {
		t.Errorf("under cap: %v", got)
	}
	got := capAudience(users, 3)
	if len(got) != 3 {
		t.Fatalf("capped to %d, want 3", len(got))
	}
	// Strided sample stays deterministic and sorted-source-ordered.
	if got[0] != "a" {
		t.Errorf("first sample = %s", got[0])
	}
}

func TestAdHocQueryMatchesStored(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	it := c.Items[0]
	v := it.Render(c.Opts.Synth)
	rec, _ := r.Record(it.ID)
	q := r.AdHocQuery(v, rec.Desc)
	if len(q.Series) != len(rec.Series) {
		t.Fatalf("ad-hoc series %d signatures, stored %d", len(q.Series), len(rec.Series))
	}
	// Same clip, same options → identical signatures.
	for i := range q.Series {
		if len(q.Series[i].Cuboids) != len(rec.Series[i].Cuboids) {
			t.Fatalf("signature %d cuboid counts differ", i)
		}
	}
}

func TestContentProbeBudgetBinds(t *testing.T) {
	o := DefaultOptions()
	o.ContentProbe = 1
	o.CandidateLimit = 1
	o.ContentWeightOnly = true
	r := NewRecommender(o)
	// Reuse the small collection fixture pipeline.
	r2, c := buildSmall(t, ModeSARHash)
	for _, id := range r2.SortedIDs() {
		rec, _ := r2.Record(id)
		r.IngestSeries(id, rec.Series, rec.Desc)
	}
	r.BuildSocial()
	src := c.Queries[0].Sources[0]
	q, _ := r.QueryFor(src)
	res := r.Recommend(q, 50, src)
	// With a 1-entry probe budget at most a couple of candidates appear.
	if len(res) > 3 {
		t.Errorf("probe budget did not bind: %d candidates refined", len(res))
	}
}

func TestSocialRelevanceUnknownVideo(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	q, _ := r.QueryFor(r.SortedIDs()[0])
	if got := r.SocialRelevance(q, social.Vector{1}, "ghost"); got != 0 {
		t.Errorf("unknown video social relevance = %g", got)
	}
	if got := r.ContentRelevance(q, "ghost"); got != 0 {
		t.Errorf("unknown video content relevance = %g", got)
	}
}

func TestNaiveJaccardEdgeCases(t *testing.T) {
	empty := social.NewDescriptor("")
	if got := naiveJaccard(empty, empty); got != 0 {
		t.Errorf("empty naive = %g", got)
	}
	a := social.NewDescriptor("", "x")
	if got := naiveJaccard(a, a); got != 1 {
		t.Errorf("self naive = %g", got)
	}
}

func TestOptionsClamping(t *testing.T) {
	r := NewRecommender(Options{Omega: -2, K: -1, HashBuckets: -1})
	o := r.Options()
	if o.Omega != 0 {
		t.Errorf("Omega = %g, want clamped to 0", o.Omega)
	}
	if o.K != 60 {
		t.Errorf("K = %d, want defaulted to 60", o.K)
	}
	r2 := NewRecommender(Options{Omega: 2})
	if r2.Options().Omega != 1 {
		t.Errorf("Omega = %g, want clamped to 1", r2.Options().Omega)
	}
}
