package core

import (
	"context"
	"testing"
	"time"

	"videorec/internal/faults"
	"videorec/internal/social"
)

func TestFilterAudiences(t *testing.T) {
	aud := map[string][]string{
		"v1": {"recurring", "oneshot-a"},
		"v2": {"recurring", "oneshot-b"},
	}
	got := FilterAudiences(aud, 2)
	for vid, users := range got {
		if len(users) != 1 || users[0] != "recurring" {
			t.Errorf("%s filtered to %v, want [recurring]", vid, users)
		}
	}
	// min <= 1 is the identity.
	same := FilterAudiences(aud, 1)
	if len(same["v1"]) != 2 {
		t.Error("min=1 should not filter")
	}
	// Duplicate appearances within one video count once.
	dup := map[string][]string{"v1": {"x", "x"}, "v2": {"y"}}
	if got := FilterAudiences(dup, 2); len(got["v1"]) != 0 {
		t.Errorf("duplicate-in-one-video user survived: %v", got["v1"])
	}
}

func TestCapAudience(t *testing.T) {
	users := []string{"a", "b", "c", "d", "e", "f"}
	if got := capAudience(users, 10); len(got) != 6 {
		t.Errorf("under cap: %v", got)
	}
	got := capAudience(users, 3)
	if len(got) != 3 {
		t.Fatalf("capped to %d, want 3", len(got))
	}
	// Strided sample stays deterministic and sorted-source-ordered.
	if got[0] != "a" {
		t.Errorf("first sample = %s", got[0])
	}
}

func TestAdHocQueryMatchesStored(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	it := c.Items[0]
	v := it.Render(c.Opts.Synth)
	rec, _ := r.Record(it.ID)
	q := r.AdHocQuery(v, rec.Desc)
	if len(q.Series) != len(rec.Series) {
		t.Fatalf("ad-hoc series %d signatures, stored %d", len(q.Series), len(rec.Series))
	}
	// Same clip, same options → identical signatures.
	for i := range q.Series {
		if len(q.Series[i].Cuboids) != len(rec.Series[i].Cuboids) {
			t.Fatalf("signature %d cuboid counts differ", i)
		}
	}
}

func TestContentProbeBudgetBinds(t *testing.T) {
	o := DefaultOptions()
	o.ContentProbe = 1
	o.CandidateLimit = 1
	o.ContentWeightOnly = true
	r := NewRecommender(o)
	// Reuse the small collection fixture pipeline.
	r2, c := buildSmall(t, ModeSARHash)
	for _, id := range r2.SortedIDs() {
		rec, _ := r2.Record(id)
		r.IngestSeries(id, rec.Series, rec.Desc)
	}
	r.BuildSocial()
	src := c.Queries[0].Sources[0]
	q, _ := r.QueryFor(src)
	res := r.Recommend(q, 50, src)
	// With a 1-entry probe budget at most a couple of candidates appear.
	if len(res) > 3 {
		t.Errorf("probe budget did not bind: %d candidates refined", len(res))
	}
}

func TestSocialRelevanceUnknownVideo(t *testing.T) {
	r, _ := buildSmall(t, ModeSARHash)
	q, _ := r.QueryFor(r.SortedIDs()[0])
	if got := r.SocialRelevance(q, social.Vector{1}, "ghost"); got != 0 {
		t.Errorf("unknown video social relevance = %g", got)
	}
	if got := r.ContentRelevance(q, "ghost"); got != 0 {
		t.Errorf("unknown video content relevance = %g", got)
	}
}

func TestNaiveJaccardEdgeCases(t *testing.T) {
	empty := social.NewDescriptor("")
	if got := naiveJaccard(empty, empty); got != 0 {
		t.Errorf("empty naive = %g", got)
	}
	a := social.NewDescriptor("", "x")
	if got := naiveJaccard(a, a); got != 1 {
		t.Errorf("self naive = %g", got)
	}
}

// RecommendCtx with a background context must be bit-identical to Recommend.
func TestRecommendCtxMatchesRecommend(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	v := r.Freeze()
	src := c.Queries[0].Sources[0]
	plain := v.RecommendID(src, 10)
	ctxed, info, err := v.RecommendIDCtx(context.Background(), src, 10)
	if err != nil {
		t.Fatal(err)
	}
	if info.Degraded {
		t.Error("background context degraded")
	}
	if len(plain) != len(ctxed) {
		t.Fatalf("lengths %d vs %d", len(plain), len(ctxed))
	}
	for i := range plain {
		if plain[i] != ctxed[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, plain[i], ctxed[i])
		}
	}
}

func TestRecommendCtxPreCancelled(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	v := r.Freeze()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := v.RecommendIDCtx(ctx, c.Queries[0].Sources[0], 10)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled query returned %d results", len(res))
	}
}

// A cancellation landing mid-refinement must stop the worker pool well
// before the full EMD cost is paid, and the view must keep answering.
func TestRecommendCtxCancelMidRefine(t *testing.T) {
	defer faults.Reset()
	r, c := buildSmall(t, ModeSARHash)
	v := r.Freeze()
	src := c.Queries[0].Sources[0]
	full := v.RecommendID(src, 10)
	if len(full) == 0 {
		t.Fatal("fixture returns no results")
	}

	// 20ms per candidate score makes full refinement take candidate-count ×
	// 20ms; cancelling after 5ms must return in a small fraction of that.
	faults.Arm(faults.RefineScore, faults.Latency(20*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := v.RecommendIDCtx(ctx, src, 10)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, info, err := v.RecommendIDCtx(context.Background(), src, 10)
	if err != nil {
		t.Fatal(err)
	}
	budget := time.Duration(info.Candidates) * 20 * time.Millisecond / 2
	if elapsed >= budget {
		t.Errorf("cancelled refinement took %v, want well under %v (%d candidates)", elapsed, budget, info.Candidates)
	}
	faults.Reset()

	// The engine stays serviceable after a cancellation.
	again := v.RecommendID(src, 10)
	if len(again) != len(full) {
		t.Fatalf("post-cancel results %d, want %d", len(again), len(full))
	}
}

// A deadline inside the degrade margin answers with the coarse SAR ranking
// instead of an error.
func TestRecommendCtxDegradesNearDeadline(t *testing.T) {
	r, c := buildSmall(t, ModeSARHash)
	v := r.Freeze()
	src := c.Queries[0].Sources[0]
	// DefaultDegradeMargin is 20ms; a 15ms deadline leaves refinement inside
	// the margin while giving candidate gathering room to finish.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	res, info, err := v.RecommendIDCtx(ctx, src, 10)
	if err != nil {
		t.Fatalf("near-deadline query errored: %v", err)
	}
	if !info.Degraded {
		t.Fatal("near-deadline query not flagged degraded")
	}
	if len(res) == 0 {
		t.Fatal("degraded query returned no results")
	}
	for _, re := range res {
		if re.Content != 0 {
			t.Errorf("degraded result %s has content relevance %g, want 0 (EMD skipped)", re.VideoID, re.Content)
		}
		if re.Score != re.Social {
			t.Errorf("degraded result %s: score %g != social %g", re.VideoID, re.Score, re.Social)
		}
	}
}

// A deadline expiring while refinement runs falls back to the coarse answer
// rather than surfacing DeadlineExceeded.
func TestRecommendCtxDegradesMidRefine(t *testing.T) {
	defer faults.Reset()
	r, c := buildSmall(t, ModeSARHash)
	v := r.Freeze()
	src := c.Queries[0].Sources[0]
	faults.Arm(faults.RefineScore, faults.Latency(10*time.Millisecond))
	// 50ms is past the 20ms margin (so refinement starts) but expires after
	// a few slowed candidate scores.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, info, err := v.RecommendIDCtx(ctx, src, 10)
	if err != nil {
		t.Fatalf("mid-refine deadline errored: %v", err)
	}
	if !info.Degraded {
		t.Fatal("mid-refine deadline expiry not flagged degraded")
	}
	if len(res) == 0 {
		t.Fatal("degraded fallback returned no results")
	}
}

// A negative DegradeMargin disables the fallback: the deadline surfaces as
// DeadlineExceeded.
func TestRecommendCtxDegradeDisabled(t *testing.T) {
	o := DefaultOptions()
	o.DegradeMargin = -1
	o.K = 12
	r2, c := buildSmall(t, ModeSARHash)
	r := NewRecommender(o)
	for _, id := range r2.SortedIDs() {
		rec, _ := r2.Record(id)
		r.IngestSeries(id, rec.Series, rec.Desc)
	}
	r.BuildSocial()
	v := r.Freeze()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, info, err := v.RecommendIDCtx(ctx, c.Queries[0].Sources[0], 10)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if info.Degraded {
		t.Error("degradation ran despite being disabled")
	}
}

// An injected scoring fault aborts the query with the fault's error and
// leaves the view serviceable.
func TestRecommendCtxInjectedFault(t *testing.T) {
	defer faults.Reset()
	r, c := buildSmall(t, ModeSARHash)
	v := r.Freeze()
	src := c.Queries[0].Sources[0]
	faults.Arm(faults.RefineScore, faults.Error(nil))
	_, _, err := v.RecommendIDCtx(context.Background(), src, 10)
	if err == nil {
		t.Fatal("injected fault not surfaced")
	}
	faults.Reset()
	if res := v.RecommendID(src, 10); len(res) == 0 {
		t.Fatal("view unserviceable after injected fault")
	}
}

func TestOptionsClamping(t *testing.T) {
	r := NewRecommender(Options{Omega: -2, K: -1, HashBuckets: -1})
	o := r.Options()
	if o.Omega != 0 {
		t.Errorf("Omega = %g, want clamped to 0", o.Omega)
	}
	if o.K != 60 {
		t.Errorf("K = %d, want defaulted to 60", o.K)
	}
	r2 := NewRecommender(Options{Omega: 2})
	if r2.Options().Omega != 1 {
		t.Errorf("Omega = %g, want clamped to 1", r2.Options().Omega)
	}
}
