package core

import (
	"sort"

	"videorec/internal/social"
)

// Recommend returns the topK highest-FJ videos for the query, excluding the
// ids in exclude (normally the query video itself). It implements the KNN
// search of Figure 6:
//
//  1. vectorize the query's social descriptor and rank the inverted-file
//     candidates by s̃J (SAR modes), or schedule a full exact-sJ scan
//     (ModeExact — the unoptimized CSF the paper starts from);
//  2. expand content candidates from the LSB-tree in next-longest-common-
//     prefix order;
//  3. refine candidates with the fused FJ relevance, keeping the top K.
//
// The repeat-until-K loop of Figure 6 has no tight termination bound under
// LSH, so the implementation uses the explicit probe budgets of Options
// (ContentProbe walker pops, CandidateLimit refinements), which plays the
// role of the paper's stopping rule.
func (r *Recommender) Recommend(q Query, topK int, exclude ...string) []Result {
	if topK <= 0 {
		return nil
	}
	skip := make(map[string]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}

	var qvec social.Vector
	useSocial := !r.opts.ContentWeightOnly
	useContent := !r.opts.SocialOnly
	if useSocial && r.opts.Mode != ModeExact {
		r.mustBuild()
		qvec = social.Vectorize(q.Desc, r.lookupFunc(), r.part.Dim)
	}

	// Candidate gathering.
	candidates := make(map[string]bool)
	switch {
	case r.opts.FullScan || (r.opts.Mode == ModeExact && useSocial):
		// Unoptimized CSF (or an effectiveness run that wants exhaustive
		// ranking): every stored video is refined.
		for _, id := range r.order {
			candidates[id] = true
		}
	default:
		if useSocial {
			// Step 1: social candidates ranked by s̃J; keep the budgeted top.
			socCands := r.inv.Candidates(qvec)
			type scored struct {
				id string
				s  float64
			}
			ranked := make([]scored, 0, len(socCands))
			for _, id := range socCands {
				ranked = append(ranked, scored{id, social.ApproxJaccard(qvec, r.records[id].Vec)})
			}
			sort.Slice(ranked, func(a, b int) bool {
				if ranked[a].s != ranked[b].s {
					return ranked[a].s > ranked[b].s
				}
				return ranked[a].id < ranked[b].id
			})
			budget := r.opts.CandidateLimit
			for i, sc := range ranked {
				if i >= budget {
					break
				}
				candidates[sc.id] = true
			}
		}
		if useContent {
			// Step 2: content candidates in LCP order.
			w := r.lsb.NewWalker(q.Series)
			for pops := 0; pops < r.opts.ContentProbe; pops++ {
				e, _, ok := w.Next()
				if !ok {
					break
				}
				if r.tombstones[e.VideoID] {
					continue
				}
				candidates[e.VideoID] = true
				if len(candidates) >= 2*r.opts.CandidateLimit {
					break
				}
			}
		}
	}

	// Step 3: FJ refinement.
	results := make([]Result, 0, len(candidates))
	ids := make([]string, 0, len(candidates))
	for id := range candidates {
		if !skip[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		var content, soc float64
		if useContent {
			content = r.ContentRelevance(q, id)
		}
		if useSocial {
			soc = r.SocialRelevance(q, qvec, id)
		}
		results = append(results, Result{
			VideoID: id,
			Score:   r.fuse(content, soc),
			Content: content,
			Social:  soc,
		})
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Score != results[b].Score {
			return results[a].Score > results[b].Score
		}
		return results[a].VideoID < results[b].VideoID
	})
	if len(results) > topK {
		results = results[:topK]
	}
	return results
}

// RecommendID recommends for a stored video, excluding the video itself.
func (r *Recommender) RecommendID(id string, topK int) []Result {
	q, ok := r.QueryFor(id)
	if !ok {
		return nil
	}
	return r.Recommend(q, topK, id)
}

// mustBuild panics if BuildSocial has not been run — calling the SAR paths
// without a partition is a programming error, not a runtime condition.
func (r *Recommender) mustBuild() {
	if !r.built || r.part == nil {
		panic("core: BuildSocial must be called before SAR-mode recommendation")
	}
}
