package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"videorec/internal/social"
)

// minParallelRefine is the candidate count below which step-3 refinement
// stays on the calling goroutine: spawning workers for a handful of κJ
// computations costs more than it saves.
const minParallelRefine = 16

// Recommend returns the topK highest-FJ videos for the query, excluding the
// ids in exclude (normally the query video itself). It implements the KNN
// search of Figure 6 against the frozen view:
//
//  1. vectorize the query's social descriptor and rank the inverted-file
//     candidates by s̃J (SAR modes), or schedule a full exact-sJ scan
//     (ModeExact — the unoptimized CSF the paper starts from);
//  2. expand content candidates from the LSB-tree in next-longest-common-
//     prefix order;
//  3. refine candidates with the fused FJ relevance across a bounded worker
//     pool, keeping the top K.
//
// The repeat-until-K loop of Figure 6 has no tight termination bound under
// LSH, so the implementation uses the explicit probe budgets of Options
// (ContentProbe walker pops, CandidateLimit refinements), which plays the
// role of the paper's stopping rule.
//
// Refinement is deterministic: each candidate's κJ/s̃J pair is computed
// independently into a slot indexed by the candidate's position in the
// sorted id list, so the parallel pool produces bit-identical rankings to
// the serial path (Options.RefineWorkers = 1) regardless of scheduling.
func (v *View) Recommend(q Query, topK int, exclude ...string) []Result {
	if topK <= 0 {
		return nil
	}
	skip := make(map[string]bool, len(exclude))
	for _, id := range exclude {
		skip[id] = true
	}

	var qvec social.Vector
	useSocial := !v.opts.ContentWeightOnly
	useContent := !v.opts.SocialOnly
	if useSocial && v.opts.Mode != ModeExact {
		v.mustBuild()
		qvec = social.Vectorize(q.Desc, v.lookupFunc(), v.part.Dim)
	}

	// Candidate gathering.
	candidates := make(map[string]bool)
	switch {
	case v.opts.FullScan || (v.opts.Mode == ModeExact && useSocial):
		// Unoptimized CSF (or an effectiveness run that wants exhaustive
		// ranking): every stored video is refined.
		for _, id := range v.order {
			candidates[id] = true
		}
	default:
		if useSocial {
			// Step 1: social candidates ranked by s̃J; keep the budgeted top.
			socCands := v.inv.Candidates(qvec)
			type scored struct {
				id string
				s  float64
			}
			ranked := make([]scored, 0, len(socCands))
			for _, id := range socCands {
				ranked = append(ranked, scored{id, social.ApproxJaccard(qvec, v.records[id].Vec)})
			}
			sort.Slice(ranked, func(a, b int) bool {
				if ranked[a].s != ranked[b].s {
					return ranked[a].s > ranked[b].s
				}
				return ranked[a].id < ranked[b].id
			})
			budget := v.opts.CandidateLimit
			for i, sc := range ranked {
				if i >= budget {
					break
				}
				candidates[sc.id] = true
			}
		}
		if useContent {
			// Step 2: content candidates in LCP order.
			w := v.lsb.NewWalker(q.Series)
			for pops := 0; pops < v.opts.ContentProbe; pops++ {
				e, _, ok := w.Next()
				if !ok {
					break
				}
				if v.tombstones[e.VideoID] {
					continue
				}
				candidates[e.VideoID] = true
				if len(candidates) >= 2*v.opts.CandidateLimit {
					break
				}
			}
		}
	}

	// Step 3: FJ refinement across the worker pool.
	ids := make([]string, 0, len(candidates))
	for id := range candidates {
		if !skip[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	results := v.refine(q, qvec, ids, useContent, useSocial)

	sort.Slice(results, func(a, b int) bool {
		if results[a].Score != results[b].Score {
			return results[a].Score > results[b].Score
		}
		return results[a].VideoID < results[b].VideoID
	})
	if len(results) > topK {
		results = results[:topK]
	}
	return results
}

// refine computes the fused relevance of every candidate. Candidates are
// claimed from a shared atomic cursor (κJ cost varies with series length, so
// static chunking would leave workers idle) and each result lands in the
// slot of its candidate's index, keeping the output independent of
// scheduling.
func (v *View) refine(q Query, qvec social.Vector, ids []string, useContent, useSocial bool) []Result {
	results := make([]Result, len(ids))
	score := func(i int) {
		id := ids[i]
		var content, soc float64
		if useContent {
			content = v.ContentRelevance(q, id)
		}
		if useSocial {
			soc = v.SocialRelevance(q, qvec, id)
		}
		results[i] = Result{
			VideoID: id,
			Score:   v.fuse(content, soc),
			Content: content,
			Social:  soc,
		}
	}

	workers := v.opts.RefineWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 || len(ids) < minParallelRefine {
		for i := range ids {
			score(i)
		}
		return results
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				score(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// RecommendID recommends for a stored video, excluding the video itself.
func (v *View) RecommendID(id string, topK int) []Result {
	q, ok := v.QueryFor(id)
	if !ok {
		return nil
	}
	return v.Recommend(q, topK, id)
}

// Recommend runs the KNN search against the recommender's current state.
// Unlike View.Recommend it is not safe for use concurrent with mutations;
// freeze a View for lock-free serving.
func (r *Recommender) Recommend(q Query, topK int, exclude ...string) []Result {
	return r.state.Recommend(q, topK, exclude...)
}

// RecommendID recommends for a stored video, excluding the video itself.
func (r *Recommender) RecommendID(id string, topK int) []Result {
	return r.state.RecommendID(id, topK)
}
