package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"videorec/internal/faults"
	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/topk"
)

// minParallelRefine is the candidate count below which step-3 refinement
// stays on the calling goroutine: spawning workers for a handful of κJ
// computations costs more than it saves.
const minParallelRefine = 16

// cancelCheckStride bounds how many cheap candidate-gathering steps run
// between context polls.
const cancelCheckStride = 64

// RecommendInfo describes how a RecommendCtx query was answered.
type RecommendInfo struct {
	// Degraded is true when step-3 EMD refinement was skipped (deadline
	// already inside the degrade margin) or abandoned (deadline expired
	// mid-refinement) and the results carry only the coarse social ranking:
	// Score = s̃J, Content = 0.
	Degraded bool
	// Candidates is the number of candidates gathered for refinement.
	Candidates int
}

// Recommend returns the topK highest-FJ videos for the query, excluding the
// ids in exclude (normally the query video itself). It implements the KNN
// search of Figure 6 against the frozen view:
//
//  1. vectorize the query's social descriptor and rank the inverted-file
//     candidates by s̃J (SAR modes), or schedule a full exact-sJ scan
//     (ModeExact — the unoptimized CSF the paper starts from);
//  2. expand content candidates from the LSB-tree in next-longest-common-
//     prefix order;
//  3. refine candidates with the fused FJ relevance across a bounded worker
//     pool, keeping the top K.
//
// The repeat-until-K loop of Figure 6 has no tight termination bound under
// LSH, so the implementation uses the explicit probe budgets of Options
// (ContentProbe walker pops, CandidateLimit refinements), which plays the
// role of the paper's stopping rule.
//
// Refinement is deterministic: each candidate's κJ/s̃J pair is computed
// independently into a slot indexed by the candidate's position in the
// sorted id list, so the parallel pool produces bit-identical rankings to
// the serial path (Options.RefineWorkers = 1) regardless of scheduling.
func (v *View) Recommend(q Query, topK int, exclude ...string) []Result {
	res, _, _ := v.RecommendCtx(context.Background(), q, topK, exclude...)
	return res
}

// RecommendCtx is Recommend with deadline-aware serving semantics:
//
//   - Cancellation is cooperative through the whole pipeline: candidate
//     gathering polls the context between probes and every refinement worker
//     polls it between EMD evaluations (signature.KJCancel), so a canceled
//     request stops burning CPU within about one EMD evaluation and returns
//     ctx.Err().
//   - Degradation is the deadline policy: when the deadline is already
//     within Options.DegradeMargin at refinement start — or expires while
//     refinement runs — the query is answered from the coarse social ranking
//     it already has (s̃J over SAR vectors; exact sJ in ModeExact) instead of
//     failing with DeadlineExceeded, and the result is flagged Degraded. A
//     negative DegradeMargin disables the fallback.
//
// Without a deadline or cancellation the results are bit-identical to
// Recommend.
func (v *View) RecommendCtx(ctx context.Context, q Query, topK int, exclude ...string) ([]Result, RecommendInfo, error) {
	var info RecommendInfo
	if topK <= 0 {
		return nil, info, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, info, err
	}
	// The common query excludes nothing (ad-hoc clips) or one id (stored
	// queries); don't pay for a map when there is nothing to put in it —
	// lookups on the nil map below are free and always miss.
	var skip map[string]bool
	if len(exclude) > 0 {
		skip = make(map[string]bool, len(exclude))
		for _, id := range exclude {
			skip[id] = true
		}
	}

	var qvec social.Vector
	useSocial := !v.opts.ContentWeightOnly
	useContent := !v.opts.SocialOnly
	if useSocial && v.opts.Mode != ModeExact {
		v.mustBuild()
		qvec = social.Vectorize(q.Desc, v.lookupFunc(), v.part.Dim)
	}

	// Candidate gathering, polling the context between probe steps.
	done := ctx.Done()
	var candidates map[string]bool
	switch {
	case v.opts.FullScan || (v.opts.Mode == ModeExact && useSocial):
		// Unoptimized CSF (or an effectiveness run that wants exhaustive
		// ranking): every stored video is refined.
		candidates = make(map[string]bool, len(v.order))
		for i, id := range v.order {
			if i%cancelCheckStride == 0 && ctxDone(done) {
				return nil, info, ctx.Err()
			}
			candidates[id] = true
		}
	default:
		candidates = make(map[string]bool, v.opts.CandidateLimit)
		if useSocial {
			// Step 1: social candidates ranked by s̃J; keep the budgeted top.
			// Only CandidateLimit winners survive, so a bounded heap selects
			// them in O(n log limit) without materializing or sorting the full
			// inverted-file candidate list. The (s desc, id asc) order is
			// total, so the kept set is exactly the full sort's prefix.
			socCands := v.inv.Candidates(qvec)
			type scored struct {
				id string
				s  float64
			}
			sel := topk.New(v.opts.CandidateLimit, func(a, b scored) bool {
				if a.s != b.s {
					return a.s < b.s
				}
				return a.id > b.id
			})
			for i, id := range socCands {
				if i%cancelCheckStride == 0 && ctxDone(done) {
					return nil, info, ctx.Err()
				}
				sel.Offer(scored{id, social.ApproxJaccard(qvec, v.records[id].Vec)})
			}
			for _, sc := range sel.Items() {
				candidates[sc.id] = true
			}
		}
		if useContent {
			// Step 2: content candidates in LCP order.
			w := v.lsb.NewWalker(q.Series)
			for pops := 0; pops < v.opts.ContentProbe; pops++ {
				if pops%cancelCheckStride == 0 && ctxDone(done) {
					return nil, info, ctx.Err()
				}
				e, _, ok := w.Next()
				if !ok {
					break
				}
				if v.tombstones[e.VideoID] {
					continue
				}
				candidates[e.VideoID] = true
				if len(candidates) >= 2*v.opts.CandidateLimit {
					break
				}
			}
		}
	}

	// Step 3: FJ refinement across the worker pool.
	ids := make([]string, 0, len(candidates))
	for id := range candidates {
		if !skip[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	info.Candidates = len(ids)

	// Degrade up front when the deadline cannot plausibly fit a full EMD
	// refinement pass: answer with the coarse social ranking immediately.
	canDegrade := useContent && useSocial && v.opts.DegradeMargin > 0
	if canDegrade {
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < v.opts.DegradeMargin {
			return v.finishCoarse(ctx, q, qvec, ids, topK, &info)
		}
	}

	results, err := v.refine(ctx, q, qvec, ids, useContent, useSocial)
	if err != nil {
		// A deadline that expired mid-refinement still gets the coarse
		// answer; cancellation and injected faults propagate as errors.
		if canDegrade && err == context.DeadlineExceeded {
			return v.finishCoarse(context.WithoutCancel(ctx), q, qvec, ids, topK, &info)
		}
		return nil, info, err
	}
	return topKResults(results, topK), info, nil
}

// ctxDone is a non-blocking poll of a context's done channel.
func ctxDone(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// finishCoarse ranks the candidate set by social relevance alone — the
// coarse SAR scores step 1 already paid for — skipping EMD refinement
// entirely. s̃J over SAR vectors is a k-dimensional min/max ratio, orders of
// magnitude cheaper than κJ, so this path answers within any realistic
// margin. ctx is still honored (a hard cancel beats degradation).
func (v *View) finishCoarse(ctx context.Context, q Query, qvec social.Vector, ids []string, topK int, info *RecommendInfo) ([]Result, RecommendInfo, error) {
	done := ctx.Done()
	results := make([]Result, len(ids))
	for i, id := range ids {
		if i%cancelCheckStride == 0 && ctxDone(done) {
			return nil, *info, ctx.Err()
		}
		soc := v.SocialRelevance(q, qvec, id)
		results[i] = Result{VideoID: id, Score: soc, Social: soc}
	}
	info.Degraded = true
	return topKResults(results, topK), *info, nil
}

// topKResults selects the topK best results under (score desc, id asc). When
// the candidate set exceeds topK — the normal serving shape, hundreds of
// refined candidates for a top-10 answer — a bounded heap selects the winners
// in O(n log topK) instead of sorting everything; the order is total, so the
// output is identical to sort-and-truncate.
func topKResults(results []Result, topK int) []Result {
	worse := func(a, b Result) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.VideoID > b.VideoID
	}
	if len(results) <= topK {
		sort.Slice(results, func(a, b int) bool { return worse(results[b], results[a]) })
		return results
	}
	sel := topk.New(topK, worse)
	for _, r := range results {
		sel.Offer(r)
	}
	return sel.Sorted()
}

// compiledRefine selects the κJ implementation refine uses: the compiled
// zero-allocation kernel over the view's cached signature.CompiledSeries
// (production default) or the reference uncompiled path over raw Series.
// Tests flip it to prove the two produce bit-identical rankings; nothing else
// should touch it.
var compiledRefine = true

// refine computes the fused relevance of every candidate. Candidates are
// claimed from a shared atomic cursor (κJ cost varies with series length, so
// static chunking would leave workers idle) and each result lands in the
// slot of its candidate's index, keeping the output independent of
// scheduling. Workers poll ctx between candidates and, through
// signature.KJCancelCompiled, between individual EMD evaluations; the first
// cancellation or injected fault stops every worker claiming further work.
//
// Steady-state the content scoring allocates nothing: the query's series is
// compiled once per query, every stored candidate's compiled series is cached
// in the view, and each worker owns one signature.KJScratch reused across all
// the candidates it claims (strictly per-worker — never shared, never
// returned).
func (v *View) refine(ctx context.Context, q Query, qvec social.Vector, ids []string, useContent, useSocial bool) ([]Result, error) {
	done := ctx.Done()
	var cancelled func() bool
	if done != nil {
		cancelled = func() bool { return ctxDone(done) }
	}

	var qc *signature.CompiledSeries
	if useContent && compiledRefine {
		qc = q.compiled()
	}

	var failure atomic.Pointer[error]
	fail := func(err error) {
		e := err
		failure.CompareAndSwap(nil, &e)
	}

	results := make([]Result, len(ids))
	score := func(i int, scratch *signature.KJScratch) bool {
		if err := faults.Inject(faults.RefineScore); err != nil {
			fail(err)
			return false
		}
		if cancelled != nil && cancelled() {
			fail(ctx.Err())
			return false
		}
		id := ids[i]
		var content, soc float64
		if useContent {
			if rec, ok := v.records[id]; ok {
				var kj float64
				var complete bool
				if qc != nil && rec.Compiled != nil {
					kj, complete = signature.KJCancelCompiled(qc, rec.Compiled, v.opts.MatchThreshold, cancelled, scratch)
				} else {
					kj, complete = signature.KJCancel(q.Series, rec.Series, v.opts.MatchThreshold, cancelled)
				}
				if !complete {
					fail(ctx.Err())
					return false
				}
				content = kj
			}
		}
		if useSocial {
			soc = v.SocialRelevance(q, qvec, id)
		}
		results[i] = Result{
			VideoID: id,
			Score:   v.fuse(content, soc),
			Content: content,
			Social:  soc,
		}
		return true
	}

	workers := v.opts.RefineWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 || len(ids) < minParallelRefine {
		var scratch signature.KJScratch
		for i := range ids {
			if !score(i, &scratch) {
				return nil, *failure.Load()
			}
		}
		return results, nil
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch signature.KJScratch
			for failure.Load() == nil {
				i := int(cursor.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				if !score(i, &scratch) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := failure.Load(); p != nil {
		return nil, *p
	}
	return results, nil
}

// RecommendID recommends for a stored video, excluding the video itself.
func (v *View) RecommendID(id string, topK int) []Result {
	res, _, _ := v.RecommendIDCtx(context.Background(), id, topK)
	return res
}

// RecommendIDCtx is RecommendID with the deadline-aware semantics of
// RecommendCtx.
func (v *View) RecommendIDCtx(ctx context.Context, id string, topK int) ([]Result, RecommendInfo, error) {
	q, ok := v.QueryFor(id)
	if !ok {
		return nil, RecommendInfo{}, nil
	}
	return v.RecommendCtx(ctx, q, topK, id)
}

// Recommend runs the KNN search against the recommender's current state.
// Unlike View.Recommend it is not safe for use concurrent with mutations;
// freeze a View for lock-free serving.
func (r *Recommender) Recommend(q Query, topK int, exclude ...string) []Result {
	return r.state.Recommend(q, topK, exclude...)
}

// RecommendID recommends for a stored video, excluding the video itself.
func (r *Recommender) RecommendID(id string, topK int) []Result {
	return r.state.RecommendID(id, topK)
}
