package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"videorec/internal/bitset"
	"videorec/internal/faults"
	"videorec/internal/index"
	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/topk"
)

// minParallelRefine is the candidate count below which step-3 refinement
// stays on the calling goroutine: spawning workers for a handful of κJ
// computations costs more than it saves.
const minParallelRefine = 16

// cancelCheckStride bounds how many cheap candidate-gathering steps run
// between context polls.
const cancelCheckStride = 64

// RecommendInfo describes how a RecommendCtx query was answered.
type RecommendInfo struct {
	// Degraded is true when step-3 EMD refinement was skipped (deadline
	// already inside the degrade margin) or abandoned (deadline expired
	// mid-refinement) and the results carry only the coarse social ranking:
	// Score = s̃J, Content = 0.
	Degraded bool
	// Candidates is the number of candidates gathered for refinement.
	Candidates int
}

// scoredCand is one social candidate (by dense index) with its s̃J score.
type scoredCand struct {
	i uint32
	s float64
}

// queryScratch is everything one query needs beyond its inputs: the query
// vector, the candidate and exclude bitsets, the merged candidate-index
// buffer, the LCP walker, the social top-K selector, the refinement result
// slots and a serial-path EMD scratch. It is pooled per view (View.scratch),
// so steady-state candidate gathering allocates nothing.
type queryScratch struct {
	qvec    social.Vector
	cand    bitset.Set // candidate membership, keyed by dense index
	excl    bitset.Set // per-query exclusions, keyed by dense index
	exclIdx []uint32   // bits set in excl, for cheap clearing
	touched []uint32   // bits set in cand, for cheap clearing
	merged  []uint32   // gathered candidates (exclusions already applied)
	union   index.UnionScratch
	walker  index.Walker
	results []Result
	sel     *topk.Selector[scoredCand]
	kj      signature.KJScratch // serial refinement scratch, warm across queries
}

// selector returns the scratch's social top-K selector, creating it on
// first use and resetting it otherwise. The order is total — s̃J descending,
// video id (string, not dense index) ascending — so the kept set is exactly
// the full sort's prefix, bit-identical to the pre-dense string-sorted path.
func (qs *queryScratch) selector(v *View, k int) *topk.Selector[scoredCand] {
	if qs.sel == nil {
		// Capture the view, not a snapshot of its id slice: on the write-side
		// view the intern table can grow between queries, and the pooled
		// selector must always read the current table.
		qs.sel = topk.New(k, func(a, b scoredCand) bool {
			if a.s != b.s {
				return a.s < b.s
			}
			ids := v.intern.ids
			return ids[a.i] > ids[b.i]
		})
		return qs.sel
	}
	qs.sel.Reset(k)
	return qs.sel
}

// addCandidate marks a dense index as gathered. Excluded indices still join
// the candidate bitset (they occupy budget exactly as the map-based path's
// post-hoc filtering behaved) but never reach the merged refinement list.
func (qs *queryScratch) addCandidate(i uint32) {
	qs.cand.Add(i)
	qs.touched = append(qs.touched, i)
	if !qs.excl.Has(i) {
		qs.merged = append(qs.merged, i)
	}
}

// getScratch hands out a pooled, cleared query scratch.
func (v *View) getScratch() *queryScratch {
	return v.scratch.Get().(*queryScratch)
}

// putScratch clears the scratch by undoing exactly the bits it set —
// O(candidates), not O(collection) — and returns it to the pool.
func (v *View) putScratch(qs *queryScratch) {
	for _, i := range qs.touched {
		qs.cand.Remove(i)
	}
	for _, i := range qs.exclIdx {
		qs.excl.Remove(i)
	}
	qs.touched = qs.touched[:0]
	qs.exclIdx = qs.exclIdx[:0]
	qs.merged = qs.merged[:0]
	qs.results = qs.results[:0]
	v.scratch.Put(qs)
}

// resolveExcludes maps the excluded ids into the scratch's exclude bitset.
// Unknown ids are ignored — they cannot be candidates.
func (v *View) resolveExcludes(qs *queryScratch, exclude []string) {
	if len(exclude) == 0 {
		return
	}
	qs.excl.Grow(len(v.intern.ids))
	for _, id := range exclude {
		if i, ok := v.intern.idx[id]; ok {
			qs.excl.Add(i)
			qs.exclIdx = append(qs.exclIdx, i)
		}
	}
}

// Recommend returns the topK highest-FJ videos for the query, excluding the
// ids in exclude (normally the query video itself). It implements the KNN
// search of Figure 6 against the frozen view:
//
//  1. vectorize the query's social descriptor and rank the inverted-file
//     candidates by s̃J (SAR modes), or schedule a full exact-sJ scan
//     (ModeExact — the unoptimized CSF the paper starts from);
//  2. expand content candidates from the LSB-tree in next-longest-common-
//     prefix order;
//  3. refine candidates with the fused FJ relevance across a bounded worker
//     pool, keeping the top K.
//
// The repeat-until-K loop of Figure 6 has no tight termination bound under
// LSH, so the implementation uses the explicit probe budgets of Options
// (ContentProbe walker pops, CandidateLimit refinements), which plays the
// role of the paper's stopping rule.
//
// Refinement is deterministic: each candidate's κJ/s̃J pair is computed
// independently into a slot indexed by the candidate's position in the
// gathered index list, so the parallel pool produces bit-identical rankings
// to the serial path (Options.RefineWorkers = 1) regardless of scheduling.
func (v *View) Recommend(q Query, topK int, exclude ...string) []Result {
	res, _, _ := v.RecommendCtx(context.Background(), q, topK, exclude...)
	return res
}

// RecommendCtx is Recommend with deadline-aware serving semantics:
//
//   - Cancellation is cooperative through the whole pipeline: candidate
//     gathering polls the context between probes and every refinement worker
//     polls it between EMD evaluations (signature.KJCancel), so a canceled
//     request stops burning CPU within about one EMD evaluation and returns
//     ctx.Err().
//   - Degradation is the deadline policy: when the deadline is already
//     within Options.DegradeMargin at refinement start — or expires while
//     refinement runs — the query is answered from the coarse social ranking
//     it already has (s̃J over SAR vectors; exact sJ in ModeExact) instead of
//     failing with DeadlineExceeded, and the result is flagged Degraded. A
//     negative DegradeMargin disables the fallback.
//
// Without a deadline or cancellation the results are bit-identical to
// Recommend.
func (v *View) RecommendCtx(ctx context.Context, q Query, topK int, exclude ...string) ([]Result, RecommendInfo, error) {
	var info RecommendInfo
	if topK <= 0 {
		return nil, info, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, info, err
	}
	qs := v.getScratch()
	defer v.putScratch(qs)
	v.resolveExcludes(qs, exclude)

	useContent, useSocial, err := v.gather(ctx, q, qs)
	if err != nil {
		return nil, info, err
	}
	info.Candidates = len(qs.merged)

	// Degrade up front when the deadline cannot plausibly fit a full EMD
	// refinement pass: answer with the coarse social ranking immediately.
	canDegrade := useContent && useSocial && v.opts.DegradeMargin > 0
	if canDegrade {
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < v.opts.DegradeMargin {
			return v.finishCoarse(ctx, q, qs, topK, &info)
		}
	}

	results, err := v.refine(ctx, q, qs, useContent, useSocial)
	if err != nil {
		// A deadline that expired mid-refinement still gets the coarse
		// answer; cancellation and injected faults propagate as errors.
		if canDegrade && err == context.DeadlineExceeded {
			return v.finishCoarse(context.WithoutCancel(ctx), q, qs, topK, &info)
		}
		return nil, info, err
	}
	return topKResults(results, topK), info, nil
}

// GatherCandidates runs candidate generation only — steps 1–2 of the
// Figure 6 KNN search, exactly as RecommendCtx performs them, without the
// step-3 refinement — and reports how many candidates survived exclusion.
// It exists for benchmarking and testing the gathering path in isolation;
// with a warm view it allocates nothing.
func (v *View) GatherCandidates(ctx context.Context, q Query, exclude ...string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	qs := v.getScratch()
	defer v.putScratch(qs)
	v.resolveExcludes(qs, exclude)
	if _, _, err := v.gather(ctx, q, qs); err != nil {
		return 0, err
	}
	return len(qs.merged), nil
}

// gather fills qs.merged with the candidate set of steps 1–2, polling the
// context between probe steps. Candidates are dense video indices; the
// dense-index order is the deterministic order — no per-query id sort.
func (v *View) gather(ctx context.Context, q Query, qs *queryScratch) (useContent, useSocial bool, err error) {
	useSocial = !v.opts.ContentWeightOnly
	useContent = !v.opts.SocialOnly
	if useSocial && v.opts.Mode != ModeExact {
		v.mustBuild()
		qs.qvec = social.VectorizeInto(qs.qvec, q.Desc, v.look, v.part.Dim)
	}

	done := ctx.Done()
	switch {
	case v.opts.FullScan || (v.opts.Mode == ModeExact && useSocial):
		// Unoptimized CSF (or an effectiveness run that wants exhaustive
		// ranking): every stored video is refined.
		for i, rec := range v.recs {
			if i%cancelCheckStride == 0 && ctxDone(done) {
				return false, false, ctx.Err()
			}
			if rec == nil || qs.excl.Has(uint32(i)) {
				continue
			}
			qs.merged = append(qs.merged, uint32(i))
		}
	default:
		qs.cand.Grow(len(v.intern.ids))
		if useSocial {
			// Step 1: social candidates ranked by s̃J; keep the budgeted top.
			// The inverted-file union is a k-way merge of sorted posting
			// lists, and only CandidateLimit winners survive, so a bounded
			// heap selects them in O(n log limit). The (s desc, id asc)
			// order is total, so the kept set is exactly the full sort's
			// prefix.
			socCands := v.inv.Union(qs.qvec, &qs.union)
			sel := qs.selector(v, v.opts.CandidateLimit)
			for i, idx := range socCands {
				if i%cancelCheckStride == 0 && ctxDone(done) {
					return false, false, ctx.Err()
				}
				sel.Offer(scoredCand{i: idx, s: social.ApproxJaccard(qs.qvec, v.recs[idx].Vec)})
			}
			for _, sc := range sel.Items() {
				qs.addCandidate(sc.i)
			}
		}
		if useContent {
			// Step 2: content candidates in LCP order. The expansion budget
			// counts candidates *content itself adds*: a full social step no
			// longer starves content expansion by pre-filling the shared cap.
			if q.contentKeys != nil && q.keyFP == v.lsb.KeyFingerprint() {
				qs.walker.ResetWithKeys(v.lsb, q.Series, q.contentKeys)
			} else {
				qs.walker.Reset(v.lsb, q.Series)
			}
			added := 0
			for pops := 0; pops < v.opts.ContentProbe; pops++ {
				if pops%cancelCheckStride == 0 && ctxDone(done) {
					return false, false, ctx.Err()
				}
				e, _, ok := qs.walker.Next()
				if !ok {
					break
				}
				if v.tombstones.Has(e.Video) || qs.cand.Has(e.Video) {
					continue
				}
				qs.addCandidate(e.Video)
				added++
				if added >= 2*v.opts.CandidateLimit {
					break
				}
			}
		}
	}
	return useContent, useSocial, nil
}

// ctxDone is a non-blocking poll of a context's done channel.
func ctxDone(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// finishCoarse ranks the candidate set by social relevance alone — the
// coarse SAR scores step 1 already paid for — skipping EMD refinement
// entirely. s̃J over SAR vectors is a k-dimensional min/max ratio, orders of
// magnitude cheaper than κJ, so this path answers within any realistic
// margin. ctx is still honored (a hard cancel beats degradation).
func (v *View) finishCoarse(ctx context.Context, q Query, qs *queryScratch, topK int, info *RecommendInfo) ([]Result, RecommendInfo, error) {
	done := ctx.Done()
	results := qs.resultSlots(len(qs.merged))
	for i, idx := range qs.merged {
		if i%cancelCheckStride == 0 && ctxDone(done) {
			return nil, *info, ctx.Err()
		}
		soc := v.socialRelevanceRec(q, qs.qvec, v.recs[idx])
		results[i] = Result{VideoID: v.intern.ids[idx], Score: soc, Social: soc}
	}
	info.Degraded = true
	return topKResults(results, topK), *info, nil
}

// resultSlots returns the scratch's result buffer resized to n.
func (qs *queryScratch) resultSlots(n int) []Result {
	if cap(qs.results) >= n {
		qs.results = qs.results[:n]
	} else {
		qs.results = make([]Result, n)
	}
	return qs.results
}

// worseResult is the total result order shared by the serial and batched
// top-K selections: a ranks strictly below b under (score desc, id asc).
func worseResult(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.VideoID > b.VideoID
}

// topKResults selects the topK best results under (score desc, id asc). When
// the candidate set exceeds topK — the normal serving shape, hundreds of
// refined candidates for a top-10 answer — a bounded heap selects the winners
// in O(n log topK) instead of sorting everything; the order is total, so the
// output is identical to sort-and-truncate. The returned slice is always
// freshly allocated — the input may be pooled scratch storage.
func topKResults(results []Result, topK int) []Result {
	if len(results) <= topK {
		out := append([]Result(nil), results...)
		sort.Slice(out, func(a, b int) bool { return worseResult(out[b], out[a]) })
		return out
	}
	sel := topk.New(topK, worseResult)
	for _, r := range results {
		sel.Offer(r)
	}
	return sel.Sorted()
}

// topKResultsInto is topKResults writing into dst's storage through a caller
// owned selector — the batched path's allocation-free variant. The output
// contents are identical to topKResults on the same input.
func topKResultsInto(dst, results []Result, topK int, sel *topk.Selector[Result]) []Result {
	if len(results) <= topK {
		dst = append(dst[:0], results...)
		sort.Slice(dst, func(a, b int) bool { return worseResult(dst[b], dst[a]) })
		return dst
	}
	sel.Reset(topK)
	for _, r := range results {
		sel.Offer(r)
	}
	return sel.SortedInto(dst[:0])
}

// compiledRefine selects the κJ implementation refine uses: the compiled
// zero-allocation kernel over the view's cached signature.CompiledSeries
// (production default) or the reference uncompiled path over raw Series.
// Tests flip it to prove the two produce bit-identical rankings; nothing else
// should touch it.
var compiledRefine = true

// refine computes the fused relevance of every gathered candidate.
// Candidates are claimed from a shared atomic cursor (κJ cost varies with
// series length, so static chunking would leave workers idle) and each
// result lands in the slot of its candidate's position in qs.merged, keeping
// the output independent of scheduling. Workers poll ctx between candidates
// and, through signature.KJCancelCompiled, between individual EMD
// evaluations; the first cancellation or injected fault stops every worker
// claiming further work.
//
// Steady-state refinement allocates nothing but the worker goroutines: the
// query's series is compiled once per query, every stored candidate's
// compiled series is cached in the view and resolved by dense index (no
// string re-hash per score), the result slots live in the pooled query
// scratch, and each worker draws a warm signature.KJScratch from the view's
// per-worker pool (strictly private while held — never shared).
func (v *View) refine(ctx context.Context, q Query, qs *queryScratch, useContent, useSocial bool) ([]Result, error) {
	cands := qs.merged
	done := ctx.Done()
	var cancelled func() bool
	if done != nil {
		cancelled = func() bool { return ctxDone(done) }
	}

	var qc *signature.CompiledSeries
	if useContent && compiledRefine {
		qc = q.compiled()
	}

	var failure atomic.Pointer[error]
	fail := func(err error) {
		e := err
		failure.CompareAndSwap(nil, &e)
	}

	results := qs.resultSlots(len(cands))
	score := func(i int, scratch *signature.KJScratch) bool {
		if err := faults.Inject(faults.RefineScore); err != nil {
			fail(err)
			return false
		}
		if cancelled != nil && cancelled() {
			fail(ctx.Err())
			return false
		}
		idx := cands[i]
		rec := v.recs[idx]
		var content, soc float64
		if useContent && rec != nil {
			var kj float64
			var complete bool
			if qc != nil && rec.Compiled != nil {
				kj, complete = signature.KJCancelCompiled(qc, rec.Compiled, v.opts.MatchThreshold, cancelled, scratch)
			} else {
				kj, complete = signature.KJCancel(q.Series, rec.Series, v.opts.MatchThreshold, cancelled)
			}
			if !complete {
				fail(ctx.Err())
				return false
			}
			content = kj
		}
		if useSocial && rec != nil {
			soc = v.socialRelevanceRec(q, qs.qvec, rec)
		}
		results[i] = Result{
			VideoID: v.intern.ids[idx],
			Score:   v.fuse(content, soc),
			Content: content,
			Social:  soc,
		}
		return true
	}

	workers := v.opts.RefineWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 || len(cands) < minParallelRefine {
		for i := range cands {
			if !score(i, &qs.kj) {
				return nil, *failure.Load()
			}
		}
		return results, nil
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := v.kjScratch.Get().(*signature.KJScratch)
			defer v.kjScratch.Put(scratch)
			for failure.Load() == nil {
				i := int(cursor.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				if !score(i, scratch) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := failure.Load(); p != nil {
		return nil, *p
	}
	return results, nil
}

// RecommendID recommends for a stored video, excluding the video itself.
func (v *View) RecommendID(id string, topK int) []Result {
	res, _, _ := v.RecommendIDCtx(context.Background(), id, topK)
	return res
}

// RecommendIDCtx is RecommendID with the deadline-aware semantics of
// RecommendCtx.
func (v *View) RecommendIDCtx(ctx context.Context, id string, topK int) ([]Result, RecommendInfo, error) {
	q, ok := v.QueryFor(id)
	if !ok {
		return nil, RecommendInfo{}, nil
	}
	return v.RecommendCtx(ctx, q, topK, id)
}

// Recommend runs the KNN search against the recommender's current state.
// Unlike View.Recommend it is not safe for use concurrent with mutations;
// freeze a View for lock-free serving.
func (r *Recommender) Recommend(q Query, topK int, exclude ...string) []Result {
	return r.state.Recommend(q, topK, exclude...)
}

// RecommendID recommends for a stored video, excluding the video itself.
func (r *Recommender) RecommendID(id string, topK int) []Result {
	return r.state.RecommendID(id, topK)
}
