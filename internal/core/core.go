// Package core assembles the paper's contribution: the multiple
// feature-based recommender of §4 — cuboid-signature content relevance (κJ),
// social relevance (sJ / s̃J), the fusion FJ = (1−ω)·κJ + ω·sJ (Equation 9),
// the SAR and chained-hash optimizations, the KNN search of Figure 6, and
// the incremental social-updates path of Figure 5.
package core

import (
	"fmt"
	"sort"

	"videorec/internal/community"
	"videorec/internal/hashing"
	"videorec/internal/index"
	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/video"
)

// Mode selects the social-relevance strategy — the three efficiency variants
// of Figure 12(a).
type Mode int

const (
	// ModeExact is the unoptimized CSF: exact sJ computed by the naive
	// quadratic set comparison over every video in the collection.
	ModeExact Mode = iota
	// ModeSAR approximates sJ with sub-community histograms (s̃J); user →
	// sub-community mapping goes through a linear dictionary scan.
	ModeSAR
	// ModeSARHash is ModeSAR with the chained shift-add-xor hash table
	// doing the user → sub-community mapping (CSF-SAR-H).
	ModeSARHash
)

func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "CSF"
	case ModeSAR:
		return "CSF-SAR"
	case ModeSARHash:
		return "CSF-SAR-H"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configures a Recommender.
type Options struct {
	Omega             float64 // ω of Equation 9; the paper's optimum is 0.7
	K                 int     // number of sub-communities; the paper's optimum is 60
	Mode              Mode
	MatchThreshold    float64 // SimC level for κJ pair matching
	ContentWeightOnly bool    // CR baseline: skip the social side entirely
	SocialOnly        bool    // SR baseline: skip the content side entirely
	FullScan          bool    // refine every stored video (effectiveness runs), skipping the index probes

	Sig signature.Options
	LSB index.LSBOptions

	HashBuckets    int // chained hash table size
	UIGMaxAudience int // cap on per-video audience during UIG construction
	MinUserVideos  int // UIG dictionary ignores users seen on fewer videos
	ContentProbe   int // LCP walker pops per recommendation
	CandidateLimit int // refinement budget per recommendation
}

// DefaultOptions uses the paper's tuned parameters (ω=0.7, k=60).
func DefaultOptions() Options {
	return Options{
		Omega:          0.7,
		K:              60,
		Mode:           ModeSARHash,
		MatchThreshold: signature.DefaultMatchThreshold,
		Sig:            signature.DefaultOptions(),
		LSB:            index.DefaultLSBOptions(),
		HashBuckets:    1 << 12,
		UIGMaxAudience: 50,
		MinUserVideos:  2,
		ContentProbe:   512,
		CandidateLimit: 400,
	}
}

// Record is everything the recommender keeps per ingested video: the compact
// signature series, the social descriptor, and (after BuildSocial) the SAR
// descriptor vector. Frames are never retained.
type Record struct {
	ID     string
	Series signature.Series
	Desc   social.Descriptor
	Vec    social.Vector
}

// Query is a recommendation input: the user-selected clip's signature series
// and social descriptor (Q = (q_f, q_s) in §3).
type Query struct {
	Series signature.Series
	Desc   social.Descriptor
}

// Result is one recommended video with its fused score and the two
// component relevances.
type Result struct {
	VideoID string
	Score   float64
	Content float64
	Social  float64
}

// Recommender is the content-social video recommender.
type Recommender struct {
	opts    Options
	records map[string]*Record
	order   []string // ingestion order: deterministic full scans

	lsb   *index.LSB
	inv   *index.Inverted
	table *hashing.Table
	dict  []dictEntry // linear-scan dictionary for ModeSAR
	part  *community.Partition
	graph *community.Graph
	maint *community.Maintainer

	touched    map[int]bool    // dimensions changed by the latest maintenance pass
	tombstones map[string]bool // removed videos with LSB entries pending compaction
	built      bool
}

// newLSBFor builds the content index for the given options (shared by the
// constructor and compaction).
func newLSBFor(opts Options) *index.LSB {
	return index.NewLSB(opts.LSB)
}

type dictEntry struct {
	user string
	cno  int
}

// NewRecommender creates an empty recommender.
func NewRecommender(opts Options) *Recommender {
	if opts.K < 1 {
		opts.K = 60
	}
	if opts.Omega < 0 {
		opts.Omega = 0
	}
	if opts.Omega > 1 {
		opts.Omega = 1
	}
	if opts.HashBuckets < 1 {
		opts.HashBuckets = 1 << 12
	}
	if opts.UIGMaxAudience < 2 {
		opts.UIGMaxAudience = 50
	}
	if opts.ContentProbe < 1 {
		opts.ContentProbe = 512
	}
	if opts.CandidateLimit < 1 {
		opts.CandidateLimit = 400
	}
	if opts.Sig.Grid == 0 {
		opts.Sig = signature.DefaultOptions()
	}
	if opts.MatchThreshold == 0 {
		opts.MatchThreshold = signature.DefaultMatchThreshold
	}
	return &Recommender{
		opts:    opts,
		records: make(map[string]*Record),
		lsb:     newLSBFor(opts),
	}
}

// Options returns the recommender's configuration.
func (r *Recommender) Options() Options { return r.opts }

// Len returns the number of ingested videos.
func (r *Recommender) Len() int { return len(r.records) }

// IngestVideo extracts the signature series from the clip, stores it with
// the social descriptor and indexes the signatures. The clip's frames are
// not retained. Re-ingesting an id replaces its record (the LSB entries of
// the old version remain; call BuildSocial to rebuild cleanly if that
// matters).
func (r *Recommender) IngestVideo(id string, v *video.Video, desc social.Descriptor) {
	series := signature.Extract(v, r.opts.Sig)
	r.IngestSeries(id, series, desc)
}

// IngestSeries stores a pre-extracted signature series (useful when the
// caller already ran extraction, e.g. the benchmark harness).
func (r *Recommender) IngestSeries(id string, series signature.Series, desc social.Descriptor) {
	if _, exists := r.records[id]; !exists {
		r.order = append(r.order, id)
	}
	r.records[id] = &Record{ID: id, Series: series, Desc: desc}
	r.lsb.Add(id, series)
	r.built = false
}

// Record returns the stored record for a video id.
func (r *Recommender) Record(id string) (*Record, bool) {
	rec, ok := r.records[id]
	return rec, ok
}

// Partition exposes the current sub-community partition (nil before
// BuildSocial).
func (r *Recommender) Partition() *community.Partition { return r.part }

// BuildSocial constructs the social machinery over everything ingested:
// the user interest graph, the k sub-communities (Figure 3), the chained
// hash dictionary, per-video descriptor vectors, and the inverted files.
// It must be called before Recommend in the SAR modes and before
// ApplyUpdates.
func (r *Recommender) BuildSocial() {
	r.compactLSB()
	audiences := make(map[string][]string, len(r.records))
	for _, id := range r.order {
		audiences[id] = capAudience(r.records[id].Desc.Users(), r.opts.UIGMaxAudience)
	}
	audiences = FilterAudiences(audiences, r.opts.MinUserVideos)
	r.graph = community.BuildUIG(audiences)
	r.part = community.ExtractSubCommunities(r.graph, r.opts.K)
	r.installSocial()
}

// FilterAudiences drops users appearing in fewer than min videos from every
// audience. One-shot commenters carry no community signal — every edge they
// contribute has weight 1 — yet they dominate the node population and make
// the k of Figure 3 peel singletons instead of separating fandoms, so the
// dictionary is built over recurring users only.
func FilterAudiences(audiences map[string][]string, min int) map[string][]string {
	if min <= 1 {
		return audiences
	}
	seen := map[string]int{}
	for _, users := range audiences {
		uniq := map[string]bool{}
		for _, u := range users {
			uniq[u] = true
		}
		for u := range uniq {
			seen[u]++
		}
	}
	out := make(map[string][]string, len(audiences))
	for vid, users := range audiences {
		kept := make([]string, 0, len(users))
		for _, u := range users {
			if seen[u] >= min {
				kept = append(kept, u)
			}
		}
		out[vid] = kept
	}
	return out
}

// capAudience deterministically samples at most max users (evenly strided
// over the sorted list) for UIG construction; very popular videos would
// otherwise contribute quadratic pair counts.
func capAudience(users []string, max int) []string {
	if len(users) <= max {
		return users
	}
	out := make([]string, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, users[i*len(users)/max])
	}
	return out
}

// rebuildDictionaries refreshes the hash table and the linear dictionary
// from the current partition.
func (r *Recommender) rebuildDictionaries() {
	r.table = hashing.NewTable(r.opts.HashBuckets, 17)
	r.dict = r.dict[:0]
	users := make([]string, 0, len(r.part.Assign))
	for u := range r.part.Assign {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		cno := r.part.Assign[u]
		r.table.Insert(u, cno)
		r.dict = append(r.dict, dictEntry{user: u, cno: cno})
	}
}

// vectorizeAll recomputes every video's descriptor vector and rebuilds the
// inverted files.
func (r *Recommender) vectorizeAll() {
	r.inv = index.NewInverted(r.part.Dim)
	for _, id := range r.order {
		rec := r.records[id]
		rec.Vec = social.Vectorize(rec.Desc, r.lookupFunc(), r.part.Dim)
		r.inv.Add(id, rec.Vec)
	}
}

// lookupFunc returns the user → sub-community mapping for the active mode:
// the chained hash table for ModeSARHash, the deliberately linear dictionary
// scan for ModeSAR (the unoptimized vectorization the paper's hash scheme
// speeds up), and the partition map otherwise.
func (r *Recommender) lookupFunc() social.Lookup {
	switch r.opts.Mode {
	case ModeSARHash:
		return r.table.Lookup
	case ModeSAR:
		return func(u string) (int, bool) {
			for _, e := range r.dict {
				if e.user == u {
					return e.cno, true
				}
			}
			return 0, false
		}
	default:
		return func(u string) (int, bool) {
			c, ok := r.part.Assign[u]
			return c, ok
		}
	}
}

// ExtractSeries runs cuboid-signature extraction with the recommender's
// configured parameters. It touches no recommender state and is safe to call
// from many goroutines — batch ingest parallelizes extraction this way.
func (r *Recommender) ExtractSeries(v *video.Video) signature.Series {
	return signature.Extract(v, r.opts.Sig)
}

// AdHocQuery builds a Query from a clip that is not part of the collection
// — the anonymous visitor's currently-watched video.
func (r *Recommender) AdHocQuery(v *video.Video, desc social.Descriptor) Query {
	return Query{Series: signature.Extract(v, r.opts.Sig), Desc: desc}
}

// QueryFor builds a Query from a stored video id.
func (r *Recommender) QueryFor(id string) (Query, bool) {
	rec, ok := r.records[id]
	if !ok {
		return Query{}, false
	}
	return Query{Series: rec.Series, Desc: rec.Desc}, true
}

// ContentRelevance is κJ between the query and a stored video.
func (r *Recommender) ContentRelevance(q Query, id string) float64 {
	rec, ok := r.records[id]
	if !ok {
		return 0
	}
	return signature.KJ(q.Series, rec.Series, r.opts.MatchThreshold)
}

// SocialRelevance is the mode-dependent social relevance between the query
// and a stored video: exact sJ (naive quadratic, as the unoptimized system
// the paper starts from) in ModeExact, s̃J over SAR vectors otherwise.
func (r *Recommender) SocialRelevance(q Query, qvec social.Vector, id string) float64 {
	rec, ok := r.records[id]
	if !ok {
		return 0
	}
	if r.opts.Mode == ModeExact {
		return naiveJaccard(q.Desc, rec.Desc)
	}
	return social.ApproxJaccard(qvec, rec.Vec)
}

// naiveJaccard is the quadratic set comparison the paper attributes to the
// unoptimized sJ computation ("the computation complexity of the measure is
// quadratic to the number of elements", §4.2.1). It exists so the CSF /
// CSF-SAR / CSF-SAR-H efficiency comparison of Figure 12(a) measures what
// the paper measured; social.Jaccard is the linear merge used elsewhere.
func naiveJaccard(a, b social.Descriptor) float64 {
	au, bu := a.Users(), b.Users()
	if len(au) == 0 && len(bu) == 0 {
		return 0
	}
	inter := 0
	for _, x := range au {
		for _, y := range bu {
			if x == y {
				inter++
				break
			}
		}
	}
	union := len(au) + len(bu) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// fuse is Equation 9.
func (r *Recommender) fuse(content, soc float64) float64 {
	if r.opts.ContentWeightOnly {
		return content
	}
	if r.opts.SocialOnly {
		return soc
	}
	return (1-r.opts.Omega)*content + r.opts.Omega*soc
}
