// Package core assembles the paper's contribution: the multiple
// feature-based recommender of §4 — cuboid-signature content relevance (κJ),
// social relevance (sJ / s̃J), the fusion FJ = (1−ω)·κJ + ω·sJ (Equation 9),
// the SAR and chained-hash optimizations, the KNN search of Figure 6, and
// the incremental social-updates path of Figure 5.
//
// The package is split along the read/write axis: Recommender is the
// write-side builder that ingests videos, builds the social machinery and
// applies incremental updates; View is the immutable query-side state a
// Freeze call publishes. Recommender methods mutate copy-on-write — the
// first mutation after a Freeze clones everything the frozen View shares —
// so published views serve concurrent readers lock-free while the builder
// moves on.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"videorec/internal/community"
	"videorec/internal/hashing"
	"videorec/internal/index"
	"videorec/internal/signature"
	"videorec/internal/social"
	"videorec/internal/video"
)

// Mode selects the social-relevance strategy — the three efficiency variants
// of Figure 12(a).
type Mode int

const (
	// ModeExact is the unoptimized CSF: exact sJ computed by the naive
	// quadratic set comparison over every video in the collection.
	ModeExact Mode = iota
	// ModeSAR approximates sJ with sub-community histograms (s̃J); user →
	// sub-community mapping goes through a linear dictionary scan.
	ModeSAR
	// ModeSARHash is ModeSAR with the chained shift-add-xor hash table
	// doing the user → sub-community mapping (CSF-SAR-H).
	ModeSARHash
)

func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "CSF"
	case ModeSAR:
		return "CSF-SAR"
	case ModeSARHash:
		return "CSF-SAR-H"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configures a Recommender.
type Options struct {
	Omega             float64 // ω of Equation 9; the paper's optimum is 0.7
	K                 int     // number of sub-communities; the paper's optimum is 60
	Mode              Mode
	MatchThreshold    float64 // SimC level for κJ pair matching
	ContentWeightOnly bool    // CR baseline: skip the social side entirely
	SocialOnly        bool    // SR baseline: skip the content side entirely
	FullScan          bool    // refine every stored video (effectiveness runs), skipping the index probes

	Sig signature.Options
	LSB index.LSBOptions

	HashBuckets    int // chained hash table size
	UIGMaxAudience int // cap on per-video audience during UIG construction
	MinUserVideos  int // UIG dictionary ignores users seen on fewer videos
	ContentProbe   int // LCP walker pops per recommendation
	CandidateLimit int // refinement budget per recommendation
	RefineWorkers  int // step-3 refinement goroutines: 0 = GOMAXPROCS, 1 = serial

	// DegradeMargin is the deadline headroom below which RecommendCtx skips
	// (or abandons) step-3 EMD refinement and answers with the coarse
	// SAR-ranked candidates instead — a degraded but in-deadline result.
	// 0 selects the default (20ms); negative disables degradation, so a
	// too-tight deadline surfaces as context.DeadlineExceeded.
	DegradeMargin time.Duration
}

// DefaultDegradeMargin is the deadline headroom under which refinement is
// skipped when Options.DegradeMargin is left zero.
const DefaultDegradeMargin = 20 * time.Millisecond

// DefaultOptions uses the paper's tuned parameters (ω=0.7, k=60).
func DefaultOptions() Options {
	return Options{
		Omega:          0.7,
		K:              60,
		Mode:           ModeSARHash,
		MatchThreshold: signature.DefaultMatchThreshold,
		Sig:            signature.DefaultOptions(),
		LSB:            index.DefaultLSBOptions(),
		HashBuckets:    1 << 12,
		UIGMaxAudience: 50,
		MinUserVideos:  2,
		ContentProbe:   512,
		CandidateLimit: 400,
		DegradeMargin:  DefaultDegradeMargin,
	}
}

// Record is everything the recommender keeps per ingested video: the compact
// signature series, its compiled form (sorted values, validated weights,
// precomputed centroids — the representation the refinement kernel consumes),
// the social descriptor, and (after BuildSocial) the SAR descriptor vector.
// Frames are never retained. The fields of a published Record are immutable:
// updates replace the Descriptor and Vector values wholesale (and, under
// copy-on-write, the *Record itself), never edit them in place; Series and
// Compiled are built together at ingest and never change.
type Record struct {
	ID       string
	Series   signature.Series
	Compiled *signature.CompiledSeries
	Desc     social.Descriptor
	Vec      social.Vector
}

// Query is a recommendation input: the user-selected clip's signature series
// and social descriptor (Q = (q_f, q_s) in §3). Queries built by QueryFor and
// AdHocQuery carry a precompiled series; zero-value construction is still
// valid — the query path compiles on demand.
type Query struct {
	Series signature.Series
	Desc   social.Descriptor

	comp *signature.CompiledSeries

	// contentKeys / keyFP carry the query's precomputed content-index keys
	// (View.PrimeContentKeys). Views whose LSB forests share the stamped
	// fingerprint reuse them instead of re-embedding the series — the
	// sharded fan-out path keys a query once, not once per shard.
	contentKeys []uint64
	keyFP       uint64
}

// compiled returns the query's compiled series, building it if the query was
// constructed without one (compilation is pure, so racing builders at worst
// duplicate work).
func (q Query) compiled() *signature.CompiledSeries {
	if q.comp != nil {
		return q.comp
	}
	return signature.CompileSeries(q.Series)
}

// Result is one recommended video with its fused score and the two
// component relevances.
type Result struct {
	VideoID string
	Score   float64
	Content float64
	Social  float64
}

// Recommender is the write side of the content-social recommender: it owns
// the mutable build state (the View being grown plus the user interest graph
// and its maintainer) and publishes immutable Views for querying. It is not
// safe for concurrent use — callers serialize mutations and hand frozen
// Views to readers.
type Recommender struct {
	opts  Options
	state *View // current build state; cloned on first mutation after Freeze

	// frozen marks state as shared with a published View: the next mutation
	// must copy-on-write before touching anything the View references.
	frozen bool

	graph *community.Graph
	maint *community.Maintainer

	touched map[int]bool // dimensions changed by the latest maintenance pass
}

// newLSBFor builds the content index for the given options (shared by the
// constructor and compaction).
func newLSBFor(opts Options) *index.LSB {
	return index.NewLSB(opts.LSB)
}

type dictEntry struct {
	user string
	cno  int
}

// NewRecommender creates an empty recommender.
func NewRecommender(opts Options) *Recommender {
	if opts.K < 1 {
		opts.K = 60
	}
	if opts.Omega < 0 {
		opts.Omega = 0
	}
	if opts.Omega > 1 {
		opts.Omega = 1
	}
	if opts.HashBuckets < 1 {
		opts.HashBuckets = 1 << 12
	}
	if opts.UIGMaxAudience < 2 {
		opts.UIGMaxAudience = 50
	}
	if opts.ContentProbe < 1 {
		opts.ContentProbe = 512
	}
	if opts.CandidateLimit < 1 {
		opts.CandidateLimit = 400
	}
	if opts.Sig.Grid == 0 {
		opts.Sig = signature.DefaultOptions()
	}
	if opts.MatchThreshold == 0 {
		opts.MatchThreshold = signature.DefaultMatchThreshold
	}
	if opts.DegradeMargin == 0 {
		opts.DegradeMargin = DefaultDegradeMargin
	}
	st := &View{
		opts:        opts,
		intern:      newIntern(),
		internOwned: true,
		lsb:         newLSBFor(opts),
	}
	st.newPools()
	return &Recommender{opts: opts, state: st}
}

// internID resolves a video id to its dense index, minting the next index if
// the id is new. Indices are forever: a removed id keeps its slot and gets it
// back on re-ingest. Minting appends to the intern table, which may still be
// shared with published views — copy-on-intern makes the table private first,
// so readers keep walking the table they froze.
func (r *Recommender) internID(id string) uint32 {
	s := r.state
	if i, ok := s.intern.idx[id]; ok {
		return i
	}
	if !s.internOwned {
		s.intern = s.intern.clone()
		s.internOwned = true
	}
	i := uint32(len(s.intern.ids))
	s.intern.ids = append(s.intern.ids, id)
	s.intern.idx[id] = i
	return i
}

// Options returns the recommender's configuration.
func (r *Recommender) Options() Options { return r.opts }

// Len returns the number of ingested videos.
func (r *Recommender) Len() int { return r.state.Len() }

// Built reports whether BuildSocial has run since the last ingest.
func (r *Recommender) Built() bool { return r.state.built }

// Freeze publishes the current state as an immutable View. The returned View
// answers queries forever from the state at the freeze point; the
// recommender's next mutation transparently clones whatever the View shares
// (copy-on-write) before applying itself. Freezing is O(1) — the clone cost
// is paid lazily, by the first mutation after the freeze, and only once per
// freeze→mutate transition.
func (r *Recommender) Freeze() *View {
	r.frozen = true
	return r.state
}

// beforeWrite makes the build state privately owned again: if the current
// state was published by Freeze, every structure a reader could be walking
// is cloned and the maintainer rebound to the private partition copy. Every
// mutating method calls it first.
func (r *Recommender) beforeWrite() {
	if !r.frozen {
		return
	}
	r.state = r.state.clone()
	r.frozen = false
	if r.maint != nil {
		r.maint.SetPartition(r.state.part)
	}
}

// IngestVideo extracts the signature series from the clip, stores it with
// the social descriptor and indexes the signatures. The clip's frames are
// not retained. Re-ingesting an id replaces its record (the LSB entries of
// the old version remain; call BuildSocial to rebuild cleanly if that
// matters).
func (r *Recommender) IngestVideo(id string, v *video.Video, desc social.Descriptor) {
	series := signature.Extract(v, r.opts.Sig)
	r.IngestSeries(id, series, desc)
}

// IngestSeries stores a pre-extracted signature series (useful when the
// caller already ran extraction, e.g. the batch-ingest path and the
// benchmark harness).
func (r *Recommender) IngestSeries(id string, series signature.Series, desc social.Descriptor) {
	r.beforeWrite()
	s := r.state
	i := r.internID(id)
	if int(i) >= len(s.recs) {
		s.recs = append(s.recs, make([]*Record, int(i)+1-len(s.recs))...)
	}
	if s.recs[i] == nil {
		s.order = append(s.order, id)
	}
	s.recs[i] = &Record{
		ID:       id,
		Series:   series,
		Compiled: signature.CompileSeries(series),
		Desc:     desc,
	}
	s.lsb.Add(i, series)
	s.built = false
	s.soa = nil // record set changed; rebuilt by the next installSocial
}

// Record returns the stored record for a video id.
func (r *Recommender) Record(id string) (*Record, bool) { return r.state.Record(id) }

// Partition exposes the current sub-community partition (nil before
// BuildSocial).
func (r *Recommender) Partition() *community.Partition { return r.state.part }

// BuildSocial constructs the social machinery over everything ingested:
// the user interest graph, the k sub-communities (Figure 3), the chained
// hash dictionary, per-video descriptor vectors, and the inverted files.
// It must be called before Recommend in the SAR modes and before
// ApplyUpdates.
func (r *Recommender) BuildSocial() {
	r.BuildSocialFrom(r.CollectAudiences())
}

// CollectAudiences returns the per-video commenter audiences of everything
// ingested, capped exactly as BuildSocial caps them (UIGMaxAudience) but NOT
// yet filtered by MinUserVideos — that filter must see the whole corpus, so
// a sharded deployment applies it to the union of every shard's map inside
// BuildSocialFrom. For a single engine,
// BuildSocialFrom(CollectAudiences()) is BuildSocial.
func (r *Recommender) CollectAudiences() map[string][]string {
	s := r.state
	audiences := make(map[string][]string, len(s.order))
	for _, id := range s.order {
		audiences[id] = capAudience(s.record(id).Desc.Users(), r.opts.UIGMaxAudience)
	}
	return audiences
}

// BuildSocialFrom builds the social machinery over an explicit audience map
// — the shard-local build: every shard of a partitioned deployment receives
// the same global map (the union of all shards' CollectAudiences) and
// derives an identical user interest graph, partition, hash table and
// linear dictionary, because construction is deterministic given the map's
// contents. That is the property that makes per-shard SAR vectors — and
// hence merged scatter-gather rankings — bit-identical to a single engine
// holding the whole corpus. Videos present in the map but not stored
// locally contribute to the graph only; vectorization covers local records.
func (r *Recommender) BuildSocialFrom(audiences map[string][]string) {
	r.beforeWrite()
	r.compactLSB()
	s := r.state
	audiences = FilterAudiences(audiences, r.opts.MinUserVideos)
	r.graph = community.BuildUIG(audiences)
	s.part = community.ExtractSubCommunities(r.graph, r.opts.K)
	r.installSocial()
}

// Reindex rebuilds the derived structures — dictionaries, SAR vectors,
// inverted files, compacted LSB trees — around the EXISTING graph and
// partition, without re-extracting sub-communities. This is the shard-drain
// primitive: when videos re-intern onto a surviving shard, its incrementally
// maintained partition (which a fresh extraction would not reproduce) must
// survive, and only the per-record index state needs recomputing. Panics if
// the social machinery was never built.
func (r *Recommender) Reindex() {
	if r.state.part == nil {
		panic("core: Reindex requires a prior BuildSocial")
	}
	r.beforeWrite()
	r.compactLSB()
	r.installSocial()
}

// FilterAudiences drops users appearing in fewer than min videos from every
// audience. One-shot commenters carry no community signal — every edge they
// contribute has weight 1 — yet they dominate the node population and make
// the k of Figure 3 peel singletons instead of separating fandoms, so the
// dictionary is built over recurring users only.
func FilterAudiences(audiences map[string][]string, min int) map[string][]string {
	if min <= 1 {
		return audiences
	}
	seen := map[string]int{}
	for _, users := range audiences {
		uniq := map[string]bool{}
		for _, u := range users {
			uniq[u] = true
		}
		for u := range uniq {
			seen[u]++
		}
	}
	out := make(map[string][]string, len(audiences))
	for vid, users := range audiences {
		kept := make([]string, 0, len(users))
		for _, u := range users {
			if seen[u] >= min {
				kept = append(kept, u)
			}
		}
		out[vid] = kept
	}
	return out
}

// capAudience deterministically samples at most max users (evenly strided
// over the sorted list) for UIG construction; very popular videos would
// otherwise contribute quadratic pair counts.
func capAudience(users []string, max int) []string {
	if len(users) <= max {
		return users
	}
	out := make([]string, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, users[i*len(users)/max])
	}
	return out
}

// rebuildDictionaries refreshes the hash table and the linear dictionary
// from the current partition.
func (r *Recommender) rebuildDictionaries() {
	s := r.state
	s.table = hashing.NewTable(r.opts.HashBuckets, 17)
	s.dict = nil
	assign := s.part.AssignMap()
	users := make([]string, 0, len(assign))
	for u := range assign {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		cno := assign[u]
		s.table.Insert(u, cno)
		s.dict = append(s.dict, dictEntry{user: u, cno: cno})
	}
}

// vectorizeAll recomputes every video's descriptor vector and rebuilds the
// inverted files. Iterating in dense-index order makes every posting-list
// insert hit the sorted-append fast path.
func (r *Recommender) vectorizeAll() {
	s := r.state
	s.inv = index.NewInverted(s.part.Dim)
	lookup := s.lookupFunc()
	for i, rec := range s.recs {
		if rec == nil {
			continue
		}
		rec.Vec = social.Vectorize(rec.Desc, lookup, s.part.Dim)
		s.inv.Add(uint32(i), rec.Vec)
	}
}

// ExtractSeries runs cuboid-signature extraction with the recommender's
// configured parameters. It touches no recommender state beyond the
// immutable options and is safe to call from many goroutines — batch ingest
// parallelizes extraction this way.
func (r *Recommender) ExtractSeries(v *video.Video) signature.Series {
	return signature.Extract(v, r.opts.Sig)
}

// ExtractSeriesCtx is ExtractSeries with cooperative cancellation: the
// context is polled inside the extraction loop (per shot and per q-gram
// window), so a cancelled bulk ingest abandons even a very long clip within
// one signature of the cancellation instead of finishing it. Returns the
// context's error and a nil series when cancelled.
func (r *Recommender) ExtractSeriesCtx(ctx context.Context, v *video.Video) (signature.Series, error) {
	series, ok := signature.ExtractCancelled(v, r.opts.Sig, func() bool { return ctx.Err() != nil })
	if !ok {
		return nil, ctx.Err()
	}
	return series, nil
}

// AdHocQuery builds a Query from a clip that is not part of the collection
// — the anonymous visitor's currently-watched video.
func (r *Recommender) AdHocQuery(v *video.Video, desc social.Descriptor) Query {
	series := signature.Extract(v, r.opts.Sig)
	return Query{Series: series, Desc: desc, comp: signature.CompileSeries(series)}
}

// QueryFor builds a Query from a stored video id.
func (r *Recommender) QueryFor(id string) (Query, bool) { return r.state.QueryFor(id) }

// ContentRelevance is κJ between the query and a stored video.
func (r *Recommender) ContentRelevance(q Query, id string) float64 {
	return r.state.ContentRelevance(q, id)
}

// SocialRelevance is the mode-dependent social relevance between the query
// and a stored video: exact sJ (naive quadratic, as the unoptimized system
// the paper starts from) in ModeExact, s̃J over SAR vectors otherwise.
func (r *Recommender) SocialRelevance(q Query, qvec social.Vector, id string) float64 {
	return r.state.SocialRelevance(q, qvec, id)
}

// naiveJaccard is the quadratic set comparison the paper attributes to the
// unoptimized sJ computation ("the computation complexity of the measure is
// quadratic to the number of elements", §4.2.1). It exists so the CSF /
// CSF-SAR / CSF-SAR-H efficiency comparison of Figure 12(a) measures what
// the paper measured; social.Jaccard is the linear merge used elsewhere.
func naiveJaccard(a, b social.Descriptor) float64 {
	au, bu := a.Users(), b.Users()
	if len(au) == 0 && len(bu) == 0 {
		return 0
	}
	inter := 0
	for _, x := range au {
		for _, y := range bu {
			if x == y {
				inter++
				break
			}
		}
	}
	union := len(au) + len(bu) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
