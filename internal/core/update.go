package core

import (
	"sort"

	"videorec/internal/community"
	"videorec/internal/social"
)

// UpdateReport summarizes one ApplyUpdates pass: the maintenance statistics
// of Figure 5 plus the descriptor re-vectorization work, the quantities of
// the Equation 8 cost model.
type UpdateReport struct {
	Maintenance        community.Stats
	VideosRevectorized int
	DimensionsTouched  int
}

// ApplyUpdates ingests a batch of new comments (video id → new commenting
// users) arriving in the current period and runs the Figure 5 maintenance:
//
//  1. new social connections are derived exactly as the UIG defines them
//     (each video's new commenters connect to its prior audience and to each
//     other, one unit of weight per shared video);
//  2. the sub-communities are maintained (union / split) with the hash
//     table and linear dictionary patched through the maintenance hooks;
//  3. descriptors of commented videos grow, and every video whose vector
//     touches a changed dimension — or whose descriptor changed — is
//     re-vectorized and re-posted in the inverted files.
func (r *Recommender) ApplyUpdates(newComments map[string][]string) UpdateReport {
	return r.ApplyEdges(r.DeriveConnections(newComments), newComments)
}

// DeriveConnections runs step 1 of the maintenance pass in isolation: the
// new social connections a comment batch induces, derived from the batch and
// the prior audiences of the commented videos — which live only in this
// recommender. Videos the recommender does not hold are skipped, so a shard
// derives exactly its slice of the global edge set; SumConnections merges
// the slices back into the edge list a whole-corpus engine would derive.
func (r *Recommender) DeriveConnections(newComments map[string][]string) []community.Edge {
	r.state.mustBuild()
	s := r.state
	acc := map[[2]string]float64{}
	vids := make([]string, 0, len(newComments))
	for vid := range newComments {
		vids = append(vids, vid)
	}
	sort.Strings(vids)
	for _, vid := range vids {
		rec := s.record(vid)
		if rec == nil {
			continue
		}
		fresh := dedupeUsers(newComments[vid])
		old := capAudience(rec.Desc.Users(), r.opts.UIGMaxAudience)
		for i, u := range fresh {
			for _, v := range old {
				pairAdd(acc, u, v)
			}
			for _, v := range fresh[i+1:] {
				pairAdd(acc, u, v)
			}
		}
	}
	return sortedEdges(acc)
}

// SumConnections merges per-shard edge slices into one deterministic edge
// list, summing the weights of pairs that several shards contributed (the
// same user pair can share videos on different shards). Merging commutative
// sums and re-sorting reproduces exactly the edge list DeriveConnections
// computes over an unpartitioned corpus.
func SumConnections(parts ...[]community.Edge) []community.Edge {
	acc := map[[2]string]float64{}
	for _, edges := range parts {
		for _, e := range edges {
			key := [2]string{e.U, e.V}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			acc[key] += e.W
		}
	}
	return sortedEdges(acc)
}

// sortedEdges flattens a pair-weight accumulator into the canonical
// deterministic edge order (U asc, then V asc).
func sortedEdges(acc map[[2]string]float64) []community.Edge {
	keys := make([][2]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	edges := make([]community.Edge, 0, len(keys))
	for _, k := range keys {
		edges = append(edges, community.Edge{U: k[0], V: k[1], W: acc[k]})
	}
	return edges
}

// ApplyEdges runs steps 2–3 of the maintenance pass against an explicit
// edge list: sub-community maintenance, then descriptor growth and
// re-vectorization. For a single engine ApplyUpdates derives the edges and
// calls this; a shard of a partitioned deployment receives the globally
// summed edge list (so every shard's replicated partition evolves
// identically) along with only its own slice of the comment batch (comments
// for videos it does not hold are ignored by the descriptor-growth loop).
func (r *Recommender) ApplyEdges(edges []community.Edge, newComments map[string][]string) UpdateReport {
	r.state.mustBuild()
	r.beforeWrite()
	s := r.state
	vids := make([]string, 0, len(newComments))
	for vid := range newComments {
		vids = append(vids, vid)
	}
	sort.Strings(vids)

	// Step 2: maintenance with dimension tracking (the BuildSocial hooks
	// record every changed dimension into r.touched).
	r.touched = map[int]bool{}
	st := r.maint.ApplyConnections(edges)
	touched := r.touched

	// Step 3: grow descriptors and re-vectorize affected videos. Dirty
	// tracking is by dense index; re-posting in ascending index order keeps
	// the sorted posting-list edits cache-friendly.
	dirty := map[uint32]bool{}
	for _, vid := range vids {
		if i, ok := s.intern.idx[vid]; ok && s.recs[i] != nil {
			rec := s.recs[i]
			rec.Desc = rec.Desc.Add(newComments[vid]...)
			dirty[i] = true
		}
	}
	if len(touched) > 0 {
		for i, rec := range s.recs {
			if rec == nil {
				continue
			}
			for d := range touched {
				if d < len(rec.Vec) && rec.Vec[d] > 0 {
					dirty[uint32(i)] = true
					break
				}
			}
		}
	}
	s.inv.Grow(s.part.Dim)
	dirtyIdx := make([]uint32, 0, len(dirty))
	for i := range dirty {
		dirtyIdx = append(dirtyIdx, i)
	}
	sort.Slice(dirtyIdx, func(a, b int) bool { return dirtyIdx[a] < dirtyIdx[b] })
	lookup := s.lookupFunc()
	for _, i := range dirtyIdx {
		rec := s.recs[i]
		s.inv.Remove(i, rec.Vec)
		rec.Vec = social.Vectorize(rec.Desc, lookup, s.part.Dim)
		s.inv.Add(i, rec.Vec)
	}
	return UpdateReport{
		Maintenance:        st,
		VideosRevectorized: len(dirtyIdx),
		DimensionsTouched:  len(touched),
	}
}

// VideosPerDim reports how many videos each inverted-file dimension holds —
// the N_ui / N_si inputs of the Equation 8 cost model.
func (r *Recommender) VideosPerDim() []int { return r.state.VideosPerDim() }

func dedupeUsers(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	w := 0
	for _, u := range out {
		if u == "" {
			continue
		}
		if w > 0 && out[w-1] == u {
			continue
		}
		out[w] = u
		w++
	}
	return out[:w]
}

func pairAdd(acc map[[2]string]float64, a, b string) {
	if a == b || a == "" || b == "" {
		return
	}
	if a > b {
		a, b = b, a
	}
	acc[[2]string{a, b}]++
}
