package core

import (
	"slices"
	"sort"
	"time"

	"videorec/internal/community"
	"videorec/internal/social"
)

// UpdateReport summarizes one ApplyUpdates pass: the maintenance statistics
// of Figure 5 plus the descriptor re-vectorization work, the quantities of
// the Equation 8 cost model, the maintenance wall time and the size of the
// user-interest graph after the pass.
type UpdateReport struct {
	Maintenance        community.Stats
	VideosRevectorized int
	DimensionsTouched  int

	// MaintenanceDuration is the wall time of the Figure 5 pass alone
	// (graph merge, union/split, hook patching) — the portion the CSR
	// rewrite targets, excluding derivation and re-vectorization.
	MaintenanceDuration time.Duration

	// Graph size after the pass: node count, undirected edge count, and the
	// directed overlay entries not yet compacted into the CSR base.
	GraphUsers   int
	GraphEdges   int
	GraphOverlay int
}

// ApplyUpdates ingests a batch of new comments (video id → new commenting
// users) arriving in the current period and runs the Figure 5 maintenance:
//
//  1. new social connections are derived exactly as the UIG defines them
//     (each video's new commenters connect to its prior audience and to each
//     other, one unit of weight per shared video);
//  2. the sub-communities are maintained (union / split) with the hash
//     table and linear dictionary patched through the maintenance hooks;
//  3. descriptors of commented videos grow, and every video whose vector
//     touches a changed dimension — or whose descriptor changed — is
//     re-vectorized and re-posted in the inverted files.
func (r *Recommender) ApplyUpdates(newComments map[string][]string) UpdateReport {
	return r.ApplyEdges(r.DeriveConnections(newComments), newComments)
}

// DeriveConnections runs step 1 of the maintenance pass in isolation: the
// new social connections a comment batch induces, derived from the batch and
// the prior audiences of the commented videos — which live only in this
// recommender. Videos the recommender does not hold are skipped, so a shard
// derives exactly its slice of the global edge set; SumConnections merges
// the slices back into the edge list a whole-corpus engine would derive.
//
// Accumulation runs over batch-local dense ranks: every participant name is
// ranked by its position in the batch's sorted unique name list, pairs
// become packed uint64 keys, and one sort + run-length count replaces the
// string-pair hash map. Rank order is name order, so the key-sorted output
// is exactly the (U asc, V asc) edge list the map-and-sort implementation
// produced.
func (r *Recommender) DeriveConnections(newComments map[string][]string) []community.Edge {
	r.state.mustBuild()
	s := r.state
	vids := make([]string, 0, len(newComments))
	for vid := range newComments {
		vids = append(vids, vid)
	}
	sort.Strings(vids)

	// Pass 1: resolve each video's fresh commenters (raw, deduped later on
	// integer ranks) and prior audience, and collect the distinct
	// participant names for ranking.
	type group struct {
		raw []string // fresh commenters as given (may repeat, may hold "")
		old []string // capped audience, as stored (may repeat)
	}
	groups := make([]group, 0, len(vids))
	seen := map[string]uint32{} // becomes the rank map after numbering
	for _, vid := range vids {
		rec := s.record(vid)
		if rec == nil {
			continue
		}
		raw := newComments[vid]
		old := capAudience(rec.Desc.Users(), r.opts.UIGMaxAudience)
		groups = append(groups, group{raw: raw, old: old})
		for _, u := range raw {
			if u != "" {
				seen[u] = 0
			}
		}
		for _, v := range old {
			if v != "" {
				seen[v] = 0
			}
		}
	}
	uniq := make([]string, 0, len(seen))
	for u := range seen {
		uniq = append(uniq, u)
	}
	sort.Strings(uniq)
	for i, u := range uniq {
		seen[u] = uint32(i)
	}

	// Pass 2: accumulate one count per (fresh, old) and (fresh, fresh) pair.
	// Each group's names resolve to ranks once — fresh commenters dedupe on
	// their integer ranks, not on strings — so the quadratic pair emission
	// is pure integer work. Small batches (the common case: n distinct
	// participants with n² counts fitting in a couple of MB) accumulate into
	// a dense n×n matrix, turning the whole derivation into increments plus
	// one ordered sweep — no key buffer, no sort. Larger batches fall back
	// to packed keys with one sort + run-length count. Both produce the
	// identical (U asc, V asc) integer-weight edge list.
	n := len(uniq)
	const denseLimit = 724 // n² uint32 counts ≤ ~2MB
	var counts []uint32    // dense: counts[a*n+b] for a < b
	var keys []uint64      // fallback: packed rank pairs
	if n <= denseLimit {
		counts = make([]uint32, n*n)
	}
	var freshR, oldR []uint32
	for _, gr := range groups {
		freshR = freshR[:0]
		for _, u := range gr.raw {
			if u != "" {
				freshR = append(freshR, seen[u])
			}
		}
		slices.Sort(freshR)
		freshR = slices.Compact(freshR)
		oldR = oldR[:0]
		for _, v := range gr.old {
			if v == "" {
				oldR = append(oldR, ^uint32(0)) // sentinel: skipped below
			} else {
				oldR = append(oldR, seen[v])
			}
		}
		for i, ru := range freshR {
			for _, rv := range oldR {
				if rv == ^uint32(0) || rv == ru {
					continue
				}
				if counts != nil {
					a, b := ru, rv
					if a > b {
						a, b = b, a
					}
					counts[int(a)*n+int(b)]++
				} else {
					keys = append(keys, pairKey(ru, rv))
				}
			}
			// freshR is sorted and distinct, so ru < rv here: the pair is
			// already canonical.
			for _, rv := range freshR[i+1:] {
				if counts != nil {
					counts[int(ru)*n+int(rv)]++
				} else {
					keys = append(keys, pairKey(ru, rv))
				}
			}
		}
	}

	if counts != nil {
		var edges []community.Edge
		for a := 0; a < n; a++ {
			row := counts[a*n : (a+1)*n]
			for b := a + 1; b < n; b++ {
				if c := row[b]; c != 0 {
					edges = append(edges, community.Edge{U: uniq[a], V: uniq[b], W: float64(c)})
				}
			}
		}
		return edges
	}

	slices.Sort(keys)
	edges := make([]community.Edge, 0, len(keys))
	for i := 0; i < len(keys); {
		j := i
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		edges = append(edges, community.Edge{
			U: uniq[keys[i]>>32],
			V: uniq[uint32(keys[i])],
			W: float64(j - i),
		})
		i = j
	}
	return edges
}

// rankNames sorts and dedupes the name list, returning it with a name →
// position index. Positions are name-ordered, so sorting packed rank pairs
// sorts by names.
func rankNames(names []string) ([]string, map[string]uint32) {
	sort.Strings(names)
	w := 0
	for i, s := range names {
		if i > 0 && names[i-1] == s && w > 0 {
			continue
		}
		names[w] = s
		w++
	}
	names = names[:w]
	rank := make(map[string]uint32, len(names))
	for i, s := range names {
		rank[s] = uint32(i)
	}
	return names, rank
}

func pairKey(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// SumConnections merges per-shard edge slices into one deterministic edge
// list, summing the weights of pairs that several shards contributed (the
// same user pair can share videos on different shards). Merging commutative
// sums and re-sorting reproduces exactly the edge list DeriveConnections
// computes over an unpartitioned corpus.
//
// Unlike derivation, no filtering happens here: self-loops and empty names
// pass through unchanged (normalized to canonical orientation), and each
// pair's weights are added in input encounter order — the merged list is
// byte-for-byte what the string-keyed accumulator produced, floating-point
// addition order included.
func SumConnections(parts ...[]community.Edge) []community.Edge {
	total := 0
	for _, edges := range parts {
		total += len(edges)
	}
	names := make([]string, 0, 2*total)
	for _, edges := range parts {
		for _, e := range edges {
			names = append(names, e.U, e.V)
		}
	}
	uniq, rank := rankNames(names)

	type keyed struct {
		key uint64
		w   float64
	}
	items := make([]keyed, 0, total)
	for _, edges := range parts {
		for _, e := range edges {
			items = append(items, keyed{key: pairKey(rank[e.U], rank[e.V]), w: e.W})
		}
	}
	// Stable: weights of one pair must accumulate in encounter order.
	sort.SliceStable(items, func(a, b int) bool { return items[a].key < items[b].key })

	edges := make([]community.Edge, 0, len(items))
	for i := 0; i < len(items); {
		j := i
		w := 0.0
		for j < len(items) && items[j].key == items[i].key {
			w += items[j].w
			j++
		}
		edges = append(edges, community.Edge{
			U: uniq[items[i].key>>32],
			V: uniq[uint32(items[i].key)],
			W: w,
		})
		i = j
	}
	return edges
}

// ApplyEdges runs steps 2–3 of the maintenance pass against an explicit
// edge list: sub-community maintenance, then descriptor growth and
// re-vectorization. For a single engine ApplyUpdates derives the edges and
// calls this; a shard of a partitioned deployment receives the globally
// summed edge list (so every shard's replicated partition evolves
// identically) along with only its own slice of the comment batch (comments
// for videos it does not hold are ignored by the descriptor-growth loop).
func (r *Recommender) ApplyEdges(edges []community.Edge, newComments map[string][]string) UpdateReport {
	r.state.mustBuild()
	r.beforeWrite()
	s := r.state
	vids := make([]string, 0, len(newComments))
	for vid := range newComments {
		vids = append(vids, vid)
	}
	sort.Strings(vids)

	// Step 2: maintenance with dimension tracking (the BuildSocial hooks
	// record every changed dimension into r.touched).
	r.touched = map[int]bool{}
	maintStart := time.Now()
	st := r.maint.ApplyConnections(edges)
	maintDur := time.Since(maintStart)
	touched := r.touched

	// Step 3: grow descriptors and re-vectorize affected videos. Dirty
	// tracking is by dense index; re-posting in ascending index order keeps
	// the sorted posting-list edits cache-friendly.
	dirty := map[uint32]bool{}
	for _, vid := range vids {
		if i, ok := s.intern.idx[vid]; ok && s.recs[i] != nil {
			rec := s.recs[i]
			rec.Desc = rec.Desc.Add(newComments[vid]...)
			dirty[i] = true
		}
	}
	if len(touched) > 0 {
		for i, rec := range s.recs {
			if rec == nil {
				continue
			}
			for d := range touched {
				if d < len(rec.Vec) && rec.Vec[d] > 0 {
					dirty[uint32(i)] = true
					break
				}
			}
		}
	}
	s.inv.Grow(s.part.Dim)
	dirtyIdx := make([]uint32, 0, len(dirty))
	for i := range dirty {
		dirtyIdx = append(dirtyIdx, i)
	}
	sort.Slice(dirtyIdx, func(a, b int) bool { return dirtyIdx[a] < dirtyIdx[b] })
	lookup := s.lookupFunc()
	for _, i := range dirtyIdx {
		rec := s.recs[i]
		s.inv.Remove(i, rec.Vec)
		rec.Vec = social.Vectorize(rec.Desc, lookup, s.part.Dim)
		s.inv.Add(i, rec.Vec)
	}
	return UpdateReport{
		Maintenance:         st,
		VideosRevectorized:  len(dirtyIdx),
		DimensionsTouched:   len(touched),
		MaintenanceDuration: maintDur,
		GraphUsers:          r.graph.NumUsers(),
		GraphEdges:          r.graph.NumEdges(),
		GraphOverlay:        r.graph.OverlayLen(),
	}
}

// VideosPerDim reports how many videos each inverted-file dimension holds —
// the N_ui / N_si inputs of the Equation 8 cost model.
func (r *Recommender) VideosPerDim() []int { return r.state.VideosPerDim() }

// GraphStats reports the current user-interest graph size: nodes, undirected
// edges, and directed overlay entries awaiting CSR compaction. All zero
// before BuildSocial.
func (r *Recommender) GraphStats() (users, edges, overlay int) {
	if r.graph == nil {
		return 0, 0, 0
	}
	return r.graph.NumUsers(), r.graph.NumEdges(), r.graph.OverlayLen()
}
