package core

import (
	"testing"

	"videorec/internal/dataset"
	"videorec/internal/signature"
)

// buildGolden is buildSmall with an options hook, so golden variants can
// toggle FullScan, baselines and worker counts on the same generated
// collection.
func buildGolden(t testing.TB, mutate func(*Options)) *View {
	t.Helper()
	o := dataset.DefaultOptions()
	o.Hours = 4
	o.Users = 150
	o.Seed = 11
	c := dataset.Generate(o)
	opts := DefaultOptions()
	opts.K = 12
	if mutate != nil {
		mutate(&opts)
	}
	r := NewRecommender(opts)
	for _, it := range c.Items {
		v := it.Render(o.Synth)
		r.IngestVideo(it.ID, v, descriptorOf(c, it))
	}
	r.BuildSocial()
	return r.Freeze()
}

// withCompiledRefine runs f under the given refine-path selection and
// restores the default afterwards.
func withCompiledRefine(enabled bool, f func()) {
	prev := compiledRefine
	compiledRefine = enabled
	defer func() { compiledRefine = prev }()
	f()
}

func resultsEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The compiled refinement path must be a pure representation change: for
// every mode, candidate policy and worker count, the ranked results — ids,
// fused scores and both component relevances — must be bit-identical to the
// uncompiled reference path. Both paths route SimC through the same merge
// kernel over identically stable-sorted cuboids, so not even floating-point
// summation order differs.
func TestCompiledRefineGolden(t *testing.T) {
	const topK = 10
	variants := []struct {
		name   string
		mutate func(*Options)
	}{
		{"exact", func(o *Options) { o.Mode = ModeExact }},
		{"sar", func(o *Options) { o.Mode = ModeSAR }},
		{"sarhash", func(o *Options) { o.Mode = ModeSARHash }},
		{"sarhash-serial", func(o *Options) { o.Mode = ModeSARHash; o.RefineWorkers = 1 }},
		{"sarhash-fullscan", func(o *Options) { o.Mode = ModeSARHash; o.FullScan = true }},
		{"content-only", func(o *Options) { o.Mode = ModeSARHash; o.ContentWeightOnly = true }},
	}
	for _, tc := range variants {
		t.Run(tc.name, func(t *testing.T) {
			v := buildGolden(t, tc.mutate)
			ids := v.SortedIDs()
			if len(ids) > 8 {
				ids = ids[:8]
			}
			for _, id := range ids {
				q, ok := v.QueryFor(id)
				if !ok {
					t.Fatalf("missing record %s", id)
				}
				var fast, slow []Result
				withCompiledRefine(true, func() { fast = v.Recommend(q, topK, id) })
				withCompiledRefine(false, func() { slow = v.Recommend(q, topK, id) })
				if !resultsEqual(fast, slow) {
					t.Fatalf("query %s: compiled and uncompiled rankings differ\ncompiled:   %+v\nuncompiled: %+v", id, fast, slow)
				}
				if len(fast) == 0 {
					t.Fatalf("query %s returned no results", id)
				}
			}
		})
	}
}

// A zero-value Query (no precompiled series) must take the compile-on-demand
// path and still match the reference bit-for-bit.
func TestCompiledRefineGoldenAdHoc(t *testing.T) {
	v := buildGolden(t, nil)
	id := v.SortedIDs()[0]
	rec, _ := v.Record(id)
	raw := Query{Series: rec.Series, Desc: rec.Desc} // comp deliberately nil
	var fast, slow []Result
	withCompiledRefine(true, func() { fast = v.Recommend(raw, 10, id) })
	withCompiledRefine(false, func() { slow = v.Recommend(raw, 10, id) })
	if !resultsEqual(fast, slow) {
		t.Fatalf("ad-hoc query: compiled %+v != uncompiled %+v", fast, slow)
	}
}

// The per-candidate refinement step — compiled κJ between a real query and a
// real stored record, with a warmed worker scratch — must allocate nothing.
func TestRefineStepZeroAlloc(t *testing.T) {
	v := buildGolden(t, nil)
	ids := v.SortedIDs()
	if len(ids) < 2 {
		t.Fatal("fixture too small")
	}
	q, _ := v.QueryFor(ids[0])
	qc := q.compiled()
	rec, _ := v.Record(ids[1])
	var scratch signature.KJScratch
	// Warm the scratch against every stored record so the measured loop hits
	// its steady-state high-water mark.
	for _, id := range ids {
		r, _ := v.Record(id)
		signature.KJCancelCompiled(qc, r.Compiled, v.Options().MatchThreshold, nil, &scratch)
	}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		kj, _ := signature.KJCancelCompiled(qc, rec.Compiled, v.Options().MatchThreshold, nil, &scratch)
		sink += kj
	})
	if allocs != 0 {
		t.Fatalf("per-candidate refine step allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}
