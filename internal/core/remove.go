package core

// RemoveVideo deletes a video from the collection: its record and inverted
// postings go immediately; its LSB-tree entries are tombstoned and filtered
// out of walks until the next BuildSocial (which rebuilds the tree without
// them). It reports whether the id existed.
func (r *Recommender) RemoveVideo(id string) bool {
	if _, ok := r.state.records[id]; !ok {
		return false
	}
	r.beforeWrite()
	s := r.state
	rec := s.records[id]
	delete(s.records, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.inv != nil && rec.Vec != nil {
		s.inv.Remove(id, rec.Vec)
	}
	if s.tombstones == nil {
		s.tombstones = map[string]bool{}
	}
	s.tombstones[id] = true
	return true
}

// Tombstones returns the number of removed videos whose index entries are
// pending compaction.
func (r *Recommender) Tombstones() int { return len(r.state.tombstones) }

// compactLSB rebuilds the content index from live records, dropping
// tombstoned entries. Called from BuildSocial after the copy-on-write check,
// so it always operates on a privately owned state.
func (r *Recommender) compactLSB() {
	s := r.state
	if len(s.tombstones) == 0 {
		return
	}
	fresh := newLSBFor(r.opts)
	for _, id := range s.order {
		fresh.Add(id, s.records[id].Series)
	}
	s.lsb = fresh
	s.tombstones = nil
}
