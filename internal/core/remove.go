package core

// RemoveVideo deletes a video from the collection: its record and inverted
// postings go immediately; its LSB-tree entries are tombstoned and filtered
// out of walks until the next BuildSocial (which rebuilds the tree without
// them). The video's dense index survives removal — re-ingesting the id
// reclaims the same slot. It reports whether the id existed.
func (r *Recommender) RemoveVideo(id string) bool {
	i, ok := r.state.intern.idx[id]
	if !ok || r.state.recs[i] == nil {
		return false
	}
	r.beforeWrite()
	s := r.state
	rec := s.recs[i]
	s.recs[i] = nil
	for j, o := range s.order {
		if o == id {
			s.order = append(s.order[:j], s.order[j+1:]...)
			break
		}
	}
	if s.inv != nil && rec.Vec != nil {
		s.inv.Remove(i, rec.Vec)
	}
	s.tombstones.Grow(len(s.intern.ids))
	if !s.tombstones.Has(i) {
		s.tombstones.Add(i)
		s.tombCount++
	}
	s.soa = nil // record set changed; rebuilt by the next installSocial
	return true
}

// Tombstones returns the number of removed videos whose index entries are
// pending compaction.
func (r *Recommender) Tombstones() int { return r.state.tombCount }

// compactLSB rebuilds the content index from live records, dropping
// tombstoned entries. Called from BuildSocial after the copy-on-write check,
// so it always operates on a privately owned state.
func (r *Recommender) compactLSB() {
	s := r.state
	if s.tombCount == 0 {
		return
	}
	fresh := newLSBFor(r.opts)
	for _, id := range s.order {
		i := s.intern.idx[id]
		fresh.Add(i, s.recs[i].Series)
	}
	s.lsb = fresh
	s.tombstones = nil
	s.tombCount = 0
}
