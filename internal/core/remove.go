package core

// RemoveVideo deletes a video from the collection: its record and inverted
// postings go immediately; its LSB-tree entries are tombstoned and filtered
// out of walks until the next BuildSocial (which rebuilds the tree without
// them). It reports whether the id existed.
func (r *Recommender) RemoveVideo(id string) bool {
	rec, ok := r.records[id]
	if !ok {
		return false
	}
	delete(r.records, id)
	for i, o := range r.order {
		if o == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	if r.inv != nil && rec.Vec != nil {
		r.inv.Remove(id, rec.Vec)
	}
	if r.tombstones == nil {
		r.tombstones = map[string]bool{}
	}
	r.tombstones[id] = true
	return true
}

// Tombstones returns the number of removed videos whose index entries are
// pending compaction.
func (r *Recommender) Tombstones() int { return len(r.tombstones) }

// compactLSB rebuilds the content index from live records, dropping
// tombstoned entries. Called from BuildSocial.
func (r *Recommender) compactLSB() {
	if len(r.tombstones) == 0 {
		return
	}
	fresh := newLSBFor(r.opts)
	for _, id := range r.order {
		fresh.Add(id, r.records[id].Series)
	}
	r.lsb = fresh
	r.tombstones = nil
}
