package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"videorec/internal/faults"
	"videorec/internal/shard"
)

// Serving-layer coverage for the fault-tolerant scatter-gather: partial
// answers on the wire, 503 + Retry-After on quorum loss, per-shard breaker
// health in /stats, and the shardQuorum readiness gate.

func getRecommend(t *testing.T, url string) (*http.Response, RecommendResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr RecommendResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rr
}

// TestShardBreakerPartialResponseOnWire: with one of four shards failing and
// quorum satisfied, /recommend answers 200 with degraded:true and the
// shardsFailed/shardsTotal accounting; degraded answers are counted but
// never cached.
func TestShardBreakerPartialResponseOnWire(t *testing.T) {
	defer faults.Reset()
	ts, router := newShardedServer(t, 4)
	populate(t, ts)
	router.SetResilience(shard.Resilience{MinShardQuorum: 2, BreakerThreshold: -1})

	faults.Arm(shard.SiteForShard(shard.FaultFanOut, 1), faults.Error(nil))
	resp, rr := getRecommend(t, ts.URL+"/recommend?id=clip-0&k=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial answer status %d, want 200", resp.StatusCode)
	}
	if !rr.Degraded || rr.ShardsFailed != 1 || rr.ShardsTotal != 4 {
		t.Fatalf("partial answer = degraded=%v %d/%d, want degraded 1/4", rr.Degraded, rr.ShardsFailed, rr.ShardsTotal)
	}

	// Partial answers never enter the cache: a second identical query misses
	// again (and is counted degraded again).
	if _, rr2 := getRecommend(t, ts.URL+"/recommend?id=clip-0&k=5"); !rr2.Degraded {
		t.Fatal("second query served a cached partial answer as full")
	}
	st := getStats(t, ts)
	if st.CacheHits != 0 {
		t.Errorf("degraded answers were cached: %d hits", st.CacheHits)
	}

	// Disarm: the same query answers full again (shardsTotal stays as
	// informative meta; shardsFailed drops to zero).
	faults.Reset()
	_, rr3 := getRecommend(t, ts.URL+"/recommend?id=clip-0&k=5")
	if rr3.Degraded || rr3.ShardsFailed != 0 || rr3.ShardsTotal != 4 {
		t.Fatalf("recovered answer = degraded=%v %d/%d, want full 0/4", rr3.Degraded, rr3.ShardsFailed, rr3.ShardsTotal)
	}
}

// TestShardBreakerQuorumLoss503: below quorum the query fails with 503 and a
// Retry-After hint — the overload contract, not a 500 — and the breakers
// that tripped surface in /stats and flip /readyz's shardQuorum gate until
// recovery.
func TestShardBreakerQuorumLoss503(t *testing.T) {
	defer faults.Reset()
	ts, router := newShardedServer(t, 4)
	populate(t, ts)
	router.SetResilience(shard.Resilience{
		MinShardQuorum:    2,
		BreakerThreshold:  1,
		BreakerBackoff:    20 * time.Millisecond,
		BreakerMaxBackoff: 40 * time.Millisecond,
	})

	for _, i := range []int{0, 1, 2} {
		faults.Arm(shard.SiteForShard(shard.FaultFanOut, i), faults.Error(nil))
	}
	resp, _ := getRecommend(t, ts.URL+"/recommend?id=clip-0&k=5")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quorum loss status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quorum-loss 503 carries no Retry-After")
	}

	// The three failures tripped threshold-1 breakers: /stats shows them
	// open with the router counters advanced.
	st := getStats(t, ts)
	if st.ShardFailTotal != 3 || st.BreakerOpenTotal != 3 || st.QuorumLostTotal != 1 {
		t.Fatalf("counters = fail=%d open=%d quorum=%d, want 3/3/1",
			st.ShardFailTotal, st.BreakerOpenTotal, st.QuorumLostTotal)
	}
	open := 0
	for _, sh := range st.Shards {
		if sh.Breaker == "open" {
			open++
			if sh.ConsecutiveFails < 1 || sh.Failures < 1 || sh.BreakerOpens < 1 {
				t.Errorf("open shard %d health incomplete: %+v", sh.Shard, sh)
			}
		}
	}
	if open != 3 {
		t.Fatalf("/stats shows %d open breakers, want 3", open)
	}

	// Readiness: healthy shards (1) below quorum (2) fails the shardQuorum
	// check with 503.
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rbody struct {
		Ready  bool              `json:"ready"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.NewDecoder(ready.Body).Decode(&rbody); err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable || rbody.Ready {
		t.Fatalf("readyz under quorum loss: status %d ready=%v, want 503/false", ready.StatusCode, rbody.Ready)
	}
	if msg, ok := rbody.Checks["shardQuorum"]; !ok || !strings.Contains(msg, "required") {
		t.Fatalf("readyz checks = %v, want failing shardQuorum", rbody.Checks)
	}

	// Disarm and let the half-open probes close the breakers: serving and
	// readiness both recover.
	faults.Reset()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, rr := getRecommend(t, ts.URL+"/recommend?id=clip-0&k=5")
		if resp.StatusCode == http.StatusOK && !rr.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("serving never recovered: status %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ready2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready2.Body.Close()
	if ready2.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: status %d, want 200", ready2.StatusCode)
	}
}

// TestStatsShardBreakerFieldsSingleEngine: a single-engine backend reports
// the fault counters as zeros and no breaker fields — the surface is
// additive, not a sharded-only schema fork.
func TestStatsShardBreakerFieldsSingleEngine(t *testing.T) {
	ts, _ := newTestServer(t, "")
	populate(t, ts)
	st := getStats(t, ts)
	if st.ShardFailTotal != 0 || st.BreakerOpenTotal != 0 || st.QuorumLostTotal != 0 {
		t.Errorf("single engine counters = %d/%d/%d, want zeros",
			st.ShardFailTotal, st.BreakerOpenTotal, st.QuorumLostTotal)
	}
	for _, sh := range st.Shards {
		if sh.Breaker != "" {
			t.Errorf("single engine shard entry has breaker state %q", sh.Breaker)
		}
	}
	// And a sharded backend reports a closed breaker per shard at rest.
	ts4, _ := newShardedServer(t, 4)
	populate(t, ts4)
	st4 := getStats(t, ts4)
	for _, sh := range st4.Shards {
		if sh.Breaker != "closed" {
			t.Errorf("idle shard %d breaker = %q, want closed", sh.Shard, sh.Breaker)
		}
	}
}

// TestDrainShardRollbackOn500: a fault-injected drain failure surfaces as an
// error response while the router stays intact and serving.
func TestDrainShardRollback(t *testing.T) {
	defer faults.Reset()
	ts, router := newShardedServer(t, 2)
	populate(t, ts)
	before := getStats(t, ts)

	faults.Arm(shard.FaultDrainAdd, faults.FailN(1, nil))
	if resp := post(t, ts.URL+"/shards/drain?shard=1", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("failed drain status %d, want 409", resp.StatusCode)
	}
	if got := router.NumShards(); got != 2 {
		t.Fatalf("failed drain changed topology: %d shards, want 2", got)
	}
	after := getStats(t, ts)
	if after.Videos != before.Videos || len(after.Shards) != 2 {
		t.Fatalf("rollback lost state: %d videos %d shards, want %d/2", after.Videos, len(after.Shards), before.Videos)
	}
	resp, rr := getRecommend(t, ts.URL+"/recommend?id=clip-0&k=3")
	if resp.StatusCode != http.StatusOK || rr.Degraded {
		t.Fatalf("serving after rollback: status %d degraded=%v", resp.StatusCode, rr.Degraded)
	}

	faults.Reset()
	if resp := post(t, ts.URL+"/shards/drain?shard=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain after disarm status %d, want 200", resp.StatusCode)
	}
	if got := router.NumShards(); got != 1 {
		t.Fatalf("drain did not complete: %d shards", got)
	}
}
