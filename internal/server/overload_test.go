package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"videorec"
	"videorec/internal/faults"
	"videorec/internal/overload"
)

// waitForCond polls until cond holds or the deadline passes.
func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// admit()'s error mapping, pinned: shed is the only 503 that counts as shed,
// queue-wait context death is the caller's outcome (499 canceled / 504
// expired), and eviction is a 504 that still earns a Retry-After (the doom
// came from server load, not the client's own budget alone).
func TestOverloadStatusMapping(t *testing.T) {
	cases := []struct {
		err        error
		status     int
		reason     string
		retryAfter bool
		shed       bool
	}{
		{overload.ErrShed, http.StatusServiceUnavailable, "shed", true, true},
		{fmt.Errorf("wrap: %w", overload.ErrShed), http.StatusServiceUnavailable, "shed", true, true},
		{overload.ErrDoomed, http.StatusGatewayTimeout, "queue_evicted", true, false},
		{context.Canceled, StatusClientClosedRequest, "client_closed", false, false},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline", false, false},
		{errors.New("anything else"), http.StatusInternalServerError, "", false, false},
	}
	for _, c := range cases {
		status, reason, retryAfter, shed := overloadStatus(c.err)
		if status != c.status || reason != c.reason || retryAfter != c.retryAfter || shed != c.shed {
			t.Errorf("overloadStatus(%v) = (%d, %q, %v, %v), want (%d, %q, %v, %v)",
				c.err, status, reason, retryAfter, shed, c.status, c.reason, c.retryAfter, c.shed)
		}
	}
}

// errorBody decodes the JSON error envelope ({"error": ..., "reason": ...}).
func errorBody(t *testing.T, resp *http.Response) map[string]string {
	t.Helper()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return body
}

// Limiter/coalescer interaction, deterministically: a request shed at
// admission never reaches the forming batch, a queued request joins the
// batch only once admitted, and the batch flush releases exactly the slots
// its members held.
//
// Choreography (MaxInFlight 2, MaxQueue 1, MaxBatch 2, window far beyond
// the test): A is admitted and parks inside the gated backend (serial
// bypass); B is admitted and opens a batch, waiting for a second member; C
// is admitted-queued behind the full limiter; D finds the queue full and is
// shed. Releasing A frees a slot, C joins B's batch, the batch flushes at
// MaxBatch — so the one batch must hold exactly {B, C}, and afterwards the
// controller must drain to zero in-flight and zero queued.
func TestLimiterCoalescerSlotAccounting(t *testing.T) {
	eng := videorec.New(videorec.Options{SubCommunities: 6})
	g := &gatedBackend{Engine: eng, firstIn: make(chan struct{}), release: make(chan struct{})}
	srv := NewWithConfig(g, Config{
		MaxInFlight: 2,
		MaxQueue:    1,
		BatchWindow: 30 * time.Second, // flush only via MaxBatch
		MaxBatch:    2,
		RetryAfter:  3 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	populate(t, ts)

	type result struct {
		status int
		body   RecommendResponse
	}
	get := func(id string, out chan<- result) {
		resp, err := http.Get(fmt.Sprintf("%s/recommend?id=%s&k=3", ts.URL, id))
		if err != nil {
			t.Error(err)
			out <- result{}
			return
		}
		defer resp.Body.Close()
		r := result{status: resp.StatusCode}
		if resp.StatusCode == http.StatusOK {
			_ = json.NewDecoder(resp.Body).Decode(&r.body)
		}
		out <- r
	}

	// A: admitted, bypasses the (empty) batcher, parks in the gated backend.
	aCh := make(chan result, 1)
	go get("clip-0", aCh)
	<-g.firstIn

	// B: admitted into the second slot, opens a batch and waits for a member.
	bCh := make(chan result, 1)
	go get("clip-1", bCh)
	waitForCond(t, "B admitted", func() bool { return srv.ctl.InFlight() == 2 })

	// C: the limiter is full — queued at admission, NOT in the batch.
	cCh := make(chan result, 1)
	go get("clip-2", cCh)
	waitForCond(t, "C queued", func() bool { return srv.ctl.Snapshot().QueueDepth == 1 })

	// D: queue full — shed with 503, a "shed" body, and a Retry-After hint.
	resp, err := http.Get(ts.URL + "/recommend?id=clip-3&k=3")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("D status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if body := errorBody(t, resp); body["reason"] != "shed" {
		t.Errorf("shed body reason = %q, want \"shed\"", body["reason"])
	}
	resp.Body.Close()

	// The batch must still be empty of C and D: nothing has flushed.
	if batched, flushes, _ := srv.batch.stats(); batched != 0 || flushes != 0 {
		t.Fatalf("batch flushed early: batched=%d flushes=%d", batched, flushes)
	}

	// Release A: its slot frees, C is admitted, joins B's batch, and the
	// batch flushes at MaxBatch=2.
	close(g.release)
	a, b, c := <-aCh, <-bCh, <-cCh
	for name, r := range map[string]result{"A": a, "B": b, "C": c} {
		if r.status != http.StatusOK {
			t.Errorf("%s status %d, want 200", name, r.status)
		}
	}

	// Exactly one batch, holding exactly B and C — the shed D and the
	// bypassed A must not appear in it.
	g.batchMu.Lock()
	batches := g.batches
	g.batchMu.Unlock()
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("backend saw batches %v, want one batch of 2", batches)
	}
	got := map[string]bool{batches[0][0].ClipID: true, batches[0][1].ClipID: true}
	if !got["clip-1"] || !got["clip-2"] {
		t.Errorf("batch members %v, want {clip-1, clip-2}", got)
	}

	// The flush released exactly its members' slots: the controller drains
	// to zero with nothing stuck.
	waitForCond(t, "controller drained", func() bool {
		s := srv.ctl.Snapshot()
		return s.InFlight == 0 && s.QueueDepth == 0
	})
	if srv.shed.Load() != 1 {
		t.Errorf("shed counter = %d, want exactly 1 (only D)", srv.shed.Load())
	}
}

// Brownout under queue pressure: once the queue crosses the tier-1
// threshold, the next request admitted from the queue runs with its
// deadline shrunk inside the engine's degrade margin and answers the
// coarse social-only ranking — degraded:true, content scores zero, never
// cached.
func TestBrownoutServesCoarseUnderPressure(t *testing.T) {
	eng := videorec.New(videorec.Options{SubCommunities: 6})
	g := &gatedBackend{Engine: eng, firstIn: make(chan struct{}), release: make(chan struct{})}
	srv := NewWithConfig(g, Config{
		MaxInFlight:  1,
		MaxQueue:     8, // tier 1 enters at depth 4, exits at depth 2
		Brownout:     true,
		QueryTimeout: 5 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	populate(t, ts)

	// Park the only slot inside the gated backend.
	aCh := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
		if err != nil {
			t.Error(err)
			aCh <- 0
			return
		}
		resp.Body.Close()
		aCh <- resp.StatusCode
	}()
	<-g.firstIn

	// Queue four more: depth 4 crosses the tier-1 entry threshold.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var responses []RecommendResponse
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/recommend?id=clip-%d&k=3", ts.URL, i))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("queued request %d: status %d", i, resp.StatusCode)
				return
			}
			var rr RecommendResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			responses = append(responses, rr)
			mu.Unlock()
		}(i)
	}
	waitForCond(t, "queue at tier-1 depth", func() bool { return srv.ctl.Snapshot().QueueDepth == 4 })
	if tier := srv.ctl.Tier(); tier < 1 {
		t.Fatalf("tier = %d at queue depth 4, want >= 1", tier)
	}

	close(g.release)
	wg.Wait()
	if st := <-aCh; st != http.StatusOK {
		t.Fatalf("parked request status %d", st)
	}

	// Exactly the first request dispatched under tier 1 was browned out: it
	// ran with the shrunk deadline and answered coarse. The later ones
	// dispatched after the queue fell below the exit threshold and ran full.
	if got := srv.brownout.Load(); got != 1 {
		t.Errorf("brownout counter = %d, want 1", got)
	}
	var degraded int
	for _, rr := range responses {
		if rr.Degraded {
			degraded++
			if len(rr.Results) == 0 {
				t.Error("browned-out answer is empty — coarse path should still rank")
			}
			for _, r := range rr.Results {
				if r.Content != 0 {
					t.Errorf("browned-out result %s has content score %g, want 0 (EMD skipped)", r.VideoID, r.Content)
				}
			}
		}
	}
	if degraded != 1 {
		t.Errorf("degraded answers = %d, want exactly 1 (the tier-1 dispatch)", degraded)
	}
	// Degraded answers are never cached.
	if hits, _, _ := srv.cache.stats(); hits != 0 {
		t.Errorf("cache hits = %d, want 0", hits)
	}
}

// /stats must surface the overload-control observability: live limit, queue
// state, wait percentiles, eviction/brownout counters.
func TestStatsReportOverloadControl(t *testing.T) {
	ts, _ := newResilientServer(t, Config{MaxInFlight: 2, MaxQueue: 4, LimitCeiling: 8})
	populate(t, ts)
	batchGet(t, ts, "clip-0", 3)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"limit", "limitProbes", "limitBackoffs", "queueDepth",
		"queueWaitP50Ms", "queueWaitP99Ms", "queueEvictedTotal",
		"brownoutTier", "brownoutTotal", "inFlight",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q", key)
		}
	}
	if lim, ok := stats["limit"].(float64); !ok || lim < 2 || lim > 8 {
		t.Errorf("stats limit = %v, want within [2, 8]", stats["limit"])
	}
}

// Chaos for the adaptive limiter: probe/backoff cycles run concurrently
// with client cancellations, mid-traffic republishes (comment updates) and
// armed fault sites; run under -race. The limiter must stay within its
// configured bounds, make at least one adjustment, and the server must
// answer clean queries once the faults clear.
func TestChaosAdaptiveLimiterStorm(t *testing.T) {
	defer faults.Reset()
	ts, srv := newResilientServer(t, Config{
		MaxInFlight:  4,
		MaxQueue:     8,
		LimitFloor:   2,
		LimitCeiling: 32,
		AdjustWindow: 10 * time.Millisecond, // fast cadence so cycles happen in-test
		Brownout:     true,
		QueryTimeout: 150 * time.Millisecond,
		RetryAfter:   time.Second,
	})
	populate(t, ts)

	faults.Arm(faults.RefineScore, faults.Latency(time.Millisecond))
	faults.Arm(faults.ServerRecommend, faults.PanicEvery(37, "storm panic"))

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusServiceUnavailable:  true, // shed
		http.StatusGatewayTimeout:      true, // deadline or queue-evicted
		http.StatusInternalServerError: true, // injected panics
		StatusClientClosedRequest:      true,
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("clip-%d", rng.Intn(6))
				ctx := context.Background()
				if rng.Intn(4) == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(8))*time.Millisecond)
					defer cancel()
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/recommend?id="+id+"&k=3", nil)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					continue // client-side cancellation
				}
				if !allowed[resp.StatusCode] {
					t.Errorf("worker %d: unexpected status %d", w, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	// Republish worker: comment storms force view republishes mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			body, _ := json.Marshal(map[string][]string{
				fmt.Sprintf("clip-%d", i%6): {fmt.Sprintf("storm-user-%d", i), "ann"},
			})
			resp, err := http.Post(ts.URL+"/updates", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()

	s := srv.ctl.Snapshot()
	if s.Limit < 2 || s.Limit > 32 {
		t.Errorf("limit %d escaped [floor=2, ceiling=32]", s.Limit)
	}
	if s.LimitMax > 32 || s.LimitMin < 2 {
		t.Errorf("limit excursion [%d, %d] escaped [2, 32]", s.LimitMin, s.LimitMax)
	}
	if s.ProbeTotal+s.BackoffTotal == 0 {
		t.Error("limiter made no adjustments through the whole storm")
	}
	t.Logf("storm: limit=%d range=[%d,%d] probes=%d backoffs=%d evicted=%d peakQueue=%d brownouts=%d",
		s.Limit, s.LimitMin, s.LimitMax, s.ProbeTotal, s.BackoffTotal, s.EvictedTotal, s.PeakQueue, srv.brownout.Load())

	// Faults cleared: a clean query answers 200 with results.
	faults.Reset()
	resp, err := http.Get(ts.URL + "/recommend?id=clip-0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm query: status %d, want 200", resp.StatusCode)
	}
	var rr RecommendResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) == 0 {
		t.Fatal("post-storm query returned no results")
	}
}
